package llbpx_test

// Snapshot round-trip at a deliberately awkward instant: immediately after
// an Update that allocated second-level patterns. At that point the new
// flat storage layout is in its least regular state — the touched pattern
// set sits mid-row in the context directory, its slot array is partially
// filled (possibly with a freshly recycled set whose old patterns were just
// invalidated), and the pattern buffer holds a pointer to it. A predictor
// checkpointed there and restored into a fresh instance must continue
// bit-identically. This is the regression bar for the
// duplicate-slot/stale-pointer bug class that value-typed open-addressed
// storage can introduce.

import (
	"bytes"
	"reflect"
	"testing"

	"llbpx"
)

func TestSnapshotMidPatternAllocation(t *testing.T) {
	for _, predName := range []string{"llbp", "llbp-x"} {
		t.Run(predName, func(t *testing.T) {
			t.Parallel()
			st := rtStreams()["nodeapp"]
			stream := append(append([]llbpx.Branch{}, st.warm...), st.compare...)

			// Drive a probe predictor branch by branch, watching the
			// second-level allocation counter; collect the indices right
			// after which an allocation burst completed.
			probe, err := llbpx.NewPredictorByName(predName)
			if err != nil {
				t.Fatal(err)
			}
			allocKey := predName + ".allocs"
			if predName == "llbp-x" {
				allocKey = "llbpx.allocs"
			}
			var cutPoints []int
			prevAllocs := 0.0
			for i, b := range stream {
				if b.Kind.Conditional() {
					probe.Update(b, probe.Predict(b.PC))
					if a := rtStats(probe)[allocKey]; a > prevAllocs {
						prevAllocs = a
						cutPoints = append(cutPoints, i)
					}
				} else {
					probe.TrackUnconditional(b)
				}
				// A handful of allocation sites spread across the stream is
				// plenty; scanning further just costs time.
				if len(cutPoints) >= 64 {
					break
				}
			}
			if len(cutPoints) == 0 {
				t.Fatalf("stream produced no second-level allocations; %s counter never moved", allocKey)
			}
			// Test the first, a middle, and the last discovered instant: the
			// first catches a nearly-empty directory mid-fill, the later ones
			// catch recycled sets and partially occupied rows.
			picks := []int{cutPoints[0], cutPoints[len(cutPoints)/2], cutPoints[len(cutPoints)-1]}

			for _, cut := range picks {
				ref, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				cand, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				rtDrive(ref, stream[:cut+1], nil)
				rtDrive(cand, stream[:cut+1], nil)

				var buf bytes.Buffer
				if err := llbpx.SavePredictorState(&buf, predName, cand); err != nil {
					t.Fatalf("save at branch %d: %v", cut, err)
				}
				restored, _, err := llbpx.LoadPredictorState(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("restore at branch %d: %v", cut, err)
				}

				tail := stream[cut+1:]
				wantPreds := rtDrive(ref, tail, make([]llbpx.Prediction, 0, len(tail)))
				gotPreds := rtDrive(restored, tail, make([]llbpx.Prediction, 0, len(tail)))
				for i := range wantPreds {
					if gotPreds[i] != wantPreds[i] {
						t.Fatalf("snapshot at branch %d (right after allocation): first divergence at tail conditional %d: restored %+v, reference %+v",
							cut, i, gotPreds[i], wantPreds[i])
					}
				}
				if want, got := rtStats(ref), rtStats(restored); !reflect.DeepEqual(want, got) {
					t.Errorf("snapshot at branch %d: internal counters diverged:\nreference %v\nrestored  %v", cut, want, got)
				}
			}
		})
	}
}
