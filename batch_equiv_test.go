package llbpx_test

// Differential tests for the batched prediction API: core.RunBatch (both
// the concrete per-predictor fast paths and the generic fallback) and the
// batching inside sim.Run must be observably identical to the canonical
// per-branch Predict/Update/TrackUnconditional loop.

import (
	"reflect"
	"testing"

	"llbpx"
	"llbpx/internal/core"
	"llbpx/internal/sim"
)

// perBranchDrive is the canonical loop, calling through the interface one
// branch at a time.
func perBranchDrive(p llbpx.Predictor, stream []llbpx.Branch, preds []llbpx.Prediction) {
	for i, b := range stream {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = llbpx.Prediction{Taken: true}
		}
	}
}

func statsOf(p llbpx.Predictor) map[string]float64 {
	if sp, ok := p.(core.StatsProvider); ok {
		return sp.Stats()
	}
	return nil
}

// noBatch hides a predictor's RunBatch method so core.RunBatch takes its
// generic fallback path.
type noBatch struct{ llbpx.Predictor }

// TestRunBatchMatchesPerBranch drives two identical predictors over the
// same stream — one per-branch, one through core.RunBatch in deliberately
// awkward chunk sizes — and requires identical predictions and identical
// internal counters, for both the concrete and the fallback dispatch.
func TestRunBatchMatchesPerBranch(t *testing.T) {
	chunks := []int{1, 3, 64, 511, 513, 7}
	for _, predName := range []string{"tsl-64k", "llbp", "llbp-x"} {
		for _, fallback := range []bool{false, true} {
			name := predName
			if fallback {
				name += "/fallback"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				st := rtStreams()["nodeapp"]
				stream := append(append([]llbpx.Branch{}, st.warm...), st.compare...)
				ref, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				bat, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				driven := bat
				if fallback {
					if _, ok := driven.(core.BatchPredictor); !ok {
						t.Fatalf("%s has no concrete RunBatch; fallback subtest is vacuous", predName)
					}
					driven = noBatch{bat}
				}
				refPreds := make([]llbpx.Prediction, len(stream))
				batPreds := make([]llbpx.Prediction, len(stream))
				perBranchDrive(ref, stream, refPreds)
				for off, ci := 0, 0; off < len(stream); ci++ {
					n := chunks[ci%len(chunks)]
					if off+n > len(stream) {
						n = len(stream) - off
					}
					core.RunBatch(driven, stream[off:off+n], batPreds[off:off+n])
					off += n
				}
				for i := range refPreds {
					if refPreds[i] != batPreds[i] {
						t.Fatalf("prediction %d of %d diverged: batched %+v, per-branch %+v",
							i, len(stream), batPreds[i], refPreds[i])
					}
				}
				if rs, bs := statsOf(ref), statsOf(bat); !reflect.DeepEqual(rs, bs) {
					t.Errorf("internal counters diverged:\nper-branch %v\nbatched    %v", rs, bs)
				}
			})
		}
	}
}

// simReference reimplements sim.Run's original per-branch loop; the
// batched sim.Run must produce an identical Result, including the phase
// split at the warmup boundary and the Truncated flag.
func simReference(p core.Predictor, src core.Source, opt sim.Options) sim.Result {
	reset := func() {
		if r, ok := p.(core.Resetter); ok {
			r.ResetStats()
		}
	}
	res := sim.Result{Predictor: p.Name()}
	var instr uint64
	measuring := opt.WarmupInstr == 0
	if measuring {
		reset()
	}
	limit := opt.WarmupInstr + opt.MeasureInstr
	for instr < limit {
		b, ok := src.Next()
		if !ok {
			res.Truncated = true
			break
		}
		instr += b.Instructions()
		phase := &res.Warmup
		if measuring {
			phase = &res.Measured
		}
		phase.Instructions += b.Instructions()
		if b.Kind.Conditional() {
			phase.CondBranches++
			pred := p.Predict(b.PC)
			if pred.Taken != b.Taken {
				phase.Mispredicts++
			} else if pred.FromSecondLevel {
				phase.SecondLevelOK++
			}
			if pred.Taken != pred.FastTaken {
				phase.Overrides++
			}
			p.Update(b, pred)
		} else {
			phase.UncondCount++
			p.TrackUnconditional(b)
		}
		if !measuring && instr >= opt.WarmupInstr {
			measuring = true
			reset()
		}
	}
	if sp, ok := p.(core.StatsProvider); ok {
		res.Extra = sp.Stats()
	}
	return res
}

// TestSimRunMatchesPerBranchLoop compares the batched sim.Run against the
// per-branch reference for warmup boundaries that land mid-batch and for a
// truncating source.
func TestSimRunMatchesPerBranchLoop(t *testing.T) {
	st := rtStreams()["whiskey"]
	stream := append(append([]llbpx.Branch{}, st.warm...), st.compare...)
	cases := []struct {
		name string
		opt  sim.Options
	}{
		{"boundary-mid-batch", sim.Options{WarmupInstr: 33_333, MeasureInstr: 55_555}},
		{"zero-warmup", sim.Options{MeasureInstr: 70_000}},
		{"truncated", sim.Options{WarmupInstr: 50_000, MeasureInstr: 100_000_000}},
	}
	for _, predName := range []string{"tsl-64k", "llbp", "llbp-x"} {
		for _, tc := range cases {
			t.Run(predName+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				ref, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				bat, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				want := simReference(ref, core.NewSliceSource(stream), tc.opt)
				got, err := sim.Run(bat, core.NewSliceSource(stream), tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("sim.Run diverged from per-branch reference:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}
