//go:build !slowcheck

package llbpx_test

// slowcheckEnabled mirrors internal/oatable's build-tag switch for tests
// whose expectations (e.g. zero allocations) only hold without the
// shadow-map cross-checking instrumentation.
const slowcheckEnabled = false
