package llbpx_test

// Shared pattern-pool differential suite: the bit-exactness bar of the
// memory-budgeted last-level store. Pooling only changes where a
// predictor's second-level storage comes from (recycled arena slabs,
// byte-accounted against a global budget) — never what it predicts. These
// tests drive pool-attached predictors over the same recorded streams as
// TestGoldenFingerprints and demand the identical golden hashes, first
// with every workload resident concurrently under one budget, then with a
// budget small enough that sessions run on each other's recycled slabs.
// Under `-tags slowcheck`, per-pattern-set provenance stamps additionally
// panic on any cross-namespace read.

import (
	"testing"

	"llbpx"
	"llbpx/internal/patternpool"
)

// poolPredictors are the registry predictors whose second level can be
// pool-backed (they implement patternpool.Attacher).
var poolPredictors = []string{"llbp", "llbp-0lat", "llbp-x", "bullseye", "tournament"}

// attachPooled builds predName attached to a fresh namespace in pool.
func attachPooled(t *testing.T, pool *patternpool.Pool, predName, tenant, cid, fp string) (llbpx.Predictor, *patternpool.Namespace) {
	t.Helper()
	p, err := llbpx.NewPredictorByName(predName)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := p.(patternpool.Attacher)
	if !ok {
		t.Fatalf("predictor %q does not implement patternpool.Attacher", predName)
	}
	ns := pool.Attach(patternpool.Key{Tenant: tenant, CID: cid}, fp)
	a.AttachPatternPool(ns)
	return p, ns
}

func releasePooled(pool *patternpool.Pool, p llbpx.Predictor, ns *patternpool.Namespace) {
	p.(patternpool.Releaser).ReleasePatternStore()
	pool.Detach(ns)
}

// TestGoldenFingerprintsSharedStore runs every pool-backed predictor over
// every workload concurrently, all namespaces attached to ONE shared pool
// under one budget, and asserts each cell's direction stream is
// bit-identical to testdata/fingerprints.json — i.e. a predictor cannot
// tell pooled storage from private storage, even while dozens of other
// namespaces charge, materialize, and release against the same pool.
func TestGoldenFingerprintsSharedStore(t *testing.T) {
	golden := loadFingerprints(t)
	// A budget big enough that nothing is forced out mid-run: the bar here
	// is concurrent-residency equivalence; eviction-pressure recycling is
	// TestSharedStoreIsolation's job.
	pool := patternpool.New(patternpool.Config{Budget: 1 << 30, Sharing: true, Shards: 8})

	for _, predName := range poolPredictors {
		for _, wlName := range llbpx.WorkloadNames() {
			if testing.Short() && !(fpShortPredictors[predName] && fpShortWorkloads[wlName]) {
				continue
			}
			predName, wlName := predName, wlName
			key := predName + "/" + wlName
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				st := rtStreams()[wlName]
				if st == nil {
					t.Fatalf("no stream for workload %q", wlName)
				}
				p, ns := attachPooled(t, pool, predName, "golden", key, wlName)
				defer releasePooled(pool, p, ns)
				got := fpDrive(p, st)
				want, ok := golden[key]
				if !ok {
					t.Fatalf("no golden fingerprint for %s", key)
				}
				if got != want {
					t.Errorf("pooled prediction stream diverged from golden:\n got %+v\nwant %+v", got, want)
				}
				if ns.Bytes() <= 0 {
					t.Errorf("namespace charged %d bytes after full drive, want > 0", ns.Bytes())
				}
			})
		}
	}
}

// TestSharedStoreIsolation is the differential isolation bar: sessions
// with DIFFERENT workload fingerprints, run back to back on a pool small
// enough that every later session materializes onto the earlier sessions'
// recycled slabs, must still reproduce their golden streams exactly — no
// session ever observes a pattern another session inserted. With
// `-tags slowcheck` the per-set provenance stamps turn any such leak into
// a panic naming both namespaces, independent of the hash check.
func TestSharedStoreIsolation(t *testing.T) {
	golden := loadFingerprints(t)
	workloads := llbpx.WorkloadNames()
	predictors := poolPredictors
	if testing.Short() {
		workloads = workloads[:4]
		predictors = []string{"llbp", "llbp-x"}
	}
	// 32MB budget → 8MB slab arena: room for ~3 released directories
	// (one llbp directory is ~2.5MB), so each session's storage is
	// recycled into a successor instead of being dropped — exactly the
	// reuse path a leak would travel.
	pool := patternpool.New(patternpool.Config{Budget: 32 << 20, Sharing: true, Shards: 2})

	recycled := 0
	for _, predName := range predictors {
		for i, wlName := range workloads {
			key := predName + "/" + wlName
			st := rtStreams()[wlName]
			if st == nil {
				t.Fatalf("no stream for workload %q", wlName)
			}
			before := pool.ArenaBytes()
			p, ns := attachPooled(t, pool, predName, "iso", key, wlName)
			got := fpDrive(p, st)
			if i > 0 && pool.ArenaBytes() < before {
				// Materializing drained the arena: this session runs on a
				// predecessor's recycled slabs.
				recycled++
			}
			if want := golden[key]; got != want {
				t.Errorf("%s: stream diverged on recycled storage:\n got %+v\nwant %+v", key, got, want)
			}
			releasePooled(pool, p, ns)
		}
	}
	if recycled == 0 {
		t.Fatal("no session ever reused recycled slabs — the isolation run exercised nothing")
	}
	if pool.AttachedBytes() != 0 || pool.Namespaces() != 0 {
		t.Errorf("pool not drained after all releases: attached=%d namespaces=%d",
			pool.AttachedBytes(), pool.Namespaces())
	}
}

// TestHotPathZeroAllocPooled is TestHotPathZeroAlloc for pool-backed
// predictors: once a pooled session has warmed up, steady-state
// predict/update must not allocate — the pool's byte accounting is pure
// atomics and slab charging only happens at materialization.
func TestHotPathZeroAllocPooled(t *testing.T) {
	if slowcheckEnabled {
		t.Skip("slowcheck shadow maps allocate by design")
	}
	pool := patternpool.New(patternpool.Config{Budget: 1 << 30, Sharing: true})
	for _, predName := range []string{"llbp", "llbp-x"} {
		predName := predName
		t.Run(predName, func(t *testing.T) {
			t.Parallel()
			warm, window := zaStream(t, "nodeapp", 400_000, 100_000)
			p, ns := attachPooled(t, pool, predName, "za", predName, "nodeapp")
			defer releasePooled(pool, p, ns)
			drive := func(branches []llbpx.Branch) {
				for _, br := range branches {
					if br.Kind.Conditional() {
						p.Update(br, p.Predict(br.PC))
					} else {
						p.TrackUnconditional(br)
					}
				}
			}
			drive(warm)
			drive(window)
			drive(window)
			if avg := testing.AllocsPerRun(5, func() { drive(window) }); avg != 0 {
				t.Errorf("pooled steady-state window replay allocated %.2f times per run, want 0", avg)
			}
		})
	}
}
