package llbpx_test

// Golden prediction-fingerprint suite: the differential-equivalence bar of
// the hot-path work. For every registry predictor and every synthetic
// workload, testdata/fingerprints.json records an FNV-1a hash over the
// predicted direction stream plus the exact MPKI, captured from the
// reference implementation. Every future change to the prediction hot path
// must reproduce these bit-for-bit: a single flipped prediction anywhere in
// the stream changes the hash. Re-record (only when an intentional
// behavioral change is being made, never to "fix" a refactor) with:
//
//	LLBPX_RECORD_FINGERPRINTS=1 go test -run TestGoldenFingerprints .

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"llbpx"
)

const fingerprintPath = "testdata/fingerprints.json"

// fingerprint is one (predictor, workload) cell of the golden matrix.
type fingerprint struct {
	// Hash is the 64-bit FNV-1a over the direction stream (one byte per
	// conditional branch: 'T' or 'N'), in hex.
	Hash string `json:"hash"`
	// Cond is the number of conditional branches hashed.
	Cond uint64 `json:"cond"`
	// MPKI is the exact mispredictions-per-kilo-instruction over the span;
	// float64 JSON round-trips exactly, so equality is bit-exact.
	MPKI float64 `json:"mpki"`
}

// fpShortPredictors / fpShortWorkloads are the -short subset: the three
// hot-path predictors over three structurally distinct workloads.
var (
	fpShortPredictors = map[string]bool{"tsl-64k": true, "llbp": true, "llbp-x": true}
	fpShortWorkloads  = map[string]bool{"nodeapp": true, "whiskey": true, "tpcc": true}
)

// fpDrive runs p over the workload's full recorded stream (warm + compare
// segments, ~120k instructions) and returns the fingerprint.
func fpDrive(p llbpx.Predictor, st *rtStream) fingerprint {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	var cond, mis, instr uint64
	for _, seg := range [][]llbpx.Branch{st.warm, st.compare} {
		for _, b := range seg {
			instr += b.Instructions()
			if !b.Kind.Conditional() {
				p.TrackUnconditional(b)
				continue
			}
			pred := p.Predict(b.PC)
			byte_ := byte('N')
			if pred.Taken {
				byte_ = 'T'
			}
			h ^= uint64(byte_)
			h *= fnvPrime
			cond++
			if pred.Taken != b.Taken {
				mis++
			}
			p.Update(b, pred)
		}
	}
	var mpki float64
	if instr > 0 {
		mpki = float64(mis) / float64(instr) * 1000
	}
	return fingerprint{Hash: fmt.Sprintf("%016x", h), Cond: cond, MPKI: mpki}
}

func loadFingerprints(t *testing.T) map[string]fingerprint {
	t.Helper()
	data, err := os.ReadFile(fingerprintPath)
	if err != nil {
		t.Fatalf("golden fingerprints missing (record with LLBPX_RECORD_FINGERPRINTS=1): %v", err)
	}
	var out map[string]fingerprint
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("corrupt %s: %v", fingerprintPath, err)
	}
	return out
}

// TestGoldenFingerprints asserts bit-identical reproduction of the recorded
// direction streams for the full 12x14 (predictor, workload) matrix, or the
// 3x3 hot-path subset in -short mode.
func TestGoldenFingerprints(t *testing.T) {
	recording := os.Getenv("LLBPX_RECORD_FINGERPRINTS") != ""
	var golden map[string]fingerprint
	if !recording {
		golden = loadFingerprints(t)
	}

	type cell struct {
		key string
		fp  fingerprint
	}
	results := make(chan cell, len(llbpx.PredictorNames())*len(llbpx.WorkloadNames()))
	cells := 0
	for _, predName := range llbpx.PredictorNames() {
		for _, wlName := range llbpx.WorkloadNames() {
			if testing.Short() && !recording &&
				!(fpShortPredictors[predName] && fpShortWorkloads[wlName]) {
				continue
			}
			predName, wlName := predName, wlName
			key := predName + "/" + wlName
			cells++
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				st := rtStreams()[wlName]
				if st == nil {
					t.Fatalf("no stream for workload %q", wlName)
				}
				p, err := llbpx.NewPredictorByName(predName)
				if err != nil {
					t.Fatal(err)
				}
				got := fpDrive(p, st)
				results <- cell{key, got}
				if recording {
					return
				}
				want, ok := golden[key]
				if !ok {
					t.Fatalf("no golden fingerprint for %s — record with LLBPX_RECORD_FINGERPRINTS=1", key)
				}
				if got != want {
					t.Errorf("prediction stream diverged from golden:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}

	if recording {
		// Cleanup runs after all parallel subtests finish.
		t.Cleanup(func() {
			close(results)
			recorded := make(map[string]fingerprint, cells)
			for c := range results {
				recorded[c.key] = c.fp
			}
			if len(recorded) != cells {
				t.Fatalf("recorded %d cells, expected %d", len(recorded), cells)
			}
			if err := os.MkdirAll(filepath.Dir(fingerprintPath), 0o755); err != nil {
				t.Fatal(err)
			}
			data, err := json.MarshalIndent(recorded, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(fingerprintPath, append(data, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("recorded %d fingerprints to %s", len(recorded), fingerprintPath)
		})
	}
}
