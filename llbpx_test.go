package llbpx_test

import (
	"bytes"
	"testing"

	"llbpx"
)

func TestPublicAPISimulation(t *testing.T) {
	prof, err := llbpx.WorkloadByName("kafka")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	p, err := llbpx.NewLLBPX(llbpx.LLBPXDefault())
	if err != nil {
		t.Fatal(err)
	}
	res, err := llbpx.Simulate(p, llbpx.NewGenerator(prog),
		llbpx.SimOptions{WarmupInstr: 100_000, MeasureInstr: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup may overshoot by a few instructions (the boundary lands
	// mid-branch), shaving the same amount off the measured phase.
	if res.Measured.Instructions < 195_000 {
		t.Fatalf("measured only %d instructions", res.Measured.Instructions)
	}
	if res.MPKI() < 0 || res.MPKI() > 100 {
		t.Fatalf("implausible MPKI %v", res.MPKI())
	}
}

func TestPublicAPIPredictorFamily(t *testing.T) {
	builders := []func() (llbpx.Predictor, error){
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL8K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL16K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL32K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL64K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL128K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL512K()) },
		func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSLInf()) },
		func() (llbpx.Predictor, error) { return llbpx.NewLLBP(llbpx.LLBPDefault()) },
		func() (llbpx.Predictor, error) { return llbpx.NewLLBP(llbpx.LLBPZeroLatency()) },
		func() (llbpx.Predictor, error) { return llbpx.NewLLBPX(llbpx.LLBPXDefault()) },
	}
	for i, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		pred := p.Predict(0x1234)
		p.Update(llbpx.Branch{PC: 0x1234, Kind: llbpx.CondDirect, Taken: pred.Taken, InstrGap: 4}, pred)
		p.TrackUnconditional(llbpx.Branch{PC: 0x2000, Kind: llbpx.Call, Taken: true, InstrGap: 4})
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	prof, _ := llbpx.WorkloadByName("delta")
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := llbpx.NewGenerator(prog)
	var branches []llbpx.Branch
	for i := 0; i < 5000; i++ {
		b, _ := gen.Next()
		branches = append(branches, b)
	}
	var buf bytes.Buffer
	if err := llbpx.WriteTrace(&buf, branches); err != nil {
		t.Fatal(err)
	}
	got, err := llbpx.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(branches) {
		t.Fatalf("roundtrip lost records: %d vs %d", len(got), len(branches))
	}
	for i := range got {
		if got[i] != branches[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	ids := llbpx.ExperimentIDs()
	if len(ids) < 19 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	for _, id := range ids {
		if desc, ok := llbpx.DescribeExperiment(id); !ok || desc == "" {
			t.Errorf("experiment %s lacks a description", id)
		}
	}
}

func TestHistoryLengthsExposed(t *testing.T) {
	lens := llbpx.HistoryLengths()
	if len(lens) != 21 || lens[0] != 6 || lens[20] != 3000 {
		t.Fatalf("history lengths wrong: %v", lens)
	}
	// The returned slice must be a copy.
	lens[0] = 999
	if llbpx.HistoryLengths()[0] != 6 {
		t.Fatal("HistoryLengths leaked internal state")
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(llbpx.Workloads()) != 14 || len(llbpx.WorkloadNames()) != 14 {
		t.Fatal("14 Table I workloads expected")
	}
	if _, err := llbpx.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload must error")
	}
}
