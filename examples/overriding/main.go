// overriding demonstrates the paper's Section VII-C overriding-front-end
// study (Figure 14b): when every slow-stage correction of the fast
// single-cycle prediction costs a 3-cycle redirect, LLBP-X — whose pattern
// buffer answers in the fast stage — beats simply doubling the TAGE to
// 128KB.
package main

import (
	"fmt"
	"log"

	"llbpx"
)

func main() {
	prof, err := llbpx.WorkloadByName("tomcat")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		log.Fatal(err)
	}
	opt := llbpx.SimOptions{WarmupInstr: 1_500_000, MeasureInstr: 2_500_000}
	coreCfg := llbpx.ServerCore() // includes the 3-cycle override penalty

	run := func(label string, p llbpx.Predictor) llbpx.CoreResult {
		res, err := llbpx.Simulate(p, llbpx.NewGenerator(prog), opt)
		if err != nil {
			log.Fatal(err)
		}
		r := coreCfg.Run(llbpx.CoreActivity{
			Instructions: res.Measured.Instructions,
			Mispredicts:  res.Measured.Mispredicts,
			Overrides:    res.Measured.Overrides,
		})
		fmt.Printf("%-10s MPKI %.4f  overrides/kilo-instr %.2f  CPI %.4f\n",
			label, res.MPKI(),
			float64(res.Measured.Overrides)/float64(res.Measured.Instructions)*1000,
			r.CPI)
		return r
	}

	base64, err := llbpx.NewTSL(llbpx.TSL64K())
	if err != nil {
		log.Fatal(err)
	}
	tsl128, err := llbpx.NewTSL(llbpx.TSL128K())
	if err != nil {
		log.Fatal(err)
	}
	lx, err := llbpx.NewLLBPX(llbpx.LLBPXDefault())
	if err != nil {
		log.Fatal(err)
	}

	rBase := run("tsl-64k", base64)
	r128 := run("tsl-128k", tsl128)
	rX := run("llbp-x", lx)

	fmt.Printf("\nspeedup over 64K TSL under a 3-cycle overriding scheme:\n")
	fmt.Printf("  tsl-128k: %.4fx\n", llbpx.Speedup(rBase, r128))
	fmt.Printf("  llbp-x:   %.4fx\n", llbpx.Speedup(rBase, rX))
}
