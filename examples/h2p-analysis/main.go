// h2p-analysis replays the paper's Section III characterization on one
// workload: it runs an unconstrained (infinite patterns/contexts) LLBP,
// tracks which patterns usefully override the baseline, and prints the
// per-context skew (Figure 6), the history-length correlation (Figure 7),
// and the duplication-vs-context-depth trade-off (Figure 8) — the three
// observations that motivate dynamic context depth adaptation.
package main

import (
	"flag"
	"fmt"
	"log"

	"llbpx"
)

func main() {
	name := flag.String("workload", "nodeapp", "workload to characterize")
	flag.Parse()

	sc := llbpx.DefaultExperimentScale()
	sc.Workloads = []string{*name}

	for _, id := range []string{"fig6", "fig7", "fig8", "fig9"} {
		res, err := llbpx.RunExperiment(id, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table.String())
		for _, n := range res.Notes {
			fmt.Println("  note:", n)
		}
		fmt.Println()
	}
}
