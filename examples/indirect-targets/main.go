// indirect-targets exercises the front-end target substrate (Table II's
// BTB plus an ITTAGE-style indirect predictor) on a workload with
// payload-driven virtual dispatch. Direction prediction decides whether a
// branch redirects; this example shows the other half — where to — and
// how history-based target prediction tames polymorphic call sites.
package main

import (
	"fmt"
	"log"

	"llbpx"
)

func main() {
	// A service with 4% indirect call sites (virtual dispatch picked by
	// the request payload). The presets keep IndirectFrac at 0 to match
	// the paper's direction-prediction focus, so this example builds a
	// custom profile.
	prof := llbpx.DefaultWorkload("virtual-dispatch", 4096)
	prof.IndirectFrac = 0.04
	if err := prof.Validate(); err != nil {
		log.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		log.Fatal(err)
	}

	front, err := llbpx.NewBTB(llbpx.DefaultBTB())
	if err != nil {
		log.Fatal(err)
	}
	targets := llbpx.NewITTAGE(nil)
	st, err := llbpx.RunFrontEnd(llbpx.NewGenerator(prog), front, targets, 3_000_000)
	if err != nil {
		log.Fatal(err)
	}

	lookups, hits, stale := front.Stats()
	fmt.Printf("branches:            %d\n", st.Branches)
	fmt.Printf("BTB hit rate:        %.2f%% (%d lookups)\n", 100*float64(hits)/float64(lookups), lookups)
	fmt.Printf("BTB cold misses:     %d\n", st.BTBMisses)
	fmt.Printf("stale targets:       %d\n", stale)
	fmt.Printf("indirect branches:   %d\n", st.IndirectSeen)
	fmt.Printf("indirect accuracy:   %.2f%%\n", 100*targets.Accuracy())
	fmt.Printf("front-end redirects: %d (%.3f per kilo-instruction)\n",
		st.Redirects(), float64(st.Redirects())/3_000_000*1000)
}
