// custom-workload shows how to author a synthetic program model of your
// own — picking request entropy, call-graph size, and branch behaviour
// mix — and race the predictor family on it. Use it to explore how the
// LLBP designs respond to workload properties the presets don't cover.
package main

import (
	"fmt"
	"log"

	"llbpx"
)

func main() {
	// Start from the default mid-sized profile and exaggerate the
	// hard-to-predict ingredients: a large call graph, generous request
	// entropy, and a heavy payload-correlated branch mix.
	prof := llbpx.DefaultWorkload("my-service", 4242)
	prof.Functions = 700
	prof.Layers = 8
	prof.RequestTypes = 24
	prof.PayloadBits = 7
	prof.PreambleBits = 12
	prof.FracPayload = 0.16
	prof.FracMixed = 0.10
	prof.MinRequestBranches = 1200
	if err := prof.Validate(); err != nil {
		log.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %q: %d static conditional sites\n\n", prof.Name, prog.StaticCondSites())

	opt := llbpx.SimOptions{WarmupInstr: 1_500_000, MeasureInstr: 2_500_000}
	predictors := []struct {
		label string
		build func() (llbpx.Predictor, error)
	}{
		{"tsl-64k", func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL64K()) }},
		{"llbp", func() (llbpx.Predictor, error) { return llbpx.NewLLBP(llbpx.LLBPDefault()) }},
		{"llbp-x", func() (llbpx.Predictor, error) { return llbpx.NewLLBPX(llbpx.LLBPXDefault()) }},
		{"tsl-512k", func() (llbpx.Predictor, error) { return llbpx.NewTSL(llbpx.TSL512K()) }},
	}

	var base float64
	for i, pc := range predictors {
		p, err := pc.build()
		if err != nil {
			log.Fatal(err)
		}
		res, err := llbpx.Simulate(p, llbpx.NewGenerator(prog), opt)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.MPKI()
			fmt.Printf("%-10s MPKI %.4f (baseline)\n", pc.label, res.MPKI())
			continue
		}
		fmt.Printf("%-10s MPKI %.4f (%+.2f%% vs baseline)\n",
			pc.label, res.MPKI(), 100*(base-res.MPKI())/base)
	}
}
