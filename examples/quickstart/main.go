// Quickstart: build one synthetic server workload, run the baseline 64K
// TAGE-SC-L and LLBP-X over the same branch stream, and compare MPKI —
// the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"llbpx"
)

func main() {
	prof, err := llbpx.WorkloadByName("nodeapp")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		log.Fatal(err)
	}
	opt := llbpx.SimOptions{WarmupInstr: 1_000_000, MeasureInstr: 2_000_000}

	baseline, err := llbpx.NewTSL(llbpx.TSL64K())
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := llbpx.Simulate(baseline, llbpx.NewGenerator(prog), opt)
	if err != nil {
		log.Fatal(err)
	}

	enhanced, err := llbpx.NewLLBPX(llbpx.LLBPXDefault())
	if err != nil {
		log.Fatal(err)
	}
	xRes, err := llbpx.Simulate(enhanced, llbpx.NewGenerator(prog), opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:          %s\n", prof.Name)
	fmt.Printf("64K TSL MPKI:      %.4f\n", baseRes.MPKI())
	fmt.Printf("LLBP-X MPKI:       %.4f\n", xRes.MPKI())
	fmt.Printf("MPKI reduction:    %.2f%%\n",
		100*(baseRes.MPKI()-xRes.MPKI())/baseRes.MPKI())
	fmt.Printf("2nd-level correct: %d predictions\n", xRes.Measured.SecondLevelOK)
}
