package llbpx

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/sim"
	"llbpx/internal/tage"
	"llbpx/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := map[string]func(*Config){
		"depths inverted": func(c *Config) { c.WShallow, c.WDeep = 64, 2 },
		"rcr overflow":    func(c *Config) { c.WDeep = llbp.MaxRCRDepth },
		"bad ctt":         func(c *Config) { c.CTTEntries = 2; c.CTTAssoc = 6 },
		"bad ctt tag":     func(c *Config) { c.CTTTagBits = 1 },
		"bad overflow":    func(c *Config) { c.OverflowThreshold = 0 },
		"bad sat":         func(c *Config) { c.AvgHistSat = 0 },
		"hth not a len":   func(c *Config) { c.Hth = 100 },
		"base invalid":    func(c *Config) { c.Base.PBEntries = 0 },
	}
	for name, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestHistRanges(t *testing.T) {
	c := Default()
	sh, dp := c.shallowLens(), c.deepLens()
	if len(sh) != 16 || len(dp) != 16 {
		t.Fatalf("ranges must hold 16 lengths each: %d/%d", len(sh), len(dp))
	}
	if tage.HistoryLengths[sh[0]] != 6 || tage.HistoryLengths[sh[15]] != 232 {
		t.Fatalf("shallow range must span 6..232, got %d..%d",
			tage.HistoryLengths[sh[0]], tage.HistoryLengths[sh[15]])
	}
	if tage.HistoryLengths[dp[0]] != 37 || tage.HistoryLengths[dp[15]] != 3000 {
		t.Fatalf("deep range must span 37..3000, got %d..%d",
			tage.HistoryLengths[dp[0]], tage.HistoryLengths[dp[15]])
	}
	// Without range selection both depths fall back to LLBP's 16 lengths.
	c.HistRange = false
	if len(c.shallowLens()) != len(llbp.DefaultHistIndices) {
		t.Fatal("disabled range selection must use the base lengths")
	}
}

func TestCTTTrackObserveTransition(t *testing.T) {
	ctt := newCTT(64, 4, 6, 3)
	const cid = 0xabc
	if ctt.Deep(cid) {
		t.Fatal("untracked context must be shallow")
	}
	// Observations before tracking are ignored.
	ctt.Observe(cid, true)
	if ctt.Deep(cid) {
		t.Fatal("untracked context must not transition")
	}
	ctt.Track(cid)
	for i := 0; i < 3; i++ {
		if ctt.Deep(cid) {
			t.Fatalf("transitioned after only %d long observations (sat=3)", i)
		}
		ctt.Observe(cid, true)
	}
	if !ctt.Deep(cid) {
		t.Fatal("saturated counter must flip the context deep")
	}
	toDeep, toShallow := ctt.Transitions()
	if toDeep != 1 || toShallow != 0 {
		t.Fatalf("transitions = %d/%d", toDeep, toShallow)
	}
	if ctt.DeepContexts() != 1 {
		t.Fatalf("DeepContexts = %d", ctt.DeepContexts())
	}
	// Hysteresis: draining the counter reverts to shallow.
	for i := 0; i < 3; i++ {
		ctt.Observe(cid, false)
	}
	if ctt.Deep(cid) {
		t.Fatal("drained counter must revert to shallow")
	}
	if _, toShallow = ctt.Transitions(); toShallow != 1 {
		t.Fatalf("toShallow = %d", toShallow)
	}
}

func TestCTTTrackIsIdempotentAndEvicts(t *testing.T) {
	ctt := newCTT(4, 4, 8, 3) // one set of 4 ways
	ctt.Track(1)
	ctt.Track(1)
	if ctt.Tracked() != 1 {
		t.Fatalf("re-tracking must refresh, not duplicate: %d", ctt.Tracked())
	}
	// Make cid 1 deep; filling the set must evict shallow entries first.
	for i := 0; i < 3; i++ {
		ctt.Observe(1, true)
	}
	for cid := uint64(2); cid <= 6; cid++ {
		ctt.Track(cid)
	}
	if !ctt.Deep(1) {
		t.Fatal("deep entry was evicted while shallow candidates existed")
	}
}

func TestDepthSelectionChangesContext(t *testing.T) {
	// With an oracle forcing deep, the predictor must use the deep
	// context ID stream.
	c := Default()
	c.OracleDepth = map[uint64]bool{} // empty: everything shallow
	p := MustNew(c)

	ub := func(pc uint64) core.Branch {
		return core.Branch{PC: pc, Kind: core.Call, Taken: true, InstrGap: 3}
	}
	for i := 0; i < 100; i++ {
		p.TrackUnconditional(ub(0x1000 + uint64(i)*16))
	}
	shallowCID := p.ccid

	// Same UB stream with everything deep yields a different context.
	c2 := Default()
	all := make(map[uint64]bool)
	c2.OracleDepth = all
	p2 := MustNew(c2)
	for i := 0; i < 100; i++ {
		all[p2.pcidShallow] = true // force deep for every observed context
		p2.TrackUnconditional(ub(0x1000 + uint64(i)*16))
	}
	if p2.ccid == shallowCID {
		t.Fatal("deep selection must change the active context ID")
	}
	if !p2.ccidDeepSelected {
		t.Fatal("oracle-deep context not marked deep")
	}
}

func TestEndToEndRuns(t *testing.T) {
	prof, err := workload.ByName("nodeapp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 400_000, MeasureInstr: 800_000}
	base, err := sim.Run(tage.MustNew(tage.Config64K()), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew(Default())
	res, err := sim.Run(p, workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.MPKI() > base.MPKI()*1.10 {
		t.Fatalf("LLBP-X (%.3f) much worse than baseline (%.3f)", res.MPKI(), base.MPKI())
	}
	p.FinishMeasurement()
	st := p.Stats()
	for _, key := range []string{"llbpx.overrides", "llbpx.allocs", "llbpx.contexts.live", "llbpx.store.reads"} {
		if st[key] == 0 {
			t.Errorf("stat %s unexpectedly zero", key)
		}
	}
}

func TestOracleModeSkipsCTT(t *testing.T) {
	prof, _ := workload.ByName("kafka")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.OracleDepth = map[uint64]bool{}
	p := MustNew(c)
	if _, err := sim.Run(p, workload.NewGenerator(prog), sim.Options{WarmupInstr: 100_000, MeasureInstr: 200_000}); err != nil {
		t.Fatal(err)
	}
	if p.ctt.Tracked() != 0 {
		t.Fatal("oracle mode must bypass CTT learning")
	}
	if len(p.DeepHistory()) != 0 {
		t.Fatal("oracle mode must not record transitions")
	}
}

func TestDeepHistoryFeedsOracle(t *testing.T) {
	prof, _ := workload.ByName("whiskey")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.Hth = 18 // aggressive threshold to guarantee transitions
	c.AvgHistSat = 2
	probe := MustNew(c)
	if _, err := sim.Run(probe, workload.NewGenerator(prog), sim.Options{WarmupInstr: 300_000, MeasureInstr: 600_000}); err != nil {
		t.Fatal(err)
	}
	hist := probe.DeepHistory()
	if len(hist) == 0 {
		t.Skip("no transitions at this scale; nothing to verify")
	}
	c2 := Default()
	c2.OracleDepth = hist
	replay := MustNew(c2)
	if _, err := sim.Run(replay, workload.NewGenerator(prog), sim.Options{WarmupInstr: 100_000, MeasureInstr: 200_000}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePathModeIssuesExtraPrefetches(t *testing.T) {
	prof, _ := workload.ByName("nodeapp")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 300_000, MeasureInstr: 600_000}
	c := Default()
	c.ModelFalsePath = true
	p := MustNew(c)
	if _, err := sim.Run(p, workload.NewGenerator(prog), opt); err != nil {
		t.Fatal(err)
	}
	p.FinishMeasurement()
	st := p.Stats()
	if st["llbpx.prefetch.fp"] == 0 {
		t.Fatal("false-path mode issued no wrong-path fetch attempts")
	}
}

func TestResetStatsKeepsLearnedState(t *testing.T) {
	p := MustNew(Default())
	b := core.Branch{PC: 0x100, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	u := core.Branch{PC: 0x200, Kind: core.Call, Taken: true, InstrGap: 4}
	for i := 0; i < 500; i++ {
		pred := p.Predict(b.PC)
		p.Update(b, pred)
		p.TrackUnconditional(u)
	}
	p.ResetStats()
	if st := p.Stats(); st["llbpx.overrides"] != 0 {
		t.Fatal("ResetStats must clear counters")
	}
	if !p.Predict(b.PC).Taken {
		t.Fatal("learned direction lost across ResetStats")
	}
}

func TestAllocationRespectsDepthRange(t *testing.T) {
	// With history range selection on and depth adaptation off, every
	// context is shallow, so no resident pattern may use a history length
	// beyond the shallow range (index 15 = 232 bits).
	prof, _ := workload.ByName("tpcc")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.DepthAdaptation = false
	p := MustNew(c)
	if _, err := sim.Run(p, workload.NewGenerator(prog), sim.Options{WarmupInstr: 200_000, MeasureInstr: 300_000}); err != nil {
		t.Fatal(err)
	}
	maxShallow := int8(ShallowHistIndices[len(ShallowHistIndices)-1])
	leaks := 0
	p.Directory().ForEach(func(set *llbp.PatternSet) {
		set.Patterns(func(pat *llbp.Pattern) {
			if pat.LenIdx > maxShallow {
				leaks++
			}
		})
	})
	if leaks > 0 {
		t.Fatalf("%d patterns leaked past the shallow history range", leaks)
	}
	if st := p.Stats(); st["llbpx.allocs"] == 0 {
		t.Fatal("no allocations happened")
	}
}
