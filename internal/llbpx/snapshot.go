package llbpx

import (
	"llbpx/internal/snapshot"
)

// maxDeepHistory bounds the deep-transition map accepted during decode.
const maxDeepHistory = 1 << 24

// saveState writes the CTT: every entry in row order (order is
// replacement state) plus the transition counters.
func (t *CTT) saveState(w *snapshot.Writer) {
	w.Marker("llbpx.ctt")
	for _, row := range t.sets {
		for i := range row {
			e := &row[i]
			w.U32(e.tag)
			w.I64(int64(e.avgHist))
			w.Bool(e.deep)
			w.U64(uint64(e.age))
			w.Bool(e.valid)
		}
	}
	w.U64(t.tracked)
	w.U64(t.toDeep)
	w.U64(t.toShallow)
	w.Int(t.deepCurrent)
}

// loadState restores the CTT into an empty table of the same geometry.
func (t *CTT) loadState(r *snapshot.Reader) {
	r.Marker("llbpx.ctt")
	for _, row := range t.sets {
		for i := range row {
			e := &row[i]
			e.tag = uint32(r.U64Max(uint64(t.tagMask)))
			e.avgHist = int8(r.I64In(0, int64(t.sat)))
			e.deep = r.Bool()
			e.age = uint8(r.U64Max(3))
			e.valid = r.Bool()
		}
		if r.Err() != nil {
			return
		}
	}
	t.tracked = r.U64()
	t.toDeep = r.U64()
	t.toShallow = r.U64()
	t.deepCurrent = int(r.I64In(0, int64(len(t.sets)*t.assoc)))
}

// SaveState implements snapshot.State for LLBP-X: everything LLBP
// serializes plus the CTT, the dual-depth context IDs, the prefetch-
// context ring for the false-path model, and the deep-transition history.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("llbpx.predictor")
	w.String(p.cfg.Base.Name)
	p.tsl.SaveState(w)
	p.bank.SaveState(w)
	p.rcr.SaveState(w)
	p.cd.SaveState(w)
	p.pb.SaveState(w)
	p.ctt.saveState(w)
	w.I64(p.tick)
	w.U64(p.ccidShallow)
	w.U64(p.ccidDeep)
	w.U64(p.ccid)
	w.Bool(p.ccidDeepSelected)
	w.U64(p.pcidShallow)
	w.U64(p.pcidDeep)
	w.U64(p.pcid)
	w.U64(p.prevPCID)
	for _, v := range p.pcidRing {
		w.U64(v)
	}
	w.Int(p.ringPos)
	w.Marker("llbpx.stats")
	w.U64(p.st.matches)
	w.U64(p.st.overrides)
	w.U64(p.st.useful)
	w.U64(p.st.harmful)
	w.U64(p.st.allocs)
	w.U64(p.st.allocDrops)
	for _, n := range p.st.usefulByLen {
		w.U64(n)
	}
	w.U64(p.st.deepPredict)
	w.U64(p.st.fpPrefetch)
	w.Int(p.trustWeak)
	w.Int(p.chooser)
	w.U64(p.probeClock)
	w.Count(len(p.deepHistory))
	for cid := range p.deepHistory {
		w.U64(cid)
	}
	w.Bool(p.tracker != nil)
	if p.tracker != nil {
		p.tracker.SaveState(w)
	}
}

// LoadState implements snapshot.State; the receiver must be a cold
// predictor of the same configuration.
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("llbpx.predictor")
	if name := r.String(256); r.Err() == nil && name != p.cfg.Base.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Base.Name)
	}
	if r.Err() != nil {
		return
	}
	p.tsl.LoadState(r)
	p.bank.LoadState(r)
	p.rcr.LoadState(r)
	p.shallowDelay.Rebuild(&p.rcr, p.cfg.Base.D, p.cfg.WShallow)
	p.deepDelay.Rebuild(&p.rcr, p.cfg.Base.D, p.cfg.WDeep)
	p.cd.LoadState(r)
	p.pb.LoadState(r, p.cd.Lookup)
	p.ctt.loadState(r)
	p.tick = r.I64In(0, 1<<62)
	p.ccidShallow = r.U64()
	p.ccidDeep = r.U64()
	p.ccid = r.U64()
	p.ccidDeepSelected = r.Bool()
	p.pcidShallow = r.U64()
	p.pcidDeep = r.U64()
	p.pcid = r.U64()
	p.prevPCID = r.U64()
	for i := range p.pcidRing {
		p.pcidRing[i] = r.U64()
	}
	p.ringPos = int(r.I64In(0, int64(len(p.pcidRing)-1)))
	r.Marker("llbpx.stats")
	p.st.matches = r.U64()
	p.st.overrides = r.U64()
	p.st.useful = r.U64()
	p.st.harmful = r.U64()
	p.st.allocs = r.U64()
	p.st.allocDrops = r.U64()
	for i := range p.st.usefulByLen {
		p.st.usefulByLen[i] = r.U64()
	}
	p.st.deepPredict = r.U64()
	p.st.fpPrefetch = r.U64()
	p.trustWeak = int(r.I64In(-8, 7))
	p.chooser = int(r.I64In(chooserMin, chooserMax))
	p.probeClock = r.U64()
	n := r.Count(maxDeepHistory)
	for i := 0; i < n && r.Err() == nil; i++ {
		p.deepHistory[r.U64()] = true
	}
	if hasTracker := r.Bool(); r.Err() == nil {
		if hasTracker != (p.tracker != nil) {
			r.Fail("useful tracker presence mismatch")
			return
		}
		if p.tracker != nil {
			p.tracker.LoadState(r)
		}
	}
}
