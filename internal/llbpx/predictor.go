package llbpx

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/patternpool"
	"llbpx/internal/tage"
)

// xStats are LLBP-X's measurement counters (beyond the pattern buffer's).
type xStats struct {
	matches     uint64
	overrides   uint64
	useful      uint64
	harmful     uint64
	allocs      uint64
	allocDrops  uint64 // allocations dropped by history range selection
	usefulByLen [tage.NumTables]uint64
	deepPredict uint64 // predictions served under a deep context
	fpPrefetch  uint64 // modeled false-path prefetch attempts
}

// Predictor is LLBP-X. Like llbp.Predictor it wraps an unmodified
// TAGE-SC-L; it differs in forming two context IDs per depth class,
// selecting between them with the CTT, and restricting each depth's
// pattern sets to its history-length range. It implements core.Predictor.
type Predictor struct {
	cfg  Config
	tsl  *tage.Predictor
	bank *tage.TagBank
	rcr  llbp.RCR
	// D-delayed ContextID(0, w) lines serving the skip-D context IDs, one
	// per window width.
	shallowDelay, deepDelay llbp.CtxDelay
	cd                      *llbp.ContextDir
	pb                      *llbp.PatternBuffer
	ctt                     *CTT

	shallowLens []int
	deepLens    []int

	tick int64

	// Current (skip-D) context IDs at both depths, and the selected one.
	ccidShallow, ccidDeep uint64
	ccid                  uint64
	ccidDeepSelected      bool
	// Prefetch (no-skip) context IDs.
	pcidShallow, pcidDeep uint64
	pcid                  uint64
	prevPCID              uint64
	// pcidRing remembers recent distinct prefetch contexts; the false-path
	// model re-requests evicted ones (reconvergent wrong paths revisit
	// recently active contexts).
	pcidRing [128]uint64
	ringPos  int

	cur xPredState

	st      xStats
	tracker *llbp.UsefulTracker

	trustWeak  int
	chooser    int
	probeClock uint64

	// deepHistory records every shallow CID that ever transitioned deep,
	// for deriving Opt-W oracle maps.
	deepHistory map[uint64]bool
}

type xPredState struct {
	pc       uint64
	d        tage.Detail
	set      *llbp.PatternSet
	entry    *llbp.PBEntry
	pat      *llbp.Pattern
	patLen   int
	eligible bool
	provided bool
	deep     bool // prediction served under the deep context
	tags     [tage.NumTables]uint32
}

const (
	chooserMax  = 255
	chooserMin  = -256
	chooserGate = -12
)

// New constructs an LLBP-X predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tsl, err := tage.New(cfg.Base.TSL)
	if err != nil {
		return nil, fmt.Errorf("llbpx %q: baseline: %w", cfg.Base.Name, err)
	}
	p := &Predictor{
		cfg:          cfg,
		tsl:          tsl,
		bank:         tage.NewTagBank(cfg.Base.TagBits),
		pb:           llbp.NewPatternBuffer(cfg.Base.PBEntries),
		ctt:          newCTT(cfg.CTTEntries, cfg.CTTAssoc, cfg.CTTTagBits, cfg.AvgHistSat),
		shallowLens:  cfg.shallowLens(),
		deepLens:     cfg.deepLens(),
		shallowDelay: llbp.NewCtxDelay(cfg.Base.D, cfg.WShallow),
		deepDelay:    llbp.NewCtxDelay(cfg.Base.D, cfg.WDeep),
		deepHistory:  make(map[uint64]bool),
	}
	p.cd = llbp.NewContextDir(&p.cfg.Base)
	if cfg.Base.CollectUseful {
		p.tracker = llbp.NewUsefulTracker()
	}
	return p, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("llbpx: invalid config: %v", err))
	}
	return p
}

// Name implements core.Predictor.
func (p *Predictor) Name() string { return p.cfg.Base.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Baseline exposes the first-level TAGE-SC-L.
func (p *Predictor) Baseline() *tage.Predictor { return p.tsl }

// Tracker returns processed useful-pattern statistics, or nil when
// CollectUseful is off.
func (p *Predictor) Tracker() *llbp.UsefulStats {
	if p.tracker == nil {
		return nil
	}
	return p.tracker.Snapshot()
}

// DeepHistory returns every shallow context ID that transitioned deep
// during the run — the input for building an Opt-W oracle.
func (p *Predictor) DeepHistory() map[uint64]bool {
	out := make(map[uint64]bool, len(p.deepHistory))
	for k, v := range p.deepHistory {
		out[k] = v
	}
	return out
}

// isDeep resolves the depth decision for a shallow context ID.
func (p *Predictor) isDeep(shallowCID uint64) bool {
	if p.cfg.OracleDepth != nil {
		return p.cfg.OracleDepth[shallowCID]
	}
	if !p.cfg.DepthAdaptation {
		return false
	}
	return p.ctt.Deep(shallowCID)
}

// activeLens returns the admitted history indices for a depth class.
func (p *Predictor) activeLens(deep bool) []int {
	if deep {
		return p.deepLens
	}
	return p.shallowLens
}

func (p *Predictor) buckets() int {
	if p.cfg.Base.InfinitePatterns {
		return 1
	}
	return p.cfg.Base.Buckets
}

// Predict implements core.Predictor.
func (p *Predictor) Predict(pc uint64) core.Prediction {
	d := p.tsl.Lookup(pc)
	c := &p.cur
	c.pc, c.d = pc, d
	c.set, c.entry, c.pat, c.provided, c.eligible = nil, nil, nil, false, false
	c.patLen = -1
	c.deep = p.ccidDeepSelected

	lens := p.activeLens(c.deep)
	for _, li := range lens {
		c.tags[li] = p.bank.Tag(pc, li)
	}

	entry := p.pb.Get(p.ccid)
	if entry == nil && p.cfg.Base.LatencyBranches == 0 {
		if set := p.cd.Lookup(p.ccid); set != nil {
			entry = p.pb.Fill(p.ccid, set, p.tick, p.tick, true, false)
		}
	}
	if entry != nil {
		entry.LastUse = p.tick
		if entry.AvailAt > p.tick {
			entry.WasLate = true
		} else {
			c.entry = entry
			c.set = entry.Set
			c.pat, c.patLen = c.set.BestMatch(&c.tags)
		}
	}

	base := d.TageTaken
	provLen, conf := d.ProviderLen, d.Confidence
	gated := false
	if c.pat != nil {
		if p.cfg.Base.GateWeakOverride && c.pat.Confidence() == 1 && p.trustWeak < 0 {
			gated = true
		}
		if p.cfg.Base.UseChooser && c.pat.Taken() != d.FinalTaken && p.chooser <= chooserGate {
			p.probeClock++
			if p.probeClock&15 != 0 {
				gated = true
			}
		}
	}
	if c.pat != nil && tage.HistoryLengths[c.patLen] >= d.ProviderLen {
		c.eligible = true
	}
	if c.eligible && !gated {
		c.provided = true
		base = c.pat.Taken()
		provLen = tage.HistoryLengths[c.patLen]
		conf = c.pat.Confidence()
		c.entry.Used = true
		if c.deep {
			p.st.deepPredict++
		}
	}

	final := base
	switch {
	case d.LoopValid:
		final = d.LoopTaken
	case !c.provided:
		final = d.FinalTaken
	default:
		// LLBP-X feeds the combined PB+TAGE result into the SC (unlike the
		// original LLBP, which suppresses it).
		final, _ = p.tsl.SCDecide(pc, base, conf)
	}

	fast := d.BimTaken
	if c.provided {
		fast = base
	}
	return core.Prediction{
		Taken:           final,
		ProviderLen:     provLen,
		Confidence:      conf,
		FastTaken:       fast,
		FromSecondLevel: c.provided,
	}
}

// Update implements core.Predictor.
func (p *Predictor) Update(b core.Branch, pred core.Prediction) {
	c := &p.cur
	d := c.d
	taken := b.Taken
	mis := pred.Taken != taken

	if c.provided {
		p.st.overrides++
		baselineWrong := d.FinalTaken != taken
		right := c.pat.Taken() == taken
		switch {
		case right && baselineWrong:
			p.st.useful++
			p.st.usefulByLen[c.patLen]++
			if p.tracker != nil {
				p.tracker.Record(c.set.CID, c.tags[c.patLen], c.patLen)
			}
		case !right && !baselineWrong:
			p.st.harmful++
		}
		if p.cfg.Base.UseChooser && c.pat.Taken() != d.FinalTaken {
			if right {
				if p.chooser < chooserMax {
					p.chooser++
				}
			} else if p.chooser > chooserMin {
				p.chooser--
			}
		}
	}

	if c.pat != nil && c.pat.Confidence() == 1 && c.pat.Taken() != d.TageTaken {
		if c.pat.Taken() == taken {
			if p.trustWeak < 7 {
				p.trustWeak++
			}
		} else if p.trustWeak > -8 {
			p.trustWeak--
		}
	}

	if c.pat != nil {
		p.st.matches++
		c.pat.CtrUpdate(taken)
		if c.provided && c.pat.Taken() != taken {
			c.pat.CtrUpdate(taken) // fast-flip stale confident patterns
		}
		c.set.Dirty = true
	}

	if mis {
		p.allocate(b)
	}

	scInput := d.TageTaken
	if c.provided {
		scInput = c.pat.Taken()
	}
	p.tsl.CommitDetail(b, d, scInput, !d.LoopValid)
	p.bank.Update(p.tsl.History())
	p.tick++

	if mis && p.cfg.ModelFalsePath {
		p.falsePathPrefetch()
	}
}

// allocate installs a new pattern with a longer history, honoring the
// depth class's history range: out-of-range allocations are dropped, but
// the CTT's avg-hist-len still observes them (the paper's rule), so a
// shallow context accumulating long-history demand transitions deep.
func (p *Predictor) allocate(b core.Branch) {
	c := &p.cur
	usedLenIdx := -1
	if c.provided {
		usedLenIdx = c.patLen
	} else if c.d.Provider >= 0 {
		usedLenIdx = c.d.Provider
	}
	// The desired length comes from the full TAGE ladder; the depth
	// class's range then decides whether it is admissible.
	wantIdx := usedLenIdx + 1
	if wantIdx >= tage.NumTables {
		return
	}
	wantBits := tage.HistoryLengths[wantIdx]

	// Depth adaptation observes every allocation attempt.
	if p.cfg.DepthAdaptation && p.cfg.OracleDepth == nil {
		p.observeAllocation(wantBits)
	}

	lens := p.activeLens(c.deep)
	allocIdx := llbp.NextActiveLen(lens, usedLenIdx)
	if allocIdx < 0 {
		p.st.allocDrops++
		return
	}
	set := c.set
	if set == nil {
		var evictedCID uint64
		var evicted bool
		set, evictedCID, evicted = p.cd.Insert(p.ccid)
		if evicted {
			p.pb.Drop(evictedCID)
		}
		p.pb.Fill(p.ccid, set, p.tick, p.tick, false, false)
	}
	// The tag bank state is unchanged since Predict (history advances in
	// CommitDetail, after allocation), so computing the tag here is
	// equivalent and covers lengths outside the predict-time range.
	tag := p.bank.Tag(c.pc, allocIdx)
	set.Allocate(tag, allocIdx, b.Taken, llbp.BucketOf(lens, p.buckets(), allocIdx), p.buckets())
	p.st.allocs++

	// Overflow signal (the paper's first heuristic): a pattern set whose
	// occupancy exceeds T_max starts CTT tracking for its shallow context.
	if p.cfg.DepthAdaptation && p.cfg.OracleDepth == nil &&
		set.Size() >= p.cfg.OverflowThreshold {
		p.ctt.Track(p.ccidShallow)
	}
}

// observeAllocation feeds the avg-hist-len counter of the current shallow
// context and records transitions.
func (p *Predictor) observeAllocation(wantBits int) {
	wasDeep := p.ctt.Deep(p.ccidShallow)
	p.ctt.Observe(p.ccidShallow, wantBits > p.cfg.Hth)
	if !wasDeep && p.ctt.Deep(p.ccidShallow) {
		p.deepHistory[p.ccidShallow] = true
	}
}

// TrackUnconditional implements core.Predictor.
func (p *Predictor) TrackUnconditional(b core.Branch) {
	p.tsl.TrackUnconditional(b)
	p.bank.Update(p.tsl.History())
	p.tick++

	p.rcr.Push(b.PC)
	p.pcidShallow = p.rcr.ContextID(0, p.cfg.WShallow)
	p.pcidDeep = p.rcr.ContextID(0, p.cfg.WDeep)
	p.ccidShallow = p.shallowDelay.Shift(p.pcidShallow)
	p.ccidDeep = p.deepDelay.Shift(p.pcidDeep)
	p.ccidDeepSelected = p.isDeep(p.ccidShallow)
	if p.ccidDeepSelected {
		p.ccid = p.ccidDeep
	} else {
		p.ccid = p.ccidShallow
	}
	newPCID := p.pcidShallow
	if p.isDeep(p.pcidShallow) {
		newPCID = p.pcidDeep
	}
	if newPCID != p.pcid {
		p.prevPCID = p.pcid
		p.pcid = newPCID
		p.pcidRing[p.ringPos] = newPCID
		p.ringPos = (p.ringPos + 1) % len(p.pcidRing)
		p.prefetch(newPCID, false)
	}
}

// RunBatch implements core.BatchPredictor: the canonical per-branch loop
// with direct (devirtualized) calls on the concrete receiver.
func (p *Predictor) RunBatch(batch []core.Branch, preds []core.Prediction) {
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = core.Prediction{Taken: true}
		}
	}
}

func (p *Predictor) prefetch(cid uint64, falsePath bool) {
	if p.pb.Get(cid) != nil {
		return
	}
	if set := p.cd.Lookup(cid); set != nil {
		p.pb.Fill(cid, set, p.tick, p.tick+int64(p.cfg.Base.LatencyBranches), true, falsePath)
	}
}

// falsePathPrefetch models the wrong-path fetches a real front end issues
// in a misprediction's shadow: it re-requests recently active prefetch
// contexts that have already left the pattern buffer. Reconvergent wrong
// paths often revisit those contexts, so the fills are sometimes useful
// (coverage) and often redundant (over-prefetch) — Figure 14a's trade-off.
func (p *Predictor) falsePathPrefetch() {
	p.st.fpPrefetch++
	fetched := 0
	for i := 0; i < len(p.pcidRing) && fetched < 2; i++ {
		cid := p.pcidRing[(p.ringPos+i)%len(p.pcidRing)] // oldest first
		if cid == 0 || cid == p.pcid || p.pb.Get(cid) != nil {
			continue
		}
		if set := p.cd.Lookup(cid); set != nil {
			p.pb.Fill(cid, set, p.tick, p.tick+int64(p.cfg.Base.LatencyBranches), true, true)
			fetched++
		}
	}
}

// Stats implements core.StatsProvider.
func (p *Predictor) Stats() map[string]float64 {
	toDeep, toShallow := p.ctt.Transitions()
	m := map[string]float64{
		"llbpx.matches":          float64(p.st.matches),
		"llbpx.overrides":        float64(p.st.overrides),
		"llbpx.useful":           float64(p.st.useful),
		"llbpx.harmful":          float64(p.st.harmful),
		"llbpx.allocs":           float64(p.st.allocs),
		"llbpx.allocdrops":       float64(p.st.allocDrops),
		"llbpx.deep.predict":     float64(p.st.deepPredict),
		"llbpx.ctt.tracked":      float64(p.ctt.Tracked()),
		"llbpx.ctt.todeep":       float64(toDeep),
		"llbpx.ctt.toshallow":    float64(toShallow),
		"llbpx.ctt.deepnow":      float64(p.ctt.DeepContexts()),
		"llbpx.contexts.live":    float64(p.cd.Live()),
		"llbpx.contexts.evicted": float64(p.cd.Evicted()),
		"llbpx.prefetch.issued":  float64(p.pb.Stats.Issued),
		"llbpx.prefetch.ontime":  float64(p.pb.Stats.OnTime),
		"llbpx.prefetch.late":    float64(p.pb.Stats.Late),
		"llbpx.prefetch.unused":  float64(p.pb.Stats.Unused),
		"llbpx.prefetch.fp":      float64(p.st.fpPrefetch),
		"llbpx.prefetch.fpfill":  float64(p.pb.Stats.FPIssued),
		"llbpx.prefetch.fpused":  float64(p.pb.Stats.FPUsed),
		"llbpx.store.reads":      float64(p.pb.Stats.StoreRd),
		"llbpx.store.writes":     float64(p.pb.Stats.StoreWr),
	}
	for li, n := range p.st.usefulByLen {
		if n > 0 {
			m[fmt.Sprintf("llbpx.useful.len%d", tage.HistoryLengths[li])] = float64(n)
		}
	}
	return m
}

// ResetStats implements core.Resetter.
func (p *Predictor) ResetStats() {
	p.st = xStats{}
	p.pb.Stats = llbp.PrefetchStats{}
	if p.tracker != nil {
		p.tracker.Reset()
	}
}

// FinishMeasurement folds resident pattern-buffer entries into the
// prefetch statistics.
func (p *Predictor) FinishMeasurement() { p.pb.FlushStats() }

// Directory exposes the context directory for diagnostics.
func (p *Predictor) Directory() *llbp.ContextDir { return p.cd }

// AttachPatternPool backs the second-level pattern store with a shared
// pool namespace (patternpool.Attacher). Must be called before the first
// branch executes.
func (p *Predictor) AttachPatternPool(ns *patternpool.Namespace) { p.cd.AttachPool(ns) }

// ReleasePatternStore hands the pattern store's storage back to the pool
// and empties the pattern buffer (patternpool.Releaser). The predictor's
// second level is empty afterwards; the TAGE-SC-L first level keeps its
// state.
func (p *Predictor) ReleasePatternStore() {
	p.pb.Reset()
	p.cd.Release()
}
