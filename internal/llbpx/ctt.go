package llbpx

import "llbpx/internal/hashutil"

// cttEntry is one context tracking table entry: a short tag, the
// avg-hist-len saturating counter, the depth bit, and replacement age.
type cttEntry struct {
	tag     uint32
	avgHist int8
	deep    bool
	age     uint8
	valid   bool
}

// CTT is the context tracking table: a small set-associative structure,
// indexed by shallow context IDs, that decides each context's depth. It
// tracks only contexts whose pattern sets signalled overflow.
type CTT struct {
	sets    [][]cttEntry
	assoc   int
	mask    uint64
	tagMask uint32
	sat     int8

	// Measurement counters.
	tracked     uint64
	toDeep      uint64
	toShallow   uint64
	deepCurrent int
}

// newCTT builds a table with the given geometry.
func newCTT(entries, assoc int, tagBits uint, sat int) *CTT {
	numSets := 1
	for numSets*2*assoc <= entries {
		numSets *= 2
	}
	t := &CTT{
		assoc:   entries / numSets,
		mask:    uint64(numSets - 1),
		tagMask: uint32(uint64(1)<<tagBits - 1),
		sat:     int8(sat),
	}
	t.sets = make([][]cttEntry, numSets)
	for i := range t.sets {
		t.sets[i] = make([]cttEntry, t.assoc)
	}
	return t
}

func (t *CTT) index(cid uint64) (set uint64, tag uint32) {
	h := hashutil.Mix64(cid)
	return h & t.mask, uint32(h>>32) & t.tagMask
}

// Deep reports whether the context identified by the shallow cid should
// use the deep depth. Untracked contexts are shallow.
func (t *CTT) Deep(cid uint64) bool {
	set, tag := t.index(cid)
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if e.valid && e.tag == tag {
			return e.deep
		}
	}
	return false
}

// Track begins monitoring a context after its pattern set signalled
// overflow; existing entries are refreshed, new entries evict by age among
// shallow entries first.
func (t *CTT) Track(cid uint64) {
	set, tag := t.index(cid)
	row := t.sets[set]
	for i := range row {
		e := &row[i]
		if e.valid && e.tag == tag {
			e.age = 0
			return
		}
	}
	victim := -1
	for i := range row {
		if !row[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		// Prefer evicting shallow (less proven) entries, oldest first.
		bestAge := -1
		for i := range row {
			e := &row[i]
			score := int(e.age)
			if !e.deep {
				score += 256
			}
			if score > bestAge {
				bestAge, victim = score, i
			}
		}
		if row[victim].deep {
			t.deepCurrent--
		}
	}
	row[victim] = cttEntry{tag: tag, valid: true}
	t.tracked++
	t.ageRow(row, victim)
}

func (t *CTT) ageRow(row []cttEntry, except int) {
	for i := range row {
		if i != except && row[i].valid && row[i].age < 3 {
			row[i].age++
		}
	}
}

// Observe feeds a tracked context one pattern-allocation event: longHist
// reports whether the allocated pattern's history length exceeded H_th.
// Reaching saturation flips the context deep; draining to zero flips it
// back to shallow. Untracked contexts are ignored.
func (t *CTT) Observe(cid uint64, longHist bool) {
	set, tag := t.index(cid)
	for i := range t.sets[set] {
		e := &t.sets[set][i]
		if !e.valid || e.tag != tag {
			continue
		}
		if longHist {
			if e.avgHist < t.sat {
				e.avgHist++
			}
			if e.avgHist >= t.sat && !e.deep {
				e.deep = true
				t.toDeep++
				t.deepCurrent++
			}
		} else {
			if e.avgHist > 0 {
				e.avgHist--
			}
			if e.avgHist == 0 && e.deep {
				e.deep = false
				t.toShallow++
				t.deepCurrent--
			}
		}
		return
	}
}

// DeepContexts returns the number of currently deep tracked contexts.
func (t *CTT) DeepContexts() int { return t.deepCurrent }

// Transitions returns the cumulative shallow->deep and deep->shallow
// transition counts.
func (t *CTT) Transitions() (toDeep, toShallow uint64) { return t.toDeep, t.toShallow }

// Tracked returns the number of Track insertions performed.
func (t *CTT) Tracked() uint64 { return t.tracked }
