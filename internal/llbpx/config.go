// Package llbpx implements LLBP-X, the paper's contribution: LLBP enhanced
// with dynamic context depth adaptation and history range selection.
//
// Every context starts shallow (W=2), minimizing pattern duplication and
// training time. A Context Tracking Table (CTT) watches pattern sets that
// overflow with confident patterns; when the history length of subsequent
// allocations stays above H_th, the context transitions to a deep depth
// (W=64), spreading its patterns across many pattern sets and relieving
// contention. Shallow contexts store only TAGE's 16 shortest history
// lengths, deep contexts the 16 longest, which restores coverage of all 21
// lengths with the same four-bucket hardware.
package llbpx

import (
	"fmt"

	"llbpx/internal/llbp"
	"llbpx/internal/tage"
)

// ShallowHistIndices are the history lengths (indices into
// tage.HistoryLengths) available to shallow (W=2) contexts: the 16
// shortest, 6..232 bits.
var ShallowHistIndices = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// DeepHistIndices are the lengths available to deep (W=64) contexts: the
// 16 longest, 37..3000 bits.
var DeepHistIndices = []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}

// Config parameterizes an LLBP-X instance. Base carries the shared LLBP
// structure parameters (pattern store geometry, tags, latency, baseline
// TSL); its W field is ignored in favour of WShallow/WDeep.
type Config struct {
	// Base is the underlying LLBP structure configuration.
	Base llbp.Config

	// WShallow and WDeep are the two context depths (2 and 64).
	WShallow, WDeep int

	// CTTEntries and CTTAssoc shape the context tracking table (6K
	// entries, 6-way in the paper; 9KB of storage).
	CTTEntries, CTTAssoc int
	// CTTTagBits is the CTT entry tag width (6).
	CTTTagBits uint

	// OverflowThreshold is the number of confident patterns in a pattern
	// set at which the PB signals the CTT to start tracking the context
	// (7).
	OverflowThreshold int
	// Hth is the history length (bits) above which a pattern allocation
	// increments the avg-hist-len counter. The paper uses 232 for its
	// gem5/Google traces; this reproduction defaults to 37 because the
	// synthetic workloads' H2P pattern demand concentrates at 37-232 bits
	// (the sens-hth experiment sweeps the full range and shows the same
	// flat sensitivity the paper reports).
	Hth int
	// AvgHistSat is the avg-hist-len counter saturation value; reaching it
	// flips the context deep, returning to zero flips it back (3-bit
	// counter, threshold 7).
	AvgHistSat int

	// DepthAdaptation enables dynamic context depth adaptation; without it
	// every context stays shallow.
	DepthAdaptation bool
	// HistRange enables history range selection (shallow/deep length
	// ranges); without it both depths use the original LLBP's 16 lengths.
	HistRange bool

	// OracleDepth, when non-nil, bypasses CTT learning entirely: contexts
	// listed true start deep and never transition (the paper's LLBP-X
	// Opt-W configuration). Keys are shallow context IDs.
	OracleDepth map[uint64]bool

	// ModelFalsePath injects wrong-path prefetches after mispredictions
	// (see Figure 14a): the front end runs ahead on the wrong path and
	// issues pattern-set fetches that are sometimes reused after
	// reconvergence.
	ModelFalsePath bool
}

// Default returns the paper's LLBP-X configuration.
func Default() Config {
	base := llbp.Default()
	base.Name = "llbp-x"
	return Config{
		Base:              base,
		WShallow:          2,
		WDeep:             64,
		CTTEntries:        6 * 1024,
		CTTAssoc:          6,
		CTTTagBits:        6,
		OverflowThreshold: 7,
		Hth:               37,
		AvgHistSat:        7,
		DepthAdaptation:   true,
		HistRange:         true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	switch {
	case c.WShallow < 1 || c.WDeep <= c.WShallow:
		return fmt.Errorf("llbpx %q: invalid depths %d/%d", c.Base.Name, c.WShallow, c.WDeep)
	case c.Base.D+c.WDeep > llbp.MaxRCRDepth:
		return fmt.Errorf("llbpx %q: D+WDeep %d exceeds RCR depth", c.Base.Name, c.Base.D+c.WDeep)
	case c.CTTEntries < c.CTTAssoc || c.CTTAssoc < 1:
		return fmt.Errorf("llbpx %q: invalid CTT geometry %d/%d", c.Base.Name, c.CTTEntries, c.CTTAssoc)
	case c.CTTTagBits < 4 || c.CTTTagBits > 31:
		return fmt.Errorf("llbpx %q: CTT tag bits %d out of range", c.Base.Name, c.CTTTagBits)
	case c.OverflowThreshold < 1:
		return fmt.Errorf("llbpx %q: OverflowThreshold must be >= 1", c.Base.Name)
	case c.AvgHistSat < 1 || c.AvgHistSat > 63:
		return fmt.Errorf("llbpx %q: AvgHistSat out of range", c.Base.Name)
	case tage.HistoryIndex(c.Hth) < 0:
		return fmt.Errorf("llbpx %q: Hth %d is not a TAGE history length", c.Base.Name, c.Hth)
	}
	return nil
}

// shallowLens returns the active length indices for shallow contexts.
func (c Config) shallowLens() []int {
	if !c.HistRange {
		return c.Base.HistIndices
	}
	return ShallowHistIndices
}

// deepLens returns the active length indices for deep contexts.
func (c Config) deepLens() []int {
	if !c.HistRange {
		return c.Base.HistIndices
	}
	return DeepHistIndices
}
