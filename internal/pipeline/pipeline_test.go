package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []CoreConfig{SkylakeLike(), SPRLike(), Server()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	bad := CoreConfig{Name: "bad", BaseCPI: 0}
	if bad.Validate() == nil {
		t.Error("zero BaseCPI must fail")
	}
	neg := CoreConfig{Name: "neg", BaseCPI: 1, FlushPenalty: -1}
	if neg.Validate() == nil {
		t.Error("negative penalty must fail")
	}
}

func TestRunArithmetic(t *testing.T) {
	c := CoreConfig{Name: "t", BaseCPI: 1.0, FlushPenalty: 20, OverridePenalty: 3}
	r := c.Run(Activity{Instructions: 1000, Mispredicts: 5, Overrides: 10})
	wantCycles := 1000.0 + 5*20 + 10*3
	if math.Abs(r.Cycles-wantCycles) > 1e-9 {
		t.Fatalf("Cycles = %v, want %v", r.Cycles, wantCycles)
	}
	if math.Abs(r.CPI-wantCycles/1000) > 1e-12 {
		t.Fatalf("CPI = %v", r.CPI)
	}
	if math.Abs(r.BranchStallShare-100.0/wantCycles) > 1e-12 {
		t.Fatalf("BranchStallShare = %v", r.BranchStallShare)
	}
}

func TestMoreMispredictsMoreCycles(t *testing.T) {
	c := Server()
	prop := func(m1Raw, m2Raw uint16) bool {
		m1, m2 := uint64(m1Raw), uint64(m2Raw)
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		r1 := c.Run(Activity{Instructions: 100000, Mispredicts: m1})
		r2 := c.Run(Activity{Instructions: 100000, Mispredicts: m2})
		return r1.Cycles <= r2.Cycles
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	c := Server()
	base := c.Run(Activity{Instructions: 100000, Mispredicts: 300})
	better := c.Run(Activity{Instructions: 100000, Mispredicts: 200})
	s := Speedup(base, better)
	if s <= 1 {
		t.Fatalf("fewer mispredicts must speed up: %v", s)
	}
	if Speedup(base, base) != 1 {
		t.Fatal("identical runs must have speedup 1")
	}
	if Speedup(base, Result{}) != 0 {
		t.Fatal("zero-cycle result must not divide by zero")
	}
}

func TestFigure1Mechanism(t *testing.T) {
	// The aggressive core halves base CPI but flushes cost more: with a
	// modestly lower MPKI, the *share* of stall cycles must still rise —
	// the paper's Figure 1 observation.
	old := SkylakeLike().Run(Activity{Instructions: 1_000_000, Mispredicts: 4000})
	agg := SPRLike().Run(Activity{Instructions: 1_000_000, Mispredicts: 3000})
	if agg.Cycles >= old.Cycles {
		t.Fatal("aggressive core should be faster overall")
	}
	if agg.BranchStallShare <= old.BranchStallShare {
		t.Fatalf("stall share must grow on the aggressive core: %.3f vs %.3f",
			agg.BranchStallShare, old.BranchStallShare)
	}
}

func TestEmptyActivity(t *testing.T) {
	r := Server().Run(Activity{})
	if r.CPI != 0 || r.BranchStallShare != 0 {
		t.Fatal("empty activity must not divide by zero")
	}
}
