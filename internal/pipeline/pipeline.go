// Package pipeline is a cycle-approximate core model, the repository's
// stand-in for the paper's gem5 full-system simulations. It charges a base
// CPI for useful work, a flush penalty per branch misprediction, and — in
// the overriding front-end variant — a redirect penalty whenever a slow
// predictor stage overrides the single-cycle fast prediction. The model
// reproduces first-order relations (who is faster, by roughly how much),
// not absolute IPC.
package pipeline

import "fmt"

// CoreConfig describes a modeled core.
type CoreConfig struct {
	// Name labels the configuration ("skylake-like", "spr-like").
	Name string
	// BaseCPI is the cycles per instruction of a misprediction-free run:
	// it folds in fetch width, window size, and memory stalls.
	BaseCPI float64
	// FlushPenalty is the cycles lost per branch misprediction (redirect,
	// refill, squashed work).
	FlushPenalty float64
	// OverridePenalty is the cycles lost when a slower predictor stage
	// overrides the single-cycle fast prediction (0 disables the
	// overriding front-end model).
	OverridePenalty float64
}

// SkylakeLike approximates the paper's Figure 1 older core: narrow,
// smaller window, higher base CPI, cheaper flushes.
func SkylakeLike() CoreConfig {
	return CoreConfig{Name: "skylake-like", BaseCPI: 1.45, FlushPenalty: 16}
}

// SPRLike approximates the aggressive Sapphire-Rapids-like core: the wide
// pipeline and big window halve the base CPI, but each flush wastes more
// in-flight work.
func SPRLike() CoreConfig {
	return CoreConfig{Name: "spr-like", BaseCPI: 0.78, FlushPenalty: 24}
}

// Server is the Table II-like core used for the speedup studies
// (Figures 13 and 14b).
func Server() CoreConfig {
	return CoreConfig{Name: "server-8w", BaseCPI: 0.95, FlushPenalty: 24, OverridePenalty: 3}
}

// Validate reports configuration errors.
func (c CoreConfig) Validate() error {
	switch {
	case c.BaseCPI <= 0:
		return fmt.Errorf("pipeline %q: BaseCPI must be positive", c.Name)
	case c.FlushPenalty < 0 || c.OverridePenalty < 0:
		return fmt.Errorf("pipeline %q: negative penalty", c.Name)
	}
	return nil
}

// Activity is the per-run input to the model, produced by the simulator.
type Activity struct {
	Instructions uint64
	Mispredicts  uint64
	// Overrides counts predictions whose final direction differed from the
	// single-cycle fast component (bimodal, or the LLBP pattern buffer).
	Overrides uint64
}

// Result is the model's timing outcome.
type Result struct {
	Core           string
	Cycles         float64
	CPI            float64
	BranchStallCyc float64
	// BranchStallShare is the fraction of all cycles spent on
	// misprediction-induced stalls — the Figure 1 metric.
	BranchStallShare float64
}

// Run evaluates the model for one activity profile.
func (c CoreConfig) Run(a Activity) Result {
	base := float64(a.Instructions) * c.BaseCPI
	stall := float64(a.Mispredicts) * c.FlushPenalty
	override := float64(a.Overrides) * c.OverridePenalty
	cycles := base + stall + override
	r := Result{
		Core:           c.Name,
		Cycles:         cycles,
		BranchStallCyc: stall,
	}
	if a.Instructions > 0 {
		r.CPI = cycles / float64(a.Instructions)
	}
	if cycles > 0 {
		r.BranchStallShare = stall / cycles
	}
	return r
}

// Speedup returns how much faster x is than base for the same instruction
// count.
func Speedup(base, x Result) float64 {
	if x.Cycles == 0 {
		return 0
	}
	return base.Cycles / x.Cycles
}
