// Package oatable provides the open-addressed, value-typed hash table the
// prediction hot path is built on. Entries are stored inline in flat
// arrays (no per-entry heap objects, no pointer chasing), keys are uint64,
// and deletion uses backward-shift compaction instead of tombstones, so
// steady-state insert/delete cycles — the pattern-buffer fill/evict loop —
// never trigger a rehash and never allocate once the table has reached its
// working size.
//
// Under `-tags slowcheck` every operation is cross-checked against a plain
// Go map shadowing the table's key set; a divergence panics immediately.
// The shadow is the differential reference the hot-path rewrite was
// validated against and costs nothing in normal builds.
package oatable

import "llbpx/internal/hashutil"

// Slot control states.
const (
	ctrlEmpty uint8 = iota
	ctrlUsed
)

// Map is an open-addressed uint64-keyed table with inline values, linear
// probing, and backward-shift deletion. The zero value is an empty,
// ready-to-use table. Pointers returned by Get/Put are invalidated by the
// next Put or Delete (growth and back-shifting move entries); they are safe
// to hold only between table mutations. Not safe for concurrent use.
type Map[V any] struct {
	ctrl []uint8
	keys []uint64
	vals []V
	live int

	// shadow mirrors the key set under -tags slowcheck (nil otherwise).
	shadow map[uint64]struct{}
}

// NewMap returns a table pre-sized to hold at least hint entries without
// growing.
func NewMap[V any](hint int) *Map[V] {
	m := &Map[V]{}
	m.Reserve(hint)
	return m
}

// Load factor: grow when live entries would exceed 7/8 of capacity.
const (
	maxLoadNum = 7
	maxLoadDen = 8
)

// capFor returns the smallest power-of-two capacity that keeps the table
// below max load with n live entries.
func capFor(n int) int {
	c := 8
	for c*maxLoadNum/maxLoadDen <= n {
		c <<= 1
	}
	return c
}

// Reserve grows the table so that at least n entries fit without a rehash.
func (m *Map[V]) Reserve(n int) {
	if need := capFor(n); need > len(m.ctrl) {
		m.rehash(need)
	}
}

// Len returns the number of entries.
func (m *Map[V]) Len() int {
	if slowcheckEnabled {
		m.checkLen()
	}
	return m.live
}

// slotOf returns the slot index holding key, or -1.
func (m *Map[V]) slotOf(key uint64) int {
	if len(m.ctrl) == 0 {
		return -1
	}
	mask := len(m.ctrl) - 1
	i := int(hashutil.Mix64(key)) & mask
	for {
		if m.ctrl[i] == ctrlEmpty {
			return -1
		}
		if m.keys[i] == key {
			return i
		}
		i = (i + 1) & mask
	}
}

// Get returns a pointer to key's value, or nil.
func (m *Map[V]) Get(key uint64) *V {
	i := m.slotOf(key)
	if slowcheckEnabled {
		m.checkGet(key, i >= 0)
	}
	if i < 0 {
		return nil
	}
	return &m.vals[i]
}

// Put returns a pointer to key's value, inserting a zero value (and
// reporting inserted=true) when absent. The pointer is valid until the
// next Put or Delete.
func (m *Map[V]) Put(key uint64) (v *V, inserted bool) {
	if len(m.ctrl) == 0 || (m.live+1)*maxLoadDen > len(m.ctrl)*maxLoadNum {
		m.rehash(capFor(m.live + 1))
	}
	mask := len(m.ctrl) - 1
	i := int(hashutil.Mix64(key)) & mask
	for m.ctrl[i] == ctrlUsed {
		if m.keys[i] == key {
			if slowcheckEnabled {
				m.checkPut(key, false)
			}
			return &m.vals[i], false
		}
		i = (i + 1) & mask
	}
	m.ctrl[i] = ctrlUsed
	m.keys[i] = key
	var zero V
	m.vals[i] = zero
	m.live++
	if slowcheckEnabled {
		m.checkPut(key, true)
	}
	return &m.vals[i], true
}

// Delete removes key, reporting whether it was present. Deletion
// back-shifts the following probe cluster so the table stays
// tombstone-free: lookups never slow down and no cleanup rehash is ever
// needed.
func (m *Map[V]) Delete(key uint64) bool {
	i := m.slotOf(key)
	if slowcheckEnabled {
		m.checkDelete(key, i >= 0)
	}
	if i < 0 {
		return false
	}
	mask := len(m.ctrl) - 1
	j := i
	for {
		j = (j + 1) & mask
		if m.ctrl[j] == ctrlEmpty {
			break
		}
		// Entry at j may fill the hole at i only if its ideal slot does not
		// lie in (i, j] — otherwise moving it would break its probe chain.
		ideal := int(hashutil.Mix64(m.keys[j])) & mask
		if (j-ideal)&mask >= (j-i)&mask {
			m.keys[i] = m.keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.ctrl[i] = ctrlEmpty
	var zero V
	m.vals[i] = zero
	m.live--
	return true
}

// Range calls fn for every entry in storage order until fn returns false.
// fn may mutate *V in place; it must not Put or Delete.
func (m *Map[V]) Range(fn func(key uint64, v *V) bool) {
	for i := range m.ctrl {
		if m.ctrl[i] == ctrlUsed {
			if !fn(m.keys[i], &m.vals[i]) {
				return
			}
		}
	}
}

// Clear removes every entry, keeping the allocated capacity.
func (m *Map[V]) Clear() {
	var zero V
	for i := range m.ctrl {
		if m.ctrl[i] == ctrlUsed {
			m.vals[i] = zero
		}
		m.ctrl[i] = ctrlEmpty
	}
	m.live = 0
	if slowcheckEnabled {
		m.shadow = nil
	}
}

// rehash rebuilds the table at capacity newCap (a power of two).
func (m *Map[V]) rehash(newCap int) {
	oldCtrl, oldKeys, oldVals := m.ctrl, m.keys, m.vals
	m.ctrl = make([]uint8, newCap)
	m.keys = make([]uint64, newCap)
	m.vals = make([]V, newCap)
	mask := newCap - 1
	for i := range oldCtrl {
		if oldCtrl[i] != ctrlUsed {
			continue
		}
		j := int(hashutil.Mix64(oldKeys[i])) & mask
		for m.ctrl[j] == ctrlUsed {
			j = (j + 1) & mask
		}
		m.ctrl[j] = ctrlUsed
		m.keys[j] = oldKeys[i]
		m.vals[j] = oldVals[i]
	}
}
