package oatable

import (
	"encoding/binary"
	"testing"
)

// FuzzMapVsReference drives an op-coded byte stream through a Map and a
// plain Go map in lockstep — the same differential pattern as
// FuzzSnapshotDecode: the fuzzer explores operation interleavings
// (including tombstone churn and growth boundaries) and any divergence in
// presence, value, or length fails immediately.
func FuzzMapVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 0, 27*9)
	for i := byte(0); i < 27; i++ { // insert/delete interleave across one growth
		seed = append(seed, i%3, i, 0, 0, 0, 0, 0, 0, 0)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Map[uint64]
		ref := map[uint64]uint64{}
		var nextVal uint64
		for len(data) >= 9 {
			op := data[0] % 4
			// Fold the key into a small space so collisions, re-puts, and
			// deletes of present keys actually happen.
			key := binary.LittleEndian.Uint64(data[1:9]) % 97
			data = data[9:]
			switch op {
			case 0: // put
				nextVal++
				v, inserted := m.Put(key)
				_, had := ref[key]
				if inserted == had {
					t.Fatalf("Put(%d) inserted=%v, reference presence %v", key, inserted, had)
				}
				if !inserted && *v != ref[key] {
					t.Fatalf("Put(%d) existing value %d, reference %d", key, *v, ref[key])
				}
				*v = nextVal
				ref[key] = nextVal
			case 1: // delete
				got := m.Delete(key)
				_, had := ref[key]
				if got != had {
					t.Fatalf("Delete(%d) = %v, reference presence %v", key, got, had)
				}
				delete(ref, key)
			case 2: // get
				v := m.Get(key)
				want, had := ref[key]
				if (v != nil) != had {
					t.Fatalf("Get(%d) present=%v, reference %v", key, v != nil, had)
				}
				if v != nil && *v != want {
					t.Fatalf("Get(%d) = %d, reference %d", key, *v, want)
				}
			case 3: // clear
				m.Clear()
				ref = map[uint64]uint64{}
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("final Len %d, reference %d", m.Len(), len(ref))
		}
		seen := 0
		m.Range(func(k uint64, v *uint64) bool {
			seen++
			want, ok := ref[k]
			if !ok || *v != want {
				t.Fatalf("Range saw (%d,%d), reference (%d,%v)", k, *v, want, ok)
			}
			return true
		})
		if seen != len(ref) {
			t.Fatalf("Range visited %d, reference %d", seen, len(ref))
		}
	})
}
