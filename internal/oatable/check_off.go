//go:build !slowcheck

package oatable

// slowcheckEnabled gates the shadow-map cross-checks; in normal builds the
// compiler eliminates every check site.
const slowcheckEnabled = false

func (m *Map[V]) checkGet(uint64, bool)    {}
func (m *Map[V]) checkPut(uint64, bool)    {}
func (m *Map[V]) checkDelete(uint64, bool) {}
func (m *Map[V]) checkLen()                {}
