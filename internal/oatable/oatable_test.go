package oatable

import "testing"

func TestPutGetDelete(t *testing.T) {
	var m Map[int]
	if m.Len() != 0 || m.Get(42) != nil {
		t.Fatal("zero value not empty")
	}
	v, ins := m.Put(42)
	if !ins {
		t.Fatal("first Put not an insert")
	}
	*v = 7
	if got := m.Get(42); got == nil || *got != 7 {
		t.Fatalf("Get(42) = %v, want 7", got)
	}
	if v, ins := m.Put(42); ins || *v != 7 {
		t.Fatalf("re-Put(42) inserted=%v val=%d, want existing 7", ins, *v)
	}
	if !m.Delete(42) || m.Delete(42) {
		t.Fatal("Delete semantics wrong")
	}
	if m.Get(42) != nil || m.Len() != 0 {
		t.Fatal("entry survived Delete")
	}
}

func TestZeroKey(t *testing.T) {
	var m Map[string]
	v, _ := m.Put(0)
	*v = "zero"
	if got := m.Get(0); got == nil || *got != "zero" {
		t.Fatal("zero key unsupported")
	}
	if !m.Delete(0) {
		t.Fatal("zero key not deletable")
	}
}

// TestTombstoneReuse drives insert/delete cycles far beyond the capacity a
// tombstone-leaking table would need, asserting the table does not grow.
func TestTombstoneReuse(t *testing.T) {
	m := NewMap[uint64](16)
	cap0 := len(m.ctrl)
	for i := uint64(0); i < 10_000; i++ {
		v, ins := m.Put(i)
		if !ins {
			t.Fatalf("key %d: expected insert", i)
		}
		*v = i * 3
		if i >= 8 {
			if !m.Delete(i - 8) {
				t.Fatalf("key %d: delete failed", i-8)
			}
		}
		if m.Len() > 9 {
			t.Fatalf("len %d after %d ops", m.Len(), i)
		}
	}
	if len(m.ctrl) > 2*cap0 {
		t.Fatalf("table grew from %d to %d under bounded live load (tombstone leak)", cap0, len(m.ctrl))
	}
	// The 8 resident entries survived with their values.
	for i := uint64(9992); i < 10_000; i++ {
		if v := m.Get(i); v == nil || *v != i*3 {
			t.Fatalf("resident key %d lost (got %v)", i, v)
		}
	}
}

// TestGrowthBoundary inserts exactly across each power-of-two load
// threshold and verifies every entry survives the rehash.
func TestGrowthBoundary(t *testing.T) {
	var m Map[uint64]
	for i := uint64(1); i <= 4096; i++ {
		v, _ := m.Put(i * 0x9e3779b9)
		*v = i
		if i == 7 || i == 14 || i == 28 || i == 56 || i == 448 || i == 3584 {
			for j := uint64(1); j <= i; j++ {
				if v := m.Get(j * 0x9e3779b9); v == nil || *v != j {
					t.Fatalf("after %d inserts, key %d lost", i, j)
				}
			}
		}
	}
	if m.Len() != 4096 {
		t.Fatalf("len = %d, want 4096", m.Len())
	}
}

func TestRangeVisitsAll(t *testing.T) {
	var m Map[int]
	want := map[uint64]int{}
	for i := uint64(0); i < 100; i++ {
		v, _ := m.Put(i)
		*v = int(i) + 1
		want[i] = int(i) + 1
	}
	m.Delete(13)
	delete(want, 13)
	got := map[uint64]int{}
	m.Range(func(k uint64, v *int) bool {
		got[k] = *v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, got[k], v)
		}
	}
	// Early termination stops the walk.
	n := 0
	m.Range(func(uint64, *int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early-exit Range visited %d", n)
	}
}

func TestClear(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 50; i++ {
		m.Put(i)
	}
	cap0 := len(m.ctrl)
	m.Clear()
	if m.Len() != 0 || len(m.ctrl) != cap0 {
		t.Fatalf("Clear: len=%d cap=%d, want 0/%d", m.Len(), len(m.ctrl), cap0)
	}
	for i := uint64(0); i < 50; i++ {
		if m.Get(i) != nil {
			t.Fatalf("key %d survived Clear", i)
		}
	}
	if _, ins := m.Put(3); !ins {
		t.Fatal("Put after Clear not an insert")
	}
}

func TestReserveAvoidsGrowth(t *testing.T) {
	m := NewMap[int](1000)
	cap0 := len(m.ctrl)
	for i := uint64(0); i < 1000; i++ {
		m.Put(i)
	}
	if len(m.ctrl) != cap0 {
		t.Fatalf("table grew from %d to %d despite Reserve(1000)", cap0, len(m.ctrl))
	}
}

// TestAllocFreeSteadyState asserts the fill/evict cycle the pattern buffer
// performs allocates nothing once the table reached working size.
func TestAllocFreeSteadyState(t *testing.T) {
	if slowcheckEnabled {
		t.Skip("shadow map allocates by design under -tags slowcheck")
	}
	m := NewMap[[4]uint64](64)
	for i := uint64(0); i < 128; i++ { // reach steady state
		m.Put(i)
		m.Delete(i)
	}
	i := uint64(1000)
	allocs := testing.AllocsPerRun(10_000, func() {
		m.Put(i)
		m.Delete(i - 1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Put/Delete allocates %.1f per op", allocs)
	}
}
