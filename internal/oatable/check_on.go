//go:build slowcheck

package oatable

import "fmt"

// slowcheckEnabled turns every Map operation into a differential test
// against a plain Go map shadowing the key set. Build with `-tags
// slowcheck` to run any workload — the full test suite, a simulation, the
// serving daemon — with the open-addressed tables continuously
// cross-checked against the reference semantics they replaced.
const slowcheckEnabled = true

func (m *Map[V]) checkGet(key uint64, found bool) {
	_, want := m.shadow[key]
	if want != found {
		panic(fmt.Sprintf("oatable: Get(%#x) found=%v, shadow map says %v (len %d/%d)",
			key, found, want, m.live, len(m.shadow)))
	}
}

func (m *Map[V]) checkPut(key uint64, inserted bool) {
	_, had := m.shadow[key]
	if had == inserted {
		panic(fmt.Sprintf("oatable: Put(%#x) inserted=%v, but shadow map presence was %v",
			key, inserted, had))
	}
	if m.shadow == nil {
		m.shadow = make(map[uint64]struct{})
	}
	m.shadow[key] = struct{}{}
	m.checkLen()
}

func (m *Map[V]) checkDelete(key uint64, found bool) {
	_, had := m.shadow[key]
	if had != found {
		panic(fmt.Sprintf("oatable: Delete(%#x) found=%v, shadow map says %v", key, found, had))
	}
	delete(m.shadow, key)
}

func (m *Map[V]) checkLen() {
	want := len(m.shadow)
	// checkPut runs after live++ on insert and shadow insert, so the two
	// must agree at every check point.
	if m.live != want {
		panic(fmt.Sprintf("oatable: live=%d diverged from shadow len=%d", m.live, want))
	}
}
