package tage

import "fmt"

// loopPredictor is TAGE-SC-L's loop exit predictor: it learns loops with
// stable trip counts and, once confident, predicts the exit iteration
// exactly — something the tagged tables can only do by burning one pattern
// per iteration count.
type loopPredictor struct {
	sets [loopSets][loopWays]loopEntry
	seed uint32
}

const (
	loopSets    = 16
	loopWays    = 4
	loopTagBits = 14
	loopConfMax = 3
	loopIterMax = 0x3fff
)

type loopEntry struct {
	tag     uint16
	past    uint16 // learned trip count (iterations before the exit)
	current uint16 // iterations observed in the current traversal
	conf    uint8
	age     uint8
	dir     bool // body direction (the non-exit outcome)
	valid   bool
}

func newLoopPredictor() *loopPredictor { return &loopPredictor{} }

func loopIndex(pc uint64) (set int, tag uint16) {
	h := pc >> 2
	return int(h & (loopSets - 1)), uint16((h >> 4) & (1<<loopTagBits - 1))
}

// lookup returns the loop prediction for pc; valid only when the entry is
// fully confident.
func (l *loopPredictor) lookup(pc uint64) (taken, valid bool) {
	set, tag := loopIndex(pc)
	for i := range l.sets[set] {
		e := &l.sets[set][i]
		if e.valid && e.tag == tag {
			if e.conf == loopConfMax && e.past >= 2 && e.current < e.past {
				if e.current+1 == e.past {
					return !e.dir, true // exit iteration
				}
				return e.dir, true
			}
			return false, false
		}
	}
	return false, false
}

// update trains the loop predictor with the resolved outcome. tageMiss
// reports whether the main predictor mispredicted this branch, which gates
// new allocations to branches the tables struggle with.
func (l *loopPredictor) update(pc uint64, taken bool, tageMiss bool) {
	set, tag := loopIndex(pc)
	for i := range l.sets[set] {
		e := &l.sets[set][i]
		if !e.valid || e.tag != tag {
			continue
		}
		if e.age < 255 {
			e.age++
		}
		if taken == e.dir {
			if e.current < loopIterMax {
				e.current++
			} else {
				// Degenerate loop: too long to track.
				e.valid = false
				return
			}
			// Overran the learned trip count: the entry's notion of this
			// loop is wrong, so drop all confidence until retrained.
			if e.past > 0 && e.current >= e.past {
				e.conf = 0
			}
			return
		}
		// Exit observed: check trip-count stability.
		if e.current+1 == e.past {
			if e.conf < loopConfMax {
				e.conf++
			}
		} else {
			e.past = e.current + 1
			e.conf = 0
		}
		e.current = 0
		return
	}
	if !tageMiss {
		return
	}
	// Allocate: prefer an invalid way, else the oldest low-confidence way.
	victim := -1
	for i := range l.sets[set] {
		if !l.sets[set][i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		bestAge := uint8(0)
		for i := range l.sets[set] {
			e := &l.sets[set][i]
			if e.conf == 0 && e.age >= bestAge {
				victim, bestAge = i, e.age
			}
		}
	}
	if victim < 0 {
		// All ways confident: decay ages instead of thrashing.
		for i := range l.sets[set] {
			if l.sets[set][i].age > 0 {
				l.sets[set][i].age--
			}
		}
		return
	}
	l.sets[set][victim] = loopEntry{
		tag: tag, dir: taken, valid: true,
	}
}

// debugState returns the internal entry state for pc, for diagnostics.
func (l *loopPredictor) debugState(pc uint64) string {
	set, tag := loopIndex(pc)
	for i := range l.sets[set] {
		e := &l.sets[set][i]
		if e.valid && e.tag == tag {
			return fmt.Sprintf("dir=%v past=%d current=%d conf=%d", e.dir, e.past, e.current, e.conf)
		}
	}
	return "no entry"
}
