// Package tage implements the TAGE-SC-L branch predictor family: a bimodal
// fallback, 21 partially tagged tables with geometrically increasing
// global-history lengths (6…3000 bits), a statistical corrector, and a
// loop predictor. It supports the finite configurations the paper sweeps
// (8K…512K-entry presets) plus the alias-free "infinite" configuration used
// as the accuracy upper bound, and exposes the lookup/commit hooks the
// hierarchical LLBP/LLBP-X predictors build on.
package tage

import "fmt"

// HistoryLengths are the 21 global-history lengths (bits) used by every
// TAGE table set in this repository. They are anchored to the values the
// paper quotes: 6 (shortest), 37 (start of LLBP-X's deep range), 78 and
// 112 (Figure 7/8 anchors), 232 (end of the shallow range and default
// H_th), 1444 (H_th sweep endpoint), and 3000 (longest).
var HistoryLengths = [NumTables]int{
	6, 9, 13, 18, 26, 37, 44, 53, 64, 78, 93,
	112, 134, 161, 193, 232, 464, 928, 1444, 2048, 3000,
}

// NumTables is the number of tagged TAGE tables.
const NumTables = 21

// HistoryIndex returns the table index (0-based) of the given history
// length, or -1 if it is not one of HistoryLengths.
func HistoryIndex(length int) int {
	for i, l := range HistoryLengths {
		if l == length {
			return i
		}
	}
	return -1
}

// Config parameterizes a TAGE-SC-L instance.
type Config struct {
	// Name labels the configuration ("tsl-64k", ...).
	Name string
	// LogEntries is log2 of the entry count of each tagged table (finite
	// mode only).
	LogEntries int
	// LogBimodal is log2 of the bimodal table's entry count.
	LogBimodal int
	// ShortTagBits and LongTagBits are the partial tag widths for tables
	// with short (index < LongTagFrom) and long histories.
	ShortTagBits int
	LongTagBits  int
	// LongTagFrom is the first table index using LongTagBits.
	LongTagFrom int
	// CtrBits is the width of the signed prediction counters (3 in TSL).
	CtrBits int
	// UseSC enables the statistical corrector.
	UseSC bool
	// UseLocalSC additionally gives the statistical corrector a
	// local-history component (per-branch direction histories feeding a
	// small GEHL), as in full TAGE-SC-L. Off by default: the presets model
	// the paper's configuration, and the local component is an optional
	// extension evaluated separately.
	UseLocalSC bool
	// UseLoop enables the loop predictor.
	UseLoop bool
	// Infinite removes all capacity constraints: tables become alias-free
	// associative maps additionally tagged with the full branch PC (the
	// paper's "Inf TSL").
	Infinite bool
	// UResetPeriod is the number of updates between graceful halvings of
	// the usefulness counters (finite mode).
	UResetPeriod int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Infinite {
		return nil
	}
	switch {
	case c.LogEntries < 4 || c.LogEntries > 20:
		return fmt.Errorf("tage %q: LogEntries %d out of range [4,20]", c.Name, c.LogEntries)
	case c.LogBimodal < 4 || c.LogBimodal > 24:
		return fmt.Errorf("tage %q: LogBimodal %d out of range [4,24]", c.Name, c.LogBimodal)
	case c.ShortTagBits < 4 || c.ShortTagBits > 20 || c.LongTagBits < c.ShortTagBits:
		return fmt.Errorf("tage %q: invalid tag widths %d/%d", c.Name, c.ShortTagBits, c.LongTagBits)
	case c.CtrBits < 2 || c.CtrBits > 6:
		return fmt.Errorf("tage %q: CtrBits %d out of range [2,6]", c.Name, c.CtrBits)
	case c.UResetPeriod <= 0:
		return fmt.Errorf("tage %q: UResetPeriod must be positive", c.Name)
	}
	return nil
}

// tagBits returns the tag width of table i.
func (c Config) tagBits(i int) int {
	if i >= c.LongTagFrom {
		return c.LongTagBits
	}
	return c.ShortTagBits
}

// StorageBits estimates the configuration's storage budget in bits
// (tagged tables + bimodal; SC and loop structures add ~10%).
func (c Config) StorageBits() int {
	if c.Infinite {
		return 0
	}
	total := (1 << c.LogBimodal) * 2
	for i := 0; i < NumTables; i++ {
		total += (1 << c.LogEntries) * (c.tagBits(i) + c.CtrBits + 1)
	}
	return total
}

// sized returns a preset whose tagged tables have 2^logEntries entries
// each. The names follow the paper's "<size>K TSL" convention, which
// refers to the overall storage budget in KiB.
func sized(name string, logEntries, logBimodal int) Config {
	return Config{
		Name:         name,
		LogEntries:   logEntries,
		LogBimodal:   logBimodal,
		ShortTagBits: 10,
		LongTagBits:  13,
		LongTagFrom:  10,
		CtrBits:      3,
		UseSC:        true,
		UseLoop:      true,
		UResetPeriod: 1 << 18,
	}
}

// Config64K is the paper's baseline 64 KB TAGE-SC-L (~30 K patterns:
// 21 tables x 1K entries, 16K-entry bimodal).
func Config64K() Config { return sized("tsl-64k", 10, 14) }

// Config8K, Config16K, Config32K, Config128K scale the tagged tables for
// the Figure 16b sensitivity sweep.
func Config8K() Config   { return sized("tsl-8k", 7, 11) }
func Config16K() Config  { return sized("tsl-16k", 8, 12) }
func Config32K() Config  { return sized("tsl-32k", 9, 13) }
func Config128K() Config { return sized("tsl-128k", 11, 15) }

// Config512K is the idealized equal-storage comparison point (~240 K
// patterns, zero assumed access latency).
func Config512K() Config { return sized("tsl-512k", 13, 17) }

// ConfigInf is the alias-free infinite TAGE-SC-L upper bound.
func ConfigInf() Config {
	c := sized("tsl-inf", 10, 14)
	c.Infinite = true
	return c
}
