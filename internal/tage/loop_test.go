package tage

import "testing"

func TestLoopLearnsTripCount(t *testing.T) {
	l := newLoopPredictor()
	const pc = 0x1230
	// Train clean traversals of a trip-5 loop (4 taken, 1 not): the
	// first traversal allocates, the second learns the trip, the next
	// three build confidence.
	for rep := 0; rep < 6; rep++ {
		for it := 0; it < 5; it++ {
			taken := it < 4
			if _, valid := l.lookup(pc); valid && rep < 3 {
				// Not confident yet in the first traversals.
				_ = valid
			}
			l.update(pc, taken, true)
		}
	}
	// Now fully confident: it must predict the body and the exit exactly.
	for it := 0; it < 5; it++ {
		taken, valid := l.lookup(pc)
		if !valid {
			t.Fatalf("iteration %d: prediction should be valid", it)
		}
		want := it < 4
		if taken != want {
			t.Fatalf("iteration %d: predicted %v, want %v", it, taken, want)
		}
		l.update(pc, want, false)
	}
}

func TestLoopRejectsDegenerateTrip(t *testing.T) {
	l := newLoopPredictor()
	const pc = 0x40
	// Allocate with a taken instance (dir=taken), then feed only
	// not-taken outcomes: every instance is an "exit", so the entry
	// learns past=1 — a degenerate trip the predictor must stay silent
	// on (predicting !dir here would be wrong every time the branch
	// flips back).
	l.update(pc, true, true)
	for i := 0; i < 50; i++ {
		l.update(pc, false, true)
	}
	if _, valid := l.lookup(pc); valid {
		t.Fatal("trip-1 patterns must not produce loop predictions")
	}
}

func TestLoopPredictsAlternation(t *testing.T) {
	// An alternating branch is a legitimate trip-2 loop; once confident
	// the predictor should nail it.
	l := newLoopPredictor()
	const pc = 0x44
	for i := 0; i < 30; i++ {
		l.update(pc, i%2 == 0, true)
	}
	hits := 0
	for i := 30; i < 40; i++ {
		want := i%2 == 0
		if got, valid := l.lookup(pc); valid && got == want {
			hits++
		}
		l.update(pc, want, false)
	}
	if hits < 8 {
		t.Fatalf("trained alternation predicted only %d/10", hits)
	}
}

func TestLoopLosesConfidenceOnOverrun(t *testing.T) {
	l := newLoopPredictor()
	const pc = 0x80
	// Train trip 3 to confidence.
	for rep := 0; rep < 5; rep++ {
		for it := 0; it < 3; it++ {
			l.update(pc, it < 2, true)
		}
	}
	if _, valid := l.lookup(pc); !valid {
		t.Fatal("trained loop should predict")
	}
	// The loop now runs longer than the learned trip: after the overrun
	// the entry must stop predicting rather than insist on the exit.
	l.update(pc, true, false)
	l.update(pc, true, false)
	l.update(pc, true, false) // current reaches past: overrun
	if _, valid := l.lookup(pc); valid {
		t.Fatal("overrun loop must lose confidence")
	}
}

func TestLoopRetrainsAfterTripChange(t *testing.T) {
	l := newLoopPredictor()
	const pc = 0xc0
	for rep := 0; rep < 5; rep++ {
		for it := 0; it < 4; it++ {
			l.update(pc, it < 3, true)
		}
	}
	// Trip changes from 4 to 6; after a few traversals it must predict
	// the new exit.
	for rep := 0; rep < 6; rep++ {
		for it := 0; it < 6; it++ {
			l.update(pc, it < 5, true)
		}
	}
	for it := 0; it < 6; it++ {
		taken, valid := l.lookup(pc)
		if !valid {
			t.Fatalf("iteration %d: should predict after retraining", it)
		}
		if want := it < 5; taken != want {
			t.Fatalf("iteration %d: predicted %v, want %v", it, taken, want)
		}
		l.update(pc, it < 5, false)
	}
}

func TestLoopAllocatesOnlyOnTageMiss(t *testing.T) {
	l := newLoopPredictor()
	const pc = 0x100
	for rep := 0; rep < 10; rep++ {
		for it := 0; it < 3; it++ {
			l.update(pc, it < 2, false) // tage already predicts fine
		}
	}
	if got := l.debugState(pc); got != "no entry" {
		t.Fatalf("entry allocated without a tage miss: %s", got)
	}
}

func TestLoopSetConflictsEvictOldUnconfident(t *testing.T) {
	l := newLoopPredictor()
	// Flood one set with distinct tags; allocation must not panic and the
	// predictor must remain usable.
	for i := 0; i < 100; i++ {
		pc := uint64(i)<<8 | 0x4 // same low bits -> same set
		l.update(pc, true, true)
	}
	// Entries exist and lookups stay silent (nothing trained).
	for i := 0; i < 100; i++ {
		pc := uint64(i)<<8 | 0x4
		if _, valid := l.lookup(pc); valid {
			t.Fatal("untrained entries must not predict")
		}
	}
}
