package tage

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/history"
	"llbpx/internal/oatable"
)

// entry is one tagged-table pattern: a partial tag, a signed direction
// counter, and a usefulness bit(s) guiding replacement.
type entry struct {
	tag uint32
	ctr int8
	u   uint8
}

// Detail is the full provenance of one TAGE-SC-L lookup. Hierarchical
// predictors (LLBP/LLBP-X) use it to arbitrate against the pattern buffer
// and to decide statistical-corrector gating; the plain predictor distills
// it into a core.Prediction.
type Detail struct {
	// FinalTaken is the TSL prediction after loop and SC stages.
	FinalTaken bool
	// TageTaken is the TAGE prediction (after use-alt-on-newly-allocated
	// arbitration, before loop/SC).
	TageTaken bool
	// BimTaken is the bimodal fallback direction (the single-cycle "fast"
	// prediction in an overriding front end).
	BimTaken bool
	// Provider is the providing table index, or -1 for bimodal.
	Provider int
	// ProviderLen is the provider's history length in bits (0 = bimodal).
	ProviderLen int
	// Confidence is |2*ctr+1| of the providing counter (1 = weakest).
	Confidence int
	// AltTaken is the alternate prediction's direction.
	AltTaken     bool
	altProvider  int
	weakProvider bool
	usedAlt      bool
	// Loop predictor outputs.
	LoopValid bool
	LoopTaken bool
	// SCSum is the statistical corrector's weighted vote; SCUsed reports
	// whether it overrode the input prediction.
	SCSum  int
	SCUsed bool
}

// Predictor is a TAGE-SC-L instance. It implements core.Predictor for
// standalone use and exposes Lookup/CommitDetail/TrackUnconditional plus
// history access for the hierarchical predictors layered on top of it.
// Not safe for concurrent use.
// hashConst holds the per-table constants of the index/tag hash, computed
// once at construction so computeHashes does no per-branch config checks.
type hashConst struct {
	logE     uint
	idxMask  uint64
	shift    uint
	tagMask  uint64
	pathMask uint64
	offset   uint64
}

type Predictor struct {
	cfg Config

	ghist *history.Global
	path  *history.Path

	// Folded registers live inline: one cache-friendly array per use
	// instead of NumTables heap objects each.
	idxFold  [NumTables]history.Folded
	tagFold1 [NumTables]history.Folded
	tagFold2 [NumTables]history.Folded

	hc [NumTables]hashConst

	tables  [][]entry            // finite mode
	inf     []oatable.Map[entry] // infinite mode, keyed alias-free
	infTag1 [NumTables]history.Folded
	infTag2 [NumTables]history.Folded
	bimodal []int8

	useAlt int // use-alt-on-newly-allocated counter [-8,7]
	rng    *hashutil.Rand
	tick   int

	sc   *corrector
	loop *loopPredictor

	// Per-lookup scratch, valid between Lookup and CommitDetail. The
	// provider/alt entry pointers are cached so CommitDetail trains without
	// re-hashing; like idx/tag they are rewritten by the next Lookup and
	// excluded from snapshots.
	idx       [NumTables]uint32
	tag       [NumTables]uint32
	provEntry *entry
	altEntry  *entry

	last Detail // cached for the core.Predictor fast path
}

// New constructs a predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:   cfg,
		ghist: history.NewGlobal(HistoryLengths[NumTables-1] + 8),
		path:  history.NewPath(16),
		rng:   hashutil.NewRand(0x7a5e5),
	}
	for i, l := range HistoryLengths {
		logE := cfg.LogEntries
		if cfg.Infinite {
			logE = 10 // inf mode still folds for key mixing
		}
		p.idxFold[i] = history.MakeFolded(l, uint(logE))
		tb := cfg.tagBits(i)
		if cfg.Infinite {
			tb = 12
		}
		p.tagFold1[i] = history.MakeFolded(l, uint(tb))
		p.tagFold2[i] = history.MakeFolded(l, uint(tb-1))
		p.hc[i] = hashConst{
			logE:     uint(logE),
			idxMask:  uint64(1)<<uint(logE) - 1,
			shift:    uint(i%7) + 2,
			tagMask:  uint64(1)<<uint(tb) - 1,
			pathMask: ^uint64(0),
			offset:   uint64(i) * 0x9e3779b9,
		}
		if l < 16 {
			p.hc[i].pathMask = uint64(1)<<uint(l) - 1
		}
	}
	if cfg.Infinite {
		p.inf = make([]oatable.Map[entry], NumTables)
		for i, l := range HistoryLengths {
			p.infTag1[i] = history.MakeFolded(l, 24)
			p.infTag2[i] = history.MakeFolded(l, 23)
		}
	} else {
		p.tables = make([][]entry, NumTables)
		for i := range p.tables {
			p.tables[i] = make([]entry, 1<<cfg.LogEntries)
		}
	}
	p.bimodal = make([]int8, 1<<cfg.LogBimodal)
	if cfg.UseSC {
		p.sc = newCorrector()
		if cfg.UseLocalSC {
			p.sc.enableLocal()
		}
	}
	if cfg.UseLoop {
		p.loop = newLoopPredictor()
	}
	return p, nil
}

// MustNew is New but panics on configuration errors; presets are known
// valid.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("tage: invalid preset: %v", err))
	}
	return p
}

// Name implements core.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// History exposes the global history register so second-level predictors
// can hook their own folded registers to the same bit stream.
func (p *Predictor) History() *history.Global { return p.ghist }

func ctrTaken(c int8) bool { return c >= 0 }

func confidence(c int8) int {
	v := 2*int(c) + 1
	if v < 0 {
		v = -v
	}
	return v
}

func (p *Predictor) ctrMax() int8 { return int8(1<<(p.cfg.CtrBits-1)) - 1 }
func (p *Predictor) ctrMin() int8 { return -int8(1 << (p.cfg.CtrBits - 1)) }

func (p *Predictor) ctrUpdate(c *int8, taken bool) {
	if taken {
		if *c < p.ctrMax() {
			*c++
		}
	} else if *c > p.ctrMin() {
		*c--
	}
}

// bimIndex returns the bimodal index for pc.
func (p *Predictor) bimIndex(pc uint64) uint64 {
	return (pc >> 2) & uint64(len(p.bimodal)-1)
}

// computeHashes fills the per-table index and tag scratch for pc using the
// current (pre-branch) history state.
func (p *Predictor) computeHashes(pc uint64) {
	mixed := hashutil.PCMix(pc)
	pathBits := p.path.Value()
	for i := 0; i < NumTables; i++ {
		h := &p.hc[i]
		idx := mixed ^ (mixed >> h.shift) ^ p.idxFold[i].Value() ^ (pathBits & h.pathMask) ^ h.offset
		p.idx[i] = uint32(hashutil.Fold(idx, h.logE) & h.idxMask)

		t := mixed ^ p.tagFold1[i].Value() ^ (p.tagFold2[i].Value() << 1)
		p.tag[i] = uint32(t & h.tagMask)
	}
}

// infKey builds the alias-free entry key for table i: the full PC combined
// with two wide history folds, so distinct (pc, history) pairs collide with
// negligible probability.
func (p *Predictor) infKey(pc uint64, i int) uint64 {
	return hashutil.Mix64(pc*0x9e3779b97f4a7c15 + p.infTag1[i].Value()<<25 + p.infTag2[i].Value()<<2 + uint64(i))
}

// lookupEntry returns the matching entry of table i, or nil.
func (p *Predictor) lookupEntry(pc uint64, i int) *entry {
	if p.cfg.Infinite {
		return p.inf[i].Get(p.infKey(pc, i))
	}
	e := &p.tables[i][p.idx[i]]
	if e.tag == p.tag[i] {
		return e
	}
	return nil
}

// Lookup performs a full, side-effect-free TSL prediction for pc. The
// returned Detail must be passed back to CommitDetail for the same branch
// before the next Lookup.
func (p *Predictor) Lookup(pc uint64) Detail {
	p.computeHashes(pc)
	var d Detail
	d.Provider, d.altProvider = -1, -1

	var provEntry, altEntry *entry
	for i := NumTables - 1; i >= 0; i-- {
		e := p.lookupEntry(pc, i)
		if e == nil {
			continue
		}
		if d.Provider < 0 {
			d.Provider = i
			provEntry = e
		} else {
			d.altProvider = i
			altEntry = e
			break
		}
	}
	p.provEntry, p.altEntry = provEntry, altEntry

	d.BimTaken = p.bimodal[p.bimIndex(pc)] >= 0
	d.AltTaken = d.BimTaken
	if altEntry != nil {
		d.AltTaken = ctrTaken(altEntry.ctr)
	}

	if provEntry != nil {
		d.ProviderLen = HistoryLengths[d.Provider]
		d.Confidence = confidence(provEntry.ctr)
		provTaken := ctrTaken(provEntry.ctr)
		d.weakProvider = confidence(provEntry.ctr) == 1 && provEntry.u == 0
		if d.weakProvider && p.useAlt >= 0 {
			d.TageTaken = d.AltTaken
			d.usedAlt = true
		} else {
			d.TageTaken = provTaken
		}
	} else {
		d.TageTaken = d.BimTaken
		d.Confidence = 1
	}

	d.FinalTaken = d.TageTaken
	if p.loop != nil {
		if taken, valid := p.loop.lookup(pc); valid {
			d.LoopValid, d.LoopTaken = true, taken
			d.FinalTaken = taken
		}
	}
	if p.sc != nil && !d.LoopValid {
		sum := p.sc.lookup(pc, d.FinalTaken, d.Confidence)
		d.SCSum = sum
		scTaken := sum >= 0
		if scTaken != d.FinalTaken && abs(sum) >= p.sc.useThreshold() {
			d.SCUsed = true
			d.FinalTaken = scTaken
		}
	}
	p.last = d
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SCDecide applies the statistical corrector to an externally provided
// prediction (the LLBP-X pattern-buffer output) using the current history
// state, without training anything. It returns the possibly corrected
// direction and the SC sum.
func (p *Predictor) SCDecide(pc uint64, taken bool, conf int) (bool, int) {
	if p.sc == nil {
		return taken, 0
	}
	sum := p.sc.lookup(pc, taken, conf)
	scTaken := sum >= 0
	if scTaken != taken && abs(sum) >= p.sc.useThreshold() {
		return scTaken, sum
	}
	return taken, sum
}

// CommitDetail trains all components with the resolved branch and pushes
// the branch's bit into the global history. d must come from the
// immediately preceding Lookup for the same pc. scInputTaken is the
// direction that was fed to the SC stage (differs from d's when a
// second-level predictor provided it), and scFinal whether the SC's
// decision was actually used by the hierarchy; together they let the SC
// train on what it really saw.
func (p *Predictor) CommitDetail(b core.Branch, d Detail, scInputTaken bool, scApplied bool) {
	pc, taken := b.PC, b.Taken

	if p.loop != nil {
		p.loop.update(pc, taken, d.TageTaken != taken)
	}
	if p.sc != nil {
		if scApplied {
			p.sc.train(pc, scInputTaken, d.Confidence, taken)
		}
		p.sc.pushLocal(pc, taken)
	}

	// use-alt-on-newly-allocated bookkeeping. The provider/alt entries were
	// resolved by the Lookup that produced d; the scratch hashes are
	// unchanged since, so the cached pointers are the entries a re-lookup
	// would find.
	if d.Provider >= 0 && d.weakProvider {
		if provEntry := p.provEntry; provEntry != nil {
			provTaken := ctrTaken(provEntry.ctr)
			if provTaken != d.AltTaken {
				if d.AltTaken == taken {
					if p.useAlt < 7 {
						p.useAlt++
					}
				} else if p.useAlt > -8 {
					p.useAlt--
				}
			}
		}
	}

	// Provider (and, for weak providers, alternate) counter updates.
	if d.Provider >= 0 {
		if e := p.provEntry; e != nil {
			provTaken := ctrTaken(e.ctr)
			// Usefulness: provider correct where alternate differs.
			if provTaken != d.AltTaken {
				if provTaken == taken {
					if e.u < 3 {
						e.u++
					}
				} else if e.u > 0 {
					e.u--
				}
			}
			p.ctrUpdate(&e.ctr, taken)
			if d.weakProvider {
				if d.altProvider >= 0 {
					if ae := p.altEntry; ae != nil {
						p.ctrUpdate(&ae.ctr, taken)
					}
				} else {
					p.bimUpdate(pc, taken)
				}
			}
		}
	} else {
		p.bimUpdate(pc, taken)
	}

	// Allocation on a TAGE misprediction.
	if d.TageTaken != taken && d.Provider < NumTables-1 {
		p.allocate(pc, taken, d.Provider)
	}

	// Graceful usefulness aging.
	if !p.cfg.Infinite {
		p.tick++
		if p.tick >= p.cfg.UResetPeriod {
			p.tick = 0
			for i := range p.tables {
				tbl := p.tables[i]
				for j := range tbl {
					tbl[j].u >>= 1
				}
			}
		}
	}

	p.pushHistory(b)
}

func (p *Predictor) bimUpdate(pc uint64, taken bool) {
	i := p.bimIndex(pc)
	c := p.bimodal[i]
	if taken {
		if c < 1 {
			c++
		}
	} else if c > -2 {
		c--
	}
	p.bimodal[i] = c
}

// allocate installs 1-2 new weak patterns on tables longer than the
// provider, following TAGE's usefulness-guided policy.
func (p *Predictor) allocate(pc uint64, taken bool, provider int) {
	weak := int8(0)
	if !taken {
		weak = -1
	}
	start := provider + 1
	// Random jitter over the first candidate spreads allocation pressure.
	if p.rng.Intn(4) == 0 && start < NumTables-1 {
		start++
	}
	if p.cfg.Infinite {
		// Alias-free mode: always room.
		allocated := 0
		for i := start; i < NumTables && allocated < 2; i++ {
			if e, inserted := p.inf[i].Put(p.infKey(pc, i)); inserted {
				e.ctr = weak
				allocated++
				i++ // leave a gap between allocations
			}
		}
		return
	}
	allocated := 0
	for i := start; i < NumTables && allocated < 2; i++ {
		e := &p.tables[i][p.idx[i]]
		if e.u == 0 {
			e.tag = p.tag[i]
			e.ctr = weak
			allocated++
			i++ // leave a gap between allocations
		} else {
			e.u--
		}
	}
}

// pushHistory records the branch's canonical history bit and advances all
// folded registers; it must run exactly once per retired branch.
func (p *Predictor) pushHistory(b core.Branch) {
	p.ghist.Push(core.HistoryBit(b))
	p.path.Push(b.PC)
	// All folds of table i compress the same HistoryLengths[i] bits, so the
	// two history bits each update needs are fetched once per table.
	newest := uint64(p.ghist.Bit(0))
	if p.cfg.Infinite {
		for i := 0; i < NumTables; i++ {
			oldest := uint64(p.ghist.Bit(HistoryLengths[i]))
			p.idxFold[i].UpdateBits(newest, oldest)
			p.tagFold1[i].UpdateBits(newest, oldest)
			p.tagFold2[i].UpdateBits(newest, oldest)
			p.infTag1[i].UpdateBits(newest, oldest)
			p.infTag2[i].UpdateBits(newest, oldest)
		}
	} else {
		for i := 0; i < NumTables; i++ {
			oldest := uint64(p.ghist.Bit(HistoryLengths[i]))
			p.idxFold[i].UpdateBits(newest, oldest)
			p.tagFold1[i].UpdateBits(newest, oldest)
			p.tagFold2[i].UpdateBits(newest, oldest)
		}
	}
	if p.sc != nil {
		p.sc.pushHistory(p.ghist)
	}
}

// TrackUnconditional implements core.Predictor: unconditional branches
// only advance history state.
func (p *Predictor) TrackUnconditional(b core.Branch) {
	p.pushHistory(b)
}

// Predict implements core.Predictor.
func (p *Predictor) Predict(pc uint64) core.Prediction {
	d := p.Lookup(pc)
	return core.Prediction{
		Taken:       d.FinalTaken,
		ProviderLen: d.ProviderLen,
		Confidence:  d.Confidence,
		FastTaken:   d.BimTaken,
	}
}

// RunBatch implements core.BatchPredictor: the canonical per-branch loop
// with direct (devirtualized) calls on the concrete receiver.
func (p *Predictor) RunBatch(batch []core.Branch, preds []core.Prediction) {
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = core.Prediction{Taken: true}
		}
	}
}

// Update implements core.Predictor.
func (p *Predictor) Update(b core.Branch, _ core.Prediction) {
	p.CommitDetail(b, p.last, p.last.TageTaken, p.sc != nil && !p.last.LoopValid)
}

// PatternCount reports the number of live tagged patterns (infinite mode:
// allocated entries; finite mode: entries with a non-zero counter or tag).
func (p *Predictor) PatternCount() int {
	n := 0
	if p.cfg.Infinite {
		for i := range p.inf {
			n += p.inf[i].Len()
		}
		return n
	}
	for _, t := range p.tables {
		for _, e := range t {
			if e.tag != 0 || e.ctr != 0 {
				n++
			}
		}
	}
	return n
}

// LoopDebug exposes the loop predictor entry state for pc (diagnostics).
func (p *Predictor) LoopDebug(pc uint64) string {
	if p.loop == nil {
		return "loop disabled"
	}
	return p.loop.debugState(pc)
}
