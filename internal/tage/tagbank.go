package tage

import (
	"llbpx/internal/hashutil"
	"llbpx/internal/history"
)

// TagBank computes pattern tags of a fixed width for every TAGE history
// length, from its own folded registers hooked to a shared global history.
// LLBP and LLBP-X use one to form the (wider-than-TAGE) tags stored in
// their pattern sets; the bank must observe every history push the primary
// predictor performs, in the same order.
type TagBank struct {
	width uint
	f1    [NumTables]history.Folded
	f2    [NumTables]history.Folded
}

// NewTagBank returns a bank producing width-bit tags (5 <= width <= 31)
// for each of the standard HistoryLengths.
func NewTagBank(width uint) *TagBank {
	if width < 5 || width > 31 {
		panic("tage: TagBank width out of range [5,31]")
	}
	b := &TagBank{width: width}
	for i, l := range HistoryLengths {
		b.f1[i] = history.MakeFolded(l, width)
		b.f2[i] = history.MakeFolded(l, width-1)
	}
	return b
}

// Width returns the tag width in bits.
func (b *TagBank) Width() uint { return b.width }

// Update advances the folds after g received a new bit; call exactly once
// per retired branch, after the primary predictor's history push.
func (b *TagBank) Update(g *history.Global) {
	newest := uint64(g.Bit(0))
	for i, l := range HistoryLengths {
		oldest := uint64(g.Bit(l))
		b.f1[i].UpdateBits(newest, oldest)
		b.f2[i].UpdateBits(newest, oldest)
	}
}

// Tag returns the width-bit pattern tag for pc at history length index
// lenIdx (into HistoryLengths), using the current history state.
func (b *TagBank) Tag(pc uint64, lenIdx int) uint32 {
	t := hashutil.PCMix(pc) ^ b.f1[lenIdx].Value() ^ (b.f2[lenIdx].Value() << 1)
	return uint32(t & (uint64(1)<<b.width - 1))
}
