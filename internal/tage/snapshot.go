package tage

import (
	"llbpx/internal/snapshot"
)

// maxInfEntries bounds the per-table entry count accepted when decoding an
// infinite-mode snapshot, guarding allocation against corrupt counts.
const maxInfEntries = 1 << 26

// SaveState implements snapshot.State: it serializes every learned
// structure — history registers and folds, tagged tables (finite or
// alias-free), bimodal, use-alt and tick counters, the PRNG, and the SC
// and loop components — so LoadState reproduces bit-identical behavior.
// Per-lookup scratch (idx/tag/last) is deliberately excluded: snapshots
// are taken between branches, where the next Lookup rewrites it.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("tage.predictor")
	w.String(p.cfg.Name)
	w.Bool(p.cfg.Infinite)
	p.ghist.SaveState(w)
	p.path.SaveState(w)
	for i := 0; i < NumTables; i++ {
		p.idxFold[i].SaveState(w)
		p.tagFold1[i].SaveState(w)
		p.tagFold2[i].SaveState(w)
	}
	if p.cfg.Infinite {
		w.Marker("tage.inf")
		for i := 0; i < NumTables; i++ {
			p.infTag1[i].SaveState(w)
			p.infTag2[i].SaveState(w)
			w.Count(p.inf[i].Len())
			p.inf[i].Range(func(key uint64, e *entry) bool {
				w.U64(key)
				w.I64(int64(e.ctr))
				w.U64(uint64(e.u))
				return true
			})
		}
	} else {
		w.Marker("tage.tables")
		for i := range p.tables {
			for j := range p.tables[i] {
				e := &p.tables[i][j]
				w.U32(e.tag)
				w.I64(int64(e.ctr))
				w.U64(uint64(e.u))
			}
		}
	}
	w.Marker("tage.bimodal")
	for _, c := range p.bimodal {
		w.I64(int64(c))
	}
	w.Int(p.useAlt)
	w.Int(p.tick)
	w.U64(p.rng.State())
	w.Bool(p.sc != nil)
	if p.sc != nil {
		p.sc.saveState(w)
	}
	w.Bool(p.loop != nil)
	if p.loop != nil {
		p.loop.saveState(w)
	}
}

// LoadState implements snapshot.State. The receiver must be a cold
// predictor of the same configuration; every decoded value is validated
// against the receiver's invariants so a corrupt stream fails instead of
// producing an out-of-range counter.
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("tage.predictor")
	if name := r.String(256); r.Err() == nil && name != p.cfg.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Name)
	}
	if inf := r.Bool(); r.Err() == nil && inf != p.cfg.Infinite {
		r.Fail("finite/infinite mode mismatch")
	}
	if r.Err() != nil {
		return
	}
	p.ghist.LoadState(r)
	p.path.LoadState(r)
	for i := 0; i < NumTables; i++ {
		p.idxFold[i].LoadState(r)
		p.tagFold1[i].LoadState(r)
		p.tagFold2[i].LoadState(r)
	}
	ctrMin, ctrMax := int64(p.ctrMin()), int64(p.ctrMax())
	if p.cfg.Infinite {
		r.Marker("tage.inf")
		for i := 0; i < NumTables && r.Err() == nil; i++ {
			p.infTag1[i].LoadState(r)
			p.infTag2[i].LoadState(r)
			n := r.Count(maxInfEntries)
			if r.Err() != nil {
				return
			}
			p.inf[i].Reserve(n)
			for j := 0; j < n && r.Err() == nil; j++ {
				key := r.U64()
				ctr := int8(r.I64In(ctrMin, ctrMax))
				u := uint8(r.U64Max(3))
				if r.Err() != nil {
					return
				}
				e, inserted := p.inf[i].Put(key)
				if !inserted {
					r.Fail("duplicate infinite-table key")
					return
				}
				e.ctr, e.u = ctr, u
			}
		}
	} else {
		r.Marker("tage.tables")
		tagMax := uint64(1)
		for i := range p.tables {
			tb := uint(p.cfg.tagBits(i))
			tagMax = uint64(1)<<tb - 1
			for j := range p.tables[i] {
				e := &p.tables[i][j]
				e.tag = uint32(r.U64Max(tagMax))
				e.ctr = int8(r.I64In(ctrMin, ctrMax))
				e.u = uint8(r.U64Max(3))
			}
			if r.Err() != nil {
				return
			}
		}
	}
	r.Marker("tage.bimodal")
	for i := range p.bimodal {
		p.bimodal[i] = int8(r.I64In(-2, 1))
	}
	p.useAlt = int(r.I64In(-8, 7))
	p.tick = int(r.I64In(0, 1<<62))
	p.rng.Seed(r.U64())
	if hasSC := r.Bool(); r.Err() == nil {
		if hasSC != (p.sc != nil) {
			r.Fail("statistical corrector presence mismatch")
			return
		}
		if p.sc != nil {
			p.sc.loadState(r)
		}
	}
	if hasLoop := r.Bool(); r.Err() == nil {
		if hasLoop != (p.loop != nil) {
			r.Fail("loop predictor presence mismatch")
			return
		}
		if p.loop != nil {
			p.loop.loadState(r)
		}
	}
}

func (c *corrector) saveState(w *snapshot.Writer) {
	w.Marker("tage.sc")
	for _, v := range c.bias {
		w.I64(int64(v))
	}
	for i := range c.gehl {
		c.gehlFold[i].SaveState(w)
		for _, v := range c.gehl[i] {
			w.I64(int64(v))
		}
	}
	w.Bool(c.localHist != nil)
	if c.localHist != nil {
		for _, h := range c.localHist {
			w.U64(uint64(h))
		}
		for i := range c.localGehl {
			for _, v := range c.localGehl[i] {
				w.I64(int64(v))
			}
		}
	}
	w.Int(c.threshold)
	w.Int(c.thrCtr)
}

func (c *corrector) loadState(r *snapshot.Reader) {
	r.Marker("tage.sc")
	for i := range c.bias {
		c.bias[i] = int8(r.I64In(scCtrMin, scCtrMax))
	}
	for i := range c.gehl {
		c.gehlFold[i].LoadState(r)
		for j := range c.gehl[i] {
			c.gehl[i][j] = int8(r.I64In(scCtrMin, scCtrMax))
		}
	}
	if hasLocal := r.Bool(); r.Err() == nil && hasLocal != (c.localHist != nil) {
		r.Fail("local SC component presence mismatch")
	}
	if r.Err() != nil {
		return
	}
	if c.localHist != nil {
		for i := range c.localHist {
			c.localHist[i] = uint16(r.U64Max(1<<11 - 1))
		}
		for i := range c.localGehl {
			for j := range c.localGehl[i] {
				c.localGehl[i][j] = int8(r.I64In(scCtrMin, scCtrMax))
			}
		}
	}
	c.threshold = int(r.I64In(scThrMin, scThrMax))
	c.thrCtr = int(r.I64In(-16, 16))
}

func (l *loopPredictor) saveState(w *snapshot.Writer) {
	w.Marker("tage.loop")
	for s := range l.sets {
		for i := range l.sets[s] {
			e := &l.sets[s][i]
			w.U64(uint64(e.tag))
			w.U64(uint64(e.past))
			w.U64(uint64(e.current))
			w.U64(uint64(e.conf))
			w.U64(uint64(e.age))
			w.Bool(e.dir)
			w.Bool(e.valid)
		}
	}
	w.U64(uint64(l.seed))
}

func (l *loopPredictor) loadState(r *snapshot.Reader) {
	r.Marker("tage.loop")
	for s := range l.sets {
		for i := range l.sets[s] {
			e := &l.sets[s][i]
			e.tag = uint16(r.U64Max(1<<loopTagBits - 1))
			e.past = uint16(r.U64Max(loopIterMax))
			e.current = uint16(r.U64Max(loopIterMax))
			e.conf = uint8(r.U64Max(loopConfMax))
			e.age = uint8(r.U64Max(255))
			e.dir = r.Bool()
			e.valid = r.Bool()
		}
	}
	l.seed = uint32(r.U64Max(1<<32 - 1))
}

// SaveState writes the bank's folded registers; geometry is configuration.
func (b *TagBank) SaveState(w *snapshot.Writer) {
	w.Marker("tage.tagbank")
	for i := range b.f1 {
		b.f1[i].SaveState(w)
		b.f2[i].SaveState(w)
	}
}

// LoadState restores the bank's folded registers.
func (b *TagBank) LoadState(r *snapshot.Reader) {
	r.Marker("tage.tagbank")
	for i := range b.f1 {
		b.f1[i].LoadState(r)
		b.f2[i].LoadState(r)
	}
}
