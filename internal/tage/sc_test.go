package tage

import (
	"testing"

	"llbpx/internal/hashutil"
	"llbpx/internal/history"
)

func TestSCLearnsBias(t *testing.T) {
	c := newCorrector()
	g := history.NewGlobal(64)
	const pc = 0x2468
	// A branch that is always taken while the upstream prediction keeps
	// saying not-taken: the corrector must learn to flip it.
	for i := 0; i < 200; i++ {
		c.train(pc, false, 1, true)
		g.Push(1)
		c.pushHistory(g)
	}
	sum := c.lookup(pc, false, 1)
	if sum < 0 {
		t.Fatalf("corrector should vote taken after training, sum=%d", sum)
	}
	if sum < c.useThreshold() {
		t.Fatalf("corrector vote %d below its own use threshold %d", sum, c.useThreshold())
	}
}

func TestSCRespectsConfidentUpstream(t *testing.T) {
	c := newCorrector()
	// An untrained corrector must not out-vote a confident upstream
	// prediction: the upstream's confidence weight dominates a zeroed
	// table.
	sum := c.lookup(0x1000, true, 7)
	if sum < 0 {
		t.Fatalf("fresh corrector flipped a confident prediction, sum=%d", sum)
	}
	sumNT := c.lookup(0x1000, false, 7)
	if sumNT > 0 {
		t.Fatalf("fresh corrector flipped a confident not-taken, sum=%d", sumNT)
	}
}

func TestSCThresholdAdapts(t *testing.T) {
	c := newCorrector()
	start := c.useThreshold()
	// Feed it flips that are consistently wrong: the threshold must rise
	// (or at least not fall).
	for i := 0; i < 500; i++ {
		// Train the tables toward taken...
		c.train(0x30, false, 1, true)
	}
	// ...then report that its flips fail.
	for i := 0; i < 200; i++ {
		c.train(0x30, false, 1, false)
		c.train(0x30, false, 1, true)
	}
	if c.useThreshold() < scThrMin || c.useThreshold() > scThrMax {
		t.Fatalf("threshold %d escaped its bounds", c.useThreshold())
	}
	_ = start
}

func TestSCCounterSaturation(t *testing.T) {
	var ctr int8
	for i := 0; i < 100; i++ {
		scCtrUpdate(&ctr, true)
	}
	if ctr != scCtrMax {
		t.Fatalf("ctr = %d, want %d", ctr, scCtrMax)
	}
	for i := 0; i < 200; i++ {
		scCtrUpdate(&ctr, false)
	}
	if ctr != scCtrMin {
		t.Fatalf("ctr = %d, want %d", ctr, scCtrMin)
	}
}

func TestSCIntegrationImprovesBiasedBranches(t *testing.T) {
	// End to end: a statically biased branch under heavy aliasing noise.
	// With the SC the full predictor should do at least as well as
	// without it.
	run := func(useSC bool) int {
		cfg := Config64K()
		cfg.UseSC = useSC
		p := MustNew(cfg)
		miss := 0
		for i := 0; i < 20000; i++ {
			taken := i%10 != 0 // 90% taken
			d := p.Lookup(0x77a0)
			if d.FinalTaken != taken && i > 2000 {
				miss++
			}
			p.CommitDetail(condBranch(0x77a0, taken), d, d.TageTaken, useSC && !d.LoopValid)
		}
		return miss
	}
	with, without := run(true), run(false)
	if with > without*2 {
		t.Fatalf("SC made things much worse: %d vs %d", with, without)
	}
}

func TestLocalSCComponentLearnsLocalPattern(t *testing.T) {
	// A branch whose outcome depends only on its own last 3 directions
	// (period-3 pattern T T N) amid heavy global-history noise: the local
	// component should hold its accuracy where global indices churn.
	run := func(useLocal bool) int {
		cfg := Config64K()
		cfg.UseLocalSC = useLocal
		p := MustNew(cfg)
		rng := hashutil.NewRand(0x1234)
		miss := 0
		for i := 0; i < 30000; i++ {
			// Noise branches scramble the global history.
			for k := 0; k < 3; k++ {
				nb := condBranch(0x9100+uint64(k)*8, rng.Bool(0.5))
				d := p.Lookup(nb.PC)
				p.CommitDetail(nb, d, d.TageTaken, !d.LoopValid)
			}
			b := condBranch(0x9000, i%3 != 2)
			d := p.Lookup(b.PC)
			if d.FinalTaken != b.Taken && i > 10000 {
				miss++
			}
			p.CommitDetail(b, d, d.TageTaken, !d.LoopValid)
		}
		return miss
	}
	with, without := run(true), run(false)
	// The local component must not make things worse; typically it helps
	// under this noise profile.
	if with > without*3/2+50 {
		t.Fatalf("local SC hurt badly: %d vs %d misses", with, without)
	}
}
