package tage

import (
	"llbpx/internal/hashutil"
	"llbpx/internal/history"
)

// corrector is a compact statistical corrector in the spirit of
// TAGE-SC-L's SC stage: a per-branch bias component plus a small GEHL over
// short global histories, combined into a weighted vote that can override
// statistically biased predictions the tagged tables get wrong. The
// override threshold adapts so the SC only fires where it has been
// profitable.
type corrector struct {
	bias []int8 // indexed by (pc, predicted direction)

	gehlLens []int
	gehl     [][]int8
	gehlFold []history.Folded

	// Optional local component: per-branch direction histories feeding
	// two local GEHL tables.
	localHist []uint16 // 11-bit local histories, PC-indexed
	localGehl [][]int8
	localLens []uint // history bits used per component

	threshold int // dynamic use/train threshold
	thrCtr    int // saturating adjustment counter
}

const (
	scBiasLog    = 12
	scLocalLog   = 10
	scGehlLog    = 10
	scCtrMax     = 31
	scCtrMin     = -32
	scThrDefault = 6
	scThrMin     = 4
	scThrMax     = 31
)

func newCorrector() *corrector {
	lens := []int{4, 11, 27}
	c := &corrector{
		bias:      make([]int8, 1<<scBiasLog),
		gehlLens:  lens,
		threshold: scThrDefault,
	}
	for _, l := range lens {
		c.gehl = append(c.gehl, make([]int8, 1<<scGehlLog))
		c.gehlFold = append(c.gehlFold, history.MakeFolded(l, scGehlLog))
	}
	return c
}

// enableLocal attaches the local-history component.
func (c *corrector) enableLocal() {
	c.localHist = make([]uint16, 1<<scLocalLog)
	c.localLens = []uint{5, 11}
	for range c.localLens {
		c.localGehl = append(c.localGehl, make([]int8, 1<<scGehlLog))
	}
}

func (c *corrector) localIndex(pc uint64) uint64 {
	return hashutil.PCMix(pc) & (1<<scLocalLog - 1)
}

func (c *corrector) localGehlIndex(pc uint64, comp int) uint64 {
	h := c.localHist[c.localIndex(pc)] & (1<<c.localLens[comp] - 1)
	return (hashutil.PCMix(pc) ^ uint64(h)*0x9e3779b9 ^ uint64(comp)<<17) & (1<<scGehlLog - 1)
}

func (c *corrector) biasIndex(pc uint64, predIn bool) uint64 {
	i := hashutil.PCMix(pc) << 1
	if predIn {
		i |= 1
	}
	return i & (1<<scBiasLog - 1)
}

func (c *corrector) gehlIndex(pc uint64, comp int) uint64 {
	h := hashutil.PCMix(pc) ^ c.gehlFold[comp].Value() ^ uint64(comp)*0x2545f491
	return h & (1<<scGehlLog - 1)
}

// lookup returns the corrector's weighted vote for pc given the upstream
// prediction predIn and its confidence. Positive means taken.
func (c *corrector) lookup(pc uint64, predIn bool, conf int) int {
	sum := 0
	sum += 2*int(c.bias[c.biasIndex(pc, predIn)]) + 1
	for i := range c.gehl {
		sum += 2*int(c.gehl[i][c.gehlIndex(pc, i)]) + 1
	}
	for i := range c.localGehl {
		sum += 2*int(c.localGehl[i][c.localGehlIndex(pc, i)]) + 1
	}
	// The upstream prediction votes with its confidence so the SC only
	// overrides when its own signal is comparatively strong.
	vote := 2 + conf
	if !predIn {
		vote = -vote
	}
	sum += vote
	return sum
}

// useThreshold is the minimum |sum| at which the SC overrides.
func (c *corrector) useThreshold() int { return c.threshold }

func scCtrUpdate(ctr *int8, taken bool) {
	if taken {
		if *ctr < scCtrMax {
			*ctr++
		}
	} else if *ctr > scCtrMin {
		*ctr--
	}
}

// train updates the corrector with the resolved outcome. Following the
// perceptron rule, counters train when the SC's vote was wrong or weaker
// than the training threshold; the threshold itself adapts on override
// flips so the corrector converges to firing only when profitable.
func (c *corrector) train(pc uint64, predIn bool, conf int, taken bool) {
	sum := c.lookup(pc, predIn, conf)
	scTaken := sum >= 0
	if scTaken != taken || abs(sum) < c.threshold*2 {
		scCtrUpdate(&c.bias[c.biasIndex(pc, predIn)], taken)
		for i := range c.gehl {
			scCtrUpdate(&c.gehl[i][c.gehlIndex(pc, i)], taken)
		}
		for i := range c.localGehl {
			scCtrUpdate(&c.localGehl[i][c.localGehlIndex(pc, i)], taken)
		}
	}
	// Threshold adaptation: when the SC flipped the upstream prediction,
	// reward successful flips with a lower threshold, punish harmful ones.
	if scTaken != predIn && abs(sum) >= c.threshold {
		if scTaken == taken {
			c.thrCtr--
		} else {
			c.thrCtr += 2
		}
		switch {
		case c.thrCtr <= -8:
			c.thrCtr = 0
			if c.threshold > scThrMin {
				c.threshold--
			}
		case c.thrCtr >= 8:
			c.thrCtr = 0
			if c.threshold < scThrMax {
				c.threshold++
			}
		}
	}
}

// pushHistory advances the corrector's folded histories; called once per
// retired branch after the global history push.
func (c *corrector) pushHistory(g *history.Global) {
	newest := uint64(g.Bit(0))
	for i := range c.gehlFold {
		c.gehlFold[i].UpdateBits(newest, uint64(g.Bit(c.gehlFold[i].OrigLen())))
	}
}

// pushLocal records a resolved conditional branch's direction in its local
// history (no-op without the local component).
func (c *corrector) pushLocal(pc uint64, taken bool) {
	if c.localHist == nil {
		return
	}
	i := c.localIndex(pc)
	h := c.localHist[i] << 1
	if taken {
		h |= 1
	}
	c.localHist[i] = h & (1<<11 - 1)
}
