package tage

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
)

func condBranch(pc uint64, taken bool) core.Branch {
	return core.Branch{PC: pc, Kind: core.CondDirect, Taken: taken, InstrGap: 5}
}

// drive predicts and commits one conditional branch, returning whether the
// prediction was correct.
func drive(p *Predictor, b core.Branch) bool {
	d := p.Lookup(b.PC)
	ok := d.FinalTaken == b.Taken
	p.CommitDetail(b, d, d.TageTaken, !d.LoopValid)
	return ok
}

func TestConfigValidation(t *testing.T) {
	good := Config64K()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.LogEntries = 2 },
		func(c *Config) { c.LogBimodal = 1 },
		func(c *Config) { c.ShortTagBits = 2 },
		func(c *Config) { c.LongTagBits = c.ShortTagBits - 1 },
		func(c *Config) { c.CtrBits = 1 },
		func(c *Config) { c.UResetPeriod = 0 },
	}
	for i, mutate := range bad {
		c := Config64K()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	// Infinite mode skips geometry checks.
	inf := ConfigInf()
	inf.LogEntries = 0
	if err := inf.Validate(); err != nil {
		t.Fatalf("infinite config must validate: %v", err)
	}
}

func TestHistoryLengthAnchors(t *testing.T) {
	// The paper quotes these lengths; the table must contain them at the
	// positions the shallow/deep ranges rely on.
	if HistoryLengths[0] != 6 || HistoryLengths[5] != 37 ||
		HistoryLengths[15] != 232 || HistoryLengths[20] != 3000 {
		t.Fatalf("history length anchors broken: %v", HistoryLengths)
	}
	for i := 1; i < NumTables; i++ {
		if HistoryLengths[i] <= HistoryLengths[i-1] {
			t.Fatalf("lengths must increase monotonically at %d", i)
		}
	}
	if HistoryIndex(232) != 15 || HistoryIndex(7) != -1 {
		t.Fatal("HistoryIndex lookup broken")
	}
}

func TestStorageBudgets(t *testing.T) {
	b64 := Config64K().StorageBits() / 8 / 1024
	if b64 < 40 || b64 > 90 {
		t.Fatalf("64K preset is %d KiB", b64)
	}
	b512 := Config512K().StorageBits() / 8 / 1024
	if b512 < 8*b64/2 {
		t.Fatalf("512K preset (%d KiB) not ~8x the 64K (%d KiB)", b512, b64)
	}
}

func TestLearnsStaticBranch(t *testing.T) {
	p := MustNew(Config64K())
	miss := 0
	for i := 0; i < 1000; i++ {
		if !drive(p, condBranch(0x1000, true)) && i > 10 {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("static branch mispredicted %d times after warmup", miss)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := MustNew(Config64K())
	miss := 0
	for i := 0; i < 2000; i++ {
		b := condBranch(0x2000, i%2 == 0)
		if !drive(p, b) && i > 200 {
			miss++
		}
	}
	if miss > 20 {
		t.Fatalf("alternating pattern mispredicted %d times after training", miss)
	}
}

func TestLearnsShortHistoryFunction(t *testing.T) {
	// Outcome = deterministic function of the last 6 direction bits.
	p := MustNew(Config64K())
	var hist uint64
	rng := hashutil.NewRand(1)
	miss, n := 0, 0
	for i := 0; i < 30000; i++ {
		// A noisy companion branch feeds entropy into the history.
		nb := condBranch(0x3100, rng.Bool(0.5))
		drive(p, nb)
		hist = hist<<1 | b2u(nb.Taken)

		taken := hashutil.Mix64(0xfeed^hist&63)&1 == 1
		b := condBranch(0x3000, taken)
		ok := drive(p, b)
		hist = hist<<1 | b2u(taken)
		if i > 15000 {
			n++
			if !ok {
				miss++
			}
		}
	}
	if rate := float64(miss) / float64(n); rate > 0.10 {
		t.Fatalf("short-history function missed %.1f%% after training", 100*rate)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestLoopPredictorCatchesFixedTrips(t *testing.T) {
	p := MustNew(Config64K())
	miss := 0
	for rep := 0; rep < 5000; rep++ {
		for it := 0; it < 7; it++ {
			b := condBranch(0x4000, it < 6)
			if !drive(p, b) && rep > 2000 {
				miss++
			}
		}
	}
	if miss > 0 {
		t.Fatalf("fixed-trip loop mispredicted %d times when fully trained", miss)
	}
}

func TestLoopPredictorSurvivesNonLoops(t *testing.T) {
	// A branch that is almost always taken must not be hijacked by a
	// bogus loop entry (the overrun regression).
	p := MustNew(Config64K())
	rng := hashutil.NewRand(2)
	miss, n := 0, 0
	for i := 0; i < 20000; i++ {
		b := condBranch(0x5000, rng.Bool(0.98))
		ok := drive(p, b)
		if i > 2000 {
			n++
			if !ok {
				miss++
			}
		}
	}
	if rate := float64(miss) / float64(n); rate > 0.05 {
		t.Fatalf("biased branch missed %.1f%% — loop predictor interference?", 100*rate)
	}
}

func TestInfiniteModeBeatsFiniteUnderAliasing(t *testing.T) {
	// Thousands of static branches with per-branch fixed outcomes: the
	// finite predictor suffers aliasing, infinite must be near perfect.
	run := func(cfg Config) int {
		p := MustNew(cfg)
		miss := 0
		for rep := 0; rep < 30; rep++ {
			for i := 0; i < 4000; i++ {
				pc := 0x10000 + uint64(i)*16
				taken := hashutil.Mix64(uint64(i))&1 == 1
				b := condBranch(pc, taken)
				if !drive(p, b) && rep > 20 {
					miss++
				}
			}
		}
		return miss
	}
	infMiss := run(ConfigInf())
	if infMiss > 400 {
		t.Fatalf("infinite mode missed %d on trained static branches", infMiss)
	}
}

func TestPredictUpdateInterface(t *testing.T) {
	var p core.Predictor = MustNew(Config64K())
	b := condBranch(0x6000, true)
	for i := 0; i < 100; i++ {
		pred := p.Predict(b.PC)
		p.Update(b, pred)
	}
	pred := p.Predict(b.PC)
	if !pred.Taken {
		t.Fatal("trained always-taken branch predicted not-taken via interface path")
	}
	if pred.ProviderLen < 0 {
		t.Fatal("negative provider length")
	}
	p.TrackUnconditional(core.Branch{PC: 0x7000, Kind: core.Call, Taken: true})
}

func TestLookupIsSideEffectFreeOnPrediction(t *testing.T) {
	p := MustNew(Config64K())
	b := condBranch(0x8000, true)
	for i := 0; i < 50; i++ {
		drive(p, b)
	}
	d1 := p.Lookup(b.PC)
	d2 := p.Lookup(b.PC)
	if d1 != d2 {
		t.Fatalf("consecutive Lookups disagree: %+v vs %+v", d1, d2)
	}
}

func TestPatternCountGrows(t *testing.T) {
	p := MustNew(ConfigInf())
	rng := hashutil.NewRand(3)
	for i := 0; i < 5000; i++ {
		pc := 0x9000 + uint64(rng.Intn(64))*8
		drive(p, condBranch(pc, rng.Bool(0.5)))
	}
	if p.PatternCount() == 0 {
		t.Fatal("random branches must allocate patterns")
	}
}

func TestTagBank(t *testing.T) {
	p := MustNew(Config64K())
	bank := NewTagBank(13)
	if bank.Width() != 13 {
		t.Fatal("width accessor broken")
	}
	// Tags must be deterministic for the same (pc, history) and bounded.
	var last [NumTables]uint32
	for i := 0; i < 300; i++ {
		b := condBranch(0xa000+uint64(i%7)*16, i%3 == 0)
		for li := 0; li < NumTables; li++ {
			tag := bank.Tag(b.PC, li)
			if tag >= 1<<13 {
				t.Fatalf("tag %d exceeds 13 bits", tag)
			}
			if tag != bank.Tag(b.PC, li) {
				t.Fatal("Tag must be deterministic between history pushes")
			}
			last[li] = tag
		}
		d := p.Lookup(b.PC)
		p.CommitDetail(b, d, d.TageTaken, true)
		bank.Update(p.History())
	}
	// After history moved, long-history tags should change.
	changed := false
	for li := NumTables / 2; li < NumTables; li++ {
		if bank.Tag(0xa000, li) != last[li] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("tags never change with history")
	}
}

func TestTagBankPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTagBank(40) must panic")
		}
	}()
	NewTagBank(40)
}

func TestSCDecideSideEffectFree(t *testing.T) {
	p := MustNew(Config64K())
	for i := 0; i < 200; i++ {
		drive(p, condBranch(0xb000, i%4 != 0))
	}
	a1, s1 := p.SCDecide(0xb000, true, 3)
	a2, s2 := p.SCDecide(0xb000, true, 3)
	if a1 != a2 || s1 != s2 {
		t.Fatal("SCDecide must be repeatable without state change")
	}
}

func TestIndexTagDeterministicUnderReplay(t *testing.T) {
	// Two predictors fed the same branch stream must agree on every
	// prediction: all hashing is a pure function of (config, stream).
	mk := func() *Predictor { return MustNew(Config64K()) }
	p1, p2 := mk(), mk()
	rng := hashutil.NewRand(17)
	for i := 0; i < 20000; i++ {
		if rng.Bool(0.25) {
			u := core.Branch{PC: 0x8000 + uint64(rng.Intn(64))*32, Kind: core.Call, Taken: true, InstrGap: 3}
			p1.TrackUnconditional(u)
			p2.TrackUnconditional(u)
			continue
		}
		b := condBranch(0x4000+uint64(rng.Intn(256))*16, rng.Bool(0.6))
		d1, d2 := p1.Lookup(b.PC), p2.Lookup(b.PC)
		if d1 != d2 {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, d1, d2)
		}
		p1.CommitDetail(b, d1, d1.TageTaken, !d1.LoopValid)
		p2.CommitDetail(b, d2, d2.TageTaken, !d2.LoopValid)
	}
}

func TestUsefulnessAging(t *testing.T) {
	cfg := Config64K()
	cfg.UResetPeriod = 1000
	p := MustNew(cfg)
	rng := hashutil.NewRand(23)
	// Run enough conditionals to trigger several aging sweeps; nothing to
	// assert beyond liveness and sane predictions.
	for i := 0; i < 5000; i++ {
		b := condBranch(0x9000+uint64(rng.Intn(128))*8, rng.Bool(0.7))
		drive(p, b)
	}
	if p.PatternCount() == 0 {
		t.Fatal("no patterns allocated across aging sweeps")
	}
}
