package tournament

import (
	"bytes"
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/snapshot"
	"llbpx/internal/tage"
)

// fixed is a stub member that always predicts the same direction and
// records the predictions handed back to its Update.
type fixed struct {
	taken   bool
	conf    int
	updates []core.Prediction
}

func (f *fixed) Name() string { return "fixed" }
func (f *fixed) Predict(pc uint64) core.Prediction {
	return core.Prediction{Taken: f.taken, Confidence: f.conf}
}
func (f *fixed) Update(b core.Branch, pred core.Prediction) { f.updates = append(f.updates, pred) }
func (f *fixed) TrackUnconditional(b core.Branch)           {}

func members(ms ...core.Predictor) []core.Predictor { return ms }

func TestNewValidation(t *testing.T) {
	good := Config{Name: "t", ChooserBits: 8}
	if _, err := New(good, members(&fixed{}, &fixed{})); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		cfg Config
		ms  []core.Predictor
	}{
		{good, members(&fixed{})}, // too few
		{good, members(&fixed{}, &fixed{}, &fixed{}, &fixed{}, &fixed{})}, // too many
		{good, members(&fixed{}, nil)},                                    // nil member
		{Config{Name: "t", ChooserBits: 3}, members(&fixed{}, &fixed{})},  // bits low
		{Config{Name: "t", ChooserBits: 21}, members(&fixed{}, &fixed{})}, // bits high
	}
	for i, tc := range cases {
		if _, err := New(tc.cfg, tc.ms); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestChooserLearns: one member is always right, the other always wrong;
// after a few disagreements the chooser must follow the right one, and
// keep following it even though both report equal confidence.
func TestChooserLearns(t *testing.T) {
	right := &fixed{taken: true, conf: 3}
	wrong := &fixed{taken: false, conf: 3}
	// The wrong member first: ties break toward index 0, so learning —
	// not ordering — must flip the choice.
	p := MustNew(Config{Name: "t", ChooserBits: 8}, members(wrong, right))
	b := core.Branch{PC: 0x40, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	for i := 0; i < 64; i++ {
		p.Update(b, p.Predict(b.PC))
	}
	if pred := p.Predict(b.PC); !pred.Taken {
		t.Fatal("chooser still follows the always-wrong member after 64 disagreements")
	}
	st := p.Stats()
	if st["tournament.disagreements"] < 64 {
		t.Fatalf("disagreements = %v, want >= 64", st["tournament.disagreements"])
	}
	if st["tournament.chosen.m1"] == 0 {
		t.Fatalf("right member never chosen: %v", st)
	}
}

// TestMembersTrainOnOwnPredictions: each member's Update receives the
// prediction IT made, not the tournament's choice — members must evolve
// exactly as they would running alone.
func TestMembersTrainOnOwnPredictions(t *testing.T) {
	a := &fixed{taken: true, conf: 1}
	c := &fixed{taken: false, conf: 5}
	p := MustNew(Config{Name: "t", ChooserBits: 8}, members(a, c))
	b := core.Branch{PC: 0x40, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	for i := 0; i < 8; i++ {
		p.Update(b, p.Predict(b.PC))
	}
	if len(a.updates) != 8 || len(c.updates) != 8 {
		t.Fatalf("update counts %d/%d, want 8/8", len(a.updates), len(c.updates))
	}
	for i := 0; i < 8; i++ {
		if !a.updates[i].Taken || a.updates[i].Confidence != 1 {
			t.Fatalf("member a got %+v at %d, want its own prediction", a.updates[i], i)
		}
		if c.updates[i].Taken || c.updates[i].Confidence != 5 {
			t.Fatalf("member c got %+v at %d, want its own prediction", c.updates[i], i)
		}
	}
}

// TestConfidenceBreaksNeutralTies: with reliability still neutral, the
// more confident member provides.
func TestConfidenceBreaksNeutralTies(t *testing.T) {
	meek := &fixed{taken: false, conf: 1}
	bold := &fixed{taken: true, conf: 7}
	p := MustNew(Config{Name: "t", ChooserBits: 8}, members(meek, bold))
	if pred := p.Predict(0x40); !pred.Taken {
		t.Fatal("equal reliability must fall to the confident member")
	}
}

// counted is a fixed stub that also exposes internal counters.
type counted struct{ fixed }

func (c *counted) Stats() map[string]float64 { return map[string]float64{"hits": 42} }

// TestStatsMergesMembers: a stats-capable member's counters surface under
// the m<i>. prefix; stats-less members contribute only their chosen count.
func TestStatsMergesMembers(t *testing.T) {
	p := MustNew(Config{Name: "t", ChooserBits: 8}, members(&counted{}, &fixed{}))
	b := core.Branch{PC: 0x40, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	for i := 0; i < 32; i++ {
		p.Update(b, p.Predict(b.PC))
	}
	st := p.Stats()
	if _, ok := st["tournament.disagreements"]; !ok {
		t.Fatalf("own counters missing: %v", st)
	}
	if st["m0.hits"] != 42 {
		t.Fatalf("member stats not merged under m0. prefix: %v", st)
	}
}

// TestSnapshotIdentity: save -> load -> save is byte-identical with real
// snapshot-capable members, and stub members without snapshot support are
// recorded as absent rather than failing.
func TestSnapshotIdentity(t *testing.T) {
	mk := func() *Predictor {
		return MustNew(Config{Name: "t", ChooserBits: 8},
			members(tage.MustNew(tage.Config8K()), tage.MustNew(tage.Config16K())))
	}
	p := mk()
	for i := 0; i < 2000; i++ {
		b := core.Branch{PC: uint64(0x40 + i%7*8), Kind: core.CondDirect, Taken: i%3 != 0, InstrGap: 4}
		p.Update(b, p.Predict(b.PC))
	}
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, "t", p); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)
	q := mk()
	if _, _, err := snapshot.Load(bytes.NewReader(blob), func(string) (snapshot.State, error) {
		return q, nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := snapshot.Save(&buf2, "t", q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("save -> load -> save is not byte-identical")
	}

	// Stateless stub members round-trip as absent.
	s := MustNew(Config{Name: "s", ChooserBits: 8}, members(&fixed{}, &fixed{taken: true}))
	var sb bytes.Buffer
	if err := snapshot.Save(&sb, "s", s); err != nil {
		t.Fatal(err)
	}
	s2 := MustNew(Config{Name: "s", ChooserBits: 8}, members(&fixed{}, &fixed{taken: true}))
	if _, _, err := snapshot.Load(bytes.NewReader(sb.Bytes()), func(string) (snapshot.State, error) {
		return s2, nil
	}); err != nil {
		t.Fatalf("stub-member round trip: %v", err)
	}
}

// TestSnapshotRejectsMismatch: wrong name or member-count snapshots fail
// instead of silently corrupting.
func TestSnapshotRejectsMismatch(t *testing.T) {
	p := MustNew(Config{Name: "t", ChooserBits: 8},
		members(tage.MustNew(tage.Config8K()), tage.MustNew(tage.Config16K())))
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, "t", p); err != nil {
		t.Fatal(err)
	}
	other := MustNew(Config{Name: "other", ChooserBits: 8},
		members(tage.MustNew(tage.Config8K()), tage.MustNew(tage.Config16K())))
	if _, _, err := snapshot.Load(bytes.NewReader(buf.Bytes()), func(string) (snapshot.State, error) {
		return other, nil
	}); err == nil {
		t.Fatal("name mismatch accepted")
	}
	three := MustNew(Config{Name: "t", ChooserBits: 8},
		members(tage.MustNew(tage.Config8K()), tage.MustNew(tage.Config16K()), &fixed{}))
	if _, _, err := snapshot.Load(bytes.NewReader(buf.Bytes()), func(string) (snapshot.State, error) {
		return three, nil
	}); err == nil {
		t.Fatal("member-count mismatch accepted")
	}
}
