// Package tournament implements a meta-predictor that arbitrates between
// member predictors per branch with a confidence-weighted chooser: each
// chooser entry tracks a small reliability counter per member, the
// member's score is its reliability scaled up plus its current prediction
// confidence, and the highest score provides. Reliability adapts only on
// branches where the members disagree — agreement carries no signal —
// which is the classic tournament (e.g. Alpha 21264) shape generalized to
// N members and confidence-carrying predictions.
//
// Members are full core.Predictor instances driven in lockstep: every
// member predicts and trains on every branch exactly as it would running
// alone, so the meta-predictor's stream is a pure arbitration over
// independently evolving members.
package tournament

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/patternpool"
)

const (
	// MaxMembers bounds the member count (scratch state is fixed-size so
	// the hot path never allocates).
	MaxMembers = 4
	// Reliability counters live in [0, relMax], starting neutral.
	relMax  = 15
	relInit = 8
	// confCap clamps a member's reported confidence into the score's
	// low-order range, keeping reliability the dominant term.
	confCap = 7
)

// Config parameterizes a tournament instance.
type Config struct {
	// Name labels the configuration (the canonical registry spec).
	Name string
	// ChooserBits is log2 of the chooser table's entry count.
	ChooserBits int
}

// tournStats are the measurement counters.
type tournStats struct {
	chosen        [MaxMembers]uint64
	disagreements uint64
}

// predState is the scratch carried from Predict to the matching Update.
type predState struct {
	idx    int // chooser base index (entry * member count)
	choice int
	agree  bool
	preds  [MaxMembers]core.Prediction
}

// Predictor is the tournament meta-predictor. It implements
// core.BatchPredictor and snapshot.State, and forwards the patternpool
// attach/release protocol to every member that supports it.
type Predictor struct {
	cfg     Config
	members []core.Predictor
	mask    uint64
	// rel is the chooser table: entries x members reliability counters,
	// flattened as rel[entry*len(members)+member].
	rel  []uint8
	cur  predState
	tick int64
	st   tournStats
}

// New constructs a tournament over 2..MaxMembers member predictors.
func New(cfg Config, members []core.Predictor) (*Predictor, error) {
	if len(members) < 2 || len(members) > MaxMembers {
		return nil, fmt.Errorf("tournament %q: needs 2..%d members, got %d", cfg.Name, MaxMembers, len(members))
	}
	if cfg.ChooserBits < 4 || cfg.ChooserBits > 20 {
		return nil, fmt.Errorf("tournament %q: ChooserBits %d out of range [4,20]", cfg.Name, cfg.ChooserBits)
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("tournament %q: member %d is nil", cfg.Name, i)
		}
	}
	entries := 1 << cfg.ChooserBits
	p := &Predictor{
		cfg:     cfg,
		members: append([]core.Predictor(nil), members...),
		mask:    uint64(entries - 1),
		rel:     make([]uint8, entries*len(members)),
	}
	for i := range p.rel {
		p.rel[i] = relInit
	}
	return p, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config, members []core.Predictor) *Predictor {
	p, err := New(cfg, members)
	if err != nil {
		panic(fmt.Sprintf("tournament: invalid config: %v", err))
	}
	return p
}

// Name implements core.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Members exposes the member predictors (read-only use).
func (p *Predictor) Members() []core.Predictor { return p.members }

// Predict implements core.Predictor: every member predicts, and the
// chooser entry's best reliability-plus-confidence score provides. Ties
// keep the lowest member index, so ordering in the members list is a
// deterministic priority.
func (p *Predictor) Predict(pc uint64) core.Prediction {
	c := &p.cur
	n := len(p.members)
	c.idx = int(hashutil.Mix64(hashutil.PCMix(pc))&p.mask) * n
	c.agree = true
	c.choice = 0
	best := -1
	for i := 0; i < n; i++ {
		pr := p.members[i].Predict(pc)
		c.preds[i] = pr
		if pr.Taken != c.preds[0].Taken {
			c.agree = false
		}
		conf := pr.Confidence
		if conf < 0 {
			conf = 0
		} else if conf > confCap {
			conf = confCap
		}
		score := int(p.rel[c.idx+i])*(confCap+1) + conf
		if score > best {
			best = score
			c.choice = i
		}
	}
	p.st.chosen[c.choice]++
	return c.preds[c.choice]
}

// Update implements core.Predictor: reliability adapts on member
// disagreement, then every member trains on its own prediction — each
// member evolves exactly as it would running alone.
func (p *Predictor) Update(b core.Branch, pred core.Prediction) {
	c := &p.cur
	if !c.agree {
		p.st.disagreements++
		for i := range p.members {
			r := &p.rel[c.idx+i]
			if c.preds[i].Taken == b.Taken {
				if *r < relMax {
					*r++
				}
			} else if *r > 0 {
				*r--
			}
		}
	}
	for i, m := range p.members {
		m.Update(b, c.preds[i])
	}
	p.tick++
}

// TrackUnconditional implements core.Predictor.
func (p *Predictor) TrackUnconditional(b core.Branch) {
	for _, m := range p.members {
		m.TrackUnconditional(b)
	}
	p.tick++
}

// RunBatch implements core.BatchPredictor: the canonical per-branch loop.
func (p *Predictor) RunBatch(batch []core.Branch, preds []core.Prediction) {
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = core.Prediction{Taken: true}
		}
	}
}

// AttachPatternPool forwards the namespace to every member that supports
// the pool protocol (patternpool.Attacher). Members draw slabs of their
// own geometry classes, so several members share one namespace safely.
func (p *Predictor) AttachPatternPool(ns *patternpool.Namespace) {
	for _, m := range p.members {
		if a, ok := m.(patternpool.Attacher); ok {
			a.AttachPatternPool(ns)
		}
	}
}

// ReleasePatternStore forwards release to every member that supports it
// (patternpool.Releaser).
func (p *Predictor) ReleasePatternStore() {
	for _, m := range p.members {
		if r, ok := m.(patternpool.Releaser); ok {
			r.ReleasePatternStore()
		}
	}
}

// Stats implements core.StatsProvider: the meta-level counters plus every
// member's counters under a deterministic m<i>. prefix.
func (p *Predictor) Stats() map[string]float64 {
	m := map[string]float64{
		"tournament.disagreements": float64(p.st.disagreements),
	}
	for i, mem := range p.members {
		m[fmt.Sprintf("tournament.chosen.m%d", i)] = float64(p.st.chosen[i])
		if sp, ok := mem.(core.StatsProvider); ok {
			for k, v := range sp.Stats() {
				m[fmt.Sprintf("m%d.%s", i, k)] = v
			}
		}
	}
	return m
}

// MemberChooserStats is one member's slice of the chooser export:
// how often it provided, its mean reliability across the chooser table,
// and on how many entries it holds the strictly-or-tied-highest
// reliability (ties resolve to the lowest index, matching Predict).
type MemberChooserStats struct {
	Name            string  `json:"name"`
	Chosen          uint64  `json:"chosen"`
	MeanReliability float64 `json:"mean_reliability"`
	TopEntries      int     `json:"top_entries"`
}

// ChooserStats is the tournament's machine-readable chooser dump — the
// offline-analysis export behind `llbpsim -chooser-stats` and llbpd's
// GET /v1/sessions/{id}/chooser.
type ChooserStats struct {
	Predictor     string               `json:"predictor"`
	ChooserBits   int                  `json:"chooser_bits"`
	Entries       int                  `json:"entries"`
	Disagreements uint64               `json:"disagreements"`
	Members       []MemberChooserStats `json:"members"`
}

// ChooserStats summarizes the chooser table per member.
func (p *Predictor) ChooserStats() ChooserStats {
	n := len(p.members)
	entries := len(p.rel) / n
	sums := make([]uint64, n)
	tops := make([]int, n)
	for e := 0; e < entries; e++ {
		base := e * n
		best, bestRel := 0, -1
		for i := 0; i < n; i++ {
			r := int(p.rel[base+i])
			sums[i] += uint64(r)
			if r > bestRel {
				best, bestRel = i, r
			}
		}
		tops[best]++
	}
	cs := ChooserStats{
		Predictor:     p.cfg.Name,
		ChooserBits:   p.cfg.ChooserBits,
		Entries:       entries,
		Disagreements: p.st.disagreements,
		Members:       make([]MemberChooserStats, n),
	}
	for i := 0; i < n; i++ {
		cs.Members[i] = MemberChooserStats{
			Name:            p.members[i].Name(),
			Chosen:          p.st.chosen[i],
			MeanReliability: float64(sums[i]) / float64(entries),
			TopEntries:      tops[i],
		}
	}
	return cs
}

// ResetStats implements core.Resetter (warmup boundary).
func (p *Predictor) ResetStats() {
	p.st = tournStats{}
	for _, m := range p.members {
		if r, ok := m.(core.Resetter); ok {
			r.ResetStats()
		}
	}
}

// FinishMeasurement forwards the end-of-run hook to members that have one
// (llbp folds resident pattern-buffer entries into its stats here).
func (p *Predictor) FinishMeasurement() {
	for _, m := range p.members {
		if f, ok := m.(interface{ FinishMeasurement() }); ok {
			f.FinishMeasurement()
		}
	}
}
