package tournament

import (
	"llbpx/internal/snapshot"
)

// maxRelBytes bounds the decoded chooser table (20 chooser bits x
// MaxMembers).
const maxRelBytes = (1 << 20) * MaxMembers

// SaveState implements snapshot.State: the chooser table, meta state, and
// every member's state in member order. Members that do not implement
// snapshot.State are recorded as absent and restored cold.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("tournament.predictor")
	w.String(p.cfg.Name)
	w.Count(len(p.members))
	for _, m := range p.members {
		s, ok := m.(snapshot.State)
		w.Bool(ok)
		if ok {
			s.SaveState(w)
		}
	}
	w.Marker("tournament.chooser")
	w.Bytes(p.rel)
	w.I64(p.tick)
	w.Marker("tournament.stats")
	for i := 0; i < MaxMembers; i++ {
		w.U64(p.st.chosen[i])
	}
	w.U64(p.st.disagreements)
}

// LoadState implements snapshot.State; the receiver must be a cold
// predictor of the same configuration (same canonical spec, hence same
// member list and chooser geometry).
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("tournament.predictor")
	if name := r.String(4096); r.Err() == nil && name != p.cfg.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Name)
	}
	if n := r.Count(MaxMembers); r.Err() == nil && n != len(p.members) {
		r.Fail("snapshot has %d members, predictor has %d", n, len(p.members))
	}
	if r.Err() != nil {
		return
	}
	for i, m := range p.members {
		s, ok := m.(snapshot.State)
		if saved := r.Bool(); r.Err() == nil && saved != ok {
			r.Fail("member %d: snapshot state presence %v, predictor %v", i, saved, ok)
		}
		if r.Err() != nil {
			return
		}
		if ok {
			s.LoadState(r)
			if r.Err() != nil {
				return
			}
		}
	}
	r.Marker("tournament.chooser")
	rel := r.Bytes(maxRelBytes)
	if r.Err() == nil && len(rel) != len(p.rel) {
		r.Fail("chooser table is %d bytes, want %d", len(rel), len(p.rel))
	}
	if r.Err() != nil {
		return
	}
	for i, v := range rel {
		if v > relMax {
			r.Fail("chooser entry %d out of range: %d", i, v)
			return
		}
	}
	copy(p.rel, rel)
	p.tick = r.I64In(0, 1<<62)
	r.Marker("tournament.stats")
	for i := 0; i < MaxMembers; i++ {
		p.st.chosen[i] = r.U64()
	}
	p.st.disagreements = r.U64()
}
