package analyze

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/workload"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{MaxInstructions: 0, ContextDepths: []int{2}},
		{MaxInstructions: 10},
		{MaxInstructions: 10, ContextDepths: []int{200}},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("options %d should fail", i)
		}
	}
}

func TestRunOnWorkload(t *testing.T) {
	prof, err := workload.ByName("tomcat")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.MaxInstructions = 500_000
	rep, err := Run(workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions < opt.MaxInstructions {
		t.Fatalf("pass ended early: %d instructions", rep.Instructions)
	}
	if rep.Mix[core.CondDirect] == 0 || rep.Mix[core.Call] == 0 || rep.Mix[core.Return] == 0 {
		t.Fatalf("branch mix incomplete: %v", rep.Mix)
	}
	if rep.TakenRate <= 0 || rep.TakenRate >= 1 {
		t.Fatalf("taken rate %v implausible", rep.TakenRate)
	}
	if rep.StaticCond < 100 {
		t.Fatalf("static cond working set %d too small", rep.StaticCond)
	}
	if rep.InstrPerBranch < 2 || rep.InstrPerBranch > 12 {
		t.Fatalf("instr/branch %v implausible", rep.InstrPerBranch)
	}
	if len(rep.Locality) != 3 {
		t.Fatalf("locality depths = %d", len(rep.Locality))
	}
	// Deeper contexts must be strictly more numerous and less recurrent —
	// the trade-off behind the paper's W analysis.
	for i := 1; i < len(rep.Locality); i++ {
		if rep.Locality[i].Distinct <= rep.Locality[i-1].Distinct {
			t.Fatalf("W=%d should have more distinct contexts than W=%d",
				rep.Locality[i].W, rep.Locality[i-1].W)
		}
		if rep.Locality[i].MeanOccurrences >= rep.Locality[i-1].MeanOccurrences {
			t.Fatalf("W=%d should recur less than W=%d",
				rep.Locality[i].W, rep.Locality[i-1].W)
		}
	}
}

func TestRunEmptySource(t *testing.T) {
	rep, err := Run(core.NewSliceSource(nil), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Branches != 0 {
		t.Fatal("empty source must report nothing")
	}
	// Rendering an empty report must not panic.
	_ = rep.Table("empty")
}

func TestTableRendering(t *testing.T) {
	prof, _ := workload.ByName("kafka")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.MaxInstructions = 100_000
	rep, err := Run(workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Table("kafka characterization").String()
	for _, want := range []string{"instructions", "dyn cond", "W=2", "W=64", "static cond PCs"} {
		if !contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestSameContextPairShare(t *testing.T) {
	// Hand-built stream: C C U C C C -> pairs: (C,C)=same, (C,C across U)
	// =crossing, (C,C)=same, (C,C)=same -> 3/4.
	mk := func(kind core.BranchKind, pc uint64) core.Branch {
		return core.Branch{PC: pc, Kind: kind, Taken: true, InstrGap: 1}
	}
	stream := []core.Branch{
		mk(core.CondDirect, 0x10),
		mk(core.CondDirect, 0x20),
		mk(core.Call, 0x30),
		mk(core.CondDirect, 0x40),
		mk(core.CondDirect, 0x50),
		mk(core.CondDirect, 0x60),
	}
	opt := DefaultOptions()
	opt.MaxInstructions = 6
	rep, err := Run(core.NewSliceSource(stream), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.SameContextPairShare, 0.75; got != want {
		t.Fatalf("SameContextPairShare = %v, want %v", got, want)
	}
}
