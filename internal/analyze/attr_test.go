package analyze

import (
	"strings"
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/sim"
)

// Attribution must satisfy the simulator's observer contract.
var _ sim.Observer = (*Attribution)(nil)

func obsMiss(a *Attribution, pc uint64, pred core.Prediction, measuring bool) {
	// taken=true with pred.Taken=false is always a miss.
	pred.Taken = false
	a.ObserveBranch(core.Branch{PC: pc, Kind: core.CondDirect, Taken: true}, pred, measuring)
}

func obsHit(a *Attribution, pc uint64, measuring bool) {
	a.ObserveBranch(core.Branch{PC: pc, Kind: core.CondDirect, Taken: true},
		core.Prediction{Taken: true}, measuring)
}

func TestProviderClass(t *testing.T) {
	cases := []struct {
		pred core.Prediction
		want int
	}{
		{core.Prediction{}, ProviderBase},
		{core.Prediction{ProviderLen: 8}, ProviderShort},
		{core.Prediction{ProviderLen: 64}, ProviderShort},
		{core.Prediction{ProviderLen: 65}, ProviderLong},
		{core.Prediction{ProviderLen: 300}, ProviderLong},
		{core.Prediction{ProviderLen: 300, FromSecondLevel: true}, ProviderSecondLevel},
		{core.Prediction{FromSecondLevel: true}, ProviderSecondLevel},
	}
	for i, c := range cases {
		if got := providerClass(c.pred); got != c.want {
			t.Fatalf("case %d: providerClass(%+v) = %d, want %d", i, c.pred, got, c.want)
		}
	}
}

func TestAttributionAccounting(t *testing.T) {
	a := NewAttribution()
	// Warmup activity must be invisible.
	obsMiss(a, 0x10, core.Prediction{}, false)
	obsHit(a, 0x10, false)
	if a.Branches() != 0 || a.Mispredicts() != 0 || a.StaticBranches() != 0 {
		t.Fatalf("warmup leaked into attribution: %d/%d/%d", a.Branches(), a.Mispredicts(), a.StaticBranches())
	}

	// PC 0x10: 3 execs, 2 misses (one base, one long). PC 0x20: 2 execs,
	// 1 miss (second level). PC 0x30: 1 exec, no miss.
	obsMiss(a, 0x10, core.Prediction{}, true)
	obsMiss(a, 0x10, core.Prediction{ProviderLen: 128}, true)
	obsHit(a, 0x10, true)
	obsMiss(a, 0x20, core.Prediction{ProviderLen: 256, FromSecondLevel: true}, true)
	obsHit(a, 0x20, true)
	obsHit(a, 0x30, true)

	if a.Branches() != 6 || a.Mispredicts() != 3 || a.StaticBranches() != 3 {
		t.Fatalf("totals: execs=%d miss=%d static=%d", a.Branches(), a.Mispredicts(), a.StaticBranches())
	}

	top := a.TopK(2)
	if len(top) != 2 || top[0].PC != 0x10 || top[1].PC != 0x20 {
		t.Fatalf("TopK order: %+v", top)
	}
	b := top[0]
	if b.Execs != 3 || b.Mispredicts != 2 {
		t.Fatalf("pc 0x10: %+v", b)
	}
	if b.ByProvider[ProviderBase] != 1 || b.ByProvider[ProviderLong] != 1 {
		t.Fatalf("pc 0x10 provider split: %v", b.ByProvider)
	}
	if got := b.MeanMissHistory(); got != 64 { // (0 + 128) / 2
		t.Fatalf("MeanMissHistory = %v, want 64", got)
	}
	if got := b.MissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("MissRate = %v", got)
	}
	if top[1].ByProvider[ProviderSecondLevel] != 1 {
		t.Fatalf("pc 0x20 provider split: %v", top[1].ByProvider)
	}

	// TopK(0) and an oversized k return the full population.
	if len(a.TopK(0)) != 3 || len(a.TopK(100)) != 3 {
		t.Fatal("TopK bounds")
	}

	tbl := a.Table(2)
	if tbl.NumRows() != 2 {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
	out := tbl.String()
	for _, want := range []string{"0x10", "0x20", "share%", "cum%", "L2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// tiltedSource emits one heavily-mispredicted PC among well-behaved ones,
// so attribution through a real simulation must rank it first.
type tiltedSource struct{ n int }

func (s *tiltedSource) Next() (core.Branch, bool) {
	s.n++
	pc := uint64(0x100 + 16*(s.n%8))
	taken := true
	if s.n%8 == 0 {
		// The hot PC is frequently not-taken, so the always-taken stub
		// concentrates its misses here.
		pc = 0xbad
		taken = (s.n*2654435761)%3 == 0
	}
	return core.Branch{PC: pc, Kind: core.CondDirect, Taken: taken, InstrGap: 4}, true
}

type takenStub struct{}

func (takenStub) Name() string                               { return "taken" }
func (takenStub) Predict(pc uint64) core.Prediction          { return core.Prediction{Taken: true} }
func (takenStub) Update(b core.Branch, pred core.Prediction) {}
func (takenStub) TrackUnconditional(b core.Branch)           {}

func TestAttributionThroughSimulator(t *testing.T) {
	a := NewAttribution()
	res, err := sim.Run(takenStub{}, &tiltedSource{},
		sim.Options{WarmupInstr: 1000, MeasureInstr: 10_000, Observer: a})
	if err != nil {
		t.Fatal(err)
	}
	if a.Branches() != res.Measured.CondBranches {
		t.Fatalf("observer execs %d != measured cond branches %d", a.Branches(), res.Measured.CondBranches)
	}
	if a.Mispredicts() != res.Measured.Mispredicts {
		t.Fatalf("observer misses %d != measured mispredicts %d", a.Mispredicts(), res.Measured.Mispredicts)
	}
	top := a.TopK(1)
	if len(top) != 1 || top[0].PC != 0xbad {
		t.Fatalf("hot mispredictor not ranked first: %+v", top)
	}
}
