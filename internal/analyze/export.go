package analyze

import (
	"strconv"
)

// ExportRow is one static branch in the JSON attribution export. PCs
// render as "0x..." hex strings: JSON numbers lose precision past 2^53,
// and 64-bit branch addresses do not fit.
type ExportRow struct {
	PC          string  `json:"pc"`
	Execs       uint64  `json:"execs"`
	Mispredicts uint64  `json:"mispredicts"`
	MissRate    float64 `json:"miss_rate"`
	// SharePct is this branch's percentage of all measured mispredictions;
	// CumPct the running cumulative share in table order.
	SharePct float64 `json:"share_pct"`
	CumPct   float64 `json:"cum_pct"`
	// ByProvider splits the branch's misses by the providing component
	// class, keyed by the ProviderNames labels.
	ByProvider      map[string]uint64 `json:"by_provider"`
	MeanMissHistory float64           `json:"mean_miss_history"`
}

// Export is the machine-readable attribution artifact (llbpsim -attr
// -json). Its table rows are the H2P set in misprediction-share order —
// the input format bullseye's h2p_file= spec parameter consumes.
type Export struct {
	Predictor      string      `json:"predictor,omitempty"`
	Workload       string      `json:"workload,omitempty"`
	Branches       uint64      `json:"branches"`
	Mispredicts    uint64      `json:"mispredicts"`
	StaticBranches int         `json:"static_branches"`
	Table          []ExportRow `json:"table"`
}

// ExportTopK builds the JSON export for the top k branches (k <= 0 = all),
// in the same deterministic order as Table.
func (a *Attribution) ExportTopK(k int) Export {
	top := a.TopK(k)
	out := Export{
		Branches:       a.execs,
		Mispredicts:    a.miss,
		StaticBranches: len(a.branches),
		Table:          make([]ExportRow, 0, len(top)),
	}
	var cum float64
	for _, b := range top {
		share := 0.0
		if a.miss > 0 {
			share = 100 * float64(b.Mispredicts) / float64(a.miss)
		}
		cum += share
		byProv := make(map[string]uint64, numProviders)
		for p := 0; p < numProviders; p++ {
			byProv[providerNames[p]] = b.ByProvider[p]
		}
		out.Table = append(out.Table, ExportRow{
			PC:              "0x" + strconv.FormatUint(b.PC, 16),
			Execs:           b.Execs,
			Mispredicts:     b.Mispredicts,
			MissRate:        b.MissRate(),
			SharePct:        share,
			CumPct:          cum,
			ByProvider:      byProv,
			MeanMissHistory: b.MeanMissHistory(),
		})
	}
	return out
}
