// Package analyze characterizes branch streams: branch mix, static
// working sets, context-locality statistics across the paper's three
// context depths, and per-branch predictability classes. It backs
// cmd/analyze and reproduces the kind of workload evidence Sections II-III
// of the paper build their motivation on.
package analyze

import (
	"fmt"
	"sort"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/stats"
)

// Options bounds a characterization pass.
type Options struct {
	// MaxInstructions stops the pass after this many retired instructions.
	MaxInstructions uint64
	// ContextDepths are the W values context locality is measured at.
	ContextDepths []int
	// SkipD is the context skip distance used for the context IDs.
	SkipD int
}

// DefaultOptions characterizes 5M instructions at the paper's three
// depths.
func DefaultOptions() Options {
	return Options{
		MaxInstructions: 5_000_000,
		ContextDepths:   []int{2, 8, 64},
		SkipD:           4,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.MaxInstructions == 0 {
		return fmt.Errorf("analyze: MaxInstructions must be positive")
	}
	if len(o.ContextDepths) == 0 {
		return fmt.Errorf("analyze: need at least one context depth")
	}
	for _, w := range o.ContextDepths {
		if w < 0 || o.SkipD+w > llbp.MaxRCRDepth {
			return fmt.Errorf("analyze: depth %d (with skip %d) out of RCR range", w, o.SkipD)
		}
	}
	return nil
}

// ContextLocality summarizes context recurrence at one depth.
type ContextLocality struct {
	// W is the context depth.
	W int
	// Distinct is the number of distinct context IDs observed.
	Distinct int
	// Singletons is how many occurred exactly once (pure cold contexts).
	Singletons int
	// MeanOccurrences is the average occurrences per distinct context.
	MeanOccurrences float64
	// Top10Share is the fraction of all context occurrences covered by
	// the 10 hottest contexts.
	Top10Share float64
}

// Report is the outcome of a characterization pass.
type Report struct {
	// Instructions, Branches are totals over the pass.
	Instructions uint64
	Branches     uint64
	// Mix counts dynamic branches per kind.
	Mix map[core.BranchKind]uint64
	// TakenRate is the fraction of conditional branches taken.
	TakenRate float64
	// StaticCond / StaticUncond are distinct branch PCs seen.
	StaticCond   int
	StaticUncond int
	// HotCondShare is the dynamic-execution share of the 100 hottest
	// conditional PCs.
	HotCondShare float64
	// Locality holds context statistics per requested depth.
	Locality []ContextLocality
	// InstrPerBranch is the mean instruction gap.
	InstrPerBranch float64
	// SameContextPairShare is the fraction of consecutive conditional-
	// branch pairs with no intervening unconditional branch — pairs a
	// multi-prediction front end can serve from a single pattern-buffer
	// read (the paper's Section D.1 dual-porting discussion).
	SameContextPairShare float64
}

// Run characterizes the stream from src.
func Run(src core.Source, opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Mix: make(map[core.BranchKind]uint64)}
	var rcr llbp.RCR
	ctxCounts := make([]map[uint64]uint64, len(opt.ContextDepths))
	for i := range ctxCounts {
		ctxCounts[i] = make(map[uint64]uint64)
	}
	condPCs := make(map[uint64]uint64)
	uncondPCs := make(map[uint64]struct{})
	var taken uint64
	var condPairs, sameCtxPairs uint64
	sawCond := false     // any conditional so far
	prevWasCond := false // the immediately previous branch was conditional

	for r.Instructions < opt.MaxInstructions {
		b, ok := src.Next()
		if !ok {
			break
		}
		r.Instructions += b.Instructions()
		r.Branches++
		r.Mix[b.Kind]++
		if b.Kind.Conditional() {
			condPCs[b.PC]++
			if b.Taken {
				taken++
			}
			if sawCond {
				condPairs++
				if prevWasCond {
					sameCtxPairs++ // no unconditional branch in between
				}
			}
			sawCond = true
			prevWasCond = true
		} else {
			prevWasCond = false
			uncondPCs[b.PC] = struct{}{}
			rcr.Push(b.PC)
			for i, w := range opt.ContextDepths {
				ctxCounts[i][rcr.ContextID(opt.SkipD, w)]++
			}
		}
	}
	if r.Branches == 0 {
		return r, nil
	}

	condTotal := r.Mix[core.CondDirect]
	if condTotal > 0 {
		r.TakenRate = float64(taken) / float64(condTotal)
	}
	r.StaticCond = len(condPCs)
	r.StaticUncond = len(uncondPCs)
	r.InstrPerBranch = float64(r.Instructions) / float64(r.Branches)
	r.HotCondShare = hotShare(condPCs, 100)
	if condPairs > 0 {
		r.SameContextPairShare = float64(sameCtxPairs) / float64(condPairs)
	}

	for i, w := range opt.ContextDepths {
		r.Locality = append(r.Locality, localityOf(w, ctxCounts[i]))
	}
	return r, nil
}

func hotShare(counts map[uint64]uint64, topN int) float64 {
	if len(counts) == 0 {
		return 0
	}
	all := make([]uint64, 0, len(counts))
	var total uint64
	for _, c := range counts {
		all = append(all, c)
		total += c
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	if topN > len(all) {
		topN = len(all)
	}
	var top uint64
	for _, c := range all[:topN] {
		top += c
	}
	return float64(top) / float64(total)
}

func localityOf(w int, counts map[uint64]uint64) ContextLocality {
	loc := ContextLocality{W: w, Distinct: len(counts)}
	if len(counts) == 0 {
		return loc
	}
	occ := make([]uint64, 0, len(counts))
	var total uint64
	for _, c := range counts {
		occ = append(occ, c)
		total += c
		if c == 1 {
			loc.Singletons++
		}
	}
	sort.Slice(occ, func(i, j int) bool { return occ[i] > occ[j] })
	loc.MeanOccurrences = float64(total) / float64(len(counts))
	topN := 10
	if topN > len(occ) {
		topN = len(occ)
	}
	var top uint64
	for _, c := range occ[:topN] {
		top += c
	}
	loc.Top10Share = float64(top) / float64(total)
	return loc
}

// Table renders the report as the standard plain-text table.
func (r *Report) Table(title string) *stats.Table {
	t := stats.NewTable(title, "metric", "value")
	t.AddRow("instructions", float64(r.Instructions))
	t.AddRow("branches", float64(r.Branches))
	t.AddRow("instr/branch", r.InstrPerBranch)
	for _, kind := range []core.BranchKind{core.CondDirect, core.Jump, core.Call, core.Return, core.IndirectJump} {
		if n := r.Mix[kind]; n > 0 {
			t.AddRow("dyn "+kind.String(), float64(n))
		}
	}
	t.AddRow("cond taken rate", r.TakenRate)
	t.AddRow("static cond PCs", r.StaticCond)
	t.AddRow("static uncond PCs", r.StaticUncond)
	t.AddRow("hottest-100 cond share", r.HotCondShare)
	t.AddRow("same-context cond pairs", r.SameContextPairShare)
	for _, loc := range r.Locality {
		t.AddRow(fmt.Sprintf("W=%d distinct contexts", loc.W), loc.Distinct)
		t.AddRow(fmt.Sprintf("W=%d mean occurrences", loc.W), loc.MeanOccurrences)
		t.AddRow(fmt.Sprintf("W=%d singleton contexts", loc.W), loc.Singletons)
		t.AddRow(fmt.Sprintf("W=%d top-10 share", loc.W), loc.Top10Share)
	}
	return t
}
