// Package analyze turns raw simulation observations into the paper's
// characterization artifacts. Its first resident is misprediction
// attribution: the per-static-branch accounting behind the H2P (hard to
// predict) discussion — a small set of static branches concentrates most
// of the misprediction mass, and which predictor component was providing
// on a miss tells you whether more history or more capacity would have
// helped.
//
// Attribution implements sim.Observer structurally (it imports only
// internal/core), so the simulator does not depend on this package.
package analyze

import (
	"sort"
	"strconv"

	"llbpx/internal/core"
	"llbpx/internal/stats"
)

// Provider classes a prediction is attributed to. The short/long split is
// at 64 bits of global history: beyond that only the long-history TAGE
// tables (and the second level, which exists to cache exactly those
// contexts) can reach.
const (
	// ProviderBase is the bimodal fallback (ProviderLen == 0).
	ProviderBase = iota
	// ProviderShort is a first-level TAGE table with <= 64 bits of history.
	ProviderShort
	// ProviderLong is a first-level TAGE table with > 64 bits of history.
	ProviderLong
	// ProviderSecondLevel is the LLBP/LLBP-X pattern buffer.
	ProviderSecondLevel
	numProviders
)

// shortHistoryBits is the short/long provider boundary, in history bits.
const shortHistoryBits = 64

// providerNames label the classes in table output.
var providerNames = [numProviders]string{"base", "short", "long", "L2"}

// providerClass classifies one prediction's provenance.
func providerClass(pred core.Prediction) int {
	switch {
	case pred.FromSecondLevel:
		return ProviderSecondLevel
	case pred.ProviderLen == 0:
		return ProviderBase
	case pred.ProviderLen <= shortHistoryBits:
		return ProviderShort
	default:
		return ProviderLong
	}
}

// BranchProfile is the accumulated record of one static branch (one PC).
type BranchProfile struct {
	// PC is the static branch address.
	PC uint64
	// Execs counts measured executions; Mispredicts the measured misses.
	Execs       uint64
	Mispredicts uint64
	// ByProvider counts mispredictions by the class of the component that
	// was providing the (wrong) prediction, indexed by Provider* constants.
	ByProvider [numProviders]uint64
	// providerLenSum accumulates ProviderLen over mispredictions, for
	// MeanMissHistory.
	providerLenSum uint64
}

// MissRate is the branch's own misprediction rate.
func (b *BranchProfile) MissRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Execs)
}

// MeanMissHistory is the mean provider history length (bits) over this
// branch's mispredictions — high values mean even the longest reachable
// history was not enough; zero means the bimodal fallback was providing.
func (b *BranchProfile) MeanMissHistory() float64 {
	if b.Mispredicts == 0 {
		return 0
	}
	return float64(b.providerLenSum) / float64(b.Mispredicts)
}

// Attribution accumulates per-static-branch misprediction attribution from
// simulator observations. Only measured-phase branches count (warmup
// executions train the predictor but are not the predictor's fault). Not
// safe for concurrent use — one Attribution per simulation, like the
// predictor itself.
type Attribution struct {
	branches map[uint64]*BranchProfile
	execs    uint64
	miss     uint64
}

// NewAttribution returns an empty attribution observer.
func NewAttribution() *Attribution {
	return &Attribution{branches: make(map[uint64]*BranchProfile)}
}

// ObserveBranch implements the sim.Observer contract.
func (a *Attribution) ObserveBranch(b core.Branch, pred core.Prediction, measuring bool) {
	if !measuring {
		return
	}
	a.execs++
	cell := a.branches[b.PC]
	if cell == nil {
		cell = &BranchProfile{PC: b.PC}
		a.branches[b.PC] = cell
	}
	cell.Execs++
	if pred.Taken != b.Taken {
		a.miss++
		cell.Mispredicts++
		cell.ByProvider[providerClass(pred)]++
		cell.providerLenSum += uint64(pred.ProviderLen)
	}
}

// Branches returns the number of measured conditional-branch executions.
func (a *Attribution) Branches() uint64 { return a.execs }

// Mispredicts returns the measured misprediction total.
func (a *Attribution) Mispredicts() uint64 { return a.miss }

// StaticBranches returns how many distinct PCs executed while measuring.
func (a *Attribution) StaticBranches() int { return len(a.branches) }

// TopK returns the k static branches with the most mispredictions, sorted
// by misprediction count descending (PC ascending breaks ties, so output
// is deterministic). k <= 0 or k > population returns all branches.
func (a *Attribution) TopK(k int) []*BranchProfile {
	out := make([]*BranchProfile, 0, len(a.branches))
	for _, cell := range a.branches {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].PC < out[j].PC
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Table renders the paper-style H2P table for the top k branches: each
// row is one static branch with its execution count, misprediction count
// and rate, its share of all mispredictions, the running cumulative share
// (the "few branches carry most of the misses" curve), the provider-class
// split of its misses, and the mean provider history length on a miss.
func (a *Attribution) Table(k int) *stats.Table {
	t := stats.NewTable("Top static branches by misprediction share",
		"rank", "pc", "execs", "miss", "miss%", "share%", "cum%",
		"base", "short", "long", "L2", "hist")
	var cum float64
	for i, b := range a.TopK(k) {
		share := 0.0
		if a.miss > 0 {
			share = 100 * float64(b.Mispredicts) / float64(a.miss)
		}
		cum += share
		row := []any{
			i + 1,
			"0x" + strconv.FormatUint(b.PC, 16),
			b.Execs,
			b.Mispredicts,
			100 * b.MissRate(),
			share,
			cum,
		}
		for p := 0; p < numProviders; p++ {
			row = append(row, b.ByProvider[p])
		}
		row = append(row, b.MeanMissHistory())
		t.AddRow(row...)
	}
	return t
}

// ProviderNames returns the provider-class labels in Provider* order.
func ProviderNames() []string {
	out := make([]string, numProviders)
	copy(out, providerNames[:])
	return out
}
