// Package obs is the repository's lightweight observability core:
// lock-free counters, gauges, and fixed-bucket histograms, collected in a
// Registry that renders the Prometheus text exposition format. It replaces
// the ad-hoc atomic counters the serving layer grew in PRs 1-2 with one
// shared metrics vocabulary, and it is deliberately tiny — no dependency,
// no sampling goroutines, no dynamic label sets — so recording a sample is
// a single atomic add and the disabled path of every optional hook costs
// zero allocations.
//
// Metric values are exposed two ways: typed accessors for JSON snapshots
// (the /v1/stats path) and WritePrometheus for the /metrics text format.
// Computed series that need caller state (live-session gauges,
// per-predictor aggregates) are contributed through Collect hooks, which
// render through the same writer so the exposition stays consistent.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events since start).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind tags a registered metric for the # TYPE exposition line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric.
type entry struct {
	name string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFunc func() float64
	hist      *Histogram
}

// Registry owns a set of named metrics and renders them in Prometheus text
// format. Registration happens at construction time (it takes a lock);
// recording into the registered metrics is lock-free. Names are unique;
// re-registering a name panics, since it is always a programming error.
type Registry struct {
	prefix string

	mu      sync.Mutex
	entries map[string]*entry
	collect []CollectFunc
}

// CollectFunc contributes computed series (gauges derived from caller
// state, labeled families) to the exposition at render time.
type CollectFunc func(w *ExpoWriter)

// NewRegistry returns an empty registry. prefix is prepended to every
// metric name in the exposition (e.g. "llbpd_").
func NewRegistry(prefix string) *Registry {
	return &Registry{prefix: prefix, entries: make(map[string]*entry)}
}

func (r *Registry) add(name string, e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	e.name = name
	r.entries[name] = e
}

// Counter registers and returns a counter. By convention names end in
// "_total".
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(name, &entry{kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.add(name, &entry{kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at render time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.add(name, &entry{kind: kindGauge, gaugeFunc: fn})
}

// Histogram registers and returns a histogram with the given number of
// power-of-two buckets (see NewHistogram).
func (r *Registry) Histogram(name string, buckets int) *Histogram {
	h := NewHistogram(buckets)
	r.add(name, &entry{kind: kindHistogram, hist: h})
	return h
}

// OnCollect adds a hook that contributes computed series at render time,
// after the registered metrics.
func (r *Registry) OnCollect(fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// WritePrometheus renders every registered metric (sorted by name) and
// then every collect hook, in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	hooks := append([]CollectFunc(nil), r.collect...)
	r.mu.Unlock()
	sort.Strings(names)

	ew := &ExpoWriter{w: w, prefix: r.prefix}
	for _, name := range names {
		r.mu.Lock()
		e := r.entries[name]
		r.mu.Unlock()
		ew.Family(e.name, e.kind.String())
		switch e.kind {
		case kindCounter:
			ew.Value(e.name, float64(e.counter.Value()))
		case kindGauge:
			if e.gaugeFunc != nil {
				ew.Value(e.name, e.gaugeFunc())
			} else {
				ew.Value(e.name, float64(e.gauge.Value()))
			}
		case kindHistogram:
			e.hist.writeProm(ew, e.name)
		}
	}
	for _, fn := range hooks {
		fn(ew)
	}
}

// ExpoWriter emits Prometheus text-format lines with the registry's name
// prefix applied. Collect hooks receive one to contribute computed series.
type ExpoWriter struct {
	w      io.Writer
	prefix string
}

// Family emits the # TYPE declaration for a metric family. typ is
// "counter", "gauge", or "histogram".
func (ew *ExpoWriter) Family(name, typ string) {
	fmt.Fprintf(ew.w, "# TYPE %s%s %s\n", ew.prefix, name, typ)
}

// Value emits one unlabeled sample.
func (ew *ExpoWriter) Value(name string, v float64) {
	fmt.Fprintf(ew.w, "%s%s %g\n", ew.prefix, name, v)
}

// Labeled emits one sample with a pre-formatted label body (the part
// between the braces, e.g. `predictor="llbp-x"`).
func (ew *ExpoWriter) Labeled(name, labels string, v float64) {
	fmt.Fprintf(ew.w, "%s%s{%s} %g\n", ew.prefix, name, labels, v)
}

// LabeledInt is Labeled for integral samples (renders without exponent).
func (ew *ExpoWriter) LabeledInt(name, labels string, v uint64) {
	fmt.Fprintf(ew.w, "%s%s{%s} %d\n", ew.prefix, name, labels, v)
}
