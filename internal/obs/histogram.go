package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// MaxHistogramBuckets bounds a histogram's bucket count (values above
// 2^62 would overflow the bucket upper bound).
const MaxHistogramBuckets = 63

// Histogram counts uint64 samples in fixed power-of-two buckets: bucket 0
// holds the value 0, and bucket i (i >= 1) holds values in
// [2^(i-1), 2^i). With 28 buckets and microsecond samples the top bucket
// covers ~134 s; with millisecond samples, ~1.5 days. The fixed layout
// keeps recording to two atomic adds (no locks, no allocation) and makes
// quantile extraction a single pass, at the cost of quantiles being
// upper-bound approximations — exactly the trade the serving hot path
// wants.
//
// All methods are safe for concurrent use. Reads (Count, Quantile, ...)
// are not an atomic snapshot across buckets; under concurrent writes they
// are approximate in the usual monitoring sense.
type Histogram struct {
	counts []atomic.Uint64
	sum    atomic.Uint64
}

// NewHistogram returns a histogram with the given number of buckets,
// clamped to [2, MaxHistogramBuckets]. Values beyond the top bucket's
// bound are counted in the top bucket.
func NewHistogram(buckets int) *Histogram {
	if buckets < 2 {
		buckets = 2
	}
	if buckets > MaxHistogramBuckets {
		buckets = MaxHistogramBuckets
	}
	return &Histogram{counts: make([]atomic.Uint64, buckets)}
}

// bucketOf maps a sample to its bucket index: the number of significant
// bits in v, clamped to the top bucket.
func (h *Histogram) bucketOf(v uint64) int {
	b := 0
	for v > 0 && b < len(h.counts)-1 {
		v >>= 1
		b++
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[h.bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds (negative durations
// count as 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Observe(uint64(us))
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// UpperBound returns the inclusive upper bound of bucket b (2^b; bucket 0
// covers only the value 0, bound 1 by the le-convention).
func (h *Histogram) UpperBound(b int) float64 { return float64(uint64(1) << b) }

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean sample value (0 with no samples).
func (h *Histogram) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// Quantile returns the approximate q-quantile: the upper bound of the
// bucket holding the ceil(q*count)-th sample, or 0 with no samples. q is
// clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return h.UpperBound(i)
		}
	}
	return h.UpperBound(len(counts) - 1)
}

// writeProm renders the histogram as a Prometheus histogram family:
// cumulative _bucket{le="..."} samples up to the highest non-empty bucket,
// an explicit le="+Inf" bucket, _sum, and _count.
func (h *Histogram) writeProm(ew *ExpoWriter, name string) {
	top := 0
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += counts[i]
		ew.LabeledInt(name+"_bucket", fmtLe(h.UpperBound(i)), cum)
	}
	ew.LabeledInt(name+"_bucket", `le="+Inf"`, total)
	ew.Value(name+"_sum", float64(h.Sum()))
	ew.Value(name+"_count", float64(total))
}

func fmtLe(bound float64) string {
	return `le="` + formatBound(bound) + `"`
}

// formatBound renders a power-of-two bound without exponent notation.
func formatBound(v float64) string {
	u := uint64(v)
	buf := [20]byte{}
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	return string(buf[i:])
}
