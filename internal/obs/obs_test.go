package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry("t_")
	c := r.Counter("events_total")
	g := r.Gauge("level")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry("t_")
	c := r.Counter("n_total")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry("t_")
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Gauge("x_total")
}

func TestRegistryRendering(t *testing.T) {
	r := NewRegistry("llbpd_")
	c := r.Counter("batches_total")
	c.Add(3)
	r.GaugeFunc("uptime_seconds", func() float64 { return 1.5 })
	h := r.Histogram("latency_us", 8)
	h.Observe(3)
	r.OnCollect(func(w *ExpoWriter) {
		w.Family("predictor_mpki", "gauge")
		w.Labeled("predictor_mpki", `predictor="llbp-x"`, 2.25)
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE llbpd_batches_total counter\n",
		"llbpd_batches_total 3\n",
		"# TYPE llbpd_uptime_seconds gauge\n",
		"llbpd_uptime_seconds 1.5\n",
		"# TYPE llbpd_latency_us histogram\n",
		`llbpd_latency_us_bucket{le="4"} 1` + "\n",
		`llbpd_latency_us_bucket{le="+Inf"} 1` + "\n",
		"llbpd_latency_us_sum 3\n",
		"llbpd_latency_us_count 1\n",
		`llbpd_predictor_mpki{predictor="llbp-x"} 2.25` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registered metrics render sorted by name.
	if strings.Index(out, "llbpd_batches_total") > strings.Index(out, "llbpd_uptime_seconds") {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestHistogramBucketOf(t *testing.T) {
	h := NewHistogram(8)
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 7}, // clamped to top bucket
	}
	for _, c := range cases {
		if got := h.bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(28)
	// 99 samples at ~16us (bucket 5, bound 32) and one at ~1ms (bucket 11).
	for i := 0; i < 99; i++ {
		h.Observe(16)
	}
	h.Observe(1000)
	if got := h.Quantile(0.50); got != 32 {
		t.Fatalf("p50 = %v, want 32", got)
	}
	if got := h.Quantile(0.99); got != 32 {
		t.Fatalf("p99 = %v (99/100 samples in the 16us bucket), want 32", got)
	}
	if got := h.Quantile(0.999); got != 1024 {
		t.Fatalf("p999 = %v, want 1024", got)
	}
	if got := h.Quantile(1); got != 1024 {
		t.Fatalf("p100 = %v, want 1024", got)
	}
	if got := h.Quantile(0); got != 32 {
		t.Fatalf("q=0 must return the first sample's bucket, got %v", got)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram(4)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	if NewHistogram(0).Buckets() != 2 {
		t.Fatal("bucket count must clamp up to 2")
	}
	if NewHistogram(1000).Buckets() != MaxHistogramBuckets {
		t.Fatalf("bucket count must clamp down to %d", MaxHistogramBuckets)
	}
	// Out-of-range q clamps.
	h.Observe(1)
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q must clamp to [0,1]")
	}
}

func TestHistogramMeanSum(t *testing.T) {
	h := NewHistogram(16)
	for _, v := range []uint64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Sum() != 60 || h.Count() != 3 {
		t.Fatalf("sum=%d count=%d", h.Sum(), h.Count())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v, want 20", h.Mean())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(28)
	h.ObserveDuration(33 * time.Microsecond)
	h.ObserveDuration(-5 * time.Microsecond) // clamps to 0
	if h.Count() != 2 || h.Sum() != 33 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Quantile(0.01) != 1 { // the clamped 0 sample sits in bucket 0 (le 1)
		t.Fatalf("q0.01 = %v", h.Quantile(0.01))
	}
}

// TestHistogramPromInvariants checks the rendered histogram family is
// well-formed: cumulative buckets are monotone and +Inf equals _count.
func TestHistogramPromInvariants(t *testing.T) {
	r := NewRegistry("x_")
	h := r.Histogram("lat_us", 12)
	for _, v := range []uint64{0, 1, 5, 5, 900, 3000} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	lines := strings.Split(b.String(), "\n")
	var prev uint64
	var infSeen bool
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "x_lat_us_bucket") {
			continue
		}
		var n uint64
		if _, err := fmtSscanValue(ln, &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", ln, err)
		}
		if n < prev {
			t.Fatalf("cumulative bucket counts must be monotone: %q after %d", ln, prev)
		}
		prev = n
		if strings.Contains(ln, `le="+Inf"`) {
			infSeen = true
			if n != h.Count() {
				t.Fatalf("+Inf bucket %d != count %d", n, h.Count())
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket rendered")
	}
}

// TestObserveAllocFree pins the recording path's zero-allocation
// guarantee — the property the serving hot path relies on.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry("t_")
	c := r.Counter("a_total")
	h := r.Histogram("b_us", 28)
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(12345)
	}); avg != 0 {
		t.Fatalf("Observe/Inc allocated %.2f times per run, want 0", avg)
	}
}

// fmtSscanValue parses the trailing integer of a text-format sample line.
func fmtSscanValue(line string, out *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var v uint64
	for _, ch := range line[i+1:] {
		if ch < '0' || ch > '9' {
			return 0, errNotInt
		}
		v = v*10 + uint64(ch-'0')
	}
	*out = v
	return 1, nil
}

var errNotInt = errInt("non-integer sample")

type errInt string

func (e errInt) Error() string { return string(e) }
