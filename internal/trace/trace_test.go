package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
)

func sampleBranches(n int, seed uint64) []core.Branch {
	r := hashutil.NewRand(seed)
	out := make([]core.Branch, n)
	pc := uint64(0x400000)
	for i := range out {
		pc += uint64(r.Intn(64)) * 4
		kind := core.BranchKind(r.Intn(5))
		out[i] = core.Branch{
			PC:       pc,
			Target:   pc + uint64(r.Intn(1<<16)) - 1<<15,
			Kind:     kind,
			Taken:    kind.Unconditional() || r.Bool(0.6),
			InstrGap: uint32(1 + r.Intn(10)),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	branches := sampleBranches(5000, 1)
	var buf bytes.Buffer
	if err := WriteAll(&buf, branches); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(branches) {
		t.Fatalf("decoded %d branches, want %d", len(got), len(branches))
	}
	for i := range got {
		if got[i] != branches[i] {
			t.Fatalf("branch %d mismatch: %+v vs %+v", i, got[i], branches[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		branches := sampleBranches(int(nRaw)%100+1, seed)
		var buf bytes.Buffer
		if err := WriteAll(&buf, branches); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(branches) {
			return false
		}
		for i := range got {
			if got[i] != branches[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE..."))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("LLB"))); err == nil {
		t.Fatal("truncated header must error")
	}
}

func TestTruncatedRecord(t *testing.T) {
	branches := sampleBranches(10, 2)
	var buf bytes.Buffer
	if err := WriteAll(&buf, branches); err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end; decoding must surface an error (not a clean
	// EOF) unless the cut lands exactly on a record boundary.
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n >= len(branches) {
		t.Fatal("truncated stream decoded all records")
	}
	if r.Err() == nil {
		t.Fatal("mid-record truncation must set Err")
	}
}

func TestInvalidKindRejectedOnWrite(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(core.Branch{Kind: core.BranchKind(9)}); err == nil {
		t.Fatal("invalid kind must be rejected")
	}
	// The writer is poisoned after an error.
	if err := w.Write(core.Branch{Kind: core.Jump}); err == nil {
		t.Fatal("writer must stay failed after an error")
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sampleBranches(17, 3) {
		if err := w.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 17 {
		t.Fatalf("Count = %d", w.Count())
	}
}

func TestReaderIsSource(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, sampleBranches(3, 4)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var src core.Source = r
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("read %d records via Source, want 3", n)
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF must not set Err: %v", r.Err())
	}
}

func TestCompactEncoding(t *testing.T) {
	// Sequential PCs with small deltas should encode far below 16 bytes
	// per record.
	branches := sampleBranches(10000, 5)
	var buf bytes.Buffer
	if err := WriteAll(&buf, branches); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / float64(len(branches))
	if perRecord > 12 {
		t.Fatalf("encoding too large: %.1f bytes/record", perRecord)
	}
}

func TestReaderSurvivesGarbage(t *testing.T) {
	// Random byte streams with a valid magic must never panic: they
	// either decode (by chance) or end with an error.
	r := hashutil.NewRand(99)
	for trial := 0; trial < 200; trial++ {
		data := []byte(Magic)
		n := r.Intn(200)
		for i := 0; i < n; i++ {
			data = append(data, byte(r.Intn(256)))
		}
		tr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("header rejected: %v", err)
		}
		for i := 0; i < 1000; i++ {
			if _, ok := tr.Next(); !ok {
				break
			}
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	prop := func(v int64) bool {
		return unzigzag(zigzag(v)) == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
