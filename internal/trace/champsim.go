package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"llbpx/internal/core"
)

// ChampSim trace interop. The paper's artifact distributes its server
// traces in the ChampSim instruction format: fixed 64-byte records of
//
//	ip(8) is_branch(1) branch_taken(1)
//	destination_registers[2](2) source_registers[4](4)
//	destination_memory[2](16) source_memory[4](32)
//
// Branch kind is not stored; like ChampSim itself we reconstruct it from
// the architectural registers each branch reads and writes, and the taken
// target from the next record's instruction pointer. Plain and
// gzip-compressed streams are supported (the published .xz archives must
// be decompressed first — the Go standard library has no xz reader).

// ChampSim register identifiers used by the kind heuristic.
const (
	champSP    = 6  // stack pointer
	champFlags = 25 // condition flags
	champIP    = 26 // instruction pointer
)

// champRecordSize is the fixed on-disk record size.
const champRecordSize = 8 + 1 + 1 + 2 + 4 + 16 + 32

// champRecord is one decoded instruction record.
type champRecord struct {
	ip       uint64
	isBranch bool
	taken    bool
	dst      [2]byte
	src      [4]byte
}

// champKind reconstructs the ChampSim branch classification.
func (r champRecord) champKind() (core.BranchKind, bool) {
	if !r.isBranch {
		return 0, false
	}
	has := func(regs []byte, want byte) bool {
		for _, g := range regs {
			if g == want {
				return true
			}
		}
		return false
	}
	readsSP := has(r.src[:], champSP)
	readsIP := has(r.src[:], champIP)
	readsFlags := has(r.src[:], champFlags)
	writesSP := has(r.dst[:], champSP)
	writesIP := has(r.dst[:], champIP)
	readsOther := false
	for _, g := range r.src {
		if g != 0 && g != champSP && g != champIP && g != champFlags {
			readsOther = true
		}
	}
	switch {
	case !writesIP:
		// A "branch" that does not write the IP: treat as a plain jump so
		// the record is not silently dropped.
		return core.Jump, true
	case readsSP && writesSP && writesIP && !readsIP:
		return core.Return, true
	case readsSP && writesSP && writesIP && readsIP && readsOther:
		return core.IndirectJump, true // indirect call
	case readsSP && writesSP && writesIP && readsIP:
		return core.Call, true
	case readsFlags:
		return core.CondDirect, true
	case readsOther:
		return core.IndirectJump, true
	default:
		return core.Jump, true
	}
}

// ChampSimReader decodes a ChampSim instruction trace into branch records;
// it implements core.Source. Non-branch instructions are folded into the
// following branch's InstrGap.
type ChampSimReader struct {
	r       *bufio.Reader
	buf     [champRecordSize]byte
	pending *champRecord // decoded branch awaiting its target (next ip)
	gap     uint32       // instructions since the previous branch
	err     error
	count   uint64
}

// NewChampSimReader wraps r, transparently ungzipping if needed.
func NewChampSimReader(r io.Reader) (*ChampSimReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: champsim gzip: %w", err)
		}
		br = bufio.NewReaderSize(gz, 1<<16)
	} else if err == nil && magic[0] == 0xfd && len(magic) > 1 {
		if more, err2 := br.Peek(6); err2 == nil && string(more[1:6]) == "7zXZ\x00" {
			return nil, errors.New("trace: champsim .xz input: decompress with `xz -d` first (no xz support in the Go standard library)")
		}
	}
	return &ChampSimReader{r: br}, nil
}

// readRecord decodes the next 64-byte record.
func (c *ChampSimReader) readRecord() (champRecord, error) {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		return champRecord{}, err
	}
	rec := champRecord{
		ip:       binary.LittleEndian.Uint64(c.buf[0:8]),
		isBranch: c.buf[8] != 0,
		taken:    c.buf[9] != 0,
	}
	copy(rec.dst[:], c.buf[10:12])
	copy(rec.src[:], c.buf[12:16])
	return rec, nil
}

// Next implements core.Source: it returns the next branch, with its taken
// target inferred from the following record's instruction pointer.
func (c *ChampSimReader) Next() (core.Branch, bool) {
	if c.err != nil {
		return core.Branch{}, false
	}
	for {
		rec, err := c.readRecord()
		if err != nil {
			if !errors.Is(err, io.EOF) || c.pending != nil && errors.Is(err, io.ErrUnexpectedEOF) {
				if !errors.Is(err, io.EOF) {
					c.err = fmt.Errorf("trace: champsim record: %w", err)
				}
			}
			// Flush a trailing branch without a known target.
			if c.pending != nil {
				b := c.finish(*c.pending, c.pending.ip+4)
				c.pending = nil
				return b, true
			}
			return core.Branch{}, false
		}
		c.gap++
		if c.pending != nil {
			b := c.finish(*c.pending, rec.ip)
			c.pending = nil
			if kind, ok := rec.champKind(); ok {
				// The new record is itself a branch: stash it.
				r := rec
				_ = kind
				c.pending = &r
			}
			return b, true
		}
		if _, ok := rec.champKind(); ok {
			r := rec
			c.pending = &r
			continue
		}
	}
}

// finish materializes a pending branch once its fall-through/target is
// known from the successor's ip.
func (c *ChampSimReader) finish(rec champRecord, nextIP uint64) core.Branch {
	kind, _ := rec.champKind()
	target := nextIP
	if !rec.taken {
		// Fall-through successor: the taken target is unknown; use a
		// synthetic forward target for bookkeeping.
		target = rec.ip + 4
	}
	gap := c.gap - 1 // instructions counted after the branch belong to the next gap
	if gap == 0 {
		gap = 1
	}
	b := core.Branch{
		PC:       rec.ip,
		Target:   target,
		Kind:     kind,
		Taken:    rec.taken || kind.Unconditional(),
		InstrGap: gap,
	}
	c.gap = 1 // the successor instruction itself
	c.count++
	return b
}

// Err returns the first decode error (nil on clean EOF).
func (c *ChampSimReader) Err() error { return c.err }

// Count returns the number of branches produced.
func (c *ChampSimReader) Count() uint64 { return c.count }

// WriteChampSimRecord encodes one instruction in the ChampSim format; used
// by tests and by tooling that exports synthetic workloads for the
// reference simulator.
func WriteChampSimRecord(w io.Writer, ip uint64, isBranch, taken bool, dst [2]byte, src [4]byte) error {
	var buf [champRecordSize]byte
	binary.LittleEndian.PutUint64(buf[0:8], ip)
	if isBranch {
		buf[8] = 1
	}
	if taken {
		buf[9] = 1
	}
	copy(buf[10:12], dst[:])
	copy(buf[12:16], src[:])
	_, err := w.Write(buf[:])
	return err
}

// ExportChampSim writes the branch stream from src as a ChampSim
// instruction trace, synthesizing the non-branch filler instructions each
// branch's InstrGap implies. The result replays through NewChampSimReader
// (and through the reference ChampSim/LLBP artifact) with the same branch
// sequence. It stops after maxInstr instructions and returns the counts
// written.
func ExportChampSim(w io.Writer, src core.Source, maxInstr uint64) (instructions, branches uint64, err error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	fillerIP := uint64(0x70_0000_0000)
	for instructions < maxInstr {
		b, ok := src.Next()
		if !ok {
			break
		}
		gap := b.Instructions()
		// gap-1 filler instructions precede the branch; the first filler
		// sits exactly at the previous branch's destination so the reader
		// (and ChampSim) reconstruct that target.
		for i := uint64(1); i < gap; i++ {
			if err := WriteChampSimRecord(bw, fillerIP, false, false, [2]byte{}, [4]byte{1}); err != nil {
				return instructions, branches, fmt.Errorf("trace: champsim export: %w", err)
			}
			instructions++
			fillerIP += 4
		}
		var dst [2]byte
		var srcRegs [4]byte
		switch b.Kind {
		case core.CondDirect:
			dst = [2]byte{champIP}
			srcRegs = [4]byte{champFlags, champIP}
		case core.Call:
			dst = [2]byte{champIP, champSP}
			srcRegs = [4]byte{champIP, champSP}
		case core.Return:
			dst = [2]byte{champIP, champSP}
			srcRegs = [4]byte{champSP}
		case core.IndirectJump:
			dst = [2]byte{champIP}
			srcRegs = [4]byte{3}
		default: // Jump
			dst = [2]byte{champIP}
			srcRegs = [4]byte{champIP}
		}
		if err := WriteChampSimRecord(bw, b.PC, true, b.Taken, dst, srcRegs); err != nil {
			return instructions, branches, fmt.Errorf("trace: champsim export: %w", err)
		}
		instructions++
		branches++
		// ChampSim infers the taken target from the successor record; a
		// taken branch must therefore be followed by its target, a
		// not-taken one by its fall-through.
		if b.Taken {
			fillerIP = b.Target
		} else {
			fillerIP = b.PC + 4
		}
	}
	// A terminal filler record at the final destination lets the reader
	// (and ChampSim) resolve the last branch's target.
	if branches > 0 {
		if err := WriteChampSimRecord(bw, fillerIP, false, false, [2]byte{}, [4]byte{1}); err != nil {
			return instructions, branches, fmt.Errorf("trace: champsim export: %w", err)
		}
		instructions++
	}
	if err := bw.Flush(); err != nil {
		return instructions, branches, fmt.Errorf("trace: champsim export: %w", err)
	}
	return instructions, branches, nil
}
