package trace

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"llbpx/internal/core"
)

// champBuilder assembles a synthetic ChampSim instruction stream.
type champBuilder struct {
	buf bytes.Buffer
	t   *testing.T
}

func (b *champBuilder) plain(ip uint64) {
	if err := WriteChampSimRecord(&b.buf, ip, false, false, [2]byte{}, [4]byte{1}); err != nil {
		b.t.Fatal(err)
	}
}

func (b *champBuilder) cond(ip uint64, taken bool) {
	// Conditional: writes IP, reads FLAGS (+IP).
	if err := WriteChampSimRecord(&b.buf, ip, true, taken, [2]byte{champIP}, [4]byte{champFlags, champIP}); err != nil {
		b.t.Fatal(err)
	}
}

func (b *champBuilder) call(ip uint64) {
	// Direct call: reads IP+SP, writes IP+SP.
	if err := WriteChampSimRecord(&b.buf, ip, true, true, [2]byte{champIP, champSP}, [4]byte{champIP, champSP}); err != nil {
		b.t.Fatal(err)
	}
}

func (b *champBuilder) ret(ip uint64) {
	// Return: reads SP, writes IP+SP (no IP read).
	if err := WriteChampSimRecord(&b.buf, ip, true, true, [2]byte{champIP, champSP}, [4]byte{champSP}); err != nil {
		b.t.Fatal(err)
	}
}

func (b *champBuilder) indirect(ip uint64) {
	// Indirect jump: writes IP, reads a general register.
	if err := WriteChampSimRecord(&b.buf, ip, true, true, [2]byte{champIP}, [4]byte{3}); err != nil {
		b.t.Fatal(err)
	}
}

func TestChampSimKindsAndTargets(t *testing.T) {
	b := &champBuilder{t: t}
	b.plain(0x100)
	b.cond(0x104, true) // taken conditional; target = next ip
	b.plain(0x200)      // the taken destination
	b.call(0x204)
	b.plain(0x400)
	b.ret(0x404)
	b.indirect(0x500)
	b.plain(0x600)

	r, err := NewChampSimReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Branch
	for {
		br, ok := r.Next()
		if !ok {
			break
		}
		got = append(got, br)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d branches, want 4: %+v", len(got), got)
	}
	if got[0].Kind != core.CondDirect || !got[0].Taken || got[0].Target != 0x200 {
		t.Fatalf("conditional decoded wrong: %+v", got[0])
	}
	if got[1].Kind != core.Call || got[1].Target != 0x400 {
		t.Fatalf("call decoded wrong: %+v", got[1])
	}
	if got[2].Kind != core.Return || got[2].Target != 0x500 {
		t.Fatalf("return decoded wrong: %+v", got[2])
	}
	if got[3].Kind != core.IndirectJump || got[3].Target != 0x600 {
		t.Fatalf("indirect decoded wrong: %+v", got[3])
	}
	// Instruction gaps: the plain instructions fold into the branches.
	if got[0].InstrGap != 2 { // plain(0x100) + the branch itself
		t.Fatalf("gap of first branch = %d, want 2", got[0].InstrGap)
	}
}

func TestChampSimNotTakenConditional(t *testing.T) {
	b := &champBuilder{t: t}
	b.cond(0x104, false)
	b.plain(0x108) // fall-through
	r, err := NewChampSimReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	br, ok := r.Next()
	if !ok || br.Taken {
		t.Fatalf("not-taken conditional decoded wrong: %+v ok=%v", br, ok)
	}
}

func TestChampSimGzip(t *testing.T) {
	b := &champBuilder{t: t}
	b.cond(0x10, true)
	b.plain(0x20)
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(b.buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewChampSimReader(&zbuf)
	if err != nil {
		t.Fatal(err)
	}
	br, ok := r.Next()
	if !ok || br.PC != 0x10 || br.Target != 0x20 {
		t.Fatalf("gzip stream decoded wrong: %+v ok=%v", br, ok)
	}
}

func TestChampSimXZRejectedWithHint(t *testing.T) {
	xzMagic := []byte{0xfd, '7', 'z', 'X', 'Z', 0x00, 0, 0}
	if _, err := NewChampSimReader(bytes.NewReader(xzMagic)); err == nil ||
		!strings.Contains(err.Error(), "xz") {
		t.Fatalf("xz input must be rejected with a decompression hint, got %v", err)
	}
}

func TestChampSimTruncatedRecord(t *testing.T) {
	b := &champBuilder{t: t}
	b.cond(0x10, true)
	data := b.buf.Bytes()[:champRecordSize-5]
	r, err := NewChampSimReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record must not decode")
	}
}

func TestChampSimTrailingBranchFlushed(t *testing.T) {
	b := &champBuilder{t: t}
	b.plain(0x100)
	b.cond(0x104, true) // stream ends right after the branch
	r, err := NewChampSimReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	br, ok := r.Next()
	if !ok || br.PC != 0x104 {
		t.Fatalf("trailing branch lost: %+v ok=%v", br, ok)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("stream must end after the flush")
	}
	if r.Count() != 1 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestChampSimFeedsPredictor(t *testing.T) {
	// End to end: a repeated loop pattern through the ChampSim decoder
	// must be learnable by the simulator stack (kinds and gaps sane).
	b := &champBuilder{t: t}
	for rep := 0; rep < 500; rep++ {
		for it := 0; it < 4; it++ {
			b.plain(0x1000 + uint64(it)*8)
			b.cond(0x2000, it < 3)
		}
	}
	r, err := NewChampSimReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		br, ok := r.Next()
		if !ok {
			break
		}
		if !br.Kind.Valid() || br.InstrGap == 0 {
			t.Fatalf("malformed branch from decoder: %+v", br)
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("decoded %d branches, want 2000", n)
	}
}

func TestExportChampSimRoundTrip(t *testing.T) {
	// Export a hand-built branch stream and decode it back: branch PCs,
	// kinds, directions and taken targets must survive.
	// A self-consistent stream: after a taken branch, execution (and so
	// the next record) continues at its target; after a not-taken one, at
	// the fall-through. gap-1 filler instructions lead each branch.
	in := []core.Branch{
		{PC: 0x208, Target: 0x300, Kind: core.CondDirect, Taken: true, InstrGap: 3},
		{PC: 0x304, Target: 0x800, Kind: core.Call, Taken: true, InstrGap: 2},
		{PC: 0x800, Target: 0x820, Kind: core.CondDirect, Taken: false, InstrGap: 1},
		{PC: 0x808, Target: 0x308, Kind: core.Return, Taken: true, InstrGap: 2},
	}
	var buf bytes.Buffer
	instr, branches, err := ExportChampSim(&buf, core.NewSliceSource(in), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if branches != 4 {
		t.Fatalf("exported %d branches", branches)
	}
	wantInstr := uint64(3 + 2 + 1 + 2 + 1) // + terminal filler
	if instr != wantInstr {
		t.Fatalf("exported %d instructions, want %d", instr, wantInstr)
	}
	r, err := NewChampSimReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []core.Branch
	for {
		b, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, b)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d branches, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].PC != in[i].PC || out[i].Kind != in[i].Kind || out[i].Taken != in[i].Taken {
			t.Fatalf("branch %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
		if in[i].Taken && out[i].Target != in[i].Target {
			t.Fatalf("branch %d taken target lost: %#x vs %#x", i, out[i].Target, in[i].Target)
		}
		if out[i].InstrGap != in[i].InstrGap {
			t.Fatalf("branch %d gap %d, want %d", i, out[i].InstrGap, in[i].InstrGap)
		}
	}
}

func TestExportChampSimFromWorkloadStream(t *testing.T) {
	// A synthetic workload exported to ChampSim format must replay with
	// identical branch PCs and directions.
	src := sampleBranches(2000, 7)
	// sampleBranches produces arbitrary targets; force taken branches'
	// targets to differ from fall-through so the inference is observable.
	for i := range src {
		if src[i].Taken {
			src[i].Target = src[i].PC + 0x40
		}
		// Give every branch a leading filler so the taken target is
		// carried by a filler record rather than colliding with the next
		// branch's own PC.
		if src[i].InstrGap < 2 {
			src[i].InstrGap = 2
		}
	}
	var buf bytes.Buffer
	if _, _, err := ExportChampSim(&buf, core.NewSliceSource(src), 1_000_000); err != nil {
		t.Fatal(err)
	}
	r, err := NewChampSimReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at branch %d", i)
		}
		if got.PC != src[i].PC || got.Taken != src[i].Taken {
			t.Fatalf("branch %d mismatch: %+v vs %+v", i, got, src[i])
		}
		if src[i].Taken && got.Target != src[i].Target {
			t.Fatalf("branch %d target %#x, want %#x", i, got.Target, src[i].Target)
		}
	}
}
