// Package trace defines the repository's compact binary branch-trace
// format, the stand-in for the ChampSim traces the paper's artifact uses.
// A trace file is a magic header followed by varint-delta-encoded branch
// records; cmd/tracegen writes them and cmd/llbpsim can replay them.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"llbpx/internal/core"
)

// Magic identifies a trace file (8 bytes, version-suffixed).
const Magic = "LLBPTRC1"

// ErrBadMagic reports that the input is not a trace file this package
// understands.
var ErrBadMagic = errors.New("trace: bad magic (not an LLBPTRC1 file)")

// Writer encodes branches to an underlying stream. Close must be called to
// flush buffered output.
type Writer struct {
	w      *bufio.Writer
	prevPC uint64
	count  uint64
	buf    [3 * binary.MaxVarintLen64]byte
	err    error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag decodes a zigzag-encoded value.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Write appends one branch record.
func (w *Writer) Write(b core.Branch) error {
	if w.err != nil {
		return w.err
	}
	if !b.Kind.Valid() {
		w.err = fmt.Errorf("trace: invalid branch kind %d", b.Kind)
		return w.err
	}
	// Record layout: [kind|taken<<3] varint, pc zigzag delta, target zigzag
	// delta from pc, instruction gap.
	head := uint64(b.Kind)
	if b.Taken {
		head |= 1 << 3
	}
	n := binary.PutUvarint(w.buf[:], head)
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(b.PC-w.prevPC)))
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(b.Target-b.PC)))
	n += binary.PutUvarint(w.buf[n:], uint64(b.InstrGap))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.prevPC = b.PC
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered data. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("trace: flushing: %w", err)
		return w.err
	}
	return nil
}

// Reader decodes a trace stream. It implements core.Source; decoding
// errors surface through Err after Next returns false.
type Reader struct {
	r      *bufio.Reader
	prevPC uint64
	err    error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != Magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next implements core.Source. A clean end of stream and a decode error
// both return ok=false; check Err to distinguish them.
func (r *Reader) Next() (core.Branch, bool) {
	if r.err != nil {
		return core.Branch{}, false
	}
	head, err := binary.ReadUvarint(r.r)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			r.err = fmt.Errorf("trace: reading record head: %w", err)
		}
		return core.Branch{}, false
	}
	kind := core.BranchKind(head & 0x7)
	if !kind.Valid() {
		r.err = fmt.Errorf("trace: invalid branch kind %d in stream", kind)
		return core.Branch{}, false
	}
	pcDelta, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record (pc): %w", err)
		return core.Branch{}, false
	}
	tgtDelta, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record (target): %w", err)
		return core.Branch{}, false
	}
	gap, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("trace: truncated record (gap): %w", err)
		return core.Branch{}, false
	}
	pc := w64(r.prevPC, pcDelta)
	b := core.Branch{
		PC:       pc,
		Target:   w64(pc, tgtDelta),
		Kind:     kind,
		Taken:    head&(1<<3) != 0,
		InstrGap: uint32(gap),
	}
	r.prevPC = pc
	return b, true
}

func w64(base uint64, zz uint64) uint64 {
	return uint64(int64(base) + unzigzag(zz))
}

// Err returns the first error encountered while decoding, or nil on a
// clean end of stream.
func (r *Reader) Err() error { return r.err }

// ReadAll decodes every record from r into memory.
func ReadAll(r io.Reader) ([]core.Branch, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []core.Branch
	for {
		b, ok := tr.Next()
		if !ok {
			break
		}
		out = append(out, b)
	}
	return out, tr.Err()
}

// WriteAll encodes all branches to w.
func WriteAll(w io.Writer, branches []core.Branch) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, b := range branches {
		if err := tw.Write(b); err != nil {
			return err
		}
	}
	return tw.Close()
}
