// Package workload synthesizes server-like branch streams. It is the
// repository's substitute for the paper's 14 gem5/Google traces, which are
// not redistributable here. Each workload is a deterministic *program
// model*: a layered call graph of functions whose conditional branches are
// drawn from behaviour classes chosen to manufacture the phenomena the
// paper studies —
//
//   - a branch working set that overflows a 64 KB TAGE-SC-L,
//   - a small population of hard-to-predict (H2P) branches whose outcomes
//     depend on request data revealed many branches earlier (so they need
//     long histories and many patterns),
//   - a large population of easy branches that need only a few short
//     patterns (so contextualization duplicates them),
//   - dense unconditional-branch (call/return/jump) structure so the
//     rolling context register sees realistic program contexts.
//
// The generated stream is a pure function of the profile (including its
// seed): two generators built from the same profile yield identical
// streams, which the experiments rely on when comparing predictors.
package workload

import (
	"fmt"
	"math"
	"sort"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/history"
)

// behaviourKind classifies how a conditional branch site resolves.
type behaviourKind uint8

const (
	// behaviourStatic branches always resolve the same way (fall-through
	// guards, error checks). Trivially predictable.
	behaviourStatic behaviourKind = iota
	// behaviourBiased branches are taken with a fixed probability using
	// fresh entropy: the residual (1-p) is irreducible noise.
	behaviourBiased
	// behaviourShort branches are a deterministic function of the last k
	// (k <= 16) global-history bits: predictable with short histories and
	// a handful of patterns.
	behaviourShort
	// behaviourPayload branches are a deterministic function of the
	// current request's (type, payload) pair. The payload was encoded into
	// global history by the request preamble, so predicting these requires
	// history long enough to reach back to payload-revealing bits — the
	// H2P class with many long-history patterns.
	behaviourPayload
	// behaviourMixed branches combine payload with the last k history
	// bits: H2P branches whose outcome also varies within a request.
	behaviourMixed
)

type behaviour struct {
	kind  behaviourKind
	taken bool    // static direction
	p     float64 // biased probability of taken
	k     int     // short-history window (bits)
	salt  uint64  // per-site hash salt
}

type siteKind uint8

const (
	siteCond siteKind = iota
	siteCall
	siteIndirect
	siteJump
	siteLoop
)

// site is one static control-flow instruction in a function body.
type site struct {
	kind   siteKind
	pc     uint64
	target uint64
	gap    uint32 // instructions retired up to and including this branch

	// Conditional sites.
	beh  behaviour
	skip int // sites skipped (not executed) when taken

	// Call sites.
	callee int
	// Indirect call sites: payload-selected candidate callees.
	candidates []int

	// Loop sites.
	inner    []site // body executed each iteration
	tripBase int    // iterations when tripMod == 0
	tripMod  int    // payload-dependent extra iterations (payload % tripMod)
}

// function is a node in the program's call DAG.
type function struct {
	base  uint64
	body  []site
	retPC uint64
}

// Profile parameterizes a synthetic workload. The zero value is not
// usable; start from one of the presets in Workloads or from Default.
type Profile struct {
	// Name labels the workload in reports.
	Name string
	// Seed makes the program structure and the request stream
	// reproducible.
	Seed uint64

	// RequestTypes is the number of distinct request handlers (root
	// functions); the request mix is Zipf-distributed over them.
	RequestTypes int
	// ZipfS is the Zipf skew of the request mix (0 = uniform).
	ZipfS float64
	// PayloadBits is the per-request payload entropy in bits; payloads are
	// drawn uniformly from [0, 2^PayloadBits). Each request irreducibly
	// costs about PayloadBits mispredictions while the preamble reveals
	// the payload, setting the floor MPKI.
	PayloadBits int
	// PreambleBits is the number of payload-encoding branches each
	// request executes before real work; must be >= PayloadBits for the
	// payload to be fully observable in history.
	PreambleBits int

	// Functions is the number of library functions in the call DAG; the
	// main knob for branch working-set size (and so for 64K TAGE capacity
	// pressure).
	Functions int
	// Layers controls call-tree depth: functions are assigned to layers
	// and only call into deeper layers.
	Layers int
	// BodySites is the [min,max) range of sites per function body.
	BodySites [2]int
	// MaxDepth bounds dynamic call depth.
	MaxDepth int

	// Behaviour mix for conditional sites (fractions; the remainder after
	// all classes is behaviourStatic). FracBiased branches use fresh
	// entropy with probability BiasedP of being taken.
	FracShort   float64
	FracPayload float64
	FracMixed   float64
	FracLoop    float64
	FracBiased  float64
	BiasedP     float64

	// GuardBranches is the number of payload-revealing conditional
	// branches emitted at every function entry. They model the
	// data-dependent guard tests real code performs on its arguments and
	// keep the request payload observable within a few hundred history
	// bits of every deep branch — the property that makes the H2P classes
	// learnable by long histories (and by nothing shorter).
	GuardBranches int

	// CallFrac is the fraction of body sites that are call sites;
	// JumpFrac the fraction that are plain unconditional jumps.
	CallFrac float64
	JumpFrac float64
	// IndirectFrac is the fraction of body sites that are indirect calls
	// whose callee is selected by the request payload from a small
	// candidate set (virtual dispatch). Default 0: the preset workloads
	// are direct-call only, matching the paper's direction-prediction
	// focus; the BTB/ITTAGE substrate and the indirect-targets example
	// raise it.
	IndirectFrac float64

	// AvgGap is the mean instruction gap between branches (server codes
	// run ~5 instructions per branch).
	AvgGap int

	// MinRequestBranches is the minimum number of branches a request
	// emits: the handler re-runs until it reaches this length. Long
	// requests keep long-history windows intra-request, which is what
	// makes the deterministic branch classes learnable — windows spanning
	// request boundaries contain stale random payloads and never recur.
	MinRequestBranches int
	// MaxRequestBranches caps a request (call-tree fan-out is geometric);
	// once exceeded, call sites stop descending. 0 means 4x the minimum.
	MaxRequestBranches int

	// PhaseShiftRequests, when positive, re-salts every data-dependent
	// branch behaviour after that many requests: the program's control
	// flow keeps its structure but all learned patterns invert — a
	// behavioural phase change. The paper's Section III-C identifies
	// adaptation time after such changes as one of contextualization's
	// costs; the adapt experiment measures it. 0 (the default, used by all
	// presets) disables phase shifts.
	PhaseShiftRequests int
}

// Default returns a mid-sized profile with sane fractions; presets in
// Workloads derive from it.
func Default(name string, seed uint64) Profile {
	return Profile{
		Name:               name,
		Seed:               seed,
		RequestTypes:       12,
		ZipfS:              0.7,
		PayloadBits:        6,
		PreambleBits:       10,
		Functions:          360,
		Layers:             6,
		BodySites:          [2]int{6, 14},
		MaxDepth:           10,
		FracShort:          0.22,
		FracPayload:        0.12,
		FracMixed:          0.08,
		FracLoop:           0.06,
		FracBiased:         0.10,
		BiasedP:            0.92,
		GuardBranches:      2,
		CallFrac:           0.16,
		JumpFrac:           0.08,
		AvgGap:             5,
		MinRequestBranches: 1000,
	}
}

// Validate reports whether the profile's parameters are internally
// consistent.
func (p Profile) Validate() error {
	switch {
	case p.RequestTypes < 1:
		return fmt.Errorf("workload %q: RequestTypes must be >= 1", p.Name)
	case p.PayloadBits < 0 || p.PayloadBits > 20:
		return fmt.Errorf("workload %q: PayloadBits out of range [0,20]", p.Name)
	case p.PreambleBits < p.PayloadBits:
		return fmt.Errorf("workload %q: PreambleBits (%d) < PayloadBits (%d)", p.Name, p.PreambleBits, p.PayloadBits)
	case p.Functions < p.Layers:
		return fmt.Errorf("workload %q: need at least one function per layer", p.Name)
	case p.Layers < 2:
		return fmt.Errorf("workload %q: Layers must be >= 2", p.Name)
	case p.BodySites[0] < 2 || p.BodySites[1] <= p.BodySites[0]:
		return fmt.Errorf("workload %q: invalid BodySites range", p.Name)
	case p.MaxDepth < 2:
		return fmt.Errorf("workload %q: MaxDepth must be >= 2", p.Name)
	case p.AvgGap < 1:
		return fmt.Errorf("workload %q: AvgGap must be >= 1", p.Name)
	case p.GuardBranches < 0 || p.GuardBranches > 8:
		return fmt.Errorf("workload %q: GuardBranches out of range [0,8]", p.Name)
	case p.MinRequestBranches < 50:
		return fmt.Errorf("workload %q: MinRequestBranches must be >= 50", p.Name)
	case p.MaxRequestBranches != 0 && p.MaxRequestBranches < p.MinRequestBranches:
		return fmt.Errorf("workload %q: MaxRequestBranches below MinRequestBranches", p.Name)
	case p.IndirectFrac < 0 || p.IndirectFrac+p.CallFrac+p.JumpFrac+p.FracLoop > 1:
		return fmt.Errorf("workload %q: site-kind fractions exceed 1", p.Name)
	}
	sum := p.FracShort + p.FracPayload + p.FracMixed + p.FracLoop + p.FracBiased
	if sum > 1 {
		return fmt.Errorf("workload %q: behaviour fractions sum to %.2f > 1", p.Name, sum)
	}
	return nil
}

// Program is the immutable compiled form of a Profile: the call DAG with
// all sites, addresses, and behaviours fixed. Programs are safe to share
// across generators.
type Program struct {
	profile Profile
	funcs   []function
	roots   []int     // one root function per request type
	cumMix  []float64 // cumulative Zipf weights over request types
	condSum int       // static conditional site count (diagnostics)

	classes map[uint64]string // lazy PC -> behaviour class (SiteClass)
}

// Profile returns the profile the program was compiled from.
func (p *Program) Profile() Profile { return p.profile }

// StaticCondSites returns the number of static conditional branch sites,
// a proxy for branch working-set size.
func (p *Program) StaticCondSites() int { return p.condSum }

// Build compiles a profile into a Program. The structure depends only on
// the profile, including its seed.
func Build(prof Profile) (*Program, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	rng := hashutil.NewRand(hashutil.Mix64(prof.Seed ^ 0xc0ffee))
	p := &Program{profile: prof}

	// Assign functions to layers: roots live in layer 0, libraries below.
	layerOf := make([]int, prof.Functions)
	for i := range layerOf {
		if i < prof.RequestTypes {
			layerOf[i] = 0
		} else {
			layerOf[i] = 1 + rng.Intn(prof.Layers-1)
		}
	}
	// calleesByLayer[l] lists functions in layers > l.
	calleesByLayer := make([][]int, prof.Layers)
	for i, l := range layerOf {
		for shallower := 0; shallower < l; shallower++ {
			calleesByLayer[shallower] = append(calleesByLayer[shallower], i)
		}
	}

	p.funcs = make([]function, prof.Functions)
	for i := range p.funcs {
		p.funcs[i] = buildFunction(prof, rng, i, layerOf[i], calleesByLayer[layerOf[i]], p)
	}
	p.roots = make([]int, prof.RequestTypes)
	for r := range p.roots {
		p.roots[r] = r
	}
	p.cumMix = zipfCumulative(prof.RequestTypes, prof.ZipfS)
	return p, nil
}

// funcBase spaces functions out in the address space so PCs never collide.
func funcBase(idx int) uint64 { return 0x10_0000 + uint64(idx)*0x4000 }

func buildFunction(prof Profile, rng *hashutil.Rand, idx, layer int, callees []int, p *Program) function {
	base := funcBase(idx)
	n := prof.BodySites[0] + rng.Intn(prof.BodySites[1]-prof.BodySites[0])
	var body []site
	nextPC := base
	newPC := func() uint64 {
		pc := nextPC
		nextPC += 4 * uint64(1+rng.Intn(2*prof.AvgGap-1))
		return pc
	}
	gap := func(pc, prev uint64) uint32 { return uint32((pc-prev)/4 + 1) }

	prev := base - 4
	for j := 0; j < n; j++ {
		pc := newPC()
		s := site{pc: pc, gap: gap(pc, prev)}
		prev = pc
		r := rng.Float64()
		switch {
		case r < prof.IndirectFrac && len(callees) >= 2:
			s.kind = siteIndirect
			n := 2 + rng.Intn(3)
			if n > len(callees) {
				n = len(callees)
			}
			for k := 0; k < n; k++ {
				s.candidates = append(s.candidates, callees[rng.Intn(len(callees))])
			}
		case r < prof.IndirectFrac+prof.CallFrac && len(callees) > 0:
			s.kind = siteCall
			s.callee = callees[rng.Intn(len(callees))]
			s.target = funcBase(s.callee)
		case r < prof.IndirectFrac+prof.CallFrac+prof.JumpFrac:
			s.kind = siteJump
			s.target = pc + 8
		case r < prof.IndirectFrac+prof.CallFrac+prof.JumpFrac+prof.FracLoop:
			s.kind = siteLoop
			s.tripBase = 2 + rng.Intn(6)
			if rng.Bool(0.4) {
				s.tripMod = 2 + rng.Intn(4)
			}
			s.target = pc // backward branch to itself (loop head == end here)
			// Loop bodies hold a couple of cheap conditional sites and,
			// rarely, a call — calls inside loops multiply context reuse.
			nb := 1 + rng.Intn(2)
			for b := 0; b < nb; b++ {
				ipc := newPC()
				is := site{kind: siteCond, pc: ipc, gap: gap(ipc, prev), skip: 0}
				is.beh = pickBehaviour(prof, rng, ipc, true)
				s.inner = append(s.inner, is)
				prev = ipc
				p.condSum++
			}
			if len(callees) > 0 && rng.Bool(0.25) {
				ipc := newPC()
				callee := callees[rng.Intn(len(callees))]
				s.inner = append(s.inner, site{
					kind: siteCall, pc: ipc, gap: gap(ipc, prev),
					callee: callee, target: funcBase(callee),
				})
				prev = ipc
			}
		default:
			s.kind = siteCond
			s.beh = pickBehaviour(prof, rng, pc, false)
			// A third of conditionals guard a short region: when taken
			// they skip 1-2 following sites, making the executed path (and
			// so the unconditional-branch context) data-dependent.
			if rng.Bool(0.33) {
				s.skip = 1 + rng.Intn(2)
			}
			p.condSum++
		}
		body = append(body, s)
	}
	retPC := newPC()
	return function{base: base, body: body, retPC: retPC}
}

// pickBehaviour draws a conditional behaviour from the profile mix.
// innerLoop sites avoid payload-only behaviours (their repetition inside
// one request would make them trivially easy) in favour of mixed ones.
func pickBehaviour(prof Profile, rng *hashutil.Rand, pc uint64, innerLoop bool) behaviour {
	salt := hashutil.Mix64(pc ^ prof.Seed)
	r := rng.Float64()
	cut := prof.FracShort
	if r < cut {
		return behaviour{kind: behaviourShort, k: 3 + rng.Intn(5), salt: salt}
	}
	cut += prof.FracPayload
	if r < cut {
		if innerLoop {
			return behaviour{kind: behaviourMixed, k: 3 + rng.Intn(4), salt: salt}
		}
		return behaviour{kind: behaviourPayload, salt: salt}
	}
	cut += prof.FracMixed
	if r < cut {
		return behaviour{kind: behaviourMixed, k: 3 + rng.Intn(4), salt: salt}
	}
	cut += prof.FracBiased
	if r < cut {
		return behaviour{kind: behaviourBiased, p: prof.BiasedP, salt: salt}
	}
	return behaviour{kind: behaviourStatic, taken: rng.Bool(0.55), salt: salt}
}

func zipfCumulative(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	cum := make([]float64, n)
	var acc float64
	for i := range w {
		acc += w[i] / sum
		cum[i] = acc
	}
	cum[n-1] = 1
	return cum
}

// Generator executes a Program request by request, emitting the retired
// branch stream. It implements core.Source and never ends: callers bound
// the run by instruction or branch count.
type Generator struct {
	prog  *Program
	rng   *hashutil.Rand
	ghist *history.Global

	queue []core.Branch
	qpos  int

	reqType  int
	payload  uint64
	requests uint64
	budget   int    // remaining branch budget of the current request
	phase    uint64 // current behavioural phase (PhaseShiftRequests > 0)
}

// NewGenerator returns a generator at the beginning of the stream. The
// stream is fully determined by the program (and its profile seed).
func NewGenerator(prog *Program) *Generator {
	return &Generator{
		prog:  prog,
		rng:   hashutil.NewRand(hashutil.Mix64(prog.profile.Seed ^ 0x5eed)),
		ghist: history.NewGlobal(64),
	}
}

// Requests returns the number of fully generated requests so far.
func (g *Generator) Requests() uint64 { return g.requests }

// Next implements core.Source; ok is always true.
func (g *Generator) Next() (core.Branch, bool) {
	for g.qpos >= len(g.queue) {
		g.queue = g.queue[:0]
		g.qpos = 0
		g.runRequest()
	}
	b := g.queue[g.qpos]
	g.qpos++
	return b, true
}

func (g *Generator) emit(b core.Branch) {
	g.queue = append(g.queue, b)
	g.ghist.Push(core.HistoryBit(b))
}

// histBits returns the most recent k (<= 16) history bits as an integer.
func (g *Generator) histBits(k int) uint64 {
	var v uint64
	for i := 0; i < k; i++ {
		v = v<<1 | uint64(g.ghist.Bit(i))
	}
	return v
}

func (g *Generator) runRequest() {
	prof := &g.prog.profile
	// Pick a request type (Zipf) and payload (uniform): the only fresh
	// entropy of the request besides biased-branch noise.
	u := g.rng.Float64()
	g.reqType = sort.SearchFloat64s(g.prog.cumMix, u)
	if g.reqType >= len(g.prog.roots) {
		g.reqType = len(g.prog.roots) - 1
	}
	g.payload = g.rng.Uint64() & ((1 << prof.PayloadBits) - 1)
	g.requests++
	if prof.PhaseShiftRequests > 0 {
		g.phase = g.requests / uint64(prof.PhaseShiftRequests)
	}

	// Preamble: reveal the payload in global history, one branch per bit.
	// These are the request's irreducible mispredictions: a predictor can
	// pin the payload down only after ~PayloadBits of them retired.
	root := g.prog.roots[g.reqType]
	base := g.prog.funcs[root].base
	code := hashutil.Mix64(g.payload ^ uint64(g.reqType)*0x9e3779b97f4a7c15 ^ prof.Seed ^ g.phaseSalt())
	for i := 0; i < prof.PreambleBits; i++ {
		pc := base - 0x200 + uint64(i)*8
		taken := code>>uint(i)&1 == 1
		g.emit(core.Branch{PC: pc, Target: pc + 16, Kind: core.CondDirect, Taken: taken, InstrGap: 3})
	}
	// Run the handler until the request reaches its minimum length;
	// re-runs are deterministic given (type, payload), so the filler is
	// predictable once trained.
	g.budget = prof.MaxRequestBranches
	if g.budget == 0 {
		g.budget = 4 * prof.MinRequestBranches
	}
	for len(g.queue) < prof.MinRequestBranches {
		// The dispatcher calls the handler: a real call branch, so call
		// and return counts stay balanced in the stream.
		g.emit(core.Branch{PC: base - 0x100, Target: base, Kind: core.Call, Taken: true, InstrGap: 4})
		g.runFunc(root, 1)
	}
}

func (g *Generator) runFunc(idx, depth int) {
	f := &g.prog.funcs[idx]
	// Guard branches: payload-dependent tests at function entry. Their
	// outcomes re-reveal request data into global history, bounding how
	// far back deep H2P branches must look.
	code := hashutil.Mix64(g.payload*0x2545f4914f6cdd1d ^ f.base ^ g.prog.profile.Seed ^ g.phaseSalt())
	for i := 0; i < g.prog.profile.GuardBranches; i++ {
		pc := f.base - 0x80 + uint64(i)*8
		taken := code>>uint(i)&1 == 1
		g.emit(core.Branch{PC: pc, Target: pc + 24, Kind: core.CondDirect, Taken: taken, InstrGap: 3})
	}
	g.runBody(f.body, depth)
	// Function return: an unconditional branch ending the activation.
	g.emit(core.Branch{PC: f.retPC, Target: f.base ^ 0x33, Kind: core.Return, Taken: true, InstrGap: 2})
}

func (g *Generator) runBody(body []site, depth int) {
	for i := 0; i < len(body); i++ {
		s := &body[i]
		switch s.kind {
		case siteCond:
			taken := g.evalCond(s)
			g.emit(core.Branch{PC: s.pc, Target: s.pc + 32, Kind: core.CondDirect, Taken: taken, InstrGap: s.gap})
			if taken && s.skip > 0 {
				i += s.skip
			}
		case siteCall:
			g.emit(core.Branch{PC: s.pc, Target: s.target, Kind: core.Call, Taken: true, InstrGap: s.gap})
			if depth < g.prog.profile.MaxDepth && len(g.queue) < g.budget {
				g.runFunc(s.callee, depth+1)
			}
		case siteIndirect:
			// Virtual dispatch: the payload (plus the site) picks the
			// callee deterministically — a target an ITTAGE can learn.
			pick := s.candidates[int(hashutil.Mix64(g.payload^s.pc)%uint64(len(s.candidates)))]
			g.emit(core.Branch{PC: s.pc, Target: funcBase(pick), Kind: core.IndirectJump, Taken: true, InstrGap: s.gap})
			if depth < g.prog.profile.MaxDepth && len(g.queue) < g.budget {
				g.runFunc(pick, depth+1)
			}
		case siteJump:
			g.emit(core.Branch{PC: s.pc, Target: s.target, Kind: core.Jump, Taken: true, InstrGap: s.gap})
		case siteLoop:
			trip := s.tripBase
			if s.tripMod > 0 {
				trip += int(g.payload % uint64(s.tripMod))
			}
			for it := 0; it < trip; it++ {
				g.runBody(s.inner, depth)
				// Backward branch: taken to iterate, not-taken to exit.
				g.emit(core.Branch{PC: s.pc, Target: s.target, Kind: core.CondDirect, Taken: it < trip-1, InstrGap: s.gap})
			}
		}
	}
}

func (g *Generator) evalCond(s *site) bool {
	salt := s.beh.salt ^ g.phaseSalt()
	switch s.beh.kind {
	case behaviourStatic:
		return s.beh.taken
	case behaviourBiased:
		return g.rng.Bool(s.beh.p)
	case behaviourShort:
		return hashutil.Mix64(salt^g.histBits(s.beh.k))&1 == 1
	case behaviourPayload:
		return hashutil.Mix64(salt^g.payload*0x2545f4914f6cdd1d)&1 == 1
	case behaviourMixed:
		return hashutil.Mix64(salt^g.payload*0x2545f4914f6cdd1d^g.histBits(s.beh.k)<<40)&1 == 1
	default:
		panic("workload: unknown behaviour kind")
	}
}

// phaseSalt perturbs data-dependent outcomes per behavioural phase; zero
// in phase 0 and whenever phase shifts are disabled, so default streams
// are untouched.
func (g *Generator) phaseSalt() uint64 {
	if g.phase == 0 {
		return 0
	}
	return hashutil.Mix64(g.phase * 0x9e3779b97f4a7c15)
}

// SiteClass labels the behaviour class of a conditional branch PC, for
// analysis and debugging. The empty string means the PC is not a
// conditional site of this program.
func (p *Program) SiteClass(pc uint64) string {
	if p.classes == nil {
		p.classes = make(map[uint64]string)
		for fi := range p.funcs {
			f := &p.funcs[fi]
			for i := 0; i < p.profile.GuardBranches; i++ {
				p.classes[f.base-0x80+uint64(i)*8] = "guard"
			}
			var walk func(body []site)
			walk = func(body []site) {
				for i := range body {
					s := &body[i]
					switch s.kind {
					case siteCond:
						p.classes[s.pc] = behaviourName(s.beh.kind)
					case siteLoop:
						p.classes[s.pc] = "loop-exit"
						walk(s.inner)
					}
				}
			}
			walk(f.body)
		}
		for r := range p.roots {
			base := p.funcs[p.roots[r]].base
			for i := 0; i < p.profile.PreambleBits; i++ {
				p.classes[base-0x200+uint64(i)*8] = "preamble"
			}
		}
	}
	return p.classes[pc]
}

func behaviourName(k behaviourKind) string {
	switch k {
	case behaviourStatic:
		return "static"
	case behaviourBiased:
		return "biased"
	case behaviourShort:
		return "short"
	case behaviourPayload:
		return "payload"
	case behaviourMixed:
		return "mixed"
	}
	return "unknown"
}
