package workload

import (
	"testing"

	"llbpx/internal/core"
)

func TestPresetsValidateAndBuild(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("expected 14 presets (Table I), got %d", len(ws))
	}
	seen := map[string]bool{}
	for _, prof := range ws {
		if err := prof.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", prof.Name, err)
			continue
		}
		if seen[prof.Name] {
			t.Errorf("duplicate preset name %s", prof.Name)
		}
		seen[prof.Name] = true
		if _, ok := PaperMPKI[prof.Name]; !ok {
			t.Errorf("preset %s missing a PaperMPKI entry", prof.Name)
		}
		prog, err := Build(prof)
		if err != nil {
			t.Errorf("preset %s failed to build: %v", prof.Name, err)
			continue
		}
		if prog.StaticCondSites() < 100 {
			t.Errorf("preset %s suspiciously small: %d cond sites", prof.Name, prog.StaticCondSites())
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nodeapp"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("no-such-workload"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := Default("x", 1)
	mutations := map[string]func(*Profile){
		"no request types":   func(p *Profile) { p.RequestTypes = 0 },
		"payload too large":  func(p *Profile) { p.PayloadBits = 21 },
		"preamble too small": func(p *Profile) { p.PreambleBits = p.PayloadBits - 1 },
		"too few functions":  func(p *Profile) { p.Functions = 1 },
		"one layer":          func(p *Profile) { p.Layers = 1 },
		"bad body range":     func(p *Profile) { p.BodySites = [2]int{5, 5} },
		"shallow depth":      func(p *Profile) { p.MaxDepth = 1 },
		"zero gap":           func(p *Profile) { p.AvgGap = 0 },
		"fractions > 1":      func(p *Profile) { p.FracShort = 0.9; p.FracPayload = 0.9 },
		"guards negative":    func(p *Profile) { p.GuardBranches = -1 },
		"request too short":  func(p *Profile) { p.MinRequestBranches = 10 },
		"max below min":      func(p *Profile) { p.MaxRequestBranches = p.MinRequestBranches - 1 },
	}
	for name, mutate := range mutations {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base profile must be valid: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	prof, err := ByName("wikipedia")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := NewGenerator(prog), NewGenerator(prog)
	for i := 0; i < 50000; i++ {
		b1, _ := g1.Next()
		b2, _ := g2.Next()
		if b1 != b2 {
			t.Fatalf("streams diverge at branch %d: %+v vs %+v", i, b1, b2)
		}
	}
}

func TestGeneratorSeparateProgramsShareStream(t *testing.T) {
	// Two programs built from the same profile must generate identical
	// streams (experiments rely on per-predictor rebuilds).
	prof, _ := ByName("kafka")
	p1, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := NewGenerator(p1), NewGenerator(p2)
	for i := 0; i < 20000; i++ {
		b1, _ := g1.Next()
		b2, _ := g2.Next()
		if b1 != b2 {
			t.Fatalf("streams from identical profiles diverge at %d", i)
		}
	}
}

func TestStreamShape(t *testing.T) {
	prof, _ := ByName("nodeapp")
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(prog)
	var cond, uncond, instr uint64
	pcs := map[uint64]core.BranchKind{}
	for i := 0; i < 200000; i++ {
		b, ok := g.Next()
		if !ok {
			t.Fatal("generator must never end")
		}
		if !b.Kind.Valid() {
			t.Fatalf("invalid kind at %d", i)
		}
		if b.InstrGap == 0 {
			t.Fatalf("zero instruction gap at %d", i)
		}
		if b.Kind.Unconditional() && !b.Taken {
			t.Fatalf("unconditional branch not taken at %d", i)
		}
		// A PC must always carry the same branch kind (sites are static).
		if k, seen := pcs[b.PC]; seen && k != b.Kind {
			t.Fatalf("pc %#x changes kind %v -> %v", b.PC, k, b.Kind)
		}
		pcs[b.PC] = b.Kind
		instr += b.Instructions()
		if b.Kind.Conditional() {
			cond++
		} else {
			uncond++
		}
	}
	condFrac := float64(cond) / float64(cond+uncond)
	if condFrac < 0.5 || condFrac > 0.95 {
		t.Fatalf("conditional fraction %.2f out of a plausible server range", condFrac)
	}
	gap := float64(instr) / float64(cond+uncond)
	if gap < 2 || gap > 12 {
		t.Fatalf("instruction gap %.2f implausible", gap)
	}
}

func TestRequestLengthEnforced(t *testing.T) {
	prof, _ := ByName("kafka") // MinRequestBranches = 1500
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(prog)
	// Consume several requests; each must emit at least the minimum.
	var count int
	lastReq := g.Requests()
	branchesInReq := 0
	for count < 10 {
		g.Next()
		branchesInReq++
		if r := g.Requests(); r != lastReq {
			// The counter bumps at the start of generation for the next
			// request, i.e. after the previous request fully drained.
			if branchesInReq > 1 && branchesInReq < prof.MinRequestBranches {
				t.Fatalf("request emitted only %d branches, min %d", branchesInReq, prof.MinRequestBranches)
			}
			branchesInReq = 0
			lastReq = r
			count++
		}
	}
}

func TestSiteClassCoversStream(t *testing.T) {
	prof, _ := ByName("delta")
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(prog)
	classes := map[string]int{}
	for i := 0; i < 100000; i++ {
		b, _ := g.Next()
		if !b.Kind.Conditional() {
			continue
		}
		cls := prog.SiteClass(b.PC)
		if cls == "" {
			t.Fatalf("conditional pc %#x has no site class", b.PC)
		}
		classes[cls]++
	}
	for _, want := range []string{"static", "short", "guard", "preamble"} {
		if classes[want] == 0 {
			t.Errorf("class %q never executed", want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Default("a", 1)
	b := Default("b", 2)
	pa, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := NewGenerator(pa), NewGenerator(pb)
	same := 0
	for i := 0; i < 1000; i++ {
		x, _ := ga.Next()
		y, _ := gb.Next()
		if x == y {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced nearly identical streams (%d/1000)", same)
	}
}
