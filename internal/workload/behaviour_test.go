package workload

import (
	"testing"

	"llbpx/internal/sim"
	"llbpx/internal/tage"
)

// TestBehaviourClassLearnability is the workload generator's core
// integration contract: each behaviour class must land in its intended
// predictability band under the baseline 64K TAGE-SC-L. If static branches
// miss, the generator is broken; if guards/payload branches are at coin-
// flip rates, the payload-revelation chain is broken (the regression that
// motivated function-entry guard branches).
func TestBehaviourClassLearnability(t *testing.T) {
	prof, err := ByName("nodeapp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(prog)
	p := tage.MustNew(tage.Config64K())

	miss := map[string]int{}
	count := map[string]int{}
	var instr uint64
	for instr < 3_000_000 {
		b, _ := gen.Next()
		instr += b.Instructions()
		if !b.Kind.Conditional() {
			p.TrackUnconditional(b)
			continue
		}
		pred := p.Predict(b.PC)
		if instr > 1_500_000 {
			cls := prog.SiteClass(b.PC)
			count[cls]++
			if pred.Taken != b.Taken {
				miss[cls]++
			}
		}
		p.Update(b, pred)
	}

	rate := func(cls string) float64 {
		if count[cls] == 0 {
			t.Fatalf("class %q never executed", cls)
		}
		return float64(miss[cls]) / float64(count[cls])
	}

	if r := rate("static"); r > 0.02 {
		t.Errorf("static branches miss at %.2f%% — generator or predictor broken", 100*r)
	}
	if r := rate("short"); r > 0.15 {
		t.Errorf("short-history branches miss at %.2f%% — should be learnable", 100*r)
	}
	if r := rate("guard"); r > 0.30 {
		t.Errorf("guard branches miss at %.2f%% — payload revelation chain broken", 100*r)
	}
	if r := rate("preamble"); r < 0.02 {
		t.Errorf("preamble misses only %.2f%% — payload entropy has leaked somewhere", 100*r)
	}
	// Payload-correlated classes are the H2P population: harder than
	// short patterns but far from coin flips.
	for _, cls := range []string{"payload", "mixed"} {
		if r := rate(cls); r > 0.40 {
			t.Errorf("%s branches at %.2f%% — effectively unpredictable", cls, 100*r)
		}
	}
	if r := rate("loop-exit"); r > 0.25 {
		t.Errorf("loop exits miss at %.2f%%", 100*r)
	}
}

// TestCapacitySensitivity asserts the working set actually pressures the
// 64K baseline: a 512K TAGE must fix a visible share of its misses. This
// is the property every capacity experiment in the paper rests on.
func TestCapacitySensitivity(t *testing.T) {
	prof, err := ByName("charlie")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 1_000_000, MeasureInstr: 1_500_000}
	r64, err := sim.Run(tage.MustNew(tage.Config64K()), NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	r512, err := sim.Run(tage.MustNew(tage.Config512K()), NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	red := (r64.MPKI() - r512.MPKI()) / r64.MPKI()
	if red < 0.10 {
		t.Fatalf("512K fixes only %.1f%% of charlie's misses — capacity pressure lost", 100*red)
	}
}
