package workload

import (
	"fmt"
	"sort"
)

// The 14 preset profiles mirror the paper's workload list (Table I). Each
// is calibrated so a 64 KB TAGE-SC-L lands roughly at the paper's absolute
// MPKI; PaperMPKI records the target. The knobs follow the workloads'
// published characters: the Google traces (Charlie/Delta/Merced/Whiskey)
// and NodeApp have the largest instruction footprints and the most H2P
// pressure, Kafka and Finagle-chirper are small and highly predictable.

// PaperMPKI maps workload name to the 64K TSL MPKI reported in Table I.
var PaperMPKI = map[string]float64{
	"nodeapp": 4.43, "phpwiki": 3.08, "tpcc": 3.74, "twitter": 3.03,
	"wikipedia": 2.52, "kafka": 0.26, "spring": 3.58, "tomcat": 3.40,
	"chirper": 0.48, "finagle-http": 2.81, "charlie": 2.89, "delta": 1.09,
	"merced": 4.13, "whiskey": 5.38,
}

func preset(name string, seed uint64, mutate func(*Profile)) Profile {
	p := Default(name, seed)
	mutate(&p)
	return p
}

// Workloads returns the 14 preset profiles in Table I order.
func Workloads() []Profile {
	return []Profile{
		preset("nodeapp", 101, func(p *Profile) {
			p.Functions, p.Layers = 560, 7
			p.PayloadBits, p.PreambleBits = 4, 9
			p.RequestTypes = 16
			p.FracPayload, p.FracMixed = 0.12, 0.07
			p.FracBiased, p.BiasedP = 0.05, 0.96
			p.MinRequestBranches = 850
		}),
		preset("phpwiki", 102, func(p *Profile) {
			p.Functions = 420
			p.PayloadBits, p.PreambleBits = 4, 9
			p.FracPayload, p.FracMixed = 0.12, 0.07
			p.FracBiased, p.BiasedP = 0.05, 0.96
			p.MinRequestBranches = 500
		}),
		preset("tpcc", 103, func(p *Profile) {
			p.Functions, p.Layers = 500, 6
			p.RequestTypes = 5 // TPC-C's five transaction types
			p.ZipfS = 0.4
			p.PayloadBits, p.PreambleBits = 5, 10
			p.FracPayload, p.FracMixed = 0.13, 0.08
			p.FracBiased, p.BiasedP = 0.06, 0.95
			p.MinRequestBranches = 450
		}),
		preset("twitter", 104, func(p *Profile) {
			p.Functions = 430
			p.PayloadBits, p.PreambleBits = 4, 9
			p.FracPayload, p.FracMixed = 0.12, 0.07
			p.FracBiased, p.BiasedP = 0.06, 0.955
			p.MinRequestBranches = 500
		}),
		preset("wikipedia", 105, func(p *Profile) {
			p.Functions = 380
			p.PayloadBits, p.PreambleBits = 3, 8
			p.FracPayload, p.FracMixed = 0.11, 0.06
			p.FracBiased, p.BiasedP = 0.05, 0.96
			p.MinRequestBranches = 400
		}),
		preset("kafka", 106, func(p *Profile) {
			// Tiny, loop-dominated, highly predictable broker loop.
			p.Functions, p.Layers = 90, 4
			p.RequestTypes = 4
			p.PayloadBits, p.PreambleBits = 2, 7
			p.FracShort, p.FracPayload, p.FracMixed = 0.28, 0.02, 0.01
			p.FracLoop = 0.10
			p.FracBiased, p.BiasedP = 0.03, 0.995
			p.MinRequestBranches = 1000
		}),
		preset("spring", 107, func(p *Profile) {
			p.Functions, p.Layers = 520, 7
			p.PayloadBits, p.PreambleBits = 4, 9
			p.FracPayload, p.FracMixed = 0.13, 0.09
			p.FracBiased, p.BiasedP = 0.07, 0.95
			p.MinRequestBranches = 500
		}),
		preset("tomcat", 108, func(p *Profile) {
			p.Functions, p.Layers = 480, 6
			p.PayloadBits, p.PreambleBits = 4, 9
			p.FracPayload, p.FracMixed = 0.13, 0.06
			p.FracBiased, p.BiasedP = 0.06, 0.96
			p.MinRequestBranches = 1000
		}),
		preset("chirper", 109, func(p *Profile) {
			// Finagle-chirper: small footprint, low entropy.
			p.Functions, p.Layers = 120, 4
			p.RequestTypes = 6
			p.PayloadBits, p.PreambleBits = 2, 7
			p.FracShort, p.FracPayload, p.FracMixed = 0.26, 0.03, 0.02
			p.FracBiased, p.BiasedP = 0.04, 0.99
			p.MinRequestBranches = 500
		}),
		preset("finagle-http", 110, func(p *Profile) {
			p.Functions = 400
			p.PayloadBits, p.PreambleBits = 3, 8
			p.FracPayload, p.FracMixed = 0.09, 0.07
			p.FracBiased, p.BiasedP = 0.05, 0.965
			p.MinRequestBranches = 400
		}),
		preset("charlie", 111, func(p *Profile) {
			// Google trace: very large footprint.
			p.Functions, p.Layers = 620, 7
			p.RequestTypes = 20
			p.PayloadBits, p.PreambleBits = 3, 8
			p.FracPayload, p.FracMixed = 0.12, 0.08
			p.FracBiased, p.BiasedP = 0.05, 0.965
			p.MinRequestBranches = 700
		}),
		preset("delta", 112, func(p *Profile) {
			p.Functions, p.Layers = 300, 5
			p.RequestTypes = 10
			p.PayloadBits, p.PreambleBits = 2, 7
			p.FracShort, p.FracPayload, p.FracMixed = 0.24, 0.06, 0.04
			p.FracBiased, p.BiasedP = 0.05, 0.97
			p.MinRequestBranches = 400
		}),
		preset("merced", 113, func(p *Profile) {
			p.Functions, p.Layers = 600, 7
			p.RequestTypes = 18
			p.PayloadBits, p.PreambleBits = 4, 9
			p.FracPayload, p.FracMixed = 0.10, 0.06
			p.FracBiased, p.BiasedP = 0.05, 0.96
			p.MinRequestBranches = 500
		}),
		preset("whiskey", 114, func(p *Profile) {
			// The hardest workload in Table I.
			p.Functions, p.Layers = 680, 8
			p.RequestTypes = 22
			p.PayloadBits, p.PreambleBits = 5, 10
			p.FracPayload, p.FracMixed = 0.16, 0.08
			p.FracBiased, p.BiasedP = 0.06, 0.95
			p.MinRequestBranches = 1200
		}),
	}
}

// Names returns the preset workload names in Table I order.
func Names() []string {
	ws := Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// ByName returns the preset profile with the given name.
func ByName(name string) (Profile, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("workload: unknown workload %q (known: %v)", name, known)
}
