// Package wire is the binary streaming protocol of the serving stack —
// the throughput frontier past HTTP/JSON. The predictor core runs at
// hundreds of nanoseconds per branch with zero allocations, so on the
// JSON path encode/decode and per-request overhead, not prediction,
// dominate served throughput. This package replaces that transport with
// a compact, versioned, length-prefixed binary frame format carried over
// persistent TCP connections with pipelined batches, while the HTTP API
// remains as a compatibility facade over the same serve.Server.
//
// # Frame format
//
// Every connection opens with a 6-byte preamble from each side —
// "LLBW" magic, a format version byte, and a reserved zero byte — then
// carries a stream of frames:
//
//	u32 LE   n        frame length: len(body) + 4 (the trailing CRC)
//	body     n-4 B:
//	  u8       type     frame type (Predict, PredictOK, Nack, ...)
//	  uvarint  seq      connection-level tag echoed in the response
//	  ...               type-specific payload
//	u32 LE   crc      CRC-32C (Castagnoli) over body
//
// Predict payloads delta-encode branch PCs as zigzag varints against the
// previous PC, bit-pack the conditional and taken vectors, and carry
// branch kinds only for the (rare) unconditional branches; PredictOK
// payloads bit-pack the four per-branch outcome vectors (cond, taken,
// correct, second-level). A shed or refused batch is a typed NACK frame
// carrying the serving stack's stable error code, a retryable flag, and
// a Retry-After hint — the binary twin of the HTTP 429/503 envelope.
//
// # Pipelining and the sequencing contract
//
// Clients tag frames with connection-level sequence numbers and may keep
// many Predict frames in flight; the server executes frames for the
// same session in arrival order (different sessions in parallel) and
// responds out-of-band per frame. Exactly-once application across
// retries and reconnects rides on a second, per-session number: each
// Predict carries the session's monotonically increasing batch number.
// A batch at cursor+1 applies; a batch at or below the cursor is
// answered from current state without re-executing (the resend of a
// batch whose response was lost); a batch past cursor+1 is NACKed
// out_of_order so a pipelined retry can never silently skip a failed
// predecessor. The cursor is part of the session's checkpoint, so the
// contract survives evict-to-disk, restore, and daemon restarts.
//
// Encode and decode are allocation-free in steady state: encoders append
// into caller-owned buffers and decoders parse into reusable structs,
// gated by TestWireCodecZeroAlloc exactly like the hot-path bars.
package wire

import (
	"errors"
	"fmt"
)

// Version is the frame-format version carried in the connection
// preamble. Both sides must agree exactly; there is no negotiation —
// a version bump is a new deployment, not a runtime fallback.
const Version = 1

// preamble is the 6-byte connection opener each side sends: magic,
// version, reserved.
var preamble = [6]byte{'L', 'L', 'B', 'W', Version, 0}

// Frame types. Request types have the high bit clear; their responses
// set it. Nack answers any request type.
const (
	// FramePredict streams one batch of branches to a session.
	FramePredict = 0x01
	// FrameClose deletes a session and asks for its final statistics.
	FrameClose = 0x02
	// FramePing is a liveness no-op; the server echoes FramePong.
	FramePing = 0x03

	// FramePredictOK answers FramePredict with bit-packed per-branch
	// outcomes and the session's post-batch statistics.
	FramePredictOK = 0x81
	// FrameCloseOK answers FrameClose with the session's final statistics.
	FrameCloseOK = 0x82
	// FramePong answers FramePing.
	FramePong = 0x83
	// FrameNack answers any request with a typed refusal: a stable error
	// code, a human-readable message, a retryable flag, and a
	// Retry-After hint in milliseconds.
	FrameNack = 0xEE
)

// Wire NACK codes beyond the serving stack's HTTP-shared set
// (serve.CodeOverloaded, serve.CodeDraining, ... travel verbatim).
const (
	// CodeOutOfOrder: the batch number skips ahead of the session's
	// applied cursor; the client must replay the gap first. Retryable by
	// construction — resending in order resolves it.
	CodeOutOfOrder = "out_of_order"
)

// Fault-injection site names the wire listener fires (internal/faults),
// armed through the same injector as the serve.Fault* sites.
const (
	// FaultRead fires before each frame read; an injected error tears the
	// connection down as if the peer vanished mid-stream.
	FaultRead = "wire.read"
	// FaultWrite fires before each response-frame write; an injected
	// error likewise kills the connection after execution — the lost-ack
	// case the sequencing contract exists for.
	FaultWrite = "wire.write"
)

// Hard decode bounds. They cap what a hostile or corrupt frame can make
// the decoder allocate before any content validation runs.
const (
	// MaxFrame is the largest accepted frame (length prefix bound).
	MaxFrame = 16 << 20
	// MaxSessionID bounds the session-ID string in a frame.
	MaxSessionID = 4096
	// MaxPredictorName bounds the predictor-name string in a frame.
	MaxPredictorName = 256
	// MaxCode and MaxMessage bound the NACK strings.
	MaxCode    = 64
	MaxMessage = 1024
)

// ErrMalformed is wrapped by every decode failure: truncated frames,
// bad varints, out-of-range counts, CRC mismatches, framing violations.
// A malformed frame poisons the stream (framing is lost), so peers drop
// the connection on it.
var ErrMalformed = errors.New("wire: malformed frame")

// malformedf builds an ErrMalformed-wrapping error.
func malformedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}
