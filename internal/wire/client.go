package wire

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"llbpx/internal/serve"
)

// NackError is a typed server refusal: the binary twin of serve.APIError.
// Code carries the serving stack's stable error code (or the wire-only
// CodeOutOfOrder), Retryable whether resending the same frame is safe and
// useful, RetryAfter the server's backoff hint.
type NackError struct {
	Code       string
	Message    string
	Retryable  bool
	RetryAfter time.Duration
}

func (e *NackError) Error() string {
	return fmt.Sprintf("wire: nack %s: %s", e.Code, e.Message)
}

// Client speaks the binary protocol to one llbpd wire listener. It keeps
// a single persistent connection (redialed transparently after failures),
// multiplexes pipelined calls over it by sequence number, and is safe for
// concurrent use — each goroutine typically driving its own Stream.
//
// Retry semantics mirror the HTTP client's idempotency contract, with one
// upgrade: because every Predict carries a per-session batch number and
// the server deduplicates at its applied cursor, even a batch whose
// *response* was lost is safe to resend — the resend is answered from
// current state without re-executing. The HTTP client must never resend
// an executed predict; the wire client may always resend.
type Client struct {
	addr        string
	retry       serve.RetryPolicy
	dialTimeout time.Duration

	mu sync.Mutex
	cc *clientConn

	nretries    atomic.Uint64
	nshed       atomic.Uint64
	nreconnects atomic.Uint64
}

// NewClient returns a client for the llbpd wire listener at addr
// (host:port). It does not dial until first use.
func NewClient(addr string) *Client {
	return &Client{addr: addr, dialTimeout: 5 * time.Second}
}

// WithRetry arms the retry policy (serve.RetryPolicy field defaults) and
// returns the client for chaining. Call before sharing across goroutines.
func (c *Client) WithRetry(p serve.RetryPolicy) *Client {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	c.retry = p
	return c
}

// Retries reports resend attempts performed across all calls.
func (c *Client) Retries() uint64 { return c.nretries.Load() }

// ShedSeen reports overloaded NACKs absorbed (retried or surfaced).
func (c *Client) ShedSeen() uint64 { return c.nshed.Load() }

// Reconnects reports how many times the client redialed after losing an
// established connection.
func (c *Client) Reconnects() uint64 { return c.nreconnects.Load() }

// Close tears down the current connection, failing any in-flight calls.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		cc.fail(net.ErrClosed)
	}
	return nil
}

// maxAttempts is the per-call resend budget under the armed policy.
func (c *Client) maxAttempts() int {
	if c.retry.MaxAttempts > 0 {
		return c.retry.MaxAttempts
	}
	return 1
}

// backoff computes the wait before resend attempt+1: exponential from
// BaseDelay, capped, jittered, never shorter than the server's hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.retry.BaseDelay
	for i := 1; i < attempt && d < c.retry.MaxDelay; i++ {
		d *= 2
	}
	if d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if j := c.retry.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j + 2*j*rand.Float64()))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// currentConn returns the connection as-is (possibly nil or dead),
// without dialing.
func (c *Client) currentConn() *clientConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cc
}

// getConn returns the live connection, dialing a fresh one if the
// previous died (or none exists yet).
func (c *Client) getConn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		if !c.cc.dead() {
			return c.cc, nil
		}
		c.cc = nil
		c.nreconnects.Add(1)
	}
	d := net.Dialer{Timeout: c.dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	nc.SetDeadline(time.Now().Add(c.dialTimeout))
	if _, err := nc.Write(preamble[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	var got [len(preamble)]byte
	if _, err := io.ReadFull(nc, got[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	if got != preamble {
		nc.Close()
		return nil, fmt.Errorf("%w: bad server preamble % x", ErrMalformed, got[:])
	}
	nc.SetDeadline(time.Time{})
	cc := &clientConn{c: nc, pending: make(map[uint64]*call)}
	go cc.readLoop()
	c.cc = cc
	return cc, nil
}

// call is one in-flight request/response exchange. The response payload
// is copied into the call's own buffer (reused across calls) so the
// connection's read buffer can be overwritten by the next frame.
type call struct {
	seq  uint64
	done chan struct{}
	typ  byte
	resp []byte
	err  error
}

// clientConn is one established wire connection: a writer lock for frame
// serialization and a reader goroutine routing responses by seq.
type clientConn struct {
	c net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]*call
	err     error
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// fail marks the connection dead exactly once and completes every
// pending call with the terminal error.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	cc.c.Close()
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
}

// send registers the call under a fresh seq, encodes the frame with that
// seq via enc, and writes it. One frame is one Write; the server-side
// writer does the response coalescing.
func (cc *clientConn) send(cl *call, enc func(dst []byte, seq uint64) []byte) error {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.nextSeq++
	seq := cc.nextSeq
	cc.mu.Unlock()

	// Encode into the call's buffer (reused for the response later) and
	// only then register: once the call is in pending, the reader owns
	// cl.resp the moment a response lands.
	cl.seq = seq
	cl.typ, cl.err = 0, nil
	cl.done = make(chan struct{})
	cl.resp = enc(cl.resp[:0], seq)
	frame := cl.resp

	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return err
	}
	cc.pending[seq] = cl
	cc.mu.Unlock()

	cc.wmu.Lock()
	_, err := cc.c.Write(frame)
	cc.wmu.Unlock()
	if err != nil {
		cc.fail(err)
		return err
	}
	return nil
}

// readLoop routes response frames to their pending calls until the
// connection dies. Responses for abandoned seqs are dropped.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.c, 256<<10)
	var buf []byte
	for {
		body, nbuf, _, err := ReadFrame(br, buf)
		if err != nil {
			cc.fail(err)
			return
		}
		buf = nbuf
		typ, seq, payload, err := ParseHeader(body)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		cl := cc.pending[seq]
		delete(cc.pending, seq)
		cc.mu.Unlock()
		if cl == nil {
			continue
		}
		cl.typ = typ
		cl.resp = append(cl.resp[:0], payload...)
		close(cl.done)
	}
}

// Ping round-trips a liveness frame.
func (c *Client) Ping(ctx context.Context) error {
	cc, err := c.getConn(ctx)
	if err != nil {
		return err
	}
	cl := &call{}
	if err := cc.send(cl, func(dst []byte, seq uint64) []byte {
		return AppendPing(dst, seq)
	}); err != nil {
		return err
	}
	if err := c.wait(ctx, cc, cl); err != nil {
		return err
	}
	if cl.typ != FramePong {
		return malformedf("ping answered with frame type 0x%02x", cl.typ)
	}
	return nil
}

// CloseSession deletes a session and returns its predictor name and
// final statistics, retrying per policy. A resend that races a completed
// close surfaces the server's session_not_found NACK, exactly like a
// replayed HTTP DELETE.
func (c *Client) CloseSession(ctx context.Context, session string) (string, WireStats, error) {
	cl := &call{}
	var co CloseOK
	for attempt := 1; ; attempt++ {
		err, retryable, retryAfter := c.closeOnce(ctx, cl, session, &co)
		if err == nil {
			return string(co.Predictor), co.Stats, nil
		}
		if !retryable || attempt >= c.maxAttempts() {
			return "", WireStats{}, err
		}
		c.nretries.Add(1)
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			return "", WireStats{}, err
		}
	}
}

func (c *Client) closeOnce(ctx context.Context, cl *call, session string, co *CloseOK) (error, bool, time.Duration) {
	cc, err := c.getConn(ctx)
	if err != nil {
		return err, true, 0
	}
	if err := cc.send(cl, func(dst []byte, seq uint64) []byte {
		return AppendClose(dst, seq, session)
	}); err != nil {
		return err, true, 0
	}
	if err := c.wait(ctx, cc, cl); err != nil {
		// Transport death: like the batch path, close is safe to resend —
		// at worst the resend reports session_not_found.
		return err, true, 0
	}
	switch cl.typ {
	case FrameCloseOK:
		if err := DecodeCloseOK(cl.resp, co); err != nil {
			return err, false, 0
		}
		return nil, false, 0
	case FrameNack:
		var nk Nack
		if err := DecodeNack(cl.resp, &nk); err != nil {
			return err, false, 0
		}
		ne := &NackError{Code: string(nk.Code), Message: string(nk.Message),
			Retryable: nk.Retryable, RetryAfter: time.Duration(nk.RetryAfterMillis) * time.Millisecond}
		return ne, ne.Retryable, ne.RetryAfter
	default:
		return malformedf("close answered with frame type 0x%02x", cl.typ), false, 0
	}
}

// wait blocks for the call's response. Cancellation mid-wait kills the
// connection: an abandoned call's slot may be recycled by the caller, so
// letting the reader complete it later would race.
func (c *Client) wait(ctx context.Context, cc *clientConn, cl *call) error {
	select {
	case <-cl.done:
		return cl.err
	case <-ctx.Done():
		cc.fail(ctx.Err())
		<-cl.done
		return ctx.Err()
	}
}
