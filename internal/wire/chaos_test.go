package wire

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
	"llbpx/internal/serve"
)

// TestWireChaosSuite is the binary path's end-to-end resilience bar: with
// deterministic faults injected at the wire's own sites (torn reads,
// dying response writes), under forced overload shedding, and across a
// full daemon restart, a retrying stream must still land the exact
// statistics of a local sim.Run. Approximate recovery is a failure —
// a single double-applied or skipped batch shifts MPKI.
func TestWireChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}

	t.Run("frame faults and reconnect", func(t *testing.T) {
		const instrBudget = 150_000
		branches := workloadBranches(t, "kafka", instrBudget)
		local := localRun(t, "tsl-8k", branches, instrBudget)

		in := faults.New(7)
		in.Set(FaultRead, faults.Rule{ErrRate: 0.03})
		in.Set(FaultWrite, faults.Rule{ErrRate: 0.03})
		_, _, c := testWireServer(t, serve.Config{Faults: in}, Config{})
		c.WithRetry(serve.RetryPolicy{MaxAttempts: 12, BaseDelay: 2 * time.Millisecond, MaxDelay: 30 * time.Millisecond})

		st := c.Stream("chaos", "tsl-8k", StreamConfig{Window: 8})
		ctx := context.Background()
		for start := 0; start < len(branches); start += 512 {
			if err := st.Send(ctx, branches[start:min(start+512, len(branches))]); err != nil {
				t.Fatal(err)
			}
		}
		_, final, err := st.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		requireStats(t, final, local.Measured)

		rs, ws := in.Stats(FaultRead), in.Stats(FaultWrite)
		if rs.Errors == 0 || ws.Errors == 0 {
			t.Fatalf("faults never fired: read=%+v write=%+v", rs, ws)
		}
		if c.Reconnects() == 0 {
			t.Fatal("connection never died and redialed under injected frame faults")
		}
		if c.Retries() == 0 {
			t.Fatal("no batch was ever resent")
		}
	})

	t.Run("overload shedding", func(t *testing.T) {
		const instrBudget = 50_000
		branches := workloadBranches(t, "kafka", instrBudget)
		local := localRun(t, "tsl-8k", branches, instrBudget)

		// One worker slot, a 1ms admission window, and 2ms of injected
		// execution latency: concurrent sessions must shed, and shed
		// batches must be resent without double-applying.
		in := faults.New(11)
		in.Set(serve.FaultBatchExec, faults.Rule{Latency: 2 * time.Millisecond})
		srv, _, c := testWireServer(t,
			serve.Config{Workers: 1, AdmitTimeout: time.Millisecond, Faults: in},
			Config{})
		c.WithRetry(serve.RetryPolicy{MaxAttempts: 40, BaseDelay: 2 * time.Millisecond, MaxDelay: 30 * time.Millisecond})

		var wg sync.WaitGroup
		errs := make([]error, 3)
		finals := make([]WireStats, 3)
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				st := c.Stream("shed-"+string(rune('a'+g)), "tsl-8k", StreamConfig{Window: 4})
				ctx := context.Background()
				for start := 0; start < len(branches); start += 256 {
					if err := st.Send(ctx, branches[start:min(start+256, len(branches))]); err != nil {
						errs[g] = err
						return
					}
				}
				_, finals[g], errs[g] = st.Close(ctx)
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("stream %d: %v", g, err)
			}
			requireStats(t, finals[g], local.Measured)
		}
		if c.ShedSeen() == 0 {
			t.Fatal("no overloaded NACK was ever seen")
		}
		if snap := srv.Stats(); snap.WireNacks == 0 {
			t.Fatalf("server counted no wire NACKs: %+v", snap)
		}
	})

	t.Run("restart continuity", func(t *testing.T) {
		const instrBudget = 100_000
		branches := workloadBranches(t, "nodeapp", instrBudget)
		local := localRun(t, "tsl-8k", branches, instrBudget)
		dir := t.TempDir()
		const batchSize = 512
		nBatches := (len(branches) + batchSize - 1) / batchSize
		half := nBatches / 2
		batchAt := func(i int) []core.Branch { // 1-based batch number -> slice
			start := (i - 1) * batchSize
			return branches[start:min(start+batchSize, len(branches))]
		}

		// Phase 1: stream the first half, then drain — every session
		// checkpoints, including its wire sequencing cursor.
		srv1 := serve.New(serve.Config{SnapshotDir: dir})
		ws1 := NewServer(srv1, Config{})
		ln1, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done1 := make(chan struct{})
		go func() { defer close(done1); ws1.Serve(ln1) }()
		c1 := NewClient(ln1.Addr().String())
		st1 := c1.Stream("survivor", "tsl-8k", StreamConfig{Window: 8})
		ctx := context.Background()
		for i := 1; i <= half; i++ {
			if err := st1.Send(ctx, batchAt(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st1.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		c1.Close()
		ws1.Close()
		<-done1
		srv1.Drain()

		// Phase 2: a fresh daemon over the same snapshot dir. Resume one
		// batch *early* on purpose: the resend of batch `half` must be
		// absorbed as a duplicate by the restored cursor, not re-applied.
		srv2 := serve.New(serve.Config{SnapshotDir: dir})
		ws2 := NewServer(srv2, Config{})
		ln2, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done2 := make(chan struct{})
		go func() { defer close(done2); ws2.Serve(ln2) }()
		c2 := NewClient(ln2.Addr().String())
		t.Cleanup(func() {
			c2.Close()
			ws2.Close()
			<-done2
			srv2.Close()
		})
		st2 := c2.Stream("survivor", "tsl-8k", StreamConfig{Window: 8, StartBatch: uint64(half)})
		for i := half; i <= nBatches; i++ {
			if err := st2.Send(ctx, batchAt(i)); err != nil {
				t.Fatal(err)
			}
		}
		_, final, err := st2.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		requireStats(t, final, local.Measured)
		if final.Batches != uint64(nBatches) {
			t.Fatalf("batches %d, want %d (duplicate was re-applied or a batch lost)", final.Batches, nBatches)
		}
	})
}
