//go:build linux

package wire

import "syscall"

// processCPU returns the process's cumulative user+system CPU time in
// seconds, for CPU-normalized benchmark metrics. Returns 0 where rusage
// is unavailable (the metric is then omitted).
func processCPU() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 { return float64(tv.Sec) + float64(tv.Usec)/1e6 }
	return sec(ru.Utime) + sec(ru.Stime)
}
