package wire

import (
	"bytes"
	"testing"

	"llbpx/internal/core"
)

// TestWireCodecZeroAlloc is the binary protocol's differential allocation
// gate, the same bar the prediction hot path holds: once buffers have
// warmed to capacity, encoding and decoding frames in both directions
// performs zero heap allocations per frame. This is what makes the serve
// path's steady state allocation-free end to end — any regression here
// shows up as a nonzero count, not as a slow drift in profiles.
func TestWireCodecZeroAlloc(t *testing.T) {
	branches := workloadBranches(t, "kafka", 40_000)
	if len(branches) < 1024 {
		t.Fatalf("workload too short: %d branches", len(branches))
	}
	batch := branches[:1024]
	preds := make([]core.Prediction, len(batch))
	for i := range preds {
		preds[i].Taken = i%3 != 0
		preds[i].FromSecondLevel = i%5 == 0
	}
	st := WireStats{Instructions: 9999, CondBranches: 800, Mispredicts: 41, UncondCount: 224, SecondLevelOK: 17, Batches: 3}

	// Warm every buffer to capacity first: appenders grow to the frame
	// size, the decoder's branch slice grows to the batch size.
	enc := AppendPredict(nil, 1, "zero-alloc-session", "tsl-8k", 1, batch)
	encOK := AppendPredictOK(nil, 1, 0, "tsl-8k", batch, preds, st)
	encNack := AppendNack(nil, 1, "overloaded", "no worker slot", true, 2000)
	var pr Predict
	var ok PredictOK
	var nk Nack
	r := bytes.NewReader(nil)
	readBuf := make([]byte, 0, len(enc))

	var decodeErr error
	decodeFrame := func(frame []byte, into func(payload []byte) error) {
		r.Reset(frame)
		body, nbuf, _, err := ReadFrame(r, readBuf)
		readBuf = nbuf
		if err != nil {
			decodeErr = err
			return
		}
		_, _, payload, err := ParseHeader(body)
		if err != nil {
			decodeErr = err
			return
		}
		if err := into(payload); err != nil {
			decodeErr = err
		}
	}
	// Hoisted decode closures: constructing a capturing closure inside
	// the measured function would itself count as the allocation.
	decPredict := func(p []byte) error { return DecodePredict(p, &pr, 65536) }
	decPredictOK := func(p []byte) error { return DecodePredictOK(p, &ok, 65536) }
	decNack := func(p []byte) error { return DecodeNack(p, &nk) }

	// One warm pass so pr.Branches reaches capacity.
	decodeFrame(enc, decPredict)
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}

	cases := []struct {
		name string
		fn   func()
	}{
		{"encode-predict", func() { enc = AppendPredict(enc[:0], 7, "zero-alloc-session", "tsl-8k", 9, batch) }},
		{"decode-predict", func() { decodeFrame(enc, decPredict) }},
		{"encode-predict-ok", func() { encOK = AppendPredictOK(encOK[:0], 7, FlagCreated, "tsl-8k", batch, preds, st) }},
		{"decode-predict-ok", func() { decodeFrame(encOK, decPredictOK) }},
		{"encode-nack", func() { encNack = AppendNack(encNack[:0], 7, "overloaded", "no worker slot", true, 2000) }},
		{"decode-nack", func() { decodeFrame(encNack, decNack) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
		if decodeErr != nil {
			t.Fatalf("%s: %v", tc.name, decodeErr)
		}
	}

	// The decode really decoded: spot-check round-trip integrity.
	if len(pr.Branches) != len(batch) || pr.Branches[512] != batch[512] || pr.BatchNum != 9 {
		t.Fatalf("warm decode diverged: n=%d batchNum=%d", len(pr.Branches), pr.BatchNum)
	}
	if ok.N != len(batch) || ok.Stats != st {
		t.Fatalf("warm response decode diverged: %+v", ok)
	}
}
