package wire

import (
	"context"
	"errors"
	"fmt"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/serve"
)

// StreamConfig parameterizes a Stream. The zero value is usable.
type StreamConfig struct {
	// Window is the number of batches kept in flight (default 8).
	Window int
	// StartBatch is the first batch number to assign (default 1). A
	// resuming client that knows the session's applied cursor (e.g. from
	// a stats probe) starts at cursor+1; starting lower is also safe —
	// the server answers the replayed prefix from current state without
	// re-executing.
	StartBatch uint64
	// OnBatch, if set, is called once per *applied* batch in batch-number
	// order with the decoded response. The PredictOK and its bit vectors
	// are only valid during the call (buffers are recycled).
	OnBatch func(ok *PredictOK)
}

// Stream drives one session over the binary protocol with pipelined
// batches. Send queues a batch and returns as soon as the window has
// room; responses are collected in send order. Recovery is built on the
// sequencing contract: after a connection loss or a retryable NACK the
// stream resends unacknowledged batches in order, and the server either
// applies each (cursor+1), answers it from current state (at or below
// cursor — the lost-response case), or NACKs it out_of_order (a gap,
// which the in-order resend then fills). A Stream is not safe for
// concurrent use.
type Stream struct {
	c         *Client
	session   string
	predictor string
	cfg       StreamConfig

	next     uint64 // next batch number to assign
	inflight []*slot
	free     []*slot
	stats    WireStats // from the most recent acknowledged batch
	predName string    // learned from the first acknowledged batch
	closed   bool
}

// slot is one window entry: the retained batch (for resend), its batch
// number, and the call/response storage, all reused across batches.
type slot struct {
	batch    []core.Branch
	batchNum uint64
	attempts int
	sendErr  error // write-path failure to surface at ack time
	cl       call
	ok       PredictOK
}

// Stream returns a pipelined sender for one session. predictor names the
// predictor for session creation ("" = server default).
func (c *Client) Stream(session, predictor string, cfg StreamConfig) *Stream {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.StartBatch == 0 {
		cfg.StartBatch = 1
	}
	s := &Stream{c: c, session: session, predictor: predictor, cfg: cfg, next: cfg.StartBatch}
	s.free = make([]*slot, cfg.Window)
	for i := range s.free {
		s.free[i] = &slot{}
	}
	return s
}

// Stats returns the session statistics carried on the most recent
// acknowledged batch.
func (s *Stream) Stats() WireStats { return s.stats }

// Send queues one batch. It blocks only when the window is full, first
// retiring the oldest in-flight batch. The batch is copied; the caller
// may reuse it immediately.
func (s *Stream) Send(ctx context.Context, batch []core.Branch) error {
	if s.closed {
		return fmt.Errorf("wire: send on closed stream")
	}
	if len(batch) == 0 {
		return fmt.Errorf("wire: empty batch")
	}
	if len(s.free) == 0 {
		if err := s.ackHead(ctx); err != nil {
			return err
		}
	}
	sl := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	sl.batch = append(sl.batch[:0], batch...)
	sl.batchNum = s.next
	s.next++
	sl.attempts = 0
	sl.sendErr = nil
	if err := s.post(ctx, sl); err != nil {
		// Defer to ack time: the transport may heal, and recovery must
		// happen in batch order anyway.
		sl.sendErr = err
	}
	s.inflight = append(s.inflight, sl)
	return nil
}

// Flush retires every in-flight batch, leaving the window empty.
func (s *Stream) Flush(ctx context.Context) error {
	for len(s.inflight) > 0 {
		if err := s.ackHead(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the stream and deletes the session, returning its
// predictor name and final statistics. A close whose acknowledgement was
// lost to a dying connection is absorbed: the retried close reports
// session_not_found, but after a clean Flush the stream's own last-acked
// statistics are authoritative, so Close returns those instead of the
// error — the close happened exactly once.
func (s *Stream) Close(ctx context.Context) (string, WireStats, error) {
	if err := s.Flush(ctx); err != nil {
		return "", WireStats{}, err
	}
	s.closed = true
	pred, st, err := s.c.CloseSession(ctx, s.session)
	var ne *NackError
	if err != nil && s.predName != "" && errors.As(err, &ne) && ne.Code == serve.CodeSessionNotFound {
		return s.predName, s.stats, nil
	}
	return pred, st, err
}

// post (re-)sends a slot's batch, tagged with a fresh connection seq.
func (s *Stream) post(ctx context.Context, sl *slot) error {
	sl.attempts++
	cc, err := s.c.getConn(ctx)
	if err != nil {
		return err
	}
	return cc.send(&sl.cl, func(dst []byte, seq uint64) []byte {
		return AppendPredict(dst, seq, s.session, s.predictor, sl.batchNum, sl.batch)
	})
}

// ackHead blocks until the oldest in-flight batch is acknowledged,
// resending it per the retry policy through transport failures and
// retryable NACKs. Later in-flight slots that failed alongside it are
// handled the same way when their turn comes, which replays them in
// batch order — exactly what the sequencing contract requires.
func (s *Stream) ackHead(ctx context.Context) error {
	sl := s.inflight[0]
	for {
		var rerr error
		var retryAfter time.Duration
		if sl.sendErr != nil {
			rerr, sl.sendErr = sl.sendErr, nil
		} else {
			cc := s.c.currentConn()
			select {
			case <-sl.cl.done:
				rerr = sl.cl.err
			case <-ctx.Done():
				if cc != nil {
					cc.fail(ctx.Err())
				}
				return ctx.Err()
			}
		}
		if rerr == nil {
			done, err := s.settle(sl)
			if err != nil {
				return err
			}
			if done {
				s.inflight = s.inflight[1:]
				s.free = append(s.free, sl)
				return nil
			}
			// Retryable NACK. Fall through to the resend path.
			if ne, ok := sl.cl.err.(*NackError); ok { // stored by settle
				retryAfter = ne.RetryAfter
			}
		}
		if sl.attempts >= s.c.maxAttempts() {
			if rerr == nil {
				rerr = sl.cl.err
			}
			return fmt.Errorf("wire: batch %d for session %q failed after %d attempts: %w",
				sl.batchNum, s.session, sl.attempts, rerr)
		}
		s.c.nretries.Add(1)
		select {
		case <-time.After(s.c.backoff(sl.attempts, retryAfter)):
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := s.post(ctx, sl); err != nil {
			sl.sendErr = err
		}
	}
}

// settle interprets a completed response for the head slot. It returns
// done=true when the batch is acknowledged, done=false for a retryable
// NACK (stored in sl.cl.err), and a non-nil error for terminal failures.
func (s *Stream) settle(sl *slot) (bool, error) {
	switch sl.cl.typ {
	case FramePredictOK:
		if err := DecodePredictOK(sl.cl.resp, &sl.ok, len(sl.batch)); err != nil {
			return false, err
		}
		if sl.ok.Flags&FlagDuplicate == 0 {
			if int(sl.ok.N) != len(sl.batch) {
				return false, malformedf("sent %d branches, response covers %d", len(sl.batch), sl.ok.N)
			}
			if s.cfg.OnBatch != nil {
				s.cfg.OnBatch(&sl.ok)
			}
		}
		s.stats = sl.ok.Stats
		if s.predName == "" {
			s.predName = string(sl.ok.Predictor)
		}
		return true, nil
	case FrameNack:
		var nk Nack
		if err := DecodeNack(sl.cl.resp, &nk); err != nil {
			return false, err
		}
		ne := &NackError{Code: string(nk.Code), Message: string(nk.Message),
			Retryable: nk.Retryable, RetryAfter: time.Duration(nk.RetryAfterMillis) * time.Millisecond}
		if ne.Code == serve.CodeOverloaded {
			s.c.nshed.Add(1)
		}
		if !ne.Retryable {
			return false, ne
		}
		sl.cl.err = ne
		return false, nil
	default:
		return false, malformedf("predict answered with frame type 0x%02x", sl.cl.typ)
	}
}

// Predict is the unpipelined convenience call: one batch, one response,
// retried per policy. The caller owns batchNum (the session's sequencing
// contract applies). ok's fields are views into client-owned buffers,
// valid until the next call on this client for the same session.
func (c *Client) Predict(ctx context.Context, session, predictor string, batchNum uint64, batch []core.Branch, ok *PredictOK) error {
	sl := &slot{batchNum: batchNum}
	sl.batch = append(sl.batch, batch...)
	st := &Stream{c: c, session: session, predictor: predictor}
	if err := st.post(ctx, sl); err != nil {
		sl.sendErr = err
	}
	st.inflight = append(st.inflight, sl)
	if err := st.ackHead(ctx); err != nil {
		return err
	}
	*ok = sl.ok
	return nil
}
