package wire

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"math/bits"

	"llbpx/internal/core"
)

// castagnoli is the CRC-32C table guarding every frame — the same
// polynomial the snapshot layer uses, hardware-accelerated on amd64 and
// arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoding -----------------------------------------------------------------
//
// Encoders are appenders: they extend a caller-owned []byte and return
// it, so a connection reuses one buffer per direction and steady-state
// encoding allocates nothing once capacities converge.

// beginFrame appends the 4-byte length placeholder plus the frame
// header (type, seq) and returns the body's start offset for finishFrame.
func beginFrame(dst []byte, typ byte, seq uint64) ([]byte, int) {
	dst = append(dst, 0, 0, 0, 0)
	mark := len(dst)
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, seq)
	return dst, mark
}

// finishFrame seals a frame begun at mark: it appends the CRC-32C over
// the body and patches the length prefix.
func finishFrame(dst []byte, mark int) []byte {
	crc := crc32.Checksum(dst[mark:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	binary.LittleEndian.PutUint32(dst[mark-4:mark], uint32(len(dst)-mark))
	return dst
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// WireStats is the session-statistics block carried by PredictOK and
// CloseOK frames: the raw counters, from which both sides derive MPKI
// and accuracy with identical float operations.
type WireStats struct {
	Instructions  uint64
	CondBranches  uint64
	Mispredicts   uint64
	UncondCount   uint64
	SecondLevelOK uint64
	Batches       uint64
}

func appendStats(dst []byte, st WireStats) []byte {
	dst = binary.AppendUvarint(dst, st.Instructions)
	dst = binary.AppendUvarint(dst, st.CondBranches)
	dst = binary.AppendUvarint(dst, st.Mispredicts)
	dst = binary.AppendUvarint(dst, st.UncondCount)
	dst = binary.AppendUvarint(dst, st.SecondLevelOK)
	return binary.AppendUvarint(dst, st.Batches)
}

// AppendPredict encodes one Predict frame: session identity, the
// per-session batch number, and the batch itself — conditional and
// taken bit vectors, kind bytes for the unconditional minority, then
// zigzag-varint PC deltas, target deltas (against each branch's own
// PC), and instruction gaps.
func AppendPredict(dst []byte, seq uint64, session, predictor string, batchNum uint64, batch []core.Branch) []byte {
	dst, mark := beginFrame(dst, FramePredict, seq)
	dst = appendString(dst, session)
	dst = appendString(dst, predictor)
	dst = binary.AppendUvarint(dst, batchNum)
	n := len(batch)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = appendBits(dst, n, func(i int) bool { return batch[i].Kind.Conditional() })
	dst = appendBits(dst, n, func(i int) bool { return batch[i].Taken })
	for i := range batch {
		if !batch[i].Kind.Conditional() {
			dst = append(dst, byte(batch[i].Kind))
		}
	}
	prev := uint64(0)
	for i := range batch {
		dst = binary.AppendVarint(dst, int64(batch[i].PC-prev))
		prev = batch[i].PC
	}
	for i := range batch {
		dst = binary.AppendVarint(dst, int64(batch[i].Target-batch[i].PC))
	}
	for i := range batch {
		dst = binary.AppendUvarint(dst, uint64(batch[i].InstrGap))
	}
	return finishFrame(dst, mark)
}

// PredictOK response flags.
const (
	// FlagCreated: this batch created the session.
	FlagCreated = 1 << 0
	// FlagRestored: the creation revived an on-disk checkpoint.
	FlagRestored = 1 << 1
	// FlagDuplicate: the batch number was already applied; the frame
	// carries no predictions, only current statistics.
	FlagDuplicate = 1 << 2
)

// AppendPredictOK encodes a Predict response: flags, the session's
// predictor, four bit-packed per-branch outcome vectors derived from
// the executed batch and its raw predictions, and the post-batch
// statistics. For duplicate acknowledgements pass an empty batch.
func AppendPredictOK(dst []byte, seq uint64, flags byte, predictor string, batch []core.Branch, preds []core.Prediction, st WireStats) []byte {
	dst, mark := beginFrame(dst, FramePredictOK, seq)
	dst = append(dst, flags)
	dst = appendString(dst, predictor)
	n := len(batch)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = appendBits(dst, n, func(i int) bool { return batch[i].Kind.Conditional() })
	dst = appendBits(dst, n, func(i int) bool {
		if batch[i].Kind.Conditional() {
			return preds[i].Taken
		}
		return true // unconditional branches are always taken
	})
	dst = appendBits(dst, n, func(i int) bool {
		if batch[i].Kind.Conditional() {
			return preds[i].Taken == batch[i].Taken
		}
		return true
	})
	dst = appendBits(dst, n, func(i int) bool {
		return batch[i].Kind.Conditional() && preds[i].FromSecondLevel
	})
	dst = appendStats(dst, st)
	return finishFrame(dst, mark)
}

// AppendPredictOKRaw encodes a Predict response from already-packed
// outcome vectors — the relay form AppendPredictOK's batch+predictions
// form reduces to. It exists for forwarding paths (the cluster gateway)
// that hold a decoded PredictOK from a downstream server and must re-emit
// it upstream byte-compatibly without re-deriving per-branch outcomes it
// has no batch for. Each vector must be exactly ceil(n/8) bytes, as
// produced by appendBits and returned by DecodePredictOK; predictor is a
// byte view so a decoded frame relays without a string allocation.
func AppendPredictOKRaw(dst []byte, seq uint64, flags byte, predictor []byte, n int, cond, taken, correct, second []byte, st WireStats) []byte {
	dst, mark := beginFrame(dst, FramePredictOK, seq)
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(predictor)))
	dst = append(dst, predictor...)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = append(dst, cond...)
	dst = append(dst, taken...)
	dst = append(dst, correct...)
	dst = append(dst, second...)
	dst = appendStats(dst, st)
	return finishFrame(dst, mark)
}

// AppendNack encodes a typed refusal for the request tagged seq.
func AppendNack(dst []byte, seq uint64, code, message string, retryable bool, retryAfterMillis uint64) []byte {
	dst, mark := beginFrame(dst, FrameNack, seq)
	dst = appendString(dst, code)
	dst = appendString(dst, message)
	if retryable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, retryAfterMillis)
	return finishFrame(dst, mark)
}

// AppendClose encodes a session-close request.
func AppendClose(dst []byte, seq uint64, session string) []byte {
	dst, mark := beginFrame(dst, FrameClose, seq)
	dst = appendString(dst, session)
	return finishFrame(dst, mark)
}

// AppendCloseOK encodes a Close response carrying final statistics.
func AppendCloseOK(dst []byte, seq uint64, predictor string, st WireStats) []byte {
	dst, mark := beginFrame(dst, FrameCloseOK, seq)
	dst = appendString(dst, predictor)
	dst = appendStats(dst, st)
	return finishFrame(dst, mark)
}

// AppendPing / AppendPong encode the liveness no-ops.
func AppendPing(dst []byte, seq uint64) []byte {
	dst, mark := beginFrame(dst, FramePing, seq)
	return finishFrame(dst, mark)
}

// AppendPong encodes the FramePing response.
func AppendPong(dst []byte, seq uint64) []byte {
	dst, mark := beginFrame(dst, FramePong, seq)
	return finishFrame(dst, mark)
}

// appendBits bit-packs n booleans LSB-first into ceil(n/8) bytes.
func appendBits(dst []byte, n int, bit func(i int) bool) []byte {
	var cur byte
	for i := 0; i < n; i++ {
		if bit(i) {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if n&7 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// Bit reports bit i of an appendBits-packed vector.
func Bit(bits []byte, i int) bool { return bits[i>>3]&(1<<(i&7)) != 0 }

// Decoding -----------------------------------------------------------------

// parser is a sticky-error cursor over one frame body — the slice-based
// twin of snapshot.Reader. Reads past the end, oversized counts, and
// bad varints all fail with ErrMalformed; every accessor is a no-op
// after the first failure. Byte-string reads return views into the
// frame buffer, so parsing allocates nothing.
type parser struct {
	b   []byte
	off int
	err error
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = malformedf(format, args...)
	}
}

func (p *parser) u8() byte {
	if p.err != nil {
		return 0
	}
	if p.off >= len(p.b) {
		p.fail("truncated at byte %d", p.off)
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *parser) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		p.fail("bad varint at byte %d", p.off)
		return 0
	}
	p.off += n
	return v
}

func (p *parser) varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		p.fail("bad signed varint at byte %d", p.off)
		return 0
	}
	p.off += n
	return v
}

// take returns an n-byte view of the body.
func (p *parser) take(n int) []byte {
	if p.err != nil {
		return nil
	}
	if n < 0 || p.off+n > len(p.b) {
		p.fail("truncated: need %d bytes at %d of %d", n, p.off, len(p.b))
		return nil
	}
	v := p.b[p.off : p.off+n : p.off+n]
	p.off += n
	return v
}

// str returns a length-prefixed byte-string view, capped at max.
func (p *parser) str(max int) []byte {
	n := p.uvarint()
	if p.err == nil && n > uint64(max) {
		p.fail("string length %d exceeds limit %d", n, max)
	}
	return p.take(int(n))
}

// done fails unless the body was consumed exactly.
func (p *parser) done() error {
	if p.err == nil && p.off != len(p.b) {
		p.fail("%d trailing bytes", len(p.b)-p.off)
	}
	return p.err
}

// ReadFrame reads one length-prefixed frame from r into buf (grown as
// needed), verifies the CRC, and returns the body (type byte onward)
// plus the total bytes consumed off the connection. The returned slice
// aliases buf and is valid until the next call with the same buffer.
func ReadFrame(r io.Reader, buf []byte) (body, bufOut []byte, wireBytes int, err error) {
	// The length prefix is read into the reusable buffer, not a local
	// array: a local would escape through the io.Reader interface and
	// cost one allocation per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512)
	}
	buf = buf[:4]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, buf, 0, err
	}
	n := binary.LittleEndian.Uint32(buf)
	// Smallest legal frame body is type + 1-byte seq, plus the CRC.
	if n < 6 || n > MaxFrame {
		return nil, buf, 4, malformedf("frame length %d outside [6, %d]", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A partial frame after a valid header is stream corruption, not
		// clean EOF.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, buf, 4, err
	}
	body = buf[:n-4]
	want := binary.LittleEndian.Uint32(buf[n-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, buf, 4 + int(n), malformedf("frame CRC mismatch: %08x != %08x", got, want)
	}
	return body, buf, 4 + int(n), nil
}

// ParseHeader splits a frame body into its type, sequence tag, and
// payload.
func ParseHeader(body []byte) (typ byte, seq uint64, payload []byte, err error) {
	p := parser{b: body}
	typ = p.u8()
	seq = p.uvarint()
	if p.err != nil {
		return 0, 0, nil, p.err
	}
	return typ, seq, body[p.off:], nil
}

// Predict is a decoded Predict payload. Session and Predictor are views
// into the frame buffer (valid until the buffer is reused); Branches is
// a reusable slice regrown in place across frames.
type Predict struct {
	Session   []byte
	Predictor []byte
	BatchNum  uint64
	Branches  []core.Branch
}

// DecodePredict parses a Predict payload into pr, enforcing maxBatch on
// the branch count. The decoder validates before it allocates: branch
// storage only grows in proportion to bytes actually present in the
// payload, so a hostile count field cannot balloon memory.
func DecodePredict(payload []byte, pr *Predict, maxBatch int) error {
	p := parser{b: payload}
	pr.Session = p.str(MaxSessionID)
	pr.Predictor = p.str(MaxPredictorName)
	pr.BatchNum = p.uvarint()
	n64 := p.uvarint()
	if p.err != nil {
		return p.err
	}
	if n64 > uint64(maxBatch) {
		return malformedf("batch of %d branches exceeds limit %d", n64, maxBatch)
	}
	n := int(n64)
	nb := (n + 7) / 8
	condBits := p.take(nb)
	takenBits := p.take(nb)
	if p.err != nil {
		return p.err
	}
	// Count unconditional branches among the n valid bits. The last
	// byte's padding bits are masked off rather than assumed zero — a
	// hostile frame may set them, and an undercount here would size the
	// kind array short.
	ones := 0
	for j, b := range condBits {
		if j == len(condBits)-1 && n&7 != 0 {
			b &= byte(1<<(n&7)) - 1
		}
		ones += bits.OnesCount8(b)
	}
	uncond := n - ones
	// Every branch still owes >= 3 varint bytes (pc, target, gap) and
	// every unconditional branch one kind byte: refuse counts the
	// remaining payload cannot possibly carry before growing storage.
	if remaining := len(payload) - p.off; remaining < 3*n+uncond {
		return malformedf("%d branches need >= %d payload bytes, have %d", n, 3*n+uncond, remaining)
	}
	kinds := p.take(uncond)
	if p.err != nil {
		return p.err
	}
	if cap(pr.Branches) < n {
		pr.Branches = make([]core.Branch, n)
	}
	branches := pr.Branches[:n]
	ki := 0
	for i := 0; i < n; i++ {
		if Bit(condBits, i) {
			branches[i].Kind = core.CondDirect
		} else {
			k := core.BranchKind(kinds[ki])
			ki++
			if !k.Valid() || k.Conditional() {
				return malformedf("branch %d: invalid unconditional kind %d", i, k)
			}
			branches[i].Kind = k
		}
		branches[i].Taken = Bit(takenBits, i)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		prev += uint64(p.varint())
		branches[i].PC = prev
	}
	for i := 0; i < n; i++ {
		branches[i].Target = branches[i].PC + uint64(p.varint())
	}
	for i := 0; i < n; i++ {
		gap := p.uvarint()
		if p.err == nil && gap > math.MaxUint32 {
			return malformedf("branch %d: instruction gap %d overflows uint32", i, gap)
		}
		branches[i].InstrGap = uint32(gap)
	}
	if err := p.done(); err != nil {
		return err
	}
	pr.Branches = branches
	return nil
}

// PredictOK is a decoded Predict response. The bit vectors and the
// predictor name are views into the frame buffer.
type PredictOK struct {
	Flags     byte
	Predictor []byte
	N         int
	Cond      []byte
	Taken     []byte
	Correct   []byte
	Second    []byte
	Stats     WireStats
}

func decodeStats(p *parser) WireStats {
	return WireStats{
		Instructions:  p.uvarint(),
		CondBranches:  p.uvarint(),
		Mispredicts:   p.uvarint(),
		UncondCount:   p.uvarint(),
		SecondLevelOK: p.uvarint(),
		Batches:       p.uvarint(),
	}
}

// DecodePredictOK parses a PredictOK payload, enforcing maxBatch on the
// prediction count.
func DecodePredictOK(payload []byte, ok *PredictOK, maxBatch int) error {
	p := parser{b: payload}
	ok.Flags = p.u8()
	ok.Predictor = p.str(MaxPredictorName)
	n64 := p.uvarint()
	if p.err != nil {
		return p.err
	}
	if n64 > uint64(maxBatch) {
		return malformedf("%d predictions exceed limit %d", n64, maxBatch)
	}
	ok.N = int(n64)
	nb := (ok.N + 7) / 8
	ok.Cond = p.take(nb)
	ok.Taken = p.take(nb)
	ok.Correct = p.take(nb)
	ok.Second = p.take(nb)
	ok.Stats = decodeStats(&p)
	return p.done()
}

// Nack is a decoded refusal frame; Code and Message are views into the
// frame buffer.
type Nack struct {
	Code             []byte
	Message          []byte
	Retryable        bool
	RetryAfterMillis uint64
}

// DecodeNack parses a Nack payload.
func DecodeNack(payload []byte, nk *Nack) error {
	p := parser{b: payload}
	nk.Code = p.str(MaxCode)
	nk.Message = p.str(MaxMessage)
	switch p.u8() {
	case 0:
		nk.Retryable = false
	case 1:
		nk.Retryable = true
	default:
		p.fail("retryable flag outside {0, 1}")
	}
	nk.RetryAfterMillis = p.uvarint()
	return p.done()
}

// Close is a decoded Close payload.
type Close struct{ Session []byte }

// DecodeClose parses a Close payload.
func DecodeClose(payload []byte, c *Close) error {
	p := parser{b: payload}
	c.Session = p.str(MaxSessionID)
	return p.done()
}

// CloseOK is a decoded Close response.
type CloseOK struct {
	Predictor []byte
	Stats     WireStats
}

// DecodeCloseOK parses a CloseOK payload.
func DecodeCloseOK(payload []byte, c *CloseOK) error {
	p := parser{b: payload}
	c.Predictor = p.str(MaxPredictorName)
	c.Stats = decodeStats(&p)
	return p.done()
}
