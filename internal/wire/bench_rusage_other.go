//go:build !linux

package wire

// processCPU is unavailable off Linux; the CPU-normalized benchmark
// metric is omitted.
func processCPU() float64 { return 0 }
