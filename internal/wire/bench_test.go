package wire

import (
	"context"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/serve"
)

// benchBranches caches one workload stream across benchmark runs.
var benchBranches struct {
	once sync.Once
	b    []core.Branch
}

func benchWorkload(tb testing.TB) []core.Branch {
	benchBranches.once.Do(func() {
		benchBranches.b = workloadBranches(tb, "kafka", 2_000_000)
	})
	return benchBranches.b
}

// benchBimodal is a classic 64K-entry 2-bit-counter bimodal table — the
// cheapest meaningful baseline in the branch-prediction literature. It is
// registered only from this benchmark (runtime registration is part of
// the registry's contract; see TestRegisterPredictorFacade) to create a
// transport-dominant measurement cell: with prediction nearly free, the
// JSON-vs-binary ratio isolates protocol cost. The tsl-8k cell keeps the
// predictor-bound regime honest alongside it.
type benchBimodal struct{ ctr []uint8 }

func (p *benchBimodal) Name() string { return "bimodal-64k" }

func (p *benchBimodal) Predict(pc uint64) core.Prediction {
	taken := p.ctr[(pc>>2)&(1<<16-1)] >= 2
	return core.Prediction{Taken: taken, FastTaken: taken}
}

func (p *benchBimodal) Update(b core.Branch, pred core.Prediction) {
	i := (b.PC >> 2) & (1<<16 - 1)
	if b.Taken {
		if p.ctr[i] < 3 {
			p.ctr[i]++
		}
	} else if p.ctr[i] > 0 {
		p.ctr[i]--
	}
}

func (p *benchBimodal) TrackUnconditional(core.Branch) {}

var benchBimodalOnce sync.Once

func registerBenchBimodal(tb testing.TB) {
	benchBimodalOnce.Do(func() {
		err := serve.RegisterPredictor("bimodal-64k",
			"bench-only 2-bit bimodal baseline (transport-dominant cell)",
			func() (core.Predictor, error) {
				return &benchBimodal{ctr: make([]uint8, 1<<16)}, nil
			})
		if err != nil {
			tb.Fatal(err)
		}
	})
}

// BenchmarkServedThroughput measures end-to-end served branches per
// second over each protocol against the same serve.Server configuration:
// a real loopback TCP hop, a warm session, batches of 2048. Two predictor
// cells: tsl-8k (the cheapest built-in; prediction cost floors the
// protocol ratio) and bimodal-64k (near-free prediction; the ratio
// isolates transport cost). Client and server run in one process, so the
// reported "branches/s/core" divides by total process CPU, charging each
// protocol for both sides of its codec — the honest basis for the
// JSON-vs-binary comparison in BENCH_served.json.
func BenchmarkServedThroughput(b *testing.B) {
	const batchSize = 2048
	branches := benchWorkload(b)
	registerBenchBimodal(b)

	for _, pred := range []string{"tsl-8k", "bimodal-64k"} {
		b.Run(pred+"/json", func(b *testing.B) {
			srv := serve.New(serve.Config{})
			hs := httptest.NewServer(srv)
			defer func() { hs.Close(); srv.Close() }()
			client := serve.NewClient(hs.URL, hs.Client())
			ctx := context.Background()
			runServedBench(b, batchSize, branches, func(batch []core.Branch) error {
				_, err := client.Predict(ctx, "bench-json", pred, batch)
				return err
			}, nil)
		})

		b.Run(pred+"/binary", func(b *testing.B) {
			srv := serve.New(serve.Config{})
			ws := NewServer(srv, Config{})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan struct{})
			go func() { defer close(done); ws.Serve(ln) }()
			c := NewClient(ln.Addr().String())
			defer func() { c.Close(); ws.Close(); <-done; srv.Close() }()
			st := c.Stream("bench-binary", pred, StreamConfig{Window: 8})
			ctx := context.Background()
			runServedBench(b, batchSize, branches, func(batch []core.Branch) error {
				return st.Send(ctx, batch)
			}, func() error { return st.Flush(ctx) })
		})
	}
}

// runServedBench drives b.N batches (cycling through the workload)
// through send, then reports wall-clock and CPU-normalized throughput.
func runServedBench(b *testing.B, batchSize int, branches []core.Branch, send func([]core.Branch) error, flush func() error) {
	nBatches := len(branches) / batchSize
	if nBatches == 0 {
		b.Fatal("workload shorter than one batch")
	}
	// One warmup batch establishes the session outside the timer.
	if err := send(branches[:batchSize]); err != nil {
		b.Fatal(err)
	}
	cpu0 := processCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i % nBatches) * batchSize
		if err := send(branches[start : start+batchSize]); err != nil {
			b.Fatal(err)
		}
	}
	if flush != nil {
		if err := flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cpu := processCPU() - cpu0
	served := float64(b.N) * float64(batchSize)
	b.ReportMetric(served/b.Elapsed().Seconds(), "branches/s")
	if cpu > 0 {
		b.ReportMetric(served/cpu, "branches/s/core")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/served, "ns/branch")
}
