package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"sync"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/serve"
)

// Config parameterizes the wire listener. The zero value is usable.
type Config struct {
	// Executors is the per-connection parallel-execution width: frames
	// are sharded over this many executor goroutines by session ID, so
	// one connection multiplexing many sessions still executes them in
	// parallel while every single session stays in arrival order
	// (default 4).
	Executors int
	// Window bounds decoded-but-unanswered frames per connection; a
	// client that pipelines past it blocks in the kernel, which is the
	// backpressure signal (default 64).
	Window int
	// IdleTimeout drops a connection with no complete frame for this
	// long (default 2m; negative disables).
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the preamble exchange (default 5s).
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 4
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	return c
}

// Server is the binary-protocol listener. It owns no session, admission,
// drain, or checkpoint state of its own: every frame drives the same
// serve.Server machinery the HTTP mux does, so the two protocols share
// one worker pool, one drain barrier, one shard map, and one metrics
// registry — a session is reachable from either protocol under the same
// ID.
type Server struct {
	backend *serve.Server
	cfg     Config
	m       *serve.WireMetrics

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a serve.Server with a binary-protocol frontend.
func NewServer(backend *serve.Server, cfg Config) *Server {
	return &Server{
		backend: backend,
		cfg:     cfg.withDefaults(),
		m:       backend.WireMetrics(),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.m.Conns.Inc()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, tears every connection down, and waits for the
// per-connection goroutines to exit. Batches already executing complete
// under the backend's drain barrier (serve.Server.Drain waits on them);
// their responses may be lost with the connection, which is exactly the
// case the sequencing contract lets clients retry through.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// job is one in-flight frame: decoded request state on the way in,
// encoded response bytes on the way out. A connection owns Window jobs
// recycled through a free list, so the steady-state frame path performs
// no per-frame heap allocation.
type job struct {
	typ      byte
	seq      uint64
	start    time.Time
	session  []byte // copied out of the read buffer (it is reused per frame)
	pred     []byte
	batchNum uint64
	branches []core.Branch
	preds    []core.Prediction
	out      []byte
	nack     bool
}

// wireConn is the per-connection pipeline: one reader decoding frames,
// Executors goroutines executing them (sharded by session so a session
// keeps retire order), one writer serializing responses.
type wireConn struct {
	s      *Server
	c      net.Conn
	ctx    context.Context
	cancel context.CancelFunc
	quit   chan struct{}
	kill   sync.Once
	free   chan *job
	writeq chan *job
	execq  []chan *job
	seed   maphash.Seed
}

// AcceptHandshake performs the server side of the preamble exchange on a
// freshly accepted connection: read the client's 6-byte preamble, verify
// magic and version, echo ours back. On any mismatch it returns an error
// without writing — say nothing a non-wire peer could misparse; the
// caller just hangs up. Exported for other wire-speaking listeners (the
// cluster gateway's upstream frontend) so there is exactly one handshake
// implementation.
func AcceptHandshake(c net.Conn, timeout time.Duration) error {
	c.SetDeadline(time.Now().Add(timeout))
	var got [len(preamble)]byte
	if _, err := io.ReadFull(c, got[:]); err != nil {
		return err
	}
	if got != preamble {
		return malformedf("bad client preamble % x", got[:])
	}
	if _, err := c.Write(preamble[:]); err != nil {
		return err
	}
	return c.SetDeadline(time.Time{})
}

func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	if AcceptHandshake(c, s.cfg.HandshakeTimeout) != nil {
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	wc := &wireConn{
		s:      s,
		c:      c,
		ctx:    ctx,
		cancel: cancel,
		quit:   make(chan struct{}),
		free:   make(chan *job, s.cfg.Window),
		writeq: make(chan *job, s.cfg.Window),
		execq:  make([]chan *job, s.cfg.Executors),
		seed:   maphash.MakeSeed(),
	}
	defer cancel()
	for i := 0; i < s.cfg.Window; i++ {
		wc.free <- &job{}
	}
	var execWg sync.WaitGroup
	for i := range wc.execq {
		wc.execq[i] = make(chan *job, s.cfg.Window)
		execWg.Add(1)
		go func(q chan *job) {
			defer execWg.Done()
			wc.executor(q)
		}(wc.execq[i])
	}
	var writeWg sync.WaitGroup
	writeWg.Add(1)
	go func() {
		defer writeWg.Done()
		wc.writer()
	}()

	wc.reader() // returns on connection death, malformed stream, or Close
	for _, q := range wc.execq {
		close(q)
	}
	execWg.Wait()
	close(wc.writeq)
	writeWg.Wait()
}

// die tears the connection down once: the net.Conn closes (unblocking
// reader and writer) and the conn context cancels (unblocking executors
// parked in slot admission).
func (wc *wireConn) die() {
	wc.kill.Do(func() {
		close(wc.quit)
		wc.cancel()
		wc.c.Close()
	})
}

// shard maps a session ID to its executor, so one session's frames stay
// strictly ordered while distinct sessions run in parallel.
func (wc *wireConn) shard(session []byte) int {
	if len(wc.execq) == 1 {
		return 0
	}
	return int(maphash.Bytes(wc.seed, session) % uint64(len(wc.execq)))
}

// reader is the connection's frame-decode loop. It owns the read buffer;
// everything a frame needs past the next read is copied into the job.
func (wc *wireConn) reader() {
	br := bufio.NewReaderSize(wc.c, 256<<10)
	var buf []byte
	var pr Predict
	maxBatch := wc.s.backend.Config().MaxBatch
	for {
		// The read fault site models a torn network: an injected error
		// abandons the connection exactly like a peer vanishing
		// mid-frame would.
		if wc.s.backend.FireFault(FaultRead) != nil {
			wc.die()
			return
		}
		if wc.s.cfg.IdleTimeout > 0 {
			wc.c.SetReadDeadline(time.Now().Add(wc.s.cfg.IdleTimeout))
		}
		body, nbuf, n, err := ReadFrame(br, buf)
		buf = nbuf
		if err != nil {
			wc.s.m.BytesRx.Add(uint64(n))
			wc.die()
			return
		}
		wc.s.m.FramesRx.Inc()
		wc.s.m.BytesRx.Add(uint64(n))
		typ, seq, payload, err := ParseHeader(body)
		if err != nil {
			wc.die()
			return
		}
		var j *job
		select {
		case j = <-wc.free:
		case <-wc.quit:
			return
		}
		j.typ, j.seq, j.start, j.nack = typ, seq, time.Now(), false
		switch typ {
		case FramePredict:
			pr.Branches = j.branches // decode into the job's storage
			if err := DecodePredict(payload, &pr, maxBatch); err != nil {
				// The stream itself is intact (CRC passed): NACK this
				// frame and keep the connection.
				wc.respondNack(j, serve.CodeBadRequest, err.Error(), false, 0)
				continue
			}
			j.session = append(j.session[:0], pr.Session...)
			j.pred = append(j.pred[:0], pr.Predictor...)
			j.batchNum = pr.BatchNum
			j.branches = pr.Branches
			wc.dispatch(j)
		case FrameClose:
			var cl Close
			if err := DecodeClose(payload, &cl); err != nil {
				wc.respondNack(j, serve.CodeBadRequest, err.Error(), false, 0)
				continue
			}
			j.session = append(j.session[:0], cl.Session...)
			j.branches = j.branches[:0]
			wc.dispatch(j)
		case FramePing:
			j.out = AppendPong(j.out[:0], seq)
			wc.send(j)
		default:
			// Anything else — response types, unknown types — is a
			// protocol violation that poisons framing trust.
			wc.die()
			return
		}
	}
}

// dispatch hands a decoded job to its session's executor.
func (wc *wireConn) dispatch(j *job) {
	select {
	case wc.execq[wc.shard(j.session)] <- j:
	case <-wc.quit:
	}
}

// send queues an encoded response for the writer.
func (wc *wireConn) send(j *job) {
	select {
	case wc.writeq <- j:
	case <-wc.quit:
	}
}

// respondNack encodes a NACK for j and queues it.
func (wc *wireConn) respondNack(j *job, code, msg string, retryable bool, retryAfter time.Duration) {
	j.nack = true
	j.out = AppendNack(j.out[:0], j.seq, code, msg, retryable, uint64(retryAfter.Milliseconds()))
	wc.send(j)
}

// executor runs one shard's jobs in FIFO order against the backend.
func (wc *wireConn) executor(q chan *job) {
	for j := range q {
		switch j.typ {
		case FramePredict:
			wc.execPredict(j)
		case FrameClose:
			wc.execClose(j)
		}
	}
}

func (wc *wireConn) execPredict(j *job) {
	s := wc.s
	if len(j.branches) == 0 {
		wc.respondNack(j, serve.CodeBadRequest, "empty batch", false, 0)
		return
	}
	if !s.backend.BeginBatch() {
		wc.respondNack(j, serve.CodeDraining, "server is draining", true, s.backend.RetryAfter())
		return
	}
	defer s.backend.EndBatch()

	// The binary protocol has no fingerprint field; wire sessions never
	// opt into frozen-state sharing.
	sess, created, restored, err := s.backend.AcquireSession(string(j.session), string(j.pred), "")
	if err != nil {
		code := serve.CodeBadRequest
		switch {
		case errors.Is(err, serve.ErrPredictorConflict):
			code = serve.CodePredictorConflict
		case errors.Is(err, serve.ErrUnknownPredictor):
			code = serve.CodeUnknownPredictor
		}
		wc.respondNack(j, code, err.Error(), false, 0)
		return
	}
	defer s.backend.ReleaseSessionRef(sess)

	depth := s.backend.PoolDepth()
	if aerr := s.backend.AcquireSlot(wc.ctx); aerr != nil {
		if errors.Is(aerr, serve.ErrOverloaded) {
			wc.respondNack(j, serve.CodeOverloaded,
				fmt.Sprintf("no worker slot; batch shed, retry safe (%d executing)", depth),
				true, s.backend.RetryAfter())
			return
		}
		// Connection died while queueing: nothing to answer.
		wc.free <- j
		return
	}
	if cap(j.preds) < len(j.branches) {
		j.preds = make([]core.Prediction, len(j.branches))
	}
	preds := j.preds[:len(j.branches)]
	status, snap := s.backend.ExecuteWireBatch(sess, j.batchNum, j.branches, preds, depth)
	s.backend.ReleaseSlot()
	s.backend.ReclaimStore(sess)

	switch status {
	case serve.WireOutOfOrder:
		wc.respondNack(j, CodeOutOfOrder,
			fmt.Sprintf("batch %d skips ahead of the session's applied cursor; replay the gap first", j.batchNum),
			true, 0)
		return
	case serve.WireDuplicate:
		j.out = AppendPredictOK(j.out[:0], j.seq, FlagDuplicate, sess.PredictorName, nil, nil, statsOf(snap))
	default:
		var flags byte
		if created {
			flags |= FlagCreated
		}
		if restored {
			flags |= FlagRestored
		}
		j.out = AppendPredictOK(j.out[:0], j.seq, flags, sess.PredictorName, j.branches, preds, statsOf(snap))
	}
	s.m.FrameLatency.ObserveDuration(time.Since(j.start))
	wc.send(j)
}

func (wc *wireConn) execClose(j *job) {
	fin, ok := wc.s.backend.CloseSession(string(j.session))
	if !ok {
		wc.respondNack(j, serve.CodeSessionNotFound, "no such session", false, 0)
		return
	}
	j.out = AppendCloseOK(j.out[:0], j.seq, fin.Predictor, WireStats{
		Instructions:  fin.Stats.Instructions,
		CondBranches:  fin.Stats.CondBranches,
		Mispredicts:   fin.Stats.Mispredicts,
		UncondCount:   fin.Stats.UncondCount,
		SecondLevelOK: fin.Stats.SecondLevelOK,
		Batches:       fin.Stats.Batches,
	})
	wc.send(j)
}

// statsOf converts a serve snapshot to the wire's counter block.
func statsOf(s serve.SessionStats) WireStats {
	return WireStats{
		Instructions:  s.Instructions,
		CondBranches:  s.CondBranches,
		Mispredicts:   s.Mispredicts,
		UncondCount:   s.UncondCount,
		SecondLevelOK: s.SecondLevelOK,
		Batches:       s.Batches,
	}
}

// writer serializes encoded frames onto the connection, flushing when
// the queue momentarily empties (response coalescing under pipelining),
// and recycles jobs back to the free list.
func (wc *wireConn) writer() {
	bw := bufio.NewWriterSize(wc.c, 256<<10)
	dead := false
	for j := range wc.writeq {
		if !dead {
			// The write fault site models the response path dying after
			// execution: the lost-ack case the sequencing contract
			// (duplicate detection on resend) exists to absorb.
			if wc.s.backend.FireFault(FaultWrite) != nil {
				wc.die()
				dead = true
			} else {
				if _, err := bw.Write(j.out); err != nil {
					wc.die()
					dead = true
				} else {
					wc.s.m.FramesTx.Inc()
					wc.s.m.BytesTx.Add(uint64(len(j.out)))
					if j.nack {
						wc.s.m.Nacks.Inc()
					}
					if len(wc.writeq) == 0 {
						if err := bw.Flush(); err != nil {
							wc.die()
							dead = true
						}
					}
				}
			}
		}
		// Recycle regardless: the free list's capacity equals the job
		// population, so this never blocks.
		wc.free <- j
	}
}
