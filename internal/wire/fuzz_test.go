package wire

import (
	"bytes"
	"testing"

	"llbpx/internal/core"
)

// FuzzWireDecode fuzzes every layer of the decode path: frame extraction
// (length prefix, CRC), header parsing, and each payload decoder. The
// properties under test are that hostile input — truncated frames,
// bit-flipped bodies, torn length prefixes, adversarial varints, absurd
// counts — always errors cleanly (never panics) and never makes the
// decoder allocate storage disproportionate to the bytes actually
// presented.
func FuzzWireDecode(f *testing.F) {
	// Seed with valid frames of every type, their bare payloads, and a
	// few deliberate corruptions for coverage of each rejection path.
	batch := []core.Branch{
		{PC: 0x1000, Kind: core.CondDirect, Target: 0x1040, Taken: true, InstrGap: 3},
		{PC: 0x1008, Kind: core.Call, Target: 0x8000, Taken: true, InstrGap: 2},
		{PC: 0x8040, Kind: core.Return, Taken: true, InstrGap: 5},
	}
	preds := []core.Prediction{{Taken: true}, {Taken: true}, {Taken: true}}
	st := WireStats{Instructions: 100, CondBranches: 1, Batches: 1}
	seeds := [][]byte{
		AppendPredict(nil, 1, "s", "tsl-8k", 1, batch),
		AppendPredictOK(nil, 1, FlagCreated, "tsl-8k", batch, preds, st),
		AppendNack(nil, 2, "overloaded", "busy", true, 1000),
		AppendClose(nil, 3, "s"),
		AppendCloseOK(nil, 3, "tsl-8k", st),
		AppendPing(nil, 4),
		AppendPong(nil, 4),
		{0xff, 0xff, 0xff, 0xff},                      // absurd length prefix
		{0x06, 0x00, 0x00, 0x00, 0x01},                // truncated body
		bytes.Repeat([]byte{0x80}, 32),                // non-terminating varint
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, // 10-byte varint
	}
	for _, s := range seeds {
		f.Add(s)
		if len(s) > 6 {
			f.Add(s[4:])            // body without length prefix
			f.Add(s[:len(s)/2])     // torn frame
			flipped := bytes.Clone(s)
			flipped[len(s)/2] ^= 0x10
			f.Add(flipped)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1+2: full frame stream. Only CRC-valid frames reach the
		// payload decoders in production, but decode them here too.
		if body, _, _, err := ReadFrame(bytes.NewReader(data), nil); err == nil {
			if _, _, payload, err := ParseHeader(body); err == nil {
				decodeEverything(t, payload, len(data))
			}
		}
		// Layer 3 direct: the CRC would reject almost all mutated inputs,
		// so also fuzz the payload decoders on the raw bytes — the server
		// equivalent of a corrupted frame whose CRC happened to collide.
		decodeEverything(t, data, len(data))
	})
}

// decodeEverything runs each payload decoder on the bytes and enforces
// the proportional-allocation property.
func decodeEverything(t *testing.T, payload []byte, inputLen int) {
	var pr Predict
	if err := DecodePredict(payload, &pr, 1<<16); err == nil {
		// A decoded batch exists only if the payload carried >= 3 bytes
		// per branch, so storage can never exceed the input size.
		if cap(pr.Branches) > inputLen {
			t.Fatalf("decoder allocated %d branches from %d input bytes", cap(pr.Branches), inputLen)
		}
		// Successful decodes must re-encode to a parseable frame (the
		// codec never emits something it cannot read back).
		re := AppendPredict(nil, 1, string(pr.Session), string(pr.Predictor), pr.BatchNum, pr.Branches)
		if _, _, _, err := ReadFrame(bytes.NewReader(re), nil); err != nil {
			t.Fatalf("re-encode of decoded batch unreadable: %v", err)
		}
	}
	var ok PredictOK
	if err := DecodePredictOK(payload, &ok, 1<<16); err == nil {
		if len(ok.Cond) > inputLen || ok.N > 8*inputLen {
			t.Fatalf("response decoder claims %d predictions from %d bytes", ok.N, inputLen)
		}
	}
	var nk Nack
	_ = DecodeNack(payload, &nk)
	var cl Close
	_ = DecodeClose(payload, &cl)
	var co CloseOK
	_ = DecodeCloseOK(payload, &co)
}
