package wire

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/serve"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/workload"
)

// testWireServer stands up a serve.Server with a wire listener on a
// loopback port and returns a connected client, tearing everything down
// with the test.
func testWireServer(t *testing.T, cfg serve.Config, wcfg Config) (*serve.Server, *Server, *Client) {
	t.Helper()
	srv := serve.New(cfg)
	ws := NewServer(srv, wcfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ws.Serve(ln)
	}()
	c := NewClient(ln.Addr().String())
	t.Cleanup(func() {
		c.Close()
		ws.Close()
		<-done
		srv.Close()
	})
	return srv, ws, c
}

// workloadBranches materializes the first instruction-budget worth of a
// preset workload's deterministic stream (mirroring sim.Run's stop rule).
func workloadBranches(t testing.TB, name string, instrBudget uint64) []core.Branch {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(prog)
	var out []core.Branch
	var instr uint64
	for instr < instrBudget {
		b, ok := gen.Next()
		if !ok {
			break
		}
		instr += b.Instructions()
		out = append(out, b)
	}
	return out
}

// localRun replays branches through a fresh predictor exactly like the
// server does, yielding the expected session statistics.
func localRun(t testing.TB, predictor string, branches []core.Branch, instrBudget uint64) sim.Result {
	t.Helper()
	p, err := serve.NewPredictor(predictor)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireStats asserts the wire stats equal the local sim's measured
// counters bit for bit, including derived MPKI.
func requireStats(t *testing.T, got WireStats, want stats.BranchStats) {
	t.Helper()
	if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
		got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
		got.SecondLevelOK != want.SecondLevelOK {
		t.Fatalf("wire stats diverge from local sim:\nwire  %+v\nlocal %+v", got, want)
	}
	gotBS := stats.BranchStats{Instructions: got.Instructions, CondBranches: got.CondBranches, Mispredicts: got.Mispredicts}
	if gotBS.MPKI() != want.MPKI() {
		t.Fatalf("wire MPKI %v != local %v", gotBS.MPKI(), want.MPKI())
	}
}

func TestWireCodecRoundTrip(t *testing.T) {
	batch := []core.Branch{
		{PC: 0x4000_1000, Kind: core.CondDirect, Target: 0x4000_1020, Taken: true, InstrGap: 3},
		{PC: 0x4000_1008, Kind: core.Call, Target: 0x4800_0000, Taken: true, InstrGap: 2},
		{PC: 0x4800_0040, Kind: core.Return, Taken: true, InstrGap: 9},
		{PC: 0x4000_1010, Kind: core.CondDirect, Target: 0x4000_0f00, Taken: false, InstrGap: 1},
		// PC going backwards exercises negative deltas.
		{PC: 0x3fff_ff00, Kind: core.CondDirect, Target: 0x4000_0000, Taken: true, InstrGap: 250},
	}
	frame := AppendPredict(nil, 42, "sess-α", "tsl-8k", 7, batch)
	body, _, n, err := ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Fatalf("consumed %d of %d frame bytes", n, len(frame))
	}
	typ, seq, payload, err := ParseHeader(body)
	if err != nil || typ != FramePredict || seq != 42 {
		t.Fatalf("header: typ=%#x seq=%d err=%v", typ, seq, err)
	}
	var pr Predict
	if err := DecodePredict(payload, &pr, 1024); err != nil {
		t.Fatal(err)
	}
	if string(pr.Session) != "sess-α" || string(pr.Predictor) != "tsl-8k" || pr.BatchNum != 7 {
		t.Fatalf("identity fields: %q %q %d", pr.Session, pr.Predictor, pr.BatchNum)
	}
	if len(pr.Branches) != len(batch) {
		t.Fatalf("decoded %d branches, want %d", len(pr.Branches), len(batch))
	}
	for i := range batch {
		got, want := pr.Branches[i], batch[i]
		// Targets of non-call/jump kinds still round-trip; only compare
		// the fields the encoding promises to carry.
		if got.PC != want.PC || got.Kind != want.Kind || got.Taken != want.Taken ||
			got.InstrGap != want.InstrGap || got.Target != want.Target {
			t.Fatalf("branch %d: got %+v want %+v", i, got, want)
		}
	}

	// PredictOK round-trip.
	preds := []core.Prediction{
		{Taken: true}, {Taken: true}, {Taken: true}, {Taken: true, FromSecondLevel: true}, {Taken: false},
	}
	st := WireStats{Instructions: 1000, CondBranches: 3, Mispredicts: 2, UncondCount: 2, SecondLevelOK: 1, Batches: 4}
	frame = AppendPredictOK(frame[:0], 42, FlagCreated, "tsl-8k", batch, preds, st)
	body, _, _, err = ReadFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	typ, seq, payload, err = ParseHeader(body)
	if err != nil || typ != FramePredictOK || seq != 42 {
		t.Fatalf("header: typ=%#x seq=%d err=%v", typ, seq, err)
	}
	var ok PredictOK
	if err := DecodePredictOK(payload, &ok, 1024); err != nil {
		t.Fatal(err)
	}
	if ok.Flags != FlagCreated || string(ok.Predictor) != "tsl-8k" || ok.N != len(batch) || ok.Stats != st {
		t.Fatalf("decoded response: %+v", ok)
	}
	for i := range batch {
		cond := batch[i].Kind.Conditional()
		if Bit(ok.Cond, i) != cond {
			t.Fatalf("branch %d: cond bit mismatch", i)
		}
		wantTaken, wantCorrect := true, true
		if cond {
			wantTaken = preds[i].Taken
			wantCorrect = preds[i].Taken == batch[i].Taken
		}
		if Bit(ok.Taken, i) != wantTaken || Bit(ok.Correct, i) != wantCorrect {
			t.Fatalf("branch %d: outcome bits taken=%v correct=%v", i, Bit(ok.Taken, i), Bit(ok.Correct, i))
		}
		if Bit(ok.Second, i) != (cond && preds[i].FromSecondLevel) {
			t.Fatalf("branch %d: second-level bit", i)
		}
	}

	// Nack round-trip.
	frame = AppendNack(frame[:0], 9, "overloaded", "no slot", true, 1500)
	body, _, _, _ = ReadFrame(bytes.NewReader(frame), nil)
	_, _, payload, _ = ParseHeader(body)
	var nk Nack
	if err := DecodeNack(payload, &nk); err != nil {
		t.Fatal(err)
	}
	if string(nk.Code) != "overloaded" || string(nk.Message) != "no slot" || !nk.Retryable || nk.RetryAfterMillis != 1500 {
		t.Fatalf("nack: %+v", nk)
	}

	// Close / CloseOK round-trip.
	frame = AppendClose(frame[:0], 3, "sess-α")
	body, _, _, _ = ReadFrame(bytes.NewReader(frame), nil)
	_, _, payload, _ = ParseHeader(body)
	var cl Close
	if err := DecodeClose(payload, &cl); err != nil || string(cl.Session) != "sess-α" {
		t.Fatalf("close: %+v err=%v", cl, err)
	}
	frame = AppendCloseOK(frame[:0], 3, "llbp-x", st)
	body, _, _, _ = ReadFrame(bytes.NewReader(frame), nil)
	_, _, payload, _ = ParseHeader(body)
	var co CloseOK
	if err := DecodeCloseOK(payload, &co); err != nil || string(co.Predictor) != "llbp-x" || co.Stats != st {
		t.Fatalf("closeok: %+v err=%v", co, err)
	}
}

// TestWirePredictOKRawRelay locks the property the gateway's wire relay
// depends on: re-encoding a decoded PredictOK with AppendPredictOKRaw
// (possibly under a new sequence number) produces a frame byte-identical
// to encoding the same response from scratch.
func TestWirePredictOKRawRelay(t *testing.T) {
	batch := []core.Branch{
		{PC: 0x4000_1000, Kind: core.CondDirect, Target: 0x4000_1020, Taken: true, InstrGap: 3},
		{PC: 0x4000_1008, Kind: core.Call, Target: 0x4800_0000, Taken: true, InstrGap: 2},
		{PC: 0x4800_0040, Kind: core.Return, Taken: true, InstrGap: 9},
		{PC: 0x4000_1010, Kind: core.CondDirect, Target: 0x4000_0f00, Taken: false, InstrGap: 1},
		{PC: 0x3fff_ff00, Kind: core.CondDirect, Target: 0x4000_0000, Taken: true, InstrGap: 250},
	}
	preds := []core.Prediction{
		{Taken: true}, {Taken: true}, {Taken: true}, {Taken: true, FromSecondLevel: true}, {Taken: false},
	}
	st := WireStats{Instructions: 1000, CondBranches: 3, Mispredicts: 2, UncondCount: 2, SecondLevelOK: 1, Batches: 4}
	want := AppendPredictOK(nil, 17, FlagCreated|FlagRestored, "tsl-8k", batch, preds, st)

	body, _, _, err := ReadFrame(bytes.NewReader(want), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := ParseHeader(body)
	if err != nil {
		t.Fatal(err)
	}
	var ok PredictOK
	if err := DecodePredictOK(payload, &ok, 1024); err != nil {
		t.Fatal(err)
	}

	// Same seq: byte-identical to the original frame.
	got := AppendPredictOKRaw(nil, 17, ok.Flags, ok.Predictor, ok.N, ok.Cond, ok.Taken, ok.Correct, ok.Second, ok.Stats)
	if !bytes.Equal(got, want) {
		t.Fatalf("raw relay not byte-identical:\n got % x\nwant % x", got, want)
	}

	// New seq (the gateway answers with the upstream's sequence number,
	// not the downstream's): still decodes to the identical response.
	relayed := AppendPredictOKRaw(nil, 900, ok.Flags, ok.Predictor, ok.N, ok.Cond, ok.Taken, ok.Correct, ok.Second, ok.Stats)
	body, _, _, err = ReadFrame(bytes.NewReader(relayed), nil)
	if err != nil {
		t.Fatal(err)
	}
	typ, seq, payload, err := ParseHeader(body)
	if err != nil || typ != FramePredictOK || seq != 900 {
		t.Fatalf("relayed header: typ=%#x seq=%d err=%v", typ, seq, err)
	}
	var ok2 PredictOK
	if err := DecodePredictOK(payload, &ok2, 1024); err != nil {
		t.Fatal(err)
	}
	if ok2.Flags != ok.Flags || string(ok2.Predictor) != string(ok.Predictor) || ok2.N != ok.N || ok2.Stats != ok.Stats ||
		!bytes.Equal(ok2.Cond, ok.Cond) || !bytes.Equal(ok2.Taken, ok.Taken) ||
		!bytes.Equal(ok2.Correct, ok.Correct) || !bytes.Equal(ok2.Second, ok.Second) {
		t.Fatalf("relayed response diverged: %+v vs %+v", ok2, ok)
	}
}

func TestWireCorruptFrameRejected(t *testing.T) {
	frame := AppendPing(nil, 1)
	for i := 4; i < len(frame); i++ { // skip the length prefix: CRC guards the body
		bad := bytes.Clone(frame)
		bad[i] ^= 0x40
		if _, _, _, err := ReadFrame(bytes.NewReader(bad), nil); !errors.Is(err, ErrMalformed) {
			t.Fatalf("bit flip at %d: err=%v, want ErrMalformed", i, err)
		}
	}
	// Truncations after a valid length prefix are stream corruption.
	for i := 5; i < len(frame); i++ {
		if _, _, _, err := ReadFrame(bytes.NewReader(frame[:i]), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err=%v, want ErrUnexpectedEOF", i, err)
		}
	}
}

// TestWireMatchesLocalSim is the fidelity property on the binary path: a
// pipelined stream feeding the exact branch sequence of a local sim.Run
// must report identical statistics, and the per-batch outcome vectors
// must re-derive those statistics exactly.
func TestWireMatchesLocalSim(t *testing.T) {
	const instrBudget = 120_000
	branches := workloadBranches(t, "nodeapp", instrBudget)
	local := localRun(t, "tsl-8k", branches, instrBudget)

	_, _, c := testWireServer(t, serve.Config{}, Config{})
	var fromBits stats.BranchStats
	st := c.Stream("fidelity", "tsl-8k", StreamConfig{Window: 8, OnBatch: func(ok *PredictOK) {
		for i := 0; i < ok.N; i++ {
			if Bit(ok.Cond, i) {
				fromBits.CondBranches++
				if !Bit(ok.Correct, i) {
					fromBits.Mispredicts++
				}
				if Bit(ok.Second, i) && Bit(ok.Correct, i) {
					fromBits.SecondLevelOK++
				}
			} else {
				fromBits.UncondCount++
			}
		}
	}})
	ctx := context.Background()
	for start := 0; start < len(branches); start += 1024 {
		if err := st.Send(ctx, branches[start:min(start+1024, len(branches))]); err != nil {
			t.Fatal(err)
		}
	}
	pred, final, err := st.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pred != "tsl-8k" {
		t.Fatalf("predictor %q", pred)
	}
	requireStats(t, final, local.Measured)
	if fromBits.CondBranches != final.CondBranches || fromBits.Mispredicts != final.Mispredicts ||
		fromBits.UncondCount != final.UncondCount || fromBits.SecondLevelOK != final.SecondLevelOK {
		t.Fatalf("outcome bit vectors disagree with stats:\nbits  %+v\nstats %+v", fromBits, final)
	}
}

// TestWireHTTPEquivalence drives the same serve.Server over both
// protocols at once and requires identical session statistics — the
// facade property: JSON and binary are two encodings of one service.
func TestWireHTTPEquivalence(t *testing.T) {
	const instrBudget = 80_000
	branches := workloadBranches(t, "kafka", instrBudget)

	srv, _, wc := testWireServer(t, serve.Config{}, Config{})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	hc := serve.NewClient(hs.URL, hs.Client())

	ctx := context.Background()
	var httpStats serve.SessionStats
	for start := 0; start < len(branches); start += 512 {
		resp, err := hc.Predict(ctx, "twin", "tsl-8k", branches[start:min(start+512, len(branches))])
		if err != nil {
			t.Fatal(err)
		}
		httpStats = resp.Stats
	}
	st := wc.Stream("twin-wire", "tsl-8k", StreamConfig{Window: 4})
	for start := 0; start < len(branches); start += 512 {
		if err := st.Send(ctx, branches[start:min(start+512, len(branches))]); err != nil {
			t.Fatal(err)
		}
	}
	_, wireStats, err := st.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wireStats.Instructions != httpStats.Instructions || wireStats.CondBranches != httpStats.CondBranches ||
		wireStats.Mispredicts != httpStats.Mispredicts || wireStats.UncondCount != httpStats.UncondCount ||
		wireStats.SecondLevelOK != httpStats.SecondLevelOK || wireStats.Batches != httpStats.Batches {
		t.Fatalf("protocols diverge:\nwire %+v\nhttp %+v", wireStats, httpStats)
	}
	// The HTTP session is still live and visible to the wire protocol —
	// one shard map serves both.
	if _, final, err := wc.CloseSession(ctx, "twin"); err != nil || final.Mispredicts != httpStats.Mispredicts {
		t.Fatalf("cross-protocol close: %+v err=%v", final, err)
	}
}

// TestWireSequencingContract exercises the exactly-once rules directly:
// duplicate batch numbers answer without re-executing, gaps NACK
// out_of_order, and batchNum 0 opts out.
func TestWireSequencingContract(t *testing.T) {
	_, _, c := testWireServer(t, serve.Config{}, Config{})
	ctx := context.Background()
	batch := workloadBranches(t, "kafka", 4_000)[:256]

	var ok PredictOK
	if err := c.Predict(ctx, "seq", "tsl-8k", 1, batch, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Flags&FlagCreated == 0 || ok.Flags&FlagDuplicate != 0 {
		t.Fatalf("first batch flags %#x", ok.Flags)
	}
	applied := ok.Stats

	// Resending batch 1 must not re-execute: same stats, duplicate flag.
	if err := c.Predict(ctx, "seq", "tsl-8k", 1, batch, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Flags&FlagDuplicate == 0 || ok.N != 0 {
		t.Fatalf("duplicate flags %#x n=%d", ok.Flags, ok.N)
	}
	if ok.Stats != applied {
		t.Fatalf("duplicate changed stats:\nbefore %+v\nafter  %+v", applied, ok.Stats)
	}

	// Skipping ahead must NACK out_of_order (retryable).
	err := c.Predict(ctx, "seq", "tsl-8k", 3, batch, &ok)
	var ne *NackError
	if !errors.As(err, &ne) || ne.Code != CodeOutOfOrder || !ne.Retryable {
		t.Fatalf("gap err = %v", err)
	}

	// Filling the gap applies both.
	for _, bn := range []uint64{2, 3} {
		if err := c.Predict(ctx, "seq", "tsl-8k", bn, batch, &ok); err != nil {
			t.Fatal(err)
		}
		if ok.Flags&FlagDuplicate != 0 {
			t.Fatalf("batch %d flagged duplicate", bn)
		}
	}
	if ok.Stats.Batches != 3 {
		t.Fatalf("applied %d batches, want 3", ok.Stats.Batches)
	}

	// batchNum 0 opts out of sequencing and always applies.
	if err := c.Predict(ctx, "seq", "tsl-8k", 0, batch, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Stats.Batches != 4 {
		t.Fatalf("unsequenced batch did not apply: %+v", ok.Stats)
	}
}

func TestWireNackCodes(t *testing.T) {
	srv, _, c := testWireServer(t, serve.Config{}, Config{})
	ctx := context.Background()
	batch := workloadBranches(t, "kafka", 2_000)[:64]
	var ok PredictOK
	var ne *NackError

	if err := c.Predict(ctx, "owner", "tsl-8k", 1, batch, &ok); err != nil {
		t.Fatal(err)
	}
	// Conflicting predictor on an existing session.
	err := c.Predict(ctx, "owner", "llbp-x", 2, batch, &ok)
	if !errors.As(err, &ne) || ne.Code != serve.CodePredictorConflict || ne.Retryable {
		t.Fatalf("conflict err = %v", err)
	}
	// Unknown predictor.
	err = c.Predict(ctx, "fresh", "no-such-predictor", 1, batch, &ok)
	if !errors.As(err, &ne) || ne.Code != serve.CodeUnknownPredictor {
		t.Fatalf("unknown predictor err = %v", err)
	}
	// Empty batch is refused at the wire layer.
	err = c.Predict(ctx, "fresh", "tsl-8k", 1, nil, &ok)
	if !errors.As(err, &ne) || ne.Code != serve.CodeBadRequest {
		t.Fatalf("empty batch err = %v", err)
	}
	// Closing a session that does not exist.
	if _, _, err := c.CloseSession(ctx, "never-created"); !errors.As(err, &ne) || ne.Code != serve.CodeSessionNotFound {
		t.Fatalf("close missing err = %v", err)
	}
	// A draining server NACKs with the draining code, retryable.
	srv.Drain()
	err = c.Predict(ctx, "owner", "", 2, batch, &ok)
	if !errors.As(err, &ne) || ne.Code != serve.CodeDraining || !ne.Retryable {
		t.Fatalf("draining err = %v", err)
	}
}

func TestWirePingAndMetrics(t *testing.T) {
	srv, _, c := testWireServer(t, serve.Config{}, Config{})
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	batch := workloadBranches(t, "kafka", 2_000)[:64]
	var ok PredictOK
	if err := c.Predict(ctx, "m", "tsl-8k", 1, batch, &ok); err != nil {
		t.Fatal(err)
	}
	var ne *NackError
	if err := c.Predict(ctx, "m", "llbp-x", 2, batch, &ok); !errors.As(err, &ne) {
		t.Fatal(err)
	}
	snap := srv.Stats()
	if snap.WireConns == 0 || snap.WireFramesRx < 3 || snap.WireFramesTx < 3 ||
		snap.WireBytesRx == 0 || snap.WireBytesTx == 0 || snap.WireNacks == 0 {
		t.Fatalf("wire metrics not accounted: %+v", snap)
	}
}

// TestWireRejectsBadHandshake: a peer with the wrong magic or version is
// hung up on before any frame is read.
func TestWireRejectsBadHandshake(t *testing.T) {
	_, _, c := testWireServer(t, serve.Config{}, Config{})
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte{'L', 'L', 'B', 'W', Version + 1, 0}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("expected EOF after bad preamble, got %v", err)
	}
}

// TestWireMalformedStreamDropsConn: a frame that fails CRC poisons
// framing trust, so the server drops the connection rather than answer.
func TestWireMalformedStreamDropsConn(t *testing.T) {
	_, _, c := testWireServer(t, serve.Config{}, Config{})
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write(preamble[:]); err != nil {
		t.Fatal(err)
	}
	var got [6]byte
	if _, err := io.ReadFull(nc, got[:]); err != nil || got != preamble {
		t.Fatalf("handshake: % x err=%v", got[:], err)
	}
	frame := AppendPing(nil, 1)
	frame[len(frame)-1] ^= 0xFF // corrupt the CRC
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("expected EOF after corrupt frame, got %v", err)
	}
}

// TestWireDecodeNackKeepsConn: a frame that passes CRC but fails payload
// validation is NACKed per frame; the connection survives.
func TestWireDecodeNackKeepsConn(t *testing.T) {
	_, _, c := testWireServer(t, serve.Config{MaxBatch: 128}, Config{})
	ctx := context.Background()
	batch := workloadBranches(t, "kafka", 8_000)[:256] // over MaxBatch
	var ok PredictOK
	var ne *NackError
	if err := c.Predict(ctx, "big", "tsl-8k", 1, batch, &ok); !errors.As(err, &ne) || ne.Code != serve.CodeBadRequest {
		t.Fatalf("oversized batch err = %v", err)
	}
	// Same connection still serves.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("connection did not survive decode NACK: %v", err)
	}
	if c.Reconnects() != 0 {
		t.Fatalf("client redialed (%d): server dropped the conn", c.Reconnects())
	}
}
