package experiments

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/energy"
	"llbpx/internal/llbp"
	"llbpx/internal/llbpx"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
)

func init() {
	register("fig15a", "Figure 15a: PS<->PB transfer bandwidth, LLBP vs LLBP-X", fig15a)
	register("fig15b", "Figure 15b: relative energy, LLBP-X vs LLBP", fig15b)
	register("fig16a", "Figure 16a: LLBP-X pattern store size sensitivity", fig16a)
	register("fig16b", "Figure 16b: baseline TAGE size sensitivity", fig16b)
}

// storeTraffic extracts pattern-store read/write transaction counts from a
// result's stats snapshot, handling both predictors' key prefixes.
func storeTraffic(r sim.Result) (reads, writes float64) {
	for _, prefix := range []string{"llbp", "llbpx"} {
		reads += r.Extra[prefix+".store.reads"]
		writes += r.Extra[prefix+".store.writes"]
	}
	return reads, writes
}

func fig15a(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	res, err := grid(sc, profiles, []func() core.Predictor{mkLLBP, mkLLBPX})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 15a: transfer bandwidth between pattern store and pattern buffer (bits/instruction)",
		"workload", "llbp-read", "llbp-write", "llbp-total", "llbpx-read", "llbpx-write", "llbpx-total")
	var tot [2]float64
	for i, prof := range profiles {
		row := []any{prof.Name}
		for j := 0; j < 2; j++ {
			rd, wr := storeTraffic(res[i][j])
			instr := float64(res[i][j].Measured.Instructions)
			if instr == 0 {
				instr = 1
			}
			rb := rd * llbp.TransferBits / instr
			wb := wr * llbp.TransferBits / instr
			tot[j] += rb + wb
			row = append(row, rb, wb, rb+wb)
		}
		t.AddRow(row...)
	}
	n := float64(len(profiles))
	t.AddRow("average", "", "", tot[0]/n, "", "", tot[1]/n)
	return &Result{
		ID:    "fig15a",
		Table: t,
		Notes: []string{
			"Paper: 288-bit transactions; reads dominate (writes ~a fifth); LLBP-X needs 9.9 bits/instruction",
			"vs LLBP's 10.6 — a 6.1% reduction from less duplication and more precise deep contexts.",
			"Target shape: llbpx-total <= llbp-total, reads >> writes.",
		},
	}, nil
}

func fig15b(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	res, err := grid(sc, profiles, []func() core.Predictor{mkLLBP, mkLLBPX})
	if err != nil {
		return nil, err
	}
	contexts := llbp.Default().NumContexts
	ps := energy.PatternStore(contexts)
	cd := energy.ContextDirectory(contexts)
	pb := energy.PatternBuffer()
	ctt := energy.CTT(llbpx.Default().CTTEntries)

	t := stats.NewTable("Figure 15b: energy of LLBP-X structures relative to LLBP (access-weighted model)",
		"workload", "llbp-energy", "llbpx-energy", "llbpx/llbp", "ctt-share%")
	var relSum float64
	for i, prof := range profiles {
		var e [2]float64
		var cttE float64
		for j := 0; j < 2; j++ {
			r := res[i][j]
			rd, wr := storeTraffic(r)
			accesses := []energy.Access{
				// The PB is looked up for every prediction.
				{Structure: pb, Count: r.Measured.CondBranches},
				// CD (and for LLBP-X the CTT) consult on unconditional
				// branches.
				{Structure: cd, Count: r.Measured.UncondCount},
				// The pattern store is touched on fills and writebacks.
				{Structure: ps, Count: uint64(rd + wr)},
			}
			if j == 1 {
				c := energy.Access{Structure: ctt, Count: r.Measured.UncondCount}
				cttE = energy.AccessEnergy(ctt) * float64(c.Count)
				accesses = append(accesses, c)
			}
			e[j] = energy.Total(accesses)
		}
		rel := e[1] / e[0]
		relSum += rel
		t.AddRow(prof.Name, e[0], e[1], rel, 100*cttE/e[1])
	}
	t.AddRow("average", "", "", relSum/float64(len(profiles)), "")
	return &Result{
		ID:    "fig15b",
		Table: t,
		Notes: []string{
			"Paper (CACTI 7.0 @22nm): LLBP-X saves 5.4% pattern-store read energy but the new CTT costs 5.2%,",
			"for a net +1.5% energy vs LLBP. Substitution: CACTI -> analytical sqrt-capacity SRAM model;",
			"only the relative comparison is meaningful. Target shape: ratio near 1 with a small CTT-driven increase.",
		},
	}, nil
}

func fig16a(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	// The paper sweeps 8K..128K contexts; this reproduction's synthetic
	// workloads have far smaller context working sets (hundreds to a few
	// thousand live contexts), so the sweep extends below the working set
	// where capacity actually binds, keeping the paper's question ("does
	// accuracy scale with pattern store size?") answerable.
	sweep := []int{256, 512, 1024, 2048, 4096, 14 * 1024}
	makers := []func() core.Predictor{mk64K}
	for _, contexts := range sweep {
		contexts := contexts
		makers = append(makers, func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = fmt.Sprintf("llbp-x-ctx%d", contexts)
			c.Base.NumContexts = contexts
			// The sweep uses a zero-latency, fully associative directory
			// (the paper's Section VII-G methodology).
			c.Base.LatencyBranches = 0
			c.Base.CDAssoc = contexts
			return llbpx.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 16a: LLBP-X pattern store size sensitivity (avg MPKI reduction over 64K TSL, %)",
		"contexts", "reduction-%")
	for j, contexts := range sweep {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		t.AddRow(contexts, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "fig16a",
		Table: t,
		Notes: []string{
			"Paper: MPKI reduction grows monotonically from 10.5% at 8K contexts to 17.6% at 128K.",
			"This reproduction's context working sets are smaller, so the sweep starts at 256 contexts; the",
			"target shape (non-decreasing reduction with pattern store size, saturating once the working set fits)",
			"is unchanged.",
		},
	}, nil
}

func fig16b(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	bases := []tage.Config{tage.Config8K(), tage.Config16K(), tage.Config32K(), tage.Config64K()}
	var makers []func() core.Predictor
	for _, b := range bases {
		b := b
		makers = append(makers, func() core.Predictor { return tage.MustNew(b) })
		makers = append(makers, func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = "llbp-x-on-" + b.Name
			c.Base.TSL = b
			c.Base.LatencyBranches = 0
			return llbpx.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 16b: baseline TAGE size sensitivity (avg MPKI reduction of LLBP-X over its own baseline, %)",
		"baseline", "reduction-%")
	for j, b := range bases {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][2*j].MPKI(), res[i][2*j+1].MPKI())
		}
		t.AddRow(b.Name, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "fig16b",
		Table: t,
		Notes: []string{
			"Paper: with a fixed 14K-context LLBP-X, effectiveness holds as the baseline shrinks (e.g. 2.6% reduction",
			"on a 4x smaller 16K TSL) — LLBP-X can compensate for smaller, faster first-level predictors.",
			"Target shape: positive reductions across baseline sizes.",
		},
	}, nil
}
