package experiments

import (
	"llbpx/internal/core"
	"llbpx/internal/llbpx"
	"llbpx/internal/pipeline"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
	"llbpx/internal/workload"
)

func init() {
	register("fig1", "Figure 1: MPKI vs branch-stall share on a narrow vs aggressive core", fig1)
	register("fig13", "Figure 13: speedup over 64K TSL (timing model)", fig13)
	register("fig14a", "Figure 14a: prefetch timeliness with and without false-path prefetches", fig14a)
	register("fig14b", "Figure 14b: overriding front end, LLBP-X vs 128K TSL speedup", fig14b)
}

// gem5Workloads mirrors the paper's performance-evaluation set: the four
// Google traces are trace-only and excluded from timing studies.
func gem5Workloads(sc Scale) ([]workload.Profile, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	excluded := map[string]bool{"charlie": true, "delta": true, "merced": true, "whiskey": true}
	var out []workload.Profile
	for _, p := range profiles {
		if !excluded[p.Name] {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = profiles
	}
	return out, nil
}

func activity(r sim.Result) pipeline.Activity {
	return pipeline.Activity{
		Instructions: r.Measured.Instructions,
		Mispredicts:  r.Measured.Mispredicts,
		Overrides:    r.Measured.Overrides,
	}
}

func fig1(sc Scale) (*Result, error) {
	profiles, err := gem5Workloads(sc)
	if err != nil {
		return nil, err
	}
	if len(profiles) > 3 {
		profiles = profiles[:3] // the paper characterizes three workloads
	}
	// The older core pairs with a smaller predictor, the aggressive core
	// with the 64K baseline — mirroring generational growth.
	mk32K := func() core.Predictor { return tage.MustNew(tage.Config32K()) }
	res, err := grid(sc, profiles, []func() core.Predictor{mk32K, mk64K})
	if err != nil {
		return nil, err
	}
	oldCore, newCore := pipeline.SkylakeLike(), pipeline.SPRLike()
	t := stats.NewTable("Figure 1: branch MPKI and mispredict-stall share, old vs aggressive core",
		"workload", "mpki-old", "mpki-new", "stall%-old", "stall%-new")
	for i, prof := range profiles {
		ro := oldCore.Run(activity(res[i][0]))
		rn := newCore.Run(activity(res[i][1]))
		t.AddRow(prof.Name,
			res[i][0].MPKI(), res[i][1].MPKI(),
			100*ro.BranchStallShare, 100*rn.BranchStallShare)
	}
	return &Result{
		ID:    "fig1",
		Table: t,
		Notes: []string{
			"Paper (Skylake vs Sapphire Rapids hardware counters): the newer core has 15-60% fewer mispredictions",
			"yet 7-45% *higher* share of stall cycles caused by them — mispredict cost cannot be masked by aggression.",
			"Substitution: hardware counters -> cycle-approximate model with a narrow (skylake-like, 32K TSL) and",
			"an aggressive (spr-like, 64K TSL) configuration. Target shape: mpki-new < mpki-old, stall%-new > stall%-old.",
		},
	}, nil
}

func fig13(sc Scale) (*Result, error) {
	profiles, err := gem5Workloads(sc)
	if err != nil {
		return nil, err
	}
	makers := []func() core.Predictor{mk64K, mkLLBP, mkLLBPX, mk512K}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	coreCfg := pipeline.Server()
	coreCfg.OverridePenalty = 0 // Figure 13 models a non-overriding front end
	t := stats.NewTable("Figure 13: speedup over 64K TSL (cycle-approximate model)",
		"workload", "llbp", "llbp-x", "512k-tsl")
	var sp [3][]float64
	for i, prof := range profiles {
		base := coreCfg.Run(activity(res[i][0]))
		row := []any{prof.Name}
		for j := 1; j < len(makers); j++ {
			s := pipeline.Speedup(base, coreCfg.Run(activity(res[i][j])))
			sp[j-1] = append(sp[j-1], s)
			row = append(row, s)
		}
		t.AddRow(row...)
	}
	t.AddRow("geomean", stats.GeoMean(sp[0]), stats.GeoMean(sp[1]), stats.GeoMean(sp[2]))
	return &Result{
		ID:    "fig13",
		Table: t,
		Notes: []string{
			"Paper (gem5): LLBP-X 1% average speedup (0.08-2.7%), LLBP 0.71% (0.02-2.2%), ideal 512K TSL 2.4%.",
			"Substitution: gem5 -> analytic core model; the Google traces are excluded as in the paper.",
			"Target shape: speedup(llbp-x) >= speedup(llbp), both well below 512k.",
		},
	}, nil
}

func fig14a(sc Scale) (*Result, error) {
	profiles, err := gem5Workloads(sc)
	if err != nil {
		return nil, err
	}
	mkFP := func() core.Predictor {
		c := llbpx.Default()
		c.Base.Name = "llbp-x-fp"
		c.ModelFalsePath = true
		return llbpx.MustNew(c)
	}
	res, err := grid(sc, profiles, []func() core.Predictor{mkFP, mkLLBPX})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 14a: prefetch timeliness, with (fp) and without (nofp) false-path prefetches",
		"workload", "ontime%-fp", "late%-fp", "unused%-fp", "ontime%-nofp", "unused%-nofp", "mpki-fp", "mpki-nofp")
	var fills [2]float64
	for i, prof := range profiles {
		row := []any{prof.Name}
		for j := 0; j < 2; j++ {
			ex := res[i][j].Extra
			issued := ex["llbpx.prefetch.issued"]
			fills[j] += issued
			if issued == 0 {
				issued = 1
			}
			if j == 0 {
				row = append(row,
					100*ex["llbpx.prefetch.ontime"]/issued,
					100*ex["llbpx.prefetch.late"]/issued,
					100*ex["llbpx.prefetch.unused"]/issued)
			} else {
				row = append(row,
					100*ex["llbpx.prefetch.ontime"]/issued,
					100*ex["llbpx.prefetch.unused"]/issued)
			}
		}
		row = append(row, res[i][0].MPKI(), res[i][1].MPKI())
		t.AddRow(row...)
	}
	return &Result{
		ID:    "fig14a",
		Table: t,
		Notes: []string{
			"Paper: 84% of prefetches arrive on time; ~40% are never used. Dropping false-path prefetches removes",
			"56% of the over-prefetches but costs 8% coverage and 1.4% accuracy.",
			"Substitution: this commit-order simulator cannot execute real wrong paths; false-path fetches are modeled",
			"as re-requests of recently evicted prefetch contexts in each misprediction's shadow. That reproduces the",
			"over-prefetch side of the trade-off (unused% rises with fp on) but NOT the paper's coverage/accuracy benefit,",
			"which needs execution-driven wrong-path reconvergence — a documented fidelity limit.",
		},
	}, nil
}

func fig14b(sc Scale) (*Result, error) {
	profiles, err := gem5Workloads(sc)
	if err != nil {
		return nil, err
	}
	mk128K := func() core.Predictor { return tage.MustNew(tage.Config128K()) }
	res, err := grid(sc, profiles, []func() core.Predictor{mk64K, mk128K, mkLLBPX})
	if err != nil {
		return nil, err
	}
	coreCfg := pipeline.Server() // 3-cycle override penalty
	t := stats.NewTable("Figure 14b: overriding front end (3-cycle redirect), speedup over 64K TSL",
		"workload", "128k-tsl", "llbp-x")
	var sp [2][]float64
	for i, prof := range profiles {
		base := coreCfg.Run(activity(res[i][0]))
		s128 := pipeline.Speedup(base, coreCfg.Run(activity(res[i][1])))
		sx := pipeline.Speedup(base, coreCfg.Run(activity(res[i][2])))
		sp[0] = append(sp[0], s128)
		sp[1] = append(sp[1], sx)
		t.AddRow(prof.Name, s128, sx)
	}
	t.AddRow("geomean", stats.GeoMean(sp[0]), stats.GeoMean(sp[1]))
	return &Result{
		ID:    "fig14b",
		Table: t,
		Notes: []string{
			"Paper: under a 3-cycle overriding scheme a 128K TSL gains 0.6% while LLBP-X gains 1.4% over 64K TSL,",
			"because LLBP-X's pattern buffer provides its prediction in the fast (single-cycle) stage.",
			"Target shape: llbp-x >= 128k-tsl under overriding.",
		},
	}, nil
}
