package experiments

import (
	"llbpx/internal/core"
	"llbpx/internal/llbpx"
	"llbpx/internal/pipeline"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
)

func init() {
	register("small-tsl",
		"Future work (Section D.2): small first-level TSL + LLBP-X under an overriding front end", smallTSL)
}

// smallTSL evaluates the trade-off the paper defers to future work: a
// smaller, faster first-level TAGE loses accuracy but cheapens overrides;
// LLBP-X's second level can win the accuracy back. Each baseline size is
// paired with an override penalty reflecting its access time (a smaller
// structure redirects earlier), and every configuration is timed on the
// overriding core model.
func smallTSL(sc Scale) (*Result, error) {
	profiles, err := gem5Workloads(sc)
	if err != nil {
		return nil, err
	}
	type point struct {
		label   string
		mk      func() core.Predictor
		penalty float64 // override redirect cost for this first level
	}
	withX := func(name string, base tage.Config) func() core.Predictor {
		return func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = name
			c.Base.TSL = base
			return llbpx.MustNew(c)
		}
	}
	points := []point{
		{"tsl-64k", mk64K, 3},
		{"tsl-64k+llbp-x", withX("llbp-x-64k", tage.Config64K()), 3},
		{"tsl-32k", func() core.Predictor { return tage.MustNew(tage.Config32K()) }, 2},
		{"tsl-32k+llbp-x", withX("llbp-x-32k", tage.Config32K()), 2},
		{"tsl-16k", func() core.Predictor { return tage.MustNew(tage.Config16K()) }, 1},
		{"tsl-16k+llbp-x", withX("llbp-x-16k", tage.Config16K()), 1},
	}
	makers := make([]func() core.Predictor, len(points))
	for i := range points {
		makers[i] = points[i].mk
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Future work: smaller first level + LLBP-X under overriding (vs 64K TSL, 3-cycle redirects)",
		"configuration", "avg-mpki", "geomean-speedup")
	// Baseline cycles: 64K TSL with its 3-cycle override penalty.
	baseCore := pipeline.Server()
	baseCore.OverridePenalty = points[0].penalty
	var baseRes []pipeline.Result
	for i := range profiles {
		baseRes = append(baseRes, baseCore.Run(activity(res[i][0])))
	}
	for j, pt := range points {
		coreCfg := pipeline.Server()
		coreCfg.OverridePenalty = pt.penalty
		var mpki, sp []float64
		for i := range profiles {
			mpki = append(mpki, res[i][j].MPKI())
			sp = append(sp, pipeline.Speedup(baseRes[i], coreCfg.Run(activity(res[i][j]))))
		}
		t.AddRow(pt.label, stats.Mean(mpki), stats.GeoMean(sp))
	}
	return &Result{
		ID:    "small-tsl",
		Table: t,
		Notes: []string{
			"Paper (Section D.2, deferred to future work): LLBP-X could complement a smaller TAGE, keeping accuracy",
			"while cutting the overriding penalty a big first level pays. Expected shape: each +llbp-x row recovers",
			"part of its shrunken baseline's MPKI (compare Figure 16b), and cheaper redirects offset the remaining",
			"accuracy loss in the speedup column.",
		},
	}, nil
}
