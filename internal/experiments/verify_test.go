package experiments

import (
	"testing"

	"llbpx/internal/stats"
)

// mkResult builds a synthetic experiment result for checker tests.
func mkResult(id string, headers []string, rows ...[]any) *Result {
	t := stats.NewTable(id, headers...)
	for _, r := range rows {
		t.AddRow(r...)
	}
	return &Result{ID: id, Table: t}
}

func TestVerifyUnknownIDPasses(t *testing.T) {
	res := mkResult("fig9", []string{"a"}, []any{"x"})
	if v := Verify(res); len(v) != 0 {
		t.Fatalf("experiments without checks must pass: %v", v)
	}
	if HasTrendCheck("fig9") {
		t.Fatal("fig9 has no registered check")
	}
	if !HasTrendCheck("fig4") {
		t.Fatal("fig4 must have a check")
	}
}

func TestCheckTable1(t *testing.T) {
	good := mkResult("table1", []string{"workload", "mpki", "paper-mpki"},
		[]any{"nodeapp", 4.4, 4.43},
		[]any{"average", 2.9, 2.92})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("calibrated table must pass: %v", v)
	}
	bad := mkResult("table1", []string{"workload", "mpki", "paper-mpki"},
		[]any{"nodeapp", 9.0, 4.43},
		[]any{"average", 9.0, 2.92})
	if v := Verify(bad); len(v) == 0 {
		t.Fatal("3x drift must fail")
	}
}

func TestCheckFig4(t *testing.T) {
	good := mkResult("fig4", []string{"workload", "64k-mpki", "llbp", "llbp-0lat", "512k-tsl", "inf-tsl"},
		[]any{"nodeapp", 4.4, 0.97, 0.97, 0.60, 0.58},
		[]any{"average", "", 0.99, 0.99, 0.70, 0.69})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("correct ordering must pass: %v", v)
	}
	bad := mkResult("fig4", []string{"workload", "64k-mpki", "llbp", "llbp-0lat", "512k-tsl", "inf-tsl"},
		[]any{"average", "", 1.05, 1.05, 0.70, 0.80})
	v := Verify(bad)
	if len(v) < 2 {
		t.Fatalf("regressing LLBP and inverted inf/512k must both fail: %v", v)
	}
}

func TestCheckFig1(t *testing.T) {
	good := mkResult("fig1", []string{"workload", "mpki-old", "mpki-new", "stall%-old", "stall%-new"},
		[]any{"nodeapp", 5.0, 4.0, 20.0, 25.0})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("figure-1 mechanism must pass: %v", v)
	}
	bad := mkResult("fig1", []string{"workload", "mpki-old", "mpki-new", "stall%-old", "stall%-new"},
		[]any{"nodeapp", 4.0, 5.0, 25.0, 20.0})
	if v := Verify(bad); len(v) != 2 {
		t.Fatalf("both inversions must be reported: %v", v)
	}
}

func TestCheckFig7(t *testing.T) {
	good := mkResult("fig7", []string{"context group (by #useful patterns)", "mean of avg-hist-len (bits)"},
		[]any{"top 1% (most patterns)", 90.0},
		[]any{"top 10%", 70.0},
		[]any{"middle 40-60%", 30.0},
		[]any{"bottom 50% (fewest patterns)", 15.0})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("monotone history skew must pass: %v", v)
	}
	bad := mkResult("fig7", []string{"g", "v"},
		[]any{"top 1% (most patterns)", 15.0},
		[]any{"bottom 50%", 70.0})
	if v := Verify(bad); len(v) == 0 {
		t.Fatal("inverted skew must fail")
	}
}

func TestCheckFig12(t *testing.T) {
	good := mkResult("fig12", []string{"workload", "64k-mpki", "llbp", "llbp-x", "llbp-x-optw", "512k-tsl"},
		[]any{"average", "", 1.0, 1.2, 1.2, 30.0})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("expected pass: %v", v)
	}
	bad := mkResult("fig12", []string{"workload", "64k-mpki", "llbp", "llbp-x", "llbp-x-optw", "512k-tsl"},
		[]any{"average", "", 2.0, 0.5, 0.5, 5.0})
	if v := Verify(bad); len(v) < 2 {
		t.Fatalf("llbpx regression and lost 512k headroom must fail: %v", v)
	}
}

func TestCheckFig16aMonotone(t *testing.T) {
	good := mkResult("fig16a", []string{"contexts", "reduction-%"},
		[]any{"8K", 1.0}, []any{"14K", 1.2}, []any{"32K", 1.5}, []any{"128K", 2.0})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("monotone sweep must pass: %v", v)
	}
	bad := mkResult("fig16a", []string{"contexts", "reduction-%"},
		[]any{"8K", 2.0}, []any{"14K", 0.2})
	if v := Verify(bad); len(v) == 0 {
		t.Fatal("collapsing sweep must fail")
	}
}

func TestCheckSweepW(t *testing.T) {
	good := mkResult("sweep-w", []string{"w", "reduction-%"},
		[]any{2, 2.0}, []any{8, 1.0}, []any{64, -1.0})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("shallow-beats-deep must pass: %v", v)
	}
	bad := mkResult("sweep-w", []string{"w", "reduction-%"},
		[]any{2, -1.0}, []any{64, 2.0})
	if v := Verify(bad); len(v) == 0 {
		t.Fatal("deep-beats-shallow must fail")
	}
}

func TestCheckFig15b(t *testing.T) {
	good := mkResult("fig15b", []string{"workload", "llbp-energy", "llbpx-energy", "llbpx/llbp", "ctt-share%"},
		[]any{"nodeapp", 100.0, 101.5, 1.015, 5.0},
		[]any{"average", "", "", 1.015, ""})
	if v := Verify(good); len(v) != 0 {
		t.Fatalf("near-parity energy must pass: %v", v)
	}
	bad := mkResult("fig15b", []string{"workload", "llbp-energy", "llbpx-energy", "llbpx/llbp", "ctt-share%"},
		[]any{"average", "", "", 2.5, ""})
	if v := Verify(bad); len(v) == 0 {
		t.Fatal("2.5x energy must fail")
	}
}

func TestVerifyOnRealQuickRun(t *testing.T) {
	// End to end: a real (tiny) fig4 run must satisfy its own trend check.
	// The infinite TAGE's alias-free tables train from scratch, so the
	// run needs enough warmup for the asymptotic ordering to appear.
	res, err := Run("fig4", Scale{
		WarmupInstr:  1_600_000,
		MeasureInstr: 2_000_000,
		Workloads:    []string{"nodeapp", "charlie"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := Verify(res); len(v) != 0 {
		t.Fatalf("real fig4 run violates its trend contract: %v", v)
	}
}
