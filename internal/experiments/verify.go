package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Trend verification: every experiment carries a machine-checkable
// statement of the paper's qualitative result — the orderings and signs
// the reproduction must preserve even where absolute magnitudes differ.
// cmd/experiments -verify runs them; EXPERIMENTS.md cites them.

// Verify checks the experiment result against its registered trend
// assertions, returning a list of violations (empty = all trends hold).
func Verify(res *Result) []string {
	check, ok := trendChecks[res.ID]
	if !ok {
		return nil
	}
	return check(res)
}

// HasTrendCheck reports whether an experiment has trend assertions.
func HasTrendCheck(id string) bool {
	_, ok := trendChecks[id]
	return ok
}

var trendChecks = map[string]func(*Result) []string{
	"table1":  checkTable1,
	"fig1":    checkFig1,
	"fig4":    checkFig4,
	"fig5":    checkFig5,
	"fig6":    checkFig6,
	"fig7":    checkFig7,
	"fig8":    checkFig8,
	"fig12":   checkFig12,
	"fig13":   checkFig13,
	"fig14b":  checkFig14b,
	"fig15a":  checkFig15a,
	"fig15b":  checkFig15b,
	"fig16a":  checkFig16a,
	"fig16b":  checkFig16b,
	"sweep-w":   checkSweepW,
	"diversity": checkDiversity,
}

// cell parses the numeric table cell at (row, col); ok=false for labels.
func cell(res *Result, row, col int) (float64, bool) {
	if row < 0 || row >= res.Table.NumRows() {
		return 0, false
	}
	cells := res.Table.Row(row)
	if col < 0 || col >= len(cells) {
		return 0, false
	}
	v, err := strconv.ParseFloat(cells[col], 64)
	return v, err == nil
}

// lastRow returns the index of the summary (average/geomean) row.
func lastRow(res *Result) int { return res.Table.NumRows() - 1 }

// findRow returns the first row whose label column contains substr.
func findRow(res *Result, substr string) int {
	for i := 0; i < res.Table.NumRows(); i++ {
		if strings.Contains(res.Table.Row(i)[0], substr) {
			return i
		}
	}
	return -1
}

func checkTable1(res *Result) []string {
	var v []string
	avg, ok := cell(res, lastRow(res), 1)
	paper, ok2 := cell(res, lastRow(res), 2)
	if !ok || !ok2 {
		return []string{"table1: summary row unreadable"}
	}
	// Calibration contract: average MPKI within 25% of the paper's.
	if avg < paper*0.75 || avg > paper*1.25 {
		v = append(v, fmt.Sprintf("table1: average MPKI %.3f drifted beyond 25%% of the paper's %.3f", avg, paper))
	}
	return v
}

func checkFig1(res *Result) []string {
	var v []string
	for i := 0; i < res.Table.NumRows(); i++ {
		mold, ok1 := cell(res, i, 1)
		mnew, ok2 := cell(res, i, 2)
		sold, ok3 := cell(res, i, 3)
		snew, ok4 := cell(res, i, 4)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		if mnew >= mold {
			v = append(v, fmt.Sprintf("fig1 row %d: aggressive core should have lower MPKI (%.3f vs %.3f)", i, mnew, mold))
		}
		if snew <= sold {
			v = append(v, fmt.Sprintf("fig1 row %d: stall share should rise on the aggressive core (%.2f vs %.2f)", i, snew, sold))
		}
	}
	return v
}

func checkFig4(res *Result) []string {
	var v []string
	r := lastRow(res)
	llbp, _ := cell(res, r, 2)
	k512, _ := cell(res, r, 4)
	inf, _ := cell(res, r, 5)
	if llbp >= 1.005 {
		v = append(v, fmt.Sprintf("fig4: LLBP average normalized MPKI %.4f should be below 1", llbp))
	}
	if k512 >= llbp {
		v = append(v, "fig4: 512K TSL should clearly beat LLBP")
	}
	// The alias-free infinite mode trains slower than a warm 512K at
	// small instruction budgets, so allow a little slack.
	if inf > k512+0.02 {
		v = append(v, "fig4: Inf TSL should not lose to 512K")
	}
	return v
}

func checkFig5(res *Result) []string {
	var v []string
	// Every constraint-removal step must be a (weak) improvement, and the
	// final no-context configuration clearly the best.
	prev := 1.0
	for i := 0; i < res.Table.NumRows(); i++ {
		norm, ok := cell(res, i, 1)
		if !ok {
			continue
		}
		if norm > prev+0.01 {
			v = append(v, fmt.Sprintf("fig5: step %q regressed (%.4f after %.4f)", res.Table.Row(i)[0], norm, prev))
		}
		prev = norm
	}
	if final, ok := cell(res, lastRow(res), 1); ok && final > 0.95 {
		v = append(v, fmt.Sprintf("fig5: removing all constraints should help substantially (final %.4f)", final))
	}
	return v
}

func checkFig6(res *Result) []string {
	var v []string
	// The skew contract: a visible fraction of contexts overflows the
	// 16-pattern sets while the majority sits at <= 8.
	if row := findRow(res, "exceeding 16"); row >= 0 {
		if over, ok := cell(res, row, 1); ok && (over <= 0 || over > 60) {
			v = append(v, fmt.Sprintf("fig6: %.1f%% of contexts overflow — skew lost", over))
		}
	}
	if row := findRow(res, "<= 8 useful"); row >= 0 {
		if under, ok := cell(res, row, 1); ok && under < 40 {
			v = append(v, fmt.Sprintf("fig6: only %.1f%% of contexts are small — underutilization lost", under))
		}
	}
	return v
}

func checkFig7(res *Result) []string {
	top, ok1 := cell(res, findRow(res, "top 1%"), 1)
	bottom, ok2 := cell(res, findRow(res, "bottom 50%"), 1)
	if !ok1 || !ok2 {
		return []string{"fig7: group rows unreadable"}
	}
	// The hottest contexts must hold the longest histories. The paper's
	// correlation is strong (112 vs 17 bits); this reproduction's is weak
	// (its H2P history demand is compressed), so only the sign is
	// asserted, at the extreme tail.
	if top <= bottom {
		return []string{fmt.Sprintf("fig7: hottest contexts should hold longer histories (top1%% %.1f vs bottom %.1f bits)", top, bottom)}
	}
	return nil
}

func checkFig8(res *Result) []string {
	var v []string
	// Duplication must grow with W at short history lengths.
	shortRows := 0
	holds := 0
	for i := 0; i < res.Table.NumRows(); i++ {
		length, ok := cell(res, i, 0)
		if !ok || length > 40 {
			continue
		}
		w2, ok1 := cell(res, i, 1)
		w64, ok3 := cell(res, i, 3)
		if !ok1 || !ok3 {
			continue
		}
		shortRows++
		if w64 >= w2 {
			holds++
		}
	}
	if shortRows > 0 && holds*2 < shortRows {
		v = append(v, fmt.Sprintf("fig8: duplication should grow with W at short lengths (%d/%d rows hold)", holds, shortRows))
	}
	return v
}

func checkFig12(res *Result) []string {
	var v []string
	r := lastRow(res)
	llbp, _ := cell(res, r, 2)
	llbpx, _ := cell(res, r, 3)
	k512, _ := cell(res, r, 5)
	if llbpx < llbp-0.35 {
		v = append(v, fmt.Sprintf("fig12: LLBP-X average (%.2f%%) clearly below LLBP (%.2f%%)", llbpx, llbp))
	}
	if k512 < 10 {
		v = append(v, fmt.Sprintf("fig12: 512K TSL average %.2f%% lost the capacity headroom", k512))
	}
	if llbpx > k512 {
		v = append(v, "fig12: LLBP-X cannot beat the idealized 512K TSL")
	}
	return v
}

func checkFig13(res *Result) []string {
	var v []string
	r := lastRow(res)
	llbp, _ := cell(res, r, 1)
	llbpx, _ := cell(res, r, 2)
	k512, _ := cell(res, r, 3)
	if k512 < llbp || k512 < llbpx {
		v = append(v, "fig13: ideal 512K must bound the hierarchical designs")
	}
	if llbpx < 0.999 {
		v = append(v, fmt.Sprintf("fig13: LLBP-X geomean speedup %.4f regressed below 1", llbpx))
	}
	return v
}

func checkFig14b(res *Result) []string {
	r := lastRow(res)
	k128, _ := cell(res, r, 1)
	llbpx, _ := cell(res, r, 2)
	var v []string
	// The mechanism contract: LLBP-X must profit from the overriding
	// front end (its pattern buffer answers in the fast stage), i.e. a
	// clear speedup over the baseline. The paper's stronger result —
	// beating a 128K TSL outright — additionally needs LLBP-X's larger
	// MPKI gains, which this reproduction compresses (see EXPERIMENTS.md).
	if llbpx <= 1.0 {
		v = append(v, fmt.Sprintf("fig14b: LLBP-X gains nothing under overriding (%.4f)", llbpx))
	}
	if k128 <= 1.0 {
		v = append(v, fmt.Sprintf("fig14b: 128K TSL gains nothing under overriding (%.4f)", k128))
	}
	return v
}

func checkFig15a(res *Result) []string {
	var v []string
	for i := 0; i < res.Table.NumRows()-1; i++ {
		rd, ok1 := cell(res, i, 1)
		wr, ok2 := cell(res, i, 2)
		// Only meaningful with real traffic: near-idle workloads (kafka)
		// create sets on allocation (no store read) yet write them back.
		if ok1 && ok2 && rd > 0.05 && wr > rd {
			v = append(v, fmt.Sprintf("fig15a row %d: writes should stay below reads", i))
		}
	}
	return v
}

func checkFig15b(res *Result) []string {
	rel, ok := cell(res, lastRow(res), 3)
	if !ok {
		return []string{"fig15b: summary unreadable"}
	}
	if rel < 0.85 || rel > 1.15 {
		return []string{fmt.Sprintf("fig15b: relative energy %.3f should sit near 1 (paper: +1.5%%)", rel)}
	}
	return nil
}

// monotoneNonDecreasing checks column 1 down the table rows.
func monotoneNonDecreasing(res *Result, slack float64) bool {
	prev := -1e18
	for i := 0; i < res.Table.NumRows(); i++ {
		val, ok := cell(res, i, 1)
		if !ok {
			continue
		}
		if val < prev-slack {
			return false
		}
		prev = val
	}
	return true
}

func checkFig16a(res *Result) []string {
	if !monotoneNonDecreasing(res, 0.5) {
		return []string{"fig16a: MPKI reduction should grow (weakly) with pattern store size"}
	}
	return nil
}

func checkFig16b(res *Result) []string {
	var v []string
	for i := 0; i < res.Table.NumRows(); i++ {
		red, ok := cell(res, i, 1)
		if ok && red < -0.5 {
			v = append(v, fmt.Sprintf("fig16b: LLBP-X regressed on baseline %s (%.2f%%)", res.Table.Row(i)[0], red))
		}
	}
	return v
}

func checkDiversity(res *Result) []string {
	var v []string
	rows := res.Table.NumRows() - 1 // last row is the average
	wins := 0
	for i := 0; i < rows; i++ {
		base, ok1 := cell(res, i, 1)
		bull, ok2 := cell(res, i, 2)
		if ok1 && ok2 && bull < base {
			wins++
		}
	}
	// The H2P-targeting contract: dedicated per-branch state must beat the
	// embedded TSL-8K baseline outright on a meaningful share of workloads
	// (>= 3 of the full 14; >= 1 on the quick four-workload subset).
	need := 1
	if rows >= 10 {
		need = 3
	}
	if wins < need {
		v = append(v, fmt.Sprintf("diversity: bullseye beats tsl-8k on %d/%d workloads, need >= %d", wins, rows, need))
	}
	r := lastRow(res)
	base, ok1 := cell(res, r, 1)
	tour, ok2 := cell(res, r, 2+1)
	if !ok1 || !ok2 {
		return append(v, "diversity: average row unreadable")
	}
	// The arbitration contract: a tsl-8k+llbp tournament must track its
	// stronger member, i.e. land clearly below the weak member's average.
	if tour >= base {
		v = append(v, fmt.Sprintf("diversity: tournament average MPKI %.3f should beat tsl-8k's %.3f", tour, base))
	}
	return v
}

func checkSweepW(res *Result) []string {
	// Static shallow contexts must beat static deep ones overall — the
	// asymmetry dynamic adaptation exploits.
	w2, ok1 := cell(res, 0, 1)
	w64, ok2 := cell(res, res.Table.NumRows()-1, 1)
	if !ok1 || !ok2 {
		return []string{"sweep-w: endpoints unreadable"}
	}
	if w64 >= w2+0.25 {
		return []string{fmt.Sprintf("sweep-w: W=64 (%.2f%%) should trail W=2 (%.2f%%)", w64, w2)}
	}
	return nil
}
