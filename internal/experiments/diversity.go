package experiments

import (
	"llbpx/internal/bullseye"
	"llbpx/internal/core"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
	"llbpx/internal/tournament"
)

func init() {
	register("diversity",
		"Predictor diversity: H2P-targeted bullseye and tournament meta-prediction vs their bases",
		diversity)
}

func mk8K() core.Predictor { return tage.MustNew(tage.Config8K()) }

func mkBullseye() core.Predictor { return bullseye.MustNew(bullseye.Default()) }

func mkTournament() core.Predictor {
	return tournament.MustNew(
		tournament.Config{Name: "tournament", ChooserBits: 12},
		[]core.Predictor{mk8K(), mkLLBP()},
	)
}

// diversity compares the two registry additions against their building
// blocks: bullseye against the TSL-8K it embeds (the H2P-targeting claim:
// a small baseline plus per-branch dedicated state beats the bare
// baseline), and the tsl-8k+llbp tournament against both members (the
// arbitration claim: the chooser tracks the better member per branch).
func diversity(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	makers := []func() core.Predictor{mk8K, mkBullseye, mkTournament, mkLLBP}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Predictor diversity: branch MPKI (lower is better)",
		"workload", "tsl-8k", "bullseye", "tournament", "llbp")
	sums := make([]float64, len(makers))
	bullseyeWins := 0
	for i, prof := range profiles {
		row := []any{prof.Name}
		for j := range makers {
			m := res[i][j].MPKI()
			sums[j] += m
			row = append(row, m)
		}
		if res[i][1].MPKI() < res[i][0].MPKI() {
			bullseyeWins++
		}
		t.AddRow(row...)
	}
	n := float64(len(profiles))
	t.AddRow("average", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n)
	return &Result{
		ID:    "diversity",
		Table: t,
		Notes: []string{
			"bullseye = TSL-8K + dedicated 512x64 pattern sets for online-admitted H2P branches;",
			"it must beat the bare TSL-8K on workloads whose misses concentrate in few static branches.",
			"tournament = per-branch chooser over {tsl-8k, llbp}; it should track the stronger member (llbp).",
		},
	}, nil
}
