package experiments

import (
	"fmt"

	"llbpx/internal/llbp"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
	"llbpx/internal/workload"
)

func init() {
	register("fig6", "Figure 6: useful patterns per context (distribution, NodeApp)", fig6)
	register("fig7", "Figure 7: average history length of useful patterns per context (NodeApp)", fig7)
	register("fig8", "Figure 8: pattern duplication vs history length for W in {2,8,64} (NodeApp)", fig8)
	register("fig9", "Figure 9: useful predictions per history length, W in {2,64} relative to W=8 (NodeApp)", fig9)
}

// analysisWorkload picks the single workload Figures 6-9 characterize
// (NodeApp in the paper; the first scale workload when restricted).
func analysisWorkload(sc Scale) (workload.Profile, error) {
	name := "nodeapp"
	if sc.Workloads != nil && len(sc.Workloads) > 0 {
		name = sc.Workloads[0]
	}
	return workload.ByName(name)
}

// analysisConfig is the "+Inf Patterns" limit configuration (Figure 5)
// with useful-pattern collection enabled.
func analysisConfig(w int) llbp.Config {
	c := llbp.ZeroLatency()
	c.Name = fmt.Sprintf("llbp-analysis-w%d", w)
	c.W = w
	c.NoTweaks = true
	c.TagBits = 20
	c.InfiniteContexts = true
	c.InfinitePatterns = true
	c.CollectUseful = true
	return c
}

// usefulSnapshot runs the analysis configuration and returns the tracker
// snapshot.
func usefulSnapshot(sc Scale, prof workload.Profile, w int) (*llbp.UsefulStats, error) {
	prog, err := workload.Build(prof)
	if err != nil {
		return nil, err
	}
	p := llbp.MustNew(analysisConfig(w))
	if _, err := sim.Run(p, workload.NewGenerator(prog), sc.options()); err != nil {
		return nil, err
	}
	us := p.Tracker()
	if us == nil {
		return nil, fmt.Errorf("experiments: useful tracker unexpectedly disabled")
	}
	return us, nil
}

func fig6(sc Scale) (*Result, error) {
	prof, err := analysisWorkload(sc)
	if err != nil {
		return nil, err
	}
	us, err := usefulSnapshot(sc, prof, 8)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(us.Contexts))
	over16, under8 := 0, 0
	for i, c := range us.Contexts {
		counts[i] = c.Patterns
		if c.Patterns > 16 {
			over16++
		}
		if c.Patterns <= 8 {
			under8++
		}
	}
	t := stats.NewTable(fmt.Sprintf("Figure 6: useful patterns per context (%s, W=8, unconstrained LLBP)", prof.Name),
		"metric", "value")
	n := len(counts)
	t.AddRow("contexts with useful patterns", n)
	if n > 0 {
		t.AddRow("max useful patterns in a context", counts[0])
		t.AddRow("p99 useful patterns", percentileDesc(counts, 0.01))
		t.AddRow("p90 useful patterns", percentileDesc(counts, 0.10))
		t.AddRow("median useful patterns", percentileDesc(counts, 0.50))
		t.AddRow("contexts exceeding 16-pattern sets (%)", 100*float64(over16)/float64(n))
		t.AddRow("contexts with <= 8 useful patterns (%)", 100*float64(under8)/float64(n))
	}
	return &Result{
		ID:    "fig6",
		Table: t,
		Notes: []string{
			"Paper (NodeApp): the distribution is highly skewed — 14% of contexts exceed the 16-pattern set capacity",
			"while 68% hold 8 or fewer useful patterns. The skew (few overflowing contexts, most underutilized) is the target shape.",
		},
	}, nil
}

// percentileDesc returns the value at quantile q of a descending-sorted
// slice (q=0.10 -> the top-10% boundary).
func percentileDesc(desc []int, q float64) int {
	if len(desc) == 0 {
		return 0
	}
	i := int(q * float64(len(desc)))
	if i >= len(desc) {
		i = len(desc) - 1
	}
	return desc[i]
}

func fig7(sc Scale) (*Result, error) {
	prof, err := analysisWorkload(sc)
	if err != nil {
		return nil, err
	}
	us, err := usefulSnapshot(sc, prof, 8)
	if err != nil {
		return nil, err
	}
	// Contexts are already sorted by useful-pattern count descending (the
	// Figure 6/7 x-axis). Compare history lengths across that order.
	n := len(us.Contexts)
	t := stats.NewTable(fmt.Sprintf("Figure 7: avg history length of useful patterns per context (%s)", prof.Name),
		"context group (by #useful patterns)", "mean of avg-hist-len (bits)")
	if n > 0 {
		group := func(lo, hi int) float64 {
			var sum float64
			cnt := 0
			for i := lo; i < hi && i < n; i++ {
				sum += us.Contexts[i].AvgHistLen
				cnt++
			}
			if cnt == 0 {
				return 0
			}
			return sum / float64(cnt)
		}
		t.AddRow("top 1% (most patterns)", group(0, max(1, n/100)))
		t.AddRow("top 10%", group(0, max(1, n/10)))
		t.AddRow("middle 40-60%", group(n*2/5, n*3/5))
		t.AddRow("bottom 50% (fewest patterns)", group(n/2, n))
	}
	return &Result{
		ID:    "fig7",
		Table: t,
		Notes: []string{
			"Paper (NodeApp): contexts with the most useful patterns also hold the longest histories (avg up to 112 bits),",
			"while contexts with the fewest hold short ones (avg 17 bits). Expect a monotone decline down the groups.",
		},
	}, nil
}

func fig8(sc Scale) (*Result, error) {
	prof, err := analysisWorkload(sc)
	if err != nil {
		return nil, err
	}
	depths := []int{2, 8, 64}
	snaps := make([]*llbp.UsefulStats, len(depths))
	for i, w := range depths {
		s, err := usefulSnapshot(sc, prof, w)
		if err != nil {
			return nil, err
		}
		snaps[i] = s
	}
	t := stats.NewTable(fmt.Sprintf("Figure 8: duplicate fraction of useful patterns by history length (%s)", prof.Name),
		"hist-len", "dup%-w2", "dup%-w8", "dup%-w64")
	for li, bits := range tage.HistoryLengths {
		any := false
		for _, s := range snaps {
			if s.TotalByLen[li] > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		t.AddRow(bits,
			100*snaps[0].DuplicateFraction(li),
			100*snaps[1].DuplicateFraction(li),
			100*snaps[2].DuplicateFraction(li))
	}
	return &Result{
		ID:    "fig8",
		Table: t,
		Notes: []string{
			"Paper (NodeApp): short patterns duplicate heavily and duplication grows with W — e.g. at length 6:",
			"8.5% (W=2), 10.1% (W=8), 17.2% (W=64); at length 78: 0.2%, 0.9%, 3.3%.",
			"Target shape: duplication decreasing with history length, increasing with W.",
		},
	}, nil
}

func fig9(sc Scale) (*Result, error) {
	prof, err := analysisWorkload(sc)
	if err != nil {
		return nil, err
	}
	depths := []int{2, 8, 64}
	snaps := make([]*llbp.UsefulStats, len(depths))
	for i, w := range depths {
		s, err := usefulSnapshot(sc, prof, w)
		if err != nil {
			return nil, err
		}
		snaps[i] = s
	}
	t := stats.NewTable(fmt.Sprintf("Figure 9: useful predictions per history length, relative to W=8 (%s)", prof.Name),
		"hist-len", "events-w8", "w2/w8", "w64/w8")
	for li, bits := range tage.HistoryLengths {
		ref := float64(snaps[1].EventsByLen[li])
		if ref == 0 {
			continue
		}
		t.AddRow(bits, ref,
			float64(snaps[0].EventsByLen[li])/ref,
			float64(snaps[2].EventsByLen[li])/ref)
	}
	return &Result{
		ID:    "fig9",
		Table: t,
		Notes: []string{
			"Paper (NodeApp): shallow contexts (W=2) raise useful predictions by 63-213% for short patterns (6-37 bits)",
			"and lose 49-74% for long ones (232-3000); deep contexts (W=64) show the mirrored trend (+4.2-95% for long).",
			"Target shape: w2/w8 > 1 at short lengths and < 1 at long; w64/w8 the reverse.",
		},
	}, nil
}
