package experiments

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/llbpx"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/tage"
	"llbpx/internal/workload"
)

func mk64K() core.Predictor   { return tage.MustNew(tage.Config64K()) }
func mk512K() core.Predictor  { return tage.MustNew(tage.Config512K()) }
func mkInf() core.Predictor   { return tage.MustNew(tage.ConfigInf()) }
func mkLLBP() core.Predictor  { return llbp.MustNew(llbp.Default()) }
func mkLLBP0() core.Predictor { return llbp.MustNew(llbp.ZeroLatency()) }
func mkLLBPX() core.Predictor { return llbpx.MustNew(llbpx.Default()) }

func init() {
	register("table1", "Table I: per-workload 64K TSL branch MPKI", table1)
	register("fig4", "Figure 4: LLBP / 512K TSL / Inf TSL MPKI normalized to 64K TSL", fig4)
	register("fig5", "Figure 5: limit study, successively removing LLBP's design constraints", fig5)
	register("fig12", "Figure 12: MPKI reduction of LLBP, LLBP-X, LLBP-X Opt-W, 512K TSL over 64K TSL", fig12)
	register("breakdown", "Section VII-E: contribution of depth adaptation vs history range selection", breakdown)
	register("sens-hth", "Section VII-F: H_th sensitivity sweep", sensHth)
	register("sens-ctt", "Section VII-F: CTT size sensitivity sweep", sensCTT)
}

func table1(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	res, err := grid(sc, profiles, []func() core.Predictor{mk64K})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table I: 64K TSL branch MPKI", "workload", "mpki", "paper-mpki")
	var ours, paper []float64
	for i, prof := range profiles {
		m := res[i][0].MPKI()
		t.AddRow(prof.Name, m, workload.PaperMPKI[prof.Name])
		ours = append(ours, m)
		paper = append(paper, workload.PaperMPKI[prof.Name])
	}
	t.AddRow("average", stats.Mean(ours), stats.Mean(paper))
	return &Result{
		ID:    "table1",
		Table: t,
		Notes: []string{
			"Paper: absolute MPKI 0.26-5.38 (avg 2.92) for 64K TAGE-SC-L on the 14 server traces.",
			"Workloads here are synthetic program models calibrated to land near the paper's per-workload MPKI.",
		},
	}, nil
}

func fig4(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	makers := []func() core.Predictor{mk64K, mkLLBP, mkLLBP0, mk512K, mkInf}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 4: MPKI normalized to 64K TSL (lower is better)",
		"workload", "64k-mpki", "llbp", "llbp-0lat", "512k-tsl", "inf-tsl")
	sums := make([]float64, len(makers))
	for i, prof := range profiles {
		base := res[i][0].MPKI()
		row := []any{prof.Name, base}
		for j := 1; j < len(makers); j++ {
			norm := 1.0
			if base > 0 {
				norm = res[i][j].MPKI() / base
			}
			sums[j] += norm
			row = append(row, norm)
		}
		t.AddRow(row...)
	}
	n := float64(len(profiles))
	t.AddRow("average", "", sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n)
	return &Result{
		ID:    "fig4",
		Table: t,
		Notes: []string{
			"Paper: LLBP reduces MPKI by 0.6-25% (avg 8.8%); 512K TSL by 12.7-46.1% (avg 27.5%); Inf TSL by 13.2-54% (avg 32.5%).",
			"This reproduction preserves the ordering 64K > LLBP > 512K > Inf; LLBP's absolute gain is compressed because",
			"the synthetic workloads' irreducible (payload-entropy) misses form a larger share of the baseline MPKI.",
		},
	}, nil
}

// fig5 configurations, cumulative left to right.
func fig5Configs() []struct {
	name string
	mk   func() core.Predictor
} {
	step := func(name string, mut func(*llbp.Config)) struct {
		name string
		mk   func() core.Predictor
	} {
		return struct {
			name string
			mk   func() core.Predictor
		}{name, func() core.Predictor {
			c := llbp.ZeroLatency()
			c.Name = name
			mut(&c)
			return llbp.MustNew(c)
		}}
	}
	noTweaks := func(c *llbp.Config) { c.NoTweaks = true }
	tag20 := func(c *llbp.Config) { noTweaks(c); c.TagBits = 20 }
	infCtx := func(c *llbp.Config) { tag20(c); c.InfiniteContexts = true }
	infPat := func(c *llbp.Config) { infCtx(c); c.InfinitePatterns = true }
	noCtx := func(c *llbp.Config) { infPat(c); c.NoContext = true }
	return []struct {
		name string
		mk   func() core.Predictor
	}{
		step("llbp-0lat", func(c *llbp.Config) {}),
		step("+no-tweaks", noTweaks),
		step("+20b-tag", tag20),
		step("+inf-contexts", infCtx),
		step("+inf-patterns", infPat),
		step("+no-context", noCtx),
	}
}

func fig5(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	cfgs := fig5Configs()
	makers := make([]func() core.Predictor, len(cfgs))
	for i := range cfgs {
		makers[i] = cfgs[i].mk
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	// Average MPKI per configuration across workloads, normalized to the
	// LLBP-0Lat baseline (the figure's reference).
	avg := make([]float64, len(cfgs))
	for i := range profiles {
		base := res[i][0].MPKI()
		if base == 0 {
			continue
		}
		for j := range cfgs {
			avg[j] += res[i][j].MPKI() / base
		}
	}
	n := float64(len(profiles))
	t := stats.NewTable("Figure 5: removing LLBP's design constraints (normalized to LLBP-0Lat)",
		"configuration", "norm-mpki", "step-reduction-%")
	prev := avg[0] / n
	t.AddRow(cfgs[0].name, prev, 0.0)
	for j := 1; j < len(cfgs); j++ {
		cur := avg[j] / n
		t.AddRow(cfgs[j].name, cur, 100*(prev-cur)/prev)
		prev = cur
	}
	return &Result{
		ID:    "fig5",
		Table: t,
		Notes: []string{
			"Paper step reductions: +No Design Tweaks 4.6%, +20b Tag 1.3%, +Inf Contexts 3.9%, +Inf Patterns 9.1%, +No Contextualization 4.3%.",
			"The dominant steps should remain the pattern-set capacity (+inf-patterns) and contextualization overhead (+no-context).",
		},
	}, nil
}

// optWOracle runs a profiling pass of LLBP-X and returns an Opt-W
// configuration whose depth decisions are fixed from the start.
func optWOracle(sc Scale, prof workload.Profile) (func() core.Predictor, error) {
	prog, err := workload.Build(prof)
	if err != nil {
		return nil, err
	}
	probe := llbpx.MustNew(llbpx.Default())
	if _, err := sim.Run(probe, workload.NewGenerator(prog), sc.options()); err != nil {
		return nil, err
	}
	oracle := probe.DeepHistory()
	return func() core.Predictor {
		c := llbpx.Default()
		c.Base.Name = "llbp-x-optw"
		c.OracleDepth = oracle
		return llbpx.MustNew(c)
	}, nil
}

func fig12(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	// The oracle needs a per-workload profiling pass; build makers first.
	makers := make([][]func() core.Predictor, len(profiles))
	for i, prof := range profiles {
		oracle, err := optWOracle(sc, prof)
		if err != nil {
			return nil, err
		}
		makers[i] = []func() core.Predictor{mk64K, mkLLBP, mkLLBPX, oracle, mk512K}
	}
	var jobs []job
	for i, prof := range profiles {
		for _, mk := range makers[i] {
			jobs = append(jobs, job{profile: prof, make: mk, finish: finishStats})
		}
	}
	flat, err := runJobs(sc, jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 12: branch misprediction reduction over 64K TSL (%)",
		"workload", "64k-mpki", "llbp", "llbp-x", "llbp-x-optw", "512k-tsl")
	per := len(makers[0])
	sums := make([]float64, per)
	for i, prof := range profiles {
		row := flat[i*per : (i+1)*per]
		base := row[0].MPKI()
		cells := []any{prof.Name, base}
		for j := 1; j < per; j++ {
			red := reductionPct(base, row[j].MPKI())
			sums[j] += red
			cells = append(cells, red)
		}
		t.AddRow(cells...)
	}
	n := float64(len(profiles))
	t.AddRow("average", "", sums[1]/n, sums[2]/n, sums[3]/n, sums[4]/n)
	return &Result{
		ID:    "fig12",
		Table: t,
		Notes: []string{
			"Paper: LLBP-X reduces MPKI by 1.4-27% (avg 12.1%), a 36% improvement over LLBP's 8.8%;",
			"LLBP-X Opt-W reaches 12.6% (dynamic adaptation within 97% of optimal); 512K TSL 27.5%.",
			"Expected shape here: llbp-x > llbp on average, optw >= llbp-x, 512k well above both.",
		},
	}, nil
}

func breakdown(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	mkNoRange := func() core.Predictor {
		c := llbpx.Default()
		c.Base.Name = "llbp-x-norange"
		c.HistRange = false
		return llbpx.MustNew(c)
	}
	res, err := grid(sc, profiles, []func() core.Predictor{mk64K, mkLLBP, mkNoRange, mkLLBPX})
	if err != nil {
		return nil, err
	}
	var redLLBP, redNoRange, redFull float64
	for i := range profiles {
		base := res[i][0].MPKI()
		redLLBP += reductionPct(base, res[i][1].MPKI())
		redNoRange += reductionPct(base, res[i][2].MPKI())
		redFull += reductionPct(base, res[i][3].MPKI())
	}
	n := float64(len(profiles))
	redLLBP, redNoRange, redFull = redLLBP/n, redNoRange/n, redFull/n
	t := stats.NewTable("Section VII-E: optimization breakdown (avg MPKI reduction over 64K TSL, %)",
		"configuration", "reduction-%", "delta-vs-prev")
	t.AddRow("llbp", redLLBP, 0.0)
	t.AddRow("llbp-x w/o hist-range (depth adaptation only)", redNoRange, redNoRange-redLLBP)
	t.AddRow("llbp-x full (+ history range selection)", redFull, redFull-redNoRange)
	total := redFull - redLLBP
	if total != 0 {
		t.AddRow("depth adaptation share of gain (%)", 100*(redNoRange-redLLBP)/total, "")
		t.AddRow("history range share of gain (%)", 100*(redFull-redNoRange)/total, "")
	}
	return &Result{
		ID:    "breakdown",
		Table: t,
		Notes: []string{"Paper: dynamic context depth adaptation contributes 82% of the gain over LLBP, history range selection 18%."},
	}, nil
}

func sensHth(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	sweep := []int{18, 37, 64, 112, 232, 464, 1444}
	makers := []func() core.Predictor{mk64K}
	for _, hth := range sweep {
		hth := hth
		makers = append(makers, func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = fmt.Sprintf("llbp-x-hth%d", hth)
			c.Hth = hth
			return llbpx.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Section VII-F: H_th sensitivity (avg MPKI reduction over 64K TSL, %)",
		"h_th", "reduction-%")
	for j, hth := range sweep {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		t.AddRow(hth, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "sens-hth",
		Table: t,
		Notes: []string{
			"Paper: sweep 37..1444 on their traces; best at H_th=232 (13.6%), worst at 1444 (12.2%), mostly flat around the optimum.",
			"This reproduction's optimum sits lower (H2P pattern demand concentrates at 37-232 bits) with the same flat profile.",
		},
	}, nil
}

func sensCTT(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	sweep := []int{2048, 4096, 6144, 8192}
	makers := []func() core.Predictor{mk64K}
	for _, entries := range sweep {
		entries := entries
		makers = append(makers, func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = fmt.Sprintf("llbp-x-ctt%d", entries)
			c.CTTEntries = entries
			return llbpx.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Section VII-F: CTT size sensitivity (avg MPKI reduction over 64K TSL, %)",
		"ctt-entries", "reduction-%")
	for j, entries := range sweep {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		t.AddRow(entries, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "sens-ctt",
		Table: t,
		Notes: []string{"Paper: 6K entries suffice (13.6% vs 12.8% at 4K); no further gain beyond 6K."},
	}, nil
}
