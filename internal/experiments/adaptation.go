package experiments

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/stats"
	"llbpx/internal/workload"
)

func init() {
	register("adapt", "Ablation: adaptation after a behavioural phase change (Section III-C's training-time cost)", adapt)
}

// adapt measures how quickly each predictor recovers after the workload's
// data-dependent behaviour inverts (a phase change): the paper's Section
// III-C names prolonged retraining — each context relearning its
// duplicated patterns — as one of contextualization's costs. MPKI is
// sampled in fixed instruction windows around the shift.
func adapt(sc Scale) (*Result, error) {
	prof, err := analysisWorkload(sc)
	if err != nil {
		return nil, err
	}
	// One phase shift, placed after enough requests that every predictor
	// is warm. Window accounting below locates it by request count.
	const shiftAfterRequests = 400
	prof.PhaseShiftRequests = shiftAfterRequests

	windowInstr := sc.MeasureInstr / 6
	if windowInstr == 0 {
		windowInstr = 500_000
	}

	type series struct {
		name    string
		mk      func() core.Predictor
		windows []float64
		shifted int // window index in which the phase change landed
	}
	runs := []*series{
		{name: "tsl-64k", mk: mk64K},
		{name: "llbp", mk: mkLLBP},
		{name: "llbp-x", mk: mkLLBPX},
	}
	for _, r := range runs {
		prog, err := workload.Build(prof)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(prog)
		p := r.mk()
		var instr, winInstr, winMiss uint64
		shiftSeen := false
		// Warm into steady state (3 windows), then sample 6 more; the
		// shift lands when request shiftAfterRequests begins.
		for len(r.windows) < 9 {
			b, ok := gen.Next()
			if !ok {
				break
			}
			if !shiftSeen && gen.Requests() > shiftAfterRequests {
				shiftSeen = true
				r.shifted = len(r.windows)
			}
			instr += b.Instructions()
			winInstr += b.Instructions()
			if b.Kind.Conditional() {
				pred := p.Predict(b.PC)
				if pred.Taken != b.Taken {
					winMiss++
				}
				p.Update(b, pred)
			} else {
				p.TrackUnconditional(b)
			}
			if winInstr >= windowInstr {
				r.windows = append(r.windows, float64(winMiss)/float64(winInstr)*1000)
				winInstr, winMiss = 0, 0
			}
		}
	}

	t := stats.NewTable("Adaptation to a behavioural phase change (MPKI per instruction window)",
		"window", "tsl-64k", "llbp", "llbp-x")
	for w := 0; w < 9; w++ {
		label := fmt.Sprintf("w%d", w)
		if w == runs[0].shifted {
			label += " <- phase shift"
		}
		row := []any{label}
		for _, r := range runs {
			if w < len(r.windows) {
				row = append(row, r.windows[w])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	// Recovery penalty: excess MPKI in the shift window and the next one,
	// relative to the pre-shift steady state (the two windows before).
	for _, r := range runs {
		s := r.shifted
		if s < 2 || s+1 >= len(r.windows) {
			continue
		}
		before := (r.windows[s-2] + r.windows[s-1]) / 2
		after := (r.windows[s] + r.windows[s+1]) / 2
		t.AddRow("recovery excess "+r.name, after-before)
	}
	return &Result{
		ID:    "adapt",
		Table: t,
		Notes: []string{
			"Paper (Section III-C): pattern duplication means contextualized designs retrain each context separately,",
			"slowing adaptation after behavioural changes. Expected shape: all predictors spike at the shift window;",
			"the hierarchical designs' recovery excess is at least the baseline's.",
		},
	}, nil
}
