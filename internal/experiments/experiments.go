// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named constructor that runs the
// required simulations (in parallel across workloads) and returns a
// plain-text table plus notes recording what the paper reported for the
// same artifact. cmd/experiments and the repository's benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"llbpx/internal/core"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/workload"
)

// Scale bounds the simulation effort. The paper simulates 100M+200M
// instructions per run; the default scale here is 2M+3M, which preserves
// every trend at interactive runtimes.
type Scale struct {
	// WarmupInstr and MeasureInstr are per-run instruction budgets.
	WarmupInstr, MeasureInstr uint64
	// Workloads restricts the workload set (nil = all 14).
	Workloads []string
	// Parallelism caps concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultScale runs all 14 workloads at 2M warmup + 3M measured
// instructions.
func DefaultScale() Scale {
	return Scale{WarmupInstr: 2_000_000, MeasureInstr: 3_000_000}
}

// QuickScale runs four representative workloads at reduced instruction
// counts; used by tests and -quick runs.
func QuickScale() Scale {
	return Scale{
		WarmupInstr:  800_000,
		MeasureInstr: 1_200_000,
		Workloads:    []string{"nodeapp", "wikipedia", "kafka", "whiskey"},
	}
}

// profiles resolves the scale's workload list.
func (sc Scale) profiles() ([]workload.Profile, error) {
	if sc.Workloads == nil {
		return workload.Workloads(), nil
	}
	var out []workload.Profile
	for _, name := range sc.Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (sc Scale) options() sim.Options {
	return sim.Options{WarmupInstr: sc.WarmupInstr, MeasureInstr: sc.MeasureInstr}
}

func (sc Scale) parallelism() int {
	if sc.Parallelism > 0 {
		return sc.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one reproduced artifact.
type Result struct {
	// ID is the experiment identifier ("fig12", "table1", ...).
	ID string
	// Table holds the reproduced rows.
	Table *stats.Table
	// Notes records the paper's reported numbers and any substitutions.
	Notes []string
}

// Runner is an experiment constructor.
type Runner func(Scale) (*Result, error)

// registration couples an experiment with its description.
type registration struct {
	ID          string
	Description string
	Run         Runner
}

var registry []registration

func register(id, description string, run Runner) {
	registry = append(registry, registration{id, description, run})
}

// IDs returns all experiment identifiers in registration (paper) order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// Describe returns the one-line description for an experiment ID.
func Describe(id string) (string, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r.Description, true
		}
	}
	return "", false
}

// Run executes the experiment with the given ID.
func Run(id string, sc Scale) (*Result, error) {
	for _, r := range registry {
		if r.ID == id {
			return r.Run(sc)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}

// RunAll executes every registered experiment in order.
func RunAll(sc Scale) ([]*Result, error) {
	var out []*Result
	for _, r := range registry {
		res, err := r.Run(sc)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// job is one simulation of a predictor over a workload.
type job struct {
	profile workload.Profile
	make    func() core.Predictor
	// finish, when non-nil, runs on the predictor after simulation (e.g.
	// FinishMeasurement, tracker extraction) while holding the result.
	finish func(core.Predictor, *sim.Result)
}

// runJobs executes jobs with bounded parallelism, returning results in job
// order. The semaphore is acquired before each goroutine is spawned so at
// most parallelism()+ goroutines exist at any time, rather than one per
// job blocked on the semaphore.
func runJobs(sc Scale, jobs []job) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, sc.parallelism())
	var wg sync.WaitGroup
	for i := range jobs {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			j := jobs[i]
			prog, err := workload.Build(j.profile)
			if err != nil {
				errs[i] = fmt.Errorf("workload %s: %w", j.profile.Name, err)
				return
			}
			p := j.make()
			res, err := sim.Run(p, workload.NewGenerator(prog), sc.options())
			if err != nil {
				errs[i] = fmt.Errorf("workload %s / predictor %s: %w", j.profile.Name, p.Name(), err)
				return
			}
			if j.finish != nil {
				j.finish(p, &res)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// grid runs one predictor configuration per column over every workload,
// returning mpki[workload][config].
func grid(sc Scale, profiles []workload.Profile, makers []func() core.Predictor) ([][]sim.Result, error) {
	var jobs []job
	for _, prof := range profiles {
		for _, mk := range makers {
			jobs = append(jobs, job{profile: prof, make: mk, finish: finishStats})
		}
	}
	flat, err := runJobs(sc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]sim.Result, len(profiles))
	for i := range profiles {
		out[i] = flat[i*len(makers) : (i+1)*len(makers)]
	}
	return out, nil
}

// finishStats flushes predictor-side measurement state and refreshes the
// result's Extra snapshot.
func finishStats(p core.Predictor, res *sim.Result) {
	type finisher interface{ FinishMeasurement() }
	if f, ok := p.(finisher); ok {
		f.FinishMeasurement()
	}
	if sp, ok := p.(core.StatsProvider); ok {
		res.Extra = sp.Stats()
	}
}

// reductionPct returns the percentage MPKI reduction of x relative to
// base.
func reductionPct(base, x float64) float64 {
	return 100 * stats.Reduction(base, x)
}
