package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the harness tests fast: two workloads, short runs.
func tinyScale() Scale {
	return Scale{
		WarmupInstr:  150_000,
		MeasureInstr: 250_000,
		Workloads:    []string{"kafka", "wikipedia"},
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig12", "fig13", "fig14a", "fig14b", "fig15a", "fig15b",
		"fig16a", "fig16b", "breakdown", "sens-hth", "sens-ctt",
		"sweep-w", "sweep-d", "abl-x", "adapt", "small-tsl",
		"diversity",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(IDs()), len(want))
	}
	for _, id := range IDs() {
		if desc, ok := Describe(id); !ok || desc == "" {
			t.Errorf("experiment %q lacks a description", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tinyScale()); err == nil {
		t.Fatal("unknown ID must error")
	}
	if _, ok := Describe("fig99"); ok {
		t.Fatal("unknown ID must not describe")
	}
}

func TestScaleProfiles(t *testing.T) {
	sc := tinyScale()
	profiles, err := sc.profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	sc.Workloads = []string{"bogus"}
	if _, err := sc.profiles(); err == nil {
		t.Fatal("bogus workload must error")
	}
	all := DefaultScale()
	profiles, err = all.profiles()
	if err != nil || len(profiles) != 14 {
		t.Fatalf("default scale must cover all 14 workloads: %d, %v", len(profiles), err)
	}
}

func TestTable1Rows(t *testing.T) {
	res, err := Run("table1", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 3 { // 2 workloads + average
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	if !strings.Contains(res.Table.String(), "kafka") {
		t.Fatal("table missing workload rows")
	}
	if len(res.Notes) == 0 {
		t.Fatal("experiments must record the paper's reported numbers")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Run("fig4", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads + average row, 6 columns.
	if res.Table.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	if got := len(res.Table.Headers); got != 6 {
		t.Fatalf("columns = %d", got)
	}
}

func TestFig6UsesFirstWorkload(t *testing.T) {
	res, err := Run("fig6", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table.Title, "kafka") {
		t.Fatalf("fig6 should characterize the first scale workload: %q", res.Table.Title)
	}
}

func TestFig15bRelativeEnergyNearOne(t *testing.T) {
	res, err := Run("fig15b", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// The relative energy column of each workload row must be near 1
	// (LLBP-X differs from LLBP only by the small CTT and fewer PS
	// reads).
	for i := 0; i < res.Table.NumRows()-1; i++ {
		row := res.Table.Row(i)
		rel := row[3]
		if !strings.HasPrefix(rel, "0.") && !strings.HasPrefix(rel, "1.") && rel != "1" {
			t.Fatalf("relative energy %q far from 1", rel)
		}
	}
}

func TestGridOrdering(t *testing.T) {
	sc := tinyScale()
	profiles, err := sc.profiles()
	if err != nil {
		t.Fatal(err)
	}
	res, err := grid(sc, profiles, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(profiles) {
		t.Fatalf("grid rows = %d", len(res))
	}
}

func TestGem5WorkloadsExcludeGoogleTraces(t *testing.T) {
	sc := DefaultScale()
	profiles, err := gem5Workloads(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 10 {
		t.Fatalf("expected 10 gem5 workloads (14 minus 4 Google traces), got %d", len(profiles))
	}
	for _, p := range profiles {
		switch p.Name {
		case "charlie", "delta", "merced", "whiskey":
			t.Errorf("Google trace %s must be excluded from timing studies", p.Name)
		}
	}
	// A scale consisting only of Google traces falls back to the full set
	// rather than running nothing.
	sc.Workloads = []string{"charlie", "delta"}
	profiles, err = gem5Workloads(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) == 0 {
		t.Fatal("all-excluded scale must fall back to the given workloads")
	}
}

func TestFig5ConfigsAreCumulative(t *testing.T) {
	cfgs := fig5Configs()
	if len(cfgs) != 6 {
		t.Fatalf("limit study has 6 steps, got %d", len(cfgs))
	}
	names := []string{"llbp-0lat", "+no-tweaks", "+20b-tag", "+inf-contexts", "+inf-patterns", "+no-context"}
	for i, c := range cfgs {
		if c.name != names[i] {
			t.Fatalf("step %d = %q, want %q", i, c.name, names[i])
		}
		p := c.mk()
		if p == nil {
			t.Fatalf("step %q produced no predictor", c.name)
		}
	}
}

func TestSweepExperimentsRegisterRunners(t *testing.T) {
	for _, id := range []string{"sweep-w", "sweep-d", "abl-x"} {
		if _, ok := Describe(id); !ok {
			t.Errorf("ablation %q missing", id)
		}
	}
}

// TestAllExperimentsRunAtMicroScale executes every registered experiment
// at a tiny budget: results are noisy and unchecked, but every runner's
// code path (config construction, grid plumbing, table assembly) must
// complete without error.
func TestAllExperimentsRunAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-scale sweep skipped in -short")
	}
	sc := Scale{
		WarmupInstr:  60_000,
		MeasureInstr: 120_000,
		Workloads:    []string{"kafka", "delta"},
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, sc)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			if len(res.Notes) == 0 {
				t.Fatalf("%s lacks paper notes", id)
			}
			// Verify must not panic at any scale (violations are fine).
			_ = Verify(res)
		})
	}
}
