package experiments

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/llbpx"
	"llbpx/internal/stats"
)

// The ablation experiments go beyond the paper's figures: they isolate the
// design choices DESIGN.md calls out — the context depth W (static, the
// paper's Figure 9 discussion made dynamic by LLBP-X), the prefetch skip
// distance D (the paper attributes LLBP's final gap to it), and this
// reproduction's own arbitration additions.

func init() {
	register("sweep-w", "Ablation: static context depth W sweep for LLBP (2..64)", sweepW)
	register("sweep-d", "Ablation: prefetch skip distance D sweep for LLBP (0..16)", sweepD)
	register("abl-x", "Ablation: LLBP-X feature knockouts (depth adaptation, hist range, arbitration gates)", ablX)
}

func sweepW(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	sweep := []int{2, 4, 8, 16, 32, 64}
	makers := []func() core.Predictor{mk64K}
	for _, w := range sweep {
		w := w
		makers = append(makers, func() core.Predictor {
			c := llbp.Default()
			c.Name = fmt.Sprintf("llbp-w%d", w)
			c.W = w
			return llbp.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: LLBP accuracy vs static context depth W (avg MPKI reduction over 64K TSL, %)",
		"w", "reduction-%")
	for j, w := range sweep {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		t.AddRow(w, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "sweep-w",
		Table: t,
		Notes: []string{
			"Context: the paper's Figure 9 shows shallow contexts win for short patterns and deep for long ones;",
			"LLBP-X exists because no single static W is right. Expect shallow W near the top and W=64 clearly worst",
			"(duplication and per-context retraining dominate).",
		},
	}, nil
}

func sweepD(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	sweep := []int{0, 2, 4, 8, 16}
	makers := []func() core.Predictor{mk64K}
	for _, d := range sweep {
		d := d
		makers = append(makers, func() core.Predictor {
			c := llbp.Default()
			c.Name = fmt.Sprintf("llbp-d%d", d)
			c.D = d
			return llbp.MustNew(c)
		})
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: LLBP accuracy vs prefetch skip distance D (avg MPKI reduction over 64K TSL, %)",
		"d", "reduction-%")
	for j, d := range sweep {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		t.AddRow(d, sum/float64(len(profiles)))
	}
	return &Result{
		ID:    "sweep-d",
		Table: t,
		Notes: []string{
			"Context: D skips the most recent unconditional branches when forming the current context, buying",
			"prefetch time at the cost of context precision. The paper attributes LLBP's final accuracy gap to D;",
			"expect the best accuracy at small D and a decline as D grows.",
		},
	}, nil
}

func ablX(sc Scale) (*Result, error) {
	profiles, err := sc.profiles()
	if err != nil {
		return nil, err
	}
	variant := func(name string, mut func(*llbpx.Config)) func() core.Predictor {
		return func() core.Predictor {
			c := llbpx.Default()
			c.Base.Name = name
			mut(&c)
			return llbpx.MustNew(c)
		}
	}
	makers := []func() core.Predictor{
		mk64K,
		variant("llbp-x", func(c *llbpx.Config) {}),
		variant("llbp-x-nodepth", func(c *llbpx.Config) { c.DepthAdaptation = false }),
		variant("llbp-x-norange", func(c *llbpx.Config) { c.HistRange = false }),
		variant("llbp-x-nochooser", func(c *llbpx.Config) { c.Base.UseChooser = false }),
		variant("llbp-x-nogate", func(c *llbpx.Config) { c.Base.GateWeakOverride = false }),
	}
	res, err := grid(sc, profiles, makers)
	if err != nil {
		return nil, err
	}
	labels := []string{"llbp-x (full)", "- depth adaptation", "- history range", "- override chooser", "- weak-override gate"}
	t := stats.NewTable("Ablation: LLBP-X feature knockouts (avg MPKI reduction over 64K TSL, %)",
		"configuration", "reduction-%", "delta-vs-full")
	var full float64
	for j, label := range labels {
		var sum float64
		for i := range profiles {
			sum += reductionPct(res[i][0].MPKI(), res[i][j+1].MPKI())
		}
		avg := sum / float64(len(profiles))
		if j == 0 {
			full = avg
			t.AddRow(label, avg, 0.0)
		} else {
			t.AddRow(label, avg, avg-full)
		}
	}
	return &Result{
		ID:    "abl-x",
		Table: t,
		Notes: []string{
			"The chooser and weak-override gate are this reproduction's arbitration additions (DESIGN.md section 5);",
			"knocking them out shows what they contribute. Depth adaptation and history range are the paper's features.",
		},
	}, nil
}
