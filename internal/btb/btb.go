// Package btb implements the front-end target substrate from the paper's
// Table II: a set-associative branch target buffer (16K entries, 8-way)
// and an ITTAGE-style indirect-target predictor. Direction prediction
// (package tage and friends) decides *whether* a branch redirects; this
// package decides *where to* — the other half of the decoupled front end
// the paper's core model assumes.
//
// The paper does not evaluate target prediction directly (its traces have
// resolved targets), so this substrate backs the timing model and the
// indirect-branch extension example rather than a paper figure.
package btb

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/history"
)

// Config shapes a BTB.
type Config struct {
	// Name labels the configuration.
	Name string
	// Entries is the total capacity (16K in Table II).
	Entries int
	// Assoc is the set associativity (8 in Table II).
	Assoc int
	// TagBits is the partial tag width.
	TagBits uint
}

// DefaultConfig returns the Table II BTB: 16K entries, 8-way.
func DefaultConfig() Config {
	return Config{Name: "btb-16k", Entries: 16 * 1024, Assoc: 8, TagBits: 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Entries < c.Assoc || c.Assoc < 1:
		return fmt.Errorf("btb %q: invalid geometry %d/%d", c.Name, c.Entries, c.Assoc)
	case c.TagBits < 4 || c.TagBits > 40:
		return fmt.Errorf("btb %q: tag bits %d out of range", c.Name, c.TagBits)
	}
	return nil
}

type btbEntry struct {
	tag    uint32
	target uint64
	kind   core.BranchKind
	lru    uint64
	valid  bool
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	cfg     Config
	sets    [][]btbEntry
	mask    uint64
	tagMask uint32
	clock   uint64

	// Stats.
	lookups uint64
	hits    uint64
	wrongT  uint64 // hit with a stale target
}

// New builds a BTB.
func New(cfg Config) (*BTB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := 1
	for numSets*2*cfg.Assoc <= cfg.Entries {
		numSets *= 2
	}
	b := &BTB{
		cfg:     cfg,
		mask:    uint64(numSets - 1),
		tagMask: uint32(uint64(1)<<cfg.TagBits - 1),
	}
	b.sets = make([][]btbEntry, numSets)
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, cfg.Entries/numSets)
	}
	return b, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *BTB {
	b, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("btb: invalid config: %v", err))
	}
	return b
}

func (b *BTB) index(pc uint64) (set uint64, tag uint32) {
	// Full-entropy mix: instruction addresses cluster in a narrow range,
	// so raw high bits would leave the tag nearly constant.
	h := hashutil.Mix64(pc)
	return h & b.mask, uint32(h>>32) & b.tagMask
}

// Lookup predicts the target (and kind) of the branch at pc. ok=false is
// a BTB miss: the front end does not even know a branch lives here.
func (b *BTB) Lookup(pc uint64) (target uint64, kind core.BranchKind, ok bool) {
	b.lookups++
	set, tag := b.index(pc)
	for i := range b.sets[set] {
		e := &b.sets[set][i]
		if e.valid && e.tag == tag {
			b.hits++
			e.lru = b.clockTick()
			return e.target, e.kind, true
		}
	}
	return 0, 0, false
}

// Update installs or refreshes the branch's entry after resolution; it
// reports whether a prior hit carried a stale target (a misfetch).
func (b *BTB) Update(br core.Branch) {
	set, tag := b.index(br.PC)
	row := b.sets[set]
	for i := range row {
		e := &row[i]
		if e.valid && e.tag == tag {
			if e.target != br.Target {
				b.wrongT++
				e.target = br.Target
			}
			e.kind = br.Kind
			e.lru = b.clockTick()
			return
		}
	}
	victim := 0
	for i := range row {
		if !row[i].valid {
			victim = i
			break
		}
		if row[i].lru < row[victim].lru {
			victim = i
		}
	}
	row[victim] = btbEntry{tag: tag, target: br.Target, kind: br.Kind, lru: b.clockTick(), valid: true}
}

func (b *BTB) clockTick() uint64 {
	b.clock++
	return b.clock
}

// Stats returns lookup/hit/stale-target counters.
func (b *BTB) Stats() (lookups, hits, wrongTarget uint64) {
	return b.lookups, b.hits, b.wrongT
}

// ITTAGE is a compact indirect-target predictor in the ITTAGE mold: a
// direct-mapped base table plus tagged tables with geometrically longer
// global histories, each entry holding a full target and a confidence
// counter. The longest matching entry provides the target.
type ITTAGE struct {
	ghist *history.Global
	folds []*history.Folded
	tagFs []*history.Folded
	lens  []int
	base  []ittEntry
	tabs  [][]ittEntry

	lookups uint64
	correct uint64
}

type ittEntry struct {
	tag    uint32
	target uint64
	conf   int8
	valid  bool
}

const (
	ittLogBase  = 11
	ittLogTable = 9
	ittTagBits  = 10
	ittConfMax  = 3
)

// NewITTAGE builds the predictor with the given history lengths
// (defaults: 8, 16, 32, 64 when nil).
func NewITTAGE(lens []int) *ITTAGE {
	if lens == nil {
		lens = []int{8, 16, 32, 64}
	}
	p := &ITTAGE{
		ghist: history.NewGlobal(lens[len(lens)-1] + 8),
		lens:  lens,
		base:  make([]ittEntry, 1<<ittLogBase),
	}
	for _, l := range lens {
		p.folds = append(p.folds, history.NewFolded(l, ittLogTable))
		p.tagFs = append(p.tagFs, history.NewFolded(l, ittTagBits))
		p.tabs = append(p.tabs, make([]ittEntry, 1<<ittLogTable))
	}
	return p
}

func (p *ITTAGE) indexTag(pc uint64, t int) (idx uint64, tag uint32) {
	m := hashutil.PCMix(pc)
	idx = (m ^ p.folds[t].Value()) & (1<<ittLogTable - 1)
	tag = uint32((m>>7)^p.tagFs[t].Value()) & (1<<ittTagBits - 1)
	return idx, tag
}

// Predict returns the predicted target for the indirect branch at pc
// (0 when nothing is known yet).
func (p *ITTAGE) Predict(pc uint64) uint64 {
	p.lookups++
	for t := len(p.tabs) - 1; t >= 0; t-- {
		idx, tag := p.indexTag(pc, t)
		e := &p.tabs[t][idx]
		if e.valid && e.tag == tag && e.conf >= 0 {
			return e.target
		}
	}
	e := &p.base[hashutil.PCMix(pc)&(1<<ittLogBase-1)]
	if e.valid {
		return e.target
	}
	return 0
}

// Update trains with the resolved target and advances history; call once
// per retired indirect branch, after Predict.
func (p *ITTAGE) Update(br core.Branch, predicted uint64) {
	if predicted == br.Target {
		p.correct++
	}
	// Train the providing entry; allocate one longer entry on a miss.
	provider := -1
	for t := len(p.tabs) - 1; t >= 0; t-- {
		idx, tag := p.indexTag(pc64(br), t)
		e := &p.tabs[t][idx]
		if e.valid && e.tag == tag {
			provider = t
			if e.target == br.Target {
				if e.conf < ittConfMax {
					e.conf++
				}
			} else if e.conf > 0 {
				e.conf--
			} else {
				e.target = br.Target
				e.conf = 0
			}
			break
		}
	}
	be := &p.base[hashutil.PCMix(br.PC)&(1<<ittLogBase-1)]
	if !be.valid || be.target != br.Target {
		*be = ittEntry{target: br.Target, valid: true}
	}
	if predicted != br.Target {
		for t := provider + 1; t < len(p.tabs); t++ {
			idx, tag := p.indexTag(pc64(br), t)
			e := &p.tabs[t][idx]
			if !e.valid || e.conf <= 0 {
				*e = ittEntry{tag: tag, target: br.Target, valid: true}
				break
			}
			e.conf--
		}
	}
	p.push(br)
}

func pc64(br core.Branch) uint64 { return br.PC }

// Observe advances history for non-indirect branches so the folds track
// the same stream the direction predictors see.
func (p *ITTAGE) Observe(br core.Branch) { p.push(br) }

func (p *ITTAGE) push(br core.Branch) {
	p.ghist.Push(core.HistoryBit(br))
	for i := range p.folds {
		p.folds[i].Update(p.ghist)
		p.tagFs[i].Update(p.ghist)
	}
}

// Accuracy returns the fraction of indirect predictions that matched.
func (p *ITTAGE) Accuracy() float64 {
	if p.lookups == 0 {
		return 1
	}
	return float64(p.correct) / float64(p.lookups)
}

// FrontEndStats aggregates a target-prediction pass over a branch stream.
type FrontEndStats struct {
	Branches      uint64
	BTBMisses     uint64 // branch unknown to the BTB at fetch
	StaleTargets  uint64 // BTB hit, direct target changed (rare)
	IndirectSeen  uint64
	IndirectWrong uint64 // ITTAGE target mispredictions
}

// Redirects returns the total front-end redirect count (BTB misses plus
// wrong indirect targets): the target-side analogue of direction MPKI.
func (s FrontEndStats) Redirects() uint64 {
	return s.BTBMisses + s.StaleTargets + s.IndirectWrong
}

// RunFrontEnd drives the BTB and ITTAGE over a branch stream for up to
// maxInstr instructions, returning target-prediction statistics.
func RunFrontEnd(src core.Source, b *BTB, it *ITTAGE, maxInstr uint64) (FrontEndStats, error) {
	if b == nil || it == nil {
		return FrontEndStats{}, fmt.Errorf("btb: nil structures")
	}
	var st FrontEndStats
	var instr uint64
	for instr < maxInstr {
		br, ok := src.Next()
		if !ok {
			break
		}
		instr += br.Instructions()
		st.Branches++

		_, _, hit := b.Lookup(br.PC)
		if !hit {
			st.BTBMisses++
		}
		if br.Kind == core.IndirectJump {
			st.IndirectSeen++
			pred := it.Predict(br.PC)
			if pred != br.Target {
				st.IndirectWrong++
			}
			it.Update(br, pred)
		} else {
			it.Observe(br)
		}
		b.Update(br)
	}
	_, _, st.StaleTargets = b.Stats()
	return st, nil
}
