package btb

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "b", Entries: 4, Assoc: 8, TagBits: 16},
		{Name: "a", Entries: 16, Assoc: 0, TagBits: 16},
		{Name: "t", Entries: 16, Assoc: 4, TagBits: 2},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s should fail validation", c.Name)
		}
	}
}

func TestBTBHitAfterInstall(t *testing.T) {
	b := MustNew(DefaultConfig())
	br := core.Branch{PC: 0x4000, Target: 0x8000, Kind: core.Call, Taken: true}
	if _, _, ok := b.Lookup(br.PC); ok {
		t.Fatal("cold BTB must miss")
	}
	b.Update(br)
	target, kind, ok := b.Lookup(br.PC)
	if !ok || target != 0x8000 || kind != core.Call {
		t.Fatalf("lookup after install = (%#x, %v, %v)", target, kind, ok)
	}
}

func TestBTBStaleTargetCounted(t *testing.T) {
	b := MustNew(DefaultConfig())
	br := core.Branch{PC: 0x4000, Target: 0x8000, Kind: core.IndirectJump, Taken: true}
	b.Update(br)
	br.Target = 0x9000
	b.Update(br)
	if _, _, wrong := b.Stats(); wrong != 1 {
		t.Fatalf("stale target not counted: %d", wrong)
	}
	if target, _, _ := b.Lookup(br.PC); target != 0x9000 {
		t.Fatal("target not refreshed")
	}
}

func TestBTBLRUEviction(t *testing.T) {
	b := MustNew(Config{Name: "tiny", Entries: 8, Assoc: 8, TagBits: 20})
	// Fill one set beyond capacity; the least recently used entry goes.
	for i := 0; i < 9; i++ {
		b.Update(core.Branch{PC: uint64(i) << 24, Target: 1, Kind: core.Jump, Taken: true})
	}
	hits := 0
	for i := 0; i < 9; i++ {
		if _, _, ok := b.Lookup(uint64(i) << 24); ok {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("expected exactly one eviction, got %d/9 resident", hits)
	}
}

func TestITTAGELearnsPayloadDispatch(t *testing.T) {
	// A virtual-call site whose target depends on a 2-bit key encoded in
	// preceding history: ITTAGE must learn it, a plain base table cannot.
	p := NewITTAGE(nil)
	rng := hashutil.NewRand(5)
	wrong, n := 0, 0
	for i := 0; i < 30000; i++ {
		key := rng.Intn(4)
		// Two history branches reveal the key.
		for bit := 0; bit < 2; bit++ {
			br := core.Branch{PC: 0x100 + uint64(bit)*8, Kind: core.CondDirect, Taken: key>>bit&1 == 1, InstrGap: 2}
			p.Observe(br)
		}
		br := core.Branch{PC: 0x4000, Target: 0x8000 + uint64(key)*0x100, Kind: core.IndirectJump, Taken: true, InstrGap: 3}
		pred := p.Predict(br.PC)
		if i > 5000 {
			n++
			if pred != br.Target {
				wrong++
			}
		}
		p.Update(br, pred)
	}
	if rate := float64(wrong) / float64(n); rate > 0.05 {
		t.Fatalf("ITTAGE missed %.1f%% of history-determined targets", 100*rate)
	}
	if p.Accuracy() < 0.8 {
		t.Fatalf("accuracy accounting broken: %.3f", p.Accuracy())
	}
}

func TestITTAGEMonomorphicSite(t *testing.T) {
	p := NewITTAGE(nil)
	br := core.Branch{PC: 0x4000, Target: 0xbeef, Kind: core.IndirectJump, Taken: true}
	for i := 0; i < 100; i++ {
		pred := p.Predict(br.PC)
		p.Update(br, pred)
	}
	if p.Predict(br.PC) != 0xbeef {
		t.Fatal("monomorphic target not learned")
	}
}

func TestRunFrontEndOnIndirectWorkload(t *testing.T) {
	prof := workload.Default("indirect", 77)
	prof.IndirectFrac = 0.05
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunFrontEnd(workload.NewGenerator(prog), MustNew(DefaultConfig()), NewITTAGE(nil), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndirectSeen == 0 {
		t.Fatal("indirect workload emitted no indirect branches")
	}
	if st.Branches == 0 || st.BTBMisses == 0 {
		t.Fatal("front end saw no traffic")
	}
	// The BTB working set fits easily: misses must be a cold-start
	// residue, not steady-state.
	if missRate := float64(st.BTBMisses) / float64(st.Branches); missRate > 0.10 {
		t.Fatalf("BTB miss rate %.2f%% too high for a fitting working set", 100*missRate)
	}
	// ITTAGE must beat the trivial always-wrong bound by far; payload-
	// driven dispatch is learnable through history.
	if wrongRate := float64(st.IndirectWrong) / float64(st.IndirectSeen); wrongRate > 0.5 {
		t.Fatalf("indirect wrong rate %.1f%%", 100*wrongRate)
	}
}

func TestRunFrontEndNilStructures(t *testing.T) {
	if _, err := RunFrontEnd(core.NewSliceSource(nil), nil, nil, 10); err == nil {
		t.Fatal("nil structures must error")
	}
}

func TestDefaultWorkloadsEmitNoIndirects(t *testing.T) {
	// The preset workloads must stay direct-call only (IndirectFrac 0):
	// the recorded experiment results depend on their streams.
	for _, prof := range workload.Workloads() {
		if prof.IndirectFrac != 0 {
			t.Errorf("preset %s has IndirectFrac %v", prof.Name, prof.IndirectFrac)
		}
	}
}
