// Package core defines the shared vocabulary of the LLBP-X reproduction:
// branch records, the predictor contract, and simulation results. It is the
// root of the internal dependency graph — every substrate (TAGE, LLBP,
// LLBP-X, the workload generator, the simulator) speaks these types.
package core

import "fmt"

// BranchKind classifies a control-flow instruction. The distinction that
// matters to LLBP is conditional vs unconditional: unconditional branches
// (calls, returns, direct and indirect jumps) feed the rolling context
// register, while conditional branches are predicted.
type BranchKind uint8

const (
	// CondDirect is a direct conditional branch; the only kind that is
	// predicted for direction.
	CondDirect BranchKind = iota
	// Jump is a direct unconditional jump.
	Jump
	// Call is a direct function call.
	Call
	// Return is a function return.
	Return
	// IndirectJump is an indirect unconditional jump (including indirect
	// calls, which behave identically for context formation).
	IndirectJump

	numBranchKinds
)

var kindNames = [numBranchKinds]string{
	CondDirect:   "cond",
	Jump:         "jump",
	Call:         "call",
	Return:       "ret",
	IndirectJump: "ijump",
}

// String returns a short lower-case mnemonic for the kind.
func (k BranchKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("BranchKind(%d)", uint8(k))
}

// Conditional reports whether branches of this kind are direction-predicted.
func (k BranchKind) Conditional() bool { return k == CondDirect }

// Unconditional reports whether branches of this kind always redirect
// control flow. Unconditional branches form LLBP's program contexts.
func (k BranchKind) Unconditional() bool { return k != CondDirect && k < numBranchKinds }

// Valid reports whether k is one of the defined kinds.
func (k BranchKind) Valid() bool { return k < numBranchKinds }

// Branch is one retired control-flow instruction in a trace.
type Branch struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control transfers to when the branch is taken.
	Target uint64
	// Kind classifies the branch.
	Kind BranchKind
	// Taken is the resolved direction. Unconditional branches are always
	// taken.
	Taken bool
	// InstrGap is the number of instructions retired since the previous
	// branch, inclusive of this branch (so it is always >= 1). Summing
	// InstrGap over a trace yields the retired instruction count used for
	// MPKI accounting.
	InstrGap uint32
}

// Instructions returns the instruction count this branch accounts for,
// treating a zero gap (e.g. from a hand-built record) as a single
// instruction.
func (b Branch) Instructions() uint64 {
	if b.InstrGap == 0 {
		return 1
	}
	return uint64(b.InstrGap)
}

// Prediction carries everything a hierarchical predictor needs to know
// about a direction prediction: the direction itself plus provenance used
// for arbitration, statistical-corrector gating, and stats.
type Prediction struct {
	// Taken is the final predicted direction.
	Taken bool
	// ProviderLen is the global-history length (in bits) of the component
	// that provided the prediction; 0 means the bimodal fallback.
	ProviderLen int
	// Confidence is a small non-negative arbitration weight: higher means
	// the providing counter was more saturated.
	Confidence int
	// FastTaken is the direction a single-cycle front-end component
	// (bimodal, or the LLBP pattern buffer) would have produced. The
	// overriding-pipeline model compares it with Taken to count override
	// redirects.
	FastTaken bool
	// FromSecondLevel reports whether the second-level (LLBP/LLBP-X
	// pattern buffer) provided the final direction.
	FromSecondLevel bool
}

// Predictor is the contract every direction predictor in this repository
// implements. The simulator drives it in retire order:
//
//   - Predict is called once per conditional branch, before the outcome is
//     revealed. It must not commit any state that depends on the outcome.
//   - Update is called for the same conditional branch immediately after,
//     with the resolved record and the prediction previously returned.
//   - TrackUnconditional is called once per unconditional branch so the
//     predictor can maintain global history and (for LLBP) the rolling
//     context register.
//
// Implementations are not safe for concurrent use; a simulator owns one
// predictor.
type Predictor interface {
	// Name identifies the configuration (e.g. "tsl-64k", "llbp", "llbp-x").
	Name() string
	// Predict returns the direction prediction for the conditional branch
	// at pc.
	Predict(pc uint64) Prediction
	// Update commits the resolved conditional branch, training all
	// components. pred must be the value returned by the immediately
	// preceding Predict call for the same branch.
	Update(b Branch, pred Prediction)
	// TrackUnconditional observes a retired unconditional branch.
	TrackUnconditional(b Branch)
}

// StatsProvider is implemented by predictors that expose internal counters
// (bandwidth, prefetch timeliness, context occupancy, ...). Keys are
// dotted lower-case paths, e.g. "llbp.prefetch.ontime".
type StatsProvider interface {
	Stats() map[string]float64
}

// Resetter is implemented by predictors whose measurement counters can be
// cleared after warmup without disturbing learned state.
type Resetter interface {
	ResetStats()
}

// Source yields a stream of retired branches in program order. Next
// returns ok=false when the stream is exhausted. Sources are single-pass;
// callers needing multiple passes construct a fresh Source per pass.
type Source interface {
	Next() (Branch, bool)
}

// SliceSource adapts a slice of branches to the Source interface.
type SliceSource struct {
	branches []Branch
	pos      int
}

// NewSliceSource returns a Source reading from branches.
func NewSliceSource(branches []Branch) *SliceSource {
	return &SliceSource{branches: branches}
}

// Next implements Source.
func (s *SliceSource) Next() (Branch, bool) {
	if s.pos >= len(s.branches) {
		return Branch{}, false
	}
	b := s.branches[s.pos]
	s.pos++
	return b, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// HistoryBit is the canonical one-bit-per-branch global-history update
// rule shared by all predictors and by the synthetic workloads' outcome
// functions: conditional branches contribute their direction, and
// unconditional branches contribute a path bit of their address. Every
// component observing history MUST use this rule so that "deterministic
// function of history" workload branches are observable by the predictors.
func HistoryBit(b Branch) uint8 {
	if b.Kind.Conditional() {
		if b.Taken {
			return 1
		}
		return 0
	}
	return uint8(b.PC>>4) & 1
}
