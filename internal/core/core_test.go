package core

import "testing"

func TestBranchKindClassification(t *testing.T) {
	cases := []struct {
		kind   BranchKind
		cond   bool
		uncond bool
		name   string
	}{
		{CondDirect, true, false, "cond"},
		{Jump, false, true, "jump"},
		{Call, false, true, "call"},
		{Return, false, true, "ret"},
		{IndirectJump, false, true, "ijump"},
	}
	for _, c := range cases {
		if c.kind.Conditional() != c.cond {
			t.Errorf("%v.Conditional() = %v", c.kind, c.kind.Conditional())
		}
		if c.kind.Unconditional() != c.uncond {
			t.Errorf("%v.Unconditional() = %v", c.kind, c.kind.Unconditional())
		}
		if !c.kind.Valid() {
			t.Errorf("%v should be valid", c.kind)
		}
		if c.kind.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.kind, c.kind.String(), c.name)
		}
	}
	if BranchKind(200).Valid() {
		t.Error("kind 200 should be invalid")
	}
	if BranchKind(200).String() == "" {
		t.Error("invalid kind should still stringify")
	}
}

func TestBranchInstructions(t *testing.T) {
	if got := (Branch{InstrGap: 0}).Instructions(); got != 1 {
		t.Errorf("zero gap should count as 1 instruction, got %d", got)
	}
	if got := (Branch{InstrGap: 7}).Instructions(); got != 7 {
		t.Errorf("Instructions() = %d, want 7", got)
	}
}

func TestHistoryBitRule(t *testing.T) {
	taken := Branch{Kind: CondDirect, Taken: true}
	notTaken := Branch{Kind: CondDirect, Taken: false}
	if HistoryBit(taken) != 1 || HistoryBit(notTaken) != 0 {
		t.Fatal("conditional branches must contribute their direction")
	}
	// Unconditional branches contribute an address bit, independent of
	// Taken.
	u1 := Branch{Kind: Call, PC: 0x10, Taken: true} // bit4 set
	u2 := Branch{Kind: Call, PC: 0x20, Taken: true} // bit4 clear
	if HistoryBit(u1) != 1 || HistoryBit(u2) != 0 {
		t.Fatal("unconditional branches must contribute PC bit 4")
	}
}

func TestSliceSource(t *testing.T) {
	branches := []Branch{
		{PC: 1, Kind: CondDirect, Taken: true},
		{PC: 2, Kind: Call},
		{PC: 3, Kind: Return},
	}
	s := NewSliceSource(branches)
	for i := range branches {
		b, ok := s.Next()
		if !ok || b.PC != branches[i].PC {
			t.Fatalf("Next() #%d = (%v, %v)", i, b, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source must report ok=false")
	}
	s.Reset()
	if b, ok := s.Next(); !ok || b.PC != 1 {
		t.Fatal("Reset must rewind to the first branch")
	}
}
