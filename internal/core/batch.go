package core

// BatchPredictor is implemented by predictors that can process a run of
// branches in one call. RunBatch must be observably identical to the
// canonical per-branch loop — for each branch in order:
//
//   - conditional: preds[i] = Predict(b.PC), then Update(b, preds[i]);
//   - unconditional: TrackUnconditional(b), and preds[i] is set to
//     Prediction{Taken: true} (unconditional branches are always taken and
//     carry no provider metadata).
//
// The point of the interface is performance, not semantics: a concrete
// implementation runs the loop with direct method calls, so per-branch
// work is not paid through five dynamic dispatches, and the compiler sees
// the whole loop body.
type BatchPredictor interface {
	RunBatch(batch []Branch, preds []Prediction)
}

// RunBatch drives p over batch in retire order, filling preds (which must
// have at least len(batch) elements) with the per-branch predictions. It
// uses the predictor's own batched implementation when it has one and
// falls back to the canonical per-branch loop otherwise, so callers can
// batch unconditionally.
func RunBatch(p Predictor, batch []Branch, preds []Prediction) {
	if bp, ok := p.(BatchPredictor); ok {
		bp.RunBatch(batch, preds)
		return
	}
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = Prediction{Taken: true}
		}
	}
}
