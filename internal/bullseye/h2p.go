package bullseye

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// h2pFile decodes the subset of the llbpsim -attr -json export needed to
// seed the H2P set: the per-static-branch table's PCs, ranked by
// misprediction share.
type h2pFile struct {
	Table []struct {
		PC string `json:"pc"`
	} `json:"table"`
}

// maxH2PFileBytes caps how much of an attribution export is read into
// memory. Real exports are a few KB of top-K rows; the cap keeps a
// mistaken path — a device file, a giant unrelated file — from growing
// the process without bound.
const maxH2PFileBytes = 16 << 20

// LoadH2PFile reads an attribution export (llbpsim -attr -json) and
// returns its static branch PCs in table order, for Config.SeedPCs. Only
// regular files under maxH2PFileBytes are accepted: a fifo or device
// would block or stream forever under os.ReadFile.
func LoadH2PFile(path string) ([]uint64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.Mode().IsRegular() {
		return nil, fmt.Errorf("bullseye: %s: not a regular file", path)
	}
	if fi.Size() > maxH2PFileBytes {
		return nil, fmt.Errorf("bullseye: %s: %d bytes exceeds the %d-byte attribution export limit", path, fi.Size(), maxH2PFileBytes)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f h2pFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bullseye: %s: %w", path, err)
	}
	pcs := make([]uint64, 0, len(f.Table))
	for _, row := range f.Table {
		pc, err := strconv.ParseUint(strings.TrimPrefix(row.PC, "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bullseye: %s: bad pc %q: %w", path, row.PC, err)
		}
		pcs = append(pcs, pc)
	}
	return pcs, nil
}
