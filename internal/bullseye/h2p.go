package bullseye

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// h2pFile decodes the subset of the llbpsim -attr -json export needed to
// seed the H2P set: the per-static-branch table's PCs, ranked by
// misprediction share.
type h2pFile struct {
	Table []struct {
		PC string `json:"pc"`
	} `json:"table"`
}

// LoadH2PFile reads an attribution export (llbpsim -attr -json) and
// returns its static branch PCs in table order, for Config.SeedPCs.
func LoadH2PFile(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f h2pFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bullseye: %s: %w", path, err)
	}
	pcs := make([]uint64, 0, len(f.Table))
	for _, row := range f.Table {
		pc, err := strconv.ParseUint(strings.TrimPrefix(row.PC, "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bullseye: %s: bad pc %q: %w", path, row.PC, err)
		}
		pcs = append(pcs, pc)
	}
	return pcs, nil
}
