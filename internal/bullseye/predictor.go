package bullseye

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/llbp"
	"llbpx/internal/oatable"
	"llbpx/internal/patternpool"
	"llbpx/internal/tage"
)

// Arbitration constants shared with internal/llbp's design (the chooser
// and weak-override gates behave identically so the two second levels are
// comparable like-for-like).
const (
	chooserMax  = 255
	chooserMin  = -256
	chooserGate = -12
)

// candCap hard-caps the candidate filter's population. The table is
// reserved for exactly this many entries at construction, so admission
// tracking never rehashes (the zero-alloc bar), and a workload — or an
// adversarial client — streaming distinct mispredicting PCs can never
// grow the filter past its attach-time budget charge: at the cap, the
// coldest candidates are evicted to make room (see compactCand).
// candCtrMax saturates the per-branch miss counters.
const (
	candCap    = 1 << 13
	candCtrMax = 1 << 30
	// candChargeBytes is the candidate filter's budget charge against an
	// attached pool namespace, covering its full capped footprint: the
	// open-addressed table holds 2*candCap slots at 13 bytes each
	// (control byte + uint64 key + int32 counter) plus 8 bytes per entry
	// of preallocated eviction scratch — 34 bytes per capped entry. All
	// of it is allocated eagerly at construction, so the charge is
	// attach-time constant and exact.
	candChargeBytes = int64(candCap) * 34
)

// bullseyeStats are the measurement counters.
type bullseyeStats struct {
	matches    uint64 // predictions where a dedicated pattern matched
	overrides  uint64 // predictions provided by the dedicated state
	useful     uint64 // ...that corrected a baseline misprediction
	harmful    uint64 // ...that broke a correct baseline prediction
	allocs     uint64
	promotions uint64 // branches admitted to the H2P set
}

// predState is the scratch carried from Predict to the matching Update.
type predState struct {
	pc       uint64
	d        tage.Detail
	set      *llbp.PatternSet
	pat      *llbp.Pattern
	patLen   int
	provided bool
	tags     [tage.NumTables]uint32
}

// Predictor is the H2P-targeted predictor: an unmodified (small)
// TAGE-SC-L first level, plus large dedicated pattern sets for admitted
// H2P branches only. It implements core.BatchPredictor, snapshot.State,
// patternpool.Attacher, and patternpool.Releaser.
type Predictor struct {
	cfg    Config
	dirCfg llbp.Config
	tsl    *tage.Predictor
	bank   *tage.TagBank
	cd     *llbp.ContextDir
	active []int

	// cand is the H2P candidate filter: static branch PC -> saturating
	// count of baseline mispredictions. A branch whose count reaches
	// PromoteMisses is admitted and may hold a dedicated pattern set.
	// Population is hard-capped at candCap; candScratch is the
	// preallocated key buffer the eviction sweep collects into.
	cand        oatable.Map[int32]
	candScratch []uint64

	ns   *patternpool.Namespace
	tick int64
	cur  predState
	st   bullseyeStats

	// trustWeak and chooser adapt overrides exactly as in internal/llbp:
	// weak (confidence-1) patterns are gated while trustWeak is negative,
	// and all disagreeing overrides are suppressed — with a 1-in-16 probe —
	// while the chooser sits below chooserGate.
	trustWeak  int
	chooser    int
	probeClock uint64
}

// New constructs a bullseye predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tsl, err := tage.New(cfg.BaseTSL)
	if err != nil {
		return nil, fmt.Errorf("bullseye %q: baseline: %w", cfg.Name, err)
	}
	p := &Predictor{
		cfg:    cfg,
		dirCfg: cfg.dirConfig(),
		tsl:    tsl,
		bank:   tage.NewTagBank(cfg.TagBits),
		active: append([]int(nil), cfg.HistIndices...),
	}
	if err := p.dirCfg.Validate(); err != nil {
		return nil, fmt.Errorf("bullseye %q: directory: %w", cfg.Name, err)
	}
	p.cd = llbp.NewContextDir(&p.dirCfg)
	p.cand.Reserve(candCap)
	p.candScratch = make([]uint64, 0, candCap)
	for _, pc := range cfg.SeedPCs {
		if p.cand.Len() >= candCap {
			// Attribution exports rank by misprediction share, so
			// truncating at the cap keeps the hottest branches.
			break
		}
		n, inserted := p.cand.Put(pc)
		*n = int32(cfg.PromoteMisses)
		if inserted {
			p.st.promotions++
		}
	}
	return p, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("bullseye: invalid config: %v", err))
	}
	return p
}

// Name implements core.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Baseline exposes the first-level TAGE-SC-L (read-only use).
func (p *Predictor) Baseline() *tage.Predictor { return p.tsl }

// TrackedBranches returns the candidate filter's population (diagnostics).
func (p *Predictor) TrackedBranches() int { return p.cand.Len() }

// cidOf maps a static branch PC to its directory key. The dedicated state
// is per-branch, so the "context" is just a well-mixed PC.
func cidOf(pc uint64) uint64 { return hashutil.Mix64(hashutil.PCMix(pc)) }

// admitted reports whether pc has crossed the H2P admission threshold.
func (p *Predictor) admitted(pc uint64) bool {
	n := p.cand.Get(pc)
	return n != nil && int(*n) >= p.cfg.PromoteMisses
}

// AttachPatternPool backs the dedicated pattern store with a shared pool
// namespace (patternpool.Attacher). Must be called before the first
// branch executes. The candidate filter's fixed footprint is charged
// against the namespace too — it is second-level state, just index-shaped.
func (p *Predictor) AttachPatternPool(ns *patternpool.Namespace) {
	p.cd.AttachPool(ns)
	p.ns = ns
	ns.Charge(candChargeBytes)
}

// ReleasePatternStore hands the dedicated storage back to the pool
// (patternpool.Releaser). The H2P candidate filter and the first level
// keep their state.
func (p *Predictor) ReleasePatternStore() {
	p.cd.Release()
	if p.ns != nil {
		p.ns.Uncharge(candChargeBytes)
		p.ns = nil
	}
}

// Predict implements core.Predictor: baseline lookup, then arbitration
// against the branch's dedicated pattern set when one exists. Dedicated
// state is read directly (zero latency): it backs specific static
// branches, so there is no context to prefetch ahead of.
func (p *Predictor) Predict(pc uint64) core.Prediction {
	d := p.tsl.Lookup(pc)
	c := &p.cur
	c.pc, c.d = pc, d
	c.set, c.pat, c.provided = nil, nil, false
	c.patLen = -1

	for _, li := range p.active {
		c.tags[li] = p.bank.Tag(pc, li)
	}
	if set := p.cd.Lookup(cidOf(pc)); set != nil {
		c.set = set
		c.pat, c.patLen = set.BestMatch(&c.tags)
	}

	base := d.TageTaken
	provLen, conf := d.ProviderLen, d.Confidence
	gated := false
	if c.pat != nil {
		if c.pat.Confidence() == 1 && p.trustWeak < 0 {
			gated = true
		}
		if c.pat.Taken() != d.FinalTaken && p.chooser <= chooserGate {
			p.probeClock++
			if p.probeClock&15 != 0 {
				gated = true
			}
		}
	}
	if c.pat != nil && tage.HistoryLengths[c.patLen] >= d.ProviderLen && !gated {
		// Dedicated state wins on same-or-longer history (the paper's
		// arbitration rule), under the same trust gates as LLBP.
		c.provided = true
		base = c.pat.Taken()
		provLen = tage.HistoryLengths[c.patLen]
		conf = c.pat.Confidence()
	}

	final := base
	switch {
	case d.LoopValid:
		final = d.LoopTaken
	case !c.provided:
		final = d.FinalTaken
	}

	fast := d.BimTaken
	if c.provided {
		fast = base
	}
	return core.Prediction{
		Taken:           final,
		ProviderLen:     provLen,
		Confidence:      conf,
		FastTaken:       fast,
		FromSecondLevel: c.provided,
	}
}

// Update implements core.Predictor.
func (p *Predictor) Update(b core.Branch, pred core.Prediction) {
	c := &p.cur
	d := c.d
	taken := b.Taken
	mis := pred.Taken != taken
	baselineWrong := d.FinalTaken != taken

	if c.provided {
		p.st.overrides++
		right := c.pat.Taken() == taken
		switch {
		case right && baselineWrong:
			p.st.useful++
		case !right && !baselineWrong:
			p.st.harmful++
		}
	}
	if c.provided && c.pat.Taken() != d.FinalTaken {
		if c.pat.Taken() == taken {
			if p.chooser < chooserMax {
				p.chooser++
			}
		} else if p.chooser > chooserMin {
			p.chooser--
		}
	}
	if c.pat != nil && c.pat.Confidence() == 1 && c.pat.Taken() != d.TageTaken {
		if c.pat.Taken() == taken {
			if p.trustWeak < 7 {
				p.trustWeak++
			}
		} else if p.trustWeak > -8 {
			p.trustWeak--
		}
	}

	// Train the matched pattern; provided-and-wrong trains twice so stale
	// confident patterns flip quickly (as in internal/llbp).
	if c.pat != nil {
		p.st.matches++
		c.pat.CtrUpdate(taken)
		if c.provided && c.pat.Taken() != taken {
			c.pat.CtrUpdate(taken)
		}
		c.set.Dirty = true
	}

	// H2P admission tracking: count baseline mispredictions per static
	// branch; crossing the threshold promotes the branch. At the
	// population cap, a new PC first evicts the coldest candidates —
	// streams of one-off mispredicting PCs recycle through the filter's
	// fixed footprint instead of growing it.
	if baselineWrong {
		n := p.cand.Get(b.PC)
		if n == nil {
			if p.cand.Len() >= candCap {
				p.compactCand()
			}
			if p.cand.Len() < candCap {
				n, _ = p.cand.Put(b.PC)
			}
		}
		if n != nil {
			if *n < candCtrMax {
				*n++
			}
			if int(*n) == p.cfg.PromoteMisses {
				p.st.promotions++
			}
		}
	}

	// Allocate dedicated patterns only for admitted branches, climbing the
	// branch's own ladder of history lengths (llbp's OwnLadder policy).
	if mis && p.admitted(b.PC) {
		p.allocate(b)
	}

	scInput := d.TageTaken
	scApplied := !d.LoopValid && !c.provided
	p.tsl.CommitDetail(b, d, scInput, scApplied)
	p.bank.Update(p.tsl.History())
	p.tick++
}

// compactCand frees candidate-filter slots when the population hits
// candCap: every not-yet-admitted candidate is dropped first (they hold
// partial miss counts a genuinely hard branch will quickly re-earn), and
// only when every resident is admitted does the lowest-count batch go
// instead. The sweep always evicts at least one entry, collects keys into
// the preallocated scratch buffer, and deletes outside the Range — so the
// hot path stays allocation-free even under an adversarial stream of
// unique PCs. Evicted admitted branches merely stop allocating new
// dedicated patterns; any existing pattern set ages out of the directory
// through its normal replacement.
func (p *Predictor) compactCand() {
	evict := p.candScratch[:0]
	min := int32(candCtrMax)
	p.cand.Range(func(pc uint64, n *int32) bool {
		if int(*n) < p.cfg.PromoteMisses {
			evict = append(evict, pc)
		} else if *n < min {
			min = *n
		}
		return true
	})
	if len(evict) == 0 {
		p.cand.Range(func(pc uint64, n *int32) bool {
			if *n <= min {
				evict = append(evict, pc)
			}
			return true
		})
	}
	for _, pc := range evict {
		p.cand.Delete(pc)
	}
}

// allocate installs a pattern one active history length above the current
// match, creating the branch's dedicated set on first use.
func (p *Predictor) allocate(b core.Branch) {
	c := &p.cur
	allocIdx := llbp.NextActiveLen(p.active, c.patLen)
	if allocIdx < 0 {
		return
	}
	set := c.set
	if set == nil {
		set, _, _ = p.cd.Insert(cidOf(c.pc))
	}
	buckets := p.dirCfg.Buckets
	set.Allocate(c.tags[allocIdx], allocIdx, b.Taken, llbp.BucketOf(p.active, buckets, allocIdx), buckets)
	p.st.allocs++
}

// TrackUnconditional implements core.Predictor.
func (p *Predictor) TrackUnconditional(b core.Branch) {
	p.tsl.TrackUnconditional(b)
	p.bank.Update(p.tsl.History())
	p.tick++
}

// RunBatch implements core.BatchPredictor: the canonical per-branch loop
// with direct calls on the concrete receiver.
func (p *Predictor) RunBatch(batch []core.Branch, preds []core.Prediction) {
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = core.Prediction{Taken: true}
		}
	}
}

// Stats implements core.StatsProvider.
func (p *Predictor) Stats() map[string]float64 {
	return map[string]float64{
		"bullseye.matches":      float64(p.st.matches),
		"bullseye.overrides":    float64(p.st.overrides),
		"bullseye.useful":       float64(p.st.useful),
		"bullseye.harmful":      float64(p.st.harmful),
		"bullseye.allocs":       float64(p.st.allocs),
		"bullseye.promotions":   float64(p.st.promotions),
		"bullseye.h2p.tracked":  float64(p.cand.Len()),
		"bullseye.sets.live":    float64(p.cd.Live()),
		"bullseye.sets.evicted": float64(p.cd.Evicted()),
	}
}

// ResetStats implements core.Resetter (warmup boundary): measurement
// counters clear, learned state — including the H2P set — stays.
func (p *Predictor) ResetStats() { p.st = bullseyeStats{} }
