package bullseye

import (
	"llbpx/internal/snapshot"
)

// maxCand bounds the decoded candidate-filter population: the live filter
// is hard-capped at candCap, so no valid snapshot can hold more.
const maxCand = candCap

// SaveState implements snapshot.State: baseline TSL, tag bank, dedicated
// pattern directory, the H2P candidate filter, adaptation state, and
// measurement counters. The candidate filter serializes in table iteration
// order; its semantics are per-key, so any order restores identically.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("bullseye.predictor")
	w.String(p.cfg.Name)
	p.tsl.SaveState(w)
	p.bank.SaveState(w)
	p.cd.SaveState(w)
	w.Marker("bullseye.cand")
	w.Count(p.cand.Len())
	p.cand.Range(func(pc uint64, n *int32) bool {
		w.U64(pc)
		w.I64(int64(*n))
		return true
	})
	w.I64(p.tick)
	w.Int(p.trustWeak)
	w.Int(p.chooser)
	w.U64(p.probeClock)
	w.Marker("bullseye.stats")
	w.U64(p.st.matches)
	w.U64(p.st.overrides)
	w.U64(p.st.useful)
	w.U64(p.st.harmful)
	w.U64(p.st.allocs)
	w.U64(p.st.promotions)
}

// LoadState implements snapshot.State; the receiver must be a cold
// predictor of the same configuration. Any h2p_file seeding is discarded —
// the snapshot's candidate filter is authoritative (it is a superset of
// the seeds the saved instance started from).
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("bullseye.predictor")
	// 4096 matches the registry's maxSpecLen: canonical bullseye specs
	// embed h2p_file paths and routinely exceed a 256-byte read limit.
	if name := r.String(4096); r.Err() == nil && name != p.cfg.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Name)
	}
	if r.Err() != nil {
		return
	}
	p.tsl.LoadState(r)
	p.bank.LoadState(r)
	p.cd.LoadState(r)
	r.Marker("bullseye.cand")
	p.cand.Clear()
	n := r.Count(maxCand)
	for i := 0; i < n && r.Err() == nil; i++ {
		pc := r.U64()
		ctr := r.I64In(0, candCtrMax)
		if r.Err() != nil {
			return
		}
		v, inserted := p.cand.Put(pc)
		if !inserted {
			r.Fail("duplicate H2P candidate %#x", pc)
			return
		}
		*v = int32(ctr)
	}
	p.tick = r.I64In(0, 1<<62)
	p.trustWeak = int(r.I64In(-8, 7))
	p.chooser = int(r.I64In(chooserMin, chooserMax))
	p.probeClock = r.U64()
	r.Marker("bullseye.stats")
	p.st.matches = r.U64()
	p.st.overrides = r.U64()
	p.st.useful = r.U64()
	p.st.harmful = r.U64()
	p.st.allocs = r.U64()
	p.st.promotions = r.U64()
}
