package bullseye

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/snapshot"
	"llbpx/internal/tage"
)

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mut := []func(*Config){
		func(c *Config) { c.MaxBranches = 0 },
		func(c *Config) { c.MaxBranches = 2; c.Assoc = 4 },
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.PatternsPerSet = 0 },
		func(c *Config) { c.TagBits = 4 },
		func(c *Config) { c.TagBits = 32 },
		func(c *Config) { c.PromoteMisses = 0 },
		func(c *Config) { c.HistIndices = nil },
		func(c *Config) { c.HistIndices = []int{99} },
	}
	for i, m := range mut {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// flipStream is a deterministic branch stream with one H2P branch (a PC
// whose direction alternates with period 3 — mispredicted by a cold
// bimodal) plus filler branches that are trivially predictable.
func flipStream(n int) []core.Branch {
	out := make([]core.Branch, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, core.Branch{PC: 0x1000, Kind: core.CondDirect, Taken: i%3 == 0, InstrGap: 4})
		out = append(out, core.Branch{PC: 0x2000, Kind: core.CondDirect, Taken: true, InstrGap: 4})
	}
	return out
}

func driveAll(p *Predictor, branches []core.Branch) {
	for _, b := range branches {
		if b.Kind.Conditional() {
			p.Update(b, p.Predict(b.PC))
		} else {
			p.TrackUnconditional(b)
		}
	}
}

// TestOnlineAdmission: a branch the baseline keeps missing crosses the
// admission threshold, gets dedicated pattern state, and the stats
// counters account for the whole pipeline.
func TestOnlineAdmission(t *testing.T) {
	p := MustNew(Default())
	driveAll(p, flipStream(4000))
	st := p.Stats()
	if st["bullseye.promotions"] < 1 {
		t.Fatalf("no branch promoted: %v", st)
	}
	if st["bullseye.allocs"] < 1 {
		t.Fatalf("no dedicated patterns allocated: %v", st)
	}
	if st["bullseye.sets.live"] < 1 {
		t.Fatalf("no dedicated set live: %v", st)
	}
	if st["bullseye.h2p.tracked"] < 1 {
		t.Fatalf("candidate filter empty: %v", st)
	}
	if !p.admitted(0x1000) {
		t.Fatal("the hard branch was not admitted")
	}
}

// TestSeedPCs: attribution-seeded branches are admitted from the first
// branch, before any online misses accumulate.
func TestSeedPCs(t *testing.T) {
	c := Default()
	c.SeedPCs = []uint64{0x1000, 0x1000, 0x3000} // duplicate seeds collapse
	p := MustNew(c)
	if !p.admitted(0x1000) || !p.admitted(0x3000) {
		t.Fatal("seeded PCs not admitted")
	}
	if p.admitted(0x2000) {
		t.Fatal("unseeded PC admitted")
	}
	if got := p.Stats()["bullseye.promotions"]; got != 2 {
		t.Fatalf("promotions = %v, want 2 (duplicates collapse)", got)
	}
}

// TestCandidateFilterCap: a stream of one-off mispredicting PCs — the
// adversarial shape in the memory-budgeted serving context — must never
// grow the filter past candCap (its attach-time budget charge), must not
// allocate once the table is at its working size, and must not evict
// admitted H2P branches in favor of cold candidates.
func TestCandidateFilterCap(t *testing.T) {
	c := Default()
	c.SeedPCs = []uint64{0x1000}
	p := MustNew(c)
	next := uint64(0x10_0000)
	hostile := func() {
		next += 64
		pred := p.Predict(next)
		// Every prediction for a never-seen PC comes from the baseline, so
		// inverting it forces a baseline miss — one filter insertion each.
		p.Update(core.Branch{PC: next, Kind: core.CondDirect, Taken: !pred.Taken, InstrGap: 4}, pred)
	}
	for i := 0; i < 3*candCap; i++ {
		hostile()
		if got := p.TrackedBranches(); got > candCap {
			t.Fatalf("after %d unique PCs: filter holds %d > cap %d", i+1, got, candCap)
		}
	}
	if !p.admitted(0x1000) {
		t.Fatal("admitted branch evicted by one-off candidates")
	}
	if allocs := testing.AllocsPerRun(100, hostile); allocs != 0 {
		t.Fatalf("recycling through the capped filter allocates %.1f/op, want 0", allocs)
	}
}

// TestSeedTruncation: more attribution seeds than candCap keep the
// hottest prefix (exports rank by misprediction share) and stop at the
// cap instead of rehashing past it.
func TestSeedTruncation(t *testing.T) {
	c := Default()
	c.SeedPCs = make([]uint64, candCap+100)
	for i := range c.SeedPCs {
		c.SeedPCs[i] = uint64(0x1000 + 8*i)
	}
	p := MustNew(c)
	if got := p.TrackedBranches(); got != candCap {
		t.Fatalf("tracked = %d, want the cap %d", got, candCap)
	}
	if !p.admitted(c.SeedPCs[0]) {
		t.Fatal("highest-ranked seed dropped")
	}
	if p.admitted(c.SeedPCs[candCap]) {
		t.Fatal("over-cap seed admitted")
	}
}

// TestDeterministicReplay: two instances over the same stream predict
// identically — the zero-input determinism every fingerprinted predictor
// needs.
func TestDeterministicReplay(t *testing.T) {
	a, b := MustNew(Default()), MustNew(Default())
	for i, br := range flipStream(3000) {
		pa, pb := a.Predict(br.PC), b.Predict(br.PC)
		if pa != pb {
			t.Fatalf("branch %d: %+v vs %+v", i, pa, pb)
		}
		a.Update(br, pa)
		b.Update(br, pb)
	}
}

// TestSnapshotIdentity: save -> load into a cold instance -> save again
// must be byte-identical, and the restored instance predicts in lockstep
// with the original.
func TestSnapshotIdentity(t *testing.T) {
	p := MustNew(Default())
	stream := flipStream(3000)
	driveAll(p, stream)

	var buf bytes.Buffer
	if err := snapshot.Save(&buf, "bullseye", p); err != nil {
		t.Fatal(err)
	}
	blob := append([]byte(nil), buf.Bytes()...)

	q := MustNew(Default())
	if _, _, err := snapshot.Load(bytes.NewReader(blob), func(string) (snapshot.State, error) {
		return q, nil
	}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := snapshot.Save(&buf2, "bullseye", q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, buf2.Bytes()) {
		t.Fatal("save -> load -> save is not byte-identical")
	}
	for i, br := range stream[:500] {
		pp, qp := p.Predict(br.PC), q.Predict(br.PC)
		if pp != qp {
			t.Fatalf("post-restore divergence at %d: %+v vs %+v", i, pp, qp)
		}
		p.Update(br, pp)
		q.Update(br, qp)
	}
}

// TestSnapshotDiscardsSeeds: restoring over an h2p-seeded instance must
// not fail on duplicate candidates — the snapshot's filter is
// authoritative.
func TestSnapshotDiscardsSeeds(t *testing.T) {
	p := MustNew(Default())
	driveAll(p, flipStream(2000))
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, "bullseye", p); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.SeedPCs = []uint64{0x1000, 0x9999} // overlaps the driven stream's H2P
	q := MustNew(c)
	if _, _, err := snapshot.Load(bytes.NewReader(buf.Bytes()), func(string) (snapshot.State, error) {
		return q, nil
	}); err != nil {
		t.Fatalf("restore over seeded instance: %v", err)
	}
	if q.admitted(0x9999) {
		t.Fatal("pre-seed survived restore; snapshot must be authoritative")
	}
}

func TestSnapshotRejectsWrongConfig(t *testing.T) {
	p := MustNew(Default())
	var buf bytes.Buffer
	if err := snapshot.Save(&buf, "bullseye", p); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.Name = "bullseye(promote=8)"
	q := MustNew(c)
	if _, _, err := snapshot.Load(bytes.NewReader(buf.Bytes()), func(string) (snapshot.State, error) {
		return q, nil
	}); err == nil {
		t.Fatal("restore into a differently-named config must fail")
	}
}

func TestLoadH2PFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "h2p.json")
	data := `{"table":[{"pc":"0x15ff80"},{"pc":"0xffe10"},{"pc":"1a"}]}`
	if err := os.WriteFile(good, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	pcs, err := LoadH2PFile(good)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0x15ff80, 0xffe10, 0x1a}
	if len(pcs) != len(want) {
		t.Fatalf("pcs = %x, want %x", pcs, want)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Fatalf("pcs[%d] = %#x, want %#x", i, pcs[i], want[i])
		}
	}

	if _, err := LoadH2PFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadH2PFile(dir); err == nil {
		t.Fatal("non-regular file (directory) accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"table":[{"pc":"zz"}]}`), 0o644)
	if _, err := LoadH2PFile(bad); err == nil {
		t.Fatal("bad pc accepted")
	}
}

// TestBaselineUnchanged: with admission impossible (threshold never
// reached because the stream is too short), bullseye predicts exactly as
// its embedded TSL — the second level must be a pure overlay.
func TestBaselineUnchanged(t *testing.T) {
	c := Default()
	c.PromoteMisses = 1 << 20
	p := MustNew(c)
	base := tage.MustNew(tage.Config8K())
	for i, br := range flipStream(2000) {
		pp, bp := p.Predict(br.PC), base.Predict(br.PC)
		if pp.Taken != bp.Taken {
			t.Fatalf("branch %d: bullseye %v, bare tsl-8k %v", i, pp.Taken, bp.Taken)
		}
		p.Update(br, pp)
		base.Update(br, bp)
	}
}
