// Package bullseye implements an H2P-targeted last-level predictor in the
// style of "Taming Wild Branches" (Bullseye): instead of spreading
// second-level pattern capacity uniformly across contexts, it dedicates
// large per-branch pattern sets exclusively to the hard-to-predict
// branches where the baseline TAGE-SC-L actually fails.
//
// The H2P set is either learned online — a candidate filter counts
// baseline mispredictions per static branch and admits a branch once it
// crosses a threshold — or seeded from a misprediction-attribution export
// (llbpsim -attr -json), so an offline profiling run can pre-target the
// branches that concentrate the misprediction mass.
//
// Structurally the second level reuses internal/llbp's building blocks: a
// set-associative ContextDir keyed by (hashed) branch PC holds one large
// PatternSet per admitted branch, tagged over the 16 LLBP history lengths
// by a shared tage.TagBank. Storage materializes lazily and draws from a
// shared patternpool namespace when attached, so bullseye sessions run
// under the serving layer's byte budget like every other pool-backed
// predictor.
package bullseye

import (
	"fmt"

	"llbpx/internal/llbp"
	"llbpx/internal/tage"
)

// Config parameterizes a bullseye instance.
type Config struct {
	// Name labels the configuration (the canonical registry spec).
	Name string

	// BaseTSL is the first-level TAGE-SC-L configuration. The point of the
	// design is that a small baseline plus targeted second-level capacity
	// beats a uniformly larger baseline, so the default is the 8KB budget.
	BaseTSL tage.Config

	// MaxBranches is the dedicated pattern-set capacity: how many distinct
	// H2P branches can hold second-level state at once.
	MaxBranches int
	// Assoc is the pattern directory associativity.
	Assoc int
	// PatternsPerSet is the per-branch pattern capacity — deliberately
	// large (64 vs LLBP's 16): the whole budget concentrates on few
	// branches.
	PatternsPerSet int
	// TagBits is the stored pattern tag width.
	TagBits uint
	// PromoteMisses is the number of baseline mispredictions a static
	// branch must accumulate before it is admitted to the H2P set.
	PromoteMisses int
	// SeedPCs pre-admits these static branches (an attribution-derived H2P
	// set); their candidate counters start at the admission threshold.
	SeedPCs []uint64
	// HistIndices are the TAGE history-length indices patterns may use.
	HistIndices []int
}

// Default returns the default bullseye configuration: TSL-8K first level,
// 512 dedicated branches x 64 patterns, online admission after 4 baseline
// misses.
func Default() Config {
	return Config{
		Name:           "bullseye",
		BaseTSL:        tage.Config8K(),
		MaxBranches:    512,
		Assoc:          4,
		PatternsPerSet: 64,
		TagBits:        13,
		PromoteMisses:  4,
		HistIndices:    llbp.DefaultHistIndices,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MaxBranches < 1 || c.MaxBranches < c.Assoc:
		return fmt.Errorf("bullseye %q: invalid directory geometry %d/%d", c.Name, c.MaxBranches, c.Assoc)
	case c.Assoc < 1:
		return fmt.Errorf("bullseye %q: Assoc must be >= 1", c.Name)
	case c.PatternsPerSet < 1:
		return fmt.Errorf("bullseye %q: PatternsPerSet must be >= 1", c.Name)
	case c.TagBits < 5 || c.TagBits > 31:
		return fmt.Errorf("bullseye %q: TagBits %d out of range [5,31]", c.Name, c.TagBits)
	case c.PromoteMisses < 1:
		return fmt.Errorf("bullseye %q: PromoteMisses must be >= 1", c.Name)
	case len(c.HistIndices) == 0:
		return fmt.Errorf("bullseye %q: no history lengths", c.Name)
	}
	for _, idx := range c.HistIndices {
		if idx < 0 || idx >= tage.NumTables {
			return fmt.Errorf("bullseye %q: history index %d out of range", c.Name, idx)
		}
	}
	return nil
}

// dirConfig derives the internal llbp.Config backing the per-branch
// pattern directory. Bucketed replacement needs PatternsPerSet divisible
// by 4; other capacities fall back to one fully associative bucket.
func (c Config) dirConfig() llbp.Config {
	buckets := 4
	if c.PatternsPerSet%4 != 0 {
		buckets = 1
	}
	return llbp.Config{
		Name:            c.Name + ".dir",
		NumContexts:     c.MaxBranches,
		CDAssoc:         c.Assoc,
		PatternsPerSet:  c.PatternsPerSet,
		Buckets:         buckets,
		TagBits:         c.TagBits,
		PBEntries:       1, // unused: dedicated state is read directly
		LatencyBranches: 0,
		AllocPerMiss:    1,
		HistIndices:     c.HistIndices,
		TSL:             c.BaseTSL,
	}
}
