package energy

import (
	"testing"
	"testing/quick"
)

func TestAccessEnergyMonotone(t *testing.T) {
	base := Structure{Name: "s", Bits: 1 << 16, Assoc: 1, AccessBits: 64}
	bigger := base
	bigger.Bits *= 4
	wider := base
	wider.AccessBits *= 2
	deeper := base
	deeper.Assoc = 8
	e := AccessEnergy(base)
	if AccessEnergy(bigger) <= e {
		t.Fatal("larger arrays must cost more per access")
	}
	if AccessEnergy(wider) <= e {
		t.Fatal("wider accesses must cost more")
	}
	if AccessEnergy(deeper) <= e {
		t.Fatal("higher associativity must cost more")
	}
}

func TestAccessEnergyPositive(t *testing.T) {
	prop := func(bitsRaw uint32, assocRaw, widthRaw uint8) bool {
		s := Structure{
			Name:       "p",
			Bits:       int(bitsRaw%1_000_000) + 1,
			Assoc:      int(assocRaw%16) + 1,
			AccessBits: int(widthRaw)%200 + 1,
		}
		return AccessEnergy(s) > 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalWeightsByCount(t *testing.T) {
	s := PatternBuffer()
	one := Total([]Access{{Structure: s, Count: 1}})
	ten := Total([]Access{{Structure: s, Count: 10}})
	if ten != 10*one {
		t.Fatalf("Total must scale linearly: %v vs %v", ten, one)
	}
	if Total(nil) != 0 {
		t.Fatal("empty access list must be free")
	}
}

func TestValidate(t *testing.T) {
	good := CTT(6144)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Structure{
		{Name: "b", Bits: 0, Assoc: 1, AccessBits: 1},
		{Name: "a", Bits: 1, Assoc: 0, AccessBits: 1},
		{Name: "w", Bits: 1, Assoc: 1, AccessBits: 0},
	} {
		if s.Validate() == nil {
			t.Errorf("%s should fail validation", s.Name)
		}
	}
}

func TestPaperGeometries(t *testing.T) {
	// CTT: 6K entries x 12 bits = 9KB (the paper's overhead figure).
	if bits := CTT(6 * 1024).Bits; bits != 6*1024*12 {
		t.Fatalf("CTT bits = %d", bits)
	}
	// Pattern store at 14K contexts holds 224K patterns.
	ps := PatternStore(14 * 1024)
	if ps.Bits < 14*1024*16*20 {
		t.Fatalf("pattern store suspiciously small: %d bits", ps.Bits)
	}
	if ContextDirectory(14*1024).Assoc != 7 {
		t.Fatal("CD must be 7-way (paper energy model)")
	}
	if PatternBuffer().Assoc != 4 {
		t.Fatal("PB must be 4-way (paper energy model)")
	}
	if TAGE(64*8*1024).AccessBits != 42*8 {
		t.Fatal("TAGE access width must be 42 bytes")
	}
}

func TestCTTOverheadSmallRelativeToLLBP(t *testing.T) {
	// The CTT energy per access must be far below the pattern store's —
	// otherwise Figure 15b's +1.5% net could not hold.
	if AccessEnergy(CTT(6*1024)) >= AccessEnergy(PatternStore(14*1024)) {
		t.Fatal("CTT access should be much cheaper than a PS access")
	}
}
