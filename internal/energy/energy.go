// Package energy is a small analytical SRAM access-energy model, the
// repository's stand-in for CACTI 7.0 in the paper's Figure 15b analysis.
// Per-access energy grows with the square root of array capacity (bitline
// and wordline lengths scale with the array's linear dimension), linearly
// with the data width read out, and linearly with associativity (parallel
// way reads and tag compares). Only *relative* energies between LLBP and
// LLBP-X matter for the reproduction, so coefficients are normalized
// rather than calibrated to a process node.
package energy

import (
	"fmt"
	"math"
)

// Structure describes one SRAM structure of a predictor.
type Structure struct {
	// Name labels the structure ("PB", "CD", "PS", "TAGE", "CTT").
	Name string
	// Bits is the total storage capacity in bits.
	Bits int
	// Assoc is the associativity (1 = direct mapped).
	Assoc int
	// AccessBits is the data width of one access.
	AccessBits int
}

// Validate reports structure errors.
func (s Structure) Validate() error {
	if s.Bits <= 0 || s.Assoc <= 0 || s.AccessBits <= 0 {
		return fmt.Errorf("energy %q: all parameters must be positive", s.Name)
	}
	return nil
}

// Model coefficients (normalized picojoule-like units).
const (
	coefArray  = 0.010 // * sqrt(total bits): bitline/wordline capacitance
	coefWidth  = 0.020 // * access width: sense amps and output drivers
	coefAssoc  = 0.150 // * (assoc-1): parallel way reads and tag compares
	coefStatic = 0.500 // fixed decode/control overhead
)

// AccessEnergy returns the energy of one access in normalized units.
func AccessEnergy(s Structure) float64 {
	return coefStatic +
		coefArray*math.Sqrt(float64(s.Bits)) +
		coefWidth*float64(s.AccessBits) +
		coefAssoc*float64(s.Assoc-1)
}

// Access pairs a structure with its access count over a run.
type Access struct {
	Structure Structure
	Count     uint64
}

// Total returns the summed energy of all accesses.
func Total(accesses []Access) float64 {
	var e float64
	for _, a := range accesses {
		e += AccessEnergy(a.Structure) * float64(a.Count)
	}
	return e
}

// Paper-geometry structures (Section VII-D): the CD is 7-way and 8 bits
// wide, PB 4-way and 36 bytes wide, the pattern store direct-mapped and 36
// bytes wide, TAGE direct-mapped and 42 bytes wide, and the CTT 6-way and
// 2 bytes wide.

// PatternStore returns the LLBP pattern store structure for a given
// context count (16 patterns x 24 bits per set approximates the 515KB
// budget at 14K contexts).
func PatternStore(contexts int) Structure {
	return Structure{Name: "PS", Bits: contexts * 16 * 24, Assoc: 1, AccessBits: 36 * 8}
}

// ContextDirectory returns the CD structure for a given context count.
func ContextDirectory(contexts int) Structure {
	return Structure{Name: "CD", Bits: contexts * 16, Assoc: 7, AccessBits: 8}
}

// PatternBuffer returns the 64-entry PB structure.
func PatternBuffer() Structure {
	return Structure{Name: "PB", Bits: 64 * 16 * 24, Assoc: 4, AccessBits: 36 * 8}
}

// TAGE returns the first-level TAGE structure for a storage budget in
// bits.
func TAGE(bits int) Structure {
	return Structure{Name: "TAGE", Bits: bits, Assoc: 1, AccessBits: 42 * 8}
}

// CTT returns the LLBP-X context tracking table (6K entries x 12 bits =
// 9KB).
func CTT(entries int) Structure {
	return Structure{Name: "CTT", Bits: entries * 12, Assoc: 6, AccessBits: 16}
}
