// Package snapshot implements versioned, CRC-guarded checkpointing of
// predictor state. A snapshot is a cache of learned state, never an
// authoritative store: every consumer treats any decode failure — bad
// magic, unknown version, framing mismatch, checksum error — as "no
// snapshot" and falls back to a cold predictor.
//
// Layout of a snapshot stream:
//
//	magic    8 raw bytes "LLBPSNAP"
//	version  uvarint (CRC-covered from here on)
//	name     length-prefixed predictor registry name
//	payload  per-component frames written by the predictor's SaveState
//	crc      4-byte little-endian CRC-32C of everything after the magic
//
// Within the payload each component opens with a Marker (a 32-bit hash of
// its name) so a desynchronized decode fails at a labelled boundary
// instead of misreading later fields.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrCorrupt is wrapped by every decode failure, letting callers
// distinguish "unusable snapshot, start cold" from I/O errors such as a
// missing file.
var ErrCorrupt = errors.New("snapshot: corrupt or incompatible")

const (
	magic = "LLBPSNAP"
	// Version is the current format version. The loader accepts only this
	// version: snapshots are a warm-start cache, so the forward-compat
	// policy is simply "mismatch means cold start", never migration.
	Version = 1
	// maxNameLen bounds the predictor-name field during decode.
	maxNameLen = 256
)

// State is implemented by everything that can round-trip through a
// snapshot. SaveState writes the complete learned state; LoadState reads
// it back into a freshly constructed instance of the same configuration.
// Both use the codec's sticky-error discipline: implementations encode or
// decode straight through and the caller checks Err once at the end.
// LoadState must validate every invariant it relies on (via Reader.Fail)
// because the CRC is only verified after the payload is consumed.
type State interface {
	SaveState(w *Writer)
	LoadState(r *Reader)
}

// Save writes a complete snapshot of s, identified by the registry name,
// to w.
func Save(w io.Writer, name string, s State) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, magic); err != nil {
		return err
	}
	sw := NewWriter(bw)
	sw.U64(Version)
	sw.String(name)
	s.SaveState(sw)
	if err := sw.Err(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sw.CRC())
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads one snapshot from r. construct receives the predictor name
// stored in the header and must return a cold State of that configuration
// (or an error, e.g. for an unknown name); the payload is then decoded
// into it. The State is returned only if the full payload decoded and the
// trailing CRC matched — on any failure the partially loaded instance is
// discarded, so a corrupt snapshot can never yield a silently-wrong
// predictor.
func Load(r io.Reader, construct func(name string) (State, error)) (State, string, error) {
	br := bufio.NewReader(r)
	var m [len(magic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil || string(m[:]) != magic {
		return nil, "", fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	sr := NewReader(br)
	if v := sr.U64(); sr.Err() == nil && v != Version {
		return nil, "", fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	name := sr.String(maxNameLen)
	if err := sr.Err(); err != nil {
		return nil, "", err
	}
	s, err := construct(name)
	if err != nil {
		return nil, name, err
	}
	s.LoadState(sr)
	if err := sr.Err(); err != nil {
		return nil, name, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, name, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != sr.CRC() {
		return nil, name, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return s, name, nil
}

// WriteFile saves a snapshot crash-consistently: the bytes land in a temp
// file in the destination directory, are fsynced, and are renamed over
// path, so a crash at any point leaves either the old snapshot or the new
// one — never a torn file.
func WriteFile(path, name string, s State) error {
	return WriteFileWrapped(path, name, s, nil)
}

// WriteFileWrapped is WriteFile with an interception point for fault
// injection: when wrap is non-nil, the encoded byte stream passes through
// wrap(tempFile) on its way to disk, letting a test inject torn or
// partial writes underneath the crash-consistency machinery (the CRC and
// the loader's quarantine handling are what must catch the damage). A nil
// wrap is exactly WriteFile.
func WriteFileWrapped(path, name string, s State, wrap func(io.Writer) io.Writer) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	var dst io.Writer = tmp
	if wrap != nil {
		dst = wrap(tmp)
	}
	if err = Save(dst, name, s); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmpName, path); err != nil {
		return err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile loads a snapshot from path via Load. A missing file surfaces
// as an os error (not ErrCorrupt), so callers can stay quiet about the
// common cold-start case.
func ReadFile(path string, construct func(name string) (State, error)) (State, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Load(f, construct)
}
