package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"llbpx/internal/hashutil"
)

// castagnoli is the CRC-32C polynomial table guarding every snapshot.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer encodes predictor state into a byte stream: unsigned and zigzag
// varints, length-prefixed byte strings, and component markers, with a
// running CRC-32C over everything written. Errors are sticky — encoding
// methods become no-ops after the first failure and Err returns it — so
// SaveState implementations can encode straight through without per-call
// error handling.
type Writer struct {
	w   io.Writer
	crc uint32
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, castagnoli, b)
	_, w.err = w.w.Write(b)
}

// U64 encodes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// I64 encodes a zigzag signed varint.
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// U32 encodes a 32-bit unsigned value.
func (w *Writer) U32(v uint32) { w.U64(uint64(v)) }

// Int encodes a signed int.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool encodes a boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// Count encodes a non-negative element count as an unsigned varint — the
// counterpart of Reader.Count (Int/I64 use zigzag and do NOT pair with it).
func (w *Writer) Count(n int) { w.U64(uint64(n)) }

// Bytes encodes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.write(b)
}

// String encodes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s))
}

// Marker frames the start of a named component: a 32-bit hash of the name
// the Reader re-checks, so a desynchronized decode fails at the component
// boundary with a useful message instead of misinterpreting later fields.
func (w *Writer) Marker(name string) { w.U32(markerID(name)) }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// CRC returns the running CRC-32C over everything written so far.
func (w *Writer) CRC() uint32 { return w.crc }

func markerID(name string) uint32 { return uint32(hashutil.FNV1a(name)) }

// Reader is Writer's decoding counterpart, with the same sticky-error
// discipline plus explicit bounds: counts and byte strings are read
// through caps so corrupted length fields fail fast instead of allocating
// unbounded memory. All decode failures wrap ErrCorrupt.
type Reader struct {
	r   io.Reader
	crc uint32
	err error
	one [1]byte
}

// NewReader returns a Reader decoding from r. Wrap r in a bufio.Reader for
// byte-at-a-time efficiency if it is not already buffered.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadByte implements io.ByteReader over the CRC-guarded stream.
func (r *Reader) ReadByte() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	if _, err := io.ReadFull(r.r, r.one[:]); err != nil {
		r.Fail("unexpected end of data")
		return 0, r.err
	}
	r.crc = crc32.Update(r.crc, castagnoli, r.one[:])
	return r.one[0], nil
}

// U64 decodes an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil && r.err == nil {
		r.Fail("bad varint")
	}
	return v
}

// I64 decodes a zigzag signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r)
	if err != nil && r.err == nil {
		r.Fail("bad varint")
	}
	return v
}

// I64In decodes a signed varint and fails unless it lies in [lo, hi].
func (r *Reader) I64In(lo, hi int64) int64 {
	v := r.I64()
	if r.err == nil && (v < lo || v > hi) {
		r.Fail("value %d outside [%d, %d]", v, lo, hi)
	}
	return v
}

// U64Max decodes an unsigned varint and fails if it exceeds max.
func (r *Reader) U64Max(max uint64) uint64 {
	v := r.U64()
	if r.err == nil && v > max {
		r.Fail("value %d exceeds limit %d", v, max)
	}
	return v
}

// U32 decodes a 32-bit unsigned value.
func (r *Reader) U32() uint32 { return uint32(r.U64Max(math.MaxUint32)) }

// Int decodes a signed int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool decodes a boolean (anything but 0 or 1 is corrupt).
func (r *Reader) Bool() bool { return r.U64Max(1) == 1 }

// Count decodes an element count capped at max, guarding allocations.
func (r *Reader) Count(max int) int { return int(r.U64Max(uint64(max))) }

// Bytes decodes a length-prefixed byte string of at most max bytes.
func (r *Reader) Bytes(max int) []byte {
	n := r.Count(max)
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.Fail("unexpected end of data")
		return nil
	}
	r.crc = crc32.Update(r.crc, castagnoli, b)
	return b
}

// String decodes a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string { return string(r.Bytes(max)) }

// Marker checks a component frame written by Writer.Marker.
func (r *Reader) Marker(name string) {
	got := r.U32()
	if r.err == nil && got != markerID(name) {
		r.Fail("component framing mismatch at %q", name)
	}
}

// Fail records a decode failure (wrapping ErrCorrupt); the first failure
// wins and all subsequent reads are no-ops.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// CRC returns the running CRC-32C over everything read so far.
func (r *Reader) CRC() uint32 { return r.crc }
