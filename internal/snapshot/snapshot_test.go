package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fakeState is a minimal State exercising every codec primitive.
type fakeState struct {
	u   uint64
	i   int64
	n   int
	b   bool
	raw []byte
	s   string
}

func (f *fakeState) SaveState(w *Writer) {
	w.Marker("fake")
	w.U64(f.u)
	w.I64(f.i)
	w.Int(f.n)
	w.Bool(f.b)
	w.Bytes(f.raw)
	w.String(f.s)
}

func (f *fakeState) LoadState(r *Reader) {
	r.Marker("fake")
	f.u = r.U64()
	f.i = r.I64In(-1<<40, 1<<40)
	f.n = r.Int()
	f.b = r.Bool()
	f.raw = r.Bytes(1 << 16)
	f.s = r.String(1 << 16)
}

func fakeConstruct(t *testing.T) func(string) (State, error) {
	t.Helper()
	return func(name string) (State, error) { return &fakeState{}, nil }
}

func TestCodecRoundTrip(t *testing.T) {
	want := &fakeState{u: 1<<63 + 17, i: -123456789, n: -42, b: true,
		raw: []byte{0, 1, 2, 255}, s: "nodeapp"}
	var buf bytes.Buffer
	if err := Save(&buf, "fake-pred", want); err != nil {
		t.Fatal(err)
	}
	got, name, err := Load(bytes.NewReader(buf.Bytes()), fakeConstruct(t))
	if err != nil {
		t.Fatal(err)
	}
	if name != "fake-pred" {
		t.Fatalf("name = %q, want fake-pred", name)
	}
	g := got.(*fakeState)
	if g.u != want.u || g.i != want.i || g.n != want.n || g.b != want.b ||
		!bytes.Equal(g.raw, want.raw) || g.s != want.s {
		t.Fatalf("round trip mismatch: %+v != %+v", g, want)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "fake", &fakeState{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff
	if _, _, err := Load(bytes.NewReader(data), fakeConstruct(t)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	// Hand-build a stream with version 99: magic + uvarint(99).
	data := append([]byte(magic), 99)
	if _, _, err := Load(bytes.NewReader(data), fakeConstruct(t)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong version: err = %v, want ErrCorrupt", err)
	}
}

// TestLoadRejectsEveryCorruptByte flips every byte of a valid snapshot in
// turn: each variant must either fail with ErrCorrupt or decode to the
// exact original values (a flip in a dead bit of a varint can be
// CRC-detected only; nothing may yield silently different state).
func TestLoadRejectsEveryCorruptByte(t *testing.T) {
	want := &fakeState{u: 7, i: -9, n: 11, b: true, raw: []byte{1, 2, 3}, s: "x"}
	var buf bytes.Buffer
	if err := Save(&buf, "fake", want); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		data := bytes.Clone(orig)
		data[i] ^= 0x5a
		got, _, err := Load(bytes.NewReader(data), fakeConstruct(t))
		if err == nil {
			t.Fatalf("flip at byte %d: decode succeeded with state %+v", i, got)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "fake", &fakeState{raw: []byte{9, 8, 7}, s: "hello"}); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for n := 0; n < len(orig); n++ {
		if _, _, err := Load(bytes.NewReader(orig[:n]), fakeConstruct(t)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestLoadPropagatesConstructError(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, "unknown-pred", &fakeState{}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("no such predictor")
	_, name, err := Load(bytes.NewReader(buf.Bytes()), func(string) (State, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want construct error", err)
	}
	if name != "unknown-pred" {
		t.Fatalf("name = %q", name)
	}
}

func TestMarkerMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Marker("alpha")
	w.U64(3)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Marker("beta")
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("marker mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestReaderBounds(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1000)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if r.U64Max(999); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("U64Max: err = %v", r.Err())
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.I64(-5)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if r.I64In(0, 10); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("I64In: err = %v", r.Err())
	}

	buf.Reset()
	w = NewWriter(&buf)
	w.U64(2)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if r.Bool(); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Bool(2): err = %v", r.Err())
	}

	// A huge length prefix must fail at the cap, not allocate.
	buf.Reset()
	w = NewWriter(&buf)
	w.U64(1 << 40)
	r = NewReader(bytes.NewReader(buf.Bytes()))
	if r.Bytes(1 << 10); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Bytes bomb: err = %v", r.Err())
	}
}

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	want := &fakeState{u: 5, s: "persist"}
	if err := WriteFile(path, "fake", want); err != nil {
		t.Fatal(err)
	}
	// No temp files may linger after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "s.snap" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
	got, name, err := ReadFile(path, fakeConstruct(t))
	if err != nil {
		t.Fatal(err)
	}
	if name != "fake" || got.(*fakeState).u != 5 || got.(*fakeState).s != "persist" {
		t.Fatalf("ReadFile mismatch: name=%q state=%+v", name, got)
	}
}

func TestReadFileMissingIsNotCorrupt(t *testing.T) {
	_, _, err := ReadFile(filepath.Join(t.TempDir(), "absent.snap"), fakeConstruct(t))
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file: err = %v, want plain os error", err)
	}
	if !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want IsNotExist", err)
	}
}

// TestWriteFileReplacesAtomically: overwriting an existing snapshot leaves
// either old or new content, and here (no crash) the new one.
func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteFile(path, "fake", &fakeState{u: 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, "fake", &fakeState{u: 2}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFile(path, fakeConstruct(t))
	if err != nil {
		t.Fatal(err)
	}
	if got.(*fakeState).u != 2 {
		t.Fatalf("u = %d, want 2", got.(*fakeState).u)
	}
}
