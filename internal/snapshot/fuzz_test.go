package snapshot_test

import (
	"bytes"
	"sync"
	"testing"

	"llbpx"
)

// fuzzBranches lazily builds one deterministic branch stream shared by
// seed generation and post-restore smoke drives.
var fuzzBranches = sync.OnceValue(func() []llbpx.Branch {
	prof, err := llbpx.WorkloadByName("nodeapp")
	if err != nil {
		panic(err)
	}
	prog, err := llbpx.BuildProgram(prof)
	if err != nil {
		panic(err)
	}
	gen := llbpx.NewGenerator(prog)
	out := make([]llbpx.Branch, 4096)
	for i := range out {
		out[i], _ = gen.Next()
	}
	return out
})

// drive pushes n branches through a predictor (panics propagate to the
// fuzzer as failures).
func drive(p llbpx.Predictor, branches []llbpx.Branch, n int) {
	for i := 0; i < n && i < len(branches); i++ {
		b := branches[i]
		if b.Kind.Conditional() {
			p.Update(b, p.Predict(b.PC))
		} else {
			p.TrackUnconditional(b)
		}
	}
}

// warmSnapshot serializes a briefly trained predictor of the named
// configuration.
func warmSnapshot(tb testing.TB, name string) []byte {
	tb.Helper()
	p, err := llbpx.NewPredictorByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	drive(p, fuzzBranches(), 2048)
	var buf bytes.Buffer
	if err := llbpx.SavePredictorState(&buf, name, p); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotDecode asserts the hard decode contract: arbitrary bytes
// either fail with an error or yield a predictor that is actually usable —
// never a panic, never unbounded allocation, never a silently broken
// instance.
func FuzzSnapshotDecode(f *testing.F) {
	for _, name := range []string{"tsl-8k", "llbp", "llbp-x"} {
		valid := warmSnapshot(f, name)
		f.Add(valid)
		// Corrupt variants steer the fuzzer toward interesting prefixes.
		for _, i := range []int{0, 8, 9, len(valid) / 2, len(valid) - 2} {
			mut := bytes.Clone(valid)
			mut[i] ^= 0x41
			f.Add(mut)
		}
		f.Add(valid[:len(valid)/3])
	}
	f.Add([]byte{})
	f.Add([]byte("LLBPSNAP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := llbpx.LoadPredictorState(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must hand back a working predictor.
		drive(p, fuzzBranches(), 256)
	})
}
