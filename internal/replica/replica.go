// Package replica implements hot-standby session replication for the
// cluster tier: the primary llbpd asynchronously ships each session's
// checkpoint blob (the admin-export format — predictor state plus the
// exactly-once applied-batch cursor) to a standby backend, so a death
// verdict promotes an already-warm copy instead of cold-starting or
// paging state in from a shared snapshot directory.
//
// The package owns two things: the ship blob framing — a fixed header
// carrying the session's fence epoch around the untouched snapshot
// bytes — and the Shipper, the primary-side background machinery that
// batches ships per (primary, standby) pair over one persistent
// connection and re-ships laggards from an anti-entropy loop. The
// receiving side (install, fencing, promotion) lives in internal/serve,
// which imports this package; replica deliberately knows nothing about
// serve.
//
// Epoch fencing: every ship carries the session's epoch, a per-session
// counter the gateway bumps on every promotion. A receiver rejects any
// ship whose epoch is below the highest it has seen for that session,
// so a falsely-declared-dead primary that resurrects cannot overwrite
// the promoted line of history with its stale fork — its ships bounce
// off the fence until the gateway reconfigures it.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SiteReplicate is the fault-injection site fired before every ship
// attempt (error rules) and wrapped around the shipped bytes
// (partial-write rules tear the blob in flight; the receiver's snapshot
// CRC rejects it). The name lives here so internal/serve's shipper and
// internal/cluster's chaos tests share one spelling without an import
// cycle.
const SiteReplicate = "cluster.replicate"

// Blob framing: magic + version + epoch, then the snapshot bytes
// verbatim. The header is deliberately fixed-width so a receiver can
// check the fence before decoding (or even holding) the payload.
const (
	blobMagic   = "LLBPREPL"
	blobVersion = 1
	// HeaderLen is the fixed framing size: 8-byte magic, 1-byte version,
	// 8-byte little-endian epoch.
	HeaderLen = len(blobMagic) + 1 + 8
)

// ErrCorrupt reports a ship blob whose framing is damaged: bad magic,
// truncated epoch header, or a version this build does not speak.
// Deliberately distinct from snapshot.ErrCorrupt — the payload has not
// been looked at yet.
var ErrCorrupt = errors.New("replica: corrupt or incompatible ship blob")

// EncodeBlob frames a session's exported snapshot bytes for shipping
// under the given fence epoch.
func EncodeBlob(epoch uint64, snapshot []byte) []byte {
	out := make([]byte, HeaderLen+len(snapshot))
	copy(out, blobMagic)
	out[len(blobMagic)] = blobVersion
	binary.LittleEndian.PutUint64(out[len(blobMagic)+1:], epoch)
	copy(out[HeaderLen:], snapshot)
	return out
}

// DecodeBlob splits a ship blob into its fence epoch and the snapshot
// payload (a sub-slice of data, not a copy). Framing damage returns an
// error wrapping ErrCorrupt; the payload's own integrity is the
// snapshot layer's job.
func DecodeBlob(data []byte) (epoch uint64, snapshot []byte, err error) {
	if len(data) < HeaderLen {
		return 0, nil, fmt.Errorf("%w: %d bytes, need %d-byte header", ErrCorrupt, len(data), HeaderLen)
	}
	if string(data[:len(blobMagic)]) != blobMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(blobMagic)])
	}
	if v := data[len(blobMagic)]; v != blobVersion {
		return 0, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, blobVersion)
	}
	epoch = binary.LittleEndian.Uint64(data[len(blobMagic)+1:])
	return epoch, data[HeaderLen:], nil
}
