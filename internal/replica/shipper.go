package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"llbpx/internal/faults"
)

// ErrStaleEpoch reports a ship the standby fenced off: the target has
// already seen (or been promoted to) a higher epoch for the session, so
// this shipper's line of history is dead. The shipper drops the target
// — resuming is the gateway's decision, delivered as a fresh SetTarget.
var ErrStaleEpoch = errors.New("replica: ship rejected, stale epoch")

// ShipperConfig parameterizes a Shipper. Export is required; everything
// else has a default.
type ShipperConfig struct {
	// Every ships a session after this many applied batches (default 16).
	Every int
	// Interval is the anti-entropy loop period, which doubles as the
	// time-based ship cadence: any session with unshipped batches — or
	// whose target changed and has not yet received a full ship — is
	// re-enqueued each tick, so a ship lost to a fault or a lagging
	// standby heals within one Interval (default 2s).
	Interval time.Duration
	// Timeout bounds one ship POST (default 5s).
	Timeout time.Duration
	// Export serializes a session's current state (the admin-export
	// snapshot blob). An export failure clears the session's ship debt —
	// the session is gone or cannot snapshot, and retrying cannot fix
	// either.
	Export func(id string) ([]byte, error)
	// Faults optionally fires SiteReplicate before each ship attempt and
	// tears the shipped bytes under partial-write rules. Nil disables.
	Faults *faults.Injector
	// OnShip / OnShipError observe ship outcomes (metrics hooks; nil ok).
	OnShip      func(id string, bytes int)
	OnShipError func(id string, err error)
	// Client performs the ship POSTs (nil = a private keep-alive client,
	// so each (primary, standby) pair reuses one persistent connection).
	Client *http.Client
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.Every <= 0 {
		c.Every = 16
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// shipTarget is one session's replication state on the primary.
type shipTarget struct {
	url     string // standby base URL ("" never stored; Drop removes instead)
	epoch   uint64 // fence epoch stamped into every ship
	pending int    // applied batches not yet covered by a successful ship
	queued  bool   // sitting in a worker queue right now
	shipped bool   // the current (url, epoch) has received at least one full ship
}

// Shipper is the primary-side replication pump: NoteBatch accounts
// applied batches per session, ships fire after Every batches or on the
// next anti-entropy tick, and each standby URL gets one serial worker
// goroutine so ships to the same standby are batched over one
// persistent connection instead of stampeding it.
type Shipper struct {
	cfg ShipperConfig

	mu      sync.Mutex
	targets map[string]*shipTarget
	workers map[string]chan string // standby URL -> session-id queue
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewShipper builds a Shipper and starts its anti-entropy loop. Call
// Close to stop everything.
func NewShipper(cfg ShipperConfig) *Shipper {
	s := &Shipper{
		cfg:     cfg.withDefaults(),
		targets: make(map[string]*shipTarget),
		workers: make(map[string]chan string),
		stop:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// SetTarget points a session's replication at a standby. A change of
// URL or epoch resets the ship state and triggers an immediate full
// ship — this is how the gateway heals standby placement after a ring
// reshuffle. Re-asserting the current target is a no-op.
func (s *Shipper) SetTarget(id, target string, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || target == "" {
		return
	}
	if t := s.targets[id]; t != nil && t.url == target && t.epoch == epoch {
		return
	}
	t := &shipTarget{url: target, epoch: epoch}
	s.targets[id] = t
	s.enqueueLocked(id, t)
}

// Drop stops replicating a session (closed, migrated away, or fenced).
func (s *Shipper) Drop(id string) {
	s.mu.Lock()
	delete(s.targets, id)
	s.mu.Unlock()
}

// NoteBatch records one applied batch for a session; the Nth unshipped
// batch triggers a ship. Sessions without a target cost one map lookup.
func (s *Shipper) NoteBatch(id string) {
	s.mu.Lock()
	t := s.targets[id]
	if t == nil {
		s.mu.Unlock()
		return
	}
	t.pending++
	if t.pending >= s.cfg.Every {
		s.enqueueLocked(id, t)
	}
	s.mu.Unlock()
}

// Lag reports a session's unshipped batch count (false if the session
// has no replication target). Test and diagnostics surface.
func (s *Shipper) Lag(id string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.targets[id]; t != nil {
		return t.pending, true
	}
	return 0, false
}

// Close stops the anti-entropy loop and every standby worker, then
// waits them out. Idempotent.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, ch := range s.workers {
		close(ch)
	}
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.cfg.Client.CloseIdleConnections()
}

// loop is the anti-entropy pass: every Interval it re-enqueues every
// session that owes its standby state — unshipped batches, or a target
// that has never received a full ship (fresh placement after a ring
// change, or a ship lost to an injected fault).
func (s *Shipper) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		for id, tg := range s.targets {
			if tg.pending > 0 || !tg.shipped {
				s.enqueueLocked(id, tg)
			}
		}
		s.mu.Unlock()
	}
}

// enqueueLocked hands a session to its standby's worker. Callers hold
// s.mu. A full queue drops the enqueue — the next anti-entropy tick
// retries, so backpressure degrades to lag, never to blocking the
// batch path.
func (s *Shipper) enqueueLocked(id string, t *shipTarget) {
	if s.closed || t.queued {
		return
	}
	ch := s.workers[t.url]
	if ch == nil {
		ch = make(chan string, 1024)
		s.workers[t.url] = ch
		s.wg.Add(1)
		go s.worker(ch)
	}
	select {
	case ch <- id:
		t.queued = true
	default:
	}
}

// worker drains one standby's queue serially: per (primary, standby)
// pair, ships ride a single persistent connection in order.
func (s *Shipper) worker(ch chan string) {
	defer s.wg.Done()
	for id := range ch {
		s.ship(id)
	}
}

// ship performs one ship attempt for a session and settles its
// accounting: success clears the debt observed at send time, a fence
// rejection drops the target, an export failure clears the debt (it is
// unfixable by retrying), and everything else leaves the debt in place
// for the anti-entropy loop.
func (s *Shipper) ship(id string) {
	s.mu.Lock()
	t := s.targets[id]
	if t == nil || s.closed {
		if t != nil {
			t.queued = false
		}
		s.mu.Unlock()
		return
	}
	t.queued = false
	target, epoch, debt := t.url, t.epoch, t.pending
	s.mu.Unlock()

	err := s.shipOnce(id, target, epoch)

	s.mu.Lock()
	if cur := s.targets[id]; cur != nil && cur.url == target && cur.epoch == epoch {
		switch {
		case err == nil:
			cur.shipped = true
			if cur.pending -= debt; cur.pending < 0 {
				cur.pending = 0
			}
		case errors.Is(err, ErrStaleEpoch):
			delete(s.targets, id)
		case errors.Is(err, errExport):
			cur.shipped = true
			cur.pending = 0
		}
	}
	s.mu.Unlock()
	if err != nil && s.cfg.OnShipError != nil {
		s.cfg.OnShipError(id, err)
	}
}

// errExport marks a ship that failed before leaving the primary.
var errExport = errors.New("replica: export failed")

// shipOnce exports, frames, and POSTs one session checkpoint to the
// standby's install endpoint.
func (s *Shipper) shipOnce(id, target string, epoch uint64) error {
	if err := s.cfg.Faults.Fire(SiteReplicate); err != nil {
		return err
	}
	snap, err := s.cfg.Export(id)
	if err != nil {
		return fmt.Errorf("%w: session %q: %v", errExport, id, err)
	}
	data := s.torn(EncodeBlob(epoch, snap))
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		target+"/admin/v1/sessions/"+url.PathEscape(id)+"/standby", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		if s.cfg.OnShip != nil {
			s.cfg.OnShip(id, len(data))
		}
		return nil
	case http.StatusConflict:
		return fmt.Errorf("ship of %q to %s: %w", id, target, ErrStaleEpoch)
	default:
		return fmt.Errorf("replica: ship of %q to %s: status %d", id, target, resp.StatusCode)
	}
}

// torn runs the framed blob through the replicate site's partial-write
// rules (no-op without an injector or matching rule), so chaos tests
// can tear a ship on the wire and watch the standby's CRC reject it.
func (s *Shipper) torn(data []byte) []byte {
	if s.cfg.Faults == nil {
		return data
	}
	var buf bytes.Buffer
	w := s.cfg.Faults.WrapWriter(SiteReplicate, &buf)
	if w == nil {
		return data
	}
	_, _ = w.Write(data)
	return buf.Bytes()
}
