package replica

import (
	"bytes"
	"testing"
)

// FuzzReplicaDecode throws arbitrary bytes at the ship-blob framing
// decoder. The invariants: no panic on any input, every accepted blob
// round-trips (re-encoding the decoded epoch + payload reproduces the
// input exactly), and every input shorter than the fixed header is
// rejected as corrupt. The committed corpus seeds the regression that
// motivated the harness: a blob whose epoch header is truncated
// mid-field (see testdata/fuzz/FuzzReplicaDecode).
func FuzzReplicaDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBlob(0, nil))
	f.Add(EncodeBlob(1<<63+42, []byte("payload bytes")))
	f.Add(EncodeBlob(7, []byte("x"))[:HeaderLen-1]) // truncated epoch header
	f.Add([]byte("LLBPREPLxxxxxxxxx"))
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, snap, err := DecodeBlob(data)
		if err != nil {
			if len(data) >= HeaderLen && string(data[:8]) == "LLBPREPL" && data[8] == 1 {
				t.Fatalf("well-framed blob rejected: %v", err)
			}
			return
		}
		if len(data) < HeaderLen {
			t.Fatalf("accepted %d bytes, below the %d-byte header", len(data), HeaderLen)
		}
		if !bytes.Equal(EncodeBlob(epoch, snap), data) {
			t.Fatalf("accepted blob does not round-trip")
		}
	})
}
