package replica

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"llbpx/internal/faults"
)

func TestBlobRoundTrip(t *testing.T) {
	payload := []byte("not a real snapshot, framing does not care")
	for _, epoch := range []uint64{0, 1, 1<<63 + 12345} {
		blob := EncodeBlob(epoch, payload)
		e, snap, err := DecodeBlob(blob)
		if err != nil {
			t.Fatalf("DecodeBlob(epoch=%d): %v", epoch, err)
		}
		if e != epoch {
			t.Fatalf("epoch round-trip: got %d, want %d", e, epoch)
		}
		if !bytes.Equal(snap, payload) {
			t.Fatalf("payload round-trip mismatch")
		}
	}
	// Empty payload is legal framing: a zero-length snapshot is the
	// snapshot layer's problem, not the framing's.
	if _, snap, err := DecodeBlob(EncodeBlob(7, nil)); err != nil || len(snap) != 0 {
		t.Fatalf("empty payload: snap=%v err=%v", snap, err)
	}
}

func TestBlobCorrupt(t *testing.T) {
	good := EncodeBlob(42, []byte("payload"))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated magic", good[:4]},
		{"truncated epoch header", good[:HeaderLen-3]},
		{"bad magic", append([]byte("XXXXXXXX"), good[8:]...)},
		{"future version", func() []byte {
			b := append([]byte(nil), good...)
			b[8] = 99
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeBlob(tc.data); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeBlob(%q) err = %v, want ErrCorrupt", tc.data, err)
			}
		})
	}
}

// installRecorder is a fake standby: it records installed blobs and can
// be scripted to fail.
type installRecorder struct {
	mu     sync.Mutex
	blobs  [][]byte
	status []int // consumed per request; empty = 200
}

func (ir *installRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if len(ir.status) > 0 {
		st := ir.status[0]
		ir.status = ir.status[1:]
		if st != http.StatusOK {
			w.WriteHeader(st)
			return
		}
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	ir.blobs = append(ir.blobs, buf.Bytes())
	w.WriteHeader(http.StatusOK)
}

func (ir *installRecorder) count() int {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	return len(ir.blobs)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestShipperCadenceAndEpoch(t *testing.T) {
	rec := &installRecorder{}
	hs := httptest.NewServer(rec)
	defer hs.Close()
	sh := NewShipper(ShipperConfig{
		Every:    2,
		Interval: time.Hour, // cadence only; the anti-entropy tick never fires
		Export:   func(id string) ([]byte, error) { return []byte("state-of-" + id), nil },
	})
	defer sh.Close()

	// A fresh target gets an immediate full ship, stamped with its epoch.
	sh.SetTarget("s1", hs.URL, 3)
	waitFor(t, "placement ship", func() bool { return rec.count() == 1 })
	epoch, snap, err := DecodeBlob(rec.blobs[0])
	if err != nil || epoch != 3 || string(snap) != "state-of-s1" {
		t.Fatalf("placement ship: epoch=%d snap=%q err=%v", epoch, snap, err)
	}

	// One batch is below Every; the second triggers the cadence ship.
	sh.NoteBatch("s1")
	time.Sleep(20 * time.Millisecond)
	if rec.count() != 1 {
		t.Fatalf("shipped below the batch cadence: %d ships", rec.count())
	}
	sh.NoteBatch("s1")
	waitFor(t, "cadence ship", func() bool { return rec.count() == 2 })
	if lag, ok := sh.Lag("s1"); !ok || lag != 0 {
		t.Fatalf("after ship: lag=%d ok=%v, want 0 true", lag, ok)
	}

	// Batches for sessions without a target are free no-ops.
	sh.NoteBatch("untracked")
	if _, ok := sh.Lag("untracked"); ok {
		t.Fatal("untracked session grew a target")
	}
}

func TestShipperAntiEntropyRetries(t *testing.T) {
	// First two ship attempts die (one injected at the fault site, one
	// 503 from the standby); the anti-entropy loop must heal both.
	rec := &installRecorder{status: []int{http.StatusServiceUnavailable}}
	hs := httptest.NewServer(rec)
	defer hs.Close()
	inj := faults.New(1)
	inj.Set(SiteReplicate, faults.Rule{ErrRate: 1, MaxErrors: 1})
	var errs int
	var mu sync.Mutex
	sh := NewShipper(ShipperConfig{
		Every:    100,
		Interval: 10 * time.Millisecond,
		Faults:   inj,
		Export:   func(id string) ([]byte, error) { return []byte("x"), nil },
		OnShipError: func(id string, err error) {
			mu.Lock()
			errs++
			mu.Unlock()
		},
	})
	defer sh.Close()
	sh.SetTarget("s1", hs.URL, 1)
	waitFor(t, "anti-entropy repair", func() bool { return rec.count() >= 1 })
	mu.Lock()
	defer mu.Unlock()
	if errs < 2 {
		t.Fatalf("observed %d ship errors, want >= 2 (injected + 503)", errs)
	}
}

func TestShipperStaleEpochDropsTarget(t *testing.T) {
	var fenced sync.WaitGroup
	fenced.Add(1)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
	}))
	defer hs.Close()
	var last error
	var mu sync.Mutex
	var once sync.Once
	sh := NewShipper(ShipperConfig{
		Interval: time.Hour,
		Export:   func(id string) ([]byte, error) { return []byte("x"), nil },
		OnShipError: func(id string, err error) {
			mu.Lock()
			last = err
			mu.Unlock()
			once.Do(fenced.Done)
		},
	})
	defer sh.Close()
	sh.SetTarget("s1", hs.URL, 1)
	fenced.Wait()
	mu.Lock()
	if !errors.Is(last, ErrStaleEpoch) {
		t.Fatalf("ship error = %v, want ErrStaleEpoch", last)
	}
	mu.Unlock()
	waitFor(t, "fenced target dropped", func() bool {
		_, ok := sh.Lag("s1")
		return !ok
	})
	// A fenced session ships nothing more, even with new batches.
	sh.NoteBatch("s1")
	if _, ok := sh.Lag("s1"); ok {
		t.Fatal("fenced session resurrected without SetTarget")
	}
}

func TestShipperExportFailureClearsDebt(t *testing.T) {
	rec := &installRecorder{}
	hs := httptest.NewServer(rec)
	defer hs.Close()
	var mu sync.Mutex
	var errs int
	sh := NewShipper(ShipperConfig{
		Every:    1,
		Interval: time.Hour,
		Export:   func(id string) ([]byte, error) { return nil, errors.New("session gone") },
		OnShipError: func(id string, err error) {
			mu.Lock()
			errs++
			mu.Unlock()
		},
	})
	defer sh.Close()
	sh.SetTarget("s1", hs.URL, 1)
	waitFor(t, "export failure observed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errs >= 1
	})
	waitFor(t, "debt cleared", func() bool {
		lag, ok := sh.Lag("s1")
		return ok && lag == 0
	})
	if rec.count() != 0 {
		t.Fatalf("a failed export still shipped %d blobs", rec.count())
	}
}
