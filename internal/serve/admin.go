package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"llbpx/internal/snapshot"
)

// Admin transfer API --------------------------------------------------------
//
// The cluster tier moves a live session between llbpd backends as
// drain-checkpoint → transfer → warm-restore. These endpoints are the
// transfer leg: export serializes one session through the bit-identical
// snapshot layer (the same codec the on-disk checkpoint path uses, CRC
// and all), import installs those bytes as a live session on the new
// owner. Both sit under /admin/v1 because they are operator/gateway
// surface, not client surface: an import silently replaces any existing
// session under the same ID, which no client should be able to do.

// ExportSession serializes session id's complete state — identity,
// accumulated statistics, sequencing cursor, and the predictor's learned
// state — as a self-validating snapshot blob. A live session is
// serialized under its lock (a consistent between-batches cut: callers
// that need the cursor frozen must quiesce the stream first, which the
// gateway does). A session that is not in memory but has an on-disk
// checkpoint exports that file's bytes verbatim; the blob's own CRC
// protects the transfer either way.
func (s *Server) ExportSession(id string) ([]byte, error) {
	if sess := s.sessions.get(id); sess != nil {
		if _, ok := sess.pred.(snapshot.State); !ok {
			return nil, fmt.Errorf("serve: predictor %q does not support snapshots: %w", sess.PredictorName, ErrBadRequest)
		}
		sess.mu.Lock()
		var buf bytes.Buffer
		err := snapshot.Save(&buf, sess.PredictorName, sessionState{sess})
		sess.mu.Unlock()
		if err != nil {
			return nil, err
		}
		s.metrics.sessionsExported.Inc()
		return buf.Bytes(), nil
	}
	// Not in memory: an evicted-to-disk checkpoint is still exportable
	// (the gateway migrates cold sessions too, so their warm state follows
	// them instead of being orphaned on the old owner).
	if s.cfg.SnapshotDir != "" {
		if data, err := os.ReadFile(s.snapPath(id)); err == nil {
			s.metrics.sessionsExported.Inc()
			return data, nil
		}
	}
	return nil, fmt.Errorf("serve: no session %q: %w", id, ErrSessionNotFound)
}

// decodeSessionBlob materializes an exported checkpoint blob as a fully
// constructed session — predictor state, statistics, and cursor restored
// — WITHOUT publishing it in the shard map. The import path publishes it
// immediately; the replication path parks it as a warm standby instead.
// A corrupt or torn blob returns ErrSnapshotCorrupt and leaves nothing
// allocated.
func (s *Server) decodeSessionBlob(id string, data []byte) (*Session, error) {
	var sess *Session
	_, _, err := snapshot.Load(bytes.NewReader(data), func(name string) (snapshot.State, error) {
		ns, nerr := s.newSession(id, name, "", false)
		if nerr != nil {
			return nil, nerr
		}
		if _, ok := ns.pred.(snapshot.State); !ok {
			s.releaseSessionStore(ns)
			return nil, fmt.Errorf("predictor %q does not support snapshots", name)
		}
		sess = ns
		return sessionState{ns}, nil
	})
	if err != nil {
		if sess != nil {
			s.releaseSessionStore(sess)
		}
		if errors.Is(err, snapshot.ErrCorrupt) {
			return nil, fmt.Errorf("serve: import of session %q: %v: %w", id, err, ErrSnapshotCorrupt)
		}
		return nil, err
	}
	return sess, nil
}

// ImportSession installs an exported checkpoint blob as live session id,
// replacing any existing session under that ID (the transfer's
// destination must win — the source already quiesced and exported the
// authoritative state). The blob runs through the snapshot layer's full
// integrity checks before anything is installed: a corrupt or torn blob
// returns ErrSnapshotCorrupt and changes nothing, so the caller can
// re-export and retry — the same quarantine philosophy as the restore
// path, minus the file to rename. A stale on-disk checkpoint for the ID
// is deleted so it cannot resurrect pre-transfer state.
func (s *Server) ImportSession(id string, data []byte) (SessionFinal, error) {
	// Epoch 0 always passes the fence on servers that never replicated the
	// session, so non-replicating gateways are unaffected.
	return s.ImportSessionAt(id, 0, data)
}

// ImportSessionAt is ImportSession under an epoch fence: a replicating
// gateway stamps its session epoch into the transfer so a fenced-off
// former primary cannot overwrite post-failover state with a stale
// export. The fence follows the same rule as standby installs — reject
// below it, raise it on success.
func (s *Server) ImportSessionAt(id string, epoch uint64, data []byte) (SessionFinal, error) {
	s.replMu.Lock()
	if fence := s.epochs[id]; epoch < fence {
		s.replMu.Unlock()
		s.metrics.replicaStaleEpochs.Inc()
		return SessionFinal{}, fmt.Errorf("serve: import of %q at epoch %d, fence at %d: %w", id, epoch, fence, ErrStaleEpoch)
	}
	s.replMu.Unlock()
	sess, err := s.decodeSessionBlob(id, data)
	if err != nil {
		return SessionFinal{}, err
	}
	s.replMu.Lock()
	if fence := s.epochs[id]; epoch < fence {
		s.replMu.Unlock()
		s.releaseSessionStore(sess)
		s.metrics.replicaStaleEpochs.Inc()
		return SessionFinal{}, fmt.Errorf("serve: import of %q at epoch %d, fence at %d: %w", id, epoch, fence, ErrStaleEpoch)
	}
	if epoch > s.epochs[id] {
		s.epochs[id] = epoch
	}
	s.replMu.Unlock()
	// A live import supersedes any warm standby held for the ID (this
	// server may have been the session's standby before becoming its
	// owner); release it rather than strand its pattern storage.
	s.DropStandby(id)
	sess.restored = true
	sess.touch()
	if old := s.sessions.put(id, sess); old != nil {
		// The import's namespace replaced old's under the same pool key;
		// releasing still hands old's storage slabs back to the arena.
		s.releaseSessionStore(old)
		s.metrics.observeSessionEnd(old)
	}
	s.removeSnapshot(id)
	s.metrics.sessionsImported.Inc()
	return sess.final(), nil
}

// handleSessionExport is POST /admin/v1/sessions/{id}/export: the
// session's checkpoint blob as application/octet-stream.
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := s.ExportSession(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrSessionNotFound):
			writeError(w, http.StatusNotFound, CodeSessionNotFound, "%v", err)
		case errors.Is(err, ErrBadRequest):
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSessionImport is POST /admin/v1/sessions/{id}/import: the body is
// an exported checkpoint blob; the reply is the installed session's
// record. A blob that fails integrity checks is a 422 with the
// "snapshot_corrupt" code and installs nothing.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading checkpoint body: %v", err)
		return
	}
	// Replicating gateways stamp the session's fence epoch into the
	// transfer; absent header = epoch 0 (fence-free legacy import).
	var epoch uint64
	if h := r.Header.Get("X-LLBP-Epoch"); h != "" {
		if epoch, err = strconv.ParseUint(h, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad X-LLBP-Epoch %q: %v", h, err)
			return
		}
	}
	fin, err := s.ImportSessionAt(id, epoch, data)
	if err != nil {
		switch {
		case errors.Is(err, ErrStaleEpoch):
			writeError(w, http.StatusConflict, CodeStaleEpoch, "%v", err)
		case errors.Is(err, ErrSnapshotCorrupt):
			writeError(w, http.StatusUnprocessableEntity, CodeSnapshotCorrupt, "%v", err)
		case errors.Is(err, ErrUnknownPredictor):
			writeError(w, http.StatusBadRequest, CodeUnknownPredictor, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, fin)
}
