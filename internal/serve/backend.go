package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"llbpx/internal/core"
)

// Transport SPI ------------------------------------------------------------
//
// The Server's session, admission, drain, and checkpoint machinery is
// transport-agnostic; the HTTP mux is just its oldest frontend. The
// methods in this file are the exported surface a second frontend — the
// binary streaming listener in internal/wire — drives. They are thin
// wrappers over the same private paths the HTTP handlers use, so both
// protocols share one drain barrier, one worker pool, one shard map, and
// one metrics registry, and a session is reachable from either protocol
// under the same ID.

// BeginBatch registers an accepted batch with the drain barrier. It
// reports false when the server is draining — the caller must refuse the
// batch (the HTTP path answers 503, the wire path a "draining" NACK).
// Every successful BeginBatch must be paired with EndBatch.
func (s *Server) BeginBatch() bool {
	if !s.beginBatch() {
		s.metrics.rejected.Inc()
		return false
	}
	return true
}

// EndBatch releases a batch accepted by BeginBatch.
func (s *Server) EndBatch() { s.endBatch() }

// AcquireSlot takes a worker-pool slot under the admission policy: it
// gives up after AdmitTimeout with ErrOverloaded (the caller sheds the
// batch — state untouched, always safe to resend) or when ctx is
// cancelled. Pair with ReleaseSlot.
func (s *Server) AcquireSlot(ctx context.Context) error {
	err := s.acquireSlot(ctx)
	if errors.Is(err, ErrOverloaded) {
		s.metrics.shed.Inc()
	}
	return err
}

// ReleaseSlot returns a worker-pool slot taken by AcquireSlot.
func (s *Server) ReleaseSlot() { s.releaseSlot() }

// PoolDepth reports how many worker-pool slots are currently held — the
// queue-depth sample transports record at batch admission.
func (s *Server) PoolDepth() int { return len(s.pool) }

// RetryAfter is the server's advisory resend delay for shed batches (the
// HTTP path's Retry-After header, the wire path's NACK field).
func (s *Server) RetryAfter() time.Duration {
	if s.cfg.AdmitTimeout > 0 {
		return s.cfg.AdmitTimeout
	}
	return time.Second
}

// AcquireSession returns the live session for id, creating it (or
// restoring it from the pattern pool's frozen tier or a checkpoint) on
// first use. requested is the client's explicitly named predictor spec:
// "" accepts whatever exists (or the server default for a fresh session),
// and a non-empty spec that conflicts with an existing session's
// predictor fails with ErrPredictorConflict. Specs are canonicalized
// before comparison, so "tournament(chooser_bits=12)" and "tournament"
// name the same session identity. fingerprint is the workload
// fingerprint a freshly created session declares ("" = none; ignored for
// existing sessions). created reports a session that entered memory on
// this call; restored that it came back warm (frozen tier or disk).
//
// The returned session is pinned against budget spilling; the caller
// must call ReleaseSessionRef exactly once when its batch completes.
func (s *Server) AcquireSession(id, requested, fingerprint string) (sess *Session, created, restored bool, err error) {
	if requested != "" {
		// Canonicalize so parameter order and explicit defaults don't
		// fork session identities; an unresolvable spec falls through
		// unchanged and fails with the proper error in newSession.
		if canon, err := CanonicalPredictorName(requested); err == nil {
			requested = canon
		}
	}
	predictorName := requested
	if predictorName == "" {
		predictorName = s.cfg.DefaultPredictor
	}
	sess, created, err = s.sessions.getOrCreate(id, func() (*Session, error) {
		// A spilled session resumes warm from the pool's frozen tier,
		// then from its on-disk checkpoint; any restore failure (no
		// state, corrupt bytes, predictor mismatch) cold-starts.
		if ts, ok := s.thawSession(id, requested); ok {
			return ts, nil
		}
		if rs, ok := s.restoreSession(id, requested); ok {
			return rs, nil
		}
		// requested != "" means the client explicitly named the spec; the
		// server-chosen default is trusted configuration.
		return s.newSession(id, predictorName, fingerprint, requested != "")
	})
	if err != nil {
		return nil, false, false, err
	}
	if created {
		if sess.restored {
			s.metrics.snapshotRestores.Inc()
		} else {
			s.metrics.sessionsCreated.Inc()
		}
	} else if requested != "" && requested != sess.PredictorName {
		s.ReleaseSessionRef(sess)
		return nil, false, false, fmt.Errorf("session %q runs predictor %q, not %q: %w",
			id, sess.PredictorName, requested, ErrPredictorConflict)
	}
	return sess, created, created && sess.restored, nil
}

// ReleaseSessionRef drops the spill pin AcquireSession took. Call exactly
// once per successful AcquireSession, after the batch (or whatever the
// session was acquired for) completes.
func (s *Server) ReleaseSessionRef(sess *Session) { sess.pins.Add(-1) }

// ReclaimStore brings the shared pattern pool back under its byte budget
// by trimming frozen blobs and spilling least-recently-used idle
// sessions. skip (may be nil) is never spilled — pass the session the
// caller is still responding for. Transports call this after a batch
// completes; it is a cheap no-op while the pool is within budget.
func (s *Server) ReclaimStore(skip *Session) { s.reclaimStore(skip) }

// WireStatus is ExecuteWireBatch's sequencing verdict.
type WireStatus int

const (
	// WireApplied: the batch executed and advanced the session's cursor.
	WireApplied WireStatus = iota
	// WireDuplicate: the batch number was already applied — the resend of
	// a batch whose first response was lost. Nothing re-executed; the
	// caller answers with the session's current statistics so the
	// exactly-once retry contract holds.
	WireDuplicate
	// WireOutOfOrder: the batch number skips ahead of the cursor. Nothing
	// executed; the caller NACKs so the client replays the gap first.
	// This is what makes pipelined retries safe: a batch that slipped
	// past a failed predecessor is refused loudly instead of silently
	// corrupting the stream's retire order.
	WireOutOfOrder
)

// ExecuteWireBatch runs one binary-protocol batch against sess under its
// sequencing contract. batchNum is the client's per-session monotonically
// increasing batch number (1-based); 0 opts out of sequencing and always
// applies. On WireApplied the raw per-branch predictions are copied into
// preds (which must hold at least len(batch) elements) and the metrics
// pipeline records the batch; on WireDuplicate and WireOutOfOrder no
// state changes. snap is the session's statistics snapshot taken under
// the session lock in every case. The caller holds a worker-pool slot.
func (s *Server) ExecuteWireBatch(sess *Session, batchNum uint64, batch []core.Branch, preds []core.Prediction, depth int) (WireStatus, SessionStats) {
	s.cfg.Faults.Delay(FaultBatchExec)
	start := time.Now()
	sess.mu.Lock()
	if batchNum != 0 {
		switch {
		case batchNum <= sess.wireSeq:
			snap := sess.snapshotLocked()
			sess.mu.Unlock()
			return WireDuplicate, snap
		case batchNum > sess.wireSeq+1:
			snap := sess.snapshotLocked()
			sess.mu.Unlock()
			return WireOutOfOrder, snap
		}
	}
	raw, delta := sess.applyBatchLocked(batch)
	copy(preds, raw)
	if batchNum != 0 {
		sess.wireSeq = batchNum
	}
	snap := sess.snapshotLocked()
	sess.mu.Unlock()
	s.metrics.observeBatch(sess.PredictorName, s.sessions.index(sess.ID), delta, time.Since(start), depth)
	s.noteReplicaBatch(sess.ID)
	return WireApplied, snap
}

// CloseSession removes a session and returns its final statistics,
// deleting any on-disk checkpoint so a stale file cannot resurrect the
// ID. ok is false when no such session exists.
func (s *Server) CloseSession(id string) (SessionFinal, bool) {
	sess := s.sessions.remove(id)
	if sess == nil {
		return SessionFinal{}, false
	}
	s.dropReplica(id)
	s.removeSnapshot(id)
	final := sess.final()
	s.releaseSessionStore(sess)
	s.store.Forget(poolKey(id))
	s.metrics.sessionsClosed.Inc()
	s.metrics.observeSessionEnd(sess)
	return final, true
}

// FireFault fires the named fault-injection site on the server's
// injector (a no-op without one). Transports use it for their own sites
// — internal/wire's read/write sites run through here so one -inject
// spec arms both protocols.
func (s *Server) FireFault(site string) error { return s.cfg.Faults.Fire(site) }
