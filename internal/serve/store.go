package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"time"

	"llbpx/internal/patternpool"
	"llbpx/internal/snapshot"
)

// This file is the serving layer's side of the shared pattern pool
// (internal/patternpool): session construction attaches a namespace,
// session teardown releases it, and budget pressure spills the
// least-recently-used idle sessions — checkpoint to disk, freeze the
// predictor blob into the pool's frozen tier, hand the storage slabs
// back. Frozen state thaws transparently on the session's next batch.
//
// The bit-exactness contract lives one layer down: a namespace only ever
// exposes recycled slabs as raw capacity (fully re-initialized before
// use), and frozen-blob dedup shares immutable bytes between sessions
// that declared the same workload fingerprint. Nothing here lets one
// live session observe another's patterns.

// tenantOf derives the accounting tenant from a session ID: the prefix
// before the first '/', or "default" for un-namespaced IDs.
func tenantOf(id string) string {
	if i := strings.IndexByte(id, '/'); i > 0 {
		return id[:i]
	}
	return "default"
}

func poolKey(id string) patternpool.Key {
	return patternpool.Key{Tenant: tenantOf(id), CID: id}
}

// newSession builds a session with a fresh predictor from the registry,
// attached to the server's pattern pool when the predictor supports it.
// clientSpec marks predictorName as client-supplied: LocalOnly parameters
// (e.g. bullseye's h2p_file) are then rejected, so a remote client can
// never make the server touch its filesystem through a predictor spec.
// Trusted names — the server default, snapshot/frozen/import headers,
// which themselves originate from gated creations or operator
// configuration — pass clientSpec=false.
func (s *Server) newSession(id, predictorName, fingerprint string, clientSpec bool) (*Session, error) {
	construct := NewPredictor
	if clientSpec {
		construct = NewClientPredictor
	}
	p, err := construct(predictorName)
	if err != nil {
		return nil, err
	}
	sess := &Session{
		ID:            id,
		PredictorName: predictorName,
		Fingerprint:   fingerprint,
		pred:          p,
		created:       time.Now(),
	}
	if a, ok := p.(patternpool.Attacher); ok {
		sess.ns = s.store.Attach(poolKey(id), fingerprint)
		a.AttachPatternPool(sess.ns)
	}
	sess.touch()
	return sess, nil
}

// releaseSessionStore hands a session's pattern storage back to the pool.
// The predictor's second level is empty afterwards, so this must be the
// last thing that happens to a session (after any checkpoint/freeze).
func (s *Server) releaseSessionStore(sess *Session) {
	if sess.ns == nil {
		return
	}
	sess.mu.Lock()
	if r, ok := sess.pred.(patternpool.Releaser); ok {
		r.ReleasePatternStore()
	}
	ns := sess.ns
	sess.ns = nil
	sess.mu.Unlock()
	s.store.Detach(ns)
}

// frozenHeader is the JSON session metadata stored alongside a frozen
// predictor blob. The blob itself holds only predictor state, so two
// sessions at identical predictor state dedup to one body even though
// their statistics differ.
type frozenHeader struct {
	Predictor     string `json:"predictor"`
	Fingerprint   string `json:"fingerprint,omitempty"`
	Instructions  uint64 `json:"instructions"`
	CondBranches  uint64 `json:"cond_branches"`
	Mispredicts   uint64 `json:"mispredicts"`
	UncondCount   uint64 `json:"uncond_branches"`
	SecondLevelOK uint64 `json:"second_level_ok"`
	Overrides     uint64 `json:"overrides"`
	Batches       uint64 `json:"batches"`
	WireSeq       uint64 `json:"wire_seq"`
}

// freezeSession serializes a session's predictor into the pool's frozen
// tier (only when sharing is enabled — without it the on-disk checkpoint
// is strictly better: same bytes, no budget charge). The session lock is
// held across the serialization, so the blob is a consistent
// between-batches cut even for a session still reachable from the shard
// map; a caller freezing a mapped session owns the staleness problem
// (see reclaimStore).
func (s *Server) freezeSession(sess *Session) {
	if !s.cfg.StoreShare || sess.ns == nil {
		return
	}
	if _, ok := sess.pred.(snapshot.State); !ok {
		return
	}
	sess.mu.Lock()
	hdr, err := json.Marshal(frozenHeader{
		Predictor:     sess.PredictorName,
		Fingerprint:   sess.Fingerprint,
		Instructions:  sess.stats.Instructions,
		CondBranches:  sess.stats.CondBranches,
		Mispredicts:   sess.stats.Mispredicts,
		UncondCount:   sess.stats.UncondCount,
		SecondLevelOK: sess.stats.SecondLevelOK,
		Overrides:     sess.stats.Overrides,
		Batches:       sess.batches,
		WireSeq:       sess.wireSeq,
	})
	if err != nil {
		sess.mu.Unlock()
		return
	}
	var body bytes.Buffer
	err = snapshot.Save(&body, sess.PredictorName, sess.pred.(snapshot.State))
	sess.mu.Unlock()
	if err != nil {
		return
	}
	s.store.Freeze(poolKey(sess.ID), sess.Fingerprint, hdr, body.Bytes())
}

// thawSession rebuilds a session from the pool's frozen tier. want is the
// client's explicitly requested predictor ("" accepts whatever is
// frozen). Like restoreSession, any failure cold-starts the session —
// frozen state is a cache. Thaw consumes the blob, so a declined restore
// (predictor mismatch) re-freezes the taken bytes to keep the state warm.
func (s *Server) thawSession(id, want string) (*Session, bool) {
	hdrBytes, body, ok := s.store.Thaw(poolKey(id))
	if !ok {
		return nil, false
	}
	var hdr frozenHeader
	if json.Unmarshal(hdrBytes, &hdr) != nil || hdr.Predictor == "" {
		return nil, false
	}
	if want != "" && want != hdr.Predictor {
		s.store.Freeze(poolKey(id), hdr.Fingerprint, hdrBytes, body)
		return nil, false
	}
	sess, err := s.newSession(id, hdr.Predictor, hdr.Fingerprint, false)
	if err != nil {
		return nil, false
	}
	st, ok := sess.pred.(snapshot.State)
	if !ok {
		s.releaseSessionStore(sess)
		return nil, false
	}
	if _, _, err := snapshot.Load(bytes.NewReader(body), func(string) (snapshot.State, error) {
		return st, nil
	}); err != nil {
		s.releaseSessionStore(sess)
		return nil, false
	}
	sess.stats.Instructions = hdr.Instructions
	sess.stats.CondBranches = hdr.CondBranches
	sess.stats.Mispredicts = hdr.Mispredicts
	sess.stats.UncondCount = hdr.UncondCount
	sess.stats.SecondLevelOK = hdr.SecondLevelOK
	sess.stats.Overrides = hdr.Overrides
	sess.batches = hdr.Batches
	sess.wireSeq = hdr.WireSeq
	sess.restored = true
	sess.touch()
	return sess, true
}

// retireSessions is eviction-side teardown for sessions already removed
// from the shard map: checkpoint to disk, freeze into the pool's shared
// tier, release the pattern storage. Order matters — freeze and
// checkpoint read predictor state that release destroys.
func (s *Server) retireSessions(sessions []*Session) {
	s.checkpointSessions(sessions)
	for _, sess := range sessions {
		s.freezeSession(sess)
		s.releaseSessionStore(sess)
	}
}

// reclaimStore brings the pool back under budget after a batch grew a
// session: first trim frozen blobs (cheap — deterministic LRU discard),
// then spill live idle sessions least-recently-used first. skip is the
// session the caller is still responding for; it is never spilled, so a
// single session larger than the whole budget degrades to "nothing else
// stays resident" rather than an eviction livelock. The reclaiming flag
// collapses concurrent callers to one spiller.
//
// The spill is checkpoint-then-unmap, never the reverse: from the
// instant a session leaves the shard map, a batch for its ID cold-starts
// unless its state is already recoverable, so the disk checkpoint (and
// under sharing, the frozen blob) is written while the victim is still
// mapped. The removal then commits only if the victim stayed untouched —
// a batch that slipped in during the spill advances lastUsed under the
// shard lock, removeIfQuiet sees it, and the eviction aborts: the
// session stays live and the just-written state is stale but harmless
// (every later removal path rewrites or deletes it; nothing consults it
// while the session is mapped).
func (s *Server) reclaimStore(skip *Session) {
	if s.store.Budget() <= 0 || !s.store.OverBudget() {
		return
	}
	if !s.reclaiming.CompareAndSwap(false, true) {
		return
	}
	defer s.reclaiming.Store(false)
	s.store.ReclaimFrozen()
	// Aborted commits (a batch raced the spill) are bounded: under hot
	// uniform traffic every victim can keep losing the race, and the next
	// over-budget batch simply tries again.
	misses := 0
	for s.store.OverBudget() && misses < 8 {
		victim, asOf, ok := s.sessions.pickLRU(skip)
		if !ok {
			return
		}
		s.checkpointSessions([]*Session{victim})
		s.freezeSession(victim)
		if !s.sessions.removeIfQuiet(victim, asOf) {
			s.store.Forget(poolKey(victim.ID)) // drop the stale frozen blob
			misses++
			continue
		}
		s.metrics.sessionsEvicted.Inc()
		s.metrics.storeSpills.Inc()
		s.releaseSessionStore(victim)
		s.metrics.observeSessionEnd(victim)
		s.store.ReclaimFrozen()
	}
}
