package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"llbpx/internal/core"
)

// Client is a minimal llbpd API client, the transport half of
// cmd/llbpload. It is safe for concurrent use by multiple goroutines
// (each driving its own session).
//
// By default the client gives up on the first failure. WithRetry arms
// exponential backoff with jitter, honoring the server's Retry-After
// hint, under strict idempotency rules: a response that arrived as a 429
// (shed) or 503 (draining / injected pre-execution fault) means the
// server did not apply the batch, so any request is safe to resend; a
// transport error before any response byte was consumed is likewise
// retried. But once a 2xx body has started decoding, a predict is never
// retried — the server executed the batch, and replaying it would
// double-apply learned state. Session stats and close are idempotent by
// construction and follow the same mechanical rules.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	// Fingerprint is the workload fingerprint every Predict declares
	// ("" = none). The server consults it only on the batch that creates
	// a session; under -store-share, evicted sessions with identical
	// fingerprints share their frozen predictor state.
	Fingerprint string

	nretries atomic.Uint64 // resend attempts performed
	nshed    atomic.Uint64 // 429 overloaded envelopes observed
}

// RetryPolicy configures Client retries. The zero value disables them;
// WithRetry fills unset fields with the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); step k waits
	// BaseDelay << k, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter]
	// multiples of itself (default 0.2), so synchronized clients don't
	// re-stampede a recovering server.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// NewClient returns a client for the llbpd instance at base (e.g.
// "http://localhost:8713"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// WithRetry arms the retry policy (see RetryPolicy for defaults) and
// returns the client for chaining. Call before sharing the client across
// goroutines.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p.withDefaults()
	return c
}

// Retries reports how many resend attempts this client has performed.
func (c *Client) Retries() uint64 { return c.nretries.Load() }

// ShedSeen reports how many 429 overloaded responses this client has
// absorbed (each either retried or surfaced as the final error).
func (c *Client) ShedSeen() uint64 { return c.nshed.Load() }

// Predict streams one batch to session id, creating the session with the
// named predictor if it does not exist ("" = server default).
func (c *Client) Predict(ctx context.Context, id, predictor string, batch []core.Branch) (*PredictResponse, error) {
	records := make([]BranchRecord, len(batch))
	for i, b := range batch {
		records[i] = RecordFromBranch(b)
	}
	body, err := json.Marshal(PredictRequest{
		Predictor:           predictor,
		WorkloadFingerprint: c.Fingerprint,
		Branches:            records,
	})
	if err != nil {
		return nil, err
	}
	var out PredictResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/predict", body, &out); err != nil {
		return nil, err
	}
	// A duplicate reply (gateway-resolved resend) carries statistics but no
	// per-branch predictions — the length contract only binds fresh
	// executions.
	if !out.Duplicate && len(out.Predictions) != len(batch) {
		return nil, fmt.Errorf("serve client: sent %d branches, got %d predictions", len(batch), len(out.Predictions))
	}
	return &out, nil
}

// SessionStats fetches a session's running statistics.
func (c *Client) SessionStats(ctx context.Context, id string) (*SessionFinal, error) {
	var out SessionFinal
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CloseSession deletes a session and returns its final statistics.
func (c *Client) CloseSession(ctx context.Context, id string) (*SessionFinal, error) {
	var out SessionFinal
	if err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExportSession pulls session id's checkpoint blob from the admin
// transfer API. The bytes are an opaque, self-validating snapshot —
// meaningful only to ImportSession on another llbpd. Deliberately
// single-attempt regardless of the retry policy: the cluster tier owns
// transfer retries (each retry re-exports, so a torn read is never
// replayed).
func (c *Client) ExportSession(ctx context.Context, id string) ([]byte, error) {
	path := "/admin/v1/sessions/" + id + "/export"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(http.MethodPost, path, resp)
	}
	return io.ReadAll(resp.Body)
}

// ImportSession installs an exported checkpoint blob as session id on
// the server, replacing any existing session under that ID. A corrupt
// blob fails with an error satisfying errors.Is(err, ErrSnapshotCorrupt)
// and installs nothing. Single-attempt, like ExportSession.
func (c *Client) ImportSession(ctx context.Context, id string, blob []byte) (*SessionFinal, error) {
	path := "/admin/v1/sessions/" + id + "/import"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(http.MethodPost, path, resp)
	}
	var out SessionFinal
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ImportSessionAt is ImportSession stamped with a replica fence epoch
// (the X-LLBP-Epoch header): a fenced-off destination rejects the
// transfer with ErrStaleEpoch instead of regressing post-failover state.
func (c *Client) ImportSessionAt(ctx context.Context, id string, epoch uint64, blob []byte) (*SessionFinal, error) {
	path := "/admin/v1/sessions/" + id + "/import"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-LLBP-Epoch", strconv.FormatUint(epoch, 10))
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(http.MethodPost, path, resp)
	}
	var out SessionFinal
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetReplicaTarget assigns (or with target "" clears) session id's
// standby on the primary at this client's base URL, under the given
// fence epoch. Single-attempt; the gateway re-asserts placement on its
// own cadence, so a lost assignment heals at the next forward.
func (c *Client) SetReplicaTarget(ctx context.Context, id, target string, epoch uint64) error {
	body, err := json.Marshal(replicaTargetRequest{StandbyURL: target, Epoch: epoch})
	if err != nil {
		return err
	}
	var out replicaReply
	return c.rawJSON(ctx, http.MethodPost, "/admin/v1/sessions/"+url.PathEscape(id)+"/replica", body, &out)
}

// PromoteStandby promotes the warm standby for session id on the server
// into its live session map under the given fence epoch, returning the
// promoted session's record (its WireCursor tells the gateway which
// batches still need replaying). ErrSessionNotFound means no standby was
// installed; ErrStaleEpoch means a newer line of history already fenced
// this one off.
func (c *Client) PromoteStandby(ctx context.Context, id string, epoch uint64) (*SessionFinal, error) {
	body, err := json.Marshal(promoteRequest{Epoch: epoch})
	if err != nil {
		return nil, err
	}
	var out SessionFinal
	if err := c.rawJSON(ctx, http.MethodPost, "/admin/v1/sessions/"+url.PathEscape(id)+"/promote", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DropStandby discards the warm standby for session id on the server
// (best-effort cleanup when a session closes or moves).
func (c *Client) DropStandby(ctx context.Context, id string) error {
	var out replicaReply
	return c.rawJSON(ctx, http.MethodDelete, "/admin/v1/sessions/"+url.PathEscape(id)+"/standby", nil, &out)
}

// rawJSON is a single-attempt JSON round-trip outside the retry policy
// (replica-admin calls are owned by the gateway's own retry loops).
func (c *Client) rawJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return apiError(method, path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError decodes a non-200 response's versioned error envelope into a
// typed *APIError (falling back to a bare status error).
func apiError(method, path string, resp *http.Response) error {
	var er errorReply
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&er) == nil && er.Error.Message != "" {
		return fmt.Errorf("serve client: %s %s: %w", method, path,
			&APIError{Code: er.Error.Code, Message: er.Error.Message, Status: resp.StatusCode})
	}
	return fmt.Errorf("serve client: %s %s: status %d", method, path, resp.StatusCode)
}

// ServerStats fetches the server-wide snapshot from /v1/stats.
func (c *Client) ServerStats(ctx context.Context) (*StatsSnapshot, error) {
	var out StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do performs one logical API call, resending per the retry policy. Each
// failed attempt reports whether it is safe to resend (see Client's
// idempotency rules) and any Retry-After hint the server sent.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := 1
	if c.retry.MaxAttempts > 0 {
		attempts = c.retry.MaxAttempts
	}
	for attempt := 1; ; attempt++ {
		err, retryable, retryAfter := c.once(ctx, method, path, body, out)
		if err == nil || !retryable || attempt >= attempts {
			return err
		}
		c.nretries.Add(1)
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			// Surface the server's error, not the cancellation — it is
			// the more diagnostic of the two.
			return err
		}
	}
}

// once performs a single HTTP attempt. The response body is always fully
// drained and closed — on every path, including errors — so the
// keep-alive connection returns to the pool and a retry reuses it instead
// of leaking a conn per failure.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (err error, retryable bool, retryAfter time.Duration) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err, false, 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure: no response byte was consumed, so even a
		// predict is safe to resend under the idempotency rules.
		return err, true, 0
	}
	defer func() {
		// Drain whatever the decoder left so the connection is reusable.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		// 429 and 503 both mean "not applied, resend verbatim"; anything
		// else (4xx contract violations, 500 mid-execution failures) is
		// final.
		retryable = resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if resp.StatusCode == http.StatusTooManyRequests {
			c.nshed.Add(1)
		}
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		// Decode the versioned error envelope into a typed *APIError so
		// callers can errors.Is against the sentinel for its code (and
		// errors.As for the code string itself).
		var er errorReply
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&er) == nil && er.Error.Message != "" {
			return fmt.Errorf("serve client: %s %s: %w", method, path,
				&APIError{Code: er.Error.Code, Message: er.Error.Message, Status: resp.StatusCode}), retryable, retryAfter
		}
		return fmt.Errorf("serve client: %s %s: status %d", method, path, resp.StatusCode), retryable, retryAfter
	}
	// From the first decoded byte of a 2xx the server has applied the
	// request; a decode failure here is never retried.
	return json.NewDecoder(resp.Body).Decode(out), false, 0
}

// backoff computes the wait before resend attempt+1: exponential from
// BaseDelay, capped at MaxDelay, jittered, and never shorter than the
// server's Retry-After hint.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.retry.BaseDelay
	for i := 1; i < attempt && d < c.retry.MaxDelay; i++ {
		d *= 2
	}
	if d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	if j := c.retry.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j + 2*j*rand.Float64()))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}
