package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"llbpx/internal/core"
)

// Client is a minimal llbpd API client, the transport half of
// cmd/llbpload. It is safe for concurrent use by multiple goroutines
// (each driving its own session).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the llbpd instance at base (e.g.
// "http://localhost:8713"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Predict streams one batch to session id, creating the session with the
// named predictor if it does not exist ("" = server default).
func (c *Client) Predict(ctx context.Context, id, predictor string, batch []core.Branch) (*PredictResponse, error) {
	records := make([]BranchRecord, len(batch))
	for i, b := range batch {
		records[i] = RecordFromBranch(b)
	}
	body, err := json.Marshal(PredictRequest{Predictor: predictor, Branches: records})
	if err != nil {
		return nil, err
	}
	var out PredictResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/predict", body, &out); err != nil {
		return nil, err
	}
	if len(out.Predictions) != len(batch) {
		return nil, fmt.Errorf("serve client: sent %d branches, got %d predictions", len(batch), len(out.Predictions))
	}
	return &out, nil
}

// SessionStats fetches a session's running statistics.
func (c *Client) SessionStats(ctx context.Context, id string) (*SessionFinal, error) {
	var out SessionFinal
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CloseSession deletes a session and returns its final statistics.
func (c *Client) CloseSession(ctx context.Context, id string) (*SessionFinal, error) {
	var out SessionFinal
	if err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ServerStats fetches the server-wide snapshot from /v1/stats.
func (c *Client) ServerStats(ctx context.Context) (*StatsSnapshot, error) {
	var out StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Decode the versioned error envelope into a typed *APIError so
		// callers can errors.Is against the sentinel for its code (and
		// errors.As for the code string itself).
		var er errorReply
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&er) == nil && er.Error.Message != "" {
			return fmt.Errorf("serve client: %s %s: %w", method, path,
				&APIError{Code: er.Error.Code, Message: er.Error.Message, Status: resp.StatusCode})
		}
		return fmt.Errorf("serve client: %s %s: status %d", method, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
