package serve

import (
	"net/http"
	"strconv"
	"time"
)

// Health endpoints. /healthz is liveness: it answers 200 for as long as
// the process can serve HTTP at all, including while draining (a draining
// daemon is alive and flushing — killing it because a liveness probe went
// red would drop in-flight batches). /readyz is readiness: it turns 503
// the moment Drain begins so load balancers stop routing new work, and it
// reports worker-pool saturation so operators can see overload building
// before batches are shed.

// HealthReply is the JSON body of GET /healthz and GET /readyz.
type HealthReply struct {
	Status string `json:"status"` // "ok", "draining"
	// Draining reports the drain barrier's state (also implied by a 503
	// from /readyz).
	Draining bool `json:"draining"`
	// Workers and Busy describe the worker pool: Busy == Workers means
	// every slot is executing and new batches are queueing toward the
	// AdmitTimeout shed point.
	Workers int `json:"workers"`
	Busy    int `json:"busy"`
	// Overloaded is Busy == Workers at sampling time.
	Overloaded bool `json:"overloaded"`
	// Sessions is the live session count.
	Sessions int `json:"sessions"`
}

func (s *Server) healthReply() HealthReply {
	busy := len(s.pool)
	rep := HealthReply{
		Status:     "ok",
		Draining:   s.Draining(),
		Workers:    s.cfg.Workers,
		Busy:       busy,
		Overloaded: busy >= s.cfg.Workers,
		Sessions:   s.sessions.len(),
	}
	if rep.Draining {
		rep.Status = "draining"
	}
	return rep
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthReply())
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.healthReply()
	status := http.StatusOK
	if rep.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// retryAfterSeconds renders a Retry-After header value for a shed batch:
// the admit timeout rounded up to whole seconds (never less than 1), a
// deliberately coarse hint that spreads retries without leaking queue
// internals.
func retryAfterSeconds(admit time.Duration) string {
	secs := int64((admit + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
