package serve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"llbpx/internal/faults"
)

// evictToDisk streams a first chunk for id, lets it cross the (short)
// TTL, and evicts it so a checkpoint lands on disk; it returns the
// checkpoint path.
func evictToDisk(t *testing.T, srv *Server, client *Client, dir, id string) string {
	t.Helper()
	branches := workloadBranches(t, "nodeapp", 10_000)
	if _, err := client.Predict(context.Background(), id, "tsl-8k", branches[:600]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	path := filepath.Join(dir, id+".snap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint after eviction: %v", err)
	}
	return path
}

// assertQuarantined asserts the post-corruption batch cold-starts with
// the requested configuration and the damaged file moved to *.corrupt.
func assertQuarantined(t *testing.T, srv *Server, client *Client, path, id string) {
	t.Helper()
	branches := workloadBranches(t, "nodeapp", 10_000)
	resp, err := client.Predict(context.Background(), id, "tsl-8k", branches[600:1200])
	if err != nil {
		t.Fatalf("predict over corrupt checkpoint must not error: %v", err)
	}
	if !resp.Created || resp.Restored || resp.Predictor != "tsl-8k" {
		t.Fatalf("created=%v restored=%v predictor=%q, want a cold tsl-8k start",
			resp.Created, resp.Restored, resp.Predictor)
	}
	if resp.Stats.Batches != 1 {
		t.Fatalf("batches = %d after cold start, want 1 (state must not carry over)", resp.Stats.Batches)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint still in the restore path (stat err %v)", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if snap := srv.Stats(); snap.SnapshotQuarantined != 1 || snap.SnapshotRestores != 0 {
		t.Fatalf("quarantined=%d restores=%d, want 1/0", snap.SnapshotQuarantined, snap.SnapshotRestores)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, "llbpd_snapshot_quarantined_total 1") {
		t.Error("/metrics missing llbpd_snapshot_quarantined_total 1")
	}
}

// TestQuarantineTruncatedSnapshot: a checkpoint cut short on disk is
// renamed *.corrupt, counted, and the session restarts cold — it is
// never re-read on later restore attempts.
func TestQuarantineTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	path := evictToDisk(t, srv, client, dir, "trunc")

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}
	assertQuarantined(t, srv, client, path, "trunc")
}

// TestQuarantineBitFlippedSnapshot: one flipped byte mid-payload fails
// the decode (framing, bounds, or CRC) and quarantines the file.
func TestQuarantineBitFlippedSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	path := evictToDisk(t, srv, client, dir, "bitflip")

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	assertQuarantined(t, srv, client, path, "bitflip")
}

// TestTornWriteLandsInQuarantine: the faults partial-write injector makes
// the checkpoint write "succeed" while silently dropping the tail — the
// torn write that defeats write-then-rename atomicity. The CRC catches it
// at restore and the file is quarantined.
func TestTornWriteLandsInQuarantine(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(5)
	inj.Set(FaultSnapshotWrite, faults.Rule{PartialAfter: 256})
	cfg := snapTestConfig(dir)
	cfg.Faults = inj
	srv, client := testServer(t, cfg)

	path := evictToDisk(t, srv, client, dir, "torn")
	if st, err := os.Stat(path); err != nil || st.Size() != 256 {
		t.Fatalf("torn checkpoint: size=%v err=%v, want exactly 256 bytes on disk", st, err)
	}
	if ws := inj.Stats(FaultSnapshotWrite); ws.Truncated == 0 {
		t.Fatalf("injector stats %+v: torn write never fired", ws)
	}
	inj.Clear(FaultSnapshotWrite)
	assertQuarantined(t, srv, client, path, "torn")
}

// TestTransientRestoreFaultColdStartsWithoutQuarantine: an injected
// transient read failure cold-starts the session but leaves the (good)
// file alone — quarantine is for corruption, not for I/O weather.
func TestTransientRestoreFaultColdStartsWithoutQuarantine(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(5)
	cfg := snapTestConfig(dir)
	cfg.Faults = inj
	srv, client := testServer(t, cfg)

	path := evictToDisk(t, srv, client, dir, "flaky")
	// Armed only now: restoreSession also probes this site on the very
	// first batch of a brand-new session, which would burn the one-shot
	// error budget before the checkpoint exists.
	inj.Set(FaultSnapshotRestore, faults.Rule{ErrRate: 1, MaxErrors: 1})
	branches := workloadBranches(t, "nodeapp", 10_000)
	resp, err := client.Predict(context.Background(), "flaky", "tsl-8k", branches[600:1200])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Restored {
		t.Fatalf("created=%v restored=%v, want cold start past the transient fault", resp.Created, resp.Restored)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("good checkpoint must survive a transient read failure: %v", err)
	}
	if snap := srv.Stats(); snap.SnapshotQuarantined != 0 {
		t.Fatalf("quarantined = %d, want 0", snap.SnapshotQuarantined)
	}
}

// TestCheckpointWriteRetriesTransientError: one injected save failure is
// absorbed by the retry loop — the checkpoint still lands, the failed
// attempt is counted, and the session restores warm afterward.
func TestCheckpointWriteRetriesTransientError(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(5)
	inj.Set(FaultSnapshotSave, faults.Rule{ErrRate: 1, MaxErrors: 1})
	cfg := snapTestConfig(dir)
	cfg.Faults = inj
	srv, client := testServer(t, cfg)

	evictToDisk(t, srv, client, dir, "retryme")
	snap := srv.Stats()
	if snap.SnapshotSaves != 1 || snap.SnapshotSaveErrors != 1 {
		t.Fatalf("saves=%d errors=%d, want 1 save landed after 1 failed attempt",
			snap.SnapshotSaves, snap.SnapshotSaveErrors)
	}
	branches := workloadBranches(t, "nodeapp", 10_000)
	resp, err := client.Predict(context.Background(), "retryme", "tsl-8k", branches[600:1200])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || !resp.Restored {
		t.Fatalf("created=%v restored=%v, want a warm restore", resp.Created, resp.Restored)
	}
}
