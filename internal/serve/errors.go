package serve

import (
	"errors"
	"fmt"
)

// The llbpd HTTP API's versioned error envelope: every non-2xx response
// body is {"error":{"code":"...","message":"..."}}. Codes are the stable,
// machine-readable half of the contract — messages may change freely,
// codes may not. The client decodes the envelope into an *APIError whose
// Unwrap returns the matching sentinel, so callers dispatch with
// errors.Is(err, serve.ErrSessionNotFound) instead of matching status
// codes or message text.

// Error codes carried in the envelope.
const (
	// CodeBadRequest: malformed body, empty batch, or invalid branch record.
	CodeBadRequest = "bad_request"
	// CodeUnknownPredictor: the named predictor is not in the registry.
	CodeUnknownPredictor = "unknown_predictor"
	// CodeSessionNotFound: the session ID does not exist.
	CodeSessionNotFound = "session_not_found"
	// CodePredictorConflict: the session exists under a different predictor.
	CodePredictorConflict = "predictor_conflict"
	// CodeBatchTooLarge: the batch exceeds the server's MaxBatch.
	CodeBatchTooLarge = "batch_too_large"
	// CodeDraining: the server is shutting down and refuses new batches.
	CodeDraining = "draining"
	// CodeOverloaded: the batch could not acquire a worker slot within
	// AdmitTimeout and was shed (HTTP 429 with a Retry-After header).
	// Shedding happens before any predictor state is touched, so a shed
	// batch is always safe to retry.
	CodeOverloaded = "overloaded"
	// CodeInternal: the server hit an unexpected internal failure.
	CodeInternal = "internal"
	// CodeSnapshotCorrupt: an admin-imported checkpoint failed the
	// snapshot layer's integrity checks (bad magic, truncation, checksum
	// mismatch, version skew). The import installed nothing; the caller
	// should re-export and resend.
	CodeSnapshotCorrupt = "snapshot_corrupt"
	// CodeStaleEpoch: a replica ship, import, or promotion carried a fence
	// epoch below the session's — the sender's line of history was fenced
	// off by a failover and must stop (HTTP 409). Nothing was installed.
	CodeStaleEpoch = "stale_epoch"
)

// Sentinel errors, one per code; *APIError unwraps to these.
var (
	ErrBadRequest        = errors.New("bad request")
	ErrUnknownPredictor  = errors.New("unknown predictor")
	ErrSessionNotFound   = errors.New("session not found")
	ErrPredictorConflict = errors.New("predictor conflict")
	ErrBatchTooLarge     = errors.New("batch too large")
	ErrDraining          = errors.New("server is draining")
	ErrOverloaded        = errors.New("server overloaded, batch shed")
	ErrInternal          = errors.New("internal server error")
	ErrSnapshotCorrupt   = errors.New("snapshot corrupt")
	ErrStaleEpoch        = errors.New("stale replica epoch")
)

// codeSentinels maps envelope codes to their errors.Is sentinels.
var codeSentinels = map[string]error{
	CodeBadRequest:        ErrBadRequest,
	CodeUnknownPredictor:  ErrUnknownPredictor,
	CodeSessionNotFound:   ErrSessionNotFound,
	CodePredictorConflict: ErrPredictorConflict,
	CodeBatchTooLarge:     ErrBatchTooLarge,
	CodeDraining:          ErrDraining,
	CodeOverloaded:        ErrOverloaded,
	CodeInternal:          ErrInternal,
	CodeSnapshotCorrupt:   ErrSnapshotCorrupt,
	CodeStaleEpoch:        ErrStaleEpoch,
}

// APIError is a decoded llbpd error envelope. It satisfies errors.As, and
// its Unwrap returns the sentinel for its code (nil for codes this client
// build does not know, which still yields a usable error value).
type APIError struct {
	// Code is the stable machine-readable error code.
	Code string
	// Message is the human-readable detail (unstable across versions).
	Message string
	// Status is the HTTP status the envelope arrived with.
	Status int
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s (http %d)", e.Code, e.Message, e.Status)
}

// Unwrap returns the sentinel error for the code.
func (e *APIError) Unwrap() error { return codeSentinels[e.Code] }

// errorBody is the inner object of the wire envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error errorBody `json:"error"`
}
