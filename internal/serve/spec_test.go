package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestParseSpec pins the spec grammar: accepted forms, their parsed
// shapes, and the rejection of malformed inputs.
func TestParseSpec(t *testing.T) {
	good := []struct {
		in   string
		want PredictorSpec
	}{
		{"tsl-64k", PredictorSpec{Name: "tsl-64k"}},
		{"  llbp-x  ", PredictorSpec{Name: "llbp-x"}},
		{"bullseye()", PredictorSpec{Name: "bullseye"}},
		{"bullseye(promote=8)", PredictorSpec{Name: "bullseye", Params: map[string]string{"promote": "8"}}},
		{"bullseye( promote = 8 , branches = 1024 )", PredictorSpec{
			Name: "bullseye", Params: map[string]string{"promote": "8", "branches": "1024"}}},
		{"tournament(members=tsl-8k+llbp,chooser_bits=12)", PredictorSpec{
			Name: "tournament", Params: map[string]string{"members": "tsl-8k+llbp", "chooser_bits": "12"}}},
		// A nested member spec keeps its own commas and parentheses intact.
		{"tournament(members=bullseye(promote=8,branches=32)+llbp)", PredictorSpec{
			Name: "tournament", Params: map[string]string{"members": "bullseye(promote=8,branches=32)+llbp"}}},
	}
	for _, tc := range good {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if sp.Name != tc.want.Name || !reflect.DeepEqual(sp.Params, tc.want.Params) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
	}

	bad := []string{
		"",
		"   ",
		"tsl 64k",
		"name())",
		"name(",
		"name(a=1",
		"name(a=1))",
		"name(a)",
		"name(=1)",
		"name(a=1,a=2)",
		"name(a b=1)",
		"(a=1)",
		"na me(a=1)",
		strings.Repeat("x", maxSpecLen+1),
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", in)
		}
	}
}

// TestSpecRoundTrip: String() re-parses to an equal spec, and parsing the
// rendering is a fixed point.
func TestSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"tsl-8k",
		"bullseye(branches=1024,promote=8)",
		"tournament(chooser_bits=8,members=tsl-8k+llbp)",
		"tournament(members=bullseye(promote=8)+llbp)",
	} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		rendered := sp.String()
		sp2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(String()=%q): %v", rendered, err)
		}
		if sp2.Name != sp.Name || !reflect.DeepEqual(sp2.Params, sp.Params) {
			t.Errorf("round trip %q -> %q -> %+v, want %+v", in, rendered, sp2, sp)
		}
		if again := sp2.String(); again != rendered {
			t.Errorf("String not a fixed point: %q then %q", rendered, again)
		}
	}
}

// FuzzParseSpec: whatever parses must render and re-parse to the same
// spec, and the parser must never panic.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"tsl-64k",
		"bullseye(promote=8,branches=1024)",
		"tournament(members=tsl-8k+llbp,chooser_bits=12)",
		"tournament(members=bullseye(promote=8)+llbp)",
		"name(a=1,b=,c==x)",
		"x(((",
		"a(b=c)d",
		" spaced ( k = v ) ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseSpec(in)
		if err != nil {
			return
		}
		rendered := sp.String()
		sp2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted spec rejected: %q -> %q: %v", in, rendered, err)
		}
		if sp2.Name != sp.Name || !reflect.DeepEqual(sp2.Params, sp.Params) {
			t.Fatalf("round trip diverged: %q -> %+v -> %q -> %+v", in, sp, rendered, sp2)
		}
	})
}

// TestSplitSpecList pins depth-aware '+' splitting.
func TestSplitSpecList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"tsl-8k", []string{"tsl-8k"}},
		{"tsl-8k+llbp", []string{"tsl-8k", "llbp"}},
		{" tsl-8k + llbp ", []string{"tsl-8k", "llbp"}},
		{"bullseye(promote=8)+llbp", []string{"bullseye(promote=8)", "llbp"}},
		{"a+", []string{"a", ""}},
	}
	for _, tc := range cases {
		if got := SplitSpecList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSpecList(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestBareNamesBackCompat is the compatibility lock: every builtin bare
// name must resolve verbatim — it builds, labels the instance with the
// exact name, and is its own canonical form. Pre-redesign clients,
// snapshots, and scripts depend on this.
func TestBareNamesBackCompat(t *testing.T) {
	builtins := []string{
		"bullseye", "llbp", "llbp-0lat", "llbp-x", "tournament",
		"tsl-128k", "tsl-16k", "tsl-32k", "tsl-512k", "tsl-64k",
		"tsl-8k", "tsl-inf",
	}
	for _, name := range builtins {
		canon, err := CanonicalPredictorName(name)
		if err != nil {
			t.Fatalf("CanonicalPredictorName(%s): %v", name, err)
		}
		if canon != name {
			t.Errorf("bare name %q canonicalized to %q, must be itself", name, canon)
		}
		p, err := NewPredictor(name)
		if err != nil {
			t.Fatalf("NewPredictor(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPredictor(%s).Name() = %q, want the bare name", name, p.Name())
		}
	}
}

// TestCanonicalPredictorName pins normalization: parameter order,
// whitespace, int/bool spellings, default elision, and member
// canonicalization inside spec-lists all collapse to one form.
func TestCanonicalPredictorName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"bullseye", "bullseye"},
		{"bullseye()", "bullseye"},
		{"bullseye(promote=4)", "bullseye"},                // default elided
		{"bullseye(promote=8)", "bullseye(promote=8)"},     //
		{"bullseye(promote=08)", "bullseye(promote=8)"},    // canonical decimal
		{"bullseye( promote = 8 )", "bullseye(promote=8)"}, // whitespace
		{"bullseye(branches=1024,promote=8)", "bullseye(branches=1024,promote=8)"},
		{"bullseye(promote=8,branches=1024)", "bullseye(branches=1024,promote=8)"}, // key order
		{"tournament", "tournament"},
		{"tournament(chooser_bits=12)", "tournament"},
		{"tournament(members=tsl-8k+llbp)", "tournament"},
		{"tournament(members=tsl-8k + llbp)", "tournament"}, // member whitespace
		// Member specs canonicalize recursively: decimal normalization and
		// default elision apply inside the spec-list too.
		{"tournament(members=tsl-8k+bullseye(promote=08))",
			"tournament(members=tsl-8k+bullseye(promote=8))"},
		{"tournament(members=tsl-8k+bullseye(promote=04))",
			"tournament(members=tsl-8k+bullseye)"},
		{"tournament(chooser_bits=8,members=llbp+tsl-8k)",
			"tournament(chooser_bits=8,members=llbp+tsl-8k)"},
	}
	for _, tc := range cases {
		got, err := CanonicalPredictorName(tc.in)
		if err != nil {
			t.Errorf("CanonicalPredictorName(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("CanonicalPredictorName(%q) = %q, want %q", tc.in, got, tc.want)
		}
		// Canonicalization is idempotent.
		if again, err := CanonicalPredictorName(got); err != nil || again != got {
			t.Errorf("canonical form %q not a fixed point: %q, %v", got, again, err)
		}
	}
}

// TestSpecResolutionErrors pins the failure modes clients see.
func TestSpecResolutionErrors(t *testing.T) {
	for _, in := range []string{
		"nope",                                           // unknown name
		"bullseye(nope=1)",                               // unknown parameter
		"tsl-64k(x=1)",                                   // parameterless predictor
		"bullseye(promote=zero)",                         // not an integer
		"bullseye(promote=0)",                            // below Min
		"bullseye(branches=99999999)",                    // above Max
		"tournament(members=tsl-8k)",                     // too few members
		"tournament(members=tsl-8k+nope)",                // unknown member
		"tournament(chooser_bits=99)",                    // out of range
		"bullseye(base=llbp)",                            // base must be a tsl config
		"bullseye(h2p_file=/does/not/exist)",             // unreadable seed file
		"tournament(members=tsl-8k+llbp+llbp+llbp+llbp)", // too many members
	} {
		if _, err := NewPredictor(in); err == nil {
			t.Errorf("NewPredictor(%q) accepted, want error", in)
		}
	}
	// Unknown names must wrap the sentinel for the HTTP 400 mapping.
	if _, err := NewPredictor("nope"); err == nil || !strings.Contains(err.Error(), "unknown predictor") {
		t.Errorf("unknown name error unhelpful: %v", err)
	}
}

// TestClientSpecsRejectLocalOnlyParams is the serving-layer security
// lock: a client-supplied spec must never make the server touch its
// filesystem. h2p_file builds locally (the CLI/facade path) but is
// rejected — before any file I/O — when the same spec arrives through
// the client constructor, including nested inside a tournament member.
func TestClientSpecsRejectLocalOnlyParams(t *testing.T) {
	seed := filepath.Join(t.TempDir(), "h2p.json")
	if err := os.WriteFile(seed, []byte(`{"table":[{"pc":"0x1234"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := "bullseye(h2p_file=" + seed + ")"
	if _, err := NewPredictor(spec); err != nil {
		t.Fatalf("NewPredictor(%q): %v", spec, err)
	}
	if _, err := NewClientPredictor(spec); err == nil || !strings.Contains(err.Error(), "h2p_file") {
		t.Fatalf("NewClientPredictor(%q) = %v, want an h2p_file rejection", spec, err)
	}
	// The rejection must not be a file-existence oracle: a missing path
	// draws the same error as an existing one.
	if _, err := NewClientPredictor("bullseye(h2p_file=/does/not/exist)"); err == nil ||
		!strings.Contains(err.Error(), "h2p_file") || strings.Contains(err.Error(), "no such file") {
		t.Fatalf("client rejection must not come from file I/O: %v", err)
	}
	nested := "tournament(members=bullseye(h2p_file=" + seed + ")+tsl-8k)"
	if _, err := NewPredictor(nested); err != nil {
		t.Fatalf("NewPredictor(%q): %v", nested, err)
	}
	if _, err := NewClientPredictor(nested); err == nil || !strings.Contains(err.Error(), "h2p_file") {
		t.Fatalf("NewClientPredictor(%q) = %v, want an h2p_file rejection", nested, err)
	}
	// Ordinary client specs still build.
	if p, err := NewClientPredictor("bullseye(promote=8)"); err != nil || p == nil {
		t.Fatalf("NewClientPredictor(bullseye(promote=8)): %v", err)
	}
	// And the metadata API declares the restriction.
	info, ok := DescribePredictor("bullseye")
	if !ok {
		t.Fatal("bullseye did not resolve")
	}
	for _, pd := range info.Params {
		if pd.Name == "h2p_file" && !pd.LocalOnly {
			t.Error("h2p_file metadata must carry local_only")
		}
	}
}

// TestSessionRejectsLocalOnlySpec covers the path the HTTP layer reaches:
// a client-requested h2p_file spec fails session creation, while the
// server operator's configured default remains free to use one.
func TestSessionRejectsLocalOnlySpec(t *testing.T) {
	seed := filepath.Join(t.TempDir(), "h2p.json")
	if err := os.WriteFile(seed, []byte(`{"table":[{"pc":"0x1234"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	defer srv.Close()
	if _, _, _, err := srv.AcquireSession("s1", "bullseye(h2p_file="+seed+")", ""); err == nil {
		t.Fatal("client h2p_file spec created a session")
	}
	trusted := New(Config{DefaultPredictor: "bullseye(h2p_file=" + seed + ")"})
	defer trusted.Close()
	sess, _, _, err := trusted.AcquireSession("s2", "", "")
	if err != nil {
		t.Fatalf("server-configured default with h2p_file: %v", err)
	}
	trusted.ReleaseSessionRef(sess)
}

// TestParameterizedSpecBuilds exercises the factory path: explicit
// parameters reach the built predictor, and the instance is labelled with
// the canonical spec.
func TestParameterizedSpecBuilds(t *testing.T) {
	p, err := NewPredictor("bullseye(promote=8,branches=1024)")
	if err != nil {
		t.Fatal(err)
	}
	if want := "bullseye(branches=1024,promote=8)"; p.Name() != want {
		t.Errorf("predictor name %q, want canonical %q", p.Name(), want)
	}
	p2, err := NewPredictor("tournament(members=tsl-8k+tsl-64k,chooser_bits=8)")
	if err != nil {
		t.Fatal(err)
	}
	if want := "tournament(chooser_bits=8,members=tsl-8k+tsl-64k)"; p2.Name() != want {
		t.Errorf("tournament name %q, want canonical %q", p2.Name(), want)
	}
}

// TestDescribePredictorSpecs: metadata resolves for parameterized specs
// and reports schemas and storage estimates.
func TestDescribePredictorSpecs(t *testing.T) {
	info, ok := DescribePredictor("bullseye(branches=1024)")
	if !ok {
		t.Fatal("bullseye spec did not resolve")
	}
	if info.Name != "bullseye(branches=1024)" {
		t.Errorf("canonical name %q", info.Name)
	}
	if len(info.Params) == 0 {
		t.Error("bullseye schema missing from metadata")
	}
	if info.StorageBytes <= 0 {
		t.Error("bullseye storage estimate missing")
	}
	base, ok := DescribePredictor("bullseye")
	if !ok {
		t.Fatal("bare bullseye did not resolve")
	}
	if info.StorageBytes <= base.StorageBytes {
		t.Errorf("branches=1024 storage %d should exceed the default's %d",
			info.StorageBytes, base.StorageBytes)
	}
	if _, ok := DescribePredictor("nope"); ok {
		t.Error("unknown spec resolved")
	}
	if _, ok := DescribePredictor("bullseye(promote=0)"); ok {
		t.Error("out-of-range spec resolved")
	}
}

// TestPredictorsEndpoint covers GET /v1/predictors: 200, JSON body in the
// standard conventions, every builtin present with schema metadata.
func TestPredictorsEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/predictors", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/predictors = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type %q", ct)
	}
	var reply struct {
		Predictors []PredictorInfo `json:"predictors"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatalf("body not the documented shape: %v\n%s", err, rec.Body.String())
	}
	byName := make(map[string]PredictorInfo, len(reply.Predictors))
	for _, info := range reply.Predictors {
		byName[info.Name] = info
	}
	for _, name := range []string{"tsl-64k", "llbp", "llbp-x", "bullseye", "tournament"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("/v1/predictors missing %q", name)
		}
	}
	if len(byName["bullseye"].Params) == 0 {
		t.Error("/v1/predictors: bullseye schema missing")
	}
	if byName["llbp"].StorageBytes <= 0 {
		t.Error("/v1/predictors: llbp storage estimate missing")
	}
}
