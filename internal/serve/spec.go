package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Predictor specs --------------------------------------------------------
//
// A spec names a registry predictor plus optional parameters:
//
//	tsl-64k
//	bullseye(promote=8,branches=1024)
//	tournament(members=tsl-8k+llbp,chooser_bits=12)
//
// Grammar:
//
//	spec   := name | name '(' params ')'
//	params := param (',' param)*
//	param  := key '=' value
//
// Names and keys are runs of [A-Za-z0-9._-]. Values may contain nested
// balanced parentheses (a member spec inside a spec-list) and '+', which
// joins members of a spec-list value; a ',' separates parameters only at
// parenthesis depth zero. Whitespace around names, keys, and values is
// ignored.
//
// The canonical rendering (PredictorSpec.String) sorts parameters by key;
// canonicalization against a registry schema (CanonicalPredictorName)
// additionally normalizes each value and drops parameters equal to their
// defaults, so a bare name is its own canonical form and specs that differ
// only in spelling collapse to one session identity.

// maxSpecLen bounds spec strings; nested canonicalization recurses on
// strictly shorter substrings, so this also bounds the recursion depth.
const maxSpecLen = 4096

// PredictorSpec is a parsed predictor specification.
type PredictorSpec struct {
	// Name is the registry base name.
	Name string
	// Params holds the explicitly given parameters (nil when none).
	Params map[string]string
}

// String renders the spec canonically: the bare name when there are no
// parameters, otherwise name(k=v,...) with keys sorted.
func (sp PredictorSpec) String() string {
	if len(sp.Params) == 0 {
		return sp.Name
	}
	keys := make([]string, 0, len(sp.Params))
	for k := range sp.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(sp.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(sp.Params[k])
	}
	b.WriteByte(')')
	return b.String()
}

// validSpecName reports whether s is a legal spec name or parameter key.
func validSpecName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseSpec parses a predictor spec string. The result round-trips:
// ParseSpec(sp.String()) yields an equal spec.
func ParseSpec(s string) (PredictorSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return PredictorSpec{}, fmt.Errorf("empty predictor spec")
	}
	if len(s) > maxSpecLen {
		return PredictorSpec{}, fmt.Errorf("predictor spec exceeds %d bytes", maxSpecLen)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !validSpecName(s) {
			return PredictorSpec{}, fmt.Errorf("invalid predictor name %q", s)
		}
		return PredictorSpec{Name: s}, nil
	}
	name := strings.TrimSpace(s[:open])
	if !validSpecName(name) {
		return PredictorSpec{}, fmt.Errorf("invalid predictor name %q", s[:open])
	}
	if s[len(s)-1] != ')' {
		return PredictorSpec{}, fmt.Errorf("spec %q: missing closing ')'", s)
	}
	body := s[open+1 : len(s)-1]
	sp := PredictorSpec{Name: name}
	if strings.TrimSpace(body) == "" {
		return sp, nil
	}
	// Split the body on parenthesis-depth-zero commas; a ',' inside a
	// nested member spec belongs to its value.
	depth, start := 0, 0
	var parts []string
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return PredictorSpec{}, fmt.Errorf("spec %q: unbalanced parentheses", s)
			}
		case ',':
			if depth == 0 {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return PredictorSpec{}, fmt.Errorf("spec %q: unbalanced parentheses", s)
	}
	parts = append(parts, body[start:])
	sp.Params = make(map[string]string, len(parts))
	for _, part := range parts {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return PredictorSpec{}, fmt.Errorf("spec %q: parameter %q is not key=value", s, strings.TrimSpace(part))
		}
		key := strings.TrimSpace(part[:eq])
		if !validSpecName(key) {
			return PredictorSpec{}, fmt.Errorf("spec %q: invalid parameter key %q", s, part[:eq])
		}
		if _, dup := sp.Params[key]; dup {
			return PredictorSpec{}, fmt.Errorf("spec %q: duplicate parameter %q", s, key)
		}
		sp.Params[key] = strings.TrimSpace(part[eq+1:])
	}
	return sp, nil
}

// SplitSpecList splits a spec-list value ("tsl-8k+llbp") on '+' at
// parenthesis depth zero, so member specs may themselves carry parameters.
// Members are whitespace-trimmed; empty members are kept (validation is
// the caller's job).
func SplitSpecList(v string) []string {
	depth, start := 0, 0
	var out []string
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '+':
			if depth == 0 {
				out = append(out, strings.TrimSpace(v[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(v[start:]))
}

// Parameter schemas ------------------------------------------------------

// ParamKind types a registry parameter.
type ParamKind int

const (
	// ParamInt is a decimal integer bounded by ParamDef.Min/Max.
	ParamInt ParamKind = iota
	// ParamBool is "true"/"false" (strconv.ParseBool forms accepted).
	ParamBool
	// ParamString is free-form (factory-validated).
	ParamString
	// ParamSpecList is '+'-joined member predictor specs, each of which
	// must itself resolve through the registry.
	ParamSpecList
)

// String names the kind for metadata output.
func (k ParamKind) String() string {
	switch k {
	case ParamInt:
		return "int"
	case ParamBool:
		return "bool"
	case ParamString:
		return "string"
	case ParamSpecList:
		return "spec-list"
	}
	return "unknown"
}

// ParamDef declares one parameter a registry predictor accepts.
type ParamDef struct {
	// Name is the parameter key.
	Name string
	// Kind types the value.
	Kind ParamKind
	// Default is the value used when the parameter is omitted; it must
	// itself validate (and, for spec-lists, be canonical).
	Default string
	// Min and Max bound ParamInt values inclusively.
	Min, Max int64
	// Desc is a one-line description for metadata output.
	Desc string
	// LocalOnly restricts the parameter to trusted local construction
	// (NewPredictor: the CLI, the Go facade, snapshot restore). Specs
	// arriving from clients (NewClientPredictor: the llbpd serving path)
	// are rejected when they set it. Use it for parameters that reach
	// into the local filesystem or otherwise must not be remotely
	// controllable.
	LocalOnly bool
}

// Params is a fully resolved parameter map: every schema key present, every
// value validated and normalized. The typed accessors re-parse without
// error handling because resolution already guaranteed the form.
type Params map[string]string

// paramClientOrigin is the reserved Params key recording that a parameter
// set was resolved from an untrusted client spec (NewClientPredictor).
// The key starts with '!', which validSpecName rejects — and resolveParams
// refuses keys outside the schema anyway — so no spec can set it from the
// outside; it is injected after resolution and never rendered into
// canonical spec strings (canonicalString walks the schema only).
const paramClientOrigin = "!client-origin"

// ClientOrigin reports whether this parameter set came from an untrusted
// client-supplied spec. Factories that construct nested predictors (e.g.
// tournament members) must consult it so LocalOnly restrictions propagate.
func (p Params) ClientOrigin() bool { return p[paramClientOrigin] == "true" }

// Int returns a resolved ParamInt value.
func (p Params) Int(name string) int {
	n, _ := strconv.ParseInt(p[name], 10, 64)
	return int(n)
}

// Bool returns a resolved ParamBool value.
func (p Params) Bool(name string) bool {
	b, _ := strconv.ParseBool(p[name])
	return b
}

// Str returns a resolved ParamString or ParamSpecList value.
func (p Params) Str(name string) string { return p[name] }

// resolveParams validates sp's explicit parameters against schema and
// merges them over the defaults, normalizing each value (canonical decimal
// for ints, "true"/"false" for bools, canonical member specs for
// spec-lists). canonMember canonicalizes one spec-list member; it is
// injected so this file stays independent of the registry table.
func resolveParams(schema []ParamDef, sp PredictorSpec, canonMember func(string) (string, error)) (Params, error) {
	out := make(Params, len(schema))
	for _, d := range schema {
		out[d.Name] = d.Default
	}
	keys := make([]string, 0, len(sp.Params))
	for k := range sp.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := sp.Params[k]
		var def *ParamDef
		for i := range schema {
			if schema[i].Name == k {
				def = &schema[i]
				break
			}
		}
		if def == nil {
			if len(schema) == 0 {
				return nil, fmt.Errorf("serve: predictor %q takes no parameters", sp.Name)
			}
			known := make([]string, len(schema))
			for i, d := range schema {
				known[i] = d.Name
			}
			return nil, fmt.Errorf("serve: predictor %q has no parameter %q (known: %s)",
				sp.Name, k, strings.Join(known, ", "))
		}
		switch def.Kind {
		case ParamInt:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: predictor %q: parameter %s=%q is not an integer", sp.Name, k, v)
			}
			if n < def.Min || n > def.Max {
				return nil, fmt.Errorf("serve: predictor %q: parameter %s=%d out of range [%d,%d]",
					sp.Name, k, n, def.Min, def.Max)
			}
			v = strconv.FormatInt(n, 10)
		case ParamBool:
			b, err := strconv.ParseBool(v)
			if err != nil {
				return nil, fmt.Errorf("serve: predictor %q: parameter %s=%q is not a boolean", sp.Name, k, v)
			}
			v = strconv.FormatBool(b)
		case ParamSpecList:
			members := SplitSpecList(v)
			canon := make([]string, len(members))
			for i, m := range members {
				cm, err := canonMember(m)
				if err != nil {
					return nil, fmt.Errorf("serve: predictor %q: parameter %s member %q: %w", sp.Name, k, m, err)
				}
				canon[i] = cm
			}
			v = strings.Join(canon, "+")
		}
		out[k] = v
	}
	return out, nil
}

// canonicalString renders the canonical spec for a resolved parameter set:
// parameters still at their defaults are dropped, so the bare name is the
// canonical form of a default-configured predictor.
func canonicalString(name string, schema []ParamDef, resolved Params) string {
	var diff map[string]string
	for _, d := range schema {
		if v := resolved[d.Name]; v != d.Default {
			if diff == nil {
				diff = make(map[string]string)
			}
			diff[d.Name] = v
		}
	}
	return PredictorSpec{Name: name, Params: diff}.String()
}
