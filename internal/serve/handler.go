package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/tournament"
)

// Wire types ---------------------------------------------------------------

// BranchRecord is the wire form of one core.Branch. Kind uses the
// core.BranchKind numeric encoding (0=cond, 1=jump, 2=call, 3=ret,
// 4=ijump).
type BranchRecord struct {
	PC     uint64 `json:"pc"`
	Target uint64 `json:"target,omitempty"`
	Kind   uint8  `json:"kind"`
	Taken  bool   `json:"taken"`
	Gap    uint32 `json:"gap,omitempty"`
}

// ToBranch converts the wire record to the core type.
func (r BranchRecord) ToBranch() core.Branch {
	return core.Branch{PC: r.PC, Target: r.Target, Kind: core.BranchKind(r.Kind), Taken: r.Taken, InstrGap: r.Gap}
}

// RecordFromBranch converts a core.Branch to its wire form.
func RecordFromBranch(b core.Branch) BranchRecord {
	return BranchRecord{PC: b.PC, Target: b.Target, Kind: uint8(b.Kind), Taken: b.Taken, Gap: b.InstrGap}
}

// BranchPrediction is the per-branch reply. For unconditional branches
// Cond is false and Taken/Correct are trivially true.
type BranchPrediction struct {
	Cond        bool `json:"cond"`
	Taken       bool `json:"taken"`
	Correct     bool `json:"correct"`
	SecondLevel bool `json:"second_level,omitempty"`
}

// PredictRequest is the body of POST /v1/sessions/{id}/predict.
type PredictRequest struct {
	// Predictor names the registry configuration; consulted only when the
	// batch creates the session (empty = server default). A non-empty name
	// that conflicts with an existing session's predictor is a 409.
	Predictor string `json:"predictor,omitempty"`
	// WorkloadFingerprint optionally declares the session's workload
	// identity (any stable string — a trace name, a binary hash).
	// Consulted only when the batch creates the session. Under
	// -store-share, evicted sessions with identical fingerprints share
	// their frozen predictor blobs; live predictions are never shared, so
	// a fingerprint never changes a session's prediction stream.
	WorkloadFingerprint string `json:"workload_fingerprint,omitempty"`
	// Branches is the batch, in retire order.
	Branches []BranchRecord `json:"branches"`
}

// PredictResponse is the reply: predictions align 1:1 with the request's
// branches, and Stats is the session's running total after the batch.
type PredictResponse struct {
	Session   string `json:"session"`
	Predictor string `json:"predictor"`
	Created   bool   `json:"created,omitempty"`
	// Restored reports that this batch revived the session from an
	// on-disk checkpoint (set only alongside Created).
	Restored bool `json:"restored,omitempty"`
	// Duplicate reports that the batch was already applied under the
	// exactly-once sequencing contract and was answered from the session's
	// running statistics without re-executing — in which case Predictions
	// is empty (the original per-branch reply is gone). llbpd itself never
	// sets this on the HTTP path; the cluster gateway does when a resent
	// forward turns out to be a duplicate downstream.
	Duplicate   bool               `json:"duplicate,omitempty"`
	Predictions []BranchPrediction `json:"predictions"`
	Stats       SessionStats       `json:"stats"`
}

// Routing ------------------------------------------------------------------

// ServeHTTP implements http.Handler. A handler panic is converted into a
// 500 with the "internal" error code instead of tearing down the
// connection, so clients always see the envelope.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "internal error: %v", p)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions/{id}/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("GET /v1/sessions/{id}/chooser", s.handleSessionChooser)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/predictors", s.handlePredictors)
	mux.HandleFunc("POST /admin/v1/sessions/{id}/export", s.handleSessionExport)
	mux.HandleFunc("POST /admin/v1/sessions/{id}/import", s.handleSessionImport)
	mux.HandleFunc("POST /admin/v1/sessions/{id}/replica", s.handleReplicaTarget)
	mux.HandleFunc("POST /admin/v1/sessions/{id}/standby", s.handleStandbyInstall)
	mux.HandleFunc("POST /admin/v1/sessions/{id}/promote", s.handleStandbyPromote)
	mux.HandleFunc("DELETE /admin/v1/sessions/{id}/standby", s.handleStandbyDrop)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the versioned error envelope: a stable machine-readable
// code plus a free-form message.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: errorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// Handlers -----------------------------------------------------------------

// maxBodyBytes bounds a predict request body; 64 bytes/branch of JSON is
// generous, and MaxBatch bounds the decoded batch anyway.
const maxBodyBytes = 64 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Branches) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	if len(req.Branches) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			"batch of %d branches exceeds limit %d", len(req.Branches), s.cfg.MaxBatch)
		return
	}
	batch := make([]core.Branch, len(req.Branches))
	for i, rec := range req.Branches {
		b := rec.ToBranch()
		if !b.Kind.Valid() {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "branch %d: invalid kind %d", i, rec.Kind)
			return
		}
		batch[i] = b
	}

	// Fault site: fires before any state is touched, so an injected
	// failure is reported as a retryable 503 — the batch was not applied.
	if ferr := s.cfg.Faults.Fire(FaultPredict); ferr != nil {
		writeError(w, http.StatusServiceUnavailable, CodeInternal, "injected fault: %v", ferr)
		return
	}

	// From here the batch counts as in-flight: drain waits for it and it
	// is never dropped part-way.
	if !s.beginBatch() {
		s.metrics.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	defer s.endBatch()

	sess, created, restored, err := s.AcquireSession(id, req.Predictor, req.WorkloadFingerprint)
	if err != nil {
		switch {
		case errors.Is(err, ErrPredictorConflict):
			writeError(w, http.StatusConflict, CodePredictorConflict, "%v", err)
		case errors.Is(err, ErrUnknownPredictor):
			writeError(w, http.StatusBadRequest, CodeUnknownPredictor, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	defer s.ReleaseSessionRef(sess)

	// Bounded worker pool: a slot gates the CPU-heavy predictor walk so a
	// flood of batches queues here instead of oversubscribing the host —
	// but only for AdmitTimeout. A batch that cannot get a slot in time is
	// shed whole with 429 + Retry-After (predictor state untouched, so the
	// client retries it verbatim), and a batch whose client disconnected
	// while queueing is dropped without execution. The pool's occupancy at
	// admission is the queue-depth sample: how many workers were already
	// busy when this batch arrived.
	depth := len(s.pool)
	if aerr := s.acquireSlot(r.Context()); aerr != nil {
		if errors.Is(aerr, ErrOverloaded) {
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.AdmitTimeout))
			writeError(w, http.StatusTooManyRequests, CodeOverloaded,
				"no worker slot within %v (%d executing); batch shed, retry safe",
				s.cfg.AdmitTimeout, len(s.pool))
			return
		}
		// Client gone: nothing to answer, nothing was executed.
		s.metrics.cancelled.Inc()
		return
	}
	s.cfg.Faults.Delay(FaultBatchExec)
	start := time.Now()
	preds, delta, snap := sess.executeBatch(batch)
	elapsed := time.Since(start)
	s.releaseSlot()
	s.metrics.observeBatch(sess.PredictorName, s.sessions.index(id), delta, elapsed, depth)
	s.noteReplicaBatch(id)
	// The batch may have grown the session's pattern store past the pool
	// budget; spill colder sessions before answering.
	s.reclaimStore(sess)

	writeJSON(w, http.StatusOK, PredictResponse{
		Session:     id,
		Predictor:   sess.PredictorName,
		Created:     created,
		Restored:    restored,
		Predictions: preds,
		Stats:       snap,
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.sessions.get(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, CodeSessionNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, sess.final())
}

// handleSessionChooser is GET /v1/sessions/{id}/chooser: the tournament
// meta-predictor's per-member chooser dump (reliability counters, chosen
// counts). Sessions running a non-tournament predictor are a 400 — the
// endpoint is meaningful only when there is a chooser table to read.
func (s *Server) handleSessionChooser(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.sessions.get(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, CodeSessionNotFound, "no session %q", id)
		return
	}
	cp, ok := sess.pred.(interface {
		ChooserStats() tournament.ChooserStats
	})
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"session %q predictor %q has no chooser (not a tournament)", id, sess.PredictorName)
		return
	}
	sess.mu.Lock()
	cs := cp.ChooserStats()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, cs)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fin, ok := s.CloseSession(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeSessionNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, fin)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// predictorsReply is the GET /v1/predictors body.
type predictorsReply struct {
	Predictors []PredictorInfo `json:"predictors"`
}

func (s *Server) handlePredictors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, predictorsReply{Predictors: Predictors()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WritePrometheus(w)
}
