package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"llbpx/internal/core"
)

// Wire types ---------------------------------------------------------------

// BranchRecord is the wire form of one core.Branch. Kind uses the
// core.BranchKind numeric encoding (0=cond, 1=jump, 2=call, 3=ret,
// 4=ijump).
type BranchRecord struct {
	PC     uint64 `json:"pc"`
	Target uint64 `json:"target,omitempty"`
	Kind   uint8  `json:"kind"`
	Taken  bool   `json:"taken"`
	Gap    uint32 `json:"gap,omitempty"`
}

// ToBranch converts the wire record to the core type.
func (r BranchRecord) ToBranch() core.Branch {
	return core.Branch{PC: r.PC, Target: r.Target, Kind: core.BranchKind(r.Kind), Taken: r.Taken, InstrGap: r.Gap}
}

// RecordFromBranch converts a core.Branch to its wire form.
func RecordFromBranch(b core.Branch) BranchRecord {
	return BranchRecord{PC: b.PC, Target: b.Target, Kind: uint8(b.Kind), Taken: b.Taken, Gap: b.InstrGap}
}

// BranchPrediction is the per-branch reply. For unconditional branches
// Cond is false and Taken/Correct are trivially true.
type BranchPrediction struct {
	Cond        bool `json:"cond"`
	Taken       bool `json:"taken"`
	Correct     bool `json:"correct"`
	SecondLevel bool `json:"second_level,omitempty"`
}

// PredictRequest is the body of POST /v1/sessions/{id}/predict.
type PredictRequest struct {
	// Predictor names the registry configuration; consulted only when the
	// batch creates the session (empty = server default). A non-empty name
	// that conflicts with an existing session's predictor is a 409.
	Predictor string `json:"predictor,omitempty"`
	// Branches is the batch, in retire order.
	Branches []BranchRecord `json:"branches"`
}

// PredictResponse is the reply: predictions align 1:1 with the request's
// branches, and Stats is the session's running total after the batch.
type PredictResponse struct {
	Session   string `json:"session"`
	Predictor string `json:"predictor"`
	Created   bool   `json:"created,omitempty"`
	// Restored reports that this batch revived the session from an
	// on-disk checkpoint (set only alongside Created).
	Restored    bool               `json:"restored,omitempty"`
	Predictions []BranchPrediction `json:"predictions"`
	Stats       SessionStats       `json:"stats"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

// Routing ------------------------------------------------------------------

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions/{id}/predict", s.handlePredict)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// Handlers -----------------------------------------------------------------

// maxBodyBytes bounds a predict request body; 64 bytes/branch of JSON is
// generous, and MaxBatch bounds the decoded batch anyway.
const maxBodyBytes = 64 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Branches) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Branches) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"batch of %d branches exceeds limit %d", len(req.Branches), s.cfg.MaxBatch)
		return
	}
	batch := make([]core.Branch, len(req.Branches))
	for i, rec := range req.Branches {
		b := rec.ToBranch()
		if !b.Kind.Valid() {
			writeError(w, http.StatusBadRequest, "branch %d: invalid kind %d", i, rec.Kind)
			return
		}
		batch[i] = b
	}

	// From here the batch counts as in-flight: drain waits for it and it
	// is never dropped part-way.
	if !s.beginBatch() {
		s.metrics.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.endBatch()

	predictorName := req.Predictor
	if predictorName == "" {
		predictorName = s.cfg.DefaultPredictor
	}
	sess, created, err := s.sessions.getOrCreate(id, func() (*Session, error) {
		// A checkpointed session resumes warm; any restore failure
		// (no file, corrupt bytes, predictor mismatch) cold-starts.
		if rs, ok := s.restoreSession(id, req.Predictor); ok {
			return rs, nil
		}
		return newSession(id, predictorName)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if created {
		if sess.restored {
			s.metrics.snapshotRestores.Add(1)
		} else {
			s.metrics.sessionsCreated.Add(1)
		}
	} else if req.Predictor != "" && req.Predictor != sess.PredictorName {
		writeError(w, http.StatusConflict,
			"session %q runs predictor %q, not %q", id, sess.PredictorName, req.Predictor)
		return
	}

	// Bounded worker pool: a slot gates the CPU-heavy predictor walk so a
	// flood of batches queues here instead of oversubscribing the host.
	s.pool <- struct{}{}
	start := time.Now()
	preds, delta, snap := sess.executeBatch(batch)
	elapsed := time.Since(start)
	<-s.pool
	s.metrics.observeBatch(sess.PredictorName, delta, elapsed)

	writeJSON(w, http.StatusOK, PredictResponse{
		Session:     id,
		Predictor:   sess.PredictorName,
		Created:     created,
		Restored:    created && sess.restored,
		Predictions: preds,
		Stats:       snap,
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.sessions.get(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, sess.final())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.sessions.remove(id)
	if sess == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	// DELETE is terminal: a stale checkpoint must not resurrect the ID.
	s.removeSnapshot(id)
	s.metrics.sessionsClosed.Add(1)
	writeJSON(w, http.StatusOK, sess.final())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Stats().writeProm(w)
}
