package serve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/sim"
)

// snapTestConfig gives the janitor no chance to fire on its own (EvictEvery
// is an hour) so tests trigger eviction deterministically via EvictIdle
// after sleeping past the short TTL.
func snapTestConfig(dir string) Config {
	return Config{SnapshotDir: dir, SessionTTL: 30 * time.Millisecond, EvictEvery: time.Hour}
}

// TestEvictToDiskRestoresTransparently is the serving layer's golden bar:
// stream half a workload, let the TTL janitor checkpoint the session to
// disk, stream the second half under the same session ID, and the final
// statistics must equal a local sim.Run over the unbroken stream — the
// eviction round-trip is invisible to the client.
func TestEvictToDiskRestoresTransparently(t *testing.T) {
	const instrBudget = 60_000
	branches := workloadBranches(t, "nodeapp", instrBudget)
	half := len(branches) / 2

	p, err := NewPredictor("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	sendInBatches(t, client, "roundtrip", "tsl-8k", branches[:half], 1024)

	time.Sleep(50 * time.Millisecond)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	snapFile := filepath.Join(dir, "roundtrip.snap")
	if _, err := os.Stat(snapFile); err != nil {
		t.Fatalf("no checkpoint after eviction: %v", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("%d sessions still live after eviction", srv.Sessions())
	}

	got := sendInBatches(t, client, "roundtrip", "tsl-8k", branches[half:], 1024)
	if _, err := os.Stat(snapFile); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not consumed on restore (stat err %v)", err)
	}

	want := local.Measured
	if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
		got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
		got.SecondLevelOK != want.SecondLevelOK || got.MPKI != local.MPKI() {
		t.Fatalf("restored session diverges from unbroken local sim:\nserver %+v\nlocal  %+v", got, want)
	}

	snap := srv.Stats()
	if snap.SnapshotSaves != 1 || snap.SnapshotRestores != 1 || snap.SnapshotSaveErrors != 0 {
		t.Fatalf("snapshot counters saves=%d restores=%d errors=%d, want 1/1/0",
			snap.SnapshotSaves, snap.SnapshotRestores, snap.SnapshotSaveErrors)
	}
	if snap.SessionsLiveByPredictor["tsl-8k"] != 1 {
		t.Fatalf("live-by-predictor %v, want tsl-8k:1", snap.SessionsLiveByPredictor)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{
		"llbpd_snapshot_saves_total 1",
		"llbpd_snapshot_restores_total 1",
		`llbpd_predictor_sessions_live{predictor="tsl-8k"} 1`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

// TestRestoredFlagOnFirstBatch: the batch that revives a session reports
// restored=true exactly once.
func TestRestoredFlagOnFirstBatch(t *testing.T) {
	branches := workloadBranches(t, "kafka", 20_000)
	srv, client := testServer(t, snapTestConfig(t.TempDir()))
	ctx := context.Background()

	resp, err := client.Predict(ctx, "flagged", "tsl-8k", branches[:500])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Restored {
		t.Fatalf("first batch: created=%v restored=%v, want true/false", resp.Created, resp.Restored)
	}
	time.Sleep(50 * time.Millisecond)
	srv.EvictIdle()
	resp, err = client.Predict(ctx, "flagged", "tsl-8k", branches[500:1000])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || !resp.Restored {
		t.Fatalf("reviving batch: created=%v restored=%v, want true/true", resp.Created, resp.Restored)
	}
	resp, err = client.Predict(ctx, "flagged", "tsl-8k", branches[1000:1500])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Created || resp.Restored {
		t.Fatalf("steady batch: created=%v restored=%v, want false/false", resp.Created, resp.Restored)
	}
}

// TestCorruptSnapshotFallsBackCold: garbage on disk must yield a working
// cold session — no client-visible error, no restore counted, no loop.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "corrupt.snap"), []byte("LLBPSNAPgarbage-not-a-predictor"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, client := testServer(t, snapTestConfig(dir))
	branches := workloadBranches(t, "tpcc", 10_000)
	resp, err := client.Predict(context.Background(), "corrupt", "tsl-8k", branches[:800])
	if err != nil {
		t.Fatalf("predict against corrupt snapshot: %v", err)
	}
	if !resp.Created || resp.Restored {
		t.Fatalf("created=%v restored=%v, want cold create", resp.Created, resp.Restored)
	}
	snap := srv.Stats()
	if snap.SnapshotRestores != 0 {
		t.Fatalf("restores = %d, want 0", snap.SnapshotRestores)
	}
}

// TestDeleteRemovesSnapshot: DELETE is terminal even for a checkpointed
// session ID — a later batch under the same ID starts cold.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	ctx := context.Background()
	branches := workloadBranches(t, "nodeapp", 10_000)

	if _, err := client.Predict(ctx, "doomed", "tsl-8k", branches[:500]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.EvictIdle()
	// Revive from disk, then close for good.
	if _, err := client.Predict(ctx, "doomed", "tsl-8k", branches[500:1000]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CloseSession(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "doomed.snap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived DELETE (stat err %v)", err)
	}
	resp, err := client.Predict(ctx, "doomed", "tsl-8k", branches[1000:1500])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Restored {
		t.Fatalf("post-DELETE batch: created=%v restored=%v, want cold create", resp.Created, resp.Restored)
	}
}

// TestDrainCheckpointsSessions: drain writes every live session to disk,
// and a new server over the same directory boots those sessions warm with
// their statistics intact.
func TestDrainCheckpointsSessions(t *testing.T) {
	dir := t.TempDir()
	branches := workloadBranches(t, "wikipedia", 30_000)

	srv1 := New(Config{SnapshotDir: dir, SessionTTL: time.Hour})
	hs1 := httptest.NewServer(srv1)
	c1 := NewClient(hs1.URL, hs1.Client())
	before := sendInBatches(t, c1, "durable", "tsl-8k", branches[:len(branches)/2], 1024)
	srv1.Drain()
	hs1.Close()
	if snap := srv1.Stats(); snap.SnapshotSaves != 1 {
		t.Fatalf("drain saved %d snapshots, want 1", snap.SnapshotSaves)
	}
	if _, err := os.Stat(filepath.Join(dir, "durable.snap")); err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}

	srv2, client2 := testServer(t, Config{SnapshotDir: dir, SessionTTL: time.Hour})
	after := sendInBatches(t, client2, "durable", "tsl-8k", branches[len(branches)/2:], 1024)
	if after.Instructions <= before.Instructions || after.Batches <= before.Batches {
		t.Fatalf("restored session did not continue: before %+v after %+v", before, after)
	}
	if snap := srv2.Stats(); snap.SnapshotRestores != 1 {
		t.Fatalf("restores = %d, want 1", snap.SnapshotRestores)
	}
}

// TestRestoreRejectsPredictorMismatch: an explicit predictor name that
// conflicts with the checkpointed one cold-starts the requested predictor
// instead of silently resuming the wrong configuration.
func TestRestoreRejectsPredictorMismatch(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	ctx := context.Background()
	branches := workloadBranches(t, "nodeapp", 10_000)

	if _, err := client.Predict(ctx, "switcher", "tsl-8k", branches[:500]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.EvictIdle()
	resp, err := client.Predict(ctx, "switcher", "tsl-16k", branches[500:1000])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Restored || resp.Predictor != "tsl-16k" {
		t.Fatalf("mismatched restore: created=%v restored=%v predictor=%q, want cold tsl-16k",
			resp.Created, resp.Restored, resp.Predictor)
	}
}

// TestSnapshotDisabledByDefault: without SnapshotDir, eviction discards
// state exactly as before the checkpointing subsystem existed.
func TestSnapshotDisabledByDefault(t *testing.T) {
	srv, client := testServer(t, Config{SessionTTL: 30 * time.Millisecond, EvictEvery: time.Hour})
	ctx := context.Background()
	branches := workloadBranches(t, "nodeapp", 10_000)
	if _, err := client.Predict(ctx, "plain", "tsl-8k", branches[:500]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.EvictIdle()
	resp, err := client.Predict(ctx, "plain", "tsl-8k", branches[500:1000])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Restored {
		t.Fatalf("created=%v restored=%v, want plain cold re-create", resp.Created, resp.Restored)
	}
	if snap := srv.Stats(); snap.SnapshotSaves != 0 || snap.SnapshotRestores != 0 {
		t.Fatalf("snapshot counters moved without SnapshotDir: %+v", snap)
	}
}

// TestSessionIDsAreEscapedOnDisk: hostile session IDs must not escape the
// snapshot directory.
func TestSessionIDsAreEscapedOnDisk(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	ctx := context.Background()
	branches := workloadBranches(t, "nodeapp", 5_000)
	id := "..%2f..%2fetc%2fowned"
	if _, err := client.Predict(ctx, id, "tsl-8k", branches[:300]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.EvictIdle()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly one snapshot inside %s, found %d", dir, len(entries))
	}
}
