package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"llbpx/internal/replica"
)

// TestStandbyInstallPromoteExact: primary streams half a workload, ships
// its export to a standby server, streams the second half there after a
// promotion — the promoted session's stats must be bit-exact with an
// unbroken run. This is failover fidelity at the serve layer, below the
// gateway's replay machinery (the ship here covers every batch).
func TestStandbyInstallPromoteExact(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 60_000)
	half := len(branches) / 2

	_, refClient := testServer(t, Config{})
	ref := sendInBatches(t, refClient, "ref", "tsl-8k", branches, 500)

	primary, pClient := testServer(t, Config{})
	standby, sClient := testServer(t, Config{})
	sendInBatches(t, pClient, "s1", "tsl-8k", branches[:half], 500)

	blob, err := primary.ExportSession("s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.InstallStandby("s1", replica.EncodeBlob(4, blob)); err != nil {
		t.Fatal(err)
	}
	if got := standby.StandbySessions(); got != 1 {
		t.Fatalf("standby sessions = %d, want 1", got)
	}
	// The warm standby is invisible to the client surface until promoted.
	if _, err := sClient.SessionStats(context.Background(), "s1"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("standby leaked into the live map: err = %v", err)
	}

	fin, err := standby.PromoteStandby("s1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fin.ID != "s1" || fin.Predictor != "tsl-8k" {
		t.Fatalf("promoted final %+v", fin)
	}
	if standby.StandbySessions() != 0 {
		t.Fatal("promotion left the standby entry behind")
	}
	got := sendInBatches(t, sClient, "s1", "tsl-8k", branches[half:], 500)
	if got.Mispredicts != ref.Mispredicts || got.CondBranches != ref.CondBranches || got.MPKI != ref.MPKI {
		t.Fatalf("promoted stream diverged: got %+v, ref %+v", got, ref)
	}
	snap := standby.Stats()
	if snap.ReplicaInstalls != 1 || snap.ReplicaPromotions != 1 {
		t.Fatalf("installs=%d promotions=%d, want 1/1", snap.ReplicaInstalls, snap.ReplicaPromotions)
	}
}

// TestEpochFencing: promotion raises the fence, after which the old
// primary's line of history — late ships, epoch-stamped re-imports, a
// second promotion at the stale epoch — is rejected with ErrStaleEpoch
// and changes nothing. The split-brain guarantee at the serve layer.
func TestEpochFencing(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 30_000)
	primary, pClient := testServer(t, Config{})
	standby, _ := testServer(t, Config{})
	sendInBatches(t, pClient, "s1", "tsl-8k", branches, 500)
	blob, err := primary.ExportSession("s1")
	if err != nil {
		t.Fatal(err)
	}

	if err := standby.InstallStandby("s1", replica.EncodeBlob(2, blob)); err != nil {
		t.Fatal(err)
	}
	fin, err := standby.PromoteStandby("s1", 3)
	if err != nil {
		t.Fatal(err)
	}

	// The fenced primary keeps shipping at its pre-failover epoch.
	if err := standby.InstallStandby("s1", replica.EncodeBlob(2, blob)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale ship err = %v, want ErrStaleEpoch", err)
	}
	// A stale epoch-stamped transfer import is fenced the same way.
	if _, err := standby.ImportSessionAt("s1", 2, blob); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale import err = %v, want ErrStaleEpoch", err)
	}
	// Re-promoting below the fence (no standby either way) is fenced
	// before the lookup.
	if _, err := standby.PromoteStandby("s1", 2); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale promote err = %v, want ErrStaleEpoch", err)
	}
	// The promoted session is untouched by all of the above.
	sess := standby.sessions.get("s1")
	if sess == nil {
		t.Fatal("promoted session vanished")
	}
	if live := sess.final(); live.Stats != fin.Stats {
		t.Fatalf("fenced writes mutated the promoted session: %+v != %+v", live.Stats, fin.Stats)
	}
	if snap := standby.Stats(); snap.ReplicaStaleEpochs != 3 {
		t.Fatalf("stale epochs = %d, want 3", snap.ReplicaStaleEpochs)
	}
	// At-the-fence epochs still pass (the fence rejects strictly below).
	if err := standby.InstallStandby("s1", replica.EncodeBlob(3, blob)); err != nil {
		t.Fatalf("at-fence install: %v", err)
	}
	// Legacy imports (epoch 0, no header) on a server whose fence was
	// never raised — the primary itself — are unaffected by fencing.
	if _, err := primary.ImportSession("s1", blob); err != nil {
		t.Fatalf("legacy import: %v", err)
	}
}

// TestInstallStandbyCorruptBlob: framing damage and payload damage both
// reject with ErrSnapshotCorrupt and install nothing.
func TestInstallStandbyCorruptBlob(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 20_000)
	primary, pClient := testServer(t, Config{})
	standby, _ := testServer(t, Config{})
	sendInBatches(t, pClient, "s1", "tsl-8k", branches, 500)
	blob, err := primary.ExportSession("s1")
	if err != nil {
		t.Fatal(err)
	}

	framed := replica.EncodeBlob(1, blob)
	for name, data := range map[string][]byte{
		"truncated header": framed[:replica.HeaderLen-2],
		"torn payload":     framed[:len(framed)*2/3],
		"bad magic":        append([]byte("XXXXXXXX"), framed[8:]...),
	} {
		if err := standby.InstallStandby("s1", data); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("%s: err = %v, want ErrSnapshotCorrupt", name, err)
		}
	}
	if standby.StandbySessions() != 0 {
		t.Fatal("corrupt blob installed a standby")
	}
}

// TestShipperEndToEnd: a primary with a live replication target ships on
// the batch cadence without any manual export, and the standby holds a
// warm session. The full primary→standby pump over real HTTP.
func TestShipperEndToEnd(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 40_000)
	primary, pClient := testServer(t, Config{ReplicaEvery: 2, ReplicaInterval: 20 * time.Millisecond})
	standby, _ := testServer(t, Config{})
	hs := httptest.NewServer(standby)
	defer hs.Close()

	sendInBatches(t, pClient, "s1", "tsl-8k", branches[:len(branches)/2], 500)
	primary.SetReplicaTarget("s1", hs.URL, 1)
	sendInBatches(t, pClient, "s1", "tsl-8k", branches[len(branches)/2:], 500)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if lag, ok := primary.ReplicaLag("s1"); ok && lag == 0 && standby.StandbySessions() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lag, ok := primary.ReplicaLag("s1"); !ok || lag != 0 {
		t.Fatalf("replica lag = %d ok=%v, want 0 true", lag, ok)
	}
	if standby.StandbySessions() != 1 {
		t.Fatal("standby never materialized")
	}
	pSnap := primary.Stats()
	if pSnap.ReplicaShips == 0 || pSnap.ReplicaShipBytes == 0 {
		t.Fatalf("ships=%d bytes=%d, want > 0", pSnap.ReplicaShips, pSnap.ReplicaShipBytes)
	}
	// Closing the session tears down its replication state on the primary.
	if _, err := pClient.CloseSession(context.Background(), "s1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := primary.ReplicaLag("s1"); ok {
		t.Fatal("closed session still has a replication target")
	}
}

// TestReplicaAdminHTTP drives the replica admin endpoints through the
// client wrappers: target assignment, promote (404 without a standby,
// then success), drop, and the stale-epoch 409 mapping.
func TestReplicaAdminHTTP(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 20_000)
	primary, pClient := testServer(t, Config{})
	standby, sClient := testServer(t, Config{})
	sendInBatches(t, pClient, "s1", "tsl-8k", branches, 500)
	blob, err := primary.ExportSession("s1")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := pClient.SetReplicaTarget(ctx, "s1", "", 1); err != nil {
		t.Fatalf("clear target: %v", err)
	}
	if _, err := sClient.PromoteStandby(ctx, "s1", 1); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("promote without standby: %v, want ErrSessionNotFound", err)
	}
	if err := standby.InstallStandby("s1", replica.EncodeBlob(1, blob)); err != nil {
		t.Fatal(err)
	}
	fin, err := sClient.PromoteStandby(ctx, "s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fin.ID != "s1" {
		t.Fatalf("promoted %+v", fin)
	}
	// Fenced transfer import over HTTP maps to a 409 stale_epoch envelope.
	if _, err := sClient.ImportSessionAt(ctx, "s1", 1, blob); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale import via HTTP: %v, want ErrStaleEpoch", err)
	}
	if err := standby.InstallStandby("s1", replica.EncodeBlob(9, blob)); err != nil {
		t.Fatal(err)
	}
	if err := sClient.DropStandby(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	if standby.StandbySessions() != 0 {
		t.Fatal("DropStandby left the entry")
	}
}

// TestConcurrentQuarantineRace (satellite): two servers sharing one
// snapshot directory race to restore the same corrupt checkpoint. The
// rename-to-*.corrupt is the atomic arbiter: exactly one server
// quarantines and counts it, the loser cold-starts without error, and
// no duplicate *.corrupt files appear.
func TestConcurrentQuarantineRace(t *testing.T) {
	dir := t.TempDir()
	srvA, clientA := testServer(t, snapTestConfig(dir))
	srvB, clientB := testServer(t, snapTestConfig(dir))

	path := evictToDisk(t, srvA, clientA, dir, "shared")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	branches := workloadBranches(t, "nodeapp", 10_000)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, c := range []*Client{clientA, clientB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Predict(context.Background(), "shared", "tsl-8k", branches[600:1200])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d errored: %v (the loser must cold-start, not fail)", i, err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("quarantine files = %v, want exactly one", matches)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint still present: %v", err)
	}
	total := srvA.Stats().SnapshotQuarantined + srvB.Stats().SnapshotQuarantined
	if total != 1 {
		t.Fatalf("quarantined counter sum = %d, want exactly 1 (one winner)", total)
	}
}

// TestChooserEndpoint (satellite): a tournament session exposes its
// chooser table; non-tournament sessions are a 400, missing sessions a
// 404.
func TestChooserEndpoint(t *testing.T) {
	branches := workloadBranches(t, "nodeapp", 40_000)
	srv, client := testServer(t, Config{})
	sendInBatches(t, client, "tourney", "tournament", branches, 500)
	sendInBatches(t, client, "plain", "tsl-8k", branches[:1000], 500)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/tourney/chooser", nil))
	if rec.Code != 200 {
		t.Fatalf("chooser status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	for _, want := range []string{`"chooser_bits"`, `"members"`, `"mean_reliability"`, `"chosen"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("chooser body missing %s: %s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/plain/chooser", nil))
	if rec.Code != 400 {
		t.Fatalf("non-tournament chooser status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/ghost/chooser", nil))
	if rec.Code != 404 {
		t.Fatalf("missing-session chooser status = %d, want 404", rec.Code)
	}
}
