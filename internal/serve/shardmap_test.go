package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetOrCreateVsEvictRace hammers one session ID with concurrent
// get-or-create while the janitor path evicts it with a permissive cutoff.
// Under -race this is the regression test for the shard-map locking
// discipline: no lost sessions, no duplicate live sessions, no deadlock.
func TestGetOrCreateVsEvictRace(t *testing.T) {
	sm := newShardMap(4)
	const id = "contested"
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var created atomic.Uint64

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, was, err := sm.getOrCreate(id, func() (*Session, error) {
					return newTestSession(id, "tsl-8k")
				})
				if err != nil {
					t.Error(err)
					return
				}
				if s == nil || s.ID != id {
					t.Errorf("getOrCreate returned %+v", s)
					return
				}
				if was {
					created.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Future cutoff: everything idle, evict whatever isn't locked.
			sm.evictIdle(time.Now().Add(time.Hour).UnixNano())
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if created.Load() == 0 {
		t.Fatal("create path never ran")
	}
	if n := sm.len(); n > 1 {
		t.Fatalf("%d live sessions for one ID", n)
	}
}

// TestEvictSkipsBusySession: a session whose mutex is held (batch in
// flight) is never evicted, however stale its timestamp; it goes as soon
// as the lock is free.
func TestEvictSkipsBusySession(t *testing.T) {
	sm := newShardMap(2)
	s, _, err := sm.getOrCreate("busy", func() (*Session, error) {
		return newTestSession("busy", "tsl-8k")
	})
	if err != nil {
		t.Fatal(err)
	}
	s.lastUsed.Store(time.Now().Add(-time.Hour).UnixNano())

	s.mu.Lock()
	if ev := sm.evictIdle(time.Now().UnixNano()); len(ev) != 0 {
		t.Fatalf("evicted %d sessions while busy", len(ev))
	}
	if sm.get("busy") == nil {
		t.Fatal("busy session vanished")
	}
	s.mu.Unlock()

	ev := sm.evictIdle(time.Now().UnixNano())
	if len(ev) != 1 || ev[0] != s {
		t.Fatalf("idle eviction after unlock returned %v", ev)
	}
	if sm.get("busy") != nil {
		t.Fatal("session still reachable after eviction")
	}
}

// TestCountByPredictor counts live sessions per predictor name.
func TestCountByPredictor(t *testing.T) {
	sm := newShardMap(4)
	for _, spec := range []struct{ id, pred string }{
		{"a", "tsl-8k"}, {"b", "tsl-8k"}, {"c", "llbp-x"},
	} {
		if _, _, err := sm.getOrCreate(spec.id, func() (*Session, error) {
			return newTestSession(spec.id, spec.pred)
		}); err != nil {
			t.Fatal(err)
		}
	}
	byPred, total := sm.countByPredictor()
	if total != 3 || byPred["tsl-8k"] != 2 || byPred["llbp-x"] != 1 {
		t.Fatalf("countByPredictor = %v, %d", byPred, total)
	}
}
