package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"llbpx/internal/core"
)

// panicPredictor explodes on first use; registered once so the suite can
// exercise the handler's panic-to-envelope recovery path.
type panicPredictor struct{}

func (panicPredictor) Name() string                               { return "panic-test" }
func (panicPredictor) Predict(pc uint64) core.Prediction          { panic("deliberate test panic") }
func (panicPredictor) Update(b core.Branch, pred core.Prediction) {}
func (panicPredictor) TrackUnconditional(b core.Branch)           {}

func init() {
	if err := RegisterPredictor("panic-test", "test-only: panics on Predict",
		func() (core.Predictor, error) { return panicPredictor{}, nil }); err != nil {
		panic(err)
	}
}

// TestErrorEnvelopeRoundTrip drives every error code through a real HTTP
// round trip and checks three layers agree: the raw JSON envelope on the
// wire, the typed *APIError the client decodes, and the errors.Is-able
// sentinel for the code.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	srv, client := testServer(t, Config{MaxBatch: 4})
	ctx := context.Background()
	cond := []core.Branch{{PC: 1, Kind: core.CondDirect, Taken: true, InstrGap: 1}}

	// Seed a session so predictor_conflict can fire.
	if _, err := client.Predict(ctx, "env-1", "tsl-8k", cond); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		trigger  func() error
		code     string
		status   int
		sentinel error
	}{
		{"unknown_predictor",
			func() error { _, err := client.Predict(ctx, "env-2", "nope", cond); return err },
			CodeUnknownPredictor, 400, ErrUnknownPredictor},
		{"predictor_conflict",
			func() error { _, err := client.Predict(ctx, "env-1", "llbp-x", cond); return err },
			CodePredictorConflict, 409, ErrPredictorConflict},
		{"batch_too_large",
			func() error {
				big := make([]core.Branch, 5)
				for i := range big {
					big[i] = core.Branch{PC: uint64(i), Kind: core.CondDirect, InstrGap: 1}
				}
				_, err := client.Predict(ctx, "env-3", "", big)
				return err
			},
			CodeBatchTooLarge, 413, ErrBatchTooLarge},
		{"bad_request",
			func() error { _, err := client.Predict(ctx, "env-4", "", nil); return err },
			CodeBadRequest, 400, ErrBadRequest},
		{"session_not_found",
			func() error { _, err := client.SessionStats(ctx, "never-existed"); return err },
			CodeSessionNotFound, 404, ErrSessionNotFound},
		{"internal",
			func() error { _, err := client.Predict(ctx, "env-5", "panic-test", cond); return err },
			CodeInternal, 500, ErrInternal},
	}
	for _, c := range cases {
		err := c.trigger()
		if err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: %v does not unwrap to *APIError", c.name, err)
		}
		if apiErr.Code != c.code || apiErr.Status != c.status {
			t.Fatalf("%s: got code=%q status=%d, want %q/%d (%v)",
				c.name, apiErr.Code, apiErr.Status, c.code, c.status, err)
		}
		if !errors.Is(err, c.sentinel) {
			t.Fatalf("%s: %v is not errors.Is(%v)", c.name, err, c.sentinel)
		}
		if apiErr.Message == "" {
			t.Fatalf("%s: empty message", c.name)
		}
	}

	// Draining fires only once the server refuses work.
	srv.Drain()
	err := func() error { _, err := client.Predict(ctx, "env-6", "", cond); return err }()
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeDraining || apiErr.Status != 503 {
		t.Fatalf("draining: got %v", err)
	}
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: %v is not ErrDraining", err)
	}
}

// TestErrorEnvelopeWireShape pins the raw JSON: {"error":{"code","message"}}.
func TestErrorEnvelopeWireShape(t *testing.T) {
	srv, _ := testServer(t, Config{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/ghost", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var wire struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatalf("envelope does not parse: %v\n%s", err, rec.Body.String())
	}
	if wire.Error.Code != CodeSessionNotFound || !strings.Contains(wire.Error.Message, "ghost") {
		t.Fatalf("envelope = %+v", wire)
	}
}

// TestAPIErrorUnknownCode: codes this client build does not know still
// surface as *APIError (no sentinel match, but Code is preserved), so
// servers can add codes without breaking old clients.
func TestAPIErrorUnknownCode(t *testing.T) {
	e := &APIError{Code: "future_code", Message: "new failure mode", Status: 418}
	if errors.Unwrap(e) != nil {
		t.Fatal("unknown code must not unwrap to any sentinel")
	}
	if !strings.Contains(e.Error(), "future_code") || !strings.Contains(e.Error(), "418") {
		t.Fatalf("Error() = %q", e.Error())
	}
}
