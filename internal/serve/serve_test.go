package serve

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/sim"
	"llbpx/internal/workload"
)

// testServer starts a Server over real HTTP and tears it down with the
// test.
func testServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, NewClient(hs.URL, hs.Client())
}

// workloadBranches materializes the first instruction-budget worth of a
// preset workload's deterministic stream, mirroring sim.Run's stop rule.
func workloadBranches(t *testing.T, name string, instrBudget uint64) []core.Branch {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(prog)
	var out []core.Branch
	var instr uint64
	for instr < instrBudget {
		b, ok := gen.Next()
		if !ok {
			break
		}
		instr += b.Instructions()
		out = append(out, b)
	}
	return out
}

// sendInBatches streams branches to one session in fixed-size batches and
// returns the final session stats from the last response.
func sendInBatches(t *testing.T, c *Client, id, predictor string, branches []core.Branch, batchSize int) SessionStats {
	t.Helper()
	var last SessionStats
	for start := 0; start < len(branches); start += batchSize {
		end := min(start+batchSize, len(branches))
		resp, err := c.Predict(context.Background(), id, predictor, branches[start:end])
		if err != nil {
			t.Fatalf("batch at %d: %v", start, err)
		}
		last = resp.Stats
	}
	return last
}

// TestServerMatchesLocalSim is the core fidelity property: a session fed
// the exact branch stream of a local sim.Run must report identical
// statistics — the serving layer adds transport, not semantics.
func TestServerMatchesLocalSim(t *testing.T) {
	const instrBudget = 120_000
	branches := workloadBranches(t, "nodeapp", instrBudget)

	p, err := NewPredictor("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}

	_, client := testServer(t, Config{})
	got := sendInBatches(t, client, "fidelity", "tsl-8k", branches, 1024)

	want := local.Measured
	if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
		got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
		got.SecondLevelOK != want.SecondLevelOK {
		t.Fatalf("server stats diverge from local sim:\nserver %+v\nlocal  %+v", got, want)
	}
	if got.MPKI != local.MPKI() {
		t.Fatalf("server MPKI %v != local %v", got.MPKI, local.MPKI())
	}
}

func TestPredictionsAlignWithBatch(t *testing.T) {
	_, client := testServer(t, Config{})
	batch := []core.Branch{
		{PC: 0x100, Kind: core.CondDirect, Taken: true, InstrGap: 3},
		{PC: 0x108, Kind: core.Call, Target: 0x800, Taken: true, InstrGap: 2},
		{PC: 0x110, Kind: core.CondDirect, Taken: false, InstrGap: 4},
		{PC: 0x118, Kind: core.Return, Taken: true, InstrGap: 1},
	}
	resp, err := client.Predict(context.Background(), "align", "tsl-8k", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Predictor != "tsl-8k" {
		t.Fatalf("expected fresh tsl-8k session, got %+v", resp)
	}
	wantCond := []bool{true, false, true, false}
	for i, pr := range resp.Predictions {
		if pr.Cond != wantCond[i] {
			t.Fatalf("prediction %d: cond=%v, want %v", i, pr.Cond, wantCond[i])
		}
	}
	if resp.Stats.CondBranches != 2 || resp.Stats.UncondCount != 2 || resp.Stats.Instructions != 10 {
		t.Fatalf("bad accounting: %+v", resp.Stats)
	}
}

func TestSessionLifecycleAndErrors(t *testing.T) {
	srv, client := testServer(t, Config{MaxBatch: 8})
	ctx := context.Background()
	batch := []core.Branch{{PC: 1, Kind: core.CondDirect, Taken: true, InstrGap: 1}}

	// Unknown predictor never creates a session.
	if _, err := client.Predict(ctx, "bad", "nonesuch", batch); err == nil || !strings.Contains(err.Error(), "unknown predictor") {
		t.Fatalf("want unknown-predictor error, got %v", err)
	}
	if srv.Sessions() != 0 {
		t.Fatal("failed create must not leave a session behind")
	}

	// Create, then conflict on a different predictor name.
	if _, err := client.Predict(ctx, "s1", "tsl-8k", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Predict(ctx, "s1", "llbp-x", batch); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409 predictor conflict, got %v", err)
	}
	// Empty predictor joins the existing session regardless of default.
	if resp, err := client.Predict(ctx, "s1", "", batch); err != nil || resp.Predictor != "tsl-8k" {
		t.Fatalf("join existing session: resp=%+v err=%v", resp, err)
	}

	// Oversized batch.
	big := make([]core.Branch, 9)
	for i := range big {
		big[i] = core.Branch{PC: uint64(i), Kind: core.CondDirect, InstrGap: 1}
	}
	if _, err := client.Predict(ctx, "s1", "", big); err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("want 413, got %v", err)
	}

	// Invalid kind.
	if _, err := client.Predict(ctx, "s1", "", []core.Branch{{PC: 1, Kind: 99}}); err == nil || !strings.Contains(err.Error(), "invalid kind") {
		t.Fatalf("want invalid-kind error, got %v", err)
	}

	// Stats, delete, then 404.
	if st, err := client.SessionStats(ctx, "s1"); err != nil || st.Stats.CondBranches != 2 {
		t.Fatalf("session stats: %+v err=%v", st, err)
	}
	fin, err := client.CloseSession(ctx, "s1")
	if err != nil || fin.Stats.CondBranches != 2 {
		t.Fatalf("close: %+v err=%v", fin, err)
	}
	if _, err := client.CloseSession(ctx, "s1"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404 after delete, got %v", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions live = %d after delete", srv.Sessions())
	}
}

func TestMetricsMoveUnderTraffic(t *testing.T) {
	srv, client := testServer(t, Config{})
	branches := workloadBranches(t, "kafka", 20_000)
	sendInBatches(t, client, "m1", "tsl-8k", branches, 512)
	sendInBatches(t, client, "m2", "llbp-x", branches, 512)

	snap, err := client.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.SessionsLive != 2 || snap.SessionsCreated != 2 {
		t.Fatalf("sessions: %+v", snap)
	}
	if snap.Batches == 0 || snap.Branches != 2*uint64(len(branches)) {
		t.Fatalf("batches=%d branches=%d want branches=%d", snap.Batches, snap.Branches, 2*len(branches))
	}
	if snap.BranchesPerSec <= 0 || snap.LatencyP50Us <= 0 || snap.LatencyP99Us < snap.LatencyP50Us {
		t.Fatalf("rates/latency: %+v", snap)
	}
	for _, name := range []string{"tsl-8k", "llbp-x"} {
		ps, ok := snap.Predictors[name]
		if !ok || ps.MPKI <= 0 {
			t.Fatalf("per-predictor MPKI missing for %s: %+v", name, snap.Predictors)
		}
	}

	// Prometheus rendering carries the same counters.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"llbpd_sessions_live 2", "llbpd_branches_total", "llbpd_batch_latency_p99_us", `llbpd_predictor_mpki{predictor="llbp-x"}`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestPredictorRegistry(t *testing.T) {
	names := PredictorNames()
	// The twelve builtin configurations must always be present; extensions
	// registered by other tests or embedders may add more.
	builtins := []string{
		"tsl-8k", "tsl-16k", "tsl-32k", "tsl-64k", "tsl-128k", "tsl-512k",
		"tsl-inf", "llbp", "llbp-0lat", "llbp-x", "bullseye", "tournament",
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, b := range builtins {
		if !have[b] {
			t.Fatalf("builtin %q missing from registry: %v", b, names)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("PredictorNames not sorted: %v", names)
	}
	for _, name := range builtins {
		p, err := NewPredictor(name)
		if err != nil {
			t.Fatalf("NewPredictor(%s): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s built a nameless predictor", name)
		}
		info, ok := DescribePredictor(name)
		if !ok || info.Description == "" {
			t.Fatalf("DescribePredictor(%s) = %+v, %v", name, info, ok)
		}
		if info.Name != name {
			t.Fatalf("DescribePredictor(%s) canonical name = %q", name, info.Name)
		}
	}
	if _, err := NewPredictor("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}
