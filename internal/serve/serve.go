// Package serve exposes the repository's branch predictors as a network
// service: the core of cmd/llbpd. Each client session owns one live
// predictor instance (any registry configuration — TAGE-SC-L sizes, LLBP,
// LLBP-X) plus its running branch statistics; sessions live in an N-way
// sharded map so thousands of concurrent sessions don't serialize on one
// lock. Clients stream batches of branch records to
// POST /v1/sessions/{id}/predict and get back per-branch predictions and
// the session's updated MPKI — amortizing transport cost over the batch
// exactly like inference batching. Batch execution runs through a bounded
// worker pool, idle sessions are evicted after a configurable TTL, and
// Drain implements graceful shutdown: stop accepting, flush in-flight
// batches, emit final per-session stats. Observability lives at
// GET /metrics (Prometheus text) and GET /v1/stats (JSON).
//
// A session's batch loop replicates internal/sim's retire-order protocol
// bit for bit, so a session fed the branch stream of sim.Run reports the
// identical MPKI — the property cmd/llbpload checks end to end.
package serve

import (
	"context"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"llbpx/internal/faults"
	"llbpx/internal/patternpool"
	"llbpx/internal/replica"
)

// Config parameterizes a Server. The zero value is usable; every field
// has a sensible default applied by New.
type Config struct {
	// Shards is the session-map shard count (default 16).
	Shards int
	// Workers bounds concurrently executing batches (default GOMAXPROCS).
	Workers int
	// MaxBatch is the largest accepted batch, in branches (default 65536).
	MaxBatch int
	// SessionTTL evicts sessions idle longer than this (default 5m;
	// negative disables eviction).
	SessionTTL time.Duration
	// EvictEvery is the janitor scan interval (default SessionTTL/4).
	EvictEvery time.Duration
	// DefaultPredictor is used when a session's first batch names none
	// (default "llbp-x").
	DefaultPredictor string
	// SnapshotDir enables predictor-state checkpointing: the janitor
	// evicts idle sessions to disk instead of discarding them, the next
	// batch for the same session ID restores transparently, and Drain
	// checkpoints every remaining session so a restarted daemon boots
	// warm. Empty disables checkpointing (PR 1 behavior).
	SnapshotDir string
	// EnablePprof mounts net/http/pprof's profiling endpoints under
	// /debug/pprof/ (llbpd's -pprof flag). Off by default: the endpoints
	// expose internals and cost nothing only when unused.
	EnablePprof bool
	// AdmitTimeout bounds how long an accepted batch may wait for a
	// worker-pool slot. A batch that cannot acquire one in time is shed
	// with HTTP 429 + Retry-After and the "overloaded" error code —
	// before any predictor state is touched, so shedding is always safe
	// to retry. Default 2s; negative restores the PR-1 behavior of
	// waiting indefinitely.
	AdmitTimeout time.Duration
	// SnapshotRetries is how many extra immediate attempts a failed
	// checkpoint write gets before the session's state is dropped
	// (transient I/O errors should not cost a warm predictor). Default 2;
	// negative disables retries.
	SnapshotRetries int
	// StoreBudget caps the shared pattern pool's total resident bytes
	// (live second-level pattern storage plus frozen blobs plus the slab
	// recycling arena) across every session. When a batch pushes the pool
	// over budget, the server spills least-recently-used idle sessions:
	// checkpoint to disk, freeze into the pool, release their storage.
	// Zero or negative disables the budget (sessions are only bounded by
	// the TTL janitor).
	StoreBudget int64
	// StoreShare opts evicted sessions into frozen-state sharing: spilled
	// predictor blobs are deduplicated between sessions that declared the
	// same workload fingerprint, and the next batch thaws from the pool
	// (memory) before falling back to the disk checkpoint. Live sessions
	// never share state regardless of this setting — sharing is dedup of
	// immutable frozen bytes, restored copy-out, so per-session streams
	// stay bit-exact.
	StoreShare bool
	// Faults optionally injects deterministic faults (internal/faults) at
	// the serving stack's named sites — see the Fault* constants. Nil
	// disables injection entirely; the sites then cost one nil check.
	Faults *faults.Injector
	// ReplicaEvery ships a session's checkpoint to its standby after this
	// many applied batches (default 16). Only sessions the gateway gave a
	// replication target via SetReplicaTarget ship anything.
	ReplicaEvery int
	// ReplicaInterval is the replication anti-entropy period: lagging or
	// never-shipped standbys are repaired each tick (default 2s).
	ReplicaInterval time.Duration
}

// Fault-injection site names the serving stack fires (internal/faults).
const (
	// FaultPredict fires at the top of the predict handler, before any
	// state is touched; an injected error returns 503 so clients may
	// safely retry.
	FaultPredict = "serve.http.predict"
	// FaultBatchExec injects latency (only) around batch execution, while
	// the worker slot is held — the "slow batch" chaos case.
	FaultBatchExec = "serve.batch.exec"
	// FaultSnapshotSave fires before a session checkpoint write; errors
	// count as snapshot_save_errors_total and are retried.
	FaultSnapshotSave = "serve.snapshot.save"
	// FaultSnapshotRestore fires before a checkpoint read; an injected
	// error cold-starts the session without quarantining the file
	// (transient read failure, not corruption).
	FaultSnapshotRestore = "serve.snapshot.restore"
	// FaultSnapshotWrite wraps the checkpoint byte stream (partial-write
	// rules), simulating torn writes that land a corrupt file on disk.
	FaultSnapshotWrite = "serve.snapshot.write"
)

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 65536
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.EvictEvery <= 0 {
		c.EvictEvery = c.SessionTTL / 4
		if c.EvictEvery <= 0 {
			c.EvictEvery = time.Minute
		}
	}
	if c.DefaultPredictor == "" {
		c.DefaultPredictor = "llbp-x"
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = 2 * time.Second
	}
	if c.SnapshotRetries == 0 {
		c.SnapshotRetries = 2
	} else if c.SnapshotRetries < 0 {
		c.SnapshotRetries = 0
	}
	return c
}

// Server is the branch-prediction service. Create with New; it implements
// http.Handler. Call Drain for graceful shutdown.
type Server struct {
	cfg      Config
	sessions *shardMap
	metrics  *metrics
	pool     chan struct{} // worker-pool slots; len bounds executing batches
	store    *patternpool.Pool
	// reclaiming collapses concurrent over-budget reclaim attempts into
	// one spiller (the others return; the batch that won does the work).
	reclaiming atomic.Bool

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup // accepted batches not yet responded to

	janitorStop chan struct{}
	janitorDone chan struct{}
	stopOnce    sync.Once

	// Replication state (see replica.go): the primary-side shipper plus
	// this server's standby table and per-session fence epochs.
	shipper  *replica.Shipper
	replMu   sync.Mutex
	standbys map[string]*standbyEntry
	epochs   map[string]uint64

	mux *http.ServeMux
}

// New builds a Server and starts its eviction janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.SnapshotDir != "" {
		// Failed writes surface as snapshot_save_errors_total, not here.
		_ = os.MkdirAll(cfg.SnapshotDir, 0o755)
	}
	s := &Server{
		cfg:         cfg,
		sessions:    newShardMap(cfg.Shards),
		pool:        make(chan struct{}, cfg.Workers),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.store = patternpool.New(patternpool.Config{
		Budget:  cfg.StoreBudget,
		Sharing: cfg.StoreShare,
		Shards:  cfg.Shards,
	})
	s.metrics = newMetrics(cfg.Shards, s.sessions.countByPredictor, s.store)
	s.metrics.standbyCount = s.StandbySessions
	s.startReplication()
	s.mux = s.buildMux()
	go s.janitor()
	return s
}

// Config returns the server's resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Store exposes the shared pattern pool (diagnostics and tests).
func (s *Server) Store() *patternpool.Pool { return s.store }

// Stats returns the current server-wide statistics snapshot.
func (s *Server) Stats() StatsSnapshot {
	byPred, live := s.sessions.countByPredictor()
	return s.metrics.snapshot(live, byPred)
}

// Sessions returns the number of live sessions.
func (s *Server) Sessions() int { return s.sessions.len() }

// beginBatch registers an accepted batch with the drain barrier, or
// reports false when the server is draining.
func (s *Server) beginBatch() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) endBatch() { s.inflight.Done() }

// acquireSlot takes a worker-pool slot, giving up after AdmitTimeout
// (ErrOverloaded — the caller sheds the batch) or when the client goes
// away (ctx.Err()). The fast path is a non-blocking send, so an idle
// server admits without touching a timer.
func (s *Server) acquireSlot(ctx context.Context) error {
	select {
	case s.pool <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.AdmitTimeout < 0 {
		select {
		case s.pool <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	t := time.NewTimer(s.cfg.AdmitTimeout)
	defer t.Stop()
	select {
	case s.pool <- struct{}{}:
		return nil
	case <-t.C:
		return ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseSlot() { <-s.pool }
