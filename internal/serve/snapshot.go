package serve

import (
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"llbpx/internal/snapshot"
	"llbpx/internal/stats"
)

// sessionState adapts a Session to snapshot.State. The payload is the
// session's identity and accumulated statistics followed by the
// predictor's complete learned state, so a restored session resumes its
// stream as if it never left memory.
type sessionState struct{ sess *Session }

func (ss sessionState) SaveState(w *snapshot.Writer) {
	s := ss.sess
	w.Marker("serve.session")
	w.String(s.ID)
	st := &s.stats
	w.U64(st.Instructions)
	w.U64(st.CondBranches)
	w.U64(st.Mispredicts)
	w.U64(st.UncondCount)
	w.U64(st.SecondLevelOK)
	w.U64(st.Overrides)
	w.U64(s.batches)
	w.U64(s.wireSeq)
	w.String(s.Fingerprint)
	s.pred.(snapshot.State).SaveState(w)
}

func (ss sessionState) LoadState(r *snapshot.Reader) {
	s := ss.sess
	r.Marker("serve.session")
	id := r.String(4096)
	if r.Err() != nil {
		return
	}
	if id != s.ID {
		r.Fail("snapshot belongs to session %q, not %q", id, s.ID)
		return
	}
	s.stats = stats.BranchStats{
		Instructions:  r.U64(),
		CondBranches:  r.U64(),
		Mispredicts:   r.U64(),
		UncondCount:   r.U64(),
		SecondLevelOK: r.U64(),
		Overrides:     r.U64(),
	}
	s.batches = r.U64()
	s.wireSeq = r.U64()
	s.Fingerprint = r.String(4096)
	if s.ns != nil {
		s.ns.SetFingerprint(s.Fingerprint)
	}
	s.pred.(snapshot.State).LoadState(r)
}

// snapPath is the checkpoint file for a session ID (path-escaped so
// arbitrary client IDs stay inside the snapshot directory).
func (s *Server) snapPath(id string) string {
	return filepath.Join(s.cfg.SnapshotDir, url.PathEscape(id)+".snap")
}

// saveSession checkpoints one session to the snapshot directory. The
// session lock is held across the write so the state is a consistent
// between-batches cut. Callers must only pass sessions no longer
// reachable from the shard map, or quiesced ones (drain).
func (s *Server) saveSession(sess *Session) error {
	if _, ok := sess.pred.(snapshot.State); !ok {
		return fmt.Errorf("serve: predictor %q does not support snapshots", sess.PredictorName)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := s.cfg.Faults.Fire(FaultSnapshotSave); err != nil {
		return err
	}
	start := time.Now()
	var wrap func(io.Writer) io.Writer
	if s.cfg.Faults != nil {
		wrap = func(w io.Writer) io.Writer { return s.cfg.Faults.WrapWriter(FaultSnapshotWrite, w) }
	}
	err := snapshot.WriteFileWrapped(s.snapPath(sess.ID), sess.PredictorName, sessionState{sess}, wrap)
	if err == nil {
		s.metrics.snapSaveDur.ObserveDuration(time.Since(start))
	}
	return err
}

// checkpointSessions saves each session, counting successes and failures;
// it is a no-op without a snapshot directory. A failed write is retried
// up to SnapshotRetries extra times immediately — losing a warm predictor
// to one transient I/O error is the costliest failure the serving layer
// has, so the write gets more than one chance. Every failed attempt
// counts in snapshot_save_errors_total; a session whose attempts are
// exhausted is dropped cold (the next batch for its ID starts fresh).
func (s *Server) checkpointSessions(sessions []*Session) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	for _, sess := range sessions {
		var err error
		for attempt := 0; attempt <= s.cfg.SnapshotRetries; attempt++ {
			if err = s.saveSession(sess); err == nil {
				break
			}
			s.metrics.snapshotSaveErrors.Inc()
		}
		if err == nil {
			s.metrics.snapshotSaves.Inc()
		}
	}
}

// restoreSession rebuilds a session from its on-disk checkpoint. want is
// the client's explicitly requested predictor name ("" accepts whatever
// the snapshot holds). Any failure — no file, corrupt bytes, version or
// predictor mismatch — returns ok=false and the caller cold-starts: a
// snapshot is a cache, never authoritative, so there is no error path
// back to the client. A consumed snapshot file is deleted (the live
// session supersedes it).
//
// Corrupt checkpoints are quarantined, not retried: a file whose decode
// wraps snapshot.ErrCorrupt (bad magic, truncation, framing or checksum
// mismatch, version skew) would fail identically on every future restore
// attempt, so it is renamed to <path>.corrupt — preserved for post-mortem,
// out of the restore path — and counted in snapshot_quarantined_total.
// Declined restores (predictor mismatch, unsupported predictor) leave the
// file alone: the bytes are fine, the request just wants something else.
func (s *Server) restoreSession(id, want string) (*Session, bool) {
	if s.cfg.SnapshotDir == "" {
		return nil, false
	}
	path := s.snapPath(id)
	// Injected transient read failure: cold-start without quarantining —
	// the file on disk is presumed good.
	if s.cfg.Faults.Fire(FaultSnapshotRestore) != nil {
		return nil, false
	}
	var sess *Session
	start := time.Now()
	_, _, err := snapshot.ReadFile(path, func(name string) (snapshot.State, error) {
		if want != "" && name != want {
			return nil, fmt.Errorf("snapshot holds predictor %q, client wants %q", name, want)
		}
		ns, nerr := s.newSession(id, name, "", false)
		if nerr != nil {
			return nil, nerr
		}
		if _, ok := ns.pred.(snapshot.State); !ok {
			s.releaseSessionStore(ns)
			return nil, fmt.Errorf("predictor %q does not support snapshots", name)
		}
		sess = ns
		return sessionState{ns}, nil
	})
	if err != nil {
		if sess != nil {
			s.releaseSessionStore(sess)
		}
		if errors.Is(err, snapshot.ErrCorrupt) {
			s.quarantineSnapshot(path)
		}
		return nil, false
	}
	s.metrics.snapRestoreDur.ObserveDuration(time.Since(start))
	os.Remove(path)
	sess.restored = true
	sess.touch()
	return sess, true
}

// removeSnapshot deletes a session's checkpoint file, if any.
func (s *Server) removeSnapshot(id string) {
	if s.cfg.SnapshotDir != "" {
		os.Remove(s.snapPath(id))
	}
}

// quarantineSnapshot moves a checkpoint that failed to decode out of the
// restore path by renaming it to <path>.corrupt (overwriting an earlier
// quarantined generation of the same ID — the newest corpse is the
// interesting one). The session restarts cold; the bytes survive for
// debugging.
func (s *Server) quarantineSnapshot(path string) {
	if os.Rename(path, path+".corrupt") == nil {
		s.metrics.snapshotQuarantined.Inc()
	}
}
