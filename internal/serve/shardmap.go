package serve

import (
	"sort"
	"sync"

	"llbpx/internal/hashutil"
)

// shardMap is an N-way sharded session map. Each shard has its own mutex
// so thousands of concurrent sessions touching different shards never
// serialize on one lock; the shard is picked by FNV-1a of the session ID.
type shardMap struct {
	shards []mapShard
}

type mapShard struct {
	mu sync.RWMutex
	m  map[string]*Session
}

func newShardMap(n int) *shardMap {
	if n < 1 {
		n = 1
	}
	sm := &shardMap{shards: make([]mapShard, n)}
	for i := range sm.shards {
		sm.shards[i].m = make(map[string]*Session)
	}
	return sm
}

func (sm *shardMap) shard(id string) *mapShard {
	return &sm.shards[sm.index(id)]
}

// index returns the shard number a session ID maps to (stable for the
// map's lifetime; used to label per-shard metrics).
func (sm *shardMap) index(id string) int {
	return int(hashutil.FNV1a(id) % uint64(len(sm.shards)))
}

// get returns the session for id, or nil.
func (sm *shardMap) get(id string) *Session {
	sh := sm.shard(id)
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	return s
}

// getOrCreate returns the existing session for id or inserts the one
// built by create. created reports whether create ran; a create error
// inserts nothing. The session's lastUsed is refreshed under the shard
// lock so the janitor cannot see a just-fetched session as idle, and a
// pin is taken under the same lock so the budget spiller (pickLRU /
// removeIfQuiet) cannot retire the session before its batch runs — the caller must
// release the pin when the batch completes (Server.ReleaseSessionRef).
func (sm *shardMap) getOrCreate(id string, create func() (*Session, error)) (s *Session, created bool, err error) {
	sh := sm.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s = sh.m[id]; s != nil {
		s.touch()
		s.pins.Add(1)
		return s, false, nil
	}
	s, err = create()
	if err != nil {
		return nil, false, err
	}
	s.pins.Add(1)
	sh.m[id] = s
	return s, true, nil
}

// put installs s as the session for id, replacing and returning any
// existing one (the admin import path's overwrite semantics).
func (sm *shardMap) put(id string, s *Session) *Session {
	sh := sm.shard(id)
	sh.mu.Lock()
	old := sh.m[id]
	sh.m[id] = s
	sh.mu.Unlock()
	return old
}

// remove deletes and returns the session for id, or nil.
func (sm *shardMap) remove(id string) *Session {
	sh := sm.shard(id)
	sh.mu.Lock()
	s := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	return s
}

// len returns the total number of live sessions.
func (sm *shardMap) len() int {
	n := 0
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// countByPredictor returns live-session counts keyed by predictor name,
// plus the total (one pass, so the two are a consistent cut per shard).
func (sm *shardMap) countByPredictor() (map[string]int, int) {
	byPred := make(map[string]int)
	total := 0
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			byPred[s.PredictorName]++
			total++
		}
		sh.mu.RUnlock()
	}
	return byPred, total
}

// all returns every live session, sorted by ID for stable output.
func (sm *shardMap) all() []*Session {
	var out []*Session
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pickLRU returns (without removing) the least-recently-used session
// that is not skip and not pinned, plus the lastUsed value it was picked
// at. The caller spills its state while the session is still reachable,
// then commits the removal with removeIfQuiet — passing the same asOf so
// any batch that slipped in between (and made the spilled state stale)
// aborts the removal.
func (sm *shardMap) pickLRU(skip *Session) (victim *Session, asOf int64, ok bool) {
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			if s == skip || s.pins.Load() != 0 {
				continue
			}
			if t := s.lastUsed.Load(); victim == nil || t < asOf {
				victim, asOf = s, t
			}
		}
		sh.mu.RUnlock()
	}
	return victim, asOf, victim != nil
}

// removeIfQuiet deletes s from the map only if it is still the mapped
// session for its ID, unpinned, not mid-batch (TryLock), and untouched
// since asOf. Pins and touches both happen under the shard lock
// (getOrCreate), so a session acquired for a batch — even one that ran
// to completion since the pick — can never be removed here: its acquire
// advanced lastUsed past asOf. Reports whether the removal committed.
func (sm *shardMap) removeIfQuiet(s *Session, asOf int64) bool {
	sh := sm.shard(s.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m[s.ID] != s || s.pins.Load() != 0 || s.lastUsed.Load() != asOf || !s.mu.TryLock() {
		return false
	}
	s.mu.Unlock()
	delete(sh.m, s.ID)
	return true
}

// evictIdle removes every session idle since cutoff (unix nanos) and
// returns the evicted sessions. A session whose mutex is held (a batch is
// executing) is skipped: TryLock both avoids blocking the shard and
// guarantees we never evict mid-batch.
func (sm *shardMap) evictIdle(cutoff int64) []*Session {
	var evicted []*Session
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if !s.idleSince(cutoff) || !s.mu.TryLock() {
				continue
			}
			// Re-check under the session lock: a batch may have finished
			// (and touched the session) between the check and the lock.
			if s.idleSince(cutoff) {
				delete(sh.m, id)
				evicted = append(evicted, s)
			}
			s.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return evicted
}
