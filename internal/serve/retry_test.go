package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
)

// occupyWorker parks the server's single worker slot by streaming one
// batch whose execution carries injected latency, and returns once the
// slot is actually taken. Caller must wg.Wait().
func occupyWorker(t *testing.T, srv *Server, client *Client, wg *sync.WaitGroup) {
	t.Helper()
	branches := workloadBranches(t, "kafka", 4_000)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := client.Predict(context.Background(), "holder", "tsl-8k", branches[:64]); err != nil {
			t.Errorf("holder session: %v", err)
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.pool) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker slot never became busy")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShed429 drives the bounded-admission path end to end: with
// one worker pinned by injected execution latency, a second batch that
// cannot get the slot within AdmitTimeout is shed whole — 429, the
// "overloaded" code (errors.Is ErrOverloaded), a Retry-After hint, the
// shed counter — and a retry-armed client then lands the same batch once
// the worker frees up.
func TestAdmissionShed429(t *testing.T) {
	inj := faults.New(7)
	inj.Set(FaultBatchExec, faults.Rule{Latency: 500 * time.Millisecond})
	srv := New(Config{Workers: 1, AdmitTimeout: 20 * time.Millisecond, SessionTTL: -1, Faults: inj})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	var wg sync.WaitGroup
	occupyWorker(t, srv, NewClient(hs.URL, hs.Client()), &wg)

	// Typed client, no retry: the shed surfaces as ErrOverloaded.
	plain := NewClient(hs.URL, hs.Client())
	branches := workloadBranches(t, "kafka", 4_000)
	_, err := plain.Predict(context.Background(), "shed-me", "tsl-8k", branches[:64])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeOverloaded {
		t.Fatalf("envelope = %+v, want status 429 code %q", apiErr, CodeOverloaded)
	}
	if plain.ShedSeen() != 1 {
		t.Fatalf("ShedSeen = %d, want 1", plain.ShedSeen())
	}

	// Raw request: the Retry-After header is on the wire (AdmitTimeout
	// rounds up to 1s).
	body, _ := json.Marshal(PredictRequest{Predictor: "tsl-8k", Branches: []BranchRecord{RecordFromBranch(branches[0])}})
	resp, err := hs.Client().Post(hs.URL+"/v1/sessions/raw/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("status=%d Retry-After=%q, want 429 with Retry-After 1", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	if snap := srv.Stats(); snap.Shed < 2 {
		t.Fatalf("shed = %d, want >= 2", snap.Shed)
	}

	// Retry-armed client: backoff (floored at the 1s Retry-After) outlasts
	// the injected latency, so the same batch eventually lands.
	retrying := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond})
	inj.Clear(FaultBatchExec) // the landed batch itself need not be slow
	got, err := retrying.Predict(context.Background(), "shed-me", "tsl-8k", branches[:64])
	if err != nil {
		t.Fatalf("retrying predict: %v", err)
	}
	if got.Stats.Batches != 1 {
		t.Fatalf("batches = %d after shed+retry, want exactly 1 (no double-apply)", got.Stats.Batches)
	}
	if retrying.Retries() < 1 || retrying.ShedSeen() < 1 {
		t.Fatalf("retries=%d shed=%d, want >= 1 each", retrying.Retries(), retrying.ShedSeen())
	}
	wg.Wait()
}

// TestInjectedPredictFaultIsRetryable: the pre-execution fault site
// reports 503, which the client treats as "not applied" and resends.
func TestInjectedPredictFaultIsRetryable(t *testing.T) {
	inj := faults.New(7)
	inj.Set(FaultPredict, faults.Rule{ErrRate: 1, MaxErrors: 2})
	_, client := testServer(t, Config{Faults: inj})
	client.WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	branches := workloadBranches(t, "kafka", 4_000)
	resp, err := client.Predict(context.Background(), "flaky", "tsl-8k", branches[:64])
	if err != nil {
		t.Fatalf("predict through 2 injected faults: %v", err)
	}
	if resp.Stats.Batches != 1 || client.Retries() != 2 {
		t.Fatalf("batches=%d retries=%d, want 1 batch after exactly 2 retries", resp.Stats.Batches, client.Retries())
	}
	if fs := inj.Stats(FaultPredict); fs.Errors != 2 {
		t.Fatalf("injector fired %d errors, want 2", fs.Errors)
	}
}

// TestHealthEndpoints: /healthz stays 200 across a drain (liveness — a
// draining daemon is alive and flushing), while /readyz flips to 503 the
// moment the drain barrier drops.
func TestHealthEndpoints(t *testing.T) {
	srv, client := testServer(t, Config{Workers: 2})
	branches := workloadBranches(t, "kafka", 4_000)
	if _, err := client.Predict(context.Background(), "h", "tsl-8k", branches[:64]); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, HealthReply) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		var rep HealthReply
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("%s: bad body %q: %v", path, rec.Body.String(), err)
		}
		return rec.Code, rep
	}

	if code, rep := get("/healthz"); code != 200 || rep.Status != "ok" || rep.Draining || rep.Workers != 2 || rep.Sessions != 1 {
		t.Fatalf("healthz before drain: code=%d rep=%+v", code, rep)
	}
	if code, rep := get("/readyz"); code != 200 || rep.Draining {
		t.Fatalf("readyz before drain: code=%d rep=%+v", code, rep)
	}

	srv.Drain()
	if code, rep := get("/healthz"); code != 200 || rep.Status != "draining" || !rep.Draining {
		t.Fatalf("healthz during drain: code=%d rep=%+v (liveness must hold)", code, rep)
	}
	if code, rep := get("/readyz"); code != http.StatusServiceUnavailable || !rep.Draining {
		t.Fatalf("readyz during drain: code=%d rep=%+v, want 503", code, rep)
	}
}

// Client-side retry mechanics against stub servers ---------------------------

// TestClientRetriesTransportError: a connection killed before any
// response byte means the request cannot have been applied, so the client
// resends — and the second attempt succeeds.
func TestClientRetriesTransportError(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // die before a single response byte
			return
		}
		writeJSON(w, http.StatusOK, SessionFinal{ID: "x", Predictor: "tsl-8k"})
	}))
	t.Cleanup(hs.Close)

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	fin, err := c.SessionStats(context.Background(), "x")
	if err != nil {
		t.Fatalf("stats after transport error: %v", err)
	}
	if fin.ID != "x" || calls.Load() != 2 || c.Retries() != 1 {
		t.Fatalf("id=%q calls=%d retries=%d, want x/2/1", fin.ID, calls.Load(), c.Retries())
	}
}

// TestClientNeverRetriesConsumedPredict: once a 2xx body has started
// decoding the server has executed the batch — a decode failure must
// surface, not resend (replaying would double-apply learned state).
func TestClientNeverRetriesConsumedPredict(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"session": "x", "predictions": [`)) // truncated mid-body
	}))
	t.Cleanup(hs.Close)

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	batch := []core.Branch{{PC: 0x100, Kind: core.CondDirect, Taken: true, InstrGap: 1}}
	if _, err := c.Predict(context.Background(), "x", "tsl-8k", batch); err == nil {
		t.Fatal("truncated 2xx body must error")
	}
	if calls.Load() != 1 || c.Retries() != 0 {
		t.Fatalf("calls=%d retries=%d, want exactly 1 request and 0 retries", calls.Load(), c.Retries())
	}
}

// TestClientHonorsRetryAfter: the server's Retry-After floors the backoff
// even when the policy's own delays are near-zero.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, "busy")
			return
		}
		writeJSON(w, http.StatusOK, SessionFinal{ID: "x"})
	}))
	t.Cleanup(hs.Close)

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	start := time.Now()
	if _, err := c.SessionStats(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v, want >= ~1s (Retry-After ignored)", elapsed)
	}
	if c.ShedSeen() != 1 || c.Retries() != 1 {
		t.Fatalf("shed=%d retries=%d, want 1/1", c.ShedSeen(), c.Retries())
	}
}

// TestClientDrainsBodyForConnReuse: every attempt's response body is
// drained and closed even on error paths, so all retries ride one
// keep-alive connection instead of leaking a conn per failure.
func TestClientDrainsBodyForConnReuse(t *testing.T) {
	pad := strings.Repeat(" ", 16<<10) // trailing bytes the decoder won't read
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(errorReply{Error: errorBody{Code: CodeOverloaded, Message: "always busy"}})
		w.Write([]byte(pad))
	}))
	var newConns atomic.Int64
	hs.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	hs.Start()
	t.Cleanup(hs.Close)

	c := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	_, err := c.SessionStats(context.Background(), "x")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded after exhausting retries", err)
	}
	if c.Retries() != 3 || c.ShedSeen() != 4 {
		t.Fatalf("retries=%d shed=%d, want 3/4", c.Retries(), c.ShedSeen())
	}
	if n := newConns.Load(); n != 1 {
		t.Fatalf("%d TCP connections for 4 attempts, want 1 (bodies not drained?)", n)
	}
}
