package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"llbpx/internal/core"
)

// syntheticBatch builds a small deterministic batch whose branches vary
// with the seed, cheap enough to hammer the server with.
func syntheticBatch(seed uint64, n int) []core.Branch {
	out := make([]core.Branch, n)
	for i := range out {
		pc := 0x1000 + (seed*uint64(n)+uint64(i))*8
		if i%5 == 4 {
			out[i] = core.Branch{PC: pc, Target: pc + 0x100, Kind: core.Call, Taken: true, InstrGap: 3}
		} else {
			out[i] = core.Branch{PC: pc, Kind: core.CondDirect, Taken: (seed+uint64(i))%3 == 0, InstrGap: 2}
		}
	}
	return out
}

// TestConcurrentSessionsStress hammers the server from many goroutines:
// each owns a private session and all of them also share a handful of
// contended sessions. Run under -race this exercises the shard map, the
// worker pool, the metrics atomics, and the per-session serialization;
// the assertions check that no branch is lost or double-counted anywhere.
func TestConcurrentSessionsStress(t *testing.T) {
	const (
		goroutines  = 16
		batches     = 25
		batchSize   = 40
		sharedCount = 3
	)
	srv, client := testServer(t, Config{Shards: 8, Workers: 4, SessionTTL: -1})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", g)
			shared := fmt.Sprintf("shared-%d", g%sharedCount)
			for i := 0; i < batches; i++ {
				batch := syntheticBatch(uint64(g*batches+i), batchSize)
				if _, err := client.Predict(ctx, own, "tsl-8k", batch); err != nil {
					errs[g] = err
					return
				}
				if _, err := client.Predict(ctx, shared, "tsl-8k", batch); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	if live := srv.Sessions(); live != goroutines+sharedCount {
		t.Fatalf("sessions live = %d, want %d", live, goroutines+sharedCount)
	}
	// Conservation: every branch sent must be counted exactly once.
	const perBatch = batchSize
	wantTotal := uint64(goroutines * batches * 2 * perBatch)
	snap := srv.Stats()
	if snap.Branches != wantTotal {
		t.Fatalf("server counted %d branches, clients sent %d", snap.Branches, wantTotal)
	}
	// Private sessions saw exactly their own traffic...
	for g := 0; g < goroutines; g++ {
		fin, err := client.SessionStats(ctx, fmt.Sprintf("own-%d", g))
		if err != nil {
			t.Fatal(err)
		}
		if got := fin.Stats.CondBranches + fin.Stats.UncondCount; got != batches*perBatch {
			t.Fatalf("own-%d holds %d branches, want %d", g, got, batches*perBatch)
		}
	}
	// ...and the contended sessions saw every batch aimed at them.
	var sharedTotal uint64
	for s := 0; s < sharedCount; s++ {
		fin, err := client.SessionStats(ctx, fmt.Sprintf("shared-%d", s))
		if err != nil {
			t.Fatal(err)
		}
		if fin.Stats.Batches == 0 {
			t.Fatalf("shared-%d served no batches", s)
		}
		sharedTotal += fin.Stats.CondBranches + fin.Stats.UncondCount
	}
	if sharedTotal != uint64(goroutines*batches*perBatch) {
		t.Fatalf("shared sessions hold %d branches, want %d", sharedTotal, goroutines*batches*perBatch)
	}
}

// TestShardMapConcurrency drives the shard map directly (no HTTP) with
// concurrent getOrCreate/remove/evict traffic; -race is the assertion.
func TestShardMapConcurrency(t *testing.T) {
	sm := newShardMap(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("s-%d", i%17)
				s, _, err := sm.getOrCreate(id, func() (*Session, error) { return newTestSession(id, "tsl-8k") })
				if err != nil {
					t.Error(err)
					return
				}
				if s.ID != id {
					t.Errorf("got session %q for id %q", s.ID, id)
					return
				}
				if i%31 == g {
					sm.remove(id)
				}
				if i%53 == 0 {
					sm.evictIdle(0) // cutoff 0: nothing is ever idle; must still be safe
				}
			}
		}(g)
	}
	wg.Wait()
	if sm.len() > 17 {
		t.Fatalf("map holds %d sessions, at most 17 ids were used", sm.len())
	}
}
