package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"llbpx/internal/replica"
)

// Hot-standby replication -----------------------------------------------
//
// Both halves of the replication protocol live here. As a primary, the
// server runs a replica.Shipper: the gateway names each session's
// standby via SetReplicaTarget, every applied batch is accounted by
// noteReplicaBatch, and the shipper asynchronously POSTs framed
// checkpoint blobs to the standby's install endpoint after every N
// batches or on the anti-entropy tick. As a standby, the server keeps
// fully-materialized warm sessions in a side table — deliberately NOT
// in the shard map, so a standby never serves batches, never collides
// with a live session, and promotion is just moving the object across.
//
// Epoch fencing: epochs[id] is the highest fence epoch this server has
// seen for a session, raised by every target assignment, install,
// promotion, and epoch-stamped admin import. Any ship or import below
// the fence is rejected with ErrStaleEpoch before its payload is
// decoded — a falsely-declared-dead primary that comes back keeps
// shipping its pre-failover history and every blob bounces, so the
// promoted line of history cannot be forked or resurrected over.

// FaultReplicate fires before every checkpoint ship (error rules) and
// wraps the shipped bytes (partial-write rules). Shared spelling with
// the cluster tier via internal/replica.
const FaultReplicate = replica.SiteReplicate

// standbyEntry is one warm standby session plus the epoch of the ship
// that installed it.
type standbyEntry struct {
	sess  *Session
	epoch uint64
}

// startReplication builds the replication state and the shipper; called
// from New. The shipper always exists (sessions without targets cost one
// map lookup per batch); stopReplication tears it down in Drain.
func (s *Server) startReplication() {
	s.standbys = make(map[string]*standbyEntry)
	s.epochs = make(map[string]uint64)
	s.shipper = replica.NewShipper(replica.ShipperConfig{
		Every:    s.cfg.ReplicaEvery,
		Interval: s.cfg.ReplicaInterval,
		Faults:   s.cfg.Faults,
		Export:   s.ExportSession,
		OnShip: func(id string, n int) {
			s.metrics.replicaShips.Inc()
			s.metrics.replicaShipBytes.Add(uint64(n))
		},
		OnShipError: func(id string, err error) { s.metrics.replicaShipErrors.Inc() },
	})
}

// stopReplication stops the shipper and releases every standby's
// pattern storage; called from Drain (idempotent).
func (s *Server) stopReplication() {
	s.shipper.Close()
	s.replMu.Lock()
	standbys := s.standbys
	s.standbys = make(map[string]*standbyEntry)
	s.replMu.Unlock()
	for _, ent := range standbys {
		s.releaseSessionStore(ent.sess)
	}
}

// noteReplicaBatch accounts one applied batch with the shipper (both
// transports call it after observeBatch).
func (s *Server) noteReplicaBatch(id string) { s.shipper.NoteBatch(id) }

// StandbySessions reports how many warm standby sessions this server
// holds.
func (s *Server) StandbySessions() int {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return len(s.standbys)
}

// ReplicaLag reports a session's unshipped batch count on the primary
// (false when the session has no replication target). Test surface.
func (s *Server) ReplicaLag(id string) (int, bool) { return s.shipper.Lag(id) }

// SetReplicaTarget points a session's replication at a standby base URL
// under the given fence epoch ("" clears the target). The fence only
// ever rises.
func (s *Server) SetReplicaTarget(id, target string, epoch uint64) {
	s.replMu.Lock()
	if epoch > s.epochs[id] {
		s.epochs[id] = epoch
	}
	s.replMu.Unlock()
	if target == "" {
		s.shipper.Drop(id)
		return
	}
	s.shipper.SetTarget(id, target, epoch)
}

// InstallStandby decodes a shipped replica blob and installs it as the
// session's warm standby. The fence is checked against the blob's epoch
// header before the snapshot payload is decoded (cheap rejection of a
// stale primary's late ship) and re-checked under the lock afterwards
// (a promotion may have raced the decode). A framing- or
// integrity-damaged blob is ErrSnapshotCorrupt and installs nothing.
func (s *Server) InstallStandby(id string, data []byte) error {
	epoch, snap, err := replica.DecodeBlob(data)
	if err != nil {
		return fmt.Errorf("serve: standby install of %q: %v: %w", id, err, ErrSnapshotCorrupt)
	}
	s.replMu.Lock()
	if fence := s.epochs[id]; epoch < fence {
		s.replMu.Unlock()
		s.metrics.replicaStaleEpochs.Inc()
		return fmt.Errorf("serve: standby install of %q at epoch %d, fence at %d: %w", id, epoch, fence, ErrStaleEpoch)
	}
	s.replMu.Unlock()
	sess, err := s.decodeSessionBlob(id, snap)
	if err != nil {
		return err
	}
	s.replMu.Lock()
	if fence := s.epochs[id]; epoch < fence {
		s.replMu.Unlock()
		s.releaseSessionStore(sess)
		s.metrics.replicaStaleEpochs.Inc()
		return fmt.Errorf("serve: standby install of %q at epoch %d, fence at %d: %w", id, epoch, fence, ErrStaleEpoch)
	}
	old := s.standbys[id]
	s.standbys[id] = &standbyEntry{sess: sess, epoch: epoch}
	s.epochs[id] = epoch
	s.replMu.Unlock()
	if old != nil {
		s.releaseSessionStore(old.sess)
	}
	s.metrics.replicaInstalls.Inc()
	return nil
}

// PromoteStandby moves the session's warm standby into the live shard
// map under a new fence epoch — the gateway's failover step. The epoch
// must be at or above the fence (the gateway bumps it past the dead
// primary's, which permanently fences that primary's late ships).
// Promotion is sub-millisecond: the state was imported when it was
// shipped; all that moves here is a pointer. The returned final carries
// the standby's applied-batch cursor, which the gateway uses to replay
// only the unshipped tail.
func (s *Server) PromoteStandby(id string, epoch uint64) (SessionFinal, error) {
	s.replMu.Lock()
	if fence := s.epochs[id]; epoch < fence {
		s.replMu.Unlock()
		s.metrics.replicaStaleEpochs.Inc()
		return SessionFinal{}, fmt.Errorf("serve: promote of %q at epoch %d, fence at %d: %w", id, epoch, fence, ErrStaleEpoch)
	}
	ent := s.standbys[id]
	if ent == nil {
		s.replMu.Unlock()
		return SessionFinal{}, fmt.Errorf("serve: no standby for session %q: %w", id, ErrSessionNotFound)
	}
	delete(s.standbys, id)
	s.epochs[id] = epoch
	s.replMu.Unlock()
	sess := ent.sess
	sess.restored = true
	sess.touch()
	if old := s.sessions.put(id, sess); old != nil {
		s.releaseSessionStore(old)
		s.metrics.observeSessionEnd(old)
	}
	s.removeSnapshot(id)
	s.metrics.replicaPromotions.Inc()
	return sess.final(), nil
}

// DropStandby discards a session's warm standby (membership moved it
// elsewhere, or the session closed). Reports whether one existed.
func (s *Server) DropStandby(id string) bool {
	s.replMu.Lock()
	ent := s.standbys[id]
	delete(s.standbys, id)
	s.replMu.Unlock()
	if ent == nil {
		return false
	}
	s.releaseSessionStore(ent.sess)
	return true
}

// dropReplica forgets everything replication knows about a closed
// session except its fence epoch — the fence outlives the session so a
// stale primary cannot resurrect a closed stream.
func (s *Server) dropReplica(id string) {
	s.shipper.Drop(id)
	s.DropStandby(id)
}

// Admin handlers ---------------------------------------------------------

// replicaTargetRequest is POST /admin/v1/sessions/{id}/replica: the
// gateway assigning (or clearing, with an empty URL) a session's
// standby.
type replicaTargetRequest struct {
	StandbyURL string `json:"standby_url"`
	Epoch      uint64 `json:"epoch"`
}

// replicaReply acknowledges a replica-admin mutation.
type replicaReply struct {
	Session string `json:"session"`
	Epoch   uint64 `json:"epoch,omitempty"`
	Dropped bool   `json:"dropped,omitempty"`
}

func (s *Server) handleReplicaTarget(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req replicaTargetRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad replica target body: %v", err)
		return
	}
	s.SetReplicaTarget(id, req.StandbyURL, req.Epoch)
	writeJSON(w, http.StatusOK, replicaReply{Session: id, Epoch: req.Epoch})
}

// handleStandbyInstall is POST /admin/v1/sessions/{id}/standby: the body
// is a framed replica blob (the shipper's wire format). 409 stale_epoch
// when fenced, 422 snapshot_corrupt when the framing or payload is
// damaged.
func (s *Server) handleStandbyInstall(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading replica blob: %v", err)
		return
	}
	if err := s.InstallStandby(id, data); err != nil {
		switch {
		case errors.Is(err, ErrStaleEpoch):
			writeError(w, http.StatusConflict, CodeStaleEpoch, "%v", err)
		case errors.Is(err, ErrSnapshotCorrupt):
			writeError(w, http.StatusUnprocessableEntity, CodeSnapshotCorrupt, "%v", err)
		case errors.Is(err, ErrUnknownPredictor):
			writeError(w, http.StatusBadRequest, CodeUnknownPredictor, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, replicaReply{Session: id})
}

// promoteRequest is POST /admin/v1/sessions/{id}/promote.
type promoteRequest struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleStandbyPromote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req promoteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad promote body: %v", err)
		return
	}
	fin, err := s.PromoteStandby(id, req.Epoch)
	if err != nil {
		switch {
		case errors.Is(err, ErrStaleEpoch):
			writeError(w, http.StatusConflict, CodeStaleEpoch, "%v", err)
		case errors.Is(err, ErrSessionNotFound):
			writeError(w, http.StatusNotFound, CodeSessionNotFound, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, fin)
}

func (s *Server) handleStandbyDrop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	writeJSON(w, http.StatusOK, replicaReply{Session: id, Dropped: s.DropStandby(id)})
}
