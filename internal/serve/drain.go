package serve

import "time"

// janitor periodically evicts sessions idle longer than SessionTTL. It
// runs from New until Drain (or Close) stops it. A non-positive TTL
// disables eviction entirely.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.cfg.SessionTTL < 0 {
		<-s.janitorStop
		return
	}
	tick := time.NewTicker(s.cfg.EvictEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			s.EvictIdle()
		}
	}
}

// EvictIdle evicts every session idle longer than SessionTTL right now
// and returns how many were removed. Exposed for tests and operators; the
// janitor calls it on its own schedule.
func (s *Server) EvictIdle() int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-s.cfg.SessionTTL).UnixNano()
	evicted := s.sessions.evictIdle(cutoff)
	if n := len(evicted); n > 0 {
		s.metrics.sessionsEvicted.Add(uint64(n))
		for _, sess := range evicted {
			s.metrics.observeSessionEnd(sess)
		}
	}
	// With a snapshot directory, eviction is checkpoint-to-disk (and, with
	// sharing on, freeze-to-pool): the next batch for the same session ID
	// restores the predictor transparently. Either way the session's
	// pattern storage goes back to the pool for the next session.
	s.retireSessions(evicted)
	return len(evicted)
}

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: new batches are refused with
// 503 from the moment it is called, every batch already accepted runs to
// completion (none is dropped mid-flight), the eviction janitor stops,
// and the final per-session statistics of all remaining sessions are
// returned, sorted by session ID. Drain is idempotent; later calls wait
// for quiescence again and re-collect.
func (s *Server) Drain() []SessionFinal {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.stopOnce.Do(func() { close(s.janitorStop) })
	<-s.janitorDone
	s.inflight.Wait()
	// Every batch has settled, so the shipper's last accounting is final;
	// stop it (and release any warm standbys) before checkpointing.
	s.stopReplication()

	sessions := s.sessions.all()
	// All batches have completed and no new ones are accepted, so every
	// session is quiescent: checkpoint them so a restarted daemon with the
	// same snapshot directory boots warm.
	s.checkpointSessions(sessions)
	finals := make([]SessionFinal, 0, len(sessions))
	for _, sess := range sessions {
		finals = append(finals, sess.final())
	}
	return finals
}

// Close stops the server without collecting final stats (test teardown).
func (s *Server) Close() { s.Drain() }
