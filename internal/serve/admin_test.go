package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/sim"
)

// TestAdminExportImportRoundTrip is the transfer leg of live migration in
// miniature: stream half a workload to server A, export the session over
// the admin API, import it into server B, stream the second half there —
// final statistics must equal a local sim.Run over the unbroken stream.
func TestAdminExportImportRoundTrip(t *testing.T) {
	const instrBudget = 60_000
	branches := workloadBranches(t, "nodeapp", instrBudget)
	half := len(branches) / 2

	p, err := NewPredictor("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}

	srvA, clientA := testServer(t, Config{})
	_, clientB := testServer(t, Config{})
	ctx := context.Background()

	sendInBatches(t, clientA, "mig", "tsl-8k", branches[:half], 1024)

	blob, err := clientA.ExportSession(ctx, "mig")
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty export blob")
	}
	// Export is non-destructive: the source session stays live.
	if srvA.Sessions() != 1 {
		t.Fatalf("source has %d sessions after export, want 1", srvA.Sessions())
	}

	fin, err := clientB.ImportSession(ctx, "mig", blob)
	if err != nil {
		t.Fatal(err)
	}
	if fin.ID != "mig" || fin.Predictor != "tsl-8k" {
		t.Fatalf("imported record %+v", fin)
	}

	got := sendInBatches(t, clientB, "mig", "tsl-8k", branches[half:], 1024)
	want := local.Measured
	if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
		got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
		got.SecondLevelOK != want.SecondLevelOK || got.MPKI != local.MPKI() {
		t.Fatalf("migrated session diverges from unbroken local sim:\nserver %+v\nlocal  %+v", got, want)
	}
}

// TestAdminExportFromDisk: a session that was evicted to disk (not in
// memory) exports its checkpoint file's bytes, so cold sessions migrate
// too.
func TestAdminExportFromDisk(t *testing.T) {
	dir := t.TempDir()
	srv, client := testServer(t, snapTestConfig(dir))
	ctx := context.Background()
	branches := workloadBranches(t, "kafka", 20_000)
	sendInBatches(t, client, "colder", "tsl-8k", branches, 1024)

	time.Sleep(50 * time.Millisecond)
	if n := srv.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "colder.snap"))
	if err != nil {
		t.Fatalf("no checkpoint after eviction: %v", err)
	}

	blob, err := client.ExportSession(ctx, "colder")
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(onDisk) {
		t.Fatal("disk export differs from the checkpoint file bytes")
	}

	// A session that exists nowhere is a typed not-found.
	if _, err := client.ExportSession(ctx, "ghost"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("export of missing session: %v, want ErrSessionNotFound", err)
	}
}

// TestAdminImportReplacesExisting: import overwrites a live session under
// the same ID — the transferred state is authoritative.
func TestAdminImportReplacesExisting(t *testing.T) {
	_, clientA := testServer(t, Config{})
	srvB, clientB := testServer(t, Config{})
	ctx := context.Background()
	branches := workloadBranches(t, "nodeapp", 30_000)

	sendInBatches(t, clientA, "dup", "tsl-8k", branches, 1024)
	blob, err := clientA.ExportSession(ctx, "dup")
	if err != nil {
		t.Fatal(err)
	}

	// B already has an unrelated session under the same ID.
	sendInBatches(t, clientB, "dup", "tsl-8k", branches[:len(branches)/4], 1024)

	fin, err := clientB.ImportSession(ctx, "dup", blob)
	if err != nil {
		t.Fatal(err)
	}
	src, err := clientA.SessionStats(ctx, "dup")
	if err != nil {
		t.Fatal(err)
	}
	if fin.Stats != src.Stats {
		t.Fatalf("imported stats diverge from source:\nimport %+v\nsource %+v", fin.Stats, src.Stats)
	}
	if srvB.Sessions() != 1 {
		t.Fatalf("destination has %d sessions, want 1", srvB.Sessions())
	}
}

// TestAdminImportRejectsCorrupt: a torn or bit-flipped blob is refused
// with the snapshot_corrupt code and installs nothing.
func TestAdminImportRejectsCorrupt(t *testing.T) {
	_, clientA := testServer(t, Config{})
	srvB, clientB := testServer(t, Config{})
	ctx := context.Background()
	branches := workloadBranches(t, "kafka", 20_000)
	sendInBatches(t, clientA, "torn", "tsl-8k", branches, 1024)
	blob, err := clientA.ExportSession(ctx, "torn")
	if err != nil {
		t.Fatal(err)
	}

	truncated := blob[:len(blob)/2]
	if _, err := clientB.ImportSession(ctx, "torn", truncated); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated import: %v, want ErrSnapshotCorrupt", err)
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := clientB.ImportSession(ctx, "torn", flipped); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bit-flipped import: %v, want ErrSnapshotCorrupt", err)
	}
	if srvB.Sessions() != 0 {
		t.Fatalf("corrupt imports installed %d sessions, want 0", srvB.Sessions())
	}

	// The intact blob still imports after the failures.
	if _, err := clientB.ImportSession(ctx, "torn", blob); err != nil {
		t.Fatal(err)
	}
	if srvB.Sessions() != 1 {
		t.Fatalf("destination has %d sessions, want 1", srvB.Sessions())
	}
}

// TestAdminExportPreservesWireCursor: the sequencing cursor rides the
// transfer, so a migrated session resumes the exactly-once contract where
// it left off.
func TestAdminExportPreservesWireCursor(t *testing.T) {
	srvA, _ := testServer(t, Config{})
	srvB, _ := testServer(t, Config{})
	branches := workloadBranches(t, "nodeapp", 20_000)

	sess, _, _, err := srvA.AcquireSession("seq", "tsl-8k", "")
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]core.Prediction, len(branches))
	for num := uint64(1); num <= 3; num++ {
		if st, _ := srvA.ExecuteWireBatch(sess, num, branches, preds, 0); st != WireApplied {
			t.Fatalf("batch %d: status %v", num, st)
		}
	}
	blob, err := srvA.ExportSession("seq")
	if err != nil {
		t.Fatal(err)
	}
	fin, err := srvB.ImportSession("seq", blob)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Stats.WireCursor != 3 {
		t.Fatalf("imported wire cursor %d, want 3", fin.Stats.WireCursor)
	}
	// A resend of batch 3 on the new owner is a duplicate; batch 4 applies.
	moved, _, _, err := srvB.AcquireSession("seq", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := srvB.ExecuteWireBatch(moved, 3, branches, preds, 0); st != WireDuplicate {
		t.Fatalf("replayed batch 3: status %v, want duplicate", st)
	}
	if st, _ := srvB.ExecuteWireBatch(moved, 4, branches, preds, 0); st != WireApplied {
		t.Fatalf("batch 4: status %v, want applied", st)
	}
}
