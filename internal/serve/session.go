package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/patternpool"
	"llbpx/internal/stats"
)

// Session is one client's live predictor. A session owns exactly one
// predictor instance and its running branch statistics; batches within a
// session execute serially (predictors are not concurrency-safe), which is
// guarded by mu. Different sessions execute fully in parallel.
type Session struct {
	// ID is the client-chosen session identifier.
	ID string
	// PredictorName is the registry name the session was created with.
	PredictorName string
	// Fingerprint is the workload fingerprint the session declared at
	// creation ("" = none). Sessions with identical fingerprints opt into
	// frozen-state sharing in the pattern pool; it is persisted in
	// checkpoints so a restored session keeps its declaration.
	Fingerprint string

	// created is when the session entered memory (cold start or snapshot
	// restore); the lifetime histogram measures from here.
	created time.Time

	// lastUsed is the unix-nano timestamp of the last batch (or creation),
	// read lock-free by the eviction janitor.
	lastUsed atomic.Int64

	// pins counts callers holding the session between AcquireSession and
	// batch completion. The budget spiller only retires sessions with
	// zero pins (checked under the shard lock, where pins are taken), so
	// a session can never be spilled out from under an admitted batch —
	// the TTL janitor gets the same guarantee from its idle re-check.
	pins atomic.Int32

	// ns is the session's pattern-pool namespace (nil when the predictor
	// has no poolable second-level store).
	ns *patternpool.Namespace

	mu      sync.Mutex
	pred    core.Predictor
	stats   stats.BranchStats
	batches uint64
	// predBuf is the session's reusable prediction scratch buffer for
	// core.RunBatch, guarded by mu like the predictor itself.
	predBuf []core.Prediction
	// wireSeq is the highest applied binary-protocol batch number (the
	// exactly-once cursor of internal/wire's sequencing contract). Zero
	// until the first sequenced wire batch; untouched by the HTTP path.
	// Persisted in checkpoints so a restored session keeps its cursor.
	wireSeq uint64

	// restored marks a session rebuilt from an on-disk snapshot rather
	// than created cold (reported once in the creating batch's response).
	restored bool
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// idleSince reports whether the session has been unused since cutoff
// (unix nanos).
func (s *Session) idleSince(cutoff int64) bool { return s.lastUsed.Load() < cutoff }

// applyBatchLocked drives the predictor over one batch of branches in
// retire order through core.RunBatch, with the same accounting as sim.Run
// so that a session's MPKI matches a local simulation of the same stream.
// It returns the raw per-branch predictions (aliasing the session's
// scratch buffer — valid only while mu is held) and the batch's own stats
// delta. Callers hold mu.
func (s *Session) applyBatchLocked(batch []core.Branch) ([]core.Prediction, stats.BranchStats) {
	var delta stats.BranchStats
	if cap(s.predBuf) < len(batch) {
		s.predBuf = make([]core.Prediction, len(batch))
	}
	preds := s.predBuf[:len(batch)]
	core.RunBatch(s.pred, batch, preds)
	for i, b := range batch {
		delta.Instructions += b.Instructions()
		if b.Kind.Conditional() {
			delta.CondBranches++
			pred := preds[i]
			if pred.Taken != b.Taken {
				delta.Mispredicts++
			} else if pred.FromSecondLevel {
				delta.SecondLevelOK++
			}
			if pred.Taken != pred.FastTaken {
				delta.Overrides++
			}
		} else {
			delta.UncondCount++
		}
	}
	s.stats.Add(delta)
	s.batches++
	s.touch()
	return preds, delta
}

// executeBatch is the HTTP path's batch execution: applyBatchLocked plus
// materializing the JSON-shaped per-branch reply. It returns the
// per-branch predictions, the batch's own stats delta (used for
// server-wide per-predictor aggregation), and the session's post-batch
// snapshot taken under the same lock.
func (s *Session) executeBatch(batch []core.Branch) ([]BranchPrediction, stats.BranchStats, SessionStats) {
	out := make([]BranchPrediction, len(batch))
	s.mu.Lock()
	defer s.mu.Unlock()
	preds, delta := s.applyBatchLocked(batch)
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := preds[i]
			out[i] = BranchPrediction{
				Cond:        true,
				Taken:       pred.Taken,
				Correct:     pred.Taken == b.Taken,
				SecondLevel: pred.FromSecondLevel,
			}
		} else {
			// Unconditional branches are always taken and never predicted
			// for direction.
			out[i] = BranchPrediction{Taken: true, Correct: true}
		}
	}
	return out, delta, s.snapshotLocked()
}

// snapshot returns the session's accumulated statistics.
func (s *Session) snapshot() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Session) snapshotLocked() SessionStats {
	return SessionStats{
		Instructions:  s.stats.Instructions,
		CondBranches:  s.stats.CondBranches,
		Mispredicts:   s.stats.Mispredicts,
		UncondCount:   s.stats.UncondCount,
		SecondLevelOK: s.stats.SecondLevelOK,
		Batches:       s.batches,
		MPKI:          s.stats.MPKI(),
		Accuracy:      s.stats.Accuracy(),
		WireCursor:    s.wireSeq,
	}
}

// final returns the session's terminal record (for DELETE and drain).
func (s *Session) final() SessionFinal {
	return SessionFinal{ID: s.ID, Predictor: s.PredictorName, Stats: s.snapshot()}
}

// SessionStats is the wire form of a session's accumulated statistics.
type SessionStats struct {
	Instructions  uint64  `json:"instructions"`
	CondBranches  uint64  `json:"cond_branches"`
	Mispredicts   uint64  `json:"mispredicts"`
	UncondCount   uint64  `json:"uncond_branches"`
	SecondLevelOK uint64  `json:"second_level_ok"`
	Batches       uint64  `json:"batches"`
	MPKI          float64 `json:"mpki"`
	Accuracy      float64 `json:"accuracy"`
	// WireCursor is the session's exactly-once sequencing cursor (the
	// highest applied binary-protocol batch number; 0 = unsequenced). The
	// cluster gateway reads it to resume a relocated session's stream at
	// the right batch number.
	WireCursor uint64 `json:"wire_cursor,omitempty"`
}

// SessionFinal is a finished session's terminal record, emitted on DELETE
// and on graceful drain.
type SessionFinal struct {
	ID        string       `json:"id"`
	Predictor string       `json:"predictor"`
	Stats     SessionStats `json:"stats"`
}
