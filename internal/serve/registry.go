package serve

import (
	"fmt"
	"sort"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	llbpximpl "llbpx/internal/llbpx"
	"llbpx/internal/tage"
)

// predictorMakers is the registry of named predictor configurations a
// session can be created with. The names match cmd/llbpsim's vocabulary.
var predictorMakers = map[string]func() (core.Predictor, error){
	"tsl-8k":    func() (core.Predictor, error) { return tage.New(tage.Config8K()) },
	"tsl-16k":   func() (core.Predictor, error) { return tage.New(tage.Config16K()) },
	"tsl-32k":   func() (core.Predictor, error) { return tage.New(tage.Config32K()) },
	"tsl-64k":   func() (core.Predictor, error) { return tage.New(tage.Config64K()) },
	"tsl-128k":  func() (core.Predictor, error) { return tage.New(tage.Config128K()) },
	"tsl-512k":  func() (core.Predictor, error) { return tage.New(tage.Config512K()) },
	"tsl-inf":   func() (core.Predictor, error) { return tage.New(tage.ConfigInf()) },
	"llbp":      func() (core.Predictor, error) { return llbp.New(llbp.Default()) },
	"llbp-0lat": func() (core.Predictor, error) { return llbp.New(llbp.ZeroLatency()) },
	"llbp-x":    func() (core.Predictor, error) { return llbpximpl.New(llbpximpl.Default()) },
}

// NewPredictor constructs a fresh predictor instance for a registry name.
func NewPredictor(name string) (core.Predictor, error) {
	mk, ok := predictorMakers[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown predictor %q (known: %v)", name, PredictorNames())
	}
	return mk()
}

// PredictorNames returns the registry names in sorted order.
func PredictorNames() []string {
	out := make([]string, 0, len(predictorMakers))
	for name := range predictorMakers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
