package serve

import (
	"fmt"
	"sort"
	"sync"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	llbpximpl "llbpx/internal/llbpx"
	"llbpx/internal/tage"
)

// PredictorFactory builds a fresh predictor instance for one registry
// configuration.
type PredictorFactory func() (core.Predictor, error)

// PredictorInfo describes one registry entry.
type PredictorInfo struct {
	// Name is the registry key ("tsl-64k", "llbp-x", ...).
	Name string
	// Description is a one-line human-readable summary.
	Description string
}

// predictorEntry is one row of the registry table.
type predictorEntry struct {
	desc    string
	factory PredictorFactory
}

// The registry table: named predictor configurations a session (or a
// snapshot load, or cmd/llbpsim) can be created with. Built-ins are
// registered at init; experiments and external code extend it through
// RegisterPredictor (exported at the root facade), so nothing else in the
// repository hard-codes the configuration vocabulary.
var (
	regMu          sync.RWMutex
	predictorTable = map[string]predictorEntry{}
)

func init() {
	mustRegister := func(name, desc string, factory PredictorFactory) {
		if err := RegisterPredictor(name, desc, factory); err != nil {
			panic(err)
		}
	}
	mustRegister("tsl-8k", "TAGE-SC-L, 8KB storage budget",
		func() (core.Predictor, error) { return tage.New(tage.Config8K()) })
	mustRegister("tsl-16k", "TAGE-SC-L, 16KB storage budget",
		func() (core.Predictor, error) { return tage.New(tage.Config16K()) })
	mustRegister("tsl-32k", "TAGE-SC-L, 32KB storage budget",
		func() (core.Predictor, error) { return tage.New(tage.Config32K()) })
	mustRegister("tsl-64k", "TAGE-SC-L, 64KB storage budget (paper baseline)",
		func() (core.Predictor, error) { return tage.New(tage.Config64K()) })
	mustRegister("tsl-128k", "TAGE-SC-L, 128KB storage budget",
		func() (core.Predictor, error) { return tage.New(tage.Config128K()) })
	mustRegister("tsl-512k", "TAGE-SC-L, 512KB storage budget",
		func() (core.Predictor, error) { return tage.New(tage.Config512K()) })
	mustRegister("tsl-inf", "TAGE-SC-L with unbounded tables (upper bound)",
		func() (core.Predictor, error) { return tage.New(tage.ConfigInf()) })
	mustRegister("llbp", "LLBP over TSL-64K (515KB backing store, W=8, D=4)",
		func() (core.Predictor, error) { return llbp.New(llbp.Default()) })
	mustRegister("llbp-0lat", "LLBP with zero-latency backing store",
		func() (core.Predictor, error) { return llbp.New(llbp.ZeroLatency()) })
	mustRegister("llbp-x", "LLBP-X: dynamic context depth + history range selection",
		func() (core.Predictor, error) { return llbpximpl.New(llbpximpl.Default()) })
}

// RegisterPredictor adds a named predictor configuration to the registry.
// The name becomes usable everywhere registry names are: session creation,
// cmd/llbpsim -predictor, and snapshot loading (snapshots embed the name
// and resolve through this same table). It returns an error — rather than
// overwriting — when the name is empty, the factory is nil, or the name is
// already taken, so built-ins cannot be shadowed.
func RegisterPredictor(name, desc string, factory PredictorFactory) error {
	if name == "" {
		return fmt.Errorf("serve: predictor name must be non-empty")
	}
	if factory == nil {
		return fmt.Errorf("serve: predictor %q needs a non-nil factory", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := predictorTable[name]; dup {
		return fmt.Errorf("serve: predictor %q already registered", name)
	}
	predictorTable[name] = predictorEntry{desc: desc, factory: factory}
	return nil
}

// NewPredictor constructs a fresh predictor instance for a registry name.
// An unknown name returns an error wrapping ErrUnknownPredictor.
func NewPredictor(name string) (core.Predictor, error) {
	regMu.RLock()
	e, ok := predictorTable[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: %w %q (known: %v)", ErrUnknownPredictor, name, PredictorNames())
	}
	return e.factory()
}

// PredictorNames returns the registry names in sorted order.
func PredictorNames() []string {
	regMu.RLock()
	out := make([]string, 0, len(predictorTable))
	for name := range predictorTable {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// DescribePredictor returns a registry entry's one-line description and
// whether the name is registered.
func DescribePredictor(name string) (string, bool) {
	regMu.RLock()
	e, ok := predictorTable[name]
	regMu.RUnlock()
	return e.desc, ok
}

// Predictors returns every registry entry, sorted by name.
func Predictors() []PredictorInfo {
	names := PredictorNames()
	out := make([]PredictorInfo, 0, len(names))
	regMu.RLock()
	for _, name := range names {
		out = append(out, PredictorInfo{Name: name, Description: predictorTable[name].desc})
	}
	regMu.RUnlock()
	return out
}
