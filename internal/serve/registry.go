package serve

import (
	"fmt"
	"sort"
	"sync"

	"llbpx/internal/bullseye"
	"llbpx/internal/core"
	"llbpx/internal/llbp"
	llbpximpl "llbpx/internal/llbpx"
	"llbpx/internal/tage"
	"llbpx/internal/tournament"
)

// PredictorFactory builds a fresh predictor instance for one registry
// configuration that takes no parameters (the original registration form,
// kept for extension back-compat).
type PredictorFactory func() (core.Predictor, error)

// SpecFactory builds a predictor from a resolved parameter set. name is
// the canonical spec string; factories should label the instance with it
// so Name(), simulation results, and snapshot headers all agree.
type SpecFactory func(name string, p Params) (core.Predictor, error)

// ParamInfo is the metadata form of one parameter declaration.
type ParamInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Default string `json:"default,omitempty"`
	Min     int64  `json:"min,omitempty"`
	Max     int64  `json:"max,omitempty"`
	Desc    string `json:"desc,omitempty"`
	// LocalOnly marks parameters accepted only in local configuration
	// (rejected in specs arriving over the serving API).
	LocalOnly bool `json:"local_only,omitempty"`
}

// PredictorInfo describes one registry entry: the canonical name, the
// one-line summary, the parameter schema, and a storage-budget estimate
// for the resolved configuration (0 when the entry declares none).
type PredictorInfo struct {
	// Name is the canonical spec string ("tsl-64k", "bullseye(promote=8)").
	Name string `json:"name"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
	// Params is the parameter schema (empty for parameterless entries).
	Params []ParamInfo `json:"params,omitempty"`
	// StorageBytes estimates the configuration's modeled storage budget.
	StorageBytes int64 `json:"storage_bytes,omitempty"`
}

// predictorEntry is one row of the registry table.
type predictorEntry struct {
	desc    string
	schema  []ParamDef
	storage func(Params) int64 // nil = no estimate
	factory SpecFactory
}

// The registry table: named predictor configurations a session (or a
// snapshot load, or cmd/llbpsim) can be created with. Built-ins are
// registered at init; experiments and external code extend it through
// RegisterPredictor / RegisterPredictorSpec (exported at the root facade),
// so nothing else in the repository hard-codes the configuration
// vocabulary.
var (
	regMu          sync.RWMutex
	predictorTable = map[string]predictorEntry{}
)

// tslConfigs maps the first-level configuration vocabulary bullseye's
// base= parameter accepts.
var tslConfigs = map[string]func() tage.Config{
	"tsl-8k":   tage.Config8K,
	"tsl-16k":  tage.Config16K,
	"tsl-32k":  tage.Config32K,
	"tsl-64k":  tage.Config64K,
	"tsl-128k": tage.Config128K,
	"tsl-512k": tage.Config512K,
}

// llbpStorageBytes estimates an LLBP configuration's modeled storage: the
// second-level pattern store (tag + counter bits per pattern) plus the
// first-level TAGE-SC-L budget.
func llbpStorageBytes(cfg llbp.Config) int64 {
	patBits := int64(cfg.NumContexts) * int64(cfg.PatternsPerSet) * int64(cfg.TagBits+5)
	return patBits/8 + int64(cfg.TSL.StorageBits()/8)
}

func init() {
	mustRegister := func(name, desc string, schema []ParamDef, storage func(Params) int64, factory SpecFactory) {
		if err := RegisterPredictorSpec(name, desc, schema, storage, factory); err != nil {
			panic(err)
		}
	}
	regTSL := func(name, desc string, cfg func() tage.Config) {
		bytes := int64(cfg().StorageBits() / 8)
		mustRegister(name, desc, nil,
			func(Params) int64 { return bytes },
			func(string, Params) (core.Predictor, error) { return tage.New(cfg()) })
	}
	regTSL("tsl-8k", "TAGE-SC-L, 8KB storage budget", tage.Config8K)
	regTSL("tsl-16k", "TAGE-SC-L, 16KB storage budget", tage.Config16K)
	regTSL("tsl-32k", "TAGE-SC-L, 32KB storage budget", tage.Config32K)
	regTSL("tsl-64k", "TAGE-SC-L, 64KB storage budget (paper baseline)", tage.Config64K)
	regTSL("tsl-128k", "TAGE-SC-L, 128KB storage budget", tage.Config128K)
	regTSL("tsl-512k", "TAGE-SC-L, 512KB storage budget", tage.Config512K)
	regTSL("tsl-inf", "TAGE-SC-L with unbounded tables (upper bound)", tage.ConfigInf)

	regLLBP := func(name, desc string, cfg func() llbp.Config) {
		bytes := llbpStorageBytes(cfg())
		mustRegister(name, desc, nil,
			func(Params) int64 { return bytes },
			func(string, Params) (core.Predictor, error) { return llbp.New(cfg()) })
	}
	regLLBP("llbp", "LLBP over TSL-64K (515KB backing store, W=8, D=4)", llbp.Default)
	regLLBP("llbp-0lat", "LLBP with zero-latency backing store", llbp.ZeroLatency)
	{
		bytes := llbpStorageBytes(llbp.Default()) // LLBP-X shares LLBP's store geometry
		mustRegister("llbp-x", "LLBP-X: dynamic context depth + history range selection", nil,
			func(Params) int64 { return bytes },
			func(string, Params) (core.Predictor, error) { return llbpximpl.New(llbpximpl.Default()) })
	}

	mustRegister("bullseye",
		"H2P-targeted: dedicated per-branch pattern sets over a small TAGE-SC-L",
		[]ParamDef{
			{Name: "base", Kind: ParamString, Default: "tsl-8k",
				Desc: "first-level TAGE-SC-L configuration (tsl-8k ... tsl-512k)"},
			{Name: "branches", Kind: ParamInt, Default: "512", Min: 16, Max: 1 << 16,
				Desc: "dedicated pattern-set capacity (distinct H2P branches)"},
			{Name: "patterns", Kind: ParamInt, Default: "64", Min: 4, Max: 1024,
				Desc: "patterns per dedicated branch set"},
			{Name: "assoc", Kind: ParamInt, Default: "4", Min: 1, Max: 16,
				Desc: "pattern directory associativity"},
			{Name: "promote", Kind: ParamInt, Default: "4", Min: 1, Max: 1 << 20,
				Desc: "baseline mispredictions before a branch is admitted as H2P"},
			{Name: "tag_bits", Kind: ParamInt, Default: "13", Min: 5, Max: 31,
				Desc: "stored pattern tag width in bits"},
			{Name: "h2p_file", Kind: ParamString, Default: "", LocalOnly: true,
				Desc: "attribution JSON (llbpsim -attr -json) pre-seeding the H2P set; local construction only"},
		},
		bullseyeStorage, buildBullseye)

	mustRegister("tournament",
		"meta-predictor arbitrating registry members with a confidence-weighted chooser",
		[]ParamDef{
			{Name: "members", Kind: ParamSpecList, Default: "tsl-8k+llbp",
				Desc: "2-4 member predictor specs joined with '+'"},
			{Name: "chooser_bits", Kind: ParamInt, Default: "12", Min: 4, Max: 20,
				Desc: "log2 of chooser table entries"},
		},
		tournamentStorage, buildTournament)
}

// buildBullseye is the registry factory for the H2P-targeted predictor.
func buildBullseye(name string, p Params) (core.Predictor, error) {
	base, ok := tslConfigs[p.Str("base")]
	if !ok {
		return nil, fmt.Errorf("serve: bullseye base %q is not a bounded tsl-* configuration", p.Str("base"))
	}
	cfg := bullseye.Default()
	cfg.Name = name
	cfg.BaseTSL = base()
	cfg.MaxBranches = p.Int("branches")
	cfg.PatternsPerSet = p.Int("patterns")
	cfg.Assoc = p.Int("assoc")
	cfg.PromoteMisses = p.Int("promote")
	cfg.TagBits = uint(p.Int("tag_bits"))
	if f := p.Str("h2p_file"); f != "" {
		pcs, err := bullseye.LoadH2PFile(f)
		if err != nil {
			return nil, fmt.Errorf("serve: bullseye h2p_file: %w", err)
		}
		cfg.SeedPCs = pcs
	}
	return bullseye.New(cfg)
}

func bullseyeStorage(p Params) int64 {
	bytes := int64(p.Int("branches")) * int64(p.Int("patterns")) * int64(p.Int("tag_bits")+5) / 8
	if base, ok := tslConfigs[p.Str("base")]; ok {
		bytes += int64(base().StorageBits() / 8)
	}
	return bytes
}

// buildTournament is the registry factory for the meta-predictor; members
// resolve recursively through NewPredictor, so any registry spec —
// including parameterized ones — can be a member.
func buildTournament(name string, p Params) (core.Predictor, error) {
	specs := SplitSpecList(p.Str("members"))
	if len(specs) < 2 || len(specs) > tournament.MaxMembers {
		return nil, fmt.Errorf("serve: tournament needs 2..%d members, got %d", tournament.MaxMembers, len(specs))
	}
	members := make([]core.Predictor, len(specs))
	for i, ms := range specs {
		// Members inherit the enclosing spec's trust: a client-supplied
		// tournament cannot smuggle LocalOnly parameters inside a member.
		m, err := newPredictor(ms, p.ClientOrigin())
		if err != nil {
			return nil, fmt.Errorf("serve: tournament member %q: %w", ms, err)
		}
		members[i] = m
	}
	return tournament.New(tournament.Config{Name: name, ChooserBits: p.Int("chooser_bits")}, members)
}

func tournamentStorage(p Params) int64 {
	specs := SplitSpecList(p.Str("members"))
	total := int64(len(specs)) * (1 << p.Int("chooser_bits")) / 2 // 4-bit chooser counters
	for _, ms := range specs {
		total += storageOfSpec(ms)
	}
	return total
}

// storageOfSpec estimates a spec's storage budget, 0 when unresolvable or
// unestimated.
func storageOfSpec(spec string) int64 {
	sp, err := ParseSpec(spec)
	if err != nil {
		return 0
	}
	e, ok := lookupEntry(sp.Name)
	if !ok || e.storage == nil {
		return 0
	}
	params, err := resolveParams(e.schema, sp, canonicalMember)
	if err != nil {
		return 0
	}
	return e.storage(params)
}

// RegisterPredictor adds a parameterless predictor configuration to the
// registry (the original extension API; see RegisterPredictorSpec for
// parameterized entries). The name becomes usable everywhere registry
// specs are: session creation, cmd/llbpsim -predictor, and snapshot
// loading. It returns an error — rather than overwriting — when the name
// is empty, the factory is nil, or the name is already taken, so built-ins
// cannot be shadowed.
func RegisterPredictor(name, desc string, factory PredictorFactory) error {
	if factory == nil {
		return fmt.Errorf("serve: predictor %q needs a non-nil factory", name)
	}
	return RegisterPredictorSpec(name, desc, nil, nil,
		func(string, Params) (core.Predictor, error) { return factory() })
}

// RegisterPredictorSpec adds a parameterized predictor configuration. The
// schema declares the accepted parameters with typed defaults; storage
// (optional) estimates a resolved configuration's modeled storage budget
// in bytes; factory receives the canonical spec string and the fully
// resolved parameter map.
func RegisterPredictorSpec(name, desc string, schema []ParamDef, storage func(Params) int64, factory SpecFactory) error {
	if name == "" {
		return fmt.Errorf("serve: predictor name must be non-empty")
	}
	if !validSpecName(name) {
		return fmt.Errorf("serve: predictor name %q is not a valid spec name", name)
	}
	if factory == nil {
		return fmt.Errorf("serve: predictor %q needs a non-nil factory", name)
	}
	for _, d := range schema {
		if !validSpecName(d.Name) {
			return fmt.Errorf("serve: predictor %q: invalid parameter name %q", name, d.Name)
		}
		probe := PredictorSpec{Name: name, Params: map[string]string{d.Name: d.Default}}
		if _, err := resolveParams(schema, probe, func(s string) (string, error) { return s, nil }); err != nil {
			return fmt.Errorf("serve: predictor %q: parameter %q default %q does not validate: %v",
				name, d.Name, d.Default, err)
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := predictorTable[name]; dup {
		return fmt.Errorf("serve: predictor %q already registered", name)
	}
	predictorTable[name] = predictorEntry{desc: desc, schema: schema, storage: storage, factory: factory}
	return nil
}

// lookupEntry fetches a registry row under its own read lock. Callers
// never hold regMu across resolution, so spec-list members can recurse
// through the registry without re-entering the lock.
func lookupEntry(name string) (predictorEntry, bool) {
	regMu.RLock()
	e, ok := predictorTable[name]
	regMu.RUnlock()
	return e, ok
}

// canonicalMember canonicalizes one spec-list member (the resolveParams
// injection point).
func canonicalMember(spec string) (string, error) {
	return CanonicalPredictorName(spec)
}

// CanonicalPredictorName resolves a spec through the registry and returns
// its canonical string: parameters validated, normalized, sorted, and
// dropped when equal to their defaults. A bare builtin name canonicalizes
// to itself. Unknown base names return an error wrapping
// ErrUnknownPredictor.
func CanonicalPredictorName(spec string) (string, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return "", err
	}
	e, ok := lookupEntry(sp.Name)
	if !ok {
		return "", fmt.Errorf("serve: %w %q (known: %v)", ErrUnknownPredictor, sp.Name, PredictorNames())
	}
	params, err := resolveParams(e.schema, sp, canonicalMember)
	if err != nil {
		return "", err
	}
	return canonicalString(sp.Name, e.schema, params), nil
}

// NewPredictor constructs a fresh predictor instance from a spec. An
// unknown base name returns an error wrapping ErrUnknownPredictor; a
// malformed spec or invalid parameter returns a plain error (the HTTP
// layer's generic bad_request). The spec is treated as trusted local
// configuration (the CLI, the Go facade, snapshot restore): parameters
// declared LocalOnly — those that reach into the local filesystem — are
// accepted. Specs arriving from remote clients must go through
// NewClientPredictor instead.
func NewPredictor(spec string) (core.Predictor, error) {
	return newPredictor(spec, false)
}

// NewClientPredictor is NewPredictor for untrusted, client-supplied specs
// (the llbpd serving path). Parameters declared LocalOnly are rejected
// before the factory runs — no file is ever opened on a client's behalf —
// and the restriction propagates into spec-list members, so nesting a
// restricted parameter inside a tournament member does not bypass it.
func NewClientPredictor(spec string) (core.Predictor, error) {
	return newPredictor(spec, true)
}

func newPredictor(spec string, clientOrigin bool) (core.Predictor, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("serve: invalid predictor spec: %w", err)
	}
	e, ok := lookupEntry(sp.Name)
	if !ok {
		return nil, fmt.Errorf("serve: %w %q (known: %v)", ErrUnknownPredictor, sp.Name, PredictorNames())
	}
	if clientOrigin {
		for _, d := range e.schema {
			if _, given := sp.Params[d.Name]; given && d.LocalOnly {
				return nil, fmt.Errorf("serve: predictor %q: parameter %q is only accepted in local configuration, not from clients",
					sp.Name, d.Name)
			}
		}
	}
	params, err := resolveParams(e.schema, sp, canonicalMember)
	if err != nil {
		return nil, err
	}
	if clientOrigin {
		params[paramClientOrigin] = "true"
	}
	return e.factory(canonicalString(sp.Name, e.schema, params), params)
}

// PredictorNames returns the registry's base names in sorted order.
func PredictorNames() []string {
	regMu.RLock()
	out := make([]string, 0, len(predictorTable))
	for name := range predictorTable {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// DescribePredictor resolves a spec and returns its metadata: canonical
// name, description, parameter schema, and the storage estimate for the
// resolved configuration. ok is false for unknown names, malformed specs,
// and invalid parameters.
func DescribePredictor(spec string) (PredictorInfo, bool) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return PredictorInfo{}, false
	}
	e, ok := lookupEntry(sp.Name)
	if !ok {
		return PredictorInfo{}, false
	}
	params, err := resolveParams(e.schema, sp, canonicalMember)
	if err != nil {
		return PredictorInfo{}, false
	}
	info := PredictorInfo{
		Name:        canonicalString(sp.Name, e.schema, params),
		Description: e.desc,
	}
	if len(e.schema) > 0 {
		info.Params = make([]ParamInfo, len(e.schema))
		for i, d := range e.schema {
			info.Params[i] = ParamInfo{
				Name: d.Name, Kind: d.Kind.String(), Default: d.Default,
				Min: d.Min, Max: d.Max, Desc: d.Desc, LocalOnly: d.LocalOnly,
			}
		}
	}
	if e.storage != nil {
		info.StorageBytes = e.storage(params)
	}
	return info, true
}

// Predictors returns metadata for every registry entry at its default
// configuration, sorted by name.
func Predictors() []PredictorInfo {
	names := PredictorNames()
	out := make([]PredictorInfo, 0, len(names))
	for _, name := range names {
		if info, ok := DescribePredictor(name); ok {
			out = append(out, info)
		}
	}
	return out
}
