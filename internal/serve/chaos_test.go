package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
	"llbpx/internal/sim"
)

// swapHandler lets one stable URL front a replaceable Server, so a
// "process restart" is an atomic pointer swap under live traffic.
type swapHandler struct{ srv atomic.Pointer[Server] }

func (h *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.srv.Load().ServeHTTP(w, r)
}

// chaosStream is one session's life under chaos: stream the first
// phase1Count batches, park at the barrier while the coordinator
// drains/corrupts/restarts the server, then stream the rest and close.
type chaosStream struct {
	id          string
	phase1Count int
	startGate   chan struct{} // all streamers released together
	resumeGate  chan struct{} // closed by the coordinator after the restart
	parked      sync.WaitGroup
	final       SessionStats
	err         error
}

func (cs *chaosStream) run(client *Client, branches []core.Branch, batchSize int) {
	// Release the coordinator exactly once: normally when parking at the
	// barrier, or on an early error exit during phase 1.
	signaled := false
	signal := func() {
		if !signaled {
			signaled = true
			cs.parked.Done()
		}
	}
	defer signal()
	<-cs.startGate
	ctx := context.Background()
	sent := 0
	for start := 0; start < len(branches); start += batchSize {
		if sent == cs.phase1Count {
			signal()
			<-cs.resumeGate
		}
		end := min(start+batchSize, len(branches))
		if _, err := client.Predict(ctx, cs.id, "tsl-8k", branches[start:end]); err != nil {
			cs.err = err
			return
		}
		sent++
	}
	fin, err := client.CloseSession(ctx, cs.id)
	if err != nil {
		cs.err = err
		return
	}
	cs.final = fin.Stats
}

// TestChaosSuite is the robustness acceptance scenario, end to end: with
// 10% injected snapshot-save errors, 50ms injected latency on every batch
// execution, a single worker with a tight admission timeout, and one
// mid-run drain + restart (with the victim session's checkpoint
// bit-flipped in between), a retry-armed client must still deliver every
// checked session's full NodeApp stream with the exact same statistics as
// a local sim.Run — while at least one batch was shed with 429 and
// retried, and the corrupted checkpoint was quarantined instead of
// resurrecting bad state. Goroutine hygiene is asserted package-wide by
// TestMain.
func TestChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite takes several seconds of injected latency and backoff")
	}
	const (
		instrBudget = 60_000
		batchSize   = 1024
	)
	branches := workloadBranches(t, "nodeapp", instrBudget)
	nbatches := (len(branches) + batchSize - 1) / batchSize
	if nbatches < 5 {
		t.Fatalf("only %d batches; the scenario needs a drain strictly mid-stream", nbatches)
	}

	// Ground truth: the exact stream through a local simulation.
	p, err := NewPredictor("tsl-8k")
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Seed chosen so the drain saves deterministically hit the 10% error
	// rate at least once without ever failing one session three times in a
	// row (which would legitimately drop that checkpoint).
	inj := faults.New(20260825)
	inj.Set(FaultSnapshotSave, faults.Rule{ErrRate: 0.10})
	inj.Set(FaultBatchExec, faults.Rule{Latency: 50 * time.Millisecond})
	cfg := Config{
		SnapshotDir:  dir,
		Workers:      1,
		AdmitTimeout: 15 * time.Millisecond,
		SessionTTL:   time.Hour, // only drain checkpoints, never the janitor
		EvictEvery:   time.Hour,
		Faults:       inj,
	}

	srv1 := New(cfg)
	sw := &swapHandler{}
	sw.srv.Store(srv1)
	hs := httptest.NewServer(sw)
	t.Cleanup(func() { hs.Close(); sw.srv.Load().Close() })

	client := NewClient(hs.URL, hs.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 25,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
	})

	// Three checked sessions plus one victim whose checkpoint gets
	// corrupted during the restart window. All four release together, so
	// their first batches collide on the single worker slot and the
	// admission path must shed at least three of them.
	ids := []string{"chaos-0", "chaos-1", "chaos-2", "victim"}
	streams := make([]*chaosStream, len(ids))
	start := make(chan struct{})
	resume := make(chan struct{})
	var done sync.WaitGroup
	for i, id := range ids {
		cs := &chaosStream{id: id, phase1Count: 2, startGate: start, resumeGate: resume}
		cs.parked.Add(1)
		streams[i] = cs
		done.Add(1)
		go func() {
			defer done.Done()
			cs.run(client, branches, batchSize)
		}()
	}
	close(start)

	// Wait until every session has exactly two applied batches and its
	// streamer is parked at the barrier.
	for _, cs := range streams {
		cs.parked.Wait()
	}
	for _, cs := range streams {
		if cs.err != nil {
			t.Fatalf("session %s failed in phase 1: %v", cs.id, cs.err)
		}
	}

	// The "crash": drain checkpoints every session (each save runs against
	// the 10%% error rate plus the retry loop), the victim's checkpoint
	// rots on disk, then a cold Server takes over the same URL and
	// snapshot directory.
	finals := srv1.Drain()
	if len(finals) != len(ids) {
		t.Fatalf("drain flushed %d sessions, want %d", len(finals), len(ids))
	}
	victimSnap := filepath.Join(dir, "victim.snap")
	blob, err := os.ReadFile(victimSnap)
	if err != nil {
		t.Fatalf("victim checkpoint missing after drain (save retries exhausted?): %v", err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(victimSnap, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	srv2 := New(cfg)
	sw.srv.Store(srv2)
	close(resume)
	done.Wait()

	// Fidelity: every checked session agrees with the local simulation
	// bit for bit, despite shed batches, retries, and the restart.
	want := local.Measured
	for _, cs := range streams[:3] {
		if cs.err != nil {
			t.Fatalf("session %s: %v", cs.id, cs.err)
		}
		got := cs.final
		if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
			got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
			got.MPKI != local.MPKI() {
			t.Errorf("session %s diverges from local sim:\nserver %+v\nlocal  %+v (MPKI %v)",
				cs.id, got, want, local.MPKI())
		}
	}
	if victim := streams[3]; victim.err != nil {
		t.Fatalf("victim session: %v", victim.err)
	}

	// Revival accounting on the post-restart server: the three checked
	// sessions came back warm from their checkpoints; the victim's corrupt
	// checkpoint was quarantined and it alone cold-started.
	s2 := srv2.Stats()
	if s2.SnapshotRestores != 3 {
		t.Errorf("snapshot restores after restart = %d, want 3", s2.SnapshotRestores)
	}
	if s2.SessionsCreated != 1 {
		t.Errorf("cold session creations after restart = %d, want 1 (the victim)", s2.SessionsCreated)
	}
	if s2.SnapshotQuarantined != 1 {
		t.Errorf("snapshot_quarantined_total = %d, want 1", s2.SnapshotQuarantined)
	}
	if _, err := os.Stat(victimSnap + ".corrupt"); err != nil {
		t.Errorf("corrupt victim checkpoint not preserved for post-mortem: %v", err)
	}

	// Overload really happened and the client rode it out.
	shed := srv1.Stats().Shed + s2.Shed
	if shed < 1 {
		t.Errorf("shed = %d, want >= 1 (worker collision never shed a batch?)", shed)
	}
	if client.ShedSeen() < 1 || client.Retries() < 1 {
		t.Errorf("client saw %d sheds over %d retries, want >= 1 each", client.ShedSeen(), client.Retries())
	}

	// The save-error injection really bit — and the retry loop still kept
	// every checkpoint (proven above: 3 warm restores + 1 quarantined file).
	ss := inj.Stats(FaultSnapshotSave)
	t.Logf("chaos: %d batches/session, %d shed, %d client retries, save site %d calls / %d injected errors, %d quarantined",
		nbatches, shed, client.Retries(), ss.Calls, ss.Errors, s2.SnapshotQuarantined)
	if ss.Errors < 1 {
		t.Errorf("save fault site injected %d errors over %d calls, want >= 1 (seed drifted?)", ss.Errors, ss.Calls)
	}
}
