package serve

import "time"

// newTestSession builds a pool-less session for shard-map and janitor
// unit tests that exercise map mechanics without a Server.
func newTestSession(id, predictorName string) (*Session, error) {
	p, err := NewPredictor(predictorName)
	if err != nil {
		return nil, err
	}
	s := &Session{ID: id, PredictorName: predictorName, pred: p, created: time.Now()}
	s.touch()
	return s, nil
}
