package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"llbpx/internal/obs"
	"llbpx/internal/patternpool"
	"llbpx/internal/stats"
)

// Histogram shapes. Latency histograms use power-of-two microsecond
// buckets (28 buckets cover ~134 s); session lifetimes use millisecond
// buckets (~1.5 days); queue depth uses value buckets sized for worker
// counts.
const (
	latencyBuckets  = 28
	lifetimeBuckets = 28
	depthBuckets    = 12
)

// metrics is the server's observability surface, built on internal/obs:
// lock-free counters and histograms registered once at construction, plus
// computed series (uptime, live sessions, per-predictor aggregates,
// per-shard latency quantiles) contributed at render time. Only the
// per-predictor aggregate takes a (short, uncontended) mutex on the
// request path.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	sessionsCreated *obs.Counter
	sessionsEvicted *obs.Counter
	sessionsClosed  *obs.Counter
	batches         *obs.Counter
	branches        *obs.Counter
	rejected        *obs.Counter // batches refused while draining
	shed            *obs.Counter // batches shed with 429 (no worker slot within AdmitTimeout)
	cancelled       *obs.Counter // batches abandoned because the client went away pre-execution

	snapshotSaves       *obs.Counter // sessions checkpointed to disk
	snapshotRestores    *obs.Counter // sessions rebuilt from a checkpoint
	snapshotSaveErrors  *obs.Counter // failed checkpoint write attempts (retries count individually)
	snapshotQuarantined *obs.Counter // corrupt checkpoints renamed *.corrupt

	sessionsExported *obs.Counter // admin checkpoint exports served
	sessionsImported *obs.Counter // admin checkpoint imports installed

	storeSpills *obs.Counter // sessions spilled by pattern-pool budget pressure

	replicaShips       *obs.Counter // checkpoint ships delivered to a standby
	replicaShipErrors  *obs.Counter // ship attempts lost (fault, transport, fence, export)
	replicaShipBytes   *obs.Counter // framed replica bytes delivered
	replicaInstalls    *obs.Counter // standby installs accepted from a primary
	replicaStaleEpochs *obs.Counter // ships/imports/promotes rejected by the epoch fence
	replicaPromotions  *obs.Counter // standbys promoted into the live session map

	// standbyCount supplies the instantaneous warm-standby session count
	// (it lives in the server's standby table, not here).
	standbyCount func() int

	// store is the shared pattern pool; its gauges and counters are
	// rendered from the pool's own atomics at collect time.
	store *patternpool.Pool

	// Binary-protocol (internal/wire) series, incremented by the wire
	// listener through WireMetrics. They live on the same registry as the
	// HTTP families so one /metrics scrape covers both protocols.
	wire WireMetrics

	batchLatency    *obs.Histogram   // one sample per executed batch, µs
	shardLatency    []*obs.Histogram // batch latency split by session shard, µs
	queueDepth      *obs.Histogram   // busy worker-pool slots at batch admission
	snapSaveDur     *obs.Histogram   // snapshot checkpoint write duration, µs
	snapRestoreDur  *obs.Histogram   // snapshot restore duration, µs
	sessionLifetime *obs.Histogram   // closed/evicted session in-memory lifetime, ms

	mu      sync.Mutex
	perPred map[string]*stats.BranchStats
}

// newMetrics builds the metric set. live supplies the instantaneous
// per-predictor and total live-session counts (they live in the shard
// map, not here) for both the JSON snapshot and the text exposition.
func newMetrics(shards int, live func() (map[string]int, int), store *patternpool.Pool) *metrics {
	reg := obs.NewRegistry("llbpd_")
	m := &metrics{
		start: time.Now(),
		reg:   reg,
		store: store,

		sessionsCreated: reg.Counter("sessions_created_total"),
		sessionsEvicted: reg.Counter("sessions_evicted_total"),
		sessionsClosed:  reg.Counter("sessions_closed_total"),
		batches:         reg.Counter("batches_total"),
		branches:        reg.Counter("branches_total"),
		rejected:        reg.Counter("batches_rejected_total"),
		shed:            reg.Counter("batches_shed_total"),
		cancelled:       reg.Counter("batches_cancelled_total"),

		snapshotSaves:       reg.Counter("snapshot_saves_total"),
		snapshotRestores:    reg.Counter("snapshot_restores_total"),
		snapshotSaveErrors:  reg.Counter("snapshot_save_errors_total"),
		snapshotQuarantined: reg.Counter("snapshot_quarantined_total"),

		sessionsExported: reg.Counter("sessions_exported_total"),
		sessionsImported: reg.Counter("sessions_imported_total"),

		storeSpills: reg.Counter("store_spills_total"),

		replicaShips:       reg.Counter("replica_ships_total"),
		replicaShipErrors:  reg.Counter("replica_ship_errors_total"),
		replicaShipBytes:   reg.Counter("replica_ship_bytes_total"),
		replicaInstalls:    reg.Counter("replica_installs_total"),
		replicaStaleEpochs: reg.Counter("replica_stale_epochs_total"),
		replicaPromotions:  reg.Counter("replica_promotions_total"),

		batchLatency:    reg.Histogram("batch_latency_us", latencyBuckets),
		queueDepth:      reg.Histogram("batch_queue_depth", depthBuckets),
		snapSaveDur:     reg.Histogram("snapshot_save_duration_us", latencyBuckets),
		snapRestoreDur:  reg.Histogram("snapshot_restore_duration_us", latencyBuckets),
		sessionLifetime: reg.Histogram("session_lifetime_ms", lifetimeBuckets),

		wire: WireMetrics{
			FramesRx:     reg.Counter("wire_frames_rx_total"),
			FramesTx:     reg.Counter("wire_frames_tx_total"),
			BytesRx:      reg.Counter("wire_bytes_rx_total"),
			BytesTx:      reg.Counter("wire_bytes_tx_total"),
			Nacks:        reg.Counter("wire_nacks_total"),
			Conns:        reg.Counter("wire_conns_total"),
			FrameLatency: reg.Histogram("wire_frame_latency_us", latencyBuckets),
		},

		perPred: make(map[string]*stats.BranchStats),
	}
	m.shardLatency = make([]*obs.Histogram, shards)
	for i := range m.shardLatency {
		m.shardLatency[i] = obs.NewHistogram(latencyBuckets)
	}

	reg.GaugeFunc("uptime_seconds", func() float64 { return time.Since(m.start).Seconds() })
	reg.GaugeFunc("branches_per_second", func() float64 {
		if up := time.Since(m.start).Seconds(); up > 0 {
			return float64(m.branches.Value()) / up
		}
		return 0
	})
	reg.GaugeFunc("batch_latency_p50_us", func() float64 { return m.batchLatency.Quantile(0.50) })
	reg.GaugeFunc("batch_latency_p90_us", func() float64 { return m.batchLatency.Quantile(0.90) })
	reg.GaugeFunc("batch_latency_p99_us", func() float64 { return m.batchLatency.Quantile(0.99) })
	reg.GaugeFunc("batch_latency_p999_us", func() float64 { return m.batchLatency.Quantile(0.999) })

	// Shared pattern-pool series, read straight from the pool's atomics.
	reg.GaugeFunc("store_budget_bytes", func() float64 { return float64(store.Budget()) })
	reg.GaugeFunc("store_resident_bytes", func() float64 { return float64(store.TotalBytes()) })
	reg.GaugeFunc("store_attached_bytes", func() float64 { return float64(store.AttachedBytes()) })
	reg.GaugeFunc("store_frozen_bytes", func() float64 { return float64(store.FrozenBytes()) })
	reg.GaugeFunc("store_arena_bytes", func() float64 { return float64(store.ArenaBytes()) })
	reg.GaugeFunc("store_namespaces", func() float64 { return float64(store.Namespaces()) })
	reg.GaugeFunc("store_frozen_sessions", func() float64 { return float64(store.FrozenCount()) })

	// Warm standby sessions held for other primaries (set by the server
	// after construction; guard for metrics built in isolation by tests).
	reg.GaugeFunc("replica_standby_sessions", func() float64 {
		if m.standbyCount == nil {
			return 0
		}
		return float64(m.standbyCount())
	})

	reg.OnCollect(func(w *obs.ExpoWriter) { m.collect(w, live) })
	return m
}

// observeBatch records one executed batch: its stats delta, its predictor
// attribution, its service latency (globally and per session shard), and
// the worker-pool depth seen at admission.
func (m *metrics) observeBatch(predictor string, shard int, delta stats.BranchStats, d time.Duration, depth int) {
	m.batches.Inc()
	m.branches.Add(delta.CondBranches + delta.UncondCount)
	m.batchLatency.ObserveDuration(d)
	if shard >= 0 && shard < len(m.shardLatency) {
		m.shardLatency[shard].ObserveDuration(d)
	}
	m.queueDepth.Observe(uint64(depth))
	m.mu.Lock()
	agg := m.perPred[predictor]
	if agg == nil {
		agg = &stats.BranchStats{}
		m.perPred[predictor] = agg
	}
	agg.Add(delta)
	m.mu.Unlock()
}

// observeSessionEnd records a closed or evicted session's in-memory
// lifetime.
func (m *metrics) observeSessionEnd(sess *Session) {
	ms := time.Since(sess.created).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	m.sessionLifetime.Observe(uint64(ms))
}

// collect contributes the computed series to the text exposition: live
// session gauges, per-predictor aggregates, and per-shard batch-latency
// quantiles.
func (m *metrics) collect(w *obs.ExpoWriter, live func() (map[string]int, int)) {
	byPred, total := live()
	w.Family("sessions_live", "gauge")
	w.Value("sessions_live", float64(total))

	m.mu.Lock()
	type predAgg struct {
		name string
		agg  stats.BranchStats
	}
	preds := make([]predAgg, 0, len(m.perPred))
	for name, agg := range m.perPred {
		preds = append(preds, predAgg{name, *agg})
	}
	m.mu.Unlock()
	sort.Slice(preds, func(i, j int) bool { return preds[i].name < preds[j].name })

	if len(preds) > 0 {
		w.Family("predictor_mpki", "gauge")
		for _, p := range preds {
			w.Labeled("predictor_mpki", predLabel(p.name), p.agg.MPKI())
		}
		w.Family("predictor_branches_total", "counter")
		for _, p := range preds {
			w.LabeledInt("predictor_branches_total", predLabel(p.name), p.agg.CondBranches)
		}
		w.Family("predictor_mispredicts_total", "counter")
		for _, p := range preds {
			w.LabeledInt("predictor_mispredicts_total", predLabel(p.name), p.agg.Mispredicts)
		}
	}

	liveNames := make([]string, 0, len(byPred))
	for name := range byPred {
		liveNames = append(liveNames, name)
	}
	sort.Strings(liveNames)
	if len(liveNames) > 0 {
		w.Family("predictor_sessions_live", "gauge")
		for _, name := range liveNames {
			w.LabeledInt("predictor_sessions_live", predLabel(name), uint64(byPred[name]))
		}
	}

	// Pattern-pool lifecycle counters live in the pool (one snapshot read
	// here), plus the per-tenant attached-bytes breakdown.
	pc := m.store.CountersSnapshot()
	w.Family("store_freezes_total", "counter")
	w.Value("store_freezes_total", float64(pc.Freezes))
	w.Family("store_thaws_total", "counter")
	w.Value("store_thaws_total", float64(pc.Thaws))
	w.Family("store_shared_restores_total", "counter")
	w.Value("store_shared_restores_total", float64(pc.SharedRestores))
	w.Family("store_dedup_hits_total", "counter")
	w.Value("store_dedup_hits_total", float64(pc.DedupHits))
	w.Family("store_frozen_evictions_total", "counter")
	w.Value("store_frozen_evictions_total", float64(pc.FrozenEvictions))

	w.Family("store_tenant_bytes", "gauge")
	tb := m.store.TenantBytes()
	tenants := make([]string, 0, len(tb))
	for t := range tb {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		w.Labeled("store_tenant_bytes", fmt.Sprintf("tenant=%q", t), float64(tb[t]))
	}

	w.Family("shard_batch_latency_us", "gauge")
	for i, h := range m.shardLatency {
		if h.Count() == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.99", 0.99}} {
			w.Labeled("shard_batch_latency_us",
				fmt.Sprintf(`shard="%d",quantile="%s"`, i, q.label), h.Quantile(q.q))
		}
	}
}

func predLabel(name string) string { return fmt.Sprintf("predictor=%q", name) }

// WireMetrics is the binary protocol's slice of the server's metrics
// registry: frame and byte counters per direction, NACKs, accepted
// connections, and the request-frame service-latency histogram
// (read-complete to response-encoded, µs). internal/wire increments
// these through Server.WireMetrics so both protocols share one
// registry, one exposition, and one golden lock test.
type WireMetrics struct {
	FramesRx     *obs.Counter
	FramesTx     *obs.Counter
	BytesRx      *obs.Counter
	BytesTx      *obs.Counter
	Nacks        *obs.Counter
	Conns        *obs.Counter
	FrameLatency *obs.Histogram
}

// WireMetrics exposes the binary-protocol metric set for the wire
// listener.
func (s *Server) WireMetrics() *WireMetrics { return &s.metrics.wire }

// PredictorStats is the wire form of a per-predictor aggregate.
type PredictorStats struct {
	Instructions uint64  `json:"instructions"`
	CondBranches uint64  `json:"cond_branches"`
	Mispredicts  uint64  `json:"mispredicts"`
	MPKI         float64 `json:"mpki"`
}

// StatsSnapshot is the wire form of GET /v1/stats.
type StatsSnapshot struct {
	UptimeSec       float64                   `json:"uptime_sec"`
	SessionsLive    int                       `json:"sessions_live"`
	SessionsCreated uint64                    `json:"sessions_created"`
	SessionsEvicted uint64                    `json:"sessions_evicted"`
	SessionsClosed  uint64                    `json:"sessions_closed"`
	Batches         uint64                    `json:"batches"`
	Branches        uint64                    `json:"branches"`
	Rejected        uint64                    `json:"rejected"`
	Shed            uint64                    `json:"shed"`
	Cancelled       uint64                    `json:"cancelled"`
	BranchesPerSec  float64                   `json:"branches_per_sec"`
	LatencyP50Us    float64                   `json:"batch_latency_p50_us"`
	LatencyP90Us    float64                   `json:"batch_latency_p90_us"`
	LatencyP99Us    float64                   `json:"batch_latency_p99_us"`
	LatencyP999Us   float64                   `json:"batch_latency_p999_us"`
	QueueDepthP50   float64                   `json:"batch_queue_depth_p50"`
	QueueDepthP99   float64                   `json:"batch_queue_depth_p99"`
	Predictors      map[string]PredictorStats `json:"predictors"`

	SnapshotSaves        uint64  `json:"snapshot_saves"`
	SnapshotRestores     uint64  `json:"snapshot_restores"`
	SnapshotSaveErrors   uint64  `json:"snapshot_save_errors"`
	SnapshotQuarantined  uint64  `json:"snapshot_quarantined"`
	SnapshotSaveP99Us    float64 `json:"snapshot_save_p99_us"`
	SnapshotRestoreP99Us float64 `json:"snapshot_restore_p99_us"`

	// Replica* summarize hot-standby replication: primary-side ship
	// outcomes, standby-side installs and fence rejections, promotions
	// into the live map, and the warm-standby count.
	ReplicaShips           uint64 `json:"replica_ships"`
	ReplicaShipErrors      uint64 `json:"replica_ship_errors"`
	ReplicaShipBytes       uint64 `json:"replica_ship_bytes"`
	ReplicaInstalls        uint64 `json:"replica_installs"`
	ReplicaStaleEpochs     uint64 `json:"replica_stale_epochs"`
	ReplicaPromotions      uint64 `json:"replica_promotions"`
	ReplicaStandbySessions int    `json:"replica_standby_sessions"`

	// Wire* summarize the binary streaming protocol (internal/wire):
	// frames and bytes per direction, NACK frames sent, connections
	// accepted, and the p99 frame service latency.
	WireFramesRx      uint64  `json:"wire_frames_rx"`
	WireFramesTx      uint64  `json:"wire_frames_tx"`
	WireBytesRx       uint64  `json:"wire_bytes_rx"`
	WireBytesTx       uint64  `json:"wire_bytes_tx"`
	WireNacks         uint64  `json:"wire_nacks"`
	WireConns         uint64  `json:"wire_conns"`
	WireFrameLatP99Us float64 `json:"wire_frame_latency_p99_us"`

	// SessionLifetimeP50Ms / P99Ms summarize closed and evicted sessions'
	// in-memory lifetimes.
	SessionLifetimeP50Ms float64 `json:"session_lifetime_p50_ms"`
	SessionLifetimeP99Ms float64 `json:"session_lifetime_p99_ms"`
	// SessionsLiveByPredictor counts live sessions per predictor name.
	SessionsLiveByPredictor map[string]int `json:"sessions_live_by_predictor"`

	// Store* summarize the shared memory-budgeted pattern pool: the
	// configured budget (0 = unlimited), the resident-byte breakdown
	// (attached = live sessions' pattern storage, frozen = evicted
	// sessions' deduplicated blobs, arena = recycled slabs awaiting
	// reuse), lifecycle counters, and the per-tenant attached-bytes
	// quota view.
	StoreBudgetBytes     int64            `json:"store_budget_bytes"`
	StoreResidentBytes   int64            `json:"store_resident_bytes"`
	StoreAttachedBytes   int64            `json:"store_attached_bytes"`
	StoreFrozenBytes     int64            `json:"store_frozen_bytes"`
	StoreArenaBytes      int64            `json:"store_arena_bytes"`
	StoreNamespaces      int              `json:"store_namespaces"`
	StoreFrozenSessions  int              `json:"store_frozen_sessions"`
	StoreSpills          uint64           `json:"store_spills"`
	StoreFreezes         uint64           `json:"store_freezes"`
	StoreThaws           uint64           `json:"store_thaws"`
	StoreSharedRestores  uint64           `json:"store_shared_restores"`
	StoreDedupHits       uint64           `json:"store_dedup_hits"`
	StoreFrozenEvictions uint64           `json:"store_frozen_evictions"`
	StoreTenantBytes     map[string]int64 `json:"store_tenant_bytes"`
}

// snapshot assembles the full snapshot; the live-session counts are
// supplied by the server (they live in the shard map, not here).
func (m *metrics) snapshot(sessionsLive int, byPred map[string]int) StatsSnapshot {
	up := time.Since(m.start).Seconds()
	branches := m.branches.Value()
	snap := StatsSnapshot{
		UptimeSec:       up,
		SessionsLive:    sessionsLive,
		SessionsCreated: m.sessionsCreated.Value(),
		SessionsEvicted: m.sessionsEvicted.Value(),
		SessionsClosed:  m.sessionsClosed.Value(),
		Batches:         m.batches.Value(),
		Branches:        branches,
		Rejected:        m.rejected.Value(),
		Shed:            m.shed.Value(),
		Cancelled:       m.cancelled.Value(),
		LatencyP50Us:    m.batchLatency.Quantile(0.50),
		LatencyP90Us:    m.batchLatency.Quantile(0.90),
		LatencyP99Us:    m.batchLatency.Quantile(0.99),
		LatencyP999Us:   m.batchLatency.Quantile(0.999),
		QueueDepthP50:   m.queueDepth.Quantile(0.50),
		QueueDepthP99:   m.queueDepth.Quantile(0.99),
		Predictors:      make(map[string]PredictorStats),

		SnapshotSaves:        m.snapshotSaves.Value(),
		SnapshotRestores:     m.snapshotRestores.Value(),
		SnapshotSaveErrors:   m.snapshotSaveErrors.Value(),
		SnapshotQuarantined:  m.snapshotQuarantined.Value(),
		SnapshotSaveP99Us:    m.snapSaveDur.Quantile(0.99),
		SnapshotRestoreP99Us: m.snapRestoreDur.Quantile(0.99),

		ReplicaShips:       m.replicaShips.Value(),
		ReplicaShipErrors:  m.replicaShipErrors.Value(),
		ReplicaShipBytes:   m.replicaShipBytes.Value(),
		ReplicaInstalls:    m.replicaInstalls.Value(),
		ReplicaStaleEpochs: m.replicaStaleEpochs.Value(),
		ReplicaPromotions:  m.replicaPromotions.Value(),

		WireFramesRx:      m.wire.FramesRx.Value(),
		WireFramesTx:      m.wire.FramesTx.Value(),
		WireBytesRx:       m.wire.BytesRx.Value(),
		WireBytesTx:       m.wire.BytesTx.Value(),
		WireNacks:         m.wire.Nacks.Value(),
		WireConns:         m.wire.Conns.Value(),
		WireFrameLatP99Us: m.wire.FrameLatency.Quantile(0.99),

		SessionLifetimeP50Ms:    m.sessionLifetime.Quantile(0.50),
		SessionLifetimeP99Ms:    m.sessionLifetime.Quantile(0.99),
		SessionsLiveByPredictor: byPred,
	}
	if m.standbyCount != nil {
		snap.ReplicaStandbySessions = m.standbyCount()
	}
	pc := m.store.CountersSnapshot()
	snap.StoreBudgetBytes = m.store.Budget()
	snap.StoreResidentBytes = m.store.TotalBytes()
	snap.StoreAttachedBytes = m.store.AttachedBytes()
	snap.StoreFrozenBytes = m.store.FrozenBytes()
	snap.StoreArenaBytes = m.store.ArenaBytes()
	snap.StoreNamespaces = m.store.Namespaces()
	snap.StoreFrozenSessions = m.store.FrozenCount()
	snap.StoreSpills = m.storeSpills.Value()
	snap.StoreFreezes = pc.Freezes
	snap.StoreThaws = pc.Thaws
	snap.StoreSharedRestores = pc.SharedRestores
	snap.StoreDedupHits = pc.DedupHits
	snap.StoreFrozenEvictions = pc.FrozenEvictions
	snap.StoreTenantBytes = m.store.TenantBytes()
	if up > 0 {
		snap.BranchesPerSec = float64(branches) / up
	}
	m.mu.Lock()
	for name, agg := range m.perPred {
		snap.Predictors[name] = PredictorStats{
			Instructions: agg.Instructions,
			CondBranches: agg.CondBranches,
			Mispredicts:  agg.Mispredicts,
			MPKI:         agg.MPKI(),
		}
	}
	m.mu.Unlock()
	return snap
}
