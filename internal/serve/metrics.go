package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"llbpx/internal/stats"
)

// latencyBuckets is the number of power-of-two microsecond buckets in the
// batch-latency histogram; bucket i counts batches with latency in
// [2^(i-1), 2^i) µs, so the top bucket covers ~134 s.
const latencyBuckets = 28

// metrics is the server's lock-free observability surface. Counters are
// atomics bumped on the request path; only the per-predictor aggregate
// takes a (short, uncontended) mutex.
type metrics struct {
	start time.Time

	sessionsCreated atomic.Uint64
	sessionsEvicted atomic.Uint64
	sessionsClosed  atomic.Uint64
	batches         atomic.Uint64
	branches        atomic.Uint64
	rejected        atomic.Uint64 // batches refused while draining

	snapshotSaves      atomic.Uint64 // sessions checkpointed to disk
	snapshotRestores   atomic.Uint64 // sessions rebuilt from a checkpoint
	snapshotSaveErrors atomic.Uint64 // failed checkpoint writes

	latency [latencyBuckets]atomic.Uint64

	mu      sync.Mutex
	perPred map[string]*stats.BranchStats
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), perPred: make(map[string]*stats.BranchStats)}
}

// observeBatch records one executed batch: its stats delta, its predictor
// attribution, and its service latency.
func (m *metrics) observeBatch(predictor string, delta stats.BranchStats, d time.Duration) {
	m.batches.Add(1)
	m.branches.Add(delta.CondBranches + delta.UncondCount)
	m.latency[latencyBucket(d)].Add(1)
	m.mu.Lock()
	agg := m.perPred[predictor]
	if agg == nil {
		agg = &stats.BranchStats{}
		m.perPred[predictor] = agg
	}
	agg.Add(delta)
	m.mu.Unlock()
}

// latencyBucket maps a duration to its histogram bucket index.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 0 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// bucketUpperUs is the inclusive upper bound of bucket b in microseconds.
func bucketUpperUs(b int) float64 { return float64(uint64(1) << b) }

// latencyQuantile returns the approximate q-quantile of batch latency in
// microseconds (the upper bound of the bucket holding the q-th sample), or
// 0 with no samples.
func (m *metrics) latencyQuantile(q float64) float64 {
	var counts [latencyBuckets]uint64
	var total uint64
	for i := range m.latency {
		counts[i] = m.latency[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return bucketUpperUs(i)
		}
	}
	return bucketUpperUs(latencyBuckets - 1)
}

// PredictorStats is the wire form of a per-predictor aggregate.
type PredictorStats struct {
	Instructions uint64  `json:"instructions"`
	CondBranches uint64  `json:"cond_branches"`
	Mispredicts  uint64  `json:"mispredicts"`
	MPKI         float64 `json:"mpki"`
}

// StatsSnapshot is the wire form of GET /v1/stats.
type StatsSnapshot struct {
	UptimeSec       float64                   `json:"uptime_sec"`
	SessionsLive    int                       `json:"sessions_live"`
	SessionsCreated uint64                    `json:"sessions_created"`
	SessionsEvicted uint64                    `json:"sessions_evicted"`
	SessionsClosed  uint64                    `json:"sessions_closed"`
	Batches         uint64                    `json:"batches"`
	Branches        uint64                    `json:"branches"`
	Rejected        uint64                    `json:"rejected"`
	BranchesPerSec  float64                   `json:"branches_per_sec"`
	LatencyP50Us    float64                   `json:"batch_latency_p50_us"`
	LatencyP99Us    float64                   `json:"batch_latency_p99_us"`
	Predictors      map[string]PredictorStats `json:"predictors"`

	SnapshotSaves      uint64 `json:"snapshot_saves"`
	SnapshotRestores   uint64 `json:"snapshot_restores"`
	SnapshotSaveErrors uint64 `json:"snapshot_save_errors"`
	// SessionsLiveByPredictor counts live sessions per predictor name.
	SessionsLiveByPredictor map[string]int `json:"sessions_live_by_predictor"`
}

// snapshot assembles the full snapshot; the live-session counts are
// supplied by the server (they live in the shard map, not here).
func (m *metrics) snapshot(sessionsLive int, byPred map[string]int) StatsSnapshot {
	up := time.Since(m.start).Seconds()
	branches := m.branches.Load()
	snap := StatsSnapshot{
		UptimeSec:       up,
		SessionsLive:    sessionsLive,
		SessionsCreated: m.sessionsCreated.Load(),
		SessionsEvicted: m.sessionsEvicted.Load(),
		SessionsClosed:  m.sessionsClosed.Load(),
		Batches:         m.batches.Load(),
		Branches:        branches,
		Rejected:        m.rejected.Load(),
		LatencyP50Us:    m.latencyQuantile(0.50),
		LatencyP99Us:    m.latencyQuantile(0.99),
		Predictors:      make(map[string]PredictorStats),

		SnapshotSaves:           m.snapshotSaves.Load(),
		SnapshotRestores:        m.snapshotRestores.Load(),
		SnapshotSaveErrors:      m.snapshotSaveErrors.Load(),
		SessionsLiveByPredictor: byPred,
	}
	if up > 0 {
		snap.BranchesPerSec = float64(branches) / up
	}
	m.mu.Lock()
	for name, agg := range m.perPred {
		snap.Predictors[name] = PredictorStats{
			Instructions: agg.Instructions,
			CondBranches: agg.CondBranches,
			Mispredicts:  agg.Mispredicts,
			MPKI:         agg.MPKI(),
		}
	}
	m.mu.Unlock()
	return snap
}

// writeProm renders the snapshot in Prometheus text exposition format for
// GET /metrics.
func (snap StatsSnapshot) writeProm(w io.Writer) {
	p := func(name string, v float64) { fmt.Fprintf(w, "llbpd_%s %g\n", name, v) }
	p("uptime_seconds", snap.UptimeSec)
	p("sessions_live", float64(snap.SessionsLive))
	p("sessions_created_total", float64(snap.SessionsCreated))
	p("sessions_evicted_total", float64(snap.SessionsEvicted))
	p("sessions_closed_total", float64(snap.SessionsClosed))
	p("batches_total", float64(snap.Batches))
	p("branches_total", float64(snap.Branches))
	p("batches_rejected_total", float64(snap.Rejected))
	p("branches_per_second", snap.BranchesPerSec)
	p("batch_latency_p50_us", snap.LatencyP50Us)
	p("batch_latency_p99_us", snap.LatencyP99Us)
	p("snapshot_saves_total", float64(snap.SnapshotSaves))
	p("snapshot_restores_total", float64(snap.SnapshotRestores))
	p("snapshot_save_errors_total", float64(snap.SnapshotSaveErrors))
	names := make([]string, 0, len(snap.Predictors))
	for name := range snap.Predictors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := snap.Predictors[name]
		fmt.Fprintf(w, "llbpd_predictor_mpki{predictor=%q} %g\n", name, ps.MPKI)
		fmt.Fprintf(w, "llbpd_predictor_branches_total{predictor=%q} %d\n", name, ps.CondBranches)
		fmt.Fprintf(w, "llbpd_predictor_mispredicts_total{predictor=%q} %d\n", name, ps.Mispredicts)
	}
	liveNames := make([]string, 0, len(snap.SessionsLiveByPredictor))
	for name := range snap.SessionsLiveByPredictor {
		liveNames = append(liveNames, name)
	}
	sort.Strings(liveNames)
	for _, name := range liveNames {
		fmt.Fprintf(w, "llbpd_predictor_sessions_live{predictor=%q} %d\n",
			name, snap.SessionsLiveByPredictor[name])
	}
}
