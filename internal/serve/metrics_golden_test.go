package serve

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// goldenFamilies is the complete expected set of /metrics families and
// their types. This is the exposition contract dashboards are built on:
// adding a family is fine (add it here), but renaming or retyping one is
// a breaking change this test is meant to flag.
var goldenFamilies = map[string]string{
	"llbpd_uptime_seconds":               "gauge",
	"llbpd_sessions_live":                "gauge",
	"llbpd_sessions_created_total":       "counter",
	"llbpd_sessions_evicted_total":       "counter",
	"llbpd_sessions_closed_total":        "counter",
	"llbpd_batches_total":                "counter",
	"llbpd_branches_total":               "counter",
	"llbpd_batches_rejected_total":       "counter",
	"llbpd_batches_shed_total":           "counter",
	"llbpd_batches_cancelled_total":      "counter",
	"llbpd_branches_per_second":          "gauge",
	"llbpd_batch_latency_p50_us":         "gauge",
	"llbpd_batch_latency_p90_us":         "gauge",
	"llbpd_batch_latency_p99_us":         "gauge",
	"llbpd_batch_latency_p999_us":        "gauge",
	"llbpd_batch_latency_us":             "histogram",
	"llbpd_batch_queue_depth":            "histogram",
	"llbpd_session_lifetime_ms":          "histogram",
	"llbpd_snapshot_save_duration_us":    "histogram",
	"llbpd_snapshot_restore_duration_us": "histogram",
	"llbpd_snapshot_saves_total":         "counter",
	"llbpd_snapshot_restores_total":      "counter",
	"llbpd_snapshot_save_errors_total":   "counter",
	"llbpd_snapshot_quarantined_total":   "counter",
	"llbpd_sessions_exported_total":      "counter",
	"llbpd_sessions_imported_total":      "counter",
	"llbpd_replica_ships_total":          "counter",
	"llbpd_replica_ship_errors_total":    "counter",
	"llbpd_replica_ship_bytes_total":     "counter",
	"llbpd_replica_installs_total":       "counter",
	"llbpd_replica_stale_epochs_total":   "counter",
	"llbpd_replica_promotions_total":     "counter",
	"llbpd_replica_standby_sessions":     "gauge",
	"llbpd_wire_frames_rx_total":         "counter",
	"llbpd_wire_frames_tx_total":         "counter",
	"llbpd_wire_bytes_rx_total":          "counter",
	"llbpd_wire_bytes_tx_total":          "counter",
	"llbpd_wire_nacks_total":             "counter",
	"llbpd_wire_conns_total":             "counter",
	"llbpd_wire_frame_latency_us":        "histogram",
	"llbpd_store_budget_bytes":           "gauge",
	"llbpd_store_resident_bytes":         "gauge",
	"llbpd_store_attached_bytes":         "gauge",
	"llbpd_store_frozen_bytes":           "gauge",
	"llbpd_store_arena_bytes":            "gauge",
	"llbpd_store_namespaces":             "gauge",
	"llbpd_store_frozen_sessions":        "gauge",
	"llbpd_store_tenant_bytes":           "gauge",
	"llbpd_store_spills_total":           "counter",
	"llbpd_store_freezes_total":          "counter",
	"llbpd_store_thaws_total":            "counter",
	"llbpd_store_shared_restores_total":  "counter",
	"llbpd_store_dedup_hits_total":       "counter",
	"llbpd_store_frozen_evictions_total": "counter",
	"llbpd_predictor_mpki":               "gauge",
	"llbpd_predictor_branches_total":     "counter",
	"llbpd_predictor_mispredicts_total":  "counter",
	"llbpd_predictor_sessions_live":      "gauge",
	"llbpd_shard_batch_latency_us":       "gauge",
}

// TestMetricsGoldenExposition locks the /metrics exposition format: the
// exact family set with exact types, plus structural well-formedness of
// every histogram (cumulative monotone buckets, +Inf == _count).
func TestMetricsGoldenExposition(t *testing.T) {
	srv, client := testServer(t, Config{})
	branches := workloadBranches(t, "kafka", 20_000)
	sendInBatches(t, client, "g1", "tsl-8k", branches, 512)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	// Collect "# TYPE <name> <type>" declarations.
	got := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("malformed TYPE line: %q", line)
		}
		if _, dup := got[fields[2]]; dup {
			t.Fatalf("family %q declared twice", fields[2])
		}
		got[fields[2]] = fields[3]
	}
	for name, typ := range goldenFamilies {
		if got[name] != typ {
			t.Errorf("family %q: type %q, want %q", name, got[name], typ)
		}
	}
	for name, typ := range got {
		if goldenFamilies[name] != typ {
			t.Errorf("unexpected family %q (%s) — extend goldenFamilies if intentional", name, typ)
		}
	}

	// Histogram well-formedness per family: cumulative buckets never
	// decrease and the +Inf bucket equals _count.
	for name, typ := range goldenFamilies {
		if typ != "histogram" {
			continue
		}
		var last, inf, count uint64
		var sawInf, sawCount bool
		sc := bufio.NewScanner(strings.NewReader(body))
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, name+"_bucket{le="):
				v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("%s: bad bucket line %q: %v", name, line, err)
				}
				if v < last {
					t.Fatalf("%s: cumulative bucket decreased (%d -> %d): %q", name, last, v, line)
				}
				last = v
				if strings.Contains(line, `le="+Inf"`) {
					inf, sawInf = v, true
				}
			case strings.HasPrefix(line, name+"_count "):
				v, err := strconv.ParseUint(strings.TrimPrefix(line, name+"_count "), 10, 64)
				if err != nil {
					t.Fatalf("%s: bad count line %q: %v", name, line, err)
				}
				count, sawCount = v, true
			}
		}
		if !sawInf || !sawCount {
			t.Fatalf("%s: histogram missing +Inf bucket or _count", name)
		}
		if inf != count {
			t.Fatalf("%s: +Inf bucket %d != count %d", name, inf, count)
		}
	}

	// Traffic must actually have landed in the latency histogram.
	if !strings.Contains(body, "llbpd_batch_latency_us_count") {
		t.Fatal("latency histogram absent")
	}
	sc2 := bufio.NewScanner(strings.NewReader(body))
	for sc2.Scan() {
		line := sc2.Text()
		if strings.HasPrefix(line, "llbpd_batch_latency_us_count ") {
			if n, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64); n == 0 {
				t.Fatal("latency histogram empty after traffic")
			}
		}
	}
}
