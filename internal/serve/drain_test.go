package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEvictionTTL verifies the janitor removes idle sessions after the
// TTL and that a later batch transparently recreates the session.
func TestEvictionTTL(t *testing.T) {
	srv, client := testServer(t, Config{SessionTTL: 150 * time.Millisecond, EvictEvery: 10 * time.Millisecond})
	ctx := context.Background()
	batch := syntheticBatch(1, 16)

	for i := 0; i < 3; i++ {
		if _, err := client.Predict(ctx, fmt.Sprintf("ttl-%d", i), "tsl-8k", batch); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Sessions() != 3 {
		t.Fatalf("sessions = %d, want 3", srv.Sessions())
	}

	deadline := time.Now().Add(2 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("janitor never evicted; %d sessions still live", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if snap := srv.Stats(); snap.SessionsEvicted != 3 {
		t.Fatalf("evicted counter = %d, want 3", snap.SessionsEvicted)
	}

	// The same ID now creates a fresh session (stats restart from zero).
	resp, err := client.Predict(ctx, "ttl-0", "tsl-8k", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Created || resp.Stats.Batches != 1 {
		t.Fatalf("expected fresh session after eviction, got %+v", resp)
	}
}

// TestEvictIdleSkipsFreshSessions pins the cutoff logic directly.
func TestEvictIdleSkipsFreshSessions(t *testing.T) {
	sm := newShardMap(2)
	old, _ := newTestSession("old", "tsl-8k")
	old.lastUsed.Store(time.Now().Add(-time.Hour).UnixNano())
	fresh, _ := newTestSession("fresh", "tsl-8k")
	sm.shard("old").m["old"] = old
	sm.shard("fresh").m["fresh"] = fresh

	evicted := sm.evictIdle(time.Now().Add(-time.Minute).UnixNano())
	if len(evicted) != 1 || evicted[0].ID != "old" {
		t.Fatalf("evicted %v, want [old]", evicted)
	}
	if sm.get("fresh") == nil {
		t.Fatal("fresh session must survive")
	}
	// A busy session (mutex held) is never evicted, even when idle.
	old2, _ := newTestSession("busy", "tsl-8k")
	old2.lastUsed.Store(time.Now().Add(-time.Hour).UnixNano())
	old2.mu.Lock()
	defer old2.mu.Unlock()
	sm.shard("busy").m["busy"] = old2
	if ev := sm.evictIdle(time.Now().Add(-time.Minute).UnixNano()); len(ev) != 0 {
		t.Fatalf("evicted a busy session: %v", ev)
	}
	if sm.get("busy") == nil {
		t.Fatal("busy session must survive eviction")
	}
}

// TestDrainDropsNoBatch races many streaming clients against Drain and
// asserts conservation: every batch is either fully executed and counted
// in the drain's final stats, or rejected whole with 503 — never
// partially applied, never lost.
func TestDrainDropsNoBatch(t *testing.T) {
	const goroutines = 8
	srv, client := testServer(t, Config{Workers: 2, SessionTTL: -1})
	ctx := context.Background()

	accepted := make([]uint64, goroutines) // branches acked per session
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("drain-%d", g)
			for i := 0; ; i++ {
				batch := syntheticBatch(uint64(g*1000+i), 32)
				_, err := client.Predict(ctx, id, "tsl-8k", batch)
				if err != nil {
					if !strings.Contains(err.Error(), "503") {
						t.Errorf("session %s: unexpected error %v", id, err)
					}
					return
				}
				accepted[g] += uint64(len(batch))
			}
		}(g)
	}

	time.Sleep(50 * time.Millisecond) // let traffic build up
	finals := srv.Drain()
	wg.Wait() // all clients have seen their final ack or the 503

	if !srv.Draining() {
		t.Fatal("server must report draining")
	}
	byID := make(map[string]SessionFinal, len(finals))
	for _, f := range finals {
		byID[f.ID] = f
	}
	var wantTotal, gotTotal uint64
	for g := 0; g < goroutines; g++ {
		id := fmt.Sprintf("drain-%d", g)
		if accepted[g] == 0 {
			continue // drained before this client's first batch landed
		}
		f, ok := byID[id]
		if !ok {
			t.Fatalf("session %s accepted %d branches but is missing from drain finals", id, accepted[g])
		}
		got := f.Stats.CondBranches + f.Stats.UncondCount
		if got != accepted[g] {
			t.Fatalf("session %s: server retained %d branches, client had %d acked", id, got, accepted[g])
		}
		wantTotal += accepted[g]
		gotTotal += got
	}
	if wantTotal == 0 {
		t.Fatal("drain happened before any batch was accepted; lower the sleep?")
	}
	if snap := srv.Stats(); snap.Branches != gotTotal {
		t.Fatalf("metrics counted %d branches, sessions retained %d", snap.Branches, gotTotal)
	}

	// After drain every new batch is refused.
	if _, err := client.Predict(ctx, "late", "tsl-8k", syntheticBatch(9, 8)); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("post-drain batch must get 503, got %v", err)
	}
	if snap := srv.Stats(); snap.Rejected == 0 {
		t.Fatal("rejected counter must move for post-drain batches")
	}
}
