package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/llbp"
	"llbpx/internal/sim"
	"llbpx/internal/tage"
)

// Shared pattern-pool serving tests: per-tenant accounting through real
// traffic, and the budget acceptance bar — many more sessions than the
// budget holds, every one of which must still report statistics
// bit-identical to a local simulation of its stream after being spilled
// (checkpoint + freeze), evicted, and thawed arbitrary numbers of times.

// tinyOnce registers "llbp-tiny": a miniature LLBP (1/32 the contexts,
// 8KB TAGE) whose pooled directory is a few tens of KB, so budget tests
// can churn ~1k sessions in test time.
var tinyOnce sync.Once

func registerTiny(t *testing.T) {
	t.Helper()
	tinyOnce.Do(func() {
		cfg := llbp.Default()
		cfg.Name = "llbp-tiny"
		cfg.NumContexts = 448
		cfg.PBEntries = 16
		cfg.TSL = tage.Config8K()
		if err := RegisterPredictor("llbp-tiny", "miniature LLBP for store tests",
			func() (core.Predictor, error) { return llbp.New(cfg) }); err != nil {
			panic(err)
		}
	})
}

// TestStoreTenantAccounting checks that sessions charge their pattern
// storage to the tenant derived from the session ID, and that closing a
// session returns every byte.
func TestStoreTenantAccounting(t *testing.T) {
	srv, client := testServer(t, Config{})
	branches := workloadBranches(t, "nodeapp", 30_000)

	sendInBatches(t, client, "acme/s1", "llbp", branches, 1024)
	sendInBatches(t, client, "plain", "llbp", branches, 1024)
	sendInBatches(t, client, "tagey", "tsl-8k", branches, 1024)

	pool := srv.Store()
	tb := pool.TenantBytes()
	if tb["acme"] <= 0 || tb["default"] <= 0 {
		t.Fatalf("tenant bytes not charged: %v", tb)
	}
	if pool.AttachedBytes() != tb["acme"]+tb["default"] {
		t.Fatalf("attached %d != sum of tenants %v", pool.AttachedBytes(), tb)
	}
	// tsl-8k has no poolable second level: it must not appear anywhere.
	if pool.Namespaces() != 2 {
		t.Fatalf("namespaces = %d, want 2 (tsl-8k sessions must not attach)", pool.Namespaces())
	}

	for _, id := range []string{"acme/s1", "plain", "tagey"} {
		if _, err := client.CloseSession(context.Background(), id); err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
	}
	if pool.AttachedBytes() != 0 || pool.Namespaces() != 0 {
		t.Fatalf("pool not drained after closes: attached=%d namespaces=%d",
			pool.AttachedBytes(), pool.Namespaces())
	}
	tb = pool.TenantBytes()
	for tenant, b := range tb {
		if b != 0 {
			t.Fatalf("tenant %q retains %d bytes after close", tenant, b)
		}
	}
}

// storeProbeBytes measures one llbp-tiny session's attached bytes (the
// unit the budget tests size themselves in).
func storeProbeBytes(t *testing.T, branches []core.Branch) int64 {
	t.Helper()
	srv, client := testServer(t, Config{})
	sendInBatches(t, client, "probe", "llbp-tiny", branches, 2048)
	per := srv.Store().AttachedBytes()
	if per <= 0 {
		t.Fatalf("probe session attached %d bytes, want > 0", per)
	}
	return per
}

// TestStoreBudgetAcceptance is the memory-budget acceptance bar: far more
// sessions than the budget holds, streamed in interleaved waves so nearly
// every session is spilled (checkpointed, frozen, storage released)
// between its batches. Afterwards the pool must sit within budget, spills
// must have happened, and — the bit-exactness half — every session's
// final statistics must equal a local sim.Run over the same stream,
// spill/thaw cycles and all.
func TestStoreBudgetAcceptance(t *testing.T) {
	registerTiny(t)
	const instrBudget = 12_000
	nSessions, residentTarget := 1000, 100
	if testing.Short() {
		nSessions, residentTarget = 128, 24
	}

	workloads := []string{"nodeapp", "whiskey", "tpcc", "kafka"}
	type wl struct {
		name     string
		branches []core.Branch
		want     SessionStats
	}
	wls := make([]wl, len(workloads))
	for i, name := range workloads {
		branches := workloadBranches(t, name, instrBudget)
		p, err := NewPredictor("llbp-tiny")
		if err != nil {
			t.Fatal(err)
		}
		local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
		if err != nil {
			t.Fatal(err)
		}
		wls[i] = wl{name: name, branches: branches, want: SessionStats{
			Instructions:  local.Measured.Instructions,
			CondBranches:  local.Measured.CondBranches,
			Mispredicts:   local.Measured.Mispredicts,
			UncondCount:   local.Measured.UncondCount,
			SecondLevelOK: local.Measured.SecondLevelOK,
			MPKI:          local.MPKI(),
		}}
	}

	perSession := storeProbeBytes(t, wls[0].branches)
	budget := perSession * int64(residentTarget)

	srv := New(Config{
		StoreBudget: budget,
		StoreShare:  true,
		SnapshotDir: t.TempDir(),
		SessionTTL:  -1, // only budget pressure evicts
	})
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()

	// One client per workload so each declares its workload name as the
	// session fingerprint (frozen-blob dedup scope).
	clients := make([]*Client, len(wls))
	for i := range wls {
		clients[i] = NewClient(hs.URL, hs.Client())
		clients[i].Fingerprint = wls[i].name
	}

	// Wave 1: every session's first half. By the time session 0's second
	// half arrives in wave 2, ~nSessions-residentTarget other sessions
	// have pushed it out of the budget.
	halves := make([]int, nSessions)
	send := func(sessIdx, from, to int) SessionStats {
		w := wls[sessIdx%len(wls)]
		id := fmt.Sprintf("t%d/s-%d", sessIdx%7, sessIdx)
		resp, err := clients[sessIdx%len(wls)].Predict(context.Background(), id, "llbp-tiny", w.branches[from:to])
		if err != nil {
			t.Fatalf("session %d [%d:%d]: %v", sessIdx, from, to, err)
		}
		return resp.Stats
	}
	for i := 0; i < nSessions; i++ {
		halves[i] = len(wls[i%len(wls)].branches) / 2
		send(i, 0, halves[i])
	}
	spillsAfterWave1 := srv.Stats().StoreSpills
	if spillsAfterWave1 == 0 {
		t.Fatalf("no budget spills after %d sessions under a %d-session budget", nSessions, residentTarget)
	}

	// Wave 2: the second halves. Each batch must resume the session's
	// exact state — from memory, the frozen tier, or the disk checkpoint.
	for i := 0; i < nSessions; i++ {
		got := send(i, halves[i], len(wls[i%len(wls)].branches))
		want := wls[i%len(wls)].want
		if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
			got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
			got.SecondLevelOK != want.SecondLevelOK || got.MPKI != want.MPKI {
			t.Fatalf("session %d (%s) diverged from local sim after spill/thaw:\nserver %+v\nlocal  %+v",
				i, wls[i%len(wls)].name, got, want)
		}
	}

	snap := srv.Stats()
	if snap.StoreResidentBytes > budget {
		t.Errorf("resident %d bytes exceeds budget %d at rest", snap.StoreResidentBytes, budget)
	}
	if snap.StoreSpills == 0 || snap.SessionsEvicted == 0 {
		t.Errorf("spill counters did not move: %+v", snap)
	}
	if snap.StoreFreezes == 0 {
		t.Errorf("no sessions frozen across %d spills", snap.StoreSpills)
	}
	// With live sessions pinning the whole budget, frozen blobs are
	// legitimately trimmed right back out — warm resumption then comes
	// from disk. The frozen tier's hit path is TestStoreFreezeThawDedup's
	// job; here the bar is exactness + the budget invariant.
}

// TestStoreFreezeThawDedup exercises the frozen tier's hit path: sessions
// evicted with budget headroom keep their predictor blobs in memory,
// same-fingerprint sessions at identical state collapse to one body, and
// the next batch resumes by thaw — with NO snapshot directory, so the
// warm resume can only have come from the pool.
func TestStoreFreezeThawDedup(t *testing.T) {
	registerTiny(t)
	const instrBudget = 12_000
	branches := workloadBranches(t, "whiskey", instrBudget)
	p, err := NewPredictor("llbp-tiny")
	if err != nil {
		t.Fatal(err)
	}
	local, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}

	srv := New(Config{
		StoreBudget: 256 << 20, // headroom: frozen blobs must survive
		StoreShare:  true,
		SessionTTL:  time.Millisecond,
		EvictEvery:  time.Hour, // eviction is driven manually below
	})
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()
	client := NewClient(hs.URL, hs.Client())
	client.Fingerprint = "whiskey"

	half := len(branches) / 2
	const nSessions = 4
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("s-%d", i)
		if _, err := client.Predict(context.Background(), id, "llbp-tiny", branches[:half]); err != nil {
			t.Fatal(err)
		}
	}
	// Evict everything: with sharing on and headroom, eviction freezes
	// into the pool. All four sessions saw the identical stream, so their
	// blobs are byte-identical and dedup to one body.
	time.Sleep(5 * time.Millisecond)
	if n := srv.EvictIdle(); n != nSessions {
		t.Fatalf("evicted %d sessions, want %d", n, nSessions)
	}
	snap := srv.Stats()
	if snap.StoreFreezes != nSessions {
		t.Fatalf("freezes = %d, want %d", snap.StoreFreezes, nSessions)
	}
	if snap.StoreDedupHits != nSessions-1 {
		t.Errorf("dedup hits = %d, want %d (identical same-fingerprint blobs must share)",
			snap.StoreDedupHits, nSessions-1)
	}
	if srv.Store().FrozenCount() != nSessions {
		t.Errorf("frozen sessions = %d, want %d", srv.Store().FrozenCount(), nSessions)
	}

	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("s-%d", i)
		resp, err := client.Predict(context.Background(), id, "llbp-tiny", branches[half:])
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Restored {
			t.Errorf("session %s: second half did not resume warm (no snapshot dir — must thaw)", id)
		}
		if got, want := resp.Stats.MPKI, local.MPKI(); got != want {
			t.Errorf("session %s: MPKI %v after thaw, local sim %v", id, got, want)
		}
	}
	snap = srv.Stats()
	if snap.StoreThaws != nSessions {
		t.Errorf("thaws = %d, want %d", snap.StoreThaws, nSessions)
	}
	if snap.StoreSharedRestores == 0 {
		t.Errorf("no shared restores despite %d sessions thawing one deduped body", nSessions)
	}
}

// TestStoreConcurrentChurn hammers one budgeted server from many
// goroutines with overlapping session IDs, interleaved closes, and
// constant budget pressure — the -race bar for the serve/pool seam (spill
// vs. batch vs. close vs. thaw).
func TestStoreConcurrentChurn(t *testing.T) {
	registerTiny(t)
	branches := workloadBranches(t, "nodeapp", 6_000)
	perSession := storeProbeBytes(t, branches)

	srv := New(Config{
		StoreBudget: perSession * 4,
		StoreShare:  true,
		SnapshotDir: t.TempDir(),
		SessionTTL:  -1,
	})
	hs := httptest.NewServer(srv)
	defer func() { hs.Close(); srv.Close() }()

	workers := 8
	iters := 30
	if testing.Short() {
		workers, iters = 4, 10
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := NewClient(hs.URL, hs.Client())
			client.Fingerprint = "churn"
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("churn/s-%d", (w+i)%11)
				if _, err := client.Predict(context.Background(), id, "llbp-tiny", branches); err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if i%5 == 4 {
					// Close may race another worker's predict on the same
					// ID; "not found" is then a legitimate answer.
					_, _ = client.CloseSession(context.Background(), id)
				}
			}
		}(w)
	}
	wg.Wait()

	pool := srv.Store()
	if pool.Budget() > 0 && pool.OverBudget() {
		// One live session may legitimately exceed a tiny budget; more
		// than the resident slack means reclaim lost track.
		srv.ReclaimStore(nil)
		if pool.TotalBytes() > pool.Budget()+perSession {
			t.Errorf("pool irrecoverably over budget: total=%d budget=%d", pool.TotalBytes(), pool.Budget())
		}
	}
	if pool.AttachedBytes() < 0 || pool.ArenaBytes() < 0 || pool.FrozenBytes() < 0 {
		t.Errorf("negative accounting: attached=%d arena=%d frozen=%d",
			pool.AttachedBytes(), pool.ArenaBytes(), pool.FrozenBytes())
	}
}
