package llbp

import "llbpx/internal/hashutil"

// MaxRCRDepth is the deepest context window any configuration may use
// (LLBP-X's deep contexts hash 64 unconditional branches; the skip window
// D rides on top).
const MaxRCRDepth = 72

// RCR is the rolling context register: a ring of recently retired
// unconditional-branch addresses from which context IDs are hashed. The
// hash is order-sensitive — the same branches in a different order form a
// different context.
type RCR struct {
	ubs [MaxRCRDepth]uint64
	pos int // index of the most recent entry
}

// Push records a retired unconditional branch.
func (r *RCR) Push(pc uint64) {
	r.pos = (r.pos - 1 + MaxRCRDepth) % MaxRCRDepth
	r.ubs[r.pos] = pc
}

// ContextID hashes the w unconditional branches preceding the skip most
// recent ones into a context identifier. w == 0 returns a fixed value (a
// single global context).
func (r *RCR) ContextID(skip, w int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	j := (r.pos + skip) % MaxRCRDepth
	for i := 0; i < w; i++ {
		h = hashutil.Combine(h, r.ubs[j])
		if j++; j == MaxRCRDepth {
			j = 0
		}
	}
	return h
}

// CtxDelay replays ContextID(0, w) values with a fixed delay of d pushes.
// Because ContextID(d, w) equals what ContextID(0, w) returned d pushes
// earlier (the ring keeps d+w <= MaxRCRDepth entries live), a predictor
// needing both the skipped and unskipped IDs hashes the window once per
// push and reads the skipped ID from this line instead of rehashing.
type CtxDelay struct {
	ring []uint64
	pos  int
}

// NewCtxDelay returns a delay line of depth d for window width w, primed
// with the ID an untouched RCR yields — which is exactly what
// ContextID(d, w) returns until the d+1-th push, since the skipped window
// still holds only zero entries.
func NewCtxDelay(d, w int) CtxDelay {
	if d == 0 {
		return CtxDelay{}
	}
	var zero RCR
	z := zero.ContextID(0, w)
	ring := make([]uint64, d)
	for i := range ring {
		ring[i] = z
	}
	return CtxDelay{ring: ring}
}

// Shift records cur (this push's ContextID(0, w)) and returns the value
// from d pushes ago, i.e. ContextID(d, w) for the current register state.
func (c *CtxDelay) Shift(cur uint64) uint64 {
	if len(c.ring) == 0 {
		return cur
	}
	out := c.ring[c.pos]
	c.ring[c.pos] = cur
	if c.pos++; c.pos == len(c.ring) {
		c.pos = 0
	}
	return out
}

// Rebuild reconstructs the line from r after a snapshot restore. The k-th
// future Shift runs after k+1 more pushes and must return the value from d
// pushes before that read, i.e. from d-1-k pushes before the restored
// state — which is ContextID(d-1-k, w) of the restored register.
func (c *CtxDelay) Rebuild(r *RCR, d, w int) {
	for k := range c.ring {
		c.ring[k] = r.ContextID(d-1-k, w)
	}
	c.pos = 0
}
