package llbp

import "llbpx/internal/hashutil"

// MaxRCRDepth is the deepest context window any configuration may use
// (LLBP-X's deep contexts hash 64 unconditional branches; the skip window
// D rides on top).
const MaxRCRDepth = 72

// RCR is the rolling context register: a ring of recently retired
// unconditional-branch addresses from which context IDs are hashed. The
// hash is order-sensitive — the same branches in a different order form a
// different context.
type RCR struct {
	ubs [MaxRCRDepth]uint64
	pos int // index of the most recent entry
}

// Push records a retired unconditional branch.
func (r *RCR) Push(pc uint64) {
	r.pos = (r.pos - 1 + MaxRCRDepth) % MaxRCRDepth
	r.ubs[r.pos] = pc
}

// ContextID hashes the w unconditional branches preceding the skip most
// recent ones into a context identifier. w == 0 returns a fixed value (a
// single global context).
func (r *RCR) ContextID(skip, w int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < w; i++ {
		h = hashutil.Combine(h, r.ubs[(r.pos+skip+i)%MaxRCRDepth])
	}
	return h
}
