package llbp

import (
	"llbpx/internal/snapshot"
	"llbpx/internal/tage"
)

// Decode-time allocation caps for unbounded (limit-mode) structures.
const (
	maxInfContexts   = 1 << 24
	maxInfPatterns   = 1 << 24
	maxTrackerCtx    = 1 << 24
	maxTrackerPerCtx = 1 << 22
)

// SaveState writes the rolling context register.
func (r *RCR) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.rcr")
	for _, v := range r.ubs {
		w.U64(v)
	}
	w.Int(r.pos)
}

// LoadState restores the rolling context register.
func (r *RCR) LoadState(sr *snapshot.Reader) {
	sr.Marker("llbp.rcr")
	for i := range r.ubs {
		r.ubs[i] = sr.U64()
	}
	r.pos = int(sr.I64In(0, MaxRCRDepth-1))
}

func (s *PatternSet) saveState(w *snapshot.Writer) {
	w.U64(s.CID)
	w.Bool(s.Dirty)
	if s.overflow != nil {
		w.Bool(true)
		w.Count(s.overflow.Len())
		s.overflow.Range(func(_ uint64, p *Pattern) bool {
			w.U32(p.Tag)
			w.I64(int64(p.LenIdx))
			w.I64(int64(p.Ctr))
			return true
		})
		return
	}
	w.Bool(false)
	w.Count(len(s.slots))
	for _, p := range s.slots {
		w.U32(p.Tag)
		w.I64(int64(p.LenIdx))
		w.I64(int64(p.Ctr))
	}
}

// loadPatternSetBody decodes the fields after the CID into s (already
// reset for its new context), validating tag widths, length indices, and
// counter ranges. It reports whether the decode succeeded.
func loadPatternSetBody(r *snapshot.Reader, cfg *Config, s *PatternSet) bool {
	s.Dirty = r.Bool()
	unbounded := r.Bool()
	if r.Err() != nil {
		return false
	}
	if unbounded != cfg.InfinitePatterns {
		r.Fail("pattern set storage mode mismatch")
		return false
	}
	tagMax := uint64(1)<<cfg.TagBits - 1
	if unbounded {
		n := r.Count(maxInfPatterns)
		for i := 0; i < n && r.Err() == nil; i++ {
			tag := uint32(r.U64Max(tagMax))
			lenIdx := int8(r.I64In(0, tage.NumTables-1))
			ctr := int8(r.I64In(ctrMin, ctrMax))
			if r.Err() != nil {
				return false
			}
			p, inserted := s.overflow.Put(packPatternKey(tag, lenIdx))
			if !inserted {
				r.Fail("duplicate pattern in set %#x", s.CID)
				return false
			}
			*p = Pattern{Tag: tag, LenIdx: lenIdx, Ctr: ctr}
		}
		return r.Err() == nil
	}
	if n := r.Count(len(s.slots)); r.Err() == nil && n != len(s.slots) {
		r.Fail("pattern set has %d slots, want %d", n, len(s.slots))
	}
	for i := range s.slots {
		p := &s.slots[i]
		p.Tag = uint32(r.U64Max(tagMax))
		p.LenIdx = int8(r.I64In(-1, tage.NumTables-1))
		p.Ctr = int8(r.I64In(ctrMin, ctrMax))
	}
	return r.Err() == nil
}

// SaveState writes every resident pattern set. Finite rows are written in
// slice order because the order is replacement state: victim scans walk
// the row front to back.
func (d *ContextDir) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.cd")
	w.U64(d.evicted)
	if d.infMode {
		w.Count(d.infCount)
		for i := 0; i < d.infCount; i++ {
			d.infAt(int32(i)).saveState(w)
		}
		return
	}
	// Iterate the geometry, not the (possibly still unmaterialized)
	// storage: a lazily deferred store serializes exactly like a
	// materialized empty one, so snapshots stay bit-identical regardless
	// of when storage appeared.
	for row := 0; row < d.numSets; row++ {
		n := 0
		if d.rowLen != nil {
			n = int(d.rowLen[row])
		}
		w.Count(n)
		for i := 0; i < n; i++ {
			d.store[row*d.assoc+i].saveState(w)
		}
	}
}

// LoadState restores the directory into an empty receiver of the same
// geometry; each finite set must land in the row its CID indexes.
func (d *ContextDir) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.cd")
	d.evicted = r.U64()
	if d.infMode {
		n := r.Count(maxInfContexts)
		for i := 0; i < n && r.Err() == nil; i++ {
			cid := r.U64()
			if r.Err() != nil {
				return
			}
			s, existed := d.infInsert(cid)
			if existed {
				r.Fail("duplicate context %#x", cid)
				return
			}
			d.stampProv(s)
			if !loadPatternSetBody(r, d.cfg, s) {
				return
			}
		}
		return
	}
	for rowIdx := 0; rowIdx < d.numSets; rowIdx++ {
		n := r.Count(d.assoc)
		for i := 0; i < n && r.Err() == nil; i++ {
			cid := r.U64()
			if r.Err() != nil {
				return
			}
			if cid&d.mask != uint64(rowIdx) {
				r.Fail("context %#x stored in wrong row %d", cid, rowIdx)
				return
			}
			d.ensure()
			s := &d.store[rowIdx*d.assoc+i]
			s.reset(cid, d.cfg)
			d.stampProv(s)
			if !loadPatternSetBody(r, d.cfg, s) {
				return
			}
			d.rowLen[rowIdx]++
		}
	}
}

// SaveState writes the buffer's prefetch statistics and every resident
// entry's timing metadata. Entries reference pattern sets by CID only —
// the backing set always also lives in the context directory, so
// LoadState re-links through it.
func (b *PatternBuffer) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.pb")
	st := &b.Stats
	w.U64(st.Issued)
	w.U64(st.OnTime)
	w.U64(st.Late)
	w.U64(st.Unused)
	w.U64(st.StoreRd)
	w.U64(st.StoreWr)
	w.U64(st.FPIssued)
	w.U64(st.FPUsed)
	w.Count(b.entries.Len())
	b.entries.Range(func(cid uint64, e *PBEntry) bool {
		w.U64(cid)
		w.I64(e.AvailAt)
		w.I64(e.FetchedAt)
		w.I64(e.LastUse)
		w.Bool(e.Used)
		w.Bool(e.WasLate)
		w.Bool(e.FalsePath)
		w.Bool(e.fromStore)
		return true
	})
}

// LoadState restores the buffer into an empty receiver. resolve maps a
// CID back to its directory-resident pattern set; an unresolvable CID is
// corruption (a PB entry must alias the directory's set object, never own
// a private copy).
func (b *PatternBuffer) LoadState(r *snapshot.Reader, resolve func(uint64) *PatternSet) {
	r.Marker("llbp.pb")
	st := &b.Stats
	st.Issued = r.U64()
	st.OnTime = r.U64()
	st.Late = r.U64()
	st.Unused = r.U64()
	st.StoreRd = r.U64()
	st.StoreWr = r.U64()
	st.FPIssued = r.U64()
	st.FPUsed = r.U64()
	n := r.Count(b.capacity)
	for i := 0; i < n && r.Err() == nil; i++ {
		cid := r.U64()
		availAt := r.I64()
		fetchedAt := r.I64()
		lastUse := r.I64()
		used := r.Bool()
		wasLate := r.Bool()
		falsePath := r.Bool()
		fromStore := r.Bool()
		if r.Err() != nil {
			return
		}
		set := resolve(cid)
		if set == nil {
			r.Fail("pattern buffer entry %#x has no backing pattern set", cid)
			return
		}
		e, inserted := b.entries.Put(cid)
		if !inserted {
			r.Fail("duplicate pattern buffer entry %#x", cid)
			return
		}
		*e = PBEntry{
			Set:       set,
			AvailAt:   availAt,
			FetchedAt: fetchedAt,
			LastUse:   lastUse,
			Used:      used,
			WasLate:   wasLate,
			FalsePath: falsePath,
			fromStore: fromStore,
		}
	}
}

// SaveState writes the per-context useful-pattern accounting.
func (t *UsefulTracker) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.tracker")
	w.Count(len(t.ctxs))
	for i := range t.ctxs {
		c := &t.ctxs[i]
		w.U64(c.cid)
		w.Count(c.pats.Len())
		c.pats.Range(func(key uint64, n *uint64) bool {
			tag, lenIdx := unpackPatternKey(key)
			w.U32(tag)
			w.I64(int64(lenIdx))
			w.U64(*n)
			return true
		})
	}
}

// LoadState restores the accounting into an empty tracker.
func (t *UsefulTracker) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.tracker")
	n := r.Count(maxTrackerCtx)
	for i := 0; i < n && r.Err() == nil; i++ {
		cid := r.U64()
		pi, inserted := t.ctxIdx.Put(cid)
		if !inserted {
			r.Fail("duplicate tracker context %#x", cid)
			return
		}
		*pi = int32(len(t.ctxs))
		t.ctxs = append(t.ctxs, usefulCtx{cid: cid})
		c := &t.ctxs[len(t.ctxs)-1]
		k := r.Count(maxTrackerPerCtx)
		for j := 0; j < k && r.Err() == nil; j++ {
			tag := uint32(r.U64Max(1<<32 - 1))
			lenIdx := int8(r.I64In(0, tage.NumTables-1))
			v, _ := c.pats.Put(packPatternKey(tag, lenIdx))
			*v = r.U64()
		}
	}
}

// SaveState implements snapshot.State for the full LLBP predictor:
// baseline TSL, tag bank, RCR, context directory, pattern buffer, context
// IDs, measurement counters, and adaptation state.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.predictor")
	w.String(p.cfg.Name)
	p.tsl.SaveState(w)
	p.bank.SaveState(w)
	p.rcr.SaveState(w)
	p.cd.SaveState(w)
	p.pb.SaveState(w)
	w.I64(p.tick)
	w.U64(p.ccid)
	w.U64(p.pcid)
	w.U64(p.prevPCID)
	w.Marker("llbp.stats")
	w.U64(p.st.matches)
	w.U64(p.st.overrides)
	w.U64(p.st.useful)
	w.U64(p.st.harmful)
	w.U64(p.st.allocs)
	for _, n := range p.st.usefulByLen {
		w.U64(n)
	}
	w.U64(p.anatomy.BaseMisses)
	w.U64(p.anatomy.UsefulOverride)
	w.U64(p.anatomy.WrongOverride)
	w.U64(p.anatomy.SilencedRight)
	w.U64(p.anatomy.SilencedWrong)
	w.U64(p.anatomy.NoMatch)
	w.U64(p.anatomy.NoSet)
	w.Int(p.trustWeak)
	w.Int(p.chooser)
	w.U64(p.probeClock)
	w.Bool(p.tracker != nil)
	if p.tracker != nil {
		p.tracker.SaveState(w)
	}
}

// LoadState implements snapshot.State; the receiver must be a cold
// predictor of the same configuration.
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.predictor")
	if name := r.String(256); r.Err() == nil && name != p.cfg.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Name)
	}
	if r.Err() != nil {
		return
	}
	p.tsl.LoadState(r)
	p.bank.LoadState(r)
	p.rcr.LoadState(r)
	p.cidDelay.Rebuild(&p.rcr, p.cfg.D, p.cfg.W)
	p.cd.LoadState(r)
	p.pb.LoadState(r, p.cd.Lookup)
	p.tick = r.I64In(0, 1<<62)
	p.ccid = r.U64()
	p.pcid = r.U64()
	p.prevPCID = r.U64()
	r.Marker("llbp.stats")
	p.st.matches = r.U64()
	p.st.overrides = r.U64()
	p.st.useful = r.U64()
	p.st.harmful = r.U64()
	p.st.allocs = r.U64()
	for i := range p.st.usefulByLen {
		p.st.usefulByLen[i] = r.U64()
	}
	p.anatomy.BaseMisses = r.U64()
	p.anatomy.UsefulOverride = r.U64()
	p.anatomy.WrongOverride = r.U64()
	p.anatomy.SilencedRight = r.U64()
	p.anatomy.SilencedWrong = r.U64()
	p.anatomy.NoMatch = r.U64()
	p.anatomy.NoSet = r.U64()
	p.trustWeak = int(r.I64In(-8, 7))
	p.chooser = int(r.I64In(chooserMin, chooserMax))
	p.probeClock = r.U64()
	if hasTracker := r.Bool(); r.Err() == nil {
		if hasTracker != (p.tracker != nil) {
			r.Fail("useful tracker presence mismatch")
			return
		}
		if p.tracker != nil {
			p.tracker.LoadState(r)
		}
	}
}
