package llbp

import (
	"llbpx/internal/snapshot"
	"llbpx/internal/tage"
)

// Decode-time allocation caps for unbounded (limit-mode) structures.
const (
	maxInfContexts   = 1 << 24
	maxInfPatterns   = 1 << 24
	maxTrackerCtx    = 1 << 24
	maxTrackerPerCtx = 1 << 22
)

// SaveState writes the rolling context register.
func (r *RCR) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.rcr")
	for _, v := range r.ubs {
		w.U64(v)
	}
	w.Int(r.pos)
}

// LoadState restores the rolling context register.
func (r *RCR) LoadState(sr *snapshot.Reader) {
	sr.Marker("llbp.rcr")
	for i := range r.ubs {
		r.ubs[i] = sr.U64()
	}
	r.pos = int(sr.I64In(0, MaxRCRDepth-1))
}

func (s *PatternSet) saveState(w *snapshot.Writer) {
	w.U64(s.CID)
	w.Bool(s.Dirty)
	if s.overflow != nil {
		w.Bool(true)
		w.Count(len(s.overflow))
		for _, p := range s.overflow {
			w.U32(p.Tag)
			w.I64(int64(p.LenIdx))
			w.I64(int64(p.Ctr))
		}
		return
	}
	w.Bool(false)
	w.Count(len(s.slots))
	for _, p := range s.slots {
		w.U32(p.Tag)
		w.I64(int64(p.LenIdx))
		w.I64(int64(p.Ctr))
	}
}

// loadPatternSet decodes one pattern set shaped by cfg, validating tag
// widths, length indices, and counter ranges.
func loadPatternSet(r *snapshot.Reader, cfg *Config) *PatternSet {
	cid := r.U64()
	dirty := r.Bool()
	unbounded := r.Bool()
	if r.Err() != nil {
		return nil
	}
	if unbounded != cfg.InfinitePatterns {
		r.Fail("pattern set storage mode mismatch")
		return nil
	}
	s := newPatternSet(cid, cfg)
	s.Dirty = dirty
	tagMax := uint64(1)<<cfg.TagBits - 1
	if unbounded {
		n := r.Count(maxInfPatterns)
		for i := 0; i < n && r.Err() == nil; i++ {
			p := &Pattern{
				Tag:    uint32(r.U64Max(tagMax)),
				LenIdx: int8(r.I64In(0, tage.NumTables-1)),
				Ctr:    int8(r.I64In(ctrMin, ctrMax)),
			}
			key := patternKey{p.Tag, p.LenIdx}
			if _, dup := s.overflow[key]; dup {
				r.Fail("duplicate pattern in set %#x", cid)
				return nil
			}
			s.overflow[key] = p
		}
		return s
	}
	if n := r.Count(len(s.slots)); r.Err() == nil && n != len(s.slots) {
		r.Fail("pattern set has %d slots, want %d", n, len(s.slots))
	}
	for i := range s.slots {
		p := &s.slots[i]
		p.Tag = uint32(r.U64Max(tagMax))
		p.LenIdx = int8(r.I64In(-1, tage.NumTables-1))
		p.Ctr = int8(r.I64In(ctrMin, ctrMax))
	}
	if r.Err() != nil {
		return nil
	}
	return s
}

// SaveState writes every resident pattern set. Finite rows are written in
// slice order because the order is replacement state: victim scans walk
// the row front to back.
func (d *ContextDir) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.cd")
	w.U64(d.evicted)
	if d.inf != nil {
		w.Count(len(d.inf))
		for _, s := range d.inf {
			s.saveState(w)
		}
		return
	}
	for _, row := range d.sets {
		w.Count(len(row))
		for _, s := range row {
			s.saveState(w)
		}
	}
}

// LoadState restores the directory into an empty receiver of the same
// geometry; each finite set must land in the row its CID indexes.
func (d *ContextDir) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.cd")
	d.evicted = r.U64()
	if d.inf != nil {
		n := r.Count(maxInfContexts)
		for i := 0; i < n && r.Err() == nil; i++ {
			s := loadPatternSet(r, d.cfg)
			if s == nil {
				return
			}
			if _, dup := d.inf[s.CID]; dup {
				r.Fail("duplicate context %#x", s.CID)
				return
			}
			d.inf[s.CID] = s
		}
		return
	}
	for rowIdx := range d.sets {
		n := r.Count(d.assoc)
		row := make([]*PatternSet, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			s := loadPatternSet(r, d.cfg)
			if s == nil {
				return
			}
			if s.CID&d.mask != uint64(rowIdx) {
				r.Fail("context %#x stored in wrong row %d", s.CID, rowIdx)
				return
			}
			row = append(row, s)
		}
		if r.Err() != nil {
			return
		}
		d.sets[rowIdx] = row
	}
}

// SaveState writes the buffer's prefetch statistics and every resident
// entry's timing metadata. Entries reference pattern sets by CID only —
// the backing set always also lives in the context directory, so
// LoadState re-links through it.
func (b *PatternBuffer) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.pb")
	st := &b.Stats
	w.U64(st.Issued)
	w.U64(st.OnTime)
	w.U64(st.Late)
	w.U64(st.Unused)
	w.U64(st.StoreRd)
	w.U64(st.StoreWr)
	w.U64(st.FPIssued)
	w.U64(st.FPUsed)
	w.Count(len(b.entries))
	for cid, e := range b.entries {
		w.U64(cid)
		w.I64(e.AvailAt)
		w.I64(e.FetchedAt)
		w.I64(e.LastUse)
		w.Bool(e.Used)
		w.Bool(e.WasLate)
		w.Bool(e.FalsePath)
		w.Bool(e.fromStore)
	}
}

// LoadState restores the buffer into an empty receiver. resolve maps a
// CID back to its directory-resident pattern set; an unresolvable CID is
// corruption (a PB entry must alias the directory's set object, never own
// a private copy).
func (b *PatternBuffer) LoadState(r *snapshot.Reader, resolve func(uint64) *PatternSet) {
	r.Marker("llbp.pb")
	st := &b.Stats
	st.Issued = r.U64()
	st.OnTime = r.U64()
	st.Late = r.U64()
	st.Unused = r.U64()
	st.StoreRd = r.U64()
	st.StoreWr = r.U64()
	st.FPIssued = r.U64()
	st.FPUsed = r.U64()
	n := r.Count(b.capacity)
	for i := 0; i < n && r.Err() == nil; i++ {
		cid := r.U64()
		e := &PBEntry{
			AvailAt:   r.I64(),
			FetchedAt: r.I64(),
			LastUse:   r.I64(),
			Used:      r.Bool(),
			WasLate:   r.Bool(),
			FalsePath: r.Bool(),
			fromStore: r.Bool(),
		}
		if r.Err() != nil {
			return
		}
		if _, dup := b.entries[cid]; dup {
			r.Fail("duplicate pattern buffer entry %#x", cid)
			return
		}
		e.Set = resolve(cid)
		if e.Set == nil {
			r.Fail("pattern buffer entry %#x has no backing pattern set", cid)
			return
		}
		b.entries[cid] = e
	}
}

// SaveState writes the per-context useful-pattern accounting.
func (t *UsefulTracker) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.tracker")
	w.Count(len(t.perContext))
	for cid, m := range t.perContext {
		w.U64(cid)
		w.Count(len(m))
		for k, n := range m {
			w.U32(k.tag)
			w.I64(int64(k.lenIdx))
			w.U64(n)
		}
	}
}

// LoadState restores the accounting into an empty tracker.
func (t *UsefulTracker) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.tracker")
	n := r.Count(maxTrackerCtx)
	for i := 0; i < n && r.Err() == nil; i++ {
		cid := r.U64()
		k := r.Count(maxTrackerPerCtx)
		m := make(map[patternKey]uint64, k)
		for j := 0; j < k && r.Err() == nil; j++ {
			key := patternKey{
				tag:    uint32(r.U64Max(1<<32 - 1)),
				lenIdx: int8(r.I64In(0, tage.NumTables-1)),
			}
			m[key] = r.U64()
		}
		if _, dup := t.perContext[cid]; dup {
			r.Fail("duplicate tracker context %#x", cid)
			return
		}
		t.perContext[cid] = m
	}
}

// SaveState implements snapshot.State for the full LLBP predictor:
// baseline TSL, tag bank, RCR, context directory, pattern buffer, context
// IDs, measurement counters, and adaptation state.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Marker("llbp.predictor")
	w.String(p.cfg.Name)
	p.tsl.SaveState(w)
	p.bank.SaveState(w)
	p.rcr.SaveState(w)
	p.cd.SaveState(w)
	p.pb.SaveState(w)
	w.I64(p.tick)
	w.U64(p.ccid)
	w.U64(p.pcid)
	w.U64(p.prevPCID)
	w.Marker("llbp.stats")
	w.U64(p.st.matches)
	w.U64(p.st.overrides)
	w.U64(p.st.useful)
	w.U64(p.st.harmful)
	w.U64(p.st.allocs)
	for _, n := range p.st.usefulByLen {
		w.U64(n)
	}
	w.U64(p.anatomy.BaseMisses)
	w.U64(p.anatomy.UsefulOverride)
	w.U64(p.anatomy.WrongOverride)
	w.U64(p.anatomy.SilencedRight)
	w.U64(p.anatomy.SilencedWrong)
	w.U64(p.anatomy.NoMatch)
	w.U64(p.anatomy.NoSet)
	w.Int(p.trustWeak)
	w.Int(p.chooser)
	w.U64(p.probeClock)
	w.Bool(p.tracker != nil)
	if p.tracker != nil {
		p.tracker.SaveState(w)
	}
}

// LoadState implements snapshot.State; the receiver must be a cold
// predictor of the same configuration.
func (p *Predictor) LoadState(r *snapshot.Reader) {
	r.Marker("llbp.predictor")
	if name := r.String(256); r.Err() == nil && name != p.cfg.Name {
		r.Fail("snapshot is for configuration %q, not %q", name, p.cfg.Name)
	}
	if r.Err() != nil {
		return
	}
	p.tsl.LoadState(r)
	p.bank.LoadState(r)
	p.rcr.LoadState(r)
	p.cd.LoadState(r)
	p.pb.LoadState(r, p.cd.Lookup)
	p.tick = r.I64In(0, 1<<62)
	p.ccid = r.U64()
	p.pcid = r.U64()
	p.prevPCID = r.U64()
	r.Marker("llbp.stats")
	p.st.matches = r.U64()
	p.st.overrides = r.U64()
	p.st.useful = r.U64()
	p.st.harmful = r.U64()
	p.st.allocs = r.U64()
	for i := range p.st.usefulByLen {
		p.st.usefulByLen[i] = r.U64()
	}
	p.anatomy.BaseMisses = r.U64()
	p.anatomy.UsefulOverride = r.U64()
	p.anatomy.WrongOverride = r.U64()
	p.anatomy.SilencedRight = r.U64()
	p.anatomy.SilencedWrong = r.U64()
	p.anatomy.NoMatch = r.U64()
	p.anatomy.NoSet = r.U64()
	p.trustWeak = int(r.I64In(-8, 7))
	p.chooser = int(r.I64In(chooserMin, chooserMax))
	p.probeClock = r.U64()
	if hasTracker := r.Bool(); r.Err() == nil {
		if hasTracker != (p.tracker != nil) {
			r.Fail("useful tracker presence mismatch")
			return
		}
		if p.tracker != nil {
			p.tracker.LoadState(r)
		}
	}
}
