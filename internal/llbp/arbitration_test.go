package llbp

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/sim"
	"llbpx/internal/workload"
)

// uncond returns a distinct unconditional branch for RCR churn.
func uncond(i int) core.Branch {
	return core.Branch{PC: 0x9000 + uint64(i%32)*0x40, Kind: core.Call, Taken: true, InstrGap: 4}
}

// TestOverrideRequiresLongerOrEqualHistory drives a crafted sequence where
// the second level holds a short pattern while the baseline provides from
// a longer history: LLBP must stay silent.
func TestOverrideRequiresLongerOrEqualHistory(t *testing.T) {
	p := MustNew(ZeroLatency())
	// Stabilize one context.
	for i := 0; i < 16; i++ {
		p.TrackUnconditional(uncond(0))
	}
	b := core.Branch{PC: 0x4440, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	// Train heavily: the baseline eventually provides from tagged tables.
	for i := 0; i < 400; i++ {
		pred := p.Predict(b.PC)
		p.Update(b, pred)
	}
	pred := p.Predict(b.PC)
	if pred.Taken != true {
		t.Fatal("trained always-taken branch mispredicted")
	}
	// Whatever provided, the provider length must be a real TAGE history
	// length or 0.
	if pred.ProviderLen != 0 {
		found := false
		for _, l := range []int{6, 9, 13, 18, 26, 37, 44, 53, 64, 78, 93, 112, 134, 161, 193, 232, 464, 928, 1444, 2048, 3000} {
			if pred.ProviderLen == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("provider length %d is not a TAGE history length", pred.ProviderLen)
		}
	}
	p.Update(b, pred)
}

// TestChooserSuppressesPersistentHarm feeds the predictor a branch whose
// second-level pattern is persistently wrong while the baseline is right;
// the global chooser must eventually suppress the overrides.
func TestChooserSuppressesPersistentHarm(t *testing.T) {
	prof, err := workload.ByName("kafka")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 800_000, MeasureInstr: 1_200_000}

	with := Default()
	without := Default()
	without.UseChooser = false
	rw, err := sim.Run(MustNew(with), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	rwo, err := sim.Run(MustNew(without), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	// On the low-MPKI kafka, the chooser must not do worse than the
	// ungated version.
	if rw.MPKI() > rwo.MPKI()*1.02 {
		t.Fatalf("chooser made kafka worse: %.4f vs %.4f", rw.MPKI(), rwo.MPKI())
	}
}

// TestAnatomyConsistency cross-checks the miss-anatomy decomposition: the
// categories must sum to the recorded baseline misses.
func TestAnatomyConsistency(t *testing.T) {
	prof, _ := workload.ByName("twitter")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew(ZeroLatency())
	if _, err := sim.Run(p, workload.NewGenerator(prog), sim.Options{WarmupInstr: 300_000, MeasureInstr: 500_000}); err != nil {
		t.Fatal(err)
	}
	a := p.Anatomy()
	sum := a.UsefulOverride + a.WrongOverride + a.SilencedRight + a.SilencedWrong + a.NoMatch + a.NoSet
	if sum != a.BaseMisses {
		t.Fatalf("anatomy categories sum to %d, recorded %d baseline misses", sum, a.BaseMisses)
	}
	if a.BaseMisses == 0 {
		t.Fatal("no baseline misses recorded at all")
	}
}

// TestBandwidthAccounting checks the PS<->PB traffic invariants: reads
// count every store fill, writes only dirty evictions, and both are
// bounded by prefetch opportunities.
func TestBandwidthAccounting(t *testing.T) {
	prof, _ := workload.ByName("spring")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew(Default())
	res, err := sim.Run(p, workload.NewGenerator(prog), sim.Options{WarmupInstr: 400_000, MeasureInstr: 600_000})
	if err != nil {
		t.Fatal(err)
	}
	p.FinishMeasurement()
	st := p.Stats()
	reads, writes := st["llbp.store.reads"], st["llbp.store.writes"]
	if reads == 0 {
		t.Fatal("no pattern store reads")
	}
	if writes > reads*2 {
		t.Fatalf("writes (%v) implausibly exceed reads (%v)", writes, reads)
	}
	// Reads can never exceed the number of unconditional branches
	// (prefetches trigger at most once per UB) plus allocation fills.
	maxReads := float64(res.Measured.UncondCount+res.Warmup.UncondCount) + st["llbp.allocs"]
	if reads > maxReads {
		t.Fatalf("reads (%v) exceed prefetch opportunities (%v)", reads, maxReads)
	}
	// Timeliness categories partition retired fills. Entries resident in
	// the PB when the warmup boundary reset the counters retire during
	// measurement without a matching post-reset issue, so allow the PB
	// capacity as slack.
	retired := st["llbp.prefetch.ontime"] + st["llbp.prefetch.late"] + st["llbp.prefetch.unused"]
	if retired > st["llbp.prefetch.issued"]+float64(Default().PBEntries) {
		t.Fatalf("retired fills (%v) exceed issued (%v) + PB capacity", retired, st["llbp.prefetch.issued"])
	}
}

// TestPrefetchLatencyGates verifies that a fetched set is not usable
// before its modeled latency elapses.
func TestPrefetchLatencyGates(t *testing.T) {
	cfg := Default()
	cfg.LatencyBranches = 8
	p := MustNew(cfg)

	// Build a context and learn a pattern in it.
	b := core.Branch{PC: 0x5550, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 12; i++ {
			p.TrackUnconditional(uncond(i))
		}
		pred := p.Predict(b.PC)
		p.Update(b, pred)
	}
	// Force the context out of the PB by touching many other contexts.
	for i := 0; i < 4000; i++ {
		p.TrackUnconditional(core.Branch{PC: 0x100000 + uint64(i)*0x20, Kind: core.Jump, Taken: true, InstrGap: 3})
	}
	// Re-enter the original context: the prefetch needs 8 branches to
	// land, so an immediate prediction cannot come from the second level.
	for i := 0; i < 12; i++ {
		p.TrackUnconditional(uncond(i))
	}
	pred := p.Predict(b.PC)
	if pred.FromSecondLevel && p.cur.entry != nil && p.cur.entry.AvailAt > p.tick {
		t.Fatal("prediction served from a pattern set still in flight")
	}
	p.Update(b, pred)
}
