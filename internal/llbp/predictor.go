package llbp

import (
	"fmt"

	"llbpx/internal/core"
	"llbpx/internal/hashutil"
	"llbpx/internal/patternpool"
	"llbpx/internal/tage"
)

// llbpStats are the second level's measurement counters.
type llbpStats struct {
	matches     uint64 // predictions where some pattern matched
	overrides   uint64 // predictions provided by the second level
	useful      uint64 // ...that corrected a baseline misprediction
	harmful     uint64 // ...that broke a correct baseline prediction
	allocs      uint64
	usefulByLen [tage.NumTables]uint64
}

// Predictor is the original LLBP design: an unmodified TAGE-SC-L first
// level plus the contextualized second-level pattern store. It implements
// core.Predictor; the simulator drives Predict/Update for conditional
// branches and TrackUnconditional for calls, returns, and jumps.
type Predictor struct {
	cfg      Config
	tsl      *tage.Predictor
	bank     *tage.TagBank
	rcr      RCR
	cidDelay CtxDelay // D-delayed ContextID(0, W) values, serving ccid
	cd       *ContextDir
	pb       *PatternBuffer
	active   []int // admitted history indices, ascending

	tick     int64
	ccid     uint64 // current context ID (skips D recent UBs)
	pcid     uint64 // prefetch context ID (no skip)
	prevPCID uint64 // previous distinct prefetch context (false-path model)

	cur predState

	st      llbpStats
	anatomy MissAnatomy
	tracker *UsefulTracker

	// trustWeak is a use-alt-on-newly-allocated style counter in [-8,7]:
	// while negative, a confidence-1 (just allocated) pattern may not
	// override the baseline. It adapts on observed outcomes of weak
	// disagreements.
	trustWeak int
	// chooser is a global signed counter tracking whether second-level
	// overrides that disagree with the baseline have been paying off.
	// Overrides are suppressed while it sits below chooserGate, which only
	// happens on workloads where the second level persistently breaks
	// correct baseline predictions. While suppressing, every 16th
	// disagreement is let through as a probe so the counter can recover
	// after a phase change.
	chooser    int
	probeClock uint64
}

const (
	chooserMax  = 255
	chooserMin  = -256
	chooserGate = -12 // suppress only after sustained net harm
)

// New constructs an LLBP predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tsl, err := tage.New(cfg.TSL)
	if err != nil {
		return nil, fmt.Errorf("llbp %q: baseline: %w", cfg.Name, err)
	}
	p := &Predictor{
		cfg:      cfg,
		tsl:      tsl,
		bank:     tage.NewTagBank(cfg.TagBits),
		cidDelay: NewCtxDelay(cfg.D, cfg.W),
		active:   cfg.activeHistIndices(),
		pb:       NewPatternBuffer(cfg.PBEntries),
	}
	p.cd = NewContextDir(&p.cfg)
	if cfg.CollectUseful {
		p.tracker = NewUsefulTracker()
	}
	return p, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(fmt.Sprintf("llbp: invalid config: %v", err))
	}
	return p
}

// Name implements core.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Baseline exposes the first-level TAGE-SC-L (read-only use).
func (p *Predictor) Baseline() *tage.Predictor { return p.tsl }

// Directory exposes the context directory for occupancy diagnostics.
func (p *Predictor) Directory() *ContextDir { return p.cd }

// AttachPatternPool backs the second-level pattern store with a shared
// pool namespace (patternpool.Attacher). Must be called before the first
// branch executes.
func (p *Predictor) AttachPatternPool(ns *patternpool.Namespace) { p.cd.AttachPool(ns) }

// ReleasePatternStore hands the pattern store's storage back to the pool
// and empties the pattern buffer (patternpool.Releaser). The predictor's
// second level is empty afterwards; the TAGE-SC-L first level keeps its
// state.
func (p *Predictor) ReleasePatternStore() {
	p.pb.Reset()
	p.cd.Release()
}

// Tracker returns the useful-pattern tracker, or nil when CollectUseful is
// off.
func (p *Predictor) Tracker() *UsefulStats {
	if p.tracker == nil {
		return nil
	}
	return p.tracker.Snapshot()
}

// contextOf returns the context ID predictions at pc are served under.
func (p *Predictor) contextOf(pc uint64) uint64 {
	if p.cfg.NoContext {
		return hashutil.Mix64(hashutil.PCMix(pc))
	}
	return p.ccid
}

// buckets returns the effective bucket count for pattern-set replacement.
func (p *Predictor) buckets() int {
	if p.cfg.NoTweaks || p.cfg.InfinitePatterns {
		return 1
	}
	return p.cfg.Buckets
}

// Predict implements core.Predictor.
func (p *Predictor) Predict(pc uint64) core.Prediction {
	d := p.tsl.Lookup(pc)
	c := &p.cur
	c.pc, c.d = pc, d
	c.set, c.entry, c.pat, c.provided, c.eligible = nil, nil, nil, false, false
	c.patLen = -1

	for _, li := range p.active {
		c.tags[li] = p.bank.Tag(pc, li)
	}

	cid := p.contextOf(pc)
	entry := p.pb.Get(cid)
	if entry == nil && (p.cfg.LatencyBranches == 0 || p.cfg.NoContext) {
		// Zero-latency (and per-branch-context) modes can fetch on demand.
		if set := p.cd.Lookup(cid); set != nil {
			entry = p.pb.Fill(cid, set, p.tick, p.tick, true, false)
		}
	}
	if entry != nil {
		entry.LastUse = p.tick
		if entry.AvailAt > p.tick {
			// The prefetch is still in flight: no second-level prediction.
			entry.WasLate = true
		} else {
			c.entry = entry
			c.set = entry.Set
			c.pat, c.patLen = c.set.BestMatch(&c.tags)
		}
	}

	base := d.TageTaken
	provLen, conf := d.ProviderLen, d.Confidence
	gated := false
	if c.pat != nil {
		longer := tage.HistoryLengths[c.patLen] > d.ProviderLen
		if p.cfg.GateWeakOverride && c.pat.Confidence() == 1 && p.trustWeak < 0 {
			gated = true
		}
		if p.cfg.MinOverrideConf > 0 && c.pat.Confidence() < p.cfg.MinOverrideConf &&
			!(p.cfg.ExemptLonger && longer) {
			gated = true
		}
		if p.cfg.UseChooser && c.pat.Taken() != d.FinalTaken && p.chooser <= chooserGate {
			p.probeClock++
			if p.probeClock&15 != 0 {
				gated = true
			}
		}
	}
	if c.pat != nil && tage.HistoryLengths[c.patLen] >= d.ProviderLen {
		c.eligible = true
	}
	if c.eligible && !gated {
		// Second level wins on same-or-longer history (the paper's
		// arbitration rule), gated so a freshly allocated pattern only
		// displaces the baseline while weak overrides have been paying
		// off (a use-alt-on-newly-allocated analogue).
		c.provided = true
		base = c.pat.Taken()
		provLen = tage.HistoryLengths[c.patLen]
		conf = c.pat.Confidence()
		c.entry.Used = true
	}

	final := base
	switch {
	case d.LoopValid:
		// The loop predictor is precise when confident; it remains part of
		// the baseline chain.
		final = d.LoopTaken
	case !c.provided:
		final = d.FinalTaken // baseline TSL behavior, SC included
	case p.cfg.NoTweaks:
		// Limit mode re-enables the SC on second-level predictions.
		final, _ = p.tsl.SCDecide(pc, base, conf)
	}

	fast := d.BimTaken
	if c.provided {
		fast = base // the PB is a single-cycle structure
	}
	return core.Prediction{
		Taken:           final,
		ProviderLen:     provLen,
		Confidence:      conf,
		FastTaken:       fast,
		FromSecondLevel: c.provided,
	}
}

// predState is the scratch carried from Predict to the matching Update.
type predState struct {
	pc       uint64
	d        tage.Detail
	set      *PatternSet
	entry    *PBEntry
	pat      *Pattern // longest matching second-level pattern
	patLen   int      // its history index
	eligible bool     // pattern long enough to override the baseline
	provided bool     // second level supplied the base prediction
	tags     [tage.NumTables]uint32
}

// Update implements core.Predictor.
func (p *Predictor) Update(b core.Branch, pred core.Prediction) {
	c := &p.cur
	d := c.d
	taken := b.Taken
	mis := pred.Taken != taken

	if d.FinalTaken != taken {
		p.recordAnatomy(taken)
	}
	if c.provided {
		p.st.overrides++
		baselineWrong := d.FinalTaken != taken
		llbpRight := c.pat.Taken() == taken
		switch {
		case llbpRight && baselineWrong:
			p.st.useful++
			p.st.usefulByLen[c.patLen]++
			if p.tracker != nil {
				p.tracker.Record(c.set.CID, c.tags[c.patLen], c.patLen)
			}
		case !llbpRight && !baselineWrong:
			p.st.harmful++
		}
	}

	// Adapt the per-branch chooser on disagreements with the baseline,
	// whether or not the override was applied.
	if p.cfg.UseChooser && c.provided && c.pat.Taken() != d.FinalTaken {
		if c.pat.Taken() == taken {
			if p.chooser < chooserMax {
				p.chooser++
			}
		} else if p.chooser > chooserMin {
			p.chooser--
		}
	}

	// Adapt the weak-override trust counter on disagreements.
	if c.pat != nil && c.pat.Confidence() == 1 && c.pat.Taken() != d.TageTaken {
		if c.pat.Taken() == taken {
			if p.trustWeak < 7 {
				p.trustWeak++
			}
		} else if p.trustWeak > -8 {
			p.trustWeak--
		}
	}

	// Train the matched second-level pattern. A provided-and-wrong
	// pattern trains twice: confident stale patterns must flip quickly or
	// they repeatedly break correct baseline predictions (the adaptation
	// lag the paper attributes contextualized training to).
	if c.pat != nil {
		p.st.matches++
		c.pat.CtrUpdate(taken)
		if c.provided && c.pat.Taken() != taken {
			c.pat.CtrUpdate(taken)
		}
		c.set.Dirty = true
	}

	// Allocate a longer pattern on a misprediction.
	if mis {
		p.allocate(b, pred)
	}

	// Baseline commit: the SC trains on what it actually arbitrated.
	scInput := d.TageTaken
	scApplied := !d.LoopValid
	if c.provided {
		if p.cfg.NoTweaks {
			scInput = c.pat.Taken()
		} else {
			scApplied = false // design tweak: SC suppressed on LLBP hits
		}
	}
	p.tsl.CommitDetail(b, d, scInput, scApplied)
	p.bank.Update(p.tsl.History())
	p.tick++
}

// allocate installs a new pattern with a longer history than the provider
// that just failed, creating the context's pattern set on first use.
func (p *Predictor) allocate(b core.Branch, pred core.Prediction) {
	c := &p.cur
	usedLenIdx := -1
	if p.cfg.OwnLadder {
		usedLenIdx = c.patLen // -1 when nothing matched: start at the bottom
	} else if c.provided {
		usedLenIdx = c.patLen
	} else if c.d.Provider >= 0 {
		usedLenIdx = c.d.Provider
	}
	allocIdx := NextActiveLen(p.active, usedLenIdx)
	if allocIdx < 0 {
		return
	}
	set := c.set
	if set == nil {
		cid := p.contextOf(c.pc)
		var evictedCID uint64
		var evicted bool
		set, evictedCID, evicted = p.cd.Insert(cid)
		if evicted {
			p.pb.Drop(evictedCID)
		}
		// The fresh set materializes directly in the PB (paper: "creates a
		// new pattern set in the PB and its context ID is written to the
		// CD").
		p.pb.Fill(cid, set, p.tick, p.tick, false, false)
	}
	for n := 0; n < p.cfg.AllocPerMiss && allocIdx >= 0; n++ {
		set.Allocate(c.tags[allocIdx], allocIdx, b.Taken, BucketOf(p.active, p.buckets(), allocIdx), p.buckets())
		p.st.allocs++
		allocIdx = NextActiveLen(p.active, allocIdx)
	}
}

// TrackUnconditional implements core.Predictor: it advances history, the
// rolling context register, and the prefetch engine.
func (p *Predictor) TrackUnconditional(b core.Branch) {
	p.tsl.TrackUnconditional(b)
	p.bank.Update(p.tsl.History())
	p.tick++
	if p.cfg.NoContext {
		return
	}
	p.rcr.Push(b.PC)
	newPCID := p.rcr.ContextID(0, p.cfg.W)
	p.ccid = p.cidDelay.Shift(newPCID)
	if newPCID != p.pcid {
		p.prevPCID = p.pcid
		p.pcid = newPCID
		p.prefetch(newPCID, false)
	}
}

// RunBatch implements core.BatchPredictor: the canonical per-branch loop
// with direct (devirtualized) calls on the concrete receiver.
func (p *Predictor) RunBatch(batch []core.Branch, preds []core.Prediction) {
	for i, b := range batch {
		if b.Kind.Conditional() {
			pred := p.Predict(b.PC)
			preds[i] = pred
			p.Update(b, pred)
		} else {
			p.TrackUnconditional(b)
			preds[i] = core.Prediction{Taken: true}
		}
	}
}

// prefetch fills the PB from the pattern store when the context is
// resident, modeling the configured access latency.
func (p *Predictor) prefetch(cid uint64, falsePath bool) {
	if p.pb.Get(cid) != nil {
		return
	}
	if set := p.cd.Lookup(cid); set != nil {
		p.pb.Fill(cid, set, p.tick, p.tick+int64(p.cfg.LatencyBranches), true, falsePath)
	}
}

// Stats implements core.StatsProvider.
func (p *Predictor) Stats() map[string]float64 {
	m := map[string]float64{
		"llbp.matches":          float64(p.st.matches),
		"llbp.overrides":        float64(p.st.overrides),
		"llbp.useful":           float64(p.st.useful),
		"llbp.harmful":          float64(p.st.harmful),
		"llbp.allocs":           float64(p.st.allocs),
		"llbp.contexts.live":    float64(p.cd.Live()),
		"llbp.contexts.evicted": float64(p.cd.Evicted()),
		"llbp.prefetch.issued":  float64(p.pb.Stats.Issued),
		"llbp.prefetch.ontime":  float64(p.pb.Stats.OnTime),
		"llbp.prefetch.late":    float64(p.pb.Stats.Late),
		"llbp.prefetch.unused":  float64(p.pb.Stats.Unused),
		"llbp.store.reads":      float64(p.pb.Stats.StoreRd),
		"llbp.store.writes":     float64(p.pb.Stats.StoreWr),
	}
	for li, n := range p.st.usefulByLen {
		if n > 0 {
			m[fmt.Sprintf("llbp.useful.len%d", tage.HistoryLengths[li])] = float64(n)
		}
	}
	return m
}

// ResetStats implements core.Resetter (warmup boundary): measurement
// counters clear, learned state stays.
func (p *Predictor) ResetStats() {
	p.st = llbpStats{}
	p.pb.Stats = PrefetchStats{}
	if p.tracker != nil {
		p.tracker.Reset()
	}
}

// FinishMeasurement folds still-resident pattern-buffer entries into the
// prefetch statistics; call once at the end of a measured run before
// reading Stats.
func (p *Predictor) FinishMeasurement() { p.pb.FlushStats() }

// CurrentContext returns the active current-context ID (diagnostics).
func (p *Predictor) CurrentContext() uint64 { return p.ccid }

// HadSet reports whether the last Predict call found a usable pattern set
// (diagnostics).
func (p *Predictor) HadSet() bool { return p.cur.set != nil }

// MissAnatomy classifies baseline mispredictions by what the second level
// had to offer at that moment (diagnostics for the limit study).
type MissAnatomy struct {
	BaseMisses     uint64 // baseline TSL mispredicted
	UsefulOverride uint64 // LLBP provided and was right
	WrongOverride  uint64 // LLBP provided and was also wrong
	SilencedRight  uint64 // LLBP matched shorter than TAGE, would have been right
	SilencedWrong  uint64 // LLBP matched shorter, also wrong
	NoMatch        uint64 // no LLBP pattern matched at all
	NoSet          uint64 // no pattern set resident
}

// Anatomy returns the running miss anatomy (enable with RecordAnatomy).
func (p *Predictor) Anatomy() MissAnatomy { return p.anatomy }

// recordAnatomy is called from Update on baseline misses.
func (p *Predictor) recordAnatomy(taken bool) {
	c := &p.cur
	p.anatomy.BaseMisses++
	switch {
	case c.set == nil:
		p.anatomy.NoSet++
	case c.pat == nil:
		p.anatomy.NoMatch++
	case c.provided && c.pat.Taken() == taken:
		p.anatomy.UsefulOverride++
	case c.provided:
		p.anatomy.WrongOverride++
	case c.pat.Taken() == taken:
		p.anatomy.SilencedRight++
	default:
		p.anatomy.SilencedWrong++
	}
}
