package llbp

import (
	"testing"
	"testing/quick"

	"llbpx/internal/hashutil"
)

// TestPatternSetOccupancyInvariant: no sequence of allocations can push a
// finite set past its capacity, and every allocation is immediately
// findable.
func TestPatternSetOccupancyInvariant(t *testing.T) {
	cfg := Default()
	prop := func(seed uint64, opsRaw uint8) bool {
		rng := hashutil.NewRand(seed)
		s := newPatternSet(1, &cfg)
		ops := int(opsRaw)%200 + 1
		for i := 0; i < ops; i++ {
			lenPos := rng.Intn(len(DefaultHistIndices))
			lenIdx := DefaultHistIndices[lenPos]
			tag := uint32(rng.Intn(1 << 13))
			taken := rng.Bool(0.5)
			s.Allocate(tag, lenIdx, taken, BucketOf(DefaultHistIndices, 4, lenIdx), 4)
			if s.Size() > cfg.PatternsPerSet {
				return false
			}
			p := s.Lookup(tag, lenIdx)
			if p == nil || p.Taken() != taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternSetUnboundedInvariant: the +Inf Patterns mode never evicts.
func TestPatternSetUnboundedInvariant(t *testing.T) {
	cfg := Default()
	cfg.InfinitePatterns = true
	s := newPatternSet(1, &cfg)
	rng := hashutil.NewRand(9)
	type key struct {
		tag uint32
		li  int
	}
	inserted := map[key]bool{}
	for i := 0; i < 2000; i++ {
		k := key{uint32(rng.Intn(1 << 20)), rng.Intn(21)}
		s.Allocate(k.tag, k.li, true, 0, 1)
		inserted[k] = true
	}
	for k := range inserted {
		if s.Lookup(k.tag, k.li) == nil {
			t.Fatalf("unbounded set lost pattern %+v", k)
		}
	}
	if s.Size() != len(inserted) {
		t.Fatalf("Size %d != distinct insertions %d", s.Size(), len(inserted))
	}
}

// TestContextDirResidencyInvariant: Live never exceeds Capacity, and a
// just-inserted context is always resident.
func TestContextDirResidencyInvariant(t *testing.T) {
	prop := func(seed uint64, opsRaw uint8) bool {
		cfg := Default()
		cfg.NumContexts = 64
		cfg.CDAssoc = 4
		d := NewContextDir(&cfg)
		rng := hashutil.NewRand(seed)
		ops := int(opsRaw)%300 + 1
		for i := 0; i < ops; i++ {
			cid := rng.Uint64() % 512
			set, _, _ := d.Insert(cid)
			if set == nil || d.Lookup(cid) != set {
				return false
			}
			if d.Live() > d.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRCRWindowProperty: the context hash must depend on exactly the
// window [skip, skip+w) — pushing more entries shifts it predictably.
func TestRCRWindowProperty(t *testing.T) {
	prop := func(seed uint64, skipRaw, wRaw uint8) bool {
		skip := int(skipRaw) % 8
		w := int(wRaw)%16 + 1
		rng := hashutil.NewRand(seed)
		var r RCR
		pcs := make([]uint64, 64)
		for i := range pcs {
			pcs[i] = rng.Uint64() | 1
			r.Push(pcs[i])
		}
		before := r.ContextID(skip, w)
		// Pushing one more entry must equal hashing with skip+1 relative
		// to the new state.
		r.Push(rng.Uint64() | 1)
		after := r.ContextID(skip+1, w)
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternBufferNeverExceedsCapacity holds under arbitrary fill/drop
// interleavings.
func TestPatternBufferNeverExceedsCapacity(t *testing.T) {
	cfg := Default()
	prop := func(seed uint64, opsRaw uint8) bool {
		b := NewPatternBuffer(8)
		rng := hashutil.NewRand(seed)
		ops := int(opsRaw)%300 + 1
		for i := 0; i < ops; i++ {
			cid := rng.Uint64() % 64
			switch rng.Intn(3) {
			case 0, 1:
				b.Fill(cid, newPatternSet(cid, &cfg), int64(i), int64(i), rng.Bool(0.5), false)
			case 2:
				b.Drop(cid)
			}
			if b.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
