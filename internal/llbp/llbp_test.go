package llbp

import (
	"testing"

	"llbpx/internal/core"
	"llbpx/internal/sim"
	"llbpx/internal/tage"
	"llbpx/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := ZeroLatency().Validate(); err != nil {
		t.Fatalf("zero-latency config invalid: %v", err)
	}
	bad := map[string]func(*Config){
		"negative W":       func(c *Config) { c.W = -1 },
		"window overflow":  func(c *Config) { c.D = MaxRCRDepth },
		"bad directory":    func(c *Config) { c.NumContexts = 3; c.CDAssoc = 7 },
		"zero patterns":    func(c *Config) { c.PatternsPerSet = 0 },
		"bucket mismatch":  func(c *Config) { c.PatternsPerSet = 15 },
		"tiny tags":        func(c *Config) { c.TagBits = 2 },
		"no pb":            func(c *Config) { c.PBEntries = 0 },
		"negative latency": func(c *Config) { c.LatencyBranches = -2 },
		"no lengths":       func(c *Config) { c.HistIndices = nil },
		"bad length idx":   func(c *Config) { c.HistIndices = []int{99} },
		"bad alloc":        func(c *Config) { c.AllocPerMiss = 0 },
	}
	for name, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestDefaultHistIndices(t *testing.T) {
	if len(DefaultHistIndices) != 16 {
		t.Fatalf("LLBP keeps 16 of 21 lengths, got %d", len(DefaultHistIndices))
	}
	for i := 1; i < len(DefaultHistIndices); i++ {
		if DefaultHistIndices[i] <= DefaultHistIndices[i-1] {
			t.Fatal("indices must be ascending")
		}
	}
	if len(AllHistIndices) != tage.NumTables {
		t.Fatal("AllHistIndices must cover every table")
	}
}

func TestRCROrderAndSkip(t *testing.T) {
	var r RCR
	for _, pc := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		r.Push(pc * 0x10)
	}
	// Skip semantics: skipping 2 with window 4 must equal the hash of the
	// same window pushed without the 2 newest entries.
	var r2 RCR
	for _, pc := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		r2.Push(pc * 0x10)
	}
	if r.ContextID(2, 4) != r2.ContextID(0, 4) {
		t.Fatal("skip window must address older entries")
	}
	// Order sensitivity.
	var a, b RCR
	a.Push(0x10)
	a.Push(0x20)
	b.Push(0x20)
	b.Push(0x10)
	if a.ContextID(0, 2) == b.ContextID(0, 2) {
		t.Fatal("context hash must be order sensitive")
	}
	// W=0 is a single global context.
	if a.ContextID(0, 0) != b.ContextID(0, 0) {
		t.Fatal("W=0 must collapse to one context")
	}
}

func TestPatternSetAllocateAndLookup(t *testing.T) {
	cfg := Default()
	s := newPatternSet(42, &cfg)
	s.Allocate(0x5a, 3, true, 0, 4)
	p := s.Lookup(0x5a, 3)
	if p == nil || !p.Taken() {
		t.Fatal("allocated pattern must be found with its direction")
	}
	if s.Lookup(0x5a, 4) != nil || s.Lookup(0x5b, 3) != nil {
		t.Fatal("lookup must match tag AND length")
	}
	if s.Size() != 1 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Dirty {
		t.Fatal("allocation must dirty the set")
	}
}

func TestPatternSetBucketedReplacement(t *testing.T) {
	cfg := Default() // 16 slots, 4 buckets
	s := newPatternSet(1, &cfg)
	// Fill bucket 0 (slots 0-3) and train one pattern confident.
	for i := 0; i < 4; i++ {
		s.Allocate(uint32(i), 0, true, 0, 4)
	}
	conf := s.Lookup(0, 0)
	for i := 0; i < 5; i++ {
		conf.CtrUpdate(true)
	}
	// A fifth allocation into bucket 0 must evict a *low-confidence*
	// pattern, never the trained one.
	s.Allocate(99, 1, true, 0, 4)
	if s.Lookup(0, 0) == nil {
		t.Fatal("confident pattern was evicted while weak candidates existed")
	}
	if s.Lookup(99, 1) == nil {
		t.Fatal("new pattern missing")
	}
	// The bucket replaced in place: occupancy stays at capacity.
	if s.Size() != 4 {
		t.Fatalf("Size = %d, want 4 (bucket replacement, not growth)", s.Size())
	}
}

func TestPatternCounters(t *testing.T) {
	var p Pattern
	p.LenIdx = 2
	p.WeakInit(true)
	if !p.Taken() || p.Confidence() != 1 || p.Confident() {
		t.Fatalf("weak init wrong: %+v", p)
	}
	for i := 0; i < 10; i++ {
		p.CtrUpdate(true)
	}
	if p.Ctr != 3 || !p.Confident() || p.Confidence() != 7 {
		t.Fatalf("saturation wrong: %+v", p)
	}
	for i := 0; i < 20; i++ {
		p.CtrUpdate(false)
	}
	if p.Ctr != -4 || p.Taken() {
		t.Fatalf("negative saturation wrong: %+v", p)
	}
}

func TestContextDirInsertLookupEvict(t *testing.T) {
	cfg := Default()
	cfg.NumContexts = 14
	cfg.CDAssoc = 7
	d := NewContextDir(&cfg)
	if d.Capacity() != 14 {
		t.Fatalf("capacity = %d", d.Capacity())
	}
	s1, _, ev := d.Insert(2) // row = cid & 1
	if ev {
		t.Fatal("first insert must not evict")
	}
	if d.Lookup(2) != s1 {
		t.Fatal("lookup after insert failed")
	}
	// Re-insert returns the same set.
	again, _, _ := d.Insert(2)
	if again != s1 {
		t.Fatal("insert must be idempotent")
	}
	// Fill row 0 beyond associativity; the least-confident set must go.
	trained, _, _ := d.Insert(4)
	trained.Allocate(1, 0, true, 0, 4)
	pat := trained.Lookup(1, 0)
	for i := 0; i < 5; i++ {
		pat.CtrUpdate(true)
	}
	// Fill row 0 (even cids) exactly to its associativity of 7: cids
	// 2 and 4 are resident, five more fit.
	for cid := uint64(6); cid <= 14; cid += 2 {
		d.Insert(cid)
	}
	_, evictedCID, evicted := d.Insert(1000)
	if !evicted {
		t.Fatal("full row must evict")
	}
	if evictedCID == 4 {
		t.Fatal("the set with confident patterns should have been protected")
	}
	if d.Evicted() != 1 {
		t.Fatalf("Evicted = %d", d.Evicted())
	}
}

func TestContextDirInfinite(t *testing.T) {
	cfg := Default()
	cfg.InfiniteContexts = true
	d := NewContextDir(&cfg)
	if d.Capacity() != 0 {
		t.Fatal("infinite directory must report unbounded capacity")
	}
	for cid := uint64(0); cid < 1000; cid++ {
		d.Insert(cid)
	}
	if d.Live() != 1000 || d.Evicted() != 0 {
		t.Fatalf("infinite directory evicted: live=%d evicted=%d", d.Live(), d.Evicted())
	}
}

func TestPatternBufferLRUAndStats(t *testing.T) {
	cfg := Default()
	b := NewPatternBuffer(2)
	s1 := newPatternSet(1, &cfg)
	s2 := newPatternSet(2, &cfg)
	s3 := newPatternSet(3, &cfg)
	e1 := b.Fill(1, s1, 0, 0, true, false)
	b.Fill(2, s2, 1, 1, true, false)
	e1.Used = true
	e1.LastUse = 5 // make 2 the LRU victim
	b.Fill(3, s3, 6, 8, true, false)
	if b.Get(2) != nil {
		t.Fatal("LRU entry must have been evicted")
	}
	if b.Get(1) == nil || b.Get(3) == nil {
		t.Fatal("wrong entry evicted")
	}
	if b.Stats.Unused != 1 {
		t.Fatalf("evicting an unused fill must count: %+v", b.Stats)
	}
	// Dirty writeback accounting on flush.
	s1.Dirty = true
	b.FlushStats()
	if b.Stats.StoreWr != 1 {
		t.Fatalf("dirty set must write back: %+v", b.Stats)
	}
	if b.Stats.OnTime != 1 {
		t.Fatalf("used-on-time entry not counted: %+v", b.Stats)
	}
}

func TestBucketHelpers(t *testing.T) {
	active := DefaultHistIndices
	if BucketOf(active, 4, active[0]) != 0 {
		t.Fatal("first length must land in bucket 0")
	}
	if BucketOf(active, 4, active[15]) != 3 {
		t.Fatal("last length must land in bucket 3")
	}
	if NextActiveLen(active, -1) != active[0] {
		t.Fatal("ladder must start at the shortest active length")
	}
	if NextActiveLen(active, active[15]) != -1 {
		t.Fatal("no length above the longest")
	}
	if NextActiveLen(active, 6) != 7 {
		t.Fatalf("NextActiveLen(6) = %d, want 7", NextActiveLen(active, 6))
	}
}

func TestUsefulTracker(t *testing.T) {
	tr := NewUsefulTracker()
	tr.Record(1, 0xaa, 0)
	tr.Record(1, 0xaa, 0)
	tr.Record(1, 0xbb, 5)
	tr.Record(2, 0xaa, 0) // same pattern in another context: a duplicate
	s := tr.Snapshot()
	if len(s.Contexts) != 2 {
		t.Fatalf("contexts = %d", len(s.Contexts))
	}
	if s.Contexts[0].Patterns != 2 || s.Contexts[0].CID != 1 {
		t.Fatalf("sort order wrong: %+v", s.Contexts[0])
	}
	if s.TotalByLen[0] != 2 || s.UniqueByLen[0] != 1 {
		t.Fatalf("duplication accounting wrong: total=%d unique=%d", s.TotalByLen[0], s.UniqueByLen[0])
	}
	if f := s.DuplicateFraction(0); f != 0.5 {
		t.Fatalf("DuplicateFraction = %v", f)
	}
	if s.DuplicateFraction(3) != 0 {
		t.Fatal("unused length must report 0 duplication")
	}
	if s.EventsByLen[0] != 3 {
		t.Fatalf("events = %d", s.EventsByLen[0])
	}
	tr.Reset()
	if len(tr.Snapshot().Contexts) != 0 {
		t.Fatal("Reset must clear")
	}
}

func TestEndToEndAgainstBaseline(t *testing.T) {
	prof, err := workload.ByName("nodeapp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 400_000, MeasureInstr: 800_000}

	base, err := sim.Run(tage.MustNew(tage.Config64K()), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew(Default())
	res, err := sim.Run(p, workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	// LLBP must stay within a small band of the baseline at worst and
	// provide second-level activity.
	if res.MPKI() > base.MPKI()*1.10 {
		t.Fatalf("LLBP (%.3f) much worse than baseline (%.3f)", res.MPKI(), base.MPKI())
	}
	p.FinishMeasurement()
	st := p.Stats()
	if st["llbp.overrides"] == 0 {
		t.Fatal("second level never provided a prediction")
	}
	if st["llbp.contexts.live"] == 0 {
		t.Fatal("no contexts materialized")
	}
	if st["llbp.store.reads"] == 0 {
		t.Fatal("no pattern store traffic")
	}
}

func TestZeroLatencyNotWorseThanDefault(t *testing.T) {
	prof, _ := workload.ByName("whiskey")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.Options{WarmupInstr: 400_000, MeasureInstr: 800_000}
	lat, err := sim.Run(MustNew(Default()), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := sim.Run(MustNew(ZeroLatency()), workload.NewGenerator(prog), opt)
	if err != nil {
		t.Fatal(err)
	}
	if zero.MPKI() > lat.MPKI()*1.05 {
		t.Fatalf("0-latency (%.3f) clearly worse than 6-cycle (%.3f)", zero.MPKI(), lat.MPKI())
	}
}

func TestNoContextMode(t *testing.T) {
	c := ZeroLatency()
	c.NoContext = true
	c.InfinitePatterns = true
	p := MustNew(c)
	prof, _ := workload.ByName("kafka")
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, workload.NewGenerator(prog), sim.Options{WarmupInstr: 200_000, MeasureInstr: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.CondBranches == 0 {
		t.Fatal("no branches simulated")
	}
}

func TestResetStatsKeepsLearnedState(t *testing.T) {
	p := MustNew(ZeroLatency())
	b := core.Branch{PC: 0x100, Kind: core.CondDirect, Taken: true, InstrGap: 4}
	u := core.Branch{PC: 0x200, Kind: core.Call, Taken: true, InstrGap: 4}
	for i := 0; i < 500; i++ {
		pred := p.Predict(b.PC)
		p.Update(b, pred)
		p.TrackUnconditional(u)
	}
	p.ResetStats()
	st := p.Stats()
	if st["llbp.overrides"] != 0 || st["llbp.useful"] != 0 {
		t.Fatal("ResetStats must clear measurement counters")
	}
	pred := p.Predict(b.PC)
	if !pred.Taken {
		t.Fatal("learned direction lost across ResetStats")
	}
}
