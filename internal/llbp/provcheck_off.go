//go:build !slowcheck

package llbp

// psProv is the per-set namespace-provenance stamp. In normal builds it
// is zero-sized and the stamp/check hooks compile to nothing, keeping
// the hot path untouched; `-tags slowcheck` swaps in the checking
// version (provcheck_on.go).
type psProv struct{}

func (d *ContextDir) stampProv(*PatternSet) {}

func (d *ContextDir) checkProv(*PatternSet) {}
