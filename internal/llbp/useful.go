package llbp

import (
	"sort"

	"llbpx/internal/tage"
)

// UsefulTracker records, per context, which patterns usefully overrode the
// baseline (the accounting behind the paper's Figures 6-9). A pattern is
// useful when its prediction was correct while the baseline TSL would have
// mispredicted.
type UsefulTracker struct {
	perContext map[uint64]map[patternKey]uint64
}

func NewUsefulTracker() *UsefulTracker {
	return &UsefulTracker{perContext: make(map[uint64]map[patternKey]uint64)}
}

// Record notes one useful override by pattern (tag, lenIdx) in context cid.
func (t *UsefulTracker) Record(cid uint64, tag uint32, lenIdx int) {
	m := t.perContext[cid]
	if m == nil {
		m = make(map[patternKey]uint64)
		t.perContext[cid] = m
	}
	m[patternKey{tag, int8(lenIdx)}]++
}

// Reset clears all recorded data.
func (t *UsefulTracker) Reset() {
	t.perContext = make(map[uint64]map[patternKey]uint64)
}

// ContextUseful summarizes one context's useful patterns.
type ContextUseful struct {
	CID uint64
	// Patterns is the number of distinct useful patterns.
	Patterns int
	// AvgHistLen is the mean history length (bits) of those patterns.
	AvgHistLen float64
	// Events is the total number of useful overrides.
	Events uint64
}

// UsefulStats is a processed snapshot of the tracker.
type UsefulStats struct {
	// Contexts is sorted by Patterns descending — the order of Figures
	// 6 and 7.
	Contexts []ContextUseful
	// TotalByLen / UniqueByLen count useful pattern instances and distinct
	// useful patterns per history index (Figure 8's duplication inputs):
	// an instance is a (context, pattern) pair, a distinct pattern a
	// (tag, length) pair regardless of context.
	TotalByLen  [tage.NumTables]uint64
	UniqueByLen [tage.NumTables]uint64
	// EventsByLen counts useful override events per history index
	// (Figure 9).
	EventsByLen [tage.NumTables]uint64
}

// Snapshot processes the raw per-context maps into the figure-ready form.
func (t *UsefulTracker) Snapshot() *UsefulStats {
	s := &UsefulStats{}
	unique := make(map[patternKey]struct{})
	for cid, pats := range t.perContext {
		cu := ContextUseful{CID: cid, Patterns: len(pats)}
		var lenSum float64
		for key, events := range pats {
			lenSum += float64(tage.HistoryLengths[key.lenIdx])
			cu.Events += events
			s.TotalByLen[key.lenIdx]++
			s.EventsByLen[key.lenIdx] += events
			if _, seen := unique[key]; !seen {
				unique[key] = struct{}{}
				s.UniqueByLen[key.lenIdx]++
			}
		}
		if cu.Patterns > 0 {
			cu.AvgHistLen = lenSum / float64(cu.Patterns)
		}
		s.Contexts = append(s.Contexts, cu)
	}
	sort.Slice(s.Contexts, func(i, j int) bool {
		if s.Contexts[i].Patterns != s.Contexts[j].Patterns {
			return s.Contexts[i].Patterns > s.Contexts[j].Patterns
		}
		return s.Contexts[i].CID < s.Contexts[j].CID
	})
	return s
}

// DuplicateFraction returns, for a history index, the fraction of useful
// pattern instances that are duplicates of a pattern already present in
// another context: 1 - unique/total (0 when the length is unused).
func (s *UsefulStats) DuplicateFraction(lenIdx int) float64 {
	if s.TotalByLen[lenIdx] == 0 {
		return 0
	}
	return 1 - float64(s.UniqueByLen[lenIdx])/float64(s.TotalByLen[lenIdx])
}
