package llbp

import (
	"sort"

	"llbpx/internal/oatable"
	"llbpx/internal/tage"
)

// UsefulTracker records, per context, which patterns usefully overrode the
// baseline (the accounting behind the paper's Figures 6-9). A pattern is
// useful when its prediction was correct while the baseline TSL would have
// mispredicted. Contexts live in an append-only slice indexed by an
// open-addressed cid table; per-context counts are keyed by packPatternKey.
type UsefulTracker struct {
	ctxIdx oatable.Map[int32]
	ctxs   []usefulCtx
}

type usefulCtx struct {
	cid  uint64
	pats oatable.Map[uint64] // packPatternKey -> useful override events
}

func NewUsefulTracker() *UsefulTracker {
	return &UsefulTracker{}
}

// Record notes one useful override by pattern (tag, lenIdx) in context cid.
func (t *UsefulTracker) Record(cid uint64, tag uint32, lenIdx int) {
	pi, inserted := t.ctxIdx.Put(cid)
	if inserted {
		*pi = int32(len(t.ctxs))
		t.ctxs = append(t.ctxs, usefulCtx{cid: cid})
	}
	c := &t.ctxs[*pi]
	n, _ := c.pats.Put(packPatternKey(tag, int8(lenIdx)))
	*n++
}

// Reset clears all recorded data.
func (t *UsefulTracker) Reset() {
	*t = UsefulTracker{}
}

// ContextUseful summarizes one context's useful patterns.
type ContextUseful struct {
	CID uint64
	// Patterns is the number of distinct useful patterns.
	Patterns int
	// AvgHistLen is the mean history length (bits) of those patterns.
	AvgHistLen float64
	// Events is the total number of useful overrides.
	Events uint64
}

// UsefulStats is a processed snapshot of the tracker.
type UsefulStats struct {
	// Contexts is sorted by Patterns descending — the order of Figures
	// 6 and 7.
	Contexts []ContextUseful
	// TotalByLen / UniqueByLen count useful pattern instances and distinct
	// useful patterns per history index (Figure 8's duplication inputs):
	// an instance is a (context, pattern) pair, a distinct pattern a
	// (tag, length) pair regardless of context.
	TotalByLen  [tage.NumTables]uint64
	UniqueByLen [tage.NumTables]uint64
	// EventsByLen counts useful override events per history index
	// (Figure 9).
	EventsByLen [tage.NumTables]uint64
}

// Snapshot processes the raw per-context tables into the figure-ready form.
func (t *UsefulTracker) Snapshot() *UsefulStats {
	s := &UsefulStats{}
	var unique oatable.Map[struct{}]
	for i := range t.ctxs {
		c := &t.ctxs[i]
		cu := ContextUseful{CID: c.cid, Patterns: c.pats.Len()}
		var lenSum float64
		c.pats.Range(func(key uint64, events *uint64) bool {
			_, lenIdx := unpackPatternKey(key)
			lenSum += float64(tage.HistoryLengths[lenIdx])
			cu.Events += *events
			s.TotalByLen[lenIdx]++
			s.EventsByLen[lenIdx] += *events
			if _, firstSighting := unique.Put(key); firstSighting {
				s.UniqueByLen[lenIdx]++
			}
			return true
		})
		if cu.Patterns > 0 {
			cu.AvgHistLen = lenSum / float64(cu.Patterns)
		}
		s.Contexts = append(s.Contexts, cu)
	}
	sort.Slice(s.Contexts, func(i, j int) bool {
		if s.Contexts[i].Patterns != s.Contexts[j].Patterns {
			return s.Contexts[i].Patterns > s.Contexts[j].Patterns
		}
		return s.Contexts[i].CID < s.Contexts[j].CID
	})
	return s
}

// DuplicateFraction returns, for a history index, the fraction of useful
// pattern instances that are duplicates of a pattern already present in
// another context: 1 - unique/total (0 when the length is unused).
func (s *UsefulStats) DuplicateFraction(lenIdx int) float64 {
	if s.TotalByLen[lenIdx] == 0 {
		return 0
	}
	return 1 - float64(s.UniqueByLen[lenIdx])/float64(s.TotalByLen[lenIdx])
}
