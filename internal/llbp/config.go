// Package llbp implements the Last-Level Branch Predictor (Schall et al.,
// MICRO '24) as described in the LLBP-X paper: an unmodified TAGE-SC-L in
// the first level augmented with a high-capacity, off-critical-path
// pattern store in the second level. Patterns are grouped into per-context
// pattern sets, located by a rolling hash over recently retired
// unconditional branches, and prefetched into a small pattern buffer ahead
// of use.
//
// The package also exposes the building blocks (RCR, context directory,
// pattern sets, pattern buffer) that internal/llbpx composes into LLBP-X,
// and the limit-study switches (+No Design Tweaks, +20b Tag,
// +Inf Contexts, +Inf Patterns, +No Contextualization) behind the paper's
// Figure 5 analysis.
package llbp

import (
	"fmt"

	"llbpx/internal/tage"
)

// DefaultHistIndices are the 16 of TAGE's 21 history lengths the original
// LLBP keeps (a "design tweak" that drops five mid-range lengths), grouped
// into four clean buckets of four:
// {6,9,13,18} {26,37,53,78} {112,161,232,464} {928,1444,2048,3000}.
var DefaultHistIndices = []int{0, 1, 2, 3, 4, 5, 7, 9, 11, 13, 15, 16, 17, 18, 19, 20}

// AllHistIndices lists all 21 history lengths (used by the +No Design
// Tweaks limit configuration).
var AllHistIndices = func() []int {
	idx := make([]int, tage.NumTables)
	for i := range idx {
		idx[i] = i
	}
	return idx
}()

// Config parameterizes an LLBP instance.
type Config struct {
	// Name labels the configuration.
	Name string

	// W is the context depth: the number of unconditional branches hashed
	// into a context ID (8 in the original design).
	W int
	// D is the number of most recent unconditional branches skipped when
	// forming the *current* context ID; it is the temporal window that
	// hides the pattern store's access latency.
	D int

	// NumContexts is the pattern store / context directory capacity
	// (14K in the paper); ignored when InfiniteContexts.
	NumContexts int
	// CDAssoc is the context directory associativity (7 in the paper's
	// energy model).
	CDAssoc int
	// PatternsPerSet is the pattern set capacity (16); ignored when
	// InfinitePatterns.
	PatternsPerSet int
	// Buckets is the number of history-range buckets a pattern set is
	// split into (4); only meaningful while design tweaks are enabled.
	Buckets int
	// TagBits is the stored pattern tag width (13; the +20b Tag limit
	// configuration raises it to 20).
	TagBits uint
	// PBEntries is the pattern buffer capacity in pattern sets (64).
	PBEntries int
	// LatencyBranches is the pattern store access latency expressed in
	// retired branches (the paper's 6 cycles correspond to roughly two
	// branches at server IPCs). 0 models the LLBP-0Lat configuration.
	LatencyBranches int

	// HistIndices are the TAGE history-length indices LLBP may store.
	HistIndices []int

	// Limit-study switches (Figure 5).
	//
	// NoTweaks removes the practicality tweaks: pattern sets become fully
	// associative (no buckets), all 21 history lengths are admitted, and
	// the statistical corrector is no longer suppressed when LLBP
	// provides.
	NoTweaks bool
	// InfiniteContexts lifts the context directory capacity limit.
	InfiniteContexts bool
	// InfinitePatterns lifts the per-set pattern limit.
	InfinitePatterns bool
	// NoContext replaces the RCR hash with the branch PC, creating one
	// (unbounded) context per static branch.
	NoContext bool

	// AllocPerMiss is the number of consecutive active history lengths a
	// misprediction allocates patterns at (the original design allocates
	// one; TAGE itself allocates two).
	AllocPerMiss int
	// GateWeakOverride suppresses second-level overrides by just-allocated
	// (confidence-1) patterns while a dynamic trust counter — trained on
	// the outcomes of weak disagreements — is negative.
	GateWeakOverride bool
	// MinOverrideConf is the minimum pattern confidence (|2c+1|) required
	// for a second-level override; 0 disables the filter. Longer-than-
	// provider matches are exempt when ExemptLonger is set.
	MinOverrideConf int
	// ExemptLonger lets patterns strictly longer than the first-level
	// provider override regardless of MinOverrideConf.
	ExemptLonger bool
	// UseChooser enables a small per-branch chooser table that suppresses
	// second-level overrides for branches where they have not been paying
	// off.
	UseChooser bool
	// OwnLadder makes allocation climb from the second level's own match
	// length rather than from the (alias-prone) first-level provider
	// length, so the per-context ladder grows bottom-up like TAGE's own.
	OwnLadder bool

	// CollectUseful enables the per-context useful-pattern accounting
	// behind Figures 6-9. It costs memory proportional to the number of
	// distinct (context, pattern) pairs, so it is off by default.
	CollectUseful bool

	// TSL is the baseline first-level predictor configuration.
	TSL tage.Config
}

// Default returns the paper's baseline LLBP configuration on a 64K TSL:
// 14K contexts x 16 patterns (515KB total), W=8, D=4, 13-bit tags, 6-cycle
// (~2-branch) latency.
func Default() Config {
	return Config{
		Name:             "llbp",
		W:                8,
		D:                4,
		NumContexts:      14 * 1024,
		CDAssoc:          7,
		PatternsPerSet:   16,
		Buckets:          4,
		TagBits:          13,
		PBEntries:        64,
		LatencyBranches:  2,
		AllocPerMiss:     1,
		GateWeakOverride: true,
		UseChooser:       true,
		HistIndices:      DefaultHistIndices,
		TSL:              tage.Config64K(),
	}
}

// ZeroLatency returns the LLBP-0Lat configuration.
func ZeroLatency() Config {
	c := Default()
	c.Name = "llbp-0lat"
	c.LatencyBranches = 0
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.W < 0 || c.W > MaxRCRDepth:
		return fmt.Errorf("llbp %q: W %d out of range [0,%d]", c.Name, c.W, MaxRCRDepth)
	case c.D < 0 || c.D+c.W > MaxRCRDepth:
		return fmt.Errorf("llbp %q: D+W %d exceeds RCR depth %d", c.Name, c.D+c.W, MaxRCRDepth)
	case !c.InfiniteContexts && (c.NumContexts < c.CDAssoc || c.CDAssoc < 1):
		return fmt.Errorf("llbp %q: invalid context directory geometry %d/%d", c.Name, c.NumContexts, c.CDAssoc)
	case !c.InfinitePatterns && c.PatternsPerSet < 1:
		return fmt.Errorf("llbp %q: PatternsPerSet must be >= 1", c.Name)
	case !c.NoTweaks && !c.InfinitePatterns && c.PatternsPerSet%c.Buckets != 0:
		return fmt.Errorf("llbp %q: PatternsPerSet %d not divisible by %d buckets", c.Name, c.PatternsPerSet, c.Buckets)
	case c.TagBits < 5 || c.TagBits > 31:
		return fmt.Errorf("llbp %q: TagBits %d out of range [5,31]", c.Name, c.TagBits)
	case c.PBEntries < 1:
		return fmt.Errorf("llbp %q: PBEntries must be >= 1", c.Name)
	case c.LatencyBranches < 0:
		return fmt.Errorf("llbp %q: negative latency", c.Name)
	case c.AllocPerMiss < 1 || c.AllocPerMiss > 4:
		return fmt.Errorf("llbp %q: AllocPerMiss %d out of range [1,4]", c.Name, c.AllocPerMiss)
	case len(c.HistIndices) == 0:
		return fmt.Errorf("llbp %q: no history lengths", c.Name)
	}
	for _, idx := range c.HistIndices {
		if idx < 0 || idx >= tage.NumTables {
			return fmt.Errorf("llbp %q: history index %d out of range", c.Name, idx)
		}
	}
	return nil
}

// activeHistIndices returns the set of admitted history indices given the
// tweak switches.
func (c Config) activeHistIndices() []int {
	if c.NoTweaks {
		return AllHistIndices
	}
	return c.HistIndices
}

// TransferBits is the width of one pattern-store read or write
// transaction, used for the bandwidth accounting of Figure 15a.
const TransferBits = 288
