package llbp

import (
	"sync/atomic"
	"unsafe"

	"llbpx/internal/oatable"
	"llbpx/internal/patternpool"
	"llbpx/internal/tage"
)

// Pattern is one second-level TAGE pattern: a partial tag, the history
// length it was formed over (as an index into tage.HistoryLengths), and a
// signed 3-bit direction counter.
type Pattern struct {
	Tag    uint32
	LenIdx int8 // -1 marks an empty slot
	Ctr    int8
}

// Valid reports whether the slot holds a pattern.
func (p Pattern) Valid() bool { return p.LenIdx >= 0 }

// Taken is the predicted direction.
func (p Pattern) Taken() bool { return p.Ctr >= 0 }

// Confidence is |2*Ctr+1|: 1 = just allocated, 7 = saturated.
func (p Pattern) Confidence() int {
	v := 2*int(p.Ctr) + 1
	if v < 0 {
		v = -v
	}
	return v
}

// Confident reports whether the counter is strong enough to count toward
// the replacement metadata and the LLBP-X overflow signal.
func (p Pattern) Confident() bool { return p.Confidence() >= 5 }

const (
	ctrMax = 3
	ctrMin = -4
)

// CtrUpdate moves the pattern counter toward the outcome.
func (p *Pattern) CtrUpdate(taken bool) {
	if taken {
		if p.Ctr < ctrMax {
			p.Ctr++
		}
	} else if p.Ctr > ctrMin {
		p.Ctr--
	}
}

// WeakInit resets the counter to weakly taken or not-taken.
func (p *Pattern) WeakInit(taken bool) {
	if taken {
		p.Ctr = 0
	} else {
		p.Ctr = -1
	}
}

// packPatternKey packs a (tag, lenIdx) pattern identity into the uint64 key
// space of the open-addressed tables.
func packPatternKey(tag uint32, lenIdx int8) uint64 {
	return uint64(tag)<<8 | uint64(uint8(lenIdx))
}

// unpackPatternKey inverts packPatternKey.
func unpackPatternKey(key uint64) (tag uint32, lenIdx int8) {
	return uint32(key >> 8), int8(uint8(key))
}

// PatternSet holds the patterns of one program context. With design
// tweaks enabled the fixed slots are grouped into histogram buckets (four
// slots per history-length range); without them the set is a flat
// associative array, and in the +Inf Patterns limit mode it grows without
// bound in an open-addressed table keyed by (tag, lenIdx).
type PatternSet struct {
	CID   uint64
	slots []Pattern
	// unbounded (limit mode) storage, keyed by packPatternKey.
	overflow *oatable.Map[Pattern]
	// prov is the slowcheck-only namespace-provenance stamp (zero-sized
	// in normal builds); see provcheck_on.go.
	prov psProv
	// Dirty marks modifications since the set was fetched into the PB.
	Dirty bool
}

// newPatternSet returns an empty set for cid shaped by cfg.
func newPatternSet(cid uint64, cfg *Config) *PatternSet {
	s := &PatternSet{CID: cid}
	if cfg.InfinitePatterns {
		s.overflow = oatable.NewMap[Pattern](cfg.PatternsPerSet)
		return s
	}
	s.slots = make([]Pattern, cfg.PatternsPerSet)
	for i := range s.slots {
		s.slots[i].LenIdx = -1
	}
	return s
}

// Lookup returns the valid pattern matching (tag, lenIdx), or nil.
func (s *PatternSet) Lookup(tag uint32, lenIdx int) *Pattern {
	if s.overflow != nil {
		return s.overflow.Get(packPatternKey(tag, int8(lenIdx)))
	}
	for i := range s.slots {
		p := &s.slots[i]
		if p.Valid() && int(p.LenIdx) == lenIdx && p.Tag == tag {
			return p
		}
	}
	return nil
}

// ConfidentCount returns the number of confident patterns, the replacement
// metadata the context directory and the LLBP-X overflow signal use.
func (s *PatternSet) ConfidentCount() int {
	n := 0
	if s.overflow != nil {
		s.overflow.Range(func(_ uint64, p *Pattern) bool {
			if p.Confident() {
				n++
			}
			return true
		})
		return n
	}
	for i := range s.slots {
		if s.slots[i].Valid() && s.slots[i].Confident() {
			n++
		}
	}
	return n
}

// Size returns the number of valid patterns in the set.
func (s *PatternSet) Size() int {
	if s.overflow != nil {
		return s.overflow.Len()
	}
	n := 0
	for i := range s.slots {
		if s.slots[i].Valid() {
			n++
		}
	}
	return n
}

// Patterns calls fn for every valid pattern in the set.
func (s *PatternSet) Patterns(fn func(*Pattern)) {
	if s.overflow != nil {
		s.overflow.Range(func(_ uint64, p *Pattern) bool {
			fn(p)
			return true
		})
		return
	}
	for i := range s.slots {
		if s.slots[i].Valid() {
			fn(&s.slots[i])
		}
	}
}

// BestMatch returns the longest pattern whose tag matches tags at its own
// history index, or (nil, -1). This is the hot-path form of the Patterns
// closure walk: one explicit pass, no callback.
func (s *PatternSet) BestMatch(tags *[tage.NumTables]uint32) (best *Pattern, bestLen int) {
	bestLen = -1
	if s.overflow != nil {
		s.overflow.Range(func(_ uint64, p *Pattern) bool {
			li := int(p.LenIdx)
			if p.Tag == tags[li] && li > bestLen {
				best, bestLen = p, li
			}
			return true
		})
		return best, bestLen
	}
	for i := range s.slots {
		p := &s.slots[i]
		if !p.Valid() {
			continue
		}
		li := int(p.LenIdx)
		if p.Tag == tags[li] && li > bestLen {
			best, bestLen = p, li
		}
	}
	return best, bestLen
}

// Allocate installs a new weak pattern for (tag, lenIdx), replacing the
// least confident pattern in the target region: the slot range of the
// pattern's bucket when bucketing is active, or any slot of the flat set.
// bucket is the bucket index (ignored for flat/unbounded sets).
func (s *PatternSet) Allocate(tag uint32, lenIdx int, taken bool, bucket, buckets int) {
	s.Dirty = true
	if s.overflow != nil {
		p, _ := s.overflow.Put(packPatternKey(tag, int8(lenIdx)))
		*p = Pattern{Tag: tag, LenIdx: int8(lenIdx)}
		p.WeakInit(taken)
		return
	}
	lo, hi := 0, len(s.slots)
	if buckets > 1 {
		per := len(s.slots) / buckets
		lo = bucket * per
		hi = lo + per
	}
	victim, best, free := -1, 1<<30, -1
	for i := lo; i < hi; i++ {
		p := &s.slots[i]
		// An existing (tag, lenIdx) pattern is re-initialized in place; a
		// second slot for the same key would shadow this one on Lookup.
		if p.Valid() && int(p.LenIdx) == lenIdx && p.Tag == tag {
			p.WeakInit(taken)
			return
		}
		if !p.Valid() {
			if free < 0 {
				free = i
			}
			continue
		}
		if c := p.Confidence(); c < best {
			best, victim = c, i
		}
	}
	if free >= 0 {
		victim = free
	} else if victim < 0 {
		victim = lo
	}
	p := &s.slots[victim]
	p.Tag = tag
	p.LenIdx = int8(lenIdx)
	p.WeakInit(taken)
}

// reset re-initializes a recycled set for a new context, keeping its
// storage (the slot view into the directory's backing array, or the
// overflow table's capacity).
func (s *PatternSet) reset(cid uint64, cfg *Config) {
	s.CID = cid
	s.Dirty = false
	if cfg.InfinitePatterns {
		if s.overflow == nil {
			s.overflow = oatable.NewMap[Pattern](cfg.PatternsPerSet)
		} else {
			s.overflow.Clear()
		}
		return
	}
	if s.slots == nil {
		s.slots = make([]Pattern, cfg.PatternsPerSet)
	}
	for i := range s.slots {
		s.slots[i] = Pattern{LenIdx: -1}
	}
}

// infChunkSize is the slab granularity of unbounded-context storage. Chunks
// are allocated whole and never move, so *PatternSet pointers handed to the
// pattern buffer stay valid as the directory grows.
const infChunkSize = 1024

// ContextDir combines the paper's context directory (CD) and pattern
// store (PS): a set-associative directory from context IDs to pattern
// sets. Replacement keeps the sets with the most confident patterns (the
// paper's policy), evicting the least-trained set of the index set.
//
// Finite geometries are one flat value array (row r occupies
// store[r*assoc : r*assoc+rowLen[r]], in replacement order); eviction
// recycles the victim's storage in place. Unbounded modes grow a chunked
// slab indexed by an open-addressed cid table. Neither mode allocates on
// the steady-state prediction path.
//
// Storage is materialized lazily on the first insert (or snapshot load).
// A directory attached to a patternpool namespace draws its arrays from
// the pool's shared slab arena — fully re-initialized before use, so the
// view stays private and bit-identical to a freshly allocated store —
// and charges their bytes against the pool's budget. Release returns the
// storage to the arena; a released directory re-materializes privately
// if used again.
type ContextDir struct {
	// Finite geometry.
	store   []PatternSet
	rowLen  []int32
	backing []Pattern
	assoc   int
	numSets int
	mask    uint64

	// InfiniteContexts / NoContext mode.
	infMode   bool
	infChunks [][]PatternSet
	infCount  int
	infIdx    oatable.Map[int32]

	cfg     *Config
	evicted uint64 // count of discarded pattern sets

	ns      *patternpool.Namespace // nil = private store
	charged int64                  // bytes currently charged to ns
	provID  uint64                 // unique owner stamp for slowcheck provenance
}

// provSeq hands out directory provenance IDs; pool-attached directories
// override theirs with the namespace's pool-unique ID.
var provSeq atomic.Uint64

// Byte sizes used for pool budget accounting.
const (
	patternBytes    = int64(unsafe.Sizeof(Pattern{}))
	patternSetBytes = int64(unsafe.Sizeof(PatternSet{}))
	rowLenBytes     = int64(unsafe.Sizeof(int32(0)))
)

// Slab classes for the pool arena. Finite-geometry slabs embed the exact
// shape so recycled arrays always fit; the infinite-mode chunk class is
// shape-independent (chunks have a fixed size).
const infChunkClass = uint64(1)

func (d *ContextDir) slabClass() uint64 {
	c := uint64(d.numSets)<<20 | uint64(d.assoc)<<10 | uint64(d.cfg.PatternsPerSet)<<1 | 2
	if d.cfg.InfinitePatterns {
		c |= 1
	}
	return c
}

// dirSlabs is the finite-geometry storage bundle recycled through the
// pool arena.
type dirSlabs struct {
	store   []PatternSet
	rowLen  []int32
	backing []Pattern
}

func (d *ContextDir) slabBytes() int64 {
	return int64(len(d.store))*patternSetBytes +
		int64(len(d.rowLen))*rowLenBytes +
		int64(len(d.backing))*patternBytes
}

// NewContextDir builds the directory for cfg. Storage is deferred to the
// first insert so an attached pool namespace can supply it.
func NewContextDir(cfg *Config) *ContextDir {
	d := &ContextDir{cfg: cfg, provID: provSeq.Add(1)}
	if cfg.InfiniteContexts || cfg.NoContext {
		d.infMode = true
		return d
	}
	numSets := 1
	for numSets*2*cfg.CDAssoc <= cfg.NumContexts {
		numSets *= 2
	}
	d.numSets = numSets
	d.assoc = cfg.NumContexts / numSets
	d.mask = uint64(numSets - 1)
	return d
}

// AttachPool backs the directory's storage with a shared pool namespace.
// Must be called before the first insert (serve attaches at session
// construction); attaching after materialization leaves the existing
// private storage in place and only affects future infinite-mode growth.
func (d *ContextDir) AttachPool(ns *patternpool.Namespace) {
	d.ns = ns
	if ns != nil {
		d.provID = ns.ProvenanceID()
	}
}

// ensure materializes finite-geometry storage: one store array, one row
// length array, and (outside the +Inf Patterns limit mode) one shared
// backing array for every set's slots — so the whole pattern store is at
// most three allocations, recycled whole through the pool arena, and set
// and slot pointers are stable until Release.
func (d *ContextDir) ensure() {
	if d.store != nil || d.infMode {
		return
	}
	n := d.numSets * d.assoc
	pps := d.cfg.PatternsPerSet
	if d.ns != nil {
		if v, ok := d.ns.GetSlab(d.slabClass()); ok {
			sl := v.(dirSlabs)
			d.store, d.rowLen, d.backing = sl.store, sl.rowLen, sl.backing
			// A recycled slab carries a previous session's state: wipe it
			// to exactly the freshly-allocated form (bit-exactness bar).
			for i := range d.store {
				d.store[i] = PatternSet{}
			}
			for i := range d.rowLen {
				d.rowLen[i] = 0
			}
		}
	}
	if d.store == nil {
		d.store = make([]PatternSet, n)
		d.rowLen = make([]int32, d.numSets)
		if !d.cfg.InfinitePatterns {
			d.backing = make([]Pattern, n*pps)
		}
	}
	if d.backing != nil {
		for i := range d.backing {
			d.backing[i] = Pattern{LenIdx: -1}
		}
		for i := range d.store {
			d.store[i].slots = d.backing[i*pps : (i+1)*pps : (i+1)*pps]
		}
	}
	if d.ns != nil {
		b := d.slabBytes()
		d.charged += b
		d.ns.Charge(b)
	}
}

// Release returns the directory's storage (to the pool arena when
// attached) and drops its budget charge. The directory remains usable —
// the next insert re-materializes privately — but all previously handed
// out PatternSet pointers are invalid; callers must drop their pattern
// buffer first. Idempotent.
func (d *ContextDir) Release() {
	ns := d.ns
	if d.store != nil {
		if ns != nil {
			ns.PutSlab(d.slabClass(), dirSlabs{store: d.store, rowLen: d.rowLen, backing: d.backing}, d.slabBytes())
		}
		d.store, d.rowLen, d.backing = nil, nil, nil
	}
	if d.infMode && d.infCount > 0 {
		if ns != nil {
			for _, chunk := range d.infChunks {
				ns.PutSlab(infChunkClass, chunk, int64(infChunkSize)*patternSetBytes)
			}
		}
		d.infChunks = nil
		d.infCount = 0
		d.infIdx.Clear()
	}
	if ns != nil {
		ns.Uncharge(d.charged)
	}
	d.charged = 0
	d.ns = nil
}

// infAt returns the slab slot at index idx.
func (d *ContextDir) infAt(idx int32) *PatternSet {
	return &d.infChunks[int(idx)/infChunkSize][int(idx)%infChunkSize]
}

// infInsert returns the set for cid, appending a slab slot when absent.
func (d *ContextDir) infInsert(cid uint64) (s *PatternSet, existed bool) {
	pi, inserted := d.infIdx.Put(cid)
	if !inserted {
		return d.infAt(*pi), true
	}
	if d.infCount%infChunkSize == 0 {
		var chunk []PatternSet
		if d.ns != nil {
			if v, ok := d.ns.GetSlab(infChunkClass); ok {
				chunk = v.([]PatternSet)
				for i := range chunk {
					chunk[i] = PatternSet{}
				}
			}
		}
		if chunk == nil {
			chunk = make([]PatternSet, infChunkSize)
		}
		if d.ns != nil {
			b := int64(infChunkSize) * patternSetBytes
			d.charged += b
			d.ns.Charge(b)
		}
		d.infChunks = append(d.infChunks, chunk)
	}
	idx := int32(d.infCount)
	d.infCount++
	*pi = idx
	s = d.infAt(idx)
	s.reset(cid, d.cfg)
	return s, false
}

// Capacity returns the number of contexts the directory can track
// (0 = unbounded).
func (d *ContextDir) Capacity() int {
	if d.infMode {
		return 0
	}
	return d.numSets * d.assoc
}

// Live returns the number of resident pattern sets.
func (d *ContextDir) Live() int {
	if d.infMode {
		return d.infCount
	}
	n := 0
	for _, l := range d.rowLen {
		n += int(l)
	}
	return n
}

// StoreBytes returns the bytes currently charged for this directory's
// materialized storage (0 before first use or after Release).
func (d *ContextDir) StoreBytes() int64 {
	if d.ns != nil {
		return d.charged
	}
	if d.infMode {
		return int64(len(d.infChunks)) * int64(infChunkSize) * patternSetBytes
	}
	if d.store == nil {
		return 0
	}
	return d.slabBytes()
}

// Evicted returns the number of pattern sets discarded by replacement.
func (d *ContextDir) Evicted() uint64 { return d.evicted }

// Lookup returns the pattern set for cid, or nil.
func (d *ContextDir) Lookup(cid uint64) *PatternSet {
	if d.infMode {
		if pi := d.infIdx.Get(cid); pi != nil {
			s := d.infAt(*pi)
			d.checkProv(s)
			return s
		}
		return nil
	}
	if d.store == nil {
		return nil
	}
	row := cid & d.mask
	base := int(row) * d.assoc
	for i := 0; i < int(d.rowLen[row]); i++ {
		if s := &d.store[base+i]; s.CID == cid {
			d.checkProv(s)
			return s
		}
	}
	return nil
}

// Insert creates (or returns the existing) pattern set for cid, evicting
// the least-confident set of the row when full. evictedCID reports the
// context whose set was discarded (valid only when evicted is true), so
// the caller can invalidate stale pattern-buffer entries. The victim's
// storage is recycled in place: the caller must drop stale PB entries
// before the next prediction touches them.
func (d *ContextDir) Insert(cid uint64) (s *PatternSet, evictedCID uint64, evicted bool) {
	if s := d.Lookup(cid); s != nil {
		return s, 0, false
	}
	if d.infMode {
		s, _ := d.infInsert(cid)
		d.stampProv(s)
		return s, 0, false
	}
	d.ensure()
	row := cid & d.mask
	base := int(row) * d.assoc
	if n := int(d.rowLen[row]); n < d.assoc {
		s = &d.store[base+n]
		s.reset(cid, d.cfg)
		d.stampProv(s)
		d.rowLen[row]++
		return s, 0, false
	}
	// Evict the set with the fewest confident patterns (paper's policy:
	// favor sets with more high-confidence patterns).
	victim, best := 0, 1<<30
	for i := 0; i < d.assoc; i++ {
		if c := d.store[base+i].ConfidentCount(); c < best {
			best, victim = c, i
		}
	}
	s = &d.store[base+victim]
	evictedCID = s.CID
	s.reset(cid, d.cfg)
	d.stampProv(s)
	d.evicted++
	return s, evictedCID, true
}

// PBEntry is one pattern-buffer slot with its prefetch timing metadata.
type PBEntry struct {
	Set       *PatternSet
	AvailAt   int64 // tick at which the prefetched data is usable
	FetchedAt int64
	LastUse   int64 // LRU stamp
	Used      bool  // matched at least one prediction
	WasLate   bool  // a prediction wanted it before it arrived
	FalsePath bool  // brought in by a modeled wrong-path prefetch
	fromStore bool  // filled by a PS read (vs created fresh on allocation)
}

// PrefetchStats aggregates the pattern buffer's timeliness accounting
// (Figure 14a).
type PrefetchStats struct {
	Issued   uint64 // PS->PB fills
	OnTime   uint64 // used, and available when first needed
	Late     uint64 // used, but a prediction wanted it before arrival
	Unused   uint64 // evicted without serving a prediction
	StoreRd  uint64 // pattern store reads (bandwidth)
	StoreWr  uint64 // pattern store writebacks (bandwidth)
	FPIssued uint64 // fills attributed to modeled false-path fetches
	FPUsed   uint64 // false-path fills that ended up used
}

// PatternBuffer is the small in-core cache of pattern sets predictions are
// served from. It tracks prefetch timeliness and PS<->PB traffic. Entries
// live inline in an open-addressed table sized once at construction;
// steady-state fill/evict churn never allocates. Entry pointers are
// invalidated by Fill, Drop, and eviction.
type PatternBuffer struct {
	entries  oatable.Map[PBEntry]
	capacity int
	Stats    PrefetchStats
}

// NewPatternBuffer returns an empty buffer holding up to capacity sets.
func NewPatternBuffer(capacity int) *PatternBuffer {
	b := &PatternBuffer{capacity: capacity}
	b.entries.Reserve(capacity + 1)
	return b
}

// Get returns the buffered entry for cid, or nil, without touching LRU
// state.
func (b *PatternBuffer) Get(cid uint64) *PBEntry { return b.entries.Get(cid) }

// Fill inserts the pattern set for cid, arriving at availAt. fromStore
// marks a genuine PS read (counted as bandwidth); falsePath marks a
// modeled wrong-path fetch.
func (b *PatternBuffer) Fill(cid uint64, set *PatternSet, now, availAt int64, fromStore, falsePath bool) *PBEntry {
	if e := b.entries.Get(cid); e != nil {
		e.LastUse = now
		return e
	}
	if b.entries.Len() >= b.capacity {
		b.evictLRU(now)
	}
	e, _ := b.entries.Put(cid)
	*e = PBEntry{Set: set, AvailAt: availAt, FetchedAt: now, LastUse: now, FalsePath: falsePath, fromStore: fromStore}
	if fromStore {
		b.Stats.Issued++
		b.Stats.StoreRd++
		if falsePath {
			b.Stats.FPIssued++
		}
	}
	return e
}

// Drop removes cid from the buffer without writeback accounting (used when
// the directory invalidates a context).
func (b *PatternBuffer) Drop(cid uint64) { b.entries.Delete(cid) }

// Reset empties the buffer, dropping every entry without retiring stats.
// Used when the backing pattern store is released: buffered sets alias
// directory storage, so they must not outlive it.
func (b *PatternBuffer) Reset() { b.entries.Clear() }

func (b *PatternBuffer) evictLRU(now int64) {
	var victimCID uint64
	var victimLastUse int64
	first := true
	// The CID tie-break keeps victim selection independent of table
	// iteration order: same-tick fills (e.g. paired false-path prefetches)
	// must evict identically in a restored and a never-snapshotted buffer.
	b.entries.Range(func(cid uint64, e *PBEntry) bool {
		if first || e.LastUse < victimLastUse ||
			(e.LastUse == victimLastUse && cid < victimCID) {
			victimCID, victimLastUse, first = cid, e.LastUse, false
		}
		return true
	})
	if first {
		return
	}
	b.retire(b.entries.Get(victimCID))
	b.entries.Delete(victimCID)
}

// retire folds an entry's lifetime into the stats and writes back dirty
// sets.
func (b *PatternBuffer) retire(e *PBEntry) {
	if e.fromStore {
		switch {
		case !e.Used:
			b.Stats.Unused++
		case e.WasLate:
			b.Stats.Late++
		default:
			b.Stats.OnTime++
		}
		if e.Used && e.FalsePath {
			b.Stats.FPUsed++
		}
	}
	if e.Set.Dirty {
		b.Stats.StoreWr++
		e.Set.Dirty = false
	}
}

// FlushStats retires every resident entry's accounting (end of run).
func (b *PatternBuffer) FlushStats() {
	b.entries.Range(func(_ uint64, e *PBEntry) bool {
		b.retire(e)
		// Avoid double counting if called twice.
		e.fromStore = false
		return true
	})
}

// Len returns the number of resident pattern sets.
func (b *PatternBuffer) Len() int { return b.entries.Len() }

// BucketOf returns the bucket index of lenIdx within the active history
// list (four history lengths per bucket in the default design).
func BucketOf(active []int, buckets int, lenIdx int) int {
	if buckets <= 1 {
		return 0
	}
	per := (len(active) + buckets - 1) / buckets
	for i, l := range active {
		if l == lenIdx {
			return i / per
		}
	}
	return 0
}

// NextActiveLen returns the smallest active history index strictly greater
// than lenIdx, or -1 if none.
func NextActiveLen(active []int, lenIdx int) int {
	for _, l := range active {
		if l > lenIdx {
			return l
		}
	}
	return -1
}

// lenFromBits maps a history length in bits to its index, returning -1 for
// non-table lengths.
func lenFromBits(bits int) int { return tage.HistoryIndex(bits) }

// ForEach visits every resident pattern set (diagnostics and tests).
func (d *ContextDir) ForEach(fn func(*PatternSet)) {
	if d.infMode {
		for i := 0; i < d.infCount; i++ {
			fn(d.infAt(int32(i)))
		}
		return
	}
	for row := range d.rowLen {
		base := row * d.assoc
		for i := 0; i < int(d.rowLen[row]); i++ {
			fn(&d.store[base+i])
		}
	}
}
