//go:build slowcheck

package llbp

import "fmt"

// psProv is the slowcheck shadow-mode provenance stamp: every pattern
// set records the directory (and hence pool namespace) that owns it.
// Because pooled storage slabs are recycled between sessions, a bug that
// let one session read another's patterns — a stale pattern-buffer
// pointer, an unwiped recycled slab, a row aliased across directories —
// would surface here as an owner mismatch instead of silently leaking
// another tenant's branch history.
type psProv struct {
	owner uint64
}

func (d *ContextDir) stampProv(s *PatternSet) { s.prov.owner = d.provID }

func (d *ContextDir) checkProv(s *PatternSet) {
	if s.prov.owner != d.provID {
		panic(fmt.Sprintf("llbp: pattern set %#x owned by namespace %d read by namespace %d",
			s.CID, s.prov.owner, d.provID))
	}
}
