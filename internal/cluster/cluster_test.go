package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
	"llbpx/internal/serve"
	"llbpx/internal/sim"
	"llbpx/internal/stats"
	"llbpx/internal/wire"
	"llbpx/internal/workload"
)

// testBackend is one in-process llbpd: a serve.Server with both its wire
// listener and HTTP frontend up, sharing a snapshot directory with its
// peers the way a real deployment shares durable storage.
type testBackend struct {
	name string
	srv  *serve.Server
	ws   *wire.Server
	ln   net.Listener
	hts  *httptest.Server
	done chan struct{}
	once sync.Once
}

func startBackend(t *testing.T, name, snapDir string) *testBackend {
	t.Helper()
	return startBackendWith(t, name, serve.New(serve.Config{SnapshotDir: snapDir, SessionTTL: -1}))
}

// startBackendWith mounts an already-configured serve.Server as a
// backend (tests that need non-default llbpd configuration, e.g.
// replication cadence, build the server themselves).
func startBackendWith(t *testing.T, name string, srv *serve.Server) *testBackend {
	t.Helper()
	ws := wire.NewServer(srv, wire.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb := &testBackend{name: name, srv: srv, ws: ws, ln: ln, done: make(chan struct{})}
	go func() {
		defer close(tb.done)
		ws.Serve(ln)
	}()
	tb.hts = httptest.NewServer(srv)
	t.Cleanup(tb.kill)
	return tb
}

func (tb *testBackend) backend() Backend {
	return Backend{Name: tb.name, WireAddr: tb.ln.Addr().String(), HTTPURL: tb.hts.URL}
}

// kill stops the backend the way SIGTERM stops llbpd: the server drains
// (checkpointing every live session to the shared snapshot directory)
// and the listeners close. The gateway is NOT told — it discovers the
// death through failed forwards, exactly like a production crash with
// durable state.
func (tb *testBackend) kill() {
	tb.once.Do(func() {
		tb.ws.Close()
		<-tb.done
		tb.hts.Close()
		tb.srv.Close()
	})
}

// fastCfg returns a gateway Config tuned for tests: tight backoffs, a
// two-strike death verdict, and no background prober unless asked
// (health transitions then come only from forward failures, which keeps
// single-purpose tests deterministic).
func fastCfg(backends ...Backend) Config {
	return Config{
		Backends:         backends,
		ForwardAttempts:  12,
		ForwardTimeout:   5 * time.Second,
		RetryBase:        2 * time.Millisecond,
		RetryMax:         25 * time.Millisecond,
		HealthEvery:      -1,
		HealthFails:      2,
		TransferAttempts: 3,
	}
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// gatewayHTTP mounts the gateway's HTTP frontend and returns an llbpd
// client pointed at it — the "client configured for one llbpd points at
// the cluster unchanged" claim, load-bearing in every test that uses it.
func gatewayHTTP(t *testing.T, g *Gateway) *serve.Client {
	t.Helper()
	hts := httptest.NewServer(g)
	t.Cleanup(hts.Close)
	return serve.NewClient(hts.URL, nil)
}

// gatewayWireAddr starts the gateway's binary-protocol frontend on a
// loopback listener and returns its address.
func gatewayWireAddr(t *testing.T, g *Gateway) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.ServeWire(ln)
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
	})
	return ln.Addr().String()
}

// gatewayWire starts the gateway's binary-protocol frontend and returns
// a connected wire client.
func gatewayWire(t *testing.T, g *Gateway) *wire.Client {
	t.Helper()
	c := wire.NewClient(gatewayWireAddr(t, g))
	t.Cleanup(func() { c.Close() })
	return c
}

// workloadBranches materializes the first instruction-budget worth of a
// preset workload's deterministic stream.
func workloadBranches(t testing.TB, name string, instrBudget uint64) []core.Branch {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Build(prof)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(prog)
	var out []core.Branch
	var instr uint64
	for instr < instrBudget {
		b, ok := gen.Next()
		if !ok {
			break
		}
		instr += b.Instructions()
		out = append(out, b)
	}
	return out
}

// localRun replays branches through a fresh predictor exactly like a
// backend does, yielding the expected session statistics.
func localRun(t testing.TB, predictor string, branches []core.Branch, instrBudget uint64) sim.Result {
	t.Helper()
	p, err := serve.NewPredictor(predictor)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, core.NewSliceSource(branches), sim.Options{MeasureInstr: instrBudget})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireExact asserts cluster-served statistics equal the local sim's
// bit for bit — counters and derived MPKI, zero tolerance. This is the
// whole point of the migration protocol: routing and relocation must be
// invisible in the numbers.
func requireExact(t *testing.T, label string, got serve.SessionStats, want stats.BranchStats) {
	t.Helper()
	if got.Instructions != want.Instructions || got.CondBranches != want.CondBranches ||
		got.Mispredicts != want.Mispredicts || got.UncondCount != want.UncondCount ||
		got.SecondLevelOK != want.SecondLevelOK {
		t.Fatalf("%s: cluster stats diverge from local sim:\ncluster %+v\nlocal   %+v", label, got, want)
	}
	if got.MPKI != want.MPKI() {
		t.Fatalf("%s: cluster MPKI %v != local %v", label, got.MPKI, want.MPKI())
	}
}

// sendBatches streams branches through the gateway's HTTP frontend in
// fixed-size batches and returns the last acknowledged statistics.
func sendBatches(t *testing.T, c *serve.Client, id, predictor string, branches []core.Branch, batchSize int) serve.SessionStats {
	t.Helper()
	ctx := context.Background()
	var last serve.SessionStats
	for i := 0; i < len(branches); i += batchSize {
		j := i + batchSize
		if j > len(branches) {
			j = len(branches)
		}
		resp, err := c.Predict(ctx, id, predictor, branches[i:j])
		if err != nil {
			t.Fatalf("predict %s [%d:%d]: %v", id, i, j, err)
		}
		last = resp.Stats
	}
	return last
}

// TestGatewayRoutesExactStats is the base routing claim: sessions spread
// over both backends through the gateway, and every session's final
// statistics match a local simulation exactly.
func TestGatewayRoutesExactStats(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	client := gatewayHTTP(t, g)

	const instr = 30_000
	workloads := []string{"kafka", "tomcat", "spring", "delta", "chirper", "whiskey"}
	owners := map[string]bool{}
	for i, wl := range workloads {
		id := fmt.Sprintf("route-%d-%s", i, wl)
		owners[g.LookupOwner(id)] = true
		branches := workloadBranches(t, wl, instr)
		sendBatches(t, client, id, "tsl-8k", branches, 1024)
		fin, err := client.CloseSession(context.Background(), id)
		if err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
		want := localRun(t, "tsl-8k", branches, instr)
		requireExact(t, id, fin.Stats, want.Measured)
	}
	if !owners["b1"] || !owners["b2"] {
		t.Fatalf("expected sessions on both backends, got owners %v", owners)
	}
	st := g.Stats()
	if st.RoutedBatches == 0 {
		t.Fatalf("no routed batches counted: %+v", st)
	}
	if st.SessionsKnown != 0 {
		t.Fatalf("closed sessions still tracked: %+v", st)
	}
}

// TestGatewayWireFrontend runs a client-sequenced stream through the
// binary frontend: exact statistics, duplicate verdicts relayed
// verbatim, and a close acknowledged with the final numbers.
func TestGatewayWireFrontend(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	wc := gatewayWire(t, g)

	const instr = 30_000
	branches := workloadBranches(t, "kafka", instr)
	ctx := context.Background()
	const id = "wire-1"
	var ok wire.PredictOK
	var num uint64
	var lastBatch []core.Branch
	for i := 0; i < len(branches); i += 1024 {
		j := i + 1024
		if j > len(branches) {
			j = len(branches)
		}
		num++
		lastBatch = branches[i:j]
		if err := wc.Predict(ctx, id, "tsl-8k", num, lastBatch, &ok); err != nil {
			t.Fatalf("wire predict batch %d: %v", num, err)
		}
		if ok.Flags&wire.FlagDuplicate != 0 {
			t.Fatalf("batch %d unexpectedly answered as duplicate", num)
		}
		if ok.N != j-i {
			t.Fatalf("batch %d: %d predictions for %d branches", num, ok.N, j-i)
		}
	}
	// Resending the last applied batch number must relay the owner's
	// duplicate verdict (stats unchanged, no predictions re-applied).
	applied := ok.Stats
	if err := wc.Predict(ctx, id, "tsl-8k", num, lastBatch, &ok); err != nil {
		t.Fatalf("wire resend: %v", err)
	}
	if ok.Flags&wire.FlagDuplicate == 0 {
		t.Fatalf("resend of batch %d not flagged duplicate", num)
	}
	if ok.Stats != applied {
		t.Fatalf("duplicate changed stats: %+v != %+v", ok.Stats, applied)
	}

	pred, st, err := wc.CloseSession(ctx, id)
	if err != nil {
		t.Fatalf("wire close: %v", err)
	}
	if pred != "tsl-8k" {
		t.Fatalf("close predictor %q", pred)
	}
	want := localRun(t, "tsl-8k", branches, instr)
	requireExact(t, id, serve.SessionStats{
		Instructions: st.Instructions, CondBranches: st.CondBranches,
		Mispredicts: st.Mispredicts, UncondCount: st.UncondCount,
		SecondLevelOK: st.SecondLevelOK, Batches: st.Batches,
		MPKI: stats.BranchStats{Instructions: st.Instructions, CondBranches: st.CondBranches, Mispredicts: st.Mispredicts}.MPKI(),
	}, want.Measured)
}

// TestGatewayLiveMigration drives both directions of a live move: a
// graceful leave migrates every owned session off the leaving backend,
// and a join pulls sessions onto the new member — with traffic running
// before, between, and after, and exact statistics at the end.
func TestGatewayLiveMigration(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	b3 := startBackend(t, "b3", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	client := gatewayHTTP(t, g)

	const instr = 40_000
	type sess struct {
		id       string
		branches []core.Branch
	}
	var sessions []sess
	for i := 0; i < 8; i++ {
		wl := []string{"kafka", "tomcat", "spring", "delta"}[i%4]
		sessions = append(sessions, sess{
			id:       fmt.Sprintf("mig-%d-%s", i, wl),
			branches: workloadBranches(t, wl, instr),
		})
	}

	// Phase 1: first third on the {b1, b2} ring.
	for _, s := range sessions {
		sendBatches(t, client, s.id, "tsl-8k", s.branches[:len(s.branches)/3], 512)
	}

	// Join: b3 enters the ring; rebalance synchronously so the assert
	// below observes the settled state.
	if err := g.AddBackend(b3.backend()); err != nil {
		t.Fatal(err)
	}
	g.rebalance()
	afterJoin := g.Stats()
	if afterJoin.Migrations == 0 {
		t.Fatalf("no live migration onto joined backend: %+v", afterJoin)
	}
	onB3 := 0
	for _, s := range sessions {
		if g.LookupOwner(s.id) == "b3" {
			onB3++
		}
	}
	if onB3 == 0 {
		t.Fatalf("ring assigns no session to the joined backend")
	}

	// Phase 2: second third on the {b1, b2, b3} ring.
	for _, s := range sessions {
		sendBatches(t, client, s.id, "tsl-8k", s.branches[len(s.branches)/3:2*len(s.branches)/3], 512)
	}

	// Leave: b1 retires gracefully; every session it owns migrates away
	// live before RemoveBackend returns.
	ownedByB1 := 0
	for _, s := range sessions {
		if g.LookupOwner(s.id) == "b1" {
			ownedByB1++
		}
	}
	if ownedByB1 == 0 {
		t.Fatalf("no session owned by b1 before its leave; ring distribution too skewed")
	}
	preLeave := g.Stats().Migrations
	if err := g.RemoveBackend("b1"); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().Migrations; got < preLeave+uint64(ownedByB1) {
		t.Fatalf("leave migrated %d sessions, want >= %d", got-preLeave, ownedByB1)
	}
	for _, s := range sessions {
		if owner := g.LookupOwner(s.id); owner == "b1" {
			t.Fatalf("session %s still assigned to removed backend", s.id)
		}
	}

	// Phase 3: final third, then close and compare against an unbroken
	// local run — two membership changes must be invisible in the bits.
	for _, s := range sessions {
		sendBatches(t, client, s.id, "tsl-8k", s.branches[2*len(s.branches)/3:], 512)
		fin, err := client.CloseSession(context.Background(), s.id)
		if err != nil {
			t.Fatalf("close %s: %v", s.id, err)
		}
		want := localRun(t, "tsl-8k", s.branches, instr)
		requireExact(t, s.id, fin.Stats, want.Measured)
	}
}

// TestGatewayTornTransfer arms partial-write rules on the transfer site:
// every exported checkpoint is torn in flight, the import side's
// integrity checks reject it, and the relocation fails WITHOUT the
// session forking or losing state — the live source keeps serving. Once
// the rule clears, the move completes and the stream's statistics are
// still exact.
func TestGatewayTornTransfer(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(41)
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	cfg := fastCfg(b1.backend(), b2.backend())
	cfg.Faults = inj
	g := newGateway(t, cfg)
	client := gatewayHTTP(t, g)

	const instr = 40_000
	// Pick a session the ring assigns to b1, so removing b1 forces a move.
	id := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("torn-%d", i)
		if g.LookupOwner(cand) == "b1" {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate session maps to b1")
	}
	branches := workloadBranches(t, "kafka", instr)
	half := len(branches) / 2
	sendBatches(t, client, id, "tsl-8k", branches[:half], 512)

	// Tear every transfer: the blob passes export intact and loses its
	// tail between the daemons.
	inj.Set(FaultTransfer, faults.Rule{PartialAfter: 64})
	if err := g.RemoveBackend("b1"); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.MigrationErrors == 0 {
		t.Fatalf("torn transfers did not surface as migration errors: %+v", st)
	}
	if st.Migrations != 0 {
		t.Fatalf("a torn transfer was accepted: %+v", st)
	}
	if fs := inj.Stats(FaultTransfer); fs.Truncated == 0 {
		t.Fatalf("no blob was actually truncated: %+v", fs)
	}
	// The session must still be live on b1 — torn moves degrade to
	// staying put, never to a half-imported fork.
	gs := g.session(id, false)
	gs.mu.Lock()
	owner := gs.owner
	gs.mu.Unlock()
	if owner != "b1" {
		t.Fatalf("session moved despite failed transfer: owner %q", owner)
	}

	// Heal the network; the next batch retries the move, which now
	// succeeds, and the stream finishes on b2 bit-exact.
	inj.Clear(FaultTransfer)
	sendBatches(t, client, id, "tsl-8k", branches[half:], 512)
	gs.mu.Lock()
	owner = gs.owner
	gs.mu.Unlock()
	if owner != "b2" {
		t.Fatalf("session not relocated after rules cleared: owner %q", owner)
	}
	if got := g.Stats(); got.Migrations == 0 {
		t.Fatalf("healed transfer not counted: %+v", got)
	}
	fin, err := client.CloseSession(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	want := localRun(t, "tsl-8k", branches, instr)
	requireExact(t, id, fin.Stats, want.Measured)
}

// TestGatewayCursorProbeAcrossRestart replaces the gateway mid-stream —
// the new one has no routing state and must resynchronize its assigned
// batch cursor from the owner before continuing exactly-once.
func TestGatewayCursorProbeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)

	const instr = 30_000
	const id = "restart-1"
	branches := workloadBranches(t, "tomcat", instr)
	half := len(branches) / 2

	g1 := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	sendBatches(t, gatewayHTTP(t, g1), id, "tsl-8k", branches[:half], 512)
	g1.Close()

	g2 := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	sendBatches(t, gatewayHTTP(t, g2), id, "tsl-8k", branches[half:], 512)
	fin, err := gatewayHTTP(t, g2).CloseSession(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	want := localRun(t, "tsl-8k", branches, instr)
	requireExact(t, id, fin.Stats, want.Measured)
}

// TestGatewayRingMovementOnJoin is the gateway-level placement-stability
// assertion: a third backend joining moves roughly its fair share of the
// key space — and every key that moves, moves onto the joiner.
func TestGatewayRingMovementOnJoin(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	b3 := startBackend(t, "b3", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))

	const keys = 4096
	before := make([]string, keys)
	for i := range before {
		before[i] = g.LookupOwner(fmt.Sprintf("key-%d", i))
	}
	if err := g.AddBackend(b3.backend()); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := g.LookupOwner(fmt.Sprintf("key-%d", i))
		if after == before[i] {
			continue
		}
		moved++
		if after != "b3" {
			t.Fatalf("key-%d moved %s -> %s, not onto the joiner", i, before[i], after)
		}
	}
	frac := float64(moved) / keys
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("join moved %.1f%% of keys, want roughly a third", 100*frac)
	}
}
