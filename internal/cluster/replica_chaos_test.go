package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/faults"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// startReplicaBackend is startBackend with replication armed and NO
// snapshot directory: a short ship cadence and anti-entropy period so
// failover drills finish in test time, and nowhere to checkpoint to —
// in these tests, warm standby promotion is the ONLY path that can keep
// a session's statistics exact across a primary's death.
func startReplicaBackend(t *testing.T, name string, inj *faults.Injector) *testBackend {
	t.Helper()
	srv := serve.New(serve.Config{
		SessionTTL:      -1,
		ReplicaEvery:    4,
		ReplicaInterval: 25 * time.Millisecond,
		Faults:          inj,
	})
	return startBackendWith(t, name, srv)
}

// waitUntil polls cond every few milliseconds until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaChaosSuite is the replication tier's acceptance drill, the
// ISSUE's bar verbatim: three backends with NO shared snapshot
// directory, replication on, injected replication faults (20% of ships
// fail or tear, bounded) and an injected promotion fault (the first
// promotion attempt fails outright), standbys deliberately lagging at
// kill time — and a mid-run hard kill of the heaviest primary. Every
// session must still close with statistics matching a local, unbroken
// sim.Run bit for bit, at least one warm promotion must have happened,
// and no backend may have restored anything from disk (there is no
// disk): the failover path alone carries exactness.
func TestReplicaChaosSuite(t *testing.T) {
	inj := faults.New(20260809)
	// Replication link: one ship in five fails before leaving the primary
	// or is torn on the wire (the standby's CRC rejects it); bounded so
	// anti-entropy eventually heals every lagging standby.
	inj.Set(FaultReplicate, faults.Rule{ErrRate: 0.2, MaxErrors: 12})
	// The first promotion attempt fails by injection: the promote loop's
	// internal retry — not a degraded reroute — must absorb it.
	inj.Set(FaultPromote, faults.Rule{ErrRate: 1, MaxErrors: 1})

	b1 := startReplicaBackend(t, "b1", inj)
	b2 := startReplicaBackend(t, "b2", inj)
	b3 := startReplicaBackend(t, "b3", inj)
	byName := map[string]*testBackend{"b1": b1, "b2": b2, "b3": b3}

	cfg := fastCfg(b1.backend(), b2.backend(), b3.backend())
	cfg.Replicate = true
	cfg.Faults = inj
	g := newGateway(t, cfg)
	hclient := gatewayHTTP(t, g)
	wclient := gatewayWire(t, g)

	const instr = 45_000
	const batchSize = 512
	type sess struct {
		id        string
		wireFront bool
		branches  []core.Branch
		batchNum  uint64
	}
	workloads := []string{"kafka", "tomcat", "spring", "delta", "chirper", "whiskey"}
	var sessions []*sess
	for i, wl := range workloads {
		sessions = append(sessions, &sess{
			id:        fmt.Sprintf("repl-%d-%s", i, wl),
			wireFront: i%3 == 2,
			branches:  workloadBranches(t, wl, instr),
		})
	}

	ctx := context.Background()
	send := func(s *sess, from, to int) {
		t.Helper()
		for i := from; i < to; i += batchSize {
			j := i + batchSize
			if j > to {
				j = to
			}
			if s.wireFront {
				s.batchNum++
				var ok wire.PredictOK
				if err := wclient.Predict(ctx, s.id, "tsl-8k", s.batchNum, s.branches[i:j], &ok); err != nil {
					t.Fatalf("wire predict %s #%d: %v", s.id, s.batchNum, err)
				}
			} else {
				if _, err := hclient.Predict(ctx, s.id, "tsl-8k", s.branches[i:j]); err != nil {
					t.Fatalf("http predict %s [%d:%d]: %v", s.id, i, j, err)
				}
			}
		}
	}
	// sent[s] tracks how far each session's stream has progressed so the
	// phases can advance it in uneven steps.
	sent := map[*sess]int{}
	advance := func(s *sess, upto int) {
		if upto > len(s.branches) {
			upto = len(s.branches)
		}
		if upto > sent[s] {
			send(s, sent[s], upto)
			sent[s] = upto
		}
	}

	// Phase 1: first half of every stream. Standby placement happens on
	// the first forwards; ships start flowing (and some start failing).
	for _, s := range sessions {
		advance(s, len(s.branches)/2)
	}
	if st := g.Stats(); st.ReplicaSyncs == 0 {
		t.Fatalf("no standby placements after phase 1: %+v", st)
	}
	// Every session's standby must exist before the kill — anti-entropy
	// heals the injected ship failures within a few ticks.
	waitUntil(t, 5*time.Second, "all standbys installed", func() bool {
		total := 0
		for _, tb := range byName {
			total += tb.srv.Stats().ReplicaStandbySessions
		}
		return total == len(sessions)
	})

	// Lag the standbys deterministically: from here no ship can succeed
	// (the replication link is now 100% injected to fail), so the batches
	// below never reach a standby and the kill is guaranteed to catch
	// unshipped state that only the gateway's replay tail can recover.
	inj.Set(FaultReplicate, faults.Rule{ErrRate: 1})
	for _, s := range sessions {
		advance(s, sent[s]+2*batchSize)
	}

	// Hard kill the heaviest primary: listeners gone, no drain, no
	// checkpoint (and no directory to checkpoint into). The gateway is
	// not told; the death verdict comes from failed forwards.
	counts := map[string]int{}
	for _, s := range sessions {
		counts[g.LookupOwner(s.id)]++
	}
	victim, max := "", 0
	for name, n := range counts {
		if n > max {
			victim, max = name, n
		}
	}
	if victim == "" {
		t.Fatalf("no session owners: %v", counts)
	}
	byName[victim].kill()

	// Phase 2: the rest of every stream. The victim's sessions hit the
	// dead primary, promote their standbys (first attempt injected to
	// fail), replay their unshipped tails, and continue.
	for _, s := range sessions {
		advance(s, len(s.branches))
	}

	// Every session closes through its own frontend and must match the
	// unbroken local run exactly — the replication machinery is invisible
	// in the numbers or it is broken.
	for _, s := range sessions {
		var got serve.SessionStats
		if s.wireFront {
			pred, st, err := wclient.CloseSession(ctx, s.id)
			if err != nil {
				t.Fatalf("wire close %s: %v", s.id, err)
			}
			if pred != "tsl-8k" {
				t.Fatalf("close %s predictor %q", s.id, pred)
			}
			got = wireSessionStats(st)
		} else {
			fin, err := hclient.CloseSession(ctx, s.id)
			if err != nil {
				t.Fatalf("http close %s: %v", s.id, err)
			}
			got = fin.Stats
		}
		want := localRun(t, "tsl-8k", s.branches, instr)
		requireExact(t, s.id, got, want.Measured)
		if got.MPKI == 0 {
			t.Fatalf("%s: degenerate zero MPKI — workload too easy to detect divergence", s.id)
		}
	}

	// The run must have exercised what it claims: warm promotions
	// happened (the victim owned sessions), replication faults fired, the
	// injected promotion failure was retried rather than degraded to a
	// reroute, and — the tentpole's whole point — nothing was ever
	// restored from a snapshot, because there are none.
	st := g.Stats()
	if st.Promotions == 0 {
		t.Fatalf("hard kill produced no warm promotion: %+v", st)
	}
	if st.ReplayedBatches == 0 {
		t.Fatalf("promotions never replayed a lagging tail: %+v", st)
	}
	if fs := inj.Stats(FaultReplicate); fs.Errors == 0 {
		t.Fatalf("replication site injected nothing: %+v", fs)
	}
	if fs := inj.Stats(FaultPromote); fs.Errors == 0 {
		t.Fatalf("promotion site injected nothing: %+v", fs)
	}
	for name, tb := range byName {
		if name == victim {
			continue
		}
		ss := tb.srv.Stats()
		if ss.SnapshotRestores != 0 {
			t.Fatalf("%s: %d snapshot restores in a diskless run", name, ss.SnapshotRestores)
		}
	}
	for _, s := range sessions {
		if owner := g.LookupOwner(s.id); owner == victim {
			t.Fatalf("session %s still assigned to the killed backend %s", s.id, victim)
		}
	}
}

// TestSplitBrainFencedShip is the split-brain drill: a fenced-off former
// primary — still running, merely partitioned from the gateway's
// verdict — keeps shipping checkpoints at its old epoch after the
// standby has been promoted under a higher one. The standby must reject
// every late ship (409, stale_epochs counter), keep its promoted state
// byte-for-byte untouched, and the stale primary's shipper must conclude
// its line of history is dead and stop shipping.
func TestSplitBrainFencedShip(t *testing.T) {
	a := startReplicaBackend(t, "a", nil)
	b := startReplicaBackend(t, "b", nil)
	ca := serve.NewClient(a.hts.URL, nil)
	cb := serve.NewClient(b.hts.URL, nil)
	ctx := context.Background()

	const instr = 30_000
	branches := workloadBranches(t, "kafka", instr)
	half := len(branches) / 2

	// A is the primary: first half of the stream, replicating to B.
	sendBatches(t, ca, "sb1", "tsl-8k", branches[:half], 512)
	if err := ca.SetReplicaTarget(ctx, "sb1", b.hts.URL, 1); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "standby installed on b", func() bool {
		return b.srv.Stats().ReplicaStandbySessions == 1
	})
	waitUntil(t, 5*time.Second, "primary fully shipped", func() bool {
		lag, ok := a.srv.ReplicaLag("sb1")
		return ok && lag == 0
	})

	// The gateway's verdict: A is dead (it is not — split brain). B's
	// standby is promoted under epoch 2; from here B owns the session's
	// only live line of history.
	fin, err := cb.PromoteStandby(ctx, "sb1", 2)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	promoted := fin.Stats

	// The stale primary keeps serving and shipping: more batches arrive
	// at A, its shipper fires at epoch 1 — and B's fence must bounce it.
	staleBefore := b.srv.Stats().ReplicaStaleEpochs
	sendBatches(t, ca, "sb1", "tsl-8k", branches[half:], 512)
	waitUntil(t, 5*time.Second, "late ship rejected", func() bool {
		return b.srv.Stats().ReplicaStaleEpochs > staleBefore
	})
	// The 409 told A's shipper its history is fenced off: the target is
	// dropped, not retried forever.
	waitUntil(t, 5*time.Second, "stale primary dropped its target", func() bool {
		_, ok := a.srv.ReplicaLag("sb1")
		return !ok
	})

	// B's promoted state is exactly what the promotion returned — the
	// rejected ships changed nothing.
	cur, err := cb.SessionStats(ctx, "sb1")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Stats != promoted {
		t.Fatalf("promoted state changed under fenced ships:\nbefore %+v\nafter  %+v", promoted, cur.Stats)
	}
	if b.srv.Stats().ReplicaStandbySessions != 0 {
		t.Fatalf("promotion left a standby behind")
	}
}

// TestRingSuccessorIsFailoverTarget pins the placement property the
// whole failover design leans on: the standby (LookupN's second distinct
// member) is exactly where the ring re-routes the session once the owner
// dies. If this ever breaks, promotions would target backends that never
// received a ship.
func TestRingSuccessorIsFailoverTarget(t *testing.T) {
	b1 := startBackend(t, "b1", "")
	b2 := startBackend(t, "b2", "")
	b3 := startBackend(t, "b3", "")
	g := newGateway(t, fastCfg(b1.backend(), b2.backend(), b3.backend()))
	byName := map[string]*testBackend{"b1": b1, "b2": b2, "b3": b3}

	id := "succ-1"
	owners := g.ring.LookupN(id, 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("LookupN returned %v", owners)
	}
	if owners[0] != g.LookupOwner(id) {
		t.Fatalf("LookupN[0] %q != Lookup %q", owners[0], g.LookupOwner(id))
	}
	byName[owners[0]].kill()
	if err := g.RemoveBackend(owners[0]); err != nil {
		t.Fatal(err)
	}
	if after := g.LookupOwner(id); after != owners[1] {
		t.Fatalf("after owner death the ring routes %q to %q, not the standby %q", id, after, owners[1])
	}
}

// TestProbeBackoff pins the health prober's backoff schedule: nothing
// extra for the first failure (the ticker's spacing applies), then
// doubling per consecutive failure, capped at 8× the probe period.
func TestProbeBackoff(t *testing.T) {
	const every = 50 * time.Millisecond
	want := []struct {
		fails int
		d     time.Duration
	}{
		{0, 0}, {1, 0},
		{2, every}, {3, 2 * every}, {4, 4 * every},
		{5, 8 * every}, {6, 8 * every}, {50, 8 * every},
	}
	for _, w := range want {
		if got := probeBackoff(w.fails, every); got != w.d {
			t.Errorf("probeBackoff(%d) = %v, want %v", w.fails, got, w.d)
		}
	}
}
