package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// ownerLocked resolves the session's current owner against the ring,
// migrating the session when the ring disagrees with where it lives.
// Callers hold gs.mu. It returns nil when no backend is live.
//
// The false-positive-death rule: when the session must move, the
// gateway ALWAYS attempts a live transfer first — even from a backend it
// has declared dead. A wrong verdict (the backend was merely slow or
// briefly partitioned) then still donates its warm state; only when the
// export genuinely fails does the move degrade. How it degrades depends
// on the source's verdict: a live source keeps the session (the move is
// retried on a later pass rather than forked), a dead source forfeits it
// — the session reroutes bare, and its warm state follows through the
// shared snapshot directory if the backends have one.
func (g *Gateway) ownerLocked(ctx context.Context, gs *gwSession) *backendState {
	g.mu.Lock()
	target := g.ring.Lookup(gs.id)
	var cur, tgt *backendState
	if gs.owner != "" {
		cur = g.backends[gs.owner]
	}
	if target != "" {
		tgt = g.backends[target]
	}
	g.mu.Unlock()
	if tgt == nil {
		return nil
	}
	if gs.owner == target {
		return tgt
	}
	if cur != nil && gs.touched {
		if err := g.transfer(ctx, gs, cur, tgt); err != nil {
			if cur.alive.Load() {
				// The source is healthy and keeps the authoritative state;
				// stay put and let a later pass retry the move.
				return cur
			}
			// Dead source, failed transfer. With replication on, the ring's
			// new target for the session is — by LookupN construction —
			// exactly its standby: promote the warm copy and replay the
			// unshipped tail instead of degrading. Only when promotion also
			// fails (no standby ever installed, fenced off, gap in the
			// tail) does the session reroute bare.
			if !(g.cfg.Replicate && g.promote(ctx, gs, tgt) == nil) {
				g.metrics.reroutes.Inc()
				gs.next = 0
			}
		}
	} else {
		// First route (or a session that never reached a backend): nothing
		// to move.
		gs.next = 0
	}
	gs.owner = target
	return tgt
}

// transfer moves one quiesced session from → to through the admin
// transfer API: export the checkpoint, import it on the new owner,
// delete the original. Each attempt re-exports, so a torn blob (rejected
// by the import side's CRC) is never resent verbatim. On success the
// session's assigned-batch cursor is primed from the imported state.
// Callers hold gs.mu.
func (g *Gateway) transfer(ctx context.Context, gs *gwSession, from, to *backendState) error {
	start := time.Now()
	var lastErr error
	for attempt := 1; attempt <= g.cfg.TransferAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(g.backoff(attempt-1, 0)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := g.cfg.Faults.Fire(FaultTransfer); err != nil {
			lastErr = err
			continue
		}
		blob, err := from.hc.ExportSession(ctx, gs.id)
		if err != nil {
			if errors.Is(err, serve.ErrSessionNotFound) {
				// Nothing to move: the session never materialized on (or was
				// already closed at) the old owner. The reroute is lossless.
				gs.next = 0
				return nil
			}
			lastErr = err
			continue
		}
		// Partial-write rules on the transfer site tear the blob here, on
		// the wire between export and import — the import's integrity
		// checks must catch it.
		blob = g.tornBlob(blob)
		var fin *serve.SessionFinal
		if g.cfg.Replicate {
			// Stamp the session's fence epoch into the transfer so a
			// fenced-off former primary's export cannot overwrite
			// post-failover state.
			fin, err = to.hc.ImportSessionAt(ctx, gs.id, gs.epoch, blob)
		} else {
			fin, err = to.hc.ImportSession(ctx, gs.id, blob)
		}
		if err != nil {
			if errors.Is(err, serve.ErrStaleEpoch) {
				// Another line of history already owns the session there;
				// re-exporting the same stale state cannot win.
				g.metrics.migrationErrors.Inc()
				return err
			}
			lastErr = err
			continue
		}
		// Best-effort delete at the source: the imported copy is now
		// authoritative, and a dangling original must not resurrect.
		from.hc.CloseSession(ctx, gs.id)
		gs.next = fin.Stats.WireCursor + 1
		g.metrics.migrations.Inc()
		g.metrics.migrationDur.ObserveDuration(time.Since(start))
		return nil
	}
	g.metrics.migrationErrors.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: transfer of %q failed", gs.id)
	}
	return lastErr
}

// tornBlob runs an exported checkpoint through the transfer site's
// partial-write rules (a no-op without an injector or matching rule).
func (g *Gateway) tornBlob(blob []byte) []byte {
	if g.cfg.Faults == nil {
		return blob
	}
	var buf bytes.Buffer
	w := g.cfg.Faults.WrapWriter(FaultTransfer, &buf)
	if w == nil {
		return blob
	}
	_, _ = w.Write(blob)
	return buf.Bytes()
}

// probeCursor primes gs.next from the owner's applied cursor, so a
// gateway-assigned stream resumes exactly-once after a restart or a
// relocation. An unknown session starts at 1.
func (g *Gateway) probeCursor(ctx context.Context, gs *gwSession, bs *backendState) {
	fin, err := bs.hc.SessionStats(ctx, gs.id)
	if err != nil {
		gs.next = 1
		return
	}
	gs.next = fin.Stats.WireCursor + 1
}

// forward routes one batch to the session's owner, riding out
// partitions, reroutes, cursor skew, and retryable refusals for up to
// ForwardAttempts. Callers hold gs.mu.
//
// batchNum semantics: a non-zero batchNum is an upstream-sequenced batch
// (wire clients own their cursor) and passes through verbatim — its
// duplicate/out-of-order verdicts are relayed back untouched. batchNum 0
// means the upstream does not sequence (HTTP), so the gateway assigns
// numbers from gs.next and resolves sequencing verdicts itself: its own
// resend answered as a duplicate is a success (the lost-response case),
// while a duplicate on first send means the cursor moved under us
// (another path applied batches) and the stream resynchronizes from the
// owner's statistics.
func (g *Gateway) forward(ctx context.Context, gs *gwSession, predictor string, batchNum uint64, batch []core.Branch, ok *wire.PredictOK) (duplicate bool, err error) {
	assign := batchNum == 0
	var lastErr error
	var prevNum uint64 // number this call already put on the wire (0 = none)
	for attempt := 1; attempt <= g.cfg.ForwardAttempts; attempt++ {
		if attempt > 1 {
			g.metrics.forwardRetries.Inc()
			var hint time.Duration
			var ne *wire.NackError
			if errors.As(lastErr, &ne) {
				hint = ne.RetryAfter
			}
			select {
			case <-time.After(g.backoff(attempt-1, hint)):
			case <-ctx.Done():
				return false, lastErr
			}
		}
		bs := g.ownerLocked(ctx, gs)
		if bs == nil {
			lastErr = fmt.Errorf("cluster: no live backend for session %q", gs.id)
			g.metrics.forwardErrors.Inc()
			continue
		}
		if ferr := g.cfg.Faults.Fire(FaultForward); ferr != nil {
			// Injected partition: indistinguishable from a lost link, so it
			// feeds the same death verdict as a real transport failure.
			lastErr = fmt.Errorf("cluster: forward to %s: %w", bs.b.Name, ferr)
			g.metrics.forwardErrors.Inc()
			g.noteFailure(bs)
			continue
		}
		num := batchNum
		if assign {
			if gs.next == 0 {
				g.probeCursor(ctx, gs, bs)
			}
			num = gs.next
		}
		cctx, cancel := context.WithTimeout(ctx, g.cfg.ForwardTimeout)
		err := bs.wc.Predict(cctx, gs.id, predictor, num, batch, ok)
		cancel()
		if err == nil {
			bs.fails.Store(0)
			dup := ok.Flags&wire.FlagDuplicate != 0
			if assign && dup && prevNum != num {
				// First send of this number answered "already applied": the
				// owner's cursor is ahead of the gateway's (restored state,
				// or a previous life of this gateway). Resynchronize and
				// re-send the batch under the next free number.
				gs.next = ok.Stats.Batches + 1
				g.metrics.cursorResyncs.Inc()
				prevNum = 0
				lastErr = fmt.Errorf("cluster: cursor behind owner %s for session %q", bs.b.Name, gs.id)
				continue
			}
			if assign {
				gs.next = num + 1
			}
			if gs.predictor == "" {
				// Copy: ok.Predictor is a view into the client's buffers.
				gs.predictor = string(ok.Predictor)
			}
			gs.last = ok.Stats
			gs.touched = true
			g.metrics.routedBatches.Inc()
			if g.cfg.Replicate {
				g.recordTail(gs, num, batch)
				g.ensureReplica(ctx, gs, bs)
			}
			return assign && dup, nil
		}
		if assign {
			prevNum = num
		}
		lastErr = err
		g.metrics.forwardErrors.Inc()
		var ne *wire.NackError
		if errors.As(err, &ne) {
			switch {
			case ne.Code == serve.CodeDraining:
				// Drain is a membership announcement, not a fault: retire
				// the backend so this and every other session migrates off
				// it while it can still donate state.
				bs.leaving.Store(true)
				g.markDead(bs)
				continue
			case ne.Code == wire.CodeOutOfOrder && assign:
				// The owner's cursor is behind the gateway's assignment
				// (fresh import raced a resend); reprobe and fill the gap.
				gs.next = 0
				continue
			case !ne.Retryable:
				return false, err
			default:
				continue
			}
		}
		// Transport failure (dial, reset, timeout): counts toward the
		// death verdict, then retry — possibly onto a new owner.
		g.noteFailure(bs)
	}
	return false, lastErr
}

// closeSession closes the session on its owner and forgets the route. A
// close whose acknowledgement was lost is absorbed exactly like
// wire.Stream.Close: if the owner reports session_not_found but the
// gateway has acknowledged statistics, the close already happened.
func (g *Gateway) closeSession(ctx context.Context, id string) (string, wire.WireStats, error) {
	gs := g.session(id, false)
	if gs == nil {
		return "", wire.WireStats{}, &wire.NackError{Code: serve.CodeSessionNotFound, Message: fmt.Sprintf("no session %q", id)}
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return "", wire.WireStats{}, &wire.NackError{Code: serve.CodeSessionNotFound, Message: fmt.Sprintf("session %q already closed", id)}
	}
	var lastErr error
	for attempt := 1; attempt <= g.cfg.ForwardAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(g.backoff(attempt-1, 0)):
			case <-ctx.Done():
				return "", wire.WireStats{}, lastErr
			}
		}
		bs := g.ownerLocked(ctx, gs)
		if bs == nil {
			lastErr = fmt.Errorf("cluster: no live backend for session %q", id)
			continue
		}
		cctx, cancel := context.WithTimeout(ctx, g.cfg.ForwardTimeout)
		pred, st, err := bs.wc.CloseSession(cctx, id)
		cancel()
		if err == nil {
			g.dropReplicaTarget(ctx, gs)
			gs.closed = true
			g.forget(id)
			return pred, st, nil
		}
		var ne *wire.NackError
		if errors.As(err, &ne) {
			if ne.Code == serve.CodeSessionNotFound && gs.predictor != "" && gs.touched {
				g.dropReplicaTarget(ctx, gs)
				gs.closed = true
				g.forget(id)
				return gs.predictor, gs.last, nil
			}
			if !ne.Retryable {
				return "", wire.WireStats{}, err
			}
			lastErr = err
			continue
		}
		lastErr = err
		g.noteFailure(bs)
	}
	return "", wire.WireStats{}, lastErr
}

// backoff computes the forward loop's wait before the next attempt:
// exponential from RetryBase, capped at RetryMax, jittered ±20%, never
// shorter than the server's hint.
func (g *Gateway) backoff(attempt int, hint time.Duration) time.Duration {
	d := g.cfg.RetryBase
	for i := 1; i < attempt && d < g.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > g.cfg.RetryMax {
		d = g.cfg.RetryMax
	}
	d = time.Duration(float64(d) * (0.8 + 0.4*rand.Float64()))
	if hint > d {
		d = hint
	}
	return d
}
