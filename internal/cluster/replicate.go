package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"llbpx/internal/core"
	"llbpx/internal/serve"
	"llbpx/internal/wire"
)

// Hot-standby failover --------------------------------------------------
//
// With Config.Replicate on, every session gets a standby: the next
// distinct backend clockwise on the ring (hashutil.Ring.LookupN). The
// gateway tells the primary where to ship (serve's replica shipper does
// the shipping asynchronously), and keeps a bounded replay tail of the
// most recent applied batches. On a death verdict the ring, by
// construction, re-targets the session exactly at its standby — the
// gateway promotes the warm standby under a bumped fence epoch (which
// permanently rejects the dead primary's late ships) and replays only
// the batches past the promoted state's applied cursor from its tail.
// Promotion therefore reproduces the primary's stream bit for bit
// without touching the shared snapshot directory.

// tailEntry is one applied batch retained for post-promotion replay.
type tailEntry struct {
	num   uint64
	batch []core.Branch
}

// recordTail retains an acknowledged batch in the session's replay tail.
// Callers hold gs.mu. A resend of an already-recorded number is skipped
// (the tail is strictly increasing), and the tail is trimmed to
// ReplayTail entries — the ship cadence must fit inside it, which
// withDefaults guarantees for the default configuration.
func (g *Gateway) recordTail(gs *gwSession, num uint64, batch []core.Branch) {
	if num == 0 {
		return
	}
	if n := len(gs.tail); n > 0 && gs.tail[n-1].num >= num {
		return
	}
	cp := make([]core.Branch, len(batch))
	copy(cp, batch)
	gs.tail = append(gs.tail, tailEntry{num: num, batch: cp})
	if over := len(gs.tail) - g.cfg.ReplayTail; over > 0 {
		gs.tail = append(gs.tail[:0], gs.tail[over:]...)
	}
}

// ensureReplica keeps the session's standby assignment in sync with the
// ring: after any membership change (or on first contact) it recomputes
// the standby — the next distinct live backend clockwise — and
// re-asserts the primary's replication target, which also triggers an
// immediate repair ship for a fresh placement. Callers hold gs.mu; bs is
// the session's current owner. Cheap when nothing changed: one version
// compare.
func (g *Gateway) ensureReplica(ctx context.Context, gs *gwSession, bs *backendState) {
	g.mu.Lock()
	version := g.ringVersion
	if gs.replicaVersion == version {
		g.mu.Unlock()
		return
	}
	owners := g.ring.LookupN(gs.id, 2)
	var standby, standbyURL string
	if len(owners) > 0 && owners[0] != gs.owner {
		// The ring moved under us mid-forward; the next pass will land on
		// the settled membership.
		g.mu.Unlock()
		return
	}
	if len(owners) == 2 {
		if sb := g.backends[owners[1]]; sb != nil {
			standby, standbyURL = owners[1], sb.b.HTTPURL
		}
	}
	g.mu.Unlock()
	// Single live backend: clear the target (nowhere to replicate to).
	if err := bs.hc.SetReplicaTarget(ctx, gs.id, standbyURL, gs.epoch); err != nil {
		return // re-asserted on the next forward
	}
	if old := gs.standby; old != "" && old != standby {
		// Placement moved: release the superseded standby's warm copy.
		if sb := g.backend(old); sb != nil {
			_ = sb.hc.DropStandby(ctx, gs.id)
		}
	}
	gs.standby = standby
	gs.replicaVersion = version
	g.metrics.replicaSyncs.Inc()
}

// promote fails a session over onto its warm standby: PromoteStandby
// under the bumped fence epoch, then replay the tail batches past the
// promoted state's applied cursor. Callers hold gs.mu; tgt is the ring's
// new owner for the session — which, after the old owner left the ring,
// is exactly the standby. Returns nil only when the promoted session is
// bit-exact with the lost primary (fence raised, tail fully replayed);
// any error means the caller must fall back to the bare reroute.
//
// The attempt loop is load-bearing: a failed promotion falls back to a
// cold reroute, so an injected cluster.promote fault must be retried
// here — inside the quiesced session — rather than surfacing as a
// permanently degraded session.
func (g *Gateway) promote(ctx context.Context, gs *gwSession, tgt *backendState) error {
	var lastErr error
	for attempt := 1; attempt <= g.cfg.TransferAttempts; attempt++ {
		if attempt > 1 {
			select {
			case <-time.After(g.backoff(attempt-1, 0)):
			case <-ctx.Done():
				return lastErr
			}
		}
		if err := g.cfg.Faults.Fire(FaultPromote); err != nil {
			lastErr = err
			continue
		}
		fin, err := tgt.hc.PromoteStandby(ctx, gs.id, gs.epoch+1)
		if err != nil {
			if errors.Is(err, serve.ErrSessionNotFound) || errors.Is(err, serve.ErrStaleEpoch) {
				// No standby installed there (placement never completed), or
				// another line of history already owns the session. Neither
				// is retryable; fall back.
				g.metrics.promotionErrors.Inc()
				return err
			}
			lastErr = err
			continue
		}
		// The fence is up: the dead primary's late ships bounce from here on.
		gs.epoch++
		gs.standby = ""
		gs.replicaVersion = 0 // reassign a fresh standby on the next forward
		if err := g.replayTail(ctx, gs, tgt, fin.Stats.WireCursor); err != nil {
			g.metrics.promotionErrors.Inc()
			return err
		}
		g.metrics.promotions.Inc()
		return nil
	}
	g.metrics.promotionErrors.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: promotion of %q failed", gs.id)
	}
	return lastErr
}

// replayTail replays the session's retained batches with numbers past
// cursor — the unshipped tail the standby never saw — into the promoted
// session, in order. The tail must cover the gap contiguously; if the
// oldest retained batch past the cursor is not cursor+1, batches have
// been trimmed and exactness is unprovable, so the caller degrades to a
// bare reroute. Replayed numbers the promoted session already applied
// answer as duplicates, which is fine — replay is idempotent by the
// exactly-once contract.
func (g *Gateway) replayTail(ctx context.Context, gs *gwSession, tgt *backendState, cursor uint64) error {
	first := -1
	for i, e := range gs.tail {
		if e.num > cursor {
			first = i
			break
		}
	}
	if first == -1 {
		gs.next = cursor + 1
		return nil
	}
	if gs.tail[first].num != cursor+1 {
		return fmt.Errorf("cluster: replay tail for %q starts at %d, standby cursor %d: gap",
			gs.id, gs.tail[first].num, cursor)
	}
	var ok wire.PredictOK
	for _, e := range gs.tail[first:] {
		var lastErr error
		replayed := false
		for attempt := 1; attempt <= g.cfg.ForwardAttempts && !replayed; attempt++ {
			if attempt > 1 {
				select {
				case <-time.After(g.backoff(attempt-1, 0)):
				case <-ctx.Done():
					return lastErr
				}
			}
			cctx, cancel := context.WithTimeout(ctx, g.cfg.ForwardTimeout)
			err := tgt.wc.Predict(cctx, gs.id, gs.predictor, e.num, e.batch, &ok)
			cancel()
			if err == nil {
				replayed = true
				break
			}
			lastErr = err
		}
		if !replayed {
			return fmt.Errorf("cluster: replaying batch %d of %q: %w", e.num, gs.id, lastErr)
		}
		gs.next = e.num + 1
		g.metrics.replayedBatches.Inc()
	}
	gs.last = ok.Stats
	gs.touched = true
	return nil
}

// dropReplicaTarget best-effort clears replication state for a closed
// session: the standby's warm copy is discarded so it cannot linger.
// Callers hold gs.mu.
func (g *Gateway) dropReplicaTarget(ctx context.Context, gs *gwSession) {
	if !g.cfg.Replicate || gs.standby == "" {
		return
	}
	if sb := g.backend(gs.standby); sb != nil {
		_ = sb.hc.DropStandby(ctx, gs.id)
	}
}
