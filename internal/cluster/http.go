package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"llbpx/internal/core"
	"llbpx/internal/serve"
	"llbpx/internal/stats"
	"llbpx/internal/wire"
)

// HTTP frontend -------------------------------------------------------------
//
// The gateway mirrors the llbpd HTTP API — same paths, same wire types,
// same error envelope — so a client configured for one llbpd points at
// the cluster unchanged. Requests are forwarded downstream over the
// binary protocol with gateway-assigned batch numbers, which upgrades
// plain HTTP clients to the exactly-once resend contract across
// reroutes: a forward whose response was lost is resent and answered as
// a duplicate instead of double-applied.

// maxBodyBytes mirrors llbpd's predict-body bound.
const maxBodyBytes = 64 << 20

// ServeHTTP implements http.Handler, with llbpd's panic-to-envelope
// guard.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			writeError(w, http.StatusInternalServerError, serve.CodeInternal, "internal error: %v", p)
		}
	}()
	g.mux.ServeHTTP(w, r)
}

func (g *Gateway) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions/{id}/predict", g.handlePredict)
	mux.HandleFunc("GET /v1/sessions/{id}", g.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleSessionDelete)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /admin/v1/backends", g.handleBackendsGet)
	mux.HandleFunc("POST /admin/v1/backends", g.handleBackendJoin)
	mux.HandleFunc("DELETE /admin/v1/backends/{name}", g.handleBackendLeave)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{Error: struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeForwardError maps a failed forward onto the llbpd error contract:
// NACK codes relay with their llbpd status, anything else is a 503 the
// client may retry (the gateway never half-applied anything).
func writeForwardError(w http.ResponseWriter, err error) {
	var ne *wire.NackError
	if errors.As(err, &ne) {
		writeError(w, nackStatus(ne), ne.Code, "%s", ne.Message)
		return
	}
	writeError(w, http.StatusServiceUnavailable, serve.CodeInternal, "forward failed: %v", err)
}

// nackStatus maps a downstream NACK code to the HTTP status llbpd itself
// would have used.
func nackStatus(ne *wire.NackError) int {
	switch ne.Code {
	case serve.CodeBadRequest, serve.CodeUnknownPredictor:
		return http.StatusBadRequest
	case serve.CodeSessionNotFound:
		return http.StatusNotFound
	case serve.CodePredictorConflict:
		return http.StatusConflict
	case serve.CodeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case serve.CodeOverloaded:
		return http.StatusTooManyRequests
	case serve.CodeDraining:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// wireSessionStats converts downstream wire statistics to the HTTP
// session-stats shape, deriving MPKI and accuracy exactly like the
// server does.
func wireSessionStats(st wire.WireStats) serve.SessionStats {
	bs := stats.BranchStats{
		Instructions:  st.Instructions,
		CondBranches:  st.CondBranches,
		Mispredicts:   st.Mispredicts,
		UncondCount:   st.UncondCount,
		SecondLevelOK: st.SecondLevelOK,
	}
	return serve.SessionStats{
		Instructions:  st.Instructions,
		CondBranches:  st.CondBranches,
		Mispredicts:   st.Mispredicts,
		UncondCount:   st.UncondCount,
		SecondLevelOK: st.SecondLevelOK,
		Batches:       st.Batches,
		MPKI:          bs.MPKI(),
		Accuracy:      bs.Accuracy(),
	}
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req serve.PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Branches) == 0 {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "empty batch")
		return
	}
	if len(req.Branches) > g.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, serve.CodeBatchTooLarge,
			"batch of %d branches exceeds limit %d", len(req.Branches), g.cfg.MaxBatch)
		return
	}
	batch := make([]core.Branch, len(req.Branches))
	for i, rec := range req.Branches {
		b := rec.ToBranch()
		if !b.Kind.Valid() {
			writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "branch %d: invalid kind %d", i, rec.Kind)
			return
		}
		batch[i] = b
	}

	gs := g.session(id, true)
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		writeError(w, http.StatusNotFound, serve.CodeSessionNotFound, "session %q is closed", id)
		return
	}
	var ok wire.PredictOK
	dup, err := g.forward(r.Context(), gs, req.Predictor, 0, batch, &ok)
	if err != nil {
		writeForwardError(w, err)
		return
	}
	resp := serve.PredictResponse{
		Session:   id,
		Predictor: string(ok.Predictor),
		Created:   ok.Flags&wire.FlagCreated != 0,
		Restored:  ok.Flags&wire.FlagRestored != 0,
		Duplicate: dup,
		Stats:     wireSessionStats(ok.Stats),
	}
	if !dup {
		preds := make([]serve.BranchPrediction, len(batch))
		for i := range batch {
			preds[i] = serve.BranchPrediction{
				Cond:        wire.Bit(ok.Cond, i),
				Taken:       wire.Bit(ok.Taken, i),
				Correct:     wire.Bit(ok.Correct, i),
				SecondLevel: wire.Bit(ok.Second, i),
			}
		}
		resp.Predictions = preds
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	gs := g.session(id, false)
	if gs == nil {
		writeError(w, http.StatusNotFound, serve.CodeSessionNotFound, "no session %q", id)
		return
	}
	gs.mu.Lock()
	owner := gs.owner
	closed := gs.closed
	gs.mu.Unlock()
	bs := g.backend(owner)
	if closed || bs == nil {
		writeError(w, http.StatusNotFound, serve.CodeSessionNotFound, "no session %q", id)
		return
	}
	fin, err := bs.hc.SessionStats(r.Context(), id)
	if err != nil {
		var ae *serve.APIError
		if errors.As(err, &ae) {
			writeError(w, ae.Status, ae.Code, "%s", ae.Message)
			return
		}
		writeError(w, http.StatusServiceUnavailable, serve.CodeInternal, "owner unreachable: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, fin)
}

func (g *Gateway) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pred, st, err := g.closeSession(r.Context(), id)
	if err != nil {
		writeForwardError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serve.SessionFinal{ID: id, Predictor: pred, Stats: wireSessionStats(st)})
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.metrics.reg.WritePrometheus(w)
}

// healthReply is the gateway's health body: live when the process runs,
// ready while at least one backend is routable.
type healthReply struct {
	Status       string `json:"status"`
	BackendsLive int    `json:"backends_live"`
}

func (g *Gateway) liveBackends() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, bs := range g.backends {
		if bs.alive.Load() {
			n++
		}
	}
	return n
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthReply{Status: "ok", BackendsLive: g.liveBackends()})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	live := g.liveBackends()
	status := http.StatusOK
	state := "ok"
	if live == 0 {
		status = http.StatusServiceUnavailable
		state = "no live backends"
	}
	writeJSON(w, status, healthReply{Status: state, BackendsLive: live})
}

func (g *Gateway) handleBackendsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats().Backends)
}

func (g *Gateway) handleBackendJoin(w http.ResponseWriter, r *http.Request) {
	var b Backend
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&b); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "bad backend body: %v", err)
		return
	}
	if err := g.AddBackend(b); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, g.Stats().Backends)
}

func (g *Gateway) handleBackendLeave(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := g.RemoveBackend(name); err != nil {
		writeError(w, http.StatusNotFound, serve.CodeBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, g.Stats().Backends)
}
