package cluster

import (
	"bufio"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// gwGoldenFamilies is the complete expected set of the gateway's
// /metrics families and their types — the llbpgw_* exposition contract,
// locked the same way internal/serve locks llbpd_*. Adding a family is
// fine (add it here); renaming or retyping one is a breaking change this
// test is meant to flag.
var gwGoldenFamilies = map[string]string{
	"llbpgw_uptime_seconds":                 "gauge",
	"llbpgw_sessions_known":                 "gauge",
	"llbpgw_backends_live":                  "gauge",
	"llbpgw_ring_version":                   "gauge",
	"llbpgw_routed_batches_total":           "counter",
	"llbpgw_forward_errors_total":           "counter",
	"llbpgw_forward_retries_total":          "counter",
	"llbpgw_reroutes_total":                 "counter",
	"llbpgw_cursor_resyncs_total":           "counter",
	"llbpgw_migrations_total":               "counter",
	"llbpgw_migration_errors_total":         "counter",
	"llbpgw_wire_conns_total":               "counter",
	"llbpgw_promotions_total":               "counter",
	"llbpgw_promotion_errors_total":         "counter",
	"llbpgw_replica_syncs_total":            "counter",
	"llbpgw_replica_replayed_batches_total": "counter",
	"llbpgw_migration_duration_us":          "histogram",
	"llbpgw_backend_up":                     "gauge",
	"llbpgw_backend_sessions":               "gauge",
}

// TestGatewayMetricsGoldenExposition locks the gateway's /metrics
// exposition: the exact family set with exact types, per-backend labeled
// gauges present for every member, and histogram well-formedness.
func TestGatewayMetricsGoldenExposition(t *testing.T) {
	dir := t.TempDir()
	b1 := startBackend(t, "b1", dir)
	b2 := startBackend(t, "b2", dir)
	b3 := startBackend(t, "b3", dir)
	g := newGateway(t, fastCfg(b1.backend(), b2.backend()))
	client := gatewayHTTP(t, g)

	// Route real traffic and force one live migration so the counters and
	// the migration histogram have observations behind them.
	branches := workloadBranches(t, "kafka", 20_000)
	sendBatches(t, client, "golden-1", "tsl-8k", branches, 512)
	if err := g.AddBackend(b3.backend()); err != nil {
		t.Fatal(err)
	}
	g.rebalance()
	owner := g.LookupOwner("golden-1")
	if err := g.RemoveBackend(owner); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Migrations == 0 {
		t.Fatalf("no migration before scrape: %+v", g.Stats())
	}
	if _, err := client.CloseSession(context.Background(), "golden-1"); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	got := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("malformed TYPE line: %q", line)
		}
		if _, dup := got[fields[2]]; dup {
			t.Fatalf("family %q declared twice", fields[2])
		}
		got[fields[2]] = fields[3]
	}
	for name, typ := range gwGoldenFamilies {
		if got[name] != typ {
			t.Errorf("family %q: type %q, want %q", name, got[name], typ)
		}
	}
	for name, typ := range got {
		if gwGoldenFamilies[name] != typ {
			t.Errorf("unexpected family %q (%s) — extend gwGoldenFamilies if intentional", name, typ)
		}
	}

	// Every member appears in the labeled per-backend gauges, including
	// the one that left (its membership record survives for inspection).
	for _, name := range []string{"b1", "b2", "b3"} {
		if !strings.Contains(body, `llbpgw_backend_up{backend="`+name+`"}`) {
			t.Errorf("backend_up missing member %s", name)
		}
		if !strings.Contains(body, `llbpgw_backend_sessions{backend="`+name+`"}`) {
			t.Errorf("backend_sessions missing member %s", name)
		}
	}

	// Histogram well-formedness: cumulative buckets never decrease and
	// the +Inf bucket equals _count — and the migration above landed.
	for name, typ := range gwGoldenFamilies {
		if typ != "histogram" {
			continue
		}
		var last, inf, count uint64
		var sawInf, sawCount bool
		sc := bufio.NewScanner(strings.NewReader(body))
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, name+"_bucket{le="):
				v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("%s: bad bucket line %q: %v", name, line, err)
				}
				if v < last {
					t.Fatalf("%s: cumulative bucket decreased (%d -> %d): %q", name, last, v, line)
				}
				last = v
				if strings.Contains(line, `le="+Inf"`) {
					inf, sawInf = v, true
				}
			case strings.HasPrefix(line, name+"_count "):
				v, err := strconv.ParseUint(strings.TrimPrefix(line, name+"_count "), 10, 64)
				if err != nil {
					t.Fatalf("%s: bad count line %q: %v", name, line, err)
				}
				count, sawCount = v, true
			}
		}
		if !sawInf || !sawCount {
			t.Fatalf("%s: histogram missing +Inf bucket or _count", name)
		}
		if inf != count {
			t.Fatalf("%s: +Inf bucket %d != count %d", name, inf, count)
		}
	}
	sc3 := bufio.NewScanner(strings.NewReader(body))
	for sc3.Scan() {
		line := sc3.Text()
		if strings.HasPrefix(line, "llbpgw_migration_duration_us_count ") {
			if n, _ := strconv.ParseUint(strings.Fields(line)[1], 10, 64); n == 0 {
				t.Fatal("migration histogram empty after a live migration")
			}
		}
	}
}
